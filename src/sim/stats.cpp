#include "sim/stats.hpp"

#include <cstdio>

namespace emusim::sim {

std::uint64_t Log2Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total));
  std::uint64_t seen = 0;
  for (int b = 0; b < num_buckets(); ++b) {
    seen += buckets_[static_cast<std::size_t>(b)];
    if (seen > target) return 1ULL << (b + 1 <= 63 ? b + 1 : 63);
  }
  return 1ULL << 63;
}

std::string Log2Histogram::render() const {
  std::uint64_t peak = 0;
  int lo = num_buckets(), hi = -1;
  for (int b = 0; b < num_buckets(); ++b) {
    const auto n = buckets_[static_cast<std::size_t>(b)];
    if (n > 0) {
      lo = std::min(lo, b);
      hi = std::max(hi, b);
      peak = std::max(peak, n);
    }
  }
  if (hi < 0) return "(empty)\n";
  std::string out;
  char line[160];
  for (int b = lo; b <= hi; ++b) {
    const auto n = buckets_[static_cast<std::size_t>(b)];
    const int bars =
        peak ? static_cast<int>(40.0 * static_cast<double>(n) /
                                static_cast<double>(peak)) : 0;
    std::snprintf(line, sizeof line, "[2^%02d, 2^%02d) %-40.*s %llu\n", b,
                  b + 1, bars, "########################################",
                  static_cast<unsigned long long>(n));
    out += line;
  }
  return out;
}

}  // namespace emusim::sim
