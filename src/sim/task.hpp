// Task: a fire-and-forget coroutine representing one simulated thread.
//
// Lifecycle: creating a Task leaves the coroutine suspended at its initial
// suspend point.  The owner installs an optional completion hook and calls
// start() exactly once.  When the coroutine runs to completion its frame is
// destroyed from the final awaiter and the hook fires — runtimes use the
// hook to implement join/sync semantics and to recycle per-thread contexts.
//
// Exceptions: simulated kernels must not throw; an escaping exception
// terminates the process (a simulation bug, not a recoverable condition).
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "sim/callback.hpp"

namespace emusim::sim {

class Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    SmallFn on_complete;

    Task get_return_object() { return Task{Handle::from_promise(*this)}; }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(Handle h) noexcept {
        // Move the hook out before destroying the frame it lives in.
        auto done = std::move(h.promise().on_complete);
        h.destroy();
        if (done) done();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  /// Install a hook invoked (once) after the coroutine finishes.
  /// Must be called before start().  The hook rides a SmallFn: typical
  /// completion captures (a machine pointer plus a parent context) stay
  /// inline, so spawning a simulated thread allocates nothing for its hook.
  void on_complete(SmallFn fn) {
    handle_.promise().on_complete = std::move(fn);
  }

  /// Begin execution.  The Task relinquishes ownership: the coroutine
  /// destroys its own frame on completion.
  void start() {
    auto h = std::exchange(handle_, {});
    h.resume();
  }

  bool valid() const { return static_cast<bool>(handle_); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_;
};

}  // namespace emusim::sim
