// Measurement plumbing: counters, running summaries, and a log2-bucketed
// histogram for latency distributions.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace emusim::sim {

/// Running summary of a scalar sample stream (count / mean / min / max and
/// variance via Welford's algorithm).
class Summary {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Histogram with power-of-two buckets; bucket b holds samples in
/// [2^b, 2^(b+1)).  Used for migration / memory latency distributions.
class Log2Histogram {
 public:
  void add(std::uint64_t x) {
    ++buckets_[bucket_of(x)];
    summary_.add(static_cast<double>(x));
  }

  std::uint64_t count() const { return summary_.count(); }
  const Summary& summary() const { return summary_; }
  std::uint64_t bucket(int b) const {
    return buckets_[static_cast<std::size_t>(b)];
  }
  static constexpr int num_buckets() { return 64; }

  /// Approximate quantile from bucket boundaries (upper bound of the bucket
  /// containing the q-th sample).
  std::uint64_t quantile(double q) const;

  /// Multi-line rendering for reports ("[1us,2us) ####... 1234").
  std::string render() const;

 private:
  static int bucket_of(std::uint64_t x) {
    if (x <= 1) return 0;
    return 63 - __builtin_clzll(x);
  }
  std::array<std::uint64_t, 64> buckets_{};
  Summary summary_;
};

}  // namespace emusim::sim
