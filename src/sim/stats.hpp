// Measurement plumbing: counters, running summaries, and a log2-bucketed
// histogram for latency distributions.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace emusim::sim {

/// Running summary of a scalar sample stream (count / mean / min / max and
/// variance via Welford's algorithm).
class Summary {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Fold another summary into this one (Chan et al. parallel Welford
  /// combine).  Used to merge per-shard stats after a sharded run; merge
  /// order must be fixed by the caller for bit-reproducible results.
  void merge(const Summary& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const std::uint64_t n = n_ + o.n_;
    const double delta = o.mean_ - mean_;
    m2_ += o.m2_ + delta * delta * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / static_cast<double>(n);
    mean_ += delta * static_cast<double>(o.n_) / static_cast<double>(n);
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    n_ = n;
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Histogram with power-of-two buckets; bucket b holds samples in
/// [2^b, 2^(b+1)).  Used for migration / memory latency distributions.
class Log2Histogram {
 public:
  void add(std::uint64_t x) {
    ++buckets_[bucket_of(x)];
    summary_.add(static_cast<double>(x));
  }

  /// Fold another histogram into this one (bucket-wise addition plus a
  /// summary merge).
  void merge(const Log2Histogram& o) {
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
      buckets_[b] += o.buckets_[b];
    }
    summary_.merge(o.summary_);
  }

  std::uint64_t count() const { return summary_.count(); }
  const Summary& summary() const { return summary_; }
  std::uint64_t bucket(int b) const {
    return buckets_[static_cast<std::size_t>(b)];
  }
  static constexpr int num_buckets() { return 64; }

  /// Approximate quantile from bucket boundaries (upper bound of the bucket
  /// containing the q-th sample).
  std::uint64_t quantile(double q) const;

  /// Multi-line rendering for reports ("[1us,2us) ####... 1234").
  std::string render() const;

 private:
  static int bucket_of(std::uint64_t x) {
    if (x <= 1) return 0;
    return 63 - __builtin_clzll(x);
  }
  std::array<std::uint64_t, 64> buckets_{};
  Summary summary_;
};

}  // namespace emusim::sim
