// Op: an awaitable coroutine for multi-stage timed operations.
//
// Hot-path simulator operations (a local DRAM read, an issue batch) are
// plain awaiters with no frame allocation.  Operations that span several
// waits — a thread migration queues on the migration engine, then acquires
// a threadlet slot at the destination — are written as Op coroutines and
// awaited from the simulated thread:
//
//   co_await ctx.migrate_to(dest);
//
// Completion resumes the awaiting coroutine by symmetric transfer; the Op
// temporary destroys the frame after resumption.  Ops may return a value.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace emusim::sim {

template <class T = void>
class Op;

namespace detail {

template <class Derived>
struct OpPromiseBase {
  std::coroutine_handle<> continuation;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Derived> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { std::terminate(); }
};

}  // namespace detail

template <class T>
class Op {
 public:
  struct promise_type : detail::OpPromiseBase<promise_type> {
    T value{};
    Op get_return_object() {
      return Op{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) noexcept { value = std::move(v); }
  };

  Op(Op&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Op& operator=(Op&& other) noexcept {
    if (this != &other) {
      if (h_) h_.destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Op(const Op&) = delete;
  Op& operator=(const Op&) = delete;
  ~Op() {
    if (h_) h_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) {
    h_.promise().continuation = caller;
    return h_;
  }
  T await_resume() { return std::move(h_.promise().value); }

 private:
  explicit Op(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

template <>
class Op<void> {
 public:
  struct promise_type : detail::OpPromiseBase<promise_type> {
    Op get_return_object() {
      return Op{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() noexcept {}
  };

  Op(Op&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Op& operator=(Op&& other) noexcept {
    if (this != &other) {
      if (h_) h_.destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Op(const Op&) = delete;
  Op& operator=(const Op&) = delete;
  ~Op() {
    if (h_) h_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller) {
    h_.promise().continuation = caller;
    return h_;
  }
  void await_resume() {}

 private:
  explicit Op(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

}  // namespace emusim::sim
