// EngineSet: conservative windowed parallel DES over sharded Engines.
//
// One Engine per shard (the Emu machine maps one shard per node).  Shards
// advance together through time windows of width `lookahead` — the minimum
// latency of any cross-shard interaction, so an event executing inside a
// window can only schedule onto another shard at or beyond the window end.
// Within a window every shard processes its own queue independently; the
// cross-shard traffic it generates goes into per-(src,dst) mailboxes, which
// the window barrier drains into the destination queues before the next
// window opens.
//
// Determinism contract: the shard count and the shard of every event are
// functions of the machine configuration alone, never of the worker-thread
// count.  Threads only decide *which OS thread* executes a shard's window,
// so `threads = 1` and `threads = N` produce byte-identical simulations.
// Two pieces make that hold:
//   * per-shard seq counters — intra-shard tie order is the serial engine's
//     insertion order, untouched by parallelism;
//   * a canonical mailbox drain order — for each destination, messages are
//     gathered source-major, stable-sorted by timestamp, and injected in
//     that order, so the destination's seq assignment (and therefore all
//     downstream tie-breaking) is reproducible.
//
// The window barrier also runs a caller-installed hook (the Emu machine
// merges per-shard trace staging buffers there) on exactly one thread,
// synchronized-with all workers.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"
#include "sim/callback.hpp"
#include "sim/engine.hpp"

namespace emusim::sim {

class EngineSet {
 public:
  explicit EngineSet(std::size_t shards);
  EngineSet(const EngineSet&) = delete;
  EngineSet& operator=(const EngineSet&) = delete;

  std::size_t shards() const { return engines_.size(); }
  Engine& shard(std::size_t s) { return engines_[s]; }
  const Engine& shard(std::size_t s) const { return engines_[s]; }

  /// Queue a cross-shard coroutine resumption.  Single-writer discipline:
  /// during a window only shard `src`'s worker may post from `src`.  `when`
  /// must respect the lookahead (>= the end of the posting window); the
  /// drain checks it.
  void post(std::size_t src, std::size_t dst, Time when,
            std::coroutine_handle<> h) {
    outbox(src, dst).push_back(Msg{when, h, SmallFn{}});
  }

  /// Queue a cross-shard callback.
  void post_call(std::size_t src, std::size_t dst, Time when, SmallFn fn) {
    outbox(src, dst).push_back(Msg{when, {}, std::move(fn)});
  }

  /// Install a hook run on one thread at every window barrier, after the
  /// mailbox drain (and once before the first window).  The Emu machine
  /// merges per-shard trace staging here.  Invoked repeatedly; must be
  /// reentrant across windows but is never run concurrently with shard
  /// execution.
  void set_window_hook(SmallFn hook) { window_hook_ = std::move(hook); }

  /// Run all shards to completion under windows of width `lookahead`,
  /// using up to `threads` workers (clamped to [1, shards()]).  A single
  /// shard degenerates to the serial Engine::run() — exactly the old
  /// engine, no windowing.  On return every shard's clock reads the same
  /// global final time.
  Time run(Time lookahead, int threads);

  /// Drop pending cross-shard messages and reset every shard engine.
  void reset();

 private:
  struct Msg {
    Time when;
    std::coroutine_handle<> h;  ///< non-null: resume this coroutine
    SmallFn fn;                 ///< otherwise: invoke this callback
  };

  std::vector<Msg>& outbox(std::size_t src, std::size_t dst) {
    return outboxes_[src * engines_.size() + dst];
  }

  /// The per-window coordination step, run on exactly one thread: drain all
  /// mailboxes into destination queues (canonical order), fire the window
  /// hook, then pick the next window [t_min, t_min + lookahead) or declare
  /// the run finished.
  void plan_window() noexcept;

  std::deque<Engine> engines_;         ///< Engine is pinned (non-movable)
  std::vector<std::vector<Msg>> outboxes_;  ///< [src * S + dst]
  std::vector<Msg> scratch_;           ///< drain staging, reused per window
  SmallFn window_hook_;
  Time lookahead_ = 0;
  Time end_ = 0;    ///< current window end, published by plan_window()
  bool done_ = false;
};

}  // namespace emusim::sim
