// EngineSet: conservative windowed parallel DES over sharded Engines.
//
// One Engine per shard.  Flat mode (the default, one shard per Emu node
// card): shards advance together through time windows of width `lookahead`
// — the minimum latency of any cross-shard interaction, so an event
// executing inside a window can only schedule onto another shard at or
// beyond the window end.  Within a window every shard processes its own
// queue independently; the cross-shard traffic it generates goes into
// per-(src,dst) mailboxes, which the window barrier drains into the
// destination queues before the next window opens.
//
// Hierarchical mode (set_hierarchy(), one shard per *nodelet* grouped by
// node card): two levels of conservative windows.  The outer level is the
// flat scheme across node-card groups with the inter-node lookahead; inside
// each outer window, the shards of one group run their own sequence of
// *inner* windows whose lookahead is the (much smaller) intra-node hop
// latency.  Cross-shard traffic within a group is drained at each inner
// step; traffic between groups waits for the outer barrier.  Groups are
// mutually independent inside an outer window, so their inner loops run
// concurrently without synchronizing with each other.
//
// Adaptive window planning: both levels fast-forward over event-free gaps —
// a window always opens at the earliest pending event (global for the outer
// level, group-local for the inner level, clamped to the outer window end)
// rather than marching fixed-width windows.  Mailbox drains are batched per
// destination via per-source touched lists, so a drain costs O(messages),
// not O(shards^2).
//
// Determinism contract: the shard count, the group structure, and the shard
// of every event are functions of the machine configuration alone, never of
// the worker-thread count.  Threads only decide *which OS thread* executes
// a shard's window, so `threads = 1` and `threads = N` produce
// byte-identical simulations.  Three pieces make that hold:
//   * per-shard seq counters — intra-shard tie order is the serial engine's
//     insertion order, untouched by parallelism;
//   * a canonical mailbox drain order — for each destination, messages are
//     gathered source-major, stable-sorted by timestamp, and injected in
//     that order, so the destination's seq assignment (and therefore all
//     downstream tie-breaking) is reproducible;
//   * single-threaded planning — every drain/plan step (outer or inner)
//     runs on exactly one thread at a barrier completion, so the window
//     sequence of each level is a pure function of simulation state.
//
// The outer window barrier also runs a caller-installed hook (the Emu
// machine merges per-shard trace staging there) on exactly one thread,
// synchronized-with all workers.
//
// Worker threads are spawned once per (thread count, hierarchy layout) and
// parked between run() invocations, so a sweep point that calls run()
// repeatedly (e.g. per-batch serving loops) reuses the same pool with the
// same thread->shard assignment instead of paying spawn/join per run.
#pragma once

#include <barrier>
#include <condition_variable>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"
#include "sim/callback.hpp"
#include "sim/engine.hpp"

namespace emusim::sim {

class EngineSet {
 public:
  explicit EngineSet(std::size_t shards);
  EngineSet(const EngineSet&) = delete;
  EngineSet& operator=(const EngineSet&) = delete;
  ~EngineSet();

  std::size_t shards() const { return engines_.size(); }
  Engine& shard(std::size_t s) { return engines_[s]; }
  const Engine& shard(std::size_t s) const { return engines_[s]; }

  /// Partition the shards into consecutive groups of `group_size` and run
  /// them under two-level windows: `inner_lookahead` between the shards of
  /// one group, run(lookahead) between groups.  `group_size` must divide
  /// shards(); 1 (the default) is flat single-level windowing.  Cross-shard
  /// posts within a group must respect `inner_lookahead`; posts between
  /// groups must respect the outer lookahead.  Call before run().
  void set_hierarchy(std::size_t group_size, Time inner_lookahead);

  std::size_t group_size() const { return group_size_; }
  std::size_t groups() const { return engines_.size() / group_size_; }
  std::size_t group_of(std::size_t shard) const { return shard / group_size_; }

  /// Queue a cross-shard coroutine resumption.  Single-writer discipline:
  /// during a window only shard `src`'s worker may post from `src`.  `when`
  /// must respect the level's lookahead (>= the end of the posting window,
  /// inner window for intra-group posts, outer window for cross-group); the
  /// drain checks it.
  void post(std::size_t src, std::size_t dst, Time when,
            std::coroutine_handle<> h) {
    auto& box = outbox(src, dst);
    if (box.empty()) touched_[src].push_back(dst);
    box.push_back(Msg{when, h, SmallFn{}});
  }

  /// Queue a cross-shard callback.
  void post_call(std::size_t src, std::size_t dst, Time when, SmallFn fn) {
    auto& box = outbox(src, dst);
    if (box.empty()) touched_[src].push_back(dst);
    box.push_back(Msg{when, {}, std::move(fn)});
  }

  /// Install a hook run on one thread at every outer window barrier, after
  /// the mailbox drain (and once before the first window).  The Emu machine
  /// merges per-shard trace staging here.  Invoked repeatedly; must be
  /// reentrant across windows but is never run concurrently with shard
  /// execution.
  void set_window_hook(SmallFn hook) { window_hook_ = std::move(hook); }

  /// Run all shards to completion under (outer) windows of width
  /// `lookahead`, using up to `threads` workers (clamped to [1, shards()]).
  /// A single shard degenerates to the serial Engine::run() — exactly the
  /// old engine, no windowing.  On return every shard's clock reads the
  /// same global final time.
  Time run(Time lookahead, int threads);

  /// Drop pending cross-shard messages and reset every shard engine.
  void reset();

  /// Outer windows opened by the last run() (0 after an S==1 serial run).
  std::uint64_t outer_windows() const { return outer_windows_; }
  /// Inner windows opened across all groups by the last run() (0 in flat
  /// mode).
  std::uint64_t inner_windows() const { return inner_windows_; }

 private:
  struct Msg {
    Time when;
    std::coroutine_handle<> h;  ///< non-null: resume this coroutine
    SmallFn fn;                 ///< otherwise: invoke this callback
  };

  /// Per-group inner-window state.  Touched by one team at a time; padded
  /// so concurrently running groups don't false-share.
  struct alignas(64) GroupState {
    std::vector<std::size_t> touched_dsts;  ///< staged dsts, this drain
    Time inner_end = 0;    ///< current inner window end
    bool done = false;     ///< group exhausted for this outer window
    std::uint64_t windows = 0;  ///< inner windows opened, this run
  };

  /// Barrier completion steps (std::barrier needs a noexcept type).
  struct OuterPlan {
    EngineSet* set;
    void operator()() noexcept { set->plan_outer(); }
  };
  struct InnerPlan {
    EngineSet* set;
    std::size_t g;
    void operator()() noexcept { set->plan_inner(g); }
  };

  std::vector<Msg>& outbox(std::size_t src, std::size_t dst) {
    return outboxes_[src * engines_.size() + dst];
  }

  /// The per-outer-window coordination step, run on exactly one thread:
  /// drain all remaining (cross-group) mailboxes into destination queues in
  /// canonical order, fire the window hook, then pick the next outer window
  /// [t_min, t_min + lookahead) — fast-forwarding over any event-free gap —
  /// or declare the run finished.
  void plan_outer() noexcept;

  /// The per-inner-window step for group `g`, run on exactly one thread of
  /// the group's team: drain the group's intra-group mailboxes, then pick
  /// the next inner window [t_min_g, min(t_min_g + inner_lookahead,
  /// outer_end)) or declare the group done for this outer window.
  void plan_inner(std::size_t g) noexcept;

  /// Run group `g`'s inner loop with `step` workers, this being `rank`.
  /// Serial callers use rank 0 / step 1 and invoke plan_inner directly;
  /// teams coordinate through inner_bars_[g].
  void run_group_serial(std::size_t g);
  void run_group_team(std::size_t g, std::size_t rank);

  /// One worker's share of a run: outer-barrier loop until done_.
  void worker_loop(std::size_t w);

  /// (Re)build barriers / team layout / parked threads for `T` workers.
  void ensure_pool(int T);
  void stop_pool();

  std::deque<Engine> engines_;         ///< Engine is pinned (non-movable)
  std::vector<std::vector<Msg>> outboxes_;  ///< [src * S + dst]
  std::vector<std::vector<std::size_t>> touched_;  ///< per src: dsts with
                                                   ///< non-empty outbox
  std::vector<std::vector<Msg>> staging_;  ///< per-dst drain staging; groups
                                           ///< touch disjoint slices
  std::vector<std::size_t> outer_touched_;  ///< plan_outer staged dsts
  SmallFn window_hook_;
  Time lookahead_ = 0;        ///< outer lookahead, set per run()
  Time inner_lookahead_ = 0;  ///< intra-group lookahead (hierarchical mode)
  std::size_t group_size_ = 1;
  Time end_ = 0;    ///< current outer window end, published by plan_outer()
  bool done_ = false;
  std::vector<GroupState> group_state_;
  std::uint64_t outer_windows_ = 0;
  std::uint64_t inner_windows_ = 0;

  // Persistent worker pool (built lazily on the first parallel run, reused
  // across run() calls while the thread count and layout stay the same).
  std::vector<std::jthread> pool_;
  std::unique_ptr<std::barrier<OuterPlan>> outer_bar_;
  std::deque<std::optional<std::barrier<InnerPlan>>> inner_bars_;
  std::vector<std::size_t> team_size_;  ///< per group, when pool_T_ > groups
  int pool_T_ = 0;        ///< thread count the pool/barriers were built for
  bool layout_dirty_ = true;  ///< hierarchy changed since pool build
  std::mutex mu_;
  std::condition_variable cv_start_, cv_done_;
  std::uint64_t epoch_ = 0;  ///< bumped per parallel run to wake the pool
  int done_count_ = 0;       ///< workers finished with the current epoch
  bool shutdown_ = false;
};

}  // namespace emusim::sim
