#include "sim/shard.hpp"

#include <algorithm>
#include <barrier>
#include <thread>

namespace emusim::sim {

EngineSet::EngineSet(std::size_t shards)
    : engines_(shards), outboxes_(shards * shards) {
  EMUSIM_CHECK(shards >= 1);
}

void EngineSet::plan_window() noexcept {
  const std::size_t S = engines_.size();
  // Drain mailboxes in canonical order: per destination, gather messages
  // source-major, stable-sort by timestamp (preserving source-major order
  // within a timestamp), inject.  The destination engine assigns seq
  // numbers in this order, which fixes all downstream tie-breaking
  // independent of worker-thread count.
  for (std::size_t dst = 0; dst < S; ++dst) {
    scratch_.clear();
    for (std::size_t src = 0; src < S; ++src) {
      auto& box = outbox(src, dst);
      for (auto& m : box) scratch_.push_back(std::move(m));
      box.clear();
    }
    std::stable_sort(scratch_.begin(), scratch_.end(),
                     [](const Msg& a, const Msg& b) { return a.when < b.when; });
    Engine& e = engines_[dst];
    for (auto& m : scratch_) {
      // Lookahead violation guard: anything posted during the window that
      // just ran must land at or beyond its end.
      EMUSIM_CHECK(m.when >= end_);
      if (m.h) {
        e.inject(m.when, m.h);
      } else {
        e.inject_call(m.when, std::move(m.fn));
      }
    }
  }
  if (window_hook_) window_hook_();
  // Next window starts at the earliest pending event across all shards.
  bool any = false;
  Time t_min = 0;
  for (const Engine& e : engines_) {
    if (e.idle()) continue;
    const Time t = e.next_when();
    if (!any || t < t_min) t_min = t;
    any = true;
  }
  if (!any) {
    done_ = true;
    return;
  }
  EMUSIM_CHECK(t_min + lookahead_ > end_);  // windows advance monotonically
  end_ = t_min + lookahead_;
}

Time EngineSet::run(Time lookahead, int threads) {
  const std::size_t S = engines_.size();
  if (S == 1) {
    // Exactly the serial engine: no windows, no barriers, no hook.
    return engines_[0].run();
  }
  EMUSIM_CHECK(lookahead > 0);
  lookahead_ = lookahead;
  end_ = 0;
  done_ = false;
  int T = threads;
  if (T < 1) T = 1;
  if (T > static_cast<int>(S)) T = static_cast<int>(S);
  if (T == 1) {
    for (;;) {
      plan_window();
      if (done_) break;
      for (Engine& e : engines_) e.run_window(end_);
    }
  } else {
    // T workers (this thread is worker 0) separated by one barrier per
    // window; the barrier's completion step runs plan_window() on exactly
    // one thread, synchronized-with every worker.
    std::barrier bar(T, [this]() noexcept { plan_window(); });
    auto worker = [&](int w) {
      for (;;) {
        bar.arrive_and_wait();
        if (done_) break;
        for (std::size_t s = static_cast<std::size_t>(w); s < S;
             s += static_cast<std::size_t>(T)) {
          engines_[s].run_window(end_);
        }
      }
    };
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(T - 1));
    for (int w = 1; w < T; ++w) pool.emplace_back(worker, w);
    worker(0);
  }
  // Bring every shard to the one global final time, so post-run now()
  // reads (counters, observers) are shard-independent.
  Time final_t = 0;
  for (const Engine& e : engines_) final_t = std::max(final_t, e.now());
  for (Engine& e : engines_) e.advance_to(final_t);
  return final_t;
}

void EngineSet::reset() {
  for (auto& box : outboxes_) box.clear();
  scratch_.clear();
  for (Engine& e : engines_) e.reset();
  end_ = 0;
  done_ = false;
}

}  // namespace emusim::sim
