#include "sim/shard.hpp"

#include <algorithm>

namespace emusim::sim {

EngineSet::EngineSet(std::size_t shards)
    : engines_(shards),
      outboxes_(shards * shards),
      touched_(shards),
      staging_(shards) {
  EMUSIM_CHECK(shards >= 1);
}

EngineSet::~EngineSet() { stop_pool(); }

void EngineSet::set_hierarchy(std::size_t group_size, Time inner_lookahead) {
  const std::size_t S = engines_.size();
  EMUSIM_CHECK(group_size >= 1);
  EMUSIM_CHECK(S % group_size == 0);
  if (group_size > 1) EMUSIM_CHECK(inner_lookahead > 0);
  group_size_ = group_size;
  inner_lookahead_ = group_size > 1 ? inner_lookahead : 0;
  group_state_.assign(S / group_size, GroupState{});
  layout_dirty_ = true;
}

void EngineSet::plan_outer() noexcept {
  const std::size_t S = engines_.size();
  // Drain mailboxes in canonical order: per destination, gather messages
  // source-major, stable-sort by timestamp (preserving source-major order
  // within a timestamp), inject.  The destination engine assigns seq
  // numbers in this order, which fixes all downstream tie-breaking
  // independent of worker-thread count.  Only touched (src,dst) pairs are
  // visited, so the drain is O(messages), not O(S^2).  In hierarchical
  // mode every surviving pair is cross-group: groups drain their internal
  // pairs at inner windows and exit with them empty.
  outer_touched_.clear();
  for (std::size_t src = 0; src < S; ++src) {
    auto& tl = touched_[src];
    for (const std::size_t dst : tl) {
      auto& box = outbox(src, dst);
      if (group_size_ > 1) {
        EMUSIM_CHECK(src / group_size_ != dst / group_size_);
      }
      auto& stage = staging_[dst];
      if (stage.empty()) outer_touched_.push_back(dst);
      for (auto& m : box) {
        // Lookahead violation guard: anything posted during the window
        // that just ran must land at or beyond its end.
        EMUSIM_CHECK(m.when >= end_);
        stage.push_back(std::move(m));
      }
      box.clear();
    }
    tl.clear();
  }
  for (const std::size_t dst : outer_touched_) {
    auto& stage = staging_[dst];
    std::stable_sort(stage.begin(), stage.end(),
                     [](const Msg& a, const Msg& b) { return a.when < b.when; });
    Engine& e = engines_[dst];
    for (auto& m : stage) {
      if (m.h) {
        e.inject(m.when, m.h);
      } else {
        e.inject_call(m.when, std::move(m.fn));
      }
    }
    stage.clear();
  }
  if (window_hook_) window_hook_();
  // Next window starts at the earliest pending event across all shards:
  // event-free stretches are skipped in one hop instead of being marched
  // through in lookahead-sized steps.
  bool any = false;
  Time t_min = 0;
  for (const Engine& e : engines_) {
    if (e.idle()) continue;
    const Time t = e.next_when();
    if (!any || t < t_min) t_min = t;
    any = true;
  }
  if (!any) {
    done_ = true;
    return;
  }
  EMUSIM_CHECK(t_min + lookahead_ > end_);  // windows advance monotonically
  end_ = t_min + lookahead_;
  ++outer_windows_;
  if (group_size_ > 1) {
    for (GroupState& gs : group_state_) gs.done = false;
  }
}

void EngineSet::plan_inner(std::size_t g) noexcept {
  GroupState& gs = group_state_[g];
  const std::size_t base = g * group_size_;
  const std::size_t limit = base + group_size_;
  // Drain this group's intra-group mailboxes (same canonical order as the
  // outer drain: per dst, source-major gather, stable sort by timestamp).
  // Cross-group pairs are kept on the touched lists for plan_outer.
  gs.touched_dsts.clear();
  for (std::size_t src = base; src < limit; ++src) {
    auto& tl = touched_[src];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < tl.size(); ++i) {
      const std::size_t dst = tl[i];
      if (dst < base || dst >= limit) {
        tl[keep++] = dst;
        continue;
      }
      auto& box = outbox(src, dst);
      auto& stage = staging_[dst];
      if (stage.empty()) gs.touched_dsts.push_back(dst);
      for (auto& m : box) {
        // Intra-group lookahead guard against the inner window that ran.
        EMUSIM_CHECK(m.when >= gs.inner_end);
        stage.push_back(std::move(m));
      }
      box.clear();
    }
    tl.resize(keep);
  }
  for (const std::size_t dst : gs.touched_dsts) {
    auto& stage = staging_[dst];
    std::stable_sort(stage.begin(), stage.end(),
                     [](const Msg& a, const Msg& b) { return a.when < b.when; });
    Engine& e = engines_[dst];
    for (auto& m : stage) {
      if (m.h) {
        e.inject(m.when, m.h);
      } else {
        e.inject_call(m.when, std::move(m.fn));
      }
    }
    stage.clear();
  }
  // Next inner window opens at the group's earliest pending event (gap
  // fast-forward), clamped to the outer window end.  Events at or beyond
  // the outer end belong to a later outer window.
  bool any = false;
  Time t_min = 0;
  for (std::size_t s = base; s < limit; ++s) {
    const Engine& e = engines_[s];
    if (e.idle()) continue;
    const Time t = e.next_when();
    if (!any || t < t_min) t_min = t;
    any = true;
  }
  if (!any || t_min >= end_) {
    gs.done = true;
    return;
  }
  gs.inner_end = std::min(t_min + inner_lookahead_, end_);
  ++gs.windows;
}

void EngineSet::run_group_serial(std::size_t g) {
  GroupState& gs = group_state_[g];
  const std::size_t base = g * group_size_;
  for (;;) {
    plan_inner(g);
    if (gs.done) return;
    for (std::size_t i = 0; i < group_size_; ++i) {
      engines_[base + i].run_window(gs.inner_end);
    }
  }
}

void EngineSet::run_group_team(std::size_t g, std::size_t rank) {
  GroupState& gs = group_state_[g];
  const std::size_t base = g * group_size_;
  const std::size_t step = team_size_[g];
  auto& bar = *inner_bars_[g];
  for (;;) {
    bar.arrive_and_wait();  // completion step runs plan_inner(g)
    if (gs.done) return;
    for (std::size_t i = rank; i < group_size_; i += step) {
      engines_[base + i].run_window(gs.inner_end);
    }
  }
}

void EngineSet::worker_loop(std::size_t w) {
  const std::size_t S = engines_.size();
  const std::size_t G = groups();
  const std::size_t T = static_cast<std::size_t>(pool_T_);
  for (;;) {
    outer_bar_->arrive_and_wait();  // completion step runs plan_outer()
    if (done_) return;
    if (group_size_ == 1) {
      for (std::size_t s = w; s < S; s += T) engines_[s].run_window(end_);
    } else if (T <= G) {
      // Whole groups per worker: inner loops run serially, no inner
      // barrier needed.
      for (std::size_t g = w; g < G; g += T) run_group_serial(g);
    } else {
      // Workers team up on groups (w mod G); teams of one skip the
      // barrier.
      const std::size_t g = w % G;
      if (team_size_[g] == 1) {
        run_group_serial(g);
      } else {
        run_group_team(g, w / G);
      }
    }
  }
}

void EngineSet::ensure_pool(int T) {
  if (pool_T_ == T && !layout_dirty_) return;
  stop_pool();
  pool_T_ = T;
  layout_dirty_ = false;
  const std::size_t G = groups();
  const std::size_t UT = static_cast<std::size_t>(T);
  team_size_.assign(G, 1);
  inner_bars_.clear();
  if (group_size_ > 1 && UT > G) {
    for (std::size_t g = 0; g < G; ++g) {
      team_size_[g] = UT / G + (g < UT % G ? 1 : 0);
    }
    for (std::size_t g = 0; g < G; ++g) {
      inner_bars_.emplace_back();
      if (team_size_[g] > 1) {
        inner_bars_[g].emplace(static_cast<std::ptrdiff_t>(team_size_[g]),
                               InnerPlan{this, g});
      }
    }
  }
  outer_bar_ = std::make_unique<std::barrier<OuterPlan>>(T, OuterPlan{this});
  // Workers park between runs and wake per epoch; worker 0 is the run()
  // caller and is not pooled.
  pool_.reserve(static_cast<std::size_t>(T - 1));
  for (int w = 1; w < T; ++w) {
    pool_.emplace_back([this, w] {
      std::uint64_t seen = 0;
      for (;;) {
        {
          std::unique_lock lock(mu_);
          cv_start_.wait(lock, [&] { return shutdown_ || epoch_ > seen; });
          if (shutdown_) return;
          seen = epoch_;
        }
        worker_loop(static_cast<std::size_t>(w));
        {
          std::lock_guard lock(mu_);
          ++done_count_;
        }
        cv_done_.notify_one();
      }
    });
  }
}

void EngineSet::stop_pool() {
  if (pool_.empty()) {
    pool_T_ = 0;
    outer_bar_.reset();
    inner_bars_.clear();
    return;
  }
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  pool_.clear();  // jthread joins
  {
    std::lock_guard lock(mu_);
    shutdown_ = false;
  }
  pool_T_ = 0;
  outer_bar_.reset();
  inner_bars_.clear();
}

Time EngineSet::run(Time lookahead, int threads) {
  const std::size_t S = engines_.size();
  if (S == 1) {
    // Exactly the serial engine: no windows, no barriers, no hook.
    return engines_[0].run();
  }
  EMUSIM_CHECK(lookahead > 0);
  if (group_size_ > 1) EMUSIM_CHECK(inner_lookahead_ <= lookahead);
  lookahead_ = lookahead;
  end_ = 0;
  done_ = false;
  outer_windows_ = 0;
  inner_windows_ = 0;
  for (GroupState& gs : group_state_) {
    gs.done = false;
    gs.inner_end = 0;
    gs.windows = 0;
  }
  const std::size_t G = groups();
  int T = threads;
  if (T < 1) T = 1;
  if (T > static_cast<int>(S)) T = static_cast<int>(S);
  if (T == 1) {
    if (group_size_ == 1) {
      for (;;) {
        plan_outer();
        if (done_) break;
        for (Engine& e : engines_) e.run_window(end_);
      }
    } else {
      for (;;) {
        plan_outer();
        if (done_) break;
        for (std::size_t g = 0; g < G; ++g) run_group_serial(g);
      }
    }
  } else {
    // T workers (this thread is worker 0) separated by one outer barrier
    // per window; the barrier's completion step runs plan_outer() on
    // exactly one thread, synchronized-with every worker.  Pool threads
    // persist across run() calls with a stable thread->shard assignment.
    ensure_pool(T);
    {
      std::lock_guard lock(mu_);
      ++epoch_;
      done_count_ = 0;
    }
    cv_start_.notify_all();
    worker_loop(0);
    std::unique_lock lock(mu_);
    cv_done_.wait(lock, [&] { return done_count_ == T - 1; });
  }
  if (group_size_ > 1) {
    for (const GroupState& gs : group_state_) inner_windows_ += gs.windows;
  }
  // Bring every shard to the one global final time, so post-run now()
  // reads (counters, observers) are shard-independent.
  Time final_t = 0;
  for (const Engine& e : engines_) final_t = std::max(final_t, e.now());
  for (Engine& e : engines_) e.advance_to(final_t);
  return final_t;
}

void EngineSet::reset() {
  for (auto& box : outboxes_) box.clear();
  for (auto& tl : touched_) tl.clear();
  for (auto& stage : staging_) stage.clear();
  outer_touched_.clear();
  for (GroupState& gs : group_state_) gs = GroupState{};
  for (Engine& e : engines_) e.reset();
  end_ = 0;
  done_ = false;
  outer_windows_ = 0;
  inner_windows_ = 0;
}

}  // namespace emusim::sim
