// Contention primitives built on the Engine.
//
// FifoServer — a single work-conserving server with an analytic FIFO queue.
//   Instead of materializing a waiter list, the server tracks the time at
//   which it next becomes free; an arrival at time t begins service at
//   max(t, next_free) and departs after its service time.  This is exact for
//   FIFO order and makes each access O(log n) (one event), which matters
//   when tens of millions of memory operations flow through a channel.
//
// RateGate — a FifoServer with a fixed per-item service interval; models
//   throughput-capped pipelines such as the Emu migration engine.
//
// Semaphore — counting semaphore with FIFO waiters; models finite thread
//   slots (64 threadlets per Gossamer core) and line-fill buffers (MLP).
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>

#include "sim/engine.hpp"

namespace emusim::sim {

class FifoServer {
 public:
  explicit FifoServer(Engine& eng) : eng_(&eng) {}

  /// Awaitable: queue for the server, hold it for `service`, resume at the
  /// departure time.  FIFO among callers.
  auto access(Time service) {
    struct Awaiter {
      FifoServer& srv;
      Time service;
      Time depart = 0;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        depart = srv.post(service);
        srv.eng_->schedule(depart, h);
      }
      /// Resumes with the departure time (== now()).
      Time await_resume() const noexcept { return depart; }
    };
    return Awaiter{*this, service};
  }

  /// Account for a request without suspending anyone (posted/fire-and-forget
  /// operations, e.g. stores that are not on the critical path).  Returns
  /// the departure time.
  Time post(Time service) { return post_at(eng_->now(), service); }

  /// Like post(), but the request was issued at `ready`, which may lie
  /// before now(): a request that traveled to reach the server (e.g. a
  /// migration-gate request crossing the intra-node fabric under the
  /// per-nodelet sharded engine) still queues from its issue time, so the
  /// transit overlaps queueing and an uncontended server departs it exactly
  /// as if it had been posted locally at `ready`.
  Time post_at(Time ready, Time service) {
    EMUSIM_CHECK(service >= 0);
    const Time start = next_free_ > ready ? next_free_ : ready;
    next_free_ = start + service;
    busy_ += service;
    ++requests_;
    return next_free_;
  }

  /// Earliest time a new arrival could begin service.
  Time next_free() const { return next_free_; }
  /// Total service time accumulated (for utilization accounting).
  Time busy_time() const { return busy_; }
  std::uint64_t requests() const { return requests_; }

 private:
  Engine* eng_;
  Time next_free_ = 0;
  Time busy_ = 0;
  std::uint64_t requests_ = 0;
};

/// Throughput-capped pipeline: items pass through one at a time at a fixed
/// rate, then experience an additional pipeline latency that overlaps with
/// later items.  Models the Emu migration engine (N migrations/sec with a
/// 1–2 us in-flight latency).
class RateGate {
 public:
  RateGate(Engine& eng, double items_per_sec, Time pipeline_latency)
      : server_(eng),
        eng_(&eng),
        interval_(interval_from_rate(items_per_sec)),
        latency_(pipeline_latency) {}

  /// Awaitable: resume after queueing for a slot plus the pipeline latency.
  auto pass() {
    struct Awaiter {
      RateGate& gate;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        const Time depart = gate.server_.post(gate.interval_);
        gate.eng_->schedule(depart + gate.latency_, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Claim the next slot for a request issued at `ready` (<= now allowed;
  /// see FifoServer::post_at) and return its departure time.  The caller
  /// schedules the resumption at depart + latency() itself — used by the
  /// machine's gate-pass path, where the resumption may land on another
  /// engine shard.
  Time depart_at(Time ready) { return server_.post_at(ready, interval_); }

  Time interval() const { return interval_; }
  Time latency() const { return latency_; }
  std::uint64_t items() const { return server_.requests(); }
  Time busy_time() const { return server_.busy_time(); }

 private:
  FifoServer server_;
  Engine* eng_;
  Time interval_;
  Time latency_;
};

class Semaphore {
 public:
  Semaphore(Engine& eng, std::int64_t count) : eng_(&eng), count_(count) {
    EMUSIM_CHECK(count >= 0);
  }

  /// Awaitable: acquire one unit, waiting FIFO if none are available.
  auto acquire() {
    struct Awaiter {
      Semaphore& sem;
      bool await_ready() const noexcept {
        if (sem.count_ > 0) {
          --sem.count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        sem.waiters_.push_back(h);
        if (sem.waiters_.size() > sem.max_queue_) {
          sem.max_queue_ = sem.waiters_.size();
        }
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  bool try_acquire() {
    if (count_ > 0) {
      --count_;
      return true;
    }
    return false;
  }

  /// Release one unit.  If a coroutine is waiting, the unit transfers to it
  /// directly and it is scheduled to resume at the current time (via the
  /// engine's zero-delay FIFO lane — a grant never touches the heap).
  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      eng_->schedule_now(h);
    } else {
      ++count_;
    }
  }

  std::int64_t available() const { return count_; }
  std::size_t waiting() const { return waiters_.size(); }
  std::size_t max_queue_depth() const { return max_queue_; }

 private:
  Engine* eng_;
  std::int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
  std::size_t max_queue_ = 0;
};

}  // namespace emusim::sim
