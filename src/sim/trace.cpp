#include "sim/trace.hpp"

#include "common/check.hpp"

namespace emusim::sim {

const char* to_string(TraceKind k) {
  switch (k) {
    case TraceKind::thread_spawn: return "thread_spawn";
    case TraceKind::thread_start: return "thread_start";
    case TraceKind::thread_end: return "thread_end";
    case TraceKind::migrate_out: return "migrate_out";
    case TraceKind::migrate_in: return "migrate_in";
    case TraceKind::mem_read: return "mem_read";
    case TraceKind::mem_write: return "mem_write";
    case TraceKind::remote_atomic: return "remote_atomic";
  }
  return "?";
}

std::size_t Tracer::count(TraceKind kind, std::int32_t who) const {
  std::size_t n = 0;
  for_each([&](const TraceRecord& r) {
    if (r.kind == kind && (who < 0 || r.a == who)) ++n;
  });
  return n;
}

void Tracer::dump(std::FILE* out) const {
  for_each([&](const TraceRecord& r) {
    std::fprintf(out, "%14s  %-13s a=%-3d b=%-3d tid=%-5d arg=%llu\n",
                 format_time(r.t).c_str(), to_string(r.kind), r.a, r.b, r.tid,
                 static_cast<unsigned long long>(r.arg));
  });
  if (truncated()) {
    std::fprintf(out, "... TRUNCATED: %llu records %s at capacity %zu\n",
                 static_cast<unsigned long long>(dropped_),
                 ring_ ? "overwritten (oldest first)" : "dropped (newest)",
                 capacity_);
  }
}

std::vector<std::vector<std::uint64_t>> Tracer::migration_matrix(
    int num_nodelets, std::uint64_t* out_of_range) const {
  std::vector<std::vector<std::uint64_t>> m(
      static_cast<std::size_t>(num_nodelets),
      std::vector<std::uint64_t>(static_cast<std::size_t>(num_nodelets), 0));
  std::uint64_t oor = 0;
  for_each([&](const TraceRecord& r) {
    if (r.kind != TraceKind::migrate_out) return;
    if (r.a >= 0 && r.a < num_nodelets && r.b >= 0 && r.b < num_nodelets) {
      ++m[static_cast<std::size_t>(r.a)][static_cast<std::size_t>(r.b)];
    } else {
      ++oor;
    }
  });
  if (out_of_range != nullptr) *out_of_range = oor;
  return m;
}

std::vector<std::vector<std::uint64_t>> Tracer::activity(
    TraceKind kind, int num_entities, Time bucket, Time end,
    std::uint64_t* out_of_window) const {
  EMUSIM_CHECK(num_entities > 0 && bucket > 0);
  const auto buckets =
      static_cast<std::size_t>(end / bucket + (end % bucket ? 1 : 0));
  std::vector<std::vector<std::uint64_t>> act(
      static_cast<std::size_t>(num_entities),
      std::vector<std::uint64_t>(buckets ? buckets : 1, 0));
  std::uint64_t oow = 0;
  for_each([&](const TraceRecord& r) {
    if (r.kind != kind || r.a < 0 || r.a >= num_entities) return;
    // Events at or past `end` (and before 0) are outside the requested
    // window.  Folding them into the edge buckets would conflate them with
    // real edge activity, so they are counted separately instead.
    if (r.t < 0 || r.t >= end) {
      ++oow;
      return;
    }
    const auto b = static_cast<std::size_t>(r.t / bucket);
    ++act[static_cast<std::size_t>(r.a)][b];
  });
  if (out_of_window != nullptr) *out_of_window = oow;
  return act;
}

}  // namespace emusim::sim
