// SmallFn: a move-only `void()` callable with an inline small-object store.
//
// Replaces std::function on the simulator hot path.  Captures up to
// kInlineBytes live directly inside the object — scheduling a callback then
// allocates nothing — and only oversized captures fall back to a single heap
// cell.  Dispatch is one indirect call through a static per-type ops table;
// moving is a pointer copy (heap case) or the capture's own move (inline
// case, required to be noexcept so container relocation never throws).
//
// Unlike std::function, SmallFn is move-only: event queues and completion
// hooks hand callables off exactly once, and forbidding copies is what lets
// the engine guarantee a closure is never deep-copied on dispatch (see the
// copy-counting regression test in tests/test_engine.cpp).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace emusim::sim {

class SmallFn {
 public:
  /// Inline capture budget.  Sized so the engine's Event stays within one
  /// cache line while still holding three pointers plus change — every
  /// callback the simulator itself schedules fits.
  static constexpr std::size_t kInlineBytes = 32;

  SmallFn() = default;

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::remove_cvref_t<F>;
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &InlineModel<D>::ops;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapModel<D>::ops;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }
  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// True when the stored callable lives in the inline buffer (exposed so
  /// tests can pin down which captures allocate).
  bool is_inline() const noexcept { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct the payload into `dst` and destroy it in `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    bool inline_storage;
  };

  template <class D>
  static constexpr bool fits_inline =
      sizeof(D) <= kInlineBytes && alignof(D) <= alignof(void*) &&
      std::is_nothrow_move_constructible_v<D>;

  template <class D>
  struct InlineModel {
    static void invoke(void* p) { (*static_cast<D*>(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D(std::move(*static_cast<D*>(src)));
      static_cast<D*>(src)->~D();
    }
    static void destroy(void* p) noexcept { static_cast<D*>(p)->~D(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy, true};
  };

  template <class D>
  struct HeapModel {
    static void invoke(void* p) { (**static_cast<D**>(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) D*(*static_cast<D**>(src));
    }
    static void destroy(void* p) noexcept { delete *static_cast<D**>(p); }
    static constexpr Ops ops{&invoke, &relocate, &destroy, false};
  };

  void move_from(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(void*) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace emusim::sim
