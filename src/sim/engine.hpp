// Discrete-event simulation core.
//
// The Engine owns a timed event queue.  An event either resumes a suspended
// coroutine (the common case: a simulated thread waiting on a delay or a
// resource) or invokes a plain callback (used by machine components such as
// prefetchers).  Ties are broken by insertion order, so a simulation run is
// fully deterministic.
//
// The queue is allocation-free on the hot path:
//   * a queued event is a trivially-copyable 24-byte entry — (when, seq,
//     tagged payload).  Coroutine resumptions pack the raw handle into the
//     payload word; callbacks park a SmallFn (inline small-object store,
//     heap fallback only for oversized captures) in a free-listed slot pool
//     and the payload carries the slot index.  Heap sifts therefore shuffle
//     PODs and never touch a closure;
//   * timed entries sit in an explicit 4-ary heap over a flat vector — a
//     shallower tree than a binary heap (fewer cache lines per sift), with
//     move-on-pop so dispatch never deep-copies anything;
//   * entries scheduled for exactly now() — zero-delay yields, semaphore
//     grants, sync wakeups: the bulk of spawn-tree traffic — take a FIFO
//     ring that bypasses the heap entirely.  FIFO entries are consumed in
//     seq order against the heap top, so the two lanes interleave exactly
//     as one queue would.
//
// All coroutine resumptions go through the event queue — components never
// resume a coroutine synchronously from inside another coroutine.  This
// keeps stack depth bounded regardless of how many simulated threads wake
// each other.
#pragma once

#include <bit>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"
#include "sim/callback.hpp"

namespace emusim::sim {

class EngineSet;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Resume coroutine `h` at absolute time `when` (>= now()).
  void schedule(Time when, std::coroutine_handle<> h) {
    EMUSIM_CHECK(when >= now_);
    push_entry(when, coro_payload(h));
  }

  /// Resume coroutine `h` after `delay`.
  void schedule_in(Time delay, std::coroutine_handle<> h) {
    schedule(now_ + delay, h);
  }

  /// Resume coroutine `h` at the current time, after all already-queued
  /// events for this timestamp.  The explicit zero-delay entry point:
  /// producers that wake a peer "immediately" (semaphore grants, sync
  /// notifications) land straight in the FIFO fast lane.
  void schedule_now(std::coroutine_handle<> h) {
    fifo_push(Entry{now_, next_seq_++, coro_payload(h)});
  }

  /// Invoke `fn` at absolute time `when`.  Any callable `void()`; captures
  /// up to SmallFn::kInlineBytes are stored without allocating.
  template <class F>
  void call_at(Time when, F&& fn) {
    EMUSIM_CHECK(when >= now_);
    push_entry(when, slot_payload(std::forward<F>(fn)));
  }

  /// Invoke `fn` after `delay`.
  template <class F>
  void call_in(Time delay, F&& fn) {
    call_at(now_ + delay, std::forward<F>(fn));
  }

  /// Process the earliest event.  Returns false when the queue is empty.
  bool step() {
    Entry e;
    if (!pop_next(e)) return false;
    EMUSIM_CHECK(e.when >= now_);
    now_ = e.when;
    ++events_processed_;
    if ((e.payload & 1) == 0) {
      std::coroutine_handle<>::from_address(
          reinterpret_cast<void*>(e.payload))
          .resume();
    } else {
      dispatch_slot(e.payload);
    }
    return true;
  }

  /// Run until no events remain.  Returns the final simulated time.
  Time run() {
    while (step()) {
    }
    return now_;
  }

  /// Run until no events remain with a timestamp <= `deadline`, then
  /// advance the clock to `deadline` (callers that interleave run_until
  /// with call_at(now() + dt, ...) rely on now() reflecting the full
  /// interval even when the queue drains early).  A deadline in the past
  /// never moves time backwards.
  Time run_until(Time deadline) {
    while (!idle() && next_when() <= deadline) step();
    if (now_ < deadline) now_ = deadline;
    return now_;
  }

  /// Process all events with a timestamp strictly before `end`, leaving the
  /// clock at the last processed event rather than bumping it to `end`.
  /// Building block for the windowed parallel driver (EngineSet): a shard
  /// executes one conservative time window, then the driver exchanges
  /// cross-shard messages — which carry timestamps >= `end` and must still
  /// satisfy the when > now() heap routing — and opens the next window.
  Time run_window(Time end) {
    while (!idle() && next_when() < end) step();
    return now_;
  }

  /// Queue a cross-shard coroutine resumption delivered by the windowed
  /// driver.  Semantically identical to schedule(), but named separately so
  /// mailbox delivery sites are greppable; the conservative-window invariant
  /// guarantees `when` lies at or beyond the current window end, i.e.
  /// strictly in this shard's future.
  void inject(Time when, std::coroutine_handle<> h) {
    EMUSIM_CHECK(when > now_);
    push_entry(when, coro_payload(h));
  }

  /// Queue a cross-shard callback delivered by the windowed driver.
  void inject_call(Time when, SmallFn fn) {
    EMUSIM_CHECK(when > now_);
    push_entry(when, slot_payload(std::move(fn)));
  }

  /// Advance the clock to `t` without processing anything.  Used by the
  /// windowed driver to bring every shard to the same final time once all
  /// queues have drained, so post-run now() reads are shard-independent.
  void advance_to(Time t) {
    EMUSIM_CHECK(idle() || next_when() >= t);
    if (t > now_) now_ = t;
  }

  bool idle() const { return fifo_count_ == 0 && heap_.empty(); }
  std::uint64_t events_processed() const { return events_processed_; }

  /// Return to a just-constructed state — time 0, empty queue, zeroed
  /// counters — while keeping the heap / FIFO-ring / slot-pool storage.
  /// Callers running many simulations back to back (one point of a bench
  /// sweep each) reuse one Engine and stop re-growing the same vectors on
  /// every run.  Pending events are dropped; parked callbacks (and any
  /// coroutine frames they own) are destroyed, not invoked.
  void reset() {
    heap_.clear();
    fifo_head_ = 0;
    fifo_count_ = 0;
    slots_.clear();
    free_slots_.clear();
    now_ = 0;
    next_seq_ = 0;
    events_processed_ = 0;
  }

  /// Pre-size event storage for about `events_hint` concurrently *pending*
  /// events (peak in-flight, not total processed — a run's events_processed
  /// is usually orders of magnitude larger than its peak queue depth).
  /// Feed it footprint() of a previous comparable run: sweeps over
  /// same-shaped points then allocate once instead of once per point.
  void reserve(std::size_t events_hint) {
    heap_.reserve(events_hint);
    if (fifo_.size() < events_hint) {
      // One allocation straight to the next power of two >= the hint; the
      // doubling loop this replaces reallocated and copied the ring once
      // per step on the way up.
      fifo_grow_to(std::bit_ceil(events_hint));
    }
    // SmallFn slots are ~48 B each and callbacks are a small fraction of
    // traffic; cap the speculative reservation.
    slots_.reserve(events_hint < 4096 ? events_hint : 4096);
  }

  /// Observed peak in-flight storage (capacity-based, so tracking costs
  /// nothing on the hot path).  Suitable as the `events_hint` for the next
  /// run's reserve(): capacities grow geometrically, so the value is
  /// between the true peak and twice the peak, and feeding it back through
  /// reserve() reaches a fixed point instead of ratcheting upward.
  std::size_t footprint() const {
    std::size_t peak =
        heap_.capacity() > fifo_.size() ? heap_.capacity() : fifo_.size();
    // The SmallFn slot pool grows with peak in-flight callbacks just like
    // the entry lanes do; leaving it out made callback-heavy sweeps re-grow
    // the pool on every point instead of reaching the reserve() fixed point.
    if (slots_.capacity() > peak) peak = slots_.capacity();
    return peak;
  }

  /// Awaitable: suspend the current coroutine for `delay` simulated time.
  /// A delay of zero still round-trips through the event queue — via the
  /// FIFO fast lane — which is useful for yielding fairly to other ready
  /// work at the same timestamp.
  auto sleep(Time delay) {
    struct Awaiter {
      Engine& eng;
      Time delay;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        eng.schedule_in(delay, h);
      }
      void await_resume() const noexcept {}
    };
    EMUSIM_CHECK(delay >= 0);
    return Awaiter{*this, delay};
  }

  /// Awaitable: suspend until absolute time `when`.
  auto sleep_until(Time when) { return sleep(when > now_ ? when - now_ : 0); }

 private:
  /// The windowed parallel driver steers shards by their next pending
  /// timestamp (next_when / idle) between windows.
  friend class EngineSet;

  /// One queued event.  `payload` is tagged by its low bit: 0 = the address
  /// of a coroutine handle (always pointer-aligned), 1 = a SmallFn slot
  /// index shifted left by one.  Keeping entries trivially copyable is what
  /// makes heap sifts cheap — relocation is a plain 24-byte move with no
  /// indirect calls.
  struct Entry {
    Time when;
    std::uint64_t seq;
    std::uintptr_t payload;
  };

  static std::uintptr_t coro_payload(std::coroutine_handle<> h) {
    return reinterpret_cast<std::uintptr_t>(h.address());
  }

  /// Invoke the parked callback a tagged payload points at.  Kept out of
  /// step() so step()'s inlinable body stays small: with several run()
  /// loops instantiated in one translation unit, the inliner otherwise
  /// outlines step() entirely, costing coroutine-resume scenarios an extra
  /// call + spill per event.
  void dispatch_slot(std::uintptr_t payload) {
    const auto slot = static_cast<std::uint32_t>(payload >> 1);
    // Move the callable out before invoking: the callback may schedule
    // new events, which can grow the slot pool and invalidate references
    // into it.
    SmallFn fn = std::move(slots_[slot]);
    free_slots_.push_back(slot);
    fn();
  }

  template <class F>
  std::uintptr_t slot_payload(F&& fn) {
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
      slots_[slot] = SmallFn(std::forward<F>(fn));
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back(std::forward<F>(fn));
    }
    return (static_cast<std::uintptr_t>(slot) << 1) | 1;
  }

  /// (when, seq) packed into one 128-bit key.  `when` is never negative
  /// (time starts at 0 and schedule() checks when >= now()), so unsigned
  /// comparison of the packed key matches lexicographic (when, seq) order
  /// and compiles to a branchless cmp/sbb pair — heap sifts on mixed
  /// timestamps would otherwise mispredict the when-vs-seq tie branch.
  static unsigned __int128 order_key(const Entry& e) {
    return (static_cast<unsigned __int128>(static_cast<std::uint64_t>(e.when))
            << 64) |
           e.seq;
  }

  static bool before(const Entry& a, const Entry& b) {
    return order_key(a) < order_key(b);
  }

  /// Scalar parameters on purpose: a 24-byte Entry argument would be passed
  /// on the stack (SysV passes >16-byte aggregates in memory), and this is
  /// called once per scheduled event — often as an out-of-line call from a
  /// coroutine frame.
  void push_entry(Time when, std::uintptr_t payload) {
    const Entry e{when, next_seq_++, payload};
    if (e.when == now_) {
      fifo_push(e);
    } else {
      heap_push(e);
    }
  }

  // --- 4-ary min-heap over a flat vector, ordered by (when, seq) ---------

  void heap_push(Entry e) {
    heap_.push_back(e);
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!before(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  Entry heap_pop() {
    const Entry top = heap_.front();
    const Entry last = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n > 0) {
      std::size_t i = 0;
      for (;;) {
        const std::size_t first = 4 * i + 1;
        if (first >= n) break;
        std::size_t best = first;
        const std::size_t end = first + 4 < n ? first + 4 : n;
        for (std::size_t c = first + 1; c < end; ++c) {
          if (before(heap_[c], heap_[best])) best = c;
        }
        if (!before(heap_[best], last)) break;
        heap_[i] = heap_[best];
        i = best;
      }
      heap_[i] = last;
    }
    return top;
  }

  // --- FIFO fast lane: a ring of entries with when == now() --------------
  //
  // Entries are pushed with monotonically increasing seq, so the ring is
  // sorted by seq by construction; pop_next() merges it with the heap top
  // by (when, seq) to preserve global insertion-order ties.  The ring fully
  // drains before time can advance: its entries carry the minimum pending
  // timestamp by the when >= now() scheduling invariant.

  void fifo_push(Entry e) {
    if (fifo_count_ == fifo_.size()) fifo_grow();
    fifo_[(fifo_head_ + fifo_count_) & (fifo_.size() - 1)] = e;
    ++fifo_count_;
  }

  Entry fifo_pop() {
    const Entry e = fifo_[fifo_head_];
    fifo_head_ = (fifo_head_ + 1) & (fifo_.size() - 1);
    --fifo_count_;
    return e;
  }

  void fifo_grow() {
    const std::size_t old_cap = fifo_.size();
    fifo_grow_to(old_cap == 0 ? 64 : old_cap * 2);
  }

  /// Replace the ring with one of capacity `new_cap` (a power of two >= 64
  /// and > the current capacity), preserving queued entries in order.
  void fifo_grow_to(std::size_t new_cap) {
    const std::size_t old_cap = fifo_.size();
    if (new_cap < 64) new_cap = 64;
    std::vector<Entry> grown(new_cap);
    for (std::size_t k = 0; k < fifo_count_; ++k) {
      grown[k] = fifo_[(fifo_head_ + k) & (old_cap - 1)];
    }
    fifo_ = std::move(grown);
    fifo_head_ = 0;
  }

  /// Timestamp of the earliest pending event; queue must not be idle.
  Time next_when() const {
    if (fifo_count_ > 0) return fifo_[fifo_head_].when;
    return heap_.front().when;
  }

  bool pop_next(Entry& out) {
    const bool have_fifo = fifo_count_ > 0;
    const bool have_heap = !heap_.empty();
    if (!have_fifo && !have_heap) return false;
    if (have_fifo &&
        (!have_heap || before(fifo_[fifo_head_], heap_.front()))) {
      out = fifo_pop();
    } else {
      out = heap_pop();
    }
    return true;
  }

  std::vector<Entry> heap_;
  std::vector<Entry> fifo_;  ///< power-of-two ring buffer
  std::size_t fifo_head_ = 0;
  std::size_t fifo_count_ = 0;
  std::vector<SmallFn> slots_;  ///< parked callbacks, free-listed
  std::vector<std::uint32_t> free_slots_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
};

}  // namespace emusim::sim
