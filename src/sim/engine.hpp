// Discrete-event simulation core.
//
// The Engine owns a priority queue of timed events.  An event either resumes
// a suspended coroutine (the common case: a simulated thread waiting on a
// delay or a resource) or invokes a plain callback (used by machine
// components such as prefetchers).  Ties are broken by insertion order, so a
// simulation run is fully deterministic.
//
// All coroutine resumptions go through the event queue — components never
// resume a coroutine synchronously from inside another coroutine.  This
// keeps stack depth bounded regardless of how many simulated threads wake
// each other.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"

namespace emusim::sim {

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Resume coroutine `h` at absolute time `when` (>= now()).
  void schedule(Time when, std::coroutine_handle<> h) {
    EMUSIM_CHECK(when >= now_);
    pq_.push(Event{when, next_seq_++, h, {}});
  }

  /// Resume coroutine `h` after `delay`.
  void schedule_in(Time delay, std::coroutine_handle<> h) {
    schedule(now_ + delay, h);
  }

  /// Invoke `fn` at absolute time `when`.
  void call_at(Time when, std::function<void()> fn) {
    EMUSIM_CHECK(when >= now_);
    pq_.push(Event{when, next_seq_++, {}, std::move(fn)});
  }

  /// Invoke `fn` after `delay`.
  void call_in(Time delay, std::function<void()> fn) {
    call_at(now_ + delay, std::move(fn));
  }

  /// Process the earliest event.  Returns false when the queue is empty.
  bool step() {
    if (pq_.empty()) return false;
    Event ev = pq_.top();
    pq_.pop();
    EMUSIM_CHECK(ev.when >= now_);
    now_ = ev.when;
    ++events_processed_;
    if (ev.coro) {
      ev.coro.resume();
    } else {
      ev.fn();
    }
    return true;
  }

  /// Run until no events remain.  Returns the final simulated time.
  Time run() {
    while (step()) {
    }
    return now_;
  }

  /// Run until no events remain or simulated time exceeds `deadline`.
  Time run_until(Time deadline) {
    while (!pq_.empty() && pq_.top().when <= deadline) step();
    return now_;
  }

  bool idle() const { return pq_.empty(); }
  std::uint64_t events_processed() const { return events_processed_; }

  /// Awaitable: suspend the current coroutine for `delay` simulated time.
  /// A delay of zero still round-trips through the event queue, which is
  /// useful for yielding fairly to other ready work at the same timestamp.
  auto sleep(Time delay) {
    struct Awaiter {
      Engine& eng;
      Time delay;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        eng.schedule_in(delay, h);
      }
      void await_resume() const noexcept {}
    };
    EMUSIM_CHECK(delay >= 0);
    return Awaiter{*this, delay};
  }

  /// Awaitable: suspend until absolute time `when`.
  auto sleep_until(Time when) { return sleep(when > now_ ? when - now_ : 0); }

 private:
  struct Event {
    Time when = 0;
    std::uint64_t seq = 0;
    std::coroutine_handle<> coro;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> pq_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
};

}  // namespace emusim::sim
