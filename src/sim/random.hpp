// Deterministic pseudo-random utilities for workload generation.
//
// xoshiro256** with splitmix64 seeding — fast, high-quality, and stable
// across platforms (unlike std::mt19937 + std::shuffle whose results vary
// by standard library).  All workloads derive their layout from an explicit
// seed so runs are exactly reproducible.
#pragma once

#include <cstdint>
#include <vector>

namespace emusim::sim {

constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDBA5EBA11ULL) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift (unbiased
  /// enough for workload shuffling; bound must be nonzero).
  std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Fisher–Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<std::uint32_t> permutation(std::size_t n) {
    std::vector<std::uint32_t> p(n);
    for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<std::uint32_t>(i);
    shuffle(p);
    return p;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace emusim::sim
