// Event tracing for simulated machines.
//
// The vendor's toolchain ships a simulator that "counts key performance
// events such as the number of thread spawns, migrations, and memory
// operations per nodelet" (paper §III-B).  This tracer is the mechanism
// behind our equivalent: when enabled on a Machine it records a bounded
// stream of timestamped events that reports and tests can aggregate (e.g.
// per-nodelet utilization over time, migration matrices).
//
// Tracing is off by default and costs one branch per event when disabled.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace emusim::sim {

enum class TraceKind : std::uint8_t {
  thread_spawn,   ///< a = birth nodelet, b = parent nodelet (-1: root)
  thread_start,   ///< a = nodelet
  thread_end,     ///< a = nodelet
  migrate_out,    ///< a = source nodelet, b = destination nodelet
  migrate_in,     ///< a = destination nodelet, b = source nodelet
  mem_read,       ///< a = nodelet, arg = bytes
  mem_write,      ///< a = nodelet, arg = bytes
  remote_atomic,  ///< a = target nodelet
};

const char* to_string(TraceKind k);

struct TraceRecord {
  Time t = 0;
  TraceKind kind = TraceKind::thread_spawn;
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::uint64_t arg = 0;
};

class Tracer {
 public:
  /// Enable tracing, keeping at most `capacity` records (recording stops
  /// silently at capacity; `dropped()` reports the overflow).
  void enable(std::size_t capacity = 1u << 20) {
    enabled_ = true;
    capacity_ = capacity;
    records_.clear();
    records_.reserve(capacity < 4096 ? capacity : 4096);
    dropped_ = 0;
  }
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  void record(Time t, TraceKind kind, std::int32_t a, std::int32_t b = -1,
              std::uint64_t arg = 0) {
    if (!enabled_) return;
    if (records_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    records_.push_back(TraceRecord{t, kind, a, b, arg});
  }

  const std::vector<TraceRecord>& records() const { return records_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Count records of one kind (optionally restricted to `a == who`).
  std::size_t count(TraceKind kind, std::int32_t who = -1) const;

  /// Human-readable dump (one line per record).
  void dump(std::FILE* out) const;

  /// Migration matrix: result[src][dst] = number of migrate_out records,
  /// sized num_nodelets x num_nodelets.
  std::vector<std::vector<std::uint64_t>> migration_matrix(
      int num_nodelets) const;

  /// Per-entity activity over time: bucket counts of records of `kind` per
  /// `bucket` of simulated time; result[entity][bucket_index].
  std::vector<std::vector<std::uint64_t>> activity(TraceKind kind,
                                                   int num_entities,
                                                   Time bucket,
                                                   Time end) const;

 private:
  bool enabled_ = false;
  std::size_t capacity_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<TraceRecord> records_;
};

}  // namespace emusim::sim
