// Event tracing for simulated machines.
//
// The vendor's toolchain ships a simulator that "counts key performance
// events such as the number of thread spawns, migrations, and memory
// operations per nodelet" (paper §III-B).  This tracer is the mechanism
// behind our equivalent: when enabled on a Machine it records a bounded
// stream of timestamped events that reports and tests can aggregate (e.g.
// per-nodelet utilization over time, migration matrices) and that
// report/observe.hpp exports as Chrome/Perfetto trace-event JSON.
//
// Two bounded modes:
//   enable(capacity)       — linear: keep the *oldest* records, then stop.
//   enable_ring(capacity)  — ring: keep the *newest* records, overwriting
//                            the oldest (long runs keep their tail).
// Either way `dropped()` counts records not retained and `truncated()`
// flags it; aggregations over a truncated trace are lower bounds, so every
// exporter must surface the flag (see docs/OBSERVABILITY.md).
//
// Tracing is off by default and costs one branch per event when disabled.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace emusim::sim {

enum class TraceKind : std::uint8_t {
  thread_spawn,   ///< a = birth nodelet, b = parent nodelet (-1: root)
  thread_start,   ///< a = nodelet
  thread_end,     ///< a = nodelet
  migrate_out,    ///< a = source nodelet, b = destination nodelet
  migrate_in,     ///< a = destination nodelet, b = source nodelet
  mem_read,       ///< a = nodelet, arg = bytes
  mem_write,      ///< a = nodelet, arg = bytes
  remote_atomic,  ///< a = target nodelet
};

const char* to_string(TraceKind k);

struct TraceRecord {
  Time t = 0;
  TraceKind kind = TraceKind::thread_spawn;
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::int32_t tid = -1;  ///< simulated thread id (-1: not attributed)
  std::uint64_t arg = 0;
};

class Tracer {
 public:
  /// Enable tracing, keeping at most `capacity` records (recording stops
  /// silently at capacity; `dropped()` reports the overflow).
  void enable(std::size_t capacity = 1u << 20) {
    reset(capacity, /*ring=*/false);
  }

  /// Enable tracing with a ring buffer: at capacity the *oldest* record is
  /// overwritten, so a long run keeps its newest `capacity` events.
  /// `dropped()` counts the overwritten records.
  void enable_ring(std::size_t capacity = 1u << 20) {
    reset(capacity, /*ring=*/true);
  }

  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }
  bool ring() const { return ring_; }
  std::size_t capacity() const { return capacity_; }

  void record(Time t, TraceKind kind, std::int32_t a, std::int32_t b = -1,
              std::uint64_t arg = 0, std::int32_t tid = -1) {
    if (!enabled_) return;
    if (records_.size() >= capacity_) {
      if (!ring_ || capacity_ == 0) {
        ++dropped_;
        return;
      }
      records_[head_] = TraceRecord{t, kind, a, b, tid, arg};
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
      return;
    }
    records_.push_back(TraceRecord{t, kind, a, b, tid, arg});
  }

  /// Retained records in *storage* order.  In ring mode the storage is
  /// rotated once it wraps — use size()/at()/for_each for time order.
  const std::vector<TraceRecord>& records() const { return records_; }

  std::size_t size() const { return records_.size(); }

  /// i-th retained record in time order (handles ring rotation).
  const TraceRecord& at(std::size_t i) const {
    return records_[(head_ + i) % records_.size()];
  }

  /// Visit every retained record, oldest first.
  template <class Fn>
  void for_each(Fn&& fn) const {
    const std::size_t n = records_.size();
    for (std::size_t i = 0; i < n; ++i) fn(records_[(head_ + i) % n]);
  }

  /// Records not retained: past capacity (linear) or overwritten (ring).
  std::uint64_t dropped() const { return dropped_; }

  /// True when any record was lost — every aggregation below is then a
  /// lower bound and exporters must say so.
  bool truncated() const { return dropped_ > 0; }

  /// Count records of one kind (optionally restricted to `a == who`).
  /// Over a truncated trace this undercounts; check truncated().
  std::size_t count(TraceKind kind, std::int32_t who = -1) const;

  /// Human-readable dump (one line per record, plus a truncation line).
  void dump(std::FILE* out) const;

  /// Migration matrix: result[src][dst] = number of migrate_out records,
  /// sized num_nodelets x num_nodelets.  Records with out-of-range nodelet
  /// ids are counted into `*out_of_range` when given, never clamped.
  std::vector<std::vector<std::uint64_t>> migration_matrix(
      int num_nodelets, std::uint64_t* out_of_range = nullptr) const;

  /// Per-entity activity over time: bucket counts of records of `kind` per
  /// `bucket` of simulated time; result[entity][bucket_index].  Records at
  /// `t >= end` are outside the window: they are dropped from the buckets
  /// and counted into `*out_of_window` when given (never folded into the
  /// last bucket).
  std::vector<std::vector<std::uint64_t>> activity(
      TraceKind kind, int num_entities, Time bucket, Time end,
      std::uint64_t* out_of_window = nullptr) const;

 private:
  void reset(std::size_t capacity, bool ring) {
    enabled_ = true;
    ring_ = ring;
    capacity_ = capacity;
    head_ = 0;
    records_.clear();
    records_.reserve(capacity < 4096 ? capacity : 4096);
    dropped_ = 0;
  }

  bool enabled_ = false;
  bool ring_ = false;
  std::size_t capacity_ = 0;
  std::size_t head_ = 0;  ///< ring mode: index of the oldest record
  std::uint64_t dropped_ = 0;
  std::vector<TraceRecord> records_;
};

}  // namespace emusim::sim
