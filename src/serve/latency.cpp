#include "serve/latency.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace emusim::serve {

std::size_t LatencyRecorder::bucket_of(Time v) {
  if (v < 0) v = 0;
  const auto u = static_cast<std::uint64_t>(v);
  if (u < kSubBuckets) return static_cast<std::size_t>(u);
  const int msb = 63 - std::countl_zero(u);
  const std::uint64_t top = u >> (msb - kSubBucketBits);  // [32, 64)
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(msb - kSubBucketBits + 1) << kSubBucketBits) +
      (top - kSubBuckets));
}

Time LatencyRecorder::bucket_upper(std::size_t i) {
  if (i < kSubBuckets) return static_cast<Time>(i);
  const int octave = static_cast<int>(i >> kSubBucketBits) - 1;
  const std::uint64_t sub = i & (kSubBuckets - 1);
  // The top octaves overflow 64-bit edge arithmetic ((kSubBuckets + sub)
  // << octave wraps once octave reaches 58 and the edge passes 2^63);
  // compute in 128 bits and saturate to the Time range.
  const unsigned __int128 upper =
      (static_cast<unsigned __int128>(kSubBuckets + sub) << octave) +
      ((static_cast<unsigned __int128>(1) << octave) - 1);
  constexpr auto kTimeMax =
      static_cast<unsigned __int128>(std::numeric_limits<Time>::max());
  return upper > kTimeMax ? std::numeric_limits<Time>::max()
                          : static_cast<Time>(upper);
}

void LatencyRecorder::record(Time v) {
  if (v < 0) v = 0;
  ++buckets_[bucket_of(v)];
  ++count_;
  sum_ += v;
  if (v > max_) max_ = v;
}

std::uint64_t LatencyRecorder::nearest_rank(double q, std::uint64_t count) {
  EMUSIM_CHECK(q > 0.0 && q <= 1.0);
  if (count == 0) return 0;
  // ceil(q * count) without the double round trip (q * count as a double
  // misranks once count approaches 2^53): decompose q = mant * 2^exp with
  // mant in [0.5, 1), lift the significand to the 53-bit integer
  // mant53 = mant * 2^53 (exact), and take
  //   ceil(q * count) = (mant53 * count + 2^shift - 1) >> shift,
  // shift = 53 - exp.  mant53 * count < 2^117, and shift < 127 whenever the
  // product can reach 1, so 128-bit arithmetic is exact throughout.
  int exp = 0;
  const double mant = std::frexp(q, &exp);
  const auto mant53 = static_cast<unsigned __int128>(std::ldexp(mant, 53));
  const int shift = 53 - exp;  // >= 52 since q <= 1 implies exp <= 1
  std::uint64_t rank = 1;      // q * count < 1 rounds up to the minimum
  if (shift < 127) {
    const unsigned __int128 prod = mant53 * count;
    const unsigned __int128 half_open =
        (static_cast<unsigned __int128>(1) << shift) - 1;
    rank = static_cast<std::uint64_t>((prod + half_open) >> shift);
  }
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  return rank;
}

Time LatencyRecorder::percentile(double q) const {
  if (count_ == 0) return 0;
  // Nearest rank: the smallest k with cumulative(k) >= ceil(q * count).
  const std::uint64_t rank = nearest_rank(q, count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // The topmost occupied bucket's upper edge may exceed the exact max;
      // the max is tracked exactly, so clamp to it.
      const Time edge = bucket_upper(i);
      return edge < max_ ? edge : max_;
    }
  }
  return max_;  // unreachable when counts are consistent
}

void LatencyRecorder::merge(const LatencyRecorder& o) {
  for (std::size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += o.buckets_[i];
  count_ += o.count_;
  sum_ += o.sum_;
  if (o.max_ > max_) max_ = o.max_;
}

report::Json LatencyRecorder::to_json() const {
  report::Json j = report::Json::object();
  j.set("count", report::Json::number(static_cast<double>(count_)));
  j.set("max_ps", report::Json::number(static_cast<double>(max_)));
  j.set("sum_ps", report::Json::number(static_cast<double>(sum_)));
  j.set("p50_ps", report::Json::number(static_cast<double>(p50())));
  j.set("p95_ps", report::Json::number(static_cast<double>(p95())));
  j.set("p99_ps", report::Json::number(static_cast<double>(p99())));
  report::Json buckets = report::Json::array();
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    report::Json pair = report::Json::array();
    pair.push_back(report::Json::number(static_cast<double>(i)));
    pair.push_back(report::Json::number(static_cast<double>(buckets_[i])));
    buckets.push_back(std::move(pair));
  }
  j.set("buckets", std::move(buckets));
  return j;
}

PhasedLatency::PhasedLatency(std::vector<std::string> phases) {
  phases_.reserve(phases.size());
  for (auto& name : phases) phases_.emplace_back(std::move(name),
                                                 LatencyRecorder{});
}

void PhasedLatency::record(std::size_t phase, Time v) {
  EMUSIM_CHECK(phase < phases_.size());
  overall_.record(v);
  phases_[phase].second.record(v);
}

void PhasedLatency::merge(const PhasedLatency& o) {
  EMUSIM_CHECK(phases_.size() == o.phases_.size());
  overall_.merge(o.overall_);
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    EMUSIM_CHECK(phases_[i].first == o.phases_[i].first);
    phases_[i].second.merge(o.phases_[i].second);
  }
}

report::Json PhasedLatency::to_json() const {
  report::Json j = report::Json::object();
  j.set("overall", overall_.to_json());
  report::Json ph = report::Json::object();
  for (const auto& [name, rec] : phases_) ph.set(name, rec.to_json());
  j.set("phases", std::move(ph));
  return j;
}

}  // namespace emusim::serve
