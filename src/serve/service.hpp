// The online serving drivers: replay a generated request stream against the
// B+-tree forest on one of the machine models, producing tail-latency and
// sustained-throughput accounting on the simulated clock.
//
// Batch semantics (shared by both backends): the stream arrives in fixed-
// size batches; every request in a batch shares the batch's arrival instant.
// A batch dispatches at max(previous batch completion, arrival) — the server
// is closed-loop per batch (bounded backlog) but open-loop across batches,
// so a slow batch inflates the latency of the queued one behind it and tail
// behaviour under overload is preserved.  Request latency = completion time
// - batch arrival time.
//
// Backend contrast (the point of the experiment):
//
//   serve_emu  — one threadlet per request, remote-spawned directly at the
//                family's owning nodelet.  No locks anywhere: a family is
//                mutated only on its nodelet, and host mutations are
//                instantaneous between suspension points.  Skew concentrates
//                threads onto one nodelet, so its cores/channel queue —
//                p50 and p99 rise together (the paper's locality-
//                insensitivity claim, stated over latency).
//   serve_xeon — a worker pool per batch; lookups/scans traverse latch-free
//                (the leaf chain plays the B-link role), inserts take the
//                family's writer latch for the leaf edit.  Skew funnels
//                inserts through one latch, so the tail blows up while the
//                (cache-warmed) median improves — p99 diverges from p50.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "emu/config.hpp"
#include "serve/btree.hpp"
#include "serve/latency.hpp"
#include "serve/request_gen.hpp"
#include "xeon/config.hpp"

namespace emusim::serve {

/// Latency phases, indexed by OpKind.
inline std::vector<std::string> op_phases() {
  return {"lookup", "insert", "scan"};
}

struct ServeParams {
  StreamParams stream;
  int fanout = 8;        ///< max keys per tree node
  /// Subtree families (key ranges).  The Emu driver ignores this and uses
  /// one family per nodelet; the Xeon driver defaults to 8 (the chick's
  /// nodelet count) so both backends serve the same partitioning.
  int num_families = 8;
  int threads = 8;  ///< Xeon worker threads per batch
  /// Touch every tree node once before the measured stream (and start the
  /// arrival clock after).  A live index is warm; without this the Xeon
  /// comparison measures compulsory cache misses, and a skewed stream —
  /// touching fewer distinct nodes — would look *better* at the tail than
  /// a uniform one.
  bool warmup = true;
};

struct ServeResult {
  Time elapsed = 0;          ///< simulated time from first dispatch to drain
  std::uint64_t ops = 0;     ///< requests served
  double mops_per_sec = 0;   ///< sustained throughput on the simulated clock
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;     ///< lookups that found their key (should: all)
  std::uint64_t inserts = 0;
  std::uint64_t added = 0;    ///< inserts that created a new key
  std::uint64_t scans = 0;
  std::uint64_t scanned = 0;  ///< elements visited by scans
  /// Skew counter: ops per key range (== per family), the per-key-range
  /// view of the hot-range behaviour.
  std::vector<std::uint64_t> range_ops;
  PhasedLatency lat{op_phases()};
  bool verified = false;  ///< final tree contents + invariants + hit checks
  std::string error;      ///< first verification failure, when !verified
};

ServeResult serve_emu(const emu::SystemConfig& cfg, const ServeParams& p);
ServeResult serve_xeon(const xeon::SystemConfig& cfg, const ServeParams& p);

/// Check the forest holds exactly the preloaded even keys plus the stream's
/// insert keys, every one mapping to value_of_key, with clean invariants.
/// Order-independent: upserts are value-idempotent, so any interleaving of
/// the stream must converge to this state.
bool verify_forest(const BTreeForest& forest,
                   const std::vector<Request>& stream, std::string* err);

}  // namespace emusim::serve
