#include "serve/service.hpp"

#include <unordered_set>

namespace emusim::serve {

bool verify_forest(const BTreeForest& forest,
                   const std::vector<Request>& stream, std::string* err) {
  auto fail = [err](const std::string& m) {
    if (err) *err = m;
    return false;
  };
  if (!forest.check_all(err)) return false;
  std::unordered_set<std::uint64_t> expected;
  for (std::uint64_t k = 0; k < forest.key_space(); k += 2) expected.insert(k);
  for (const Request& r : stream) {
    if (r.op == OpKind::insert) expected.insert(r.key);
  }
  if (forest.total_keys() != expected.size()) {
    return fail("key count mismatch: tree holds " +
                std::to_string(forest.total_keys()) + ", expected " +
                std::to_string(expected.size()));
  }
  for (const std::uint64_t k : expected) {
    std::uint64_t v = 0;
    const int f = forest.family_of(k);
    if (!forest.family(f).lookup(k, &v)) {
      return fail("missing key " + std::to_string(k));
    }
    if (v != value_of_key(k)) {
      return fail("wrong value for key " + std::to_string(k));
    }
  }
  return true;
}

}  // namespace emusim::serve
