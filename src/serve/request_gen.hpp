// Deterministic request-stream generation for the online serving frontend.
//
// A stream is a sequence of timestamped index operations (point lookup,
// upsert-insert, short range scan) over a bounded key domain, arriving in
// fixed-size batches.  The arrival *process* sets when batches arrive; the
// key *distribution* sets where they land:
//
//   uniform — Poisson batch arrivals, uniformly random keys.  The
//             provisioning baseline.
//   zipf    — Poisson batch arrivals, Zipf(theta)-ranked keys with rank 0
//             at key 0, so the popular ranks cluster into the lowest key
//             range (one nodelet's subtree family owns the hot range).
//   bursty  — on/off batch arrivals: batches arrive only inside the "on"
//             window of each on+off period (at the same within-window
//             rate), uniform keys.  Models front-end traffic bursts.
//
// Every choice derives from sim::Rng over an explicit seed, so a stream is
// a pure function of its parameters: the same (params, seed) produce a
// byte-identical stream on every platform — the property the --jobs /
// --engine-threads determinism gates rely on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace emusim::serve {

enum class OpKind : std::uint8_t { lookup = 0, insert = 1, scan = 2 };
inline constexpr std::size_t kNumOpKinds = 3;
const char* to_string(OpKind k);

enum class Arrival : std::uint8_t { uniform, zipf, bursty };
const char* to_string(Arrival a);
/// Parse "uniform" / "zipf" / "bursty"; returns false on anything else.
bool arrival_from_string(const std::string& s, Arrival* out);

struct Request {
  Time arrival = 0;  ///< batch arrival instant (shared by the whole batch)
  OpKind op = OpKind::lookup;
  std::uint64_t key = 0;
  std::uint32_t scan_len = 0;  ///< elements to scan (scan ops only)
};

struct StreamParams {
  Arrival process = Arrival::uniform;
  std::size_t requests = 1 << 12;  ///< total; rounded down to whole batches
  std::size_t batch = 32;          ///< requests per batch
  std::uint64_t key_space = 1 << 14;  ///< keys are in [0, key_space)
  double zipf_theta = 0.99;           ///< skew exponent (zipf process only)
  /// Mean inter-arrival gap between *requests*; batches arrive every
  /// batch * mean_interarrival on average.  The default keeps the offered
  /// load below the Emu chick's saturation point so latency measures
  /// queueing, not backlog.  Zero means closed loop: every batch is
  /// available immediately and dispatches back-to-back (used for the
  /// batch-size/throughput sweep, where only throughput is meaningful).
  Time mean_interarrival = us(2.5);
  /// Bursty process: batches arrive only inside [0, burst_on) of every
  /// burst_on + burst_off period, at the same within-window rate.
  Time burst_on = us(40);
  Time burst_off = us(120);
  // Op mix, in percent (must sum to 100).
  int lookup_pct = 70;
  int insert_pct = 20;
  int scan_pct = 10;
  std::uint32_t scan_len = 16;
  std::uint64_t seed = 1;
};

/// Zipf(theta) sampler over ranks [0, n) by CDF inversion: build once
/// (O(n)), sample with a binary search.  Deterministic for a given (n,
/// theta) — no rejection loops, no platform-dependent math beyond pow().
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double theta);
  /// Rank for a uniform u in [0, 1); rank 0 is the most popular.
  std::uint64_t rank(double u) const;
  std::uint64_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  ///< cdf_[r] = P(rank <= r)
};

/// Generate the full request stream for `p` (p.requests rounded down to a
/// whole number of batches; at least one batch).  Arrivals are
/// nondecreasing.  Lookup and scan keys are clamped to the preloaded (even)
/// key grid; insert keys target the odd keys between them, so inserts grow
/// leaves and eventually split them.
std::vector<Request> generate_stream(const StreamParams& p);

/// The value every key must map to — shared by the loader, the insert path,
/// and the verifier, so any interleaving of upserts converges to the same
/// tree contents.
std::uint64_t value_of_key(std::uint64_t key);

}  // namespace emusim::serve
