// B+-tree forest striped over the nodelets — the ordered-index workload for
// the online serving frontend.
//
// The key domain [0, key_space) is cut into num_families contiguous ranges,
// one independent B+-tree ("subtree family") per range.  On the Emu backend
// each family's nodes live on one nodelet (the paper's malloc_2d layout: an
// explicit per-nodelet chunk of the structure), so every operation on a key
// migrates to the owning nodelet and runs shard-local from then on — skew in
// the key distribution becomes skew in per-nodelet traffic, directly visible
// in the per-nodelet counter tracks.  On the Xeon backend the same forest is
// bump-allocated into the interleaved physical address space.
//
// The tree itself is the functional (host-side) half of the two-plane
// simulation: nodes are host vectors plus a simulated base address per node.
// Kernels time the traversal by loading node addresses through their
// machine's memory model and mutate the host structure between suspension
// points — a mutation is instantaneous on the simulated clock, so concurrent
// request coroutines never observe a torn tree.  (A real implementation
// needs B-link chains for that; the leaf `next` chain models exactly that
// structure and carries the range scans.)
//
// Determinism: node ids and simulated addresses depend only on the order of
// structure changes within one family, every family is mutated only on its
// owning shard, and each shard's event order is deterministic — so the
// final forest is identical across --jobs and --engine-threads settings.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "report/json.hpp"

namespace emusim::serve {

inline constexpr std::uint32_t kNoNode = 0xFFFFFFFFu;

struct BTreeNode {
  bool leaf = true;
  std::vector<std::uint64_t> keys;  ///< sorted
  std::vector<std::uint64_t> vals;  ///< leaf: parallel to keys
  std::vector<std::uint32_t> kids;  ///< inner: keys.size() + 1 children
  std::uint32_t next = kNoNode;     ///< leaf chain toward higher keys
  std::uint64_t addr = 0;           ///< simulated base address of this node
};

/// What an upsert did — the timed path issues one store per dirtied node.
struct UpsertOutcome {
  bool added = false;      ///< true: new key; false: value update
  std::uint32_t leaf = 0;  ///< leaf holding the key afterwards
  int new_nodes = 0;       ///< nodes created by splits (0 when none)
};

/// One element of a range-scan plan: a leaf and how many of its elements
/// the scan visits.
struct ScanStep {
  std::uint32_t leaf = 0;
  std::uint32_t elems = 0;
};

/// One subtree family: a single-rooted B+-tree over its key range.
class BTreeFamily {
 public:
  /// `alloc(bytes)` reserves simulated memory for one node on the owning
  /// device and returns its base address.  Called at construction (root),
  /// preload, and on every split — splits happen mid-run, so the callback
  /// must be safe to invoke from the owning shard's worker.
  using AllocFn = std::function<std::uint64_t(std::uint64_t bytes)>;

  BTreeFamily(int max_keys, AllocFn alloc);

  std::uint32_t root() const { return root_; }
  const BTreeNode& node(std::uint32_t id) const { return nodes_[id]; }
  std::size_t num_nodes() const { return nodes_.size(); }
  int height() const { return height_; }  ///< levels including the leaf
  int max_keys() const { return max_keys_; }
  /// Simulated footprint of one node (what alloc is asked for).
  std::uint64_t node_bytes() const { return node_bytes_; }

  /// Node ids visited root -> leaf for `key` (pure host-side descent).
  void path_to(std::uint64_t key, std::vector<std::uint32_t>* out) const;
  /// The leaf whose range covers `key`.
  std::uint32_t resolve_leaf(std::uint64_t key) const;

  /// Point lookup; returns true and fills `*val` when the key is present.
  bool lookup(std::uint64_t key, std::uint64_t* val) const;

  /// Insert-or-update (instantaneous host mutation; splits as needed).
  UpsertOutcome upsert(std::uint64_t key, std::uint64_t val);

  /// Plan a scan of up to `len` elements starting at the first key >=
  /// `start`, walking the leaf chain.  Truncates at the family's last leaf.
  std::vector<ScanStep> scan_plan(std::uint64_t start,
                                  std::uint32_t len) const;

  /// All (key, value) pairs in key order, via the leaf chain.
  void collect(std::vector<std::pair<std::uint64_t, std::uint64_t>>* out)
      const;

  /// Structural invariants: sorted keys, fanout bounds, routing-key
  /// consistency, uniform leaf depth, leaf chain ordering.  Returns false
  /// and fills `*err` on the first violation.
  bool check_invariants(std::string* err) const;

 private:
  std::uint32_t new_node(bool leaf);
  /// Split the over-full child `nodes_[id]`; returns the new right sibling
  /// and the separator key to insert into the parent.
  std::uint32_t split(std::uint32_t id, std::uint64_t* sep);

  int max_keys_;
  std::uint64_t node_bytes_;
  AllocFn alloc_;
  std::vector<BTreeNode> nodes_;
  std::uint32_t root_;
  int height_ = 1;
};

/// The forest: one family per contiguous key range.
class BTreeForest {
 public:
  /// `alloc(family, bytes)` places a node on the family's owning device
  /// (nodelet `family` on Emu; anywhere in the interleaved space on Xeon).
  using AllocFn = std::function<std::uint64_t(int family, std::uint64_t)>;

  BTreeForest(int num_families, std::uint64_t key_space, int max_keys,
              AllocFn alloc);

  int num_families() const { return static_cast<int>(families_.size()); }
  std::uint64_t key_space() const { return key_space_; }
  std::uint64_t range_size() const { return range_; }
  int family_of(std::uint64_t key) const {
    const auto f = key / range_;
    const auto last = static_cast<std::uint64_t>(num_families() - 1);
    return static_cast<int>(f < last ? f : last);
  }
  BTreeFamily& family(int f) { return families_[static_cast<std::size_t>(f)]; }
  const BTreeFamily& family(int f) const {
    return families_[static_cast<std::size_t>(f)];
  }

  /// Load every even key in [0, key_space) with value_of_key(key) — the
  /// deterministic warm state every serving run starts from.  Inserts from
  /// the request stream target the odd keys in between.
  void preload_even();

  std::size_t total_nodes() const;
  std::uint64_t total_keys() const;

  /// check_invariants over every family.
  bool check_all(std::string* err) const;

  /// The skew counter: per-key-range (== per-family) operation counts,
  /// reported in the result JSON.  Incremented by the serving drivers on
  /// the family's owning shard, so it needs no synchronization.
  std::vector<std::uint64_t> range_ops;

 private:
  std::uint64_t key_space_;
  std::uint64_t range_;
  std::vector<BTreeFamily> families_;
};

}  // namespace emusim::serve
