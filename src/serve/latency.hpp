// Streaming tail-latency accounting for the online serving frontend.
//
// LatencyRecorder is a log-bucketed histogram over simulated Time values
// (picoseconds): 32 linear sub-buckets per power-of-two octave, so any
// recorded value lands in a bucket whose upper edge overstates it by at
// most 1/32 (~3.1%).  Storage is a fixed array (no allocation on the record
// path), recording is O(1), and merging two recorders is element-wise
// addition — which is what makes per-shard recording under the windowed
// parallel engine deterministic: bucket increments commute, so any shard
// interleaving folds to the same histogram.
//
// percentile() uses the nearest-rank definition and returns the bucket's
// upper edge — a conservative (never understated) estimate of the true
// order statistic, within the 1/32 bucket resolution.  max() is exact.
//
// PhasedLatency names a small set of recorders by phase (per-op-type for
// the serving bench: lookup / insert / scan) so results can report tails
// per phase as well as overall.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "report/json.hpp"

namespace emusim::serve {

class LatencyRecorder {
 public:
  /// Linear sub-buckets per octave (as a power of two).  32 sub-buckets
  /// bound the relative bucket width — and so the percentile overshoot —
  /// by 2^-5 = 3.125%.
  static constexpr int kSubBucketBits = 5;
  static constexpr std::uint64_t kSubBuckets = 1ULL << kSubBucketBits;
  /// Values below kSubBuckets get exact unit buckets; above, each octave
  /// [2^k, 2^(k+1)) splits into kSubBuckets linear buckets.  63 octaves of
  /// a 64-bit value need (63 - 5 + 1) * 32 + 32 buckets.
  static constexpr std::size_t kNumBuckets =
      (63 - kSubBucketBits + 1) * kSubBuckets + kSubBuckets;

  /// Record one latency sample.  Negative values clamp to zero (they can
  /// only arise from a caller bug; the histogram stays well-defined).
  void record(Time v);

  std::uint64_t count() const { return count_; }
  Time max() const { return max_; }
  Time sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }

  /// Nearest-rank percentile, q in (0, 1]: the upper edge of the bucket
  /// holding the ceil(q * count)-th smallest sample.  Returns 0 when empty.
  Time percentile(double q) const;
  Time p50() const { return percentile(0.50); }
  Time p95() const { return percentile(0.95); }
  Time p99() const { return percentile(0.99); }

  /// Fold another recorder in (bucket-wise addition; order-independent).
  void merge(const LatencyRecorder& o);

  /// Bucket index of a value — exposed for the edge-value unit tests.
  static std::size_t bucket_of(Time v);
  /// Inclusive upper edge of bucket `i` (the percentile representative).
  /// Edges beyond the Time range (the top octave's upper tail) saturate to
  /// the Time maximum instead of wrapping.
  static Time bucket_upper(std::size_t i);
  /// ceil(q * count) computed exactly in integer arithmetic, clamped to
  /// [1, count] (0 when count is 0).  The double product `q * count` the
  /// seed used misranks once count approaches 2^53; this stays exact for
  /// every uint64 count.  Exposed for the extreme-count regression tests.
  static std::uint64_t nearest_rank(double q, std::uint64_t count);

  /// Sparse JSON: {"count", "max_ps", "sum_ps", "buckets": [[i, n], ...]}.
  report::Json to_json() const;

 private:
  std::array<std::uint64_t, kNumBuckets> buckets_{};
  std::uint64_t count_ = 0;
  Time max_ = 0;
  Time sum_ = 0;
};

/// A named family of recorders (one per phase / op type) plus an overall
/// recorder.  Phase names are fixed at construction so per-shard copies
/// merge positionally without any name reconciliation.
class PhasedLatency {
 public:
  explicit PhasedLatency(std::vector<std::string> phases);

  void record(std::size_t phase, Time v);
  const LatencyRecorder& overall() const { return overall_; }
  const LatencyRecorder& phase(std::size_t i) const {
    return phases_[i].second;
  }
  const std::string& phase_name(std::size_t i) const {
    return phases_[i].first;
  }
  std::size_t num_phases() const { return phases_.size(); }

  /// Fold another set in; phase lists must be identical.
  void merge(const PhasedLatency& o);

  /// {"overall": {...}, "phases": {"lookup": {...}, ...}} — the per-point
  /// latency blob embedded in the bench result JSON.
  report::Json to_json() const;

 private:
  LatencyRecorder overall_;
  std::vector<std::pair<std::string, LatencyRecorder>> phases_;
};

}  // namespace emusim::serve
