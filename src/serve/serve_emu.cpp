#include "serve/service.hpp"

#include <coroutine>

#include "common/check.hpp"
#include "emu/machine.hpp"

namespace emusim::serve {

using emu::Context;
using emu::Machine;

namespace {

constexpr std::uint64_t kTraverseCycles = 8;  ///< per-node key comparisons
constexpr std::uint64_t kUpsertCycles = 120;  ///< leaf edit + bookkeeping
constexpr std::uint64_t kScanCyclesPerElem = 2;

/// Per-shard accumulators.  A request records on the shard that owns its
/// family's nodelet; shards never share an entry, and the entries merge in
/// shard order afterwards — the same scheme MachineStats uses.
struct ShardTally {
  PhasedLatency lat{op_phases()};
  std::uint64_t lookups = 0, hits = 0, inserts = 0, added = 0;
  std::uint64_t scans = 0, scanned = 0, bad = 0;
};

/// Awaitable: park until the absolute simulated instant `t`.
struct SleepUntil {
  sim::Engine& eng;
  Time t;
  bool await_ready() const noexcept { return eng.now() >= t; }
  void await_suspend(std::coroutine_handle<> h) { eng.schedule(t, h); }
  void await_resume() const noexcept {}
};

/// One request, executed by its own threadlet born on the family's nodelet.
/// Everything here — tree access, counters, latency recording — is local to
/// that nodelet's shard.
sim::Op<> serve_one(Context& ctx, BTreeForest* forest, Request req,
                    std::vector<ShardTally>* tallies, Time t0) {
  const int fam = ctx.nodelet();
  BTreeFamily& t = forest->family(fam);
  ++forest->range_ops[static_cast<std::size_t>(fam)];
  ShardTally& tally = (*tallies)[static_cast<std::size_t>(ctx.shard())];

  std::vector<std::uint32_t> path;
  t.path_to(req.key, &path);
  for (const std::uint32_t id : path) {
    co_await ctx.issue(kTraverseCycles);
    co_await ctx.read_local(t.node(id).addr, 64);
  }

  switch (req.op) {
    case OpKind::lookup: {
      std::uint64_t v = 0;
      const bool hit = t.lookup(req.key, &v);
      ++tally.lookups;
      if (hit && v == value_of_key(req.key)) {
        ++tally.hits;
      } else {
        ++tally.bad;  // every lookup targets a preloaded key
      }
      break;
    }
    case OpKind::insert: {
      co_await ctx.issue(kUpsertCycles);
      const UpsertOutcome o = t.upsert(req.key, value_of_key(req.key));
      ctx.write_local(t.node(o.leaf).addr, 64);
      for (int i = 0; i < o.new_nodes; ++i) {
        const auto id =
            static_cast<std::uint32_t>(t.num_nodes() - 1 -
                                       static_cast<std::size_t>(i));
        ctx.write_local(t.node(id).addr, 64);
      }
      ++tally.inserts;
      tally.added += o.added ? 1 : 0;
      break;
    }
    case OpKind::scan: {
      const auto plan = t.scan_plan(req.key, req.scan_len);
      std::uint64_t visited = 0;
      for (const ScanStep& step : plan) {
        co_await ctx.issue(step.elems * kScanCyclesPerElem);
        co_await ctx.read_local(t.node(step.leaf).addr,
                                step.elems * 16);
        visited += step.elems;
      }
      ++tally.scans;
      tally.scanned += visited;
      break;
    }
  }
  tally.lat.record(static_cast<std::size_t>(req.op),
                   ctx.engine().now() - t0 - req.arrival);
}

/// Warm one family: read every node once on its owning nodelet.
sim::Op<> warm_family(Context& ctx, BTreeForest* forest) {
  const BTreeFamily& t = forest->family(ctx.nodelet());
  for (std::size_t id = 0; id < t.num_nodes(); ++id) {
    co_await ctx.read_local(t.node(static_cast<std::uint32_t>(id)).addr, 64);
  }
}

/// The frontend: waits for each batch's arrival, remote-spawns one
/// threadlet per request at the owning nodelet, and syncs — the sync is the
/// per-batch completion barrier that bounds the backlog.
sim::Op<> dispatch(Context& ctx, const std::vector<Request>* stream,
                   std::size_t batch, bool warmup, BTreeForest* forest,
                   std::vector<ShardTally>* tallies, Time* t0) {
  if (warmup) {
    for (int f = 0; f < forest->num_families(); ++f) {
      co_await ctx.spawn_at(f, [forest](Context& c) {
        return warm_family(c, forest);
      });
    }
    co_await ctx.sync();
  }
  *t0 = ctx.engine().now();  // the arrival clock starts after warmup
  for (std::size_t i = 0; i < stream->size(); i += batch) {
    co_await SleepUntil{ctx.engine(), *t0 + (*stream)[i].arrival};
    const std::size_t end =
        i + batch < stream->size() ? i + batch : stream->size();
    for (std::size_t j = i; j < end; ++j) {
      const Request r = (*stream)[j];
      const int dest = forest->family_of(r.key);
      co_await ctx.spawn_at(dest, [forest, r, tallies, t0](Context& c) {
        return serve_one(c, forest, r, tallies, *t0);
      });
    }
    co_await ctx.sync();
  }
}

}  // namespace

ServeResult serve_emu(const emu::SystemConfig& cfg, const ServeParams& p) {
  Machine m(cfg);
  // One family per nodelet: the key-range partition IS the data placement,
  // so family_of(key) doubles as the spawn destination.
  const int nf = m.num_nodelets();
  BTreeForest forest(nf, p.stream.key_space, p.fanout,
                     [&m](int f, std::uint64_t bytes) {
                       return m.nodelet(f).allocate(bytes, 8);
                     });
  forest.preload_even();
  const auto stream = generate_stream(p.stream);
  std::vector<ShardTally> tallies(
      static_cast<std::size_t>(m.num_shards()));

  Time t0 = 0;
  m.run_root([&](Context& ctx) {
    return dispatch(ctx, &stream, p.stream.batch, p.warmup, &forest,
                    &tallies, &t0);
  });
  const Time elapsed = m.engine().now() - t0;  // excludes warmup

  ServeResult r;
  r.elapsed = elapsed;
  r.ops = stream.size();
  r.mops_per_sec = elapsed > 0 ? static_cast<double>(r.ops) /
                                     to_seconds(elapsed) / 1e6
                               : 0.0;
  std::uint64_t bad = 0;
  for (const ShardTally& t : tallies) {
    r.lat.merge(t.lat);
    r.lookups += t.lookups;
    r.hits += t.hits;
    r.inserts += t.inserts;
    r.added += t.added;
    r.scans += t.scans;
    r.scanned += t.scanned;
    bad += t.bad;
  }
  r.range_ops = forest.range_ops;
  r.verified = verify_forest(forest, stream, &r.error);
  if (r.verified && bad != 0) {
    r.verified = false;
    r.error = std::to_string(bad) + " lookups missed or saw stale values";
  }
  if (r.verified && r.lat.overall().count() != r.ops) {
    r.verified = false;
    r.error = "latency samples != ops";
  }
  return r;
}

}  // namespace emusim::serve
