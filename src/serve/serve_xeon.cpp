#include "serve/service.hpp"

#include <algorithm>
#include <coroutine>
#include <memory>
#include <utility>

#include "common/check.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"
#include "xeon/machine.hpp"

namespace emusim::serve {

using xeon::CpuContext;
using xeon::Machine;

namespace {

constexpr std::uint64_t kTraverseCycles = 8;  ///< per-node key comparisons
/// Insert critical section under the family writer latch: lock handoff and
/// fences, leaf edit, version bump, and the write-ahead-log append — the
/// serialization tax a lock-based index pays that the migratory-thread
/// backend does not (there, writer exclusion is physical: one nodelet owns
/// the family).  Held while contending inserts queue, this is what turns
/// key skew into tail latency on the cache machine.
constexpr std::uint64_t kUpsertCycles = 400;
constexpr std::uint64_t kScanCyclesPerElem = 2;

struct SleepUntil {
  sim::Engine& eng;
  Time t;
  bool await_ready() const noexcept { return eng.now() >= t; }
  void await_suspend(std::coroutine_handle<> h) { eng.schedule(t, h); }
  void await_resume() const noexcept {}
};

/// Countdown barrier joining one batch's workers back to the driver.
struct BatchJoin {
  sim::Engine* eng = nullptr;
  int pending = 0;
  std::coroutine_handle<> waiter;

  void done() {
    if (--pending == 0 && waiter) {
      eng->schedule_now(std::exchange(waiter, {}));
    }
  }
  auto wait() {
    struct Awaiter {
      BatchJoin& j;
      bool await_ready() const noexcept { return j.pending == 0; }
      void await_suspend(std::coroutine_handle<> h) { j.waiter = h; }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }
};

struct XServe {
  Machine* m = nullptr;
  BTreeForest* forest = nullptr;
  Time t0 = 0;  ///< arrival-clock origin (end of warmup)
  /// One writer latch per subtree family (the simple coarse scheme real
  /// engines start from).  Readers go latch-free: the host tree is
  /// consistent at every suspension point, with the leaf chain standing in
  /// for the B-link edges a real latch-free reader relies on.
  std::vector<std::unique_ptr<sim::Semaphore>> latches;
  PhasedLatency lat{op_phases()};
  std::uint64_t lookups = 0, hits = 0, inserts = 0, added = 0;
  std::uint64_t scans = 0, scanned = 0, bad = 0;
};

sim::Op<> serve_one(CpuContext& ctx, XServe* st, const Request& req) {
  BTreeForest& forest = *st->forest;
  const int fam = forest.family_of(req.key);
  BTreeFamily& t = forest.family(fam);
  ++forest.range_ops[static_cast<std::size_t>(fam)];

  // Latch-free descent (all ops start with one).
  std::vector<std::uint32_t> path;
  t.path_to(req.key, &path);
  for (const std::uint32_t id : path) {
    co_await ctx.compute(kTraverseCycles);
    co_await ctx.load(t.node(id).addr);
  }

  switch (req.op) {
    case OpKind::lookup: {
      std::uint64_t v = 0;
      const bool hit = t.lookup(req.key, &v);
      ++st->lookups;
      if (hit && v == value_of_key(req.key)) {
        ++st->hits;
      } else {
        ++st->bad;
      }
      break;
    }
    case OpKind::insert: {
      sim::Semaphore& latch = *st->latches[static_cast<std::size_t>(fam)];
      co_await latch.acquire();
      // A split may have moved the key while we queued: re-resolve and
      // re-read the leaf under the latch before editing.
      co_await ctx.load(t.node(t.resolve_leaf(req.key)).addr);
      co_await ctx.compute(kUpsertCycles);
      const UpsertOutcome o = t.upsert(req.key, value_of_key(req.key));
      ctx.store(t.node(o.leaf).addr);
      for (int i = 0; i < o.new_nodes; ++i) {
        const auto id = static_cast<std::uint32_t>(
            t.num_nodes() - 1 - static_cast<std::size_t>(i));
        ctx.store(t.node(id).addr);
      }
      latch.release();
      ++st->inserts;
      st->added += o.added ? 1 : 0;
      break;
    }
    case OpKind::scan: {
      const auto plan = t.scan_plan(req.key, req.scan_len);
      std::uint64_t visited = 0;
      for (const ScanStep& step : plan) {
        co_await ctx.compute(step.elems * kScanCyclesPerElem);
        // Leaves are contiguous 16 B slots: touch each line once.
        const std::uint64_t base = t.node(step.leaf).addr;
        for (std::uint64_t b = 0; b < step.elems * 16ULL; b += 64) {
          co_await ctx.load(base + b);
        }
        visited += step.elems;
      }
      ++st->scans;
      st->scanned += visited;
      break;
    }
  }
  st->lat.record(static_cast<std::size_t>(req.op),
                 st->m->engine().now() - st->t0 - req.arrival);
}

/// One worker thread's share of a batch: requests begin, begin+stride, ...
/// processed sequentially — a service thread drains its slice in order, so
/// later requests in a slice carry queueing delay in their latency.
sim::Task batch_worker(CpuContext ctx, XServe* st,
                       const std::vector<Request>* stream, std::size_t begin,
                       std::size_t end, std::size_t stride, BatchJoin* join) {
  for (std::size_t i = begin; i < end; i += stride) {
    co_await serve_one(ctx, st, (*stream)[i]);
  }
  join->done();
}

sim::Task driver(XServe* st, const std::vector<Request>* stream,
                 std::size_t batch, int threads, bool warmup,
                 BatchJoin* join) {
  Machine& m = *st->m;
  sim::Engine& eng = m.engine();
  if (warmup) {
    // One pass over every node: the index a live server actually runs with
    // is cache-warm.  Sequential per family, so the prefetcher helps.
    CpuContext warm(m, 0);
    BTreeForest& forest = *st->forest;
    for (int f = 0; f < forest.num_families(); ++f) {
      const BTreeFamily& t = forest.family(f);
      for (std::size_t id = 0; id < t.num_nodes(); ++id) {
        co_await warm.load(t.node(static_cast<std::uint32_t>(id)).addr);
      }
    }
  }
  st->t0 = eng.now();  // the arrival clock starts after warmup
  for (std::size_t i = 0; i < stream->size(); i += batch) {
    co_await SleepUntil{eng, st->t0 + (*stream)[i].arrival};
    const std::size_t end =
        i + batch < stream->size() ? i + batch : stream->size();
    const auto nw =
        std::min<std::size_t>(static_cast<std::size_t>(threads), end - i);
    join->pending = static_cast<int>(nw);
    join->waiter = {};
    for (std::size_t w = 0; w < nw; ++w) {
      auto task = batch_worker(
          CpuContext(m, static_cast<int>(w) % m.cfg().cores), st, stream,
          i + w, end, nw, join);
      task.start();
    }
    co_await join->wait();
  }
}

}  // namespace

ServeResult serve_xeon(const xeon::SystemConfig& cfg, const ServeParams& p) {
  EMUSIM_CHECK(p.threads >= 1);
  Machine m(cfg);
  const int nf = p.num_families >= 1 ? p.num_families : 8;
  BTreeForest forest(nf, p.stream.key_space, p.fanout,
                     [&m](int, std::uint64_t bytes) {
                       return m.allocate(bytes, 64);
                     });
  forest.preload_even();
  const auto stream = generate_stream(p.stream);

  XServe st;
  st.m = &m;
  st.forest = &forest;
  st.latches.reserve(static_cast<std::size_t>(nf));
  for (int f = 0; f < nf; ++f) {
    st.latches.push_back(std::make_unique<sim::Semaphore>(m.engine(), 1));
  }
  BatchJoin join;
  join.eng = &m.engine();

  auto d = driver(&st, &stream, p.stream.batch, p.threads, p.warmup, &join);
  d.start();
  m.engine().run();
  const Time elapsed = m.engine().now() - st.t0;

  ServeResult r;
  r.elapsed = elapsed;
  r.ops = stream.size();
  r.mops_per_sec = elapsed > 0 ? static_cast<double>(r.ops) /
                                     to_seconds(elapsed) / 1e6
                               : 0.0;
  r.lat.merge(st.lat);
  r.lookups = st.lookups;
  r.hits = st.hits;
  r.inserts = st.inserts;
  r.added = st.added;
  r.scans = st.scans;
  r.scanned = st.scanned;
  r.range_ops = forest.range_ops;
  r.verified = verify_forest(forest, stream, &r.error);
  if (r.verified && st.bad != 0) {
    r.verified = false;
    r.error = std::to_string(st.bad) + " lookups missed or saw stale values";
  }
  if (r.verified && r.lat.overall().count() != r.ops) {
    r.verified = false;
    r.error = "latency samples != ops";
  }
  return r;
}

}  // namespace emusim::serve
