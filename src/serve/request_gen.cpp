#include "serve/request_gen.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "sim/random.hpp"

namespace emusim::serve {

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::lookup: return "lookup";
    case OpKind::insert: return "insert";
    case OpKind::scan: return "scan";
  }
  return "?";
}

const char* to_string(Arrival a) {
  switch (a) {
    case Arrival::uniform: return "uniform";
    case Arrival::zipf: return "zipf";
    case Arrival::bursty: return "bursty";
  }
  return "?";
}

bool arrival_from_string(const std::string& s, Arrival* out) {
  if (s == "uniform") { *out = Arrival::uniform; return true; }
  if (s == "zipf") { *out = Arrival::zipf; return true; }
  if (s == "bursty") { *out = Arrival::bursty; return true; }
  return false;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double theta) {
  EMUSIM_CHECK(n >= 1);
  EMUSIM_CHECK(theta >= 0.0);
  cdf_.resize(static_cast<std::size_t>(n));
  double total = 0.0;
  for (std::size_t r = 0; r < cdf_.size(); ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf_[r] = total;
  }
  for (auto& c : cdf_) c /= total;
}

std::uint64_t ZipfSampler::rank(double u) const {
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  const auto r = static_cast<std::size_t>(it - cdf_.begin());
  return r < cdf_.size() ? r : cdf_.size() - 1;
}

std::uint64_t value_of_key(std::uint64_t key) {
  std::uint64_t s = key ^ 0x5E12F0C5ULL;
  return sim::splitmix64(s);
}

namespace {

/// Exponential inter-arrival with the given mean, from one uniform draw.
/// Clamped to >= 1 ps so arrivals strictly advance within a busy stream.
/// A zero mean (closed loop) still consumes its draw, so the key/op
/// sequence is identical across open- and closed-loop replays.
Time exp_gap(sim::Rng& rng, Time mean) {
  const double u = rng.uniform();
  const double g = -std::log1p(-u) * static_cast<double>(mean);
  const auto t = static_cast<Time>(g);
  return t > 0 ? t : 1;
}

}  // namespace

std::vector<Request> generate_stream(const StreamParams& p) {
  EMUSIM_CHECK(p.batch >= 1);
  EMUSIM_CHECK(p.key_space >= 4);
  EMUSIM_CHECK(p.lookup_pct + p.insert_pct + p.scan_pct == 100);
  std::size_t batches = p.requests / p.batch;
  if (batches == 0) batches = 1;

  sim::Rng rng(p.seed);
  // The zipf CDF covers the preloaded (even-key) grid; rank r maps to key
  // 2r, so popular ranks cluster into the lowest key range.
  const std::uint64_t grid = p.key_space / 2;  // number of even keys
  ZipfSampler zipf(p.process == Arrival::zipf ? grid : 1,
                   p.zipf_theta);

  std::vector<Request> out;
  out.reserve(batches * p.batch);
  Time t = 0;
  const Time batch_gap_mean =
      static_cast<Time>(p.batch) * p.mean_interarrival;
  const Time period = p.burst_on + p.burst_off;
  for (std::size_t b = 0; b < batches; ++b) {
    t += exp_gap(rng, batch_gap_mean);
    if (p.process == Arrival::bursty) {
      // Arrivals exist only inside the on-window: a batch landing in the
      // off-window slides to the start of the next period.
      const Time phase = t % period;
      if (phase >= p.burst_on) t += period - phase;
    }
    for (std::size_t i = 0; i < p.batch; ++i) {
      Request r;
      r.arrival = t;
      const std::uint64_t mix = rng.below(100);
      if (mix < static_cast<std::uint64_t>(p.lookup_pct)) {
        r.op = OpKind::lookup;
      } else if (mix < static_cast<std::uint64_t>(p.lookup_pct +
                                                  p.insert_pct)) {
        r.op = OpKind::insert;
      } else {
        r.op = OpKind::scan;
        r.scan_len = p.scan_len;
      }
      // Pick a slot on the even-key grid per the key distribution, then
      // branch: lookups/scans target the preloaded even key, inserts the
      // odd key above it (new keys that grow the tree).
      const std::uint64_t slot = p.process == Arrival::zipf
                                     ? zipf.rank(rng.uniform())
                                     : rng.below(grid);
      const std::uint64_t even = slot * 2;
      r.key = r.op == OpKind::insert ? even + 1 : even;
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace emusim::serve
