#include "serve/btree.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "serve/request_gen.hpp"

namespace emusim::serve {

namespace {

/// Routing: in an inner node, kids[i] covers keys < keys[i] (for i <
/// keys.size()) and kids.back() covers keys >= keys.back().  Equivalently:
/// keys[i] is the minimum key reachable under kids[i + 1].
std::size_t route(const BTreeNode& n, std::uint64_t key) {
  return static_cast<std::size_t>(
      std::upper_bound(n.keys.begin(), n.keys.end(), key) - n.keys.begin());
}

std::size_t lower_idx(const BTreeNode& n, std::uint64_t key) {
  return static_cast<std::size_t>(
      std::lower_bound(n.keys.begin(), n.keys.end(), key) - n.keys.begin());
}

}  // namespace

BTreeFamily::BTreeFamily(int max_keys, AllocFn alloc)
    : max_keys_(max_keys),
      // 16 B per (key, value) slot plus a header line: what the timed plane
      // charges the memory system for one node.
      node_bytes_(64 + static_cast<std::uint64_t>(max_keys) * 16),
      alloc_(std::move(alloc)) {
  EMUSIM_CHECK(max_keys_ >= 3);
  root_ = new_node(/*leaf=*/true);
}

std::uint32_t BTreeFamily::new_node(bool leaf) {
  BTreeNode n;
  n.leaf = leaf;
  n.addr = alloc_(node_bytes_);
  nodes_.push_back(std::move(n));
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void BTreeFamily::path_to(std::uint64_t key,
                          std::vector<std::uint32_t>* out) const {
  out->clear();
  std::uint32_t id = root_;
  for (;;) {
    out->push_back(id);
    const BTreeNode& n = nodes_[id];
    if (n.leaf) return;
    id = n.kids[route(n, key)];
  }
}

std::uint32_t BTreeFamily::resolve_leaf(std::uint64_t key) const {
  std::uint32_t id = root_;
  while (!nodes_[id].leaf) {
    const BTreeNode& n = nodes_[id];
    id = n.kids[route(n, key)];
  }
  return id;
}

bool BTreeFamily::lookup(std::uint64_t key, std::uint64_t* val) const {
  const BTreeNode& leaf = nodes_[resolve_leaf(key)];
  const std::size_t i = lower_idx(leaf, key);
  if (i < leaf.keys.size() && leaf.keys[i] == key) {
    if (val) *val = leaf.vals[i];
    return true;
  }
  return false;
}

std::uint32_t BTreeFamily::split(std::uint32_t id, std::uint64_t* sep) {
  // nodes_ may reallocate inside new_node: take copies of what we need and
  // re-index instead of holding references across the call.
  const bool leaf = nodes_[id].leaf;
  const std::uint32_t rid = new_node(leaf);
  BTreeNode& l = nodes_[id];
  BTreeNode& r = nodes_[rid];
  const std::size_t n = l.keys.size();
  if (leaf) {
    // Right half moves; the separator is the right sibling's first key.
    const std::size_t mid = n / 2;
    *sep = l.keys[mid];
    r.keys.assign(l.keys.begin() + static_cast<std::ptrdiff_t>(mid),
                  l.keys.end());
    r.vals.assign(l.vals.begin() + static_cast<std::ptrdiff_t>(mid),
                  l.vals.end());
    l.keys.resize(mid);
    l.vals.resize(mid);
    r.next = l.next;
    l.next = rid;
  } else {
    // The middle key moves up; children split around it.
    const std::size_t mid = n / 2;
    *sep = l.keys[mid];
    r.keys.assign(l.keys.begin() + static_cast<std::ptrdiff_t>(mid + 1),
                  l.keys.end());
    r.kids.assign(l.kids.begin() + static_cast<std::ptrdiff_t>(mid + 1),
                  l.kids.end());
    l.keys.resize(mid);
    l.kids.resize(mid + 1);
  }
  return rid;
}

UpsertOutcome BTreeFamily::upsert(std::uint64_t key, std::uint64_t val) {
  UpsertOutcome out;
  std::vector<std::uint32_t> path;
  path_to(key, &path);
  const std::uint32_t leaf_id = path.back();
  out.leaf = leaf_id;
  {
    BTreeNode& leaf = nodes_[leaf_id];
    const std::size_t i = lower_idx(leaf, key);
    if (i < leaf.keys.size() && leaf.keys[i] == key) {
      leaf.vals[i] = val;
      return out;  // value update: no structural change
    }
    leaf.keys.insert(leaf.keys.begin() + static_cast<std::ptrdiff_t>(i), key);
    leaf.vals.insert(leaf.vals.begin() + static_cast<std::ptrdiff_t>(i), val);
    out.added = true;
  }
  // Split over-full nodes bottom-up along the descent path.
  for (std::size_t level = path.size(); level-- > 0;) {
    const std::uint32_t id = path[level];
    if (nodes_[id].keys.size() <= static_cast<std::size_t>(max_keys_)) break;
    std::uint64_t sep = 0;
    const std::uint32_t rid = split(id, &sep);
    ++out.new_nodes;
    if (level == 0) {
      // Root split: grow a new root; the tree gains a level.
      const std::uint32_t nr = new_node(/*leaf=*/false);
      ++out.new_nodes;
      nodes_[nr].keys.push_back(sep);
      nodes_[nr].kids.push_back(id);
      nodes_[nr].kids.push_back(rid);
      root_ = nr;
      ++height_;
    } else {
      BTreeNode& parent = nodes_[path[level - 1]];
      const std::size_t i = lower_idx(parent, sep);
      parent.keys.insert(parent.keys.begin() + static_cast<std::ptrdiff_t>(i),
                         sep);
      parent.kids.insert(
          parent.kids.begin() + static_cast<std::ptrdiff_t>(i + 1), rid);
    }
    // The leaf holding `key` may be the new right sibling.
    if (id == out.leaf && sep <= key) out.leaf = rid;
  }
  return out;
}

std::vector<ScanStep> BTreeFamily::scan_plan(std::uint64_t start,
                                             std::uint32_t len) const {
  std::vector<ScanStep> plan;
  std::uint32_t id = resolve_leaf(start);
  std::size_t i = lower_idx(nodes_[id], start);
  std::uint32_t remaining = len;
  while (remaining > 0 && id != kNoNode) {
    const BTreeNode& leaf = nodes_[id];
    const auto avail = static_cast<std::uint32_t>(leaf.keys.size() - i);
    const std::uint32_t take = avail < remaining ? avail : remaining;
    if (take > 0) plan.push_back(ScanStep{id, take});
    remaining -= take;
    id = leaf.next;
    i = 0;
  }
  return plan;
}

void BTreeFamily::collect(
    std::vector<std::pair<std::uint64_t, std::uint64_t>>* out) const {
  std::uint32_t id = root_;
  while (!nodes_[id].leaf) id = nodes_[id].kids.front();
  while (id != kNoNode) {
    const BTreeNode& leaf = nodes_[id];
    for (std::size_t i = 0; i < leaf.keys.size(); ++i) {
      out->emplace_back(leaf.keys[i], leaf.vals[i]);
    }
    id = leaf.next;
  }
}

bool BTreeFamily::check_invariants(std::string* err) const {
  auto fail = [err](const std::string& m) {
    if (err) *err = m;
    return false;
  };
  // Walk the tree checking structure and the (lo, hi) key window each
  // subtree must stay inside; record leaf depths.
  struct Frame {
    std::uint32_t id;
    int depth;
    std::uint64_t lo, hi;  ///< keys must satisfy lo <= k < hi
    bool has_lo, has_hi;
  };
  std::vector<Frame> stack{{root_, 1, 0, 0, false, false}};
  int leaf_depth = -1;
  std::size_t leaf_keys = 0;
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const BTreeNode& n = nodes_[f.id];
    if (n.keys.size() > static_cast<std::size_t>(max_keys_)) {
      return fail("node over fanout");
    }
    if (!std::is_sorted(n.keys.begin(), n.keys.end())) {
      return fail("unsorted keys");
    }
    for (const std::uint64_t k : n.keys) {
      if ((f.has_lo && k < f.lo) || (f.has_hi && k >= f.hi)) {
        return fail("key outside routing window");
      }
    }
    if (n.leaf) {
      if (!n.kids.empty()) return fail("leaf with children");
      if (n.keys.size() != n.vals.size()) return fail("leaf keys/vals skew");
      if (leaf_depth == -1) leaf_depth = f.depth;
      if (leaf_depth != f.depth) return fail("uneven leaf depth");
      leaf_keys += n.keys.size();
      continue;
    }
    if (n.kids.size() != n.keys.size() + 1) return fail("inner child count");
    if (n.keys.empty()) return fail("empty inner node");
    for (std::size_t i = 0; i < n.kids.size(); ++i) {
      Frame c{n.kids[i], f.depth + 1, f.lo, f.hi, f.has_lo, f.has_hi};
      if (i > 0) {
        c.lo = n.keys[i - 1];
        c.has_lo = true;
      }
      if (i < n.keys.size()) {
        c.hi = n.keys[i];
        c.has_hi = true;
      }
      stack.push_back(c);
    }
  }
  if (leaf_depth != height_) return fail("height out of date");
  // The leaf chain must enumerate every key, in strictly increasing order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> all;
  collect(&all);
  if (all.size() != leaf_keys) return fail("leaf chain misses keys");
  for (std::size_t i = 1; i < all.size(); ++i) {
    if (all[i - 1].first >= all[i].first) return fail("leaf chain unordered");
  }
  return true;
}

BTreeForest::BTreeForest(int num_families, std::uint64_t key_space,
                         int max_keys, AllocFn alloc)
    : range_ops(static_cast<std::size_t>(num_families), 0),
      key_space_(key_space),
      range_((key_space + static_cast<std::uint64_t>(num_families) - 1) /
             static_cast<std::uint64_t>(num_families)) {
  EMUSIM_CHECK(num_families >= 1);
  EMUSIM_CHECK(key_space >= static_cast<std::uint64_t>(num_families));
  families_.reserve(static_cast<std::size_t>(num_families));
  for (int f = 0; f < num_families; ++f) {
    families_.emplace_back(max_keys, [alloc, f](std::uint64_t bytes) {
      return alloc(f, bytes);
    });
  }
}

void BTreeForest::preload_even() {
  for (std::uint64_t k = 0; k < key_space_; k += 2) {
    families_[static_cast<std::size_t>(family_of(k))].upsert(k,
                                                             value_of_key(k));
  }
}

std::size_t BTreeForest::total_nodes() const {
  std::size_t n = 0;
  for (const auto& f : families_) n += f.num_nodes();
  return n;
}

std::uint64_t BTreeForest::total_keys() const {
  std::uint64_t n = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> all;
  for (const auto& f : families_) {
    all.clear();
    f.collect(&all);
    n += all.size();
  }
  return n;
}

bool BTreeForest::check_all(std::string* err) const {
  for (std::size_t f = 0; f < families_.size(); ++f) {
    if (!families_[f].check_invariants(err)) {
      if (err) *err = "family " + std::to_string(f) + ": " + *err;
      return false;
    }
  }
  return true;
}

}  // namespace emusim::serve
