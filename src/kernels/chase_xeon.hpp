// Pointer chasing on the Xeon model (paper Figs 7, 8).
//
// The same logical lists as the Emu version, laid out contiguously in the
// Xeon's physical memory.  Expected shape (paper Fig 7): strong sensitivity
// to block size — small blocks waste 3/4 of every 64-byte line and thrash
// DRAM rows; performance peaks for blocks of 256-4096 elements (order of
// one 8 KiB DRAM page, where the row buffer and the stream prefetcher both
// help); it declines once random intra-block access spans many pages.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "kernels/chase_common.hpp"
#include "xeon/config.hpp"

namespace emusim::kernels {

struct ChaseXeonParams {
  std::size_t n = std::size_t{1} << 18;
  std::size_t block = 64;
  int threads = 16;
  ShuffleMode mode = ShuffleMode::full_block_shuffle;
  std::uint64_t seed = 1;
};

struct ChaseXeonResult {
  double mb_per_sec = 0.0;  ///< 16 useful bytes per element
  Time elapsed = 0;
  double llc_hit_rate = 0.0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  bool verified = false;
};

/// Core cycles of pointer bookkeeping per chase step.
inline constexpr std::uint64_t kChaseXeonCyclesPerElement = 6;

ChaseXeonResult run_chase_xeon(const xeon::SystemConfig& cfg,
                               const ChaseXeonParams& p);

}  // namespace emusim::kernels
