// Pointer chasing on the Emu machine model (paper Figs 6, 8, 10, 11).
//
// Blocks are striped block-cyclically across the nodelets, so a block is
// contiguous within one nodelet's channel.  Traversal within a block never
// migrates regardless of intra-block shuffling (Emu's 8 B access granularity
// makes random access within a channel free of penalty); following the
// chain into the next block migrates whenever that block lives elsewhere —
// at block size 1 that is nearly every element, the paper's worst case.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "emu/config.hpp"
#include "kernels/chase_common.hpp"

namespace emusim::kernels {

struct ChaseEmuParams {
  std::size_t n = std::size_t{1} << 17;  ///< total list elements
  std::size_t block = 64;                ///< elements per block
  int threads = 64;
  ShuffleMode mode = ShuffleMode::full_block_shuffle;
  std::uint64_t seed = 1;
};

struct ChaseEmuResult {
  double mb_per_sec = 0.0;  ///< 16 useful bytes per element over sim time
  Time elapsed = 0;
  std::uint64_t migrations = 0;
  double migrations_per_element = 0.0;
  bool verified = false;
};

/// Instruction cost of one chase step (pointer bookkeeping, the summation,
/// loop control, and the load's issue slot).
inline constexpr std::uint64_t kChaseCyclesPerElement = 18;

ChaseEmuResult run_chase_emu(const emu::SystemConfig& cfg,
                             const ChaseEmuParams& p);

}  // namespace emusim::kernels
