// Level-synchronous BFS on the Xeon model, completing the cross-platform
// story for the streaming-graph motivation: frontier chunks run through the
// task pool; edge relaxations are random 4-byte reads into the distance
// array — exactly the cache-line-wasting access pattern the paper's
// pointer-chase benchmark distills.
#pragma once

#include "common/units.hpp"
#include "graph/graph.hpp"
#include "xeon/config.hpp"

namespace emusim::kernels {

struct BfsXeonParams {
  const graph::Graph* g = nullptr;
  std::size_t source = 0;
  int threads = 16;
  std::size_t chunk = 64;  ///< frontier vertices per task
};

struct BfsXeonResult {
  double mteps = 0.0;
  Time elapsed = 0;
  int levels = 0;
  double llc_hit_rate = 0.0;
  bool verified = false;
};

inline constexpr std::uint64_t kBfsXeonCyclesPerEdge = 6;
inline constexpr std::uint64_t kBfsXeonCyclesPerVertex = 12;

BfsXeonResult run_bfs_xeon(const xeon::SystemConfig& cfg,
                           const BfsXeonParams& p);

}  // namespace emusim::kernels
