// At-scale pointer chasing for the 64-1024 nodelet sweeps (ROADMAP item 3).
//
// The Fig 11 chase (kernels/chase_emu.hpp) builds its linked list in host
// memory — O(n) vectors for next pointers, payloads, and shuffle maps —
// which caps it far below the billion-element datasets the scaling study
// needs.  This kernel keeps the same traversal structure (block-cyclic
// striped elements, migrate to a block's home, walk the block's elements)
// but generates the chain *procedurally*: the block visit order is a
// full-period LCG over the power-of-two block-index space (or sequential,
// for the locality contrast), so no chain state is ever materialized and
// the host cost of a 2^30-element region is chunk bookkeeping only (the
// lazily chunked Striped1D never touches element storage on this path).
//
// Each of `threads` chains walks exactly `elems_per_thread` elements —
// fixed per-thread work, so simulated event count is independent of n and a
// 2^30-element point costs the same wall time as a 2^20-element one.  Every
// chain checksums a hash of the global indices it visits; the host replays
// the (deterministic) walk to verify.  Per-chain checksums land in a small
// striped results array — the only materialized storage, O(nodelets) bytes
// — so a run also exercises the chunked views end to end at scale.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "emu/config.hpp"

namespace emusim::kernels {

struct ChaseScaleParams {
  std::size_t n = std::size_t{1} << 24;  ///< elements; must be a power of two
  std::size_t block = 64;                ///< elements per block; power of two
  int threads = 256;                     ///< concurrent chains
  /// Elements each chain visits (a multiple of `block`).  Work per point is
  /// threads * elems_per_thread regardless of n.
  std::uint64_t elems_per_thread = 4096;
  /// true: full-period LCG permutation of the block order (the shuffled
  /// walk); false: sequential block order.  Both orders change nodelet
  /// every block under block-cyclic striping — the paper's claim is that
  /// their bandwidth matches (locality-insensitivity).
  bool shuffled = true;
  std::uint64_t seed = 1;
};

struct ChaseScaleResult {
  double mb_per_sec = 0.0;  ///< 16 useful bytes per visited element
  Time elapsed = 0;
  std::uint64_t migrations = 0;
  double migrations_per_element = 0.0;
  /// Peak host bytes materialized by the machine's views during the run:
  /// the per-chain checksum array only, never the n-element region.
  std::uint64_t host_peak_bytes = 0;
  bool verified = false;
};

ChaseScaleResult run_chase_scale(const emu::SystemConfig& cfg,
                                 const ChaseScaleParams& p);

}  // namespace emusim::kernels
