// Sparse matrix-vector multiply: shared CSR structures and the paper's
// synthetic inputs (§III-E): a d=2, k=5-point Laplacian stencil on an n x n
// grid, i.e. an n^2 x n^2 matrix with 5 diagonals.
//
// Effective bandwidth is reported as the paper does for CSR SpMV: the CSR
// stream itself (8 B value + 8 B column index per nonzero — the Emu port
// uses 64-bit indices) over the kernel time.
#pragma once

#include <cstdint>
#include <vector>

namespace emusim::kernels {

struct Csr {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::int64_t> row_ptr;  ///< rows+1 entries
  std::vector<std::int64_t> col_idx;  ///< nnz entries (64-bit, as on Emu)
  std::vector<double> vals;           ///< nnz entries

  std::size_t nnz() const { return vals.size(); }
};

/// 5-point 2-D Laplacian on an n x n grid: 4 on the diagonal, -1 for each
/// grid neighbour.  rows = cols = n^2.
Csr make_laplacian_2d(std::size_t n);

/// y = A * x, straightforward serial reference for verification.
std::vector<double> spmv_reference(const Csr& a, const std::vector<double>& x);

/// Deterministic x vector for the benchmarks.
std::vector<double> make_x(std::size_t cols, std::uint64_t seed = 3);

/// Useful bytes for the effective-bandwidth metric: 16 B per nonzero.
double spmv_bytes(const Csr& a);

/// Partition rows into `parts` contiguous ranges with approximately equal
/// nonzero counts.  Returns parts+1 row boundaries.
std::vector<std::size_t> partition_rows_by_nnz(const Csr& a, int parts);

/// Split [row_begin, row_end) into tasks of at least `grain` nonzeros,
/// breaking only at row boundaries.  Returns task row boundaries.
std::vector<std::size_t> grain_tasks(const Csr& a, std::size_t row_begin,
                                     std::size_t row_end, std::size_t grain);

}  // namespace emusim::kernels
