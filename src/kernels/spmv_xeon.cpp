#include "kernels/spmv_xeon.hpp"

#include <cmath>
#include <vector>

#include "xeon/machine.hpp"

namespace emusim::kernels {

using sim::Op;
using xeon::CpuContext;

const char* to_string(SpmvXeonImpl i) {
  switch (i) {
    case SpmvXeonImpl::mkl: return "mkl";
    case SpmvXeonImpl::cilk_for: return "cilk_for";
    case SpmvXeonImpl::cilk_spawn: return "cilk_spawn";
  }
  return "?";
}

namespace {

struct XSpmv {
  const Csr* a;
  const std::vector<double>* x_host;
  std::uint64_t rowptr, col, val, x, y;  ///< simulated base addresses
  std::vector<double> y_out;
};

/// One row range.  Column/value streams are sequential (prefetch-friendly);
/// x is gathered — for the Laplacian its reach is a few rows of the grid,
/// typically cache-resident.
///
/// An out-of-order core overlaps the independent loads of a row, so the
/// timed path awaits one load per touched cache line (8 nonzeros per
/// col/val line) plus one representative x gather per group, with the rest
/// of the work charged as compute.  Awaiting every load serially would
/// model an in-order core and underestimate the CPU several-fold.
Op<> spmv_rows(CpuContext& ctx, XSpmv* st, std::size_t rlo, std::size_t rhi) {
  const Csr& a = *st->a;
  constexpr std::size_t kGroup = 8;  // nonzeros per 64 B col/val line
  for (std::size_t r = rlo; r < rhi; ++r) {
    co_await ctx.load(st->rowptr + r * 8);
    co_await ctx.compute(kSpmvXeonCyclesPerRow);
    double acc = 0.0;
    const auto k0 = static_cast<std::size_t>(a.row_ptr[r]);
    const auto k1 = static_cast<std::size_t>(a.row_ptr[r + 1]);
    for (std::size_t k = k0; k < k1; k += kGroup) {
      const std::size_t kend = std::min(k + kGroup, k1);
      co_await ctx.load(st->col + k * 8);
      co_await ctx.load(st->val + k * 8);
      const auto c = static_cast<std::size_t>(a.col_idx[k]);
      co_await ctx.load(st->x + c * 8);
      co_await ctx.compute(kSpmvXeonCyclesPerNnz * (kend - k));
      for (std::size_t kk = k; kk < kend; ++kk) {
        acc += a.vals[kk] *
               (*st->x_host)[static_cast<std::size_t>(a.col_idx[kk])];
      }
    }
    st->y_out[r] = acc;
    ctx.store(st->y + r * 8);
  }
}

}  // namespace

SpmvXeonResult run_spmv_xeon(const xeon::SystemConfig& cfg,
                             const SpmvXeonParams& p) {
  const Csr a = make_laplacian_2d(p.laplacian_n);
  const auto x_host = make_x(a.cols);
  const auto y_ref = spmv_reference(a, x_host);

  xeon::Machine m(cfg);
  XSpmv st;
  st.a = &a;
  st.x_host = &x_host;
  st.rowptr = m.allocate((a.rows + 1) * 8);
  st.col = m.allocate(a.nnz() * 8);
  st.val = m.allocate(a.nnz() * 8);
  st.x = m.allocate(a.cols * 8);
  st.y = m.allocate(a.rows * 8);
  st.y_out.assign(a.rows, 0.0);

  std::vector<xeon::TaskFn> tasks;
  int overhead = 0;
  switch (p.impl) {
    case SpmvXeonImpl::mkl: {
      const auto bounds = partition_rows_by_nnz(a, p.threads);
      for (std::size_t t = 0; t + 1 < bounds.size(); ++t) {
        const std::size_t lo = bounds[t], hi = bounds[t + 1];
        if (lo >= hi) continue;
        tasks.push_back(
            [&st, lo, hi](CpuContext& c) { return spmv_rows(c, &st, lo, hi); });
      }
      overhead = 0;
      break;
    }
    case SpmvXeonImpl::cilk_for: {
      // cilk_for splits to ~8 chunks per worker.
      const int chunks = 8 * p.threads;
      const auto bounds = partition_rows_by_nnz(a, chunks);
      for (std::size_t t = 0; t + 1 < bounds.size(); ++t) {
        const std::size_t lo = bounds[t], hi = bounds[t + 1];
        if (lo >= hi) continue;
        tasks.push_back(
            [&st, lo, hi](CpuContext& c) { return spmv_rows(c, &st, lo, hi); });
      }
      overhead = cfg.for_chunk_overhead_cycles;
      break;
    }
    case SpmvXeonImpl::cilk_spawn: {
      const auto bounds = grain_tasks(a, 0, a.rows, p.grain);
      for (std::size_t t = 0; t + 1 < bounds.size(); ++t) {
        const std::size_t lo = bounds[t], hi = bounds[t + 1];
        if (lo >= hi) continue;
        tasks.push_back(
            [&st, lo, hi](CpuContext& c) { return spmv_rows(c, &st, lo, hi); });
      }
      overhead = cfg.spawn_overhead_cycles;
      break;
    }
  }

  const Time elapsed = run_task_pool(m, p.threads, std::move(tasks), overhead);

  SpmvXeonResult r;
  r.elapsed = elapsed;
  r.mb_per_sec = mb_per_sec(spmv_bytes(a), elapsed);
  r.verified = true;
  for (std::size_t i = 0; i < a.rows; ++i) {
    if (std::abs(st.y_out[i] - y_ref[i]) > 1e-9) {
      r.verified = false;
      break;
    }
  }
  return r;
}

}  // namespace emusim::kernels
