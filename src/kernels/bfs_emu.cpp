#include "kernels/bfs_emu.hpp"

#include <algorithm>
#include <vector>

#include "emu/machine.hpp"
#include "emu/runtime/alloc.hpp"
#include "emu/runtime/parallel.hpp"

namespace emusim::kernels {

using emu::Chunked;
using emu::Context;
using emu::Striped1D;
using graph::kBfsUnreached;
using sim::Op;

namespace {

struct BfsState {
  const graph::Graph* g;
  int nlets;

  Striped1D<std::int64_t> dist;  ///< timed image of the distance array
  Chunked<std::uint32_t> adj;    ///< adjacency stored at each vertex's home
  Chunked<std::uint32_t> queue;  ///< per-nodelet frontier storage

  std::vector<std::uint32_t> dist_host;
  std::vector<std::uint64_t> adj_local_off;  ///< per-vertex offset in chunk
  std::vector<std::vector<std::uint32_t>> frontier, next_frontier;

  static std::vector<std::size_t> adj_counts(const graph::Graph& g,
                                             int nlets) {
    std::vector<std::size_t> counts(static_cast<std::size_t>(nlets), 0);
    for (std::size_t v = 0; v < g.num_vertices; ++v) {
      counts[v % static_cast<std::size_t>(nlets)] += g.degree(v);
    }
    return counts;
  }
  static std::vector<std::size_t> queue_counts(const graph::Graph& g,
                                               int nlets) {
    // Worst case: every vertex homed here lands in the queue.
    std::vector<std::size_t> counts(static_cast<std::size_t>(nlets), 0);
    for (std::size_t v = 0; v < g.num_vertices; ++v) {
      ++counts[v % static_cast<std::size_t>(nlets)];
    }
    return counts;
  }

  BfsState(emu::Machine& m, const graph::Graph& graph)
      : g(&graph),
        nlets(m.num_nodelets()),
        dist(m, graph.num_vertices),
        adj(m, adj_counts(graph, m.num_nodelets())),
        queue(m, queue_counts(graph, m.num_nodelets())),
        dist_host(graph.num_vertices, kBfsUnreached),
        adj_local_off(graph.num_vertices, 0),
        frontier(static_cast<std::size_t>(nlets)),
        next_frontier(static_cast<std::size_t>(nlets)) {
    // Lay each vertex's adjacency into its home nodelet's chunk.
    std::vector<std::uint64_t> fill(static_cast<std::size_t>(nlets), 0);
    for (std::size_t v = 0; v < graph.num_vertices; ++v) {
      const auto d = static_cast<std::size_t>(v % static_cast<std::size_t>(nlets));
      adj_local_off[v] = fill[d];
      for (auto k = graph.row_ptr[v]; k < graph.row_ptr[v + 1]; ++k) {
        adj.at(static_cast<int>(d), fill[d]++) =
            graph.adj[static_cast<std::size_t>(k)];
      }
    }
  }

  int home(std::uint32_t v) const { return dist.home(v); }
};

/// Process one frontier vertex: read its (local) adjacency, then migrate to
/// each unvisited neighbour's home to claim it.
Op<> relax_vertex(Context& ctx, BfsState* st, std::uint32_t u,
                  std::uint32_t next_level) {
  const int home_u = st->home(u);
  if (ctx.nodelet() != home_u) co_await ctx.migrate_to(home_u);
  co_await ctx.issue(kBfsCyclesPerVertex);

  const auto deg = st->g->degree(u);
  const auto base = st->adj_local_off[u];
  // Stream the (local) adjacency list: one channel access per 8 bytes.
  for (std::size_t off = 0; off < deg * 4; off += 8) {
    co_await ctx.read_local(
        st->adj.byte_addr(home_u, base) + off,
        static_cast<std::uint32_t>(std::min<std::size_t>(8, deg * 4 - off)));
  }

  for (std::size_t k = 0; k < deg; ++k) {
    const std::uint32_t v = st->adj.at(home_u, base + k);
    co_await ctx.issue(kBfsCyclesPerEdge);
    const int home_v = st->home(v);
    // Cheap already-claimed pre-check, only against state this shard owns:
    // claims to v are serialized on v's home shard, so peeking at
    // dist_host[v] from another shard would race with a claim running
    // concurrently in the same window (nondeterministic under
    // --engine-threads).  An off-shard v migrates and re-checks
    // authoritatively below, exactly as before.
    if (ctx.shard() == ctx.machine().shard_of_nodelet(home_v) &&
        st->dist_host[v] != kBfsUnreached) {
      continue;
    }
    if (ctx.nodelet() != home_v) co_await ctx.migrate_to(home_v);
    co_await ctx.read_local(st->dist.byte_addr(v), 8);
    // Test-and-claim is atomic here: the DES interleaves threadlets only at
    // awaits, so the host-side check above and this claim cannot race.
    if (st->dist_host[v] == kBfsUnreached) {
      st->dist_host[v] = next_level;
      ctx.write_local(st->dist.byte_addr(v), 8);
      auto& nq = st->next_frontier[static_cast<std::size_t>(home_v)];
      ctx.write_local(st->queue.byte_addr(home_v, nq.size()), 8);
      nq.push_back(v);
    }
  }
}

Op<> bfs_level(Context& ctx, BfsState* st, std::uint32_t next_level,
               std::size_t grain) {
  co_await emu::on_each_nodelet(ctx, [st, next_level,
                                      grain](Context& c) -> Op<> {
    const auto& fq = st->frontier[static_cast<std::size_t>(c.nodelet())];
    co_await emu::parallel_apply(
        c, 0, fq.size(), grain,
        [st, &fq, next_level](Context& t, std::size_t i) {
          return relax_vertex(t, st, fq[i], next_level);
        });
  });
}

}  // namespace

BfsEmuResult run_bfs_emu(const emu::SystemConfig& cfg, const BfsEmuParams& p) {
  EMUSIM_CHECK(p.g != nullptr && p.source < p.g->num_vertices);
  emu::Machine m(cfg);
  BfsState st(m, *p.g);

  st.dist_host[p.source] = 0;
  st.frontier[static_cast<std::size_t>(st.home(
      static_cast<std::uint32_t>(p.source)))]
      .push_back(static_cast<std::uint32_t>(p.source));

  int levels = 0;
  const Time elapsed = m.run_root([&](Context& ctx) -> Op<> {
    for (std::uint32_t level = 1;; ++level) {
      bool any = false;
      for (const auto& fq : st.frontier) any = any || !fq.empty();
      if (!any) break;
      ++levels;
      co_await bfs_level(ctx, &st, level, p.grain);
      st.frontier.swap(st.next_frontier);
      for (auto& q : st.next_frontier) q.clear();
    }
  });

  BfsEmuResult r;
  r.elapsed = elapsed;
  r.levels = levels;
  r.migrations = m.stats.migrations;
  r.mteps = static_cast<double>(p.g->num_directed_edges()) /
            to_seconds(elapsed) / 1e6;
  r.verified = st.dist_host == graph::bfs_reference(*p.g, p.source);
  return r;
}

}  // namespace emusim::kernels
