// STREAM ADD on the Xeon model.  Establishes each CPU platform's measured
// peak bandwidth — the normalization denominator for Fig 8 — and backs the
// paper's statement that the Sandy Bridge reference reaches close to its
// nominal 51.2 GB/s.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "xeon/config.hpp"

namespace emusim::kernels {

struct StreamXeonParams {
  std::size_t n = std::size_t{1} << 21;  ///< elements (8 B) per array
  int threads = 16;
};

struct StreamXeonResult {
  double mb_per_sec = 0.0;  ///< 24 useful bytes per element over sim time
  Time elapsed = 0;
  bool verified = false;
};

/// Core cycles per element of the unrolled add loop.
inline constexpr std::uint64_t kStreamXeonCyclesPerElement = 2;

StreamXeonResult run_stream_xeon(const xeon::SystemConfig& cfg,
                                 const StreamXeonParams& p);

}  // namespace emusim::kernels
