#include "kernels/spmv_common.hpp"

#include "common/check.hpp"
#include "sim/random.hpp"

namespace emusim::kernels {

Csr make_laplacian_2d(std::size_t n) {
  EMUSIM_CHECK(n >= 1);
  Csr a;
  a.rows = a.cols = n * n;
  a.row_ptr.reserve(a.rows + 1);
  a.row_ptr.push_back(0);
  a.col_idx.reserve(5 * a.rows);
  a.vals.reserve(5 * a.rows);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const auto row = i * n + j;
      auto push = [&](std::size_t col, double v) {
        a.col_idx.push_back(static_cast<std::int64_t>(col));
        a.vals.push_back(v);
      };
      if (i > 0) push(row - n, -1.0);
      if (j > 0) push(row - 1, -1.0);
      push(row, 4.0);
      if (j + 1 < n) push(row + 1, -1.0);
      if (i + 1 < n) push(row + n, -1.0);
      a.row_ptr.push_back(static_cast<std::int64_t>(a.col_idx.size()));
    }
  }
  return a;
}

std::vector<double> spmv_reference(const Csr& a,
                                   const std::vector<double>& x) {
  EMUSIM_CHECK(x.size() == a.cols);
  std::vector<double> y(a.rows, 0.0);
  for (std::size_t r = 0; r < a.rows; ++r) {
    double acc = 0.0;
    for (auto k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      acc += a.vals[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(a.col_idx[static_cast<std::size_t>(k)])];
    }
    y[r] = acc;
  }
  return y;
}

std::vector<double> make_x(std::size_t cols, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<double> x(cols);
  for (auto& v : x) v = rng.uniform() * 2.0 - 1.0;
  return x;
}

double spmv_bytes(const Csr& a) {
  return 16.0 * static_cast<double>(a.nnz());
}

std::vector<std::size_t> partition_rows_by_nnz(const Csr& a, int parts) {
  EMUSIM_CHECK(parts >= 1);
  std::vector<std::size_t> bounds;
  bounds.reserve(static_cast<std::size_t>(parts) + 1);
  bounds.push_back(0);
  const double total = static_cast<double>(a.nnz());
  std::size_t r = 0;
  for (int p = 1; p < parts; ++p) {
    const double target = total * p / parts;
    while (r < a.rows && static_cast<double>(a.row_ptr[r]) < target) ++r;
    bounds.push_back(r);
  }
  bounds.push_back(a.rows);
  return bounds;
}

std::vector<std::size_t> grain_tasks(const Csr& a, std::size_t row_begin,
                                     std::size_t row_end, std::size_t grain) {
  std::vector<std::size_t> bounds;
  bounds.push_back(row_begin);
  std::size_t start = row_begin;
  while (start < row_end) {
    std::size_t r = start;
    const auto limit =
        a.row_ptr[start] + static_cast<std::int64_t>(grain);
    while (r < row_end && a.row_ptr[r + 1] < limit) ++r;
    ++r;  // include the row that crossed the grain boundary
    if (r > row_end) r = row_end;
    bounds.push_back(r);
    start = r;
  }
  return bounds;
}

}  // namespace emusim::kernels
