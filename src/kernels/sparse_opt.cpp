#include "kernels/sparse_opt.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/check.hpp"
#include "emu/machine.hpp"
#include "emu/runtime/alloc.hpp"
#include "emu/runtime/parallel.hpp"
#include "graph/graph.hpp"
#include "sim/random.hpp"
#include "xeon/machine.hpp"

namespace emusim::kernels {

const char* to_string(SparseLayout l) {
  switch (l) {
    case SparseLayout::csr: return "csr";
    case SparseLayout::blocked: return "blocked";
    case SparseLayout::reordered: return "reordered";
  }
  return "?";
}

SparseMatrix make_sparse_matrix(std::size_t n, double avg_degree,
                                graph::EdgeDist dist, std::uint64_t seed) {
  graph::Graph g;
  if (dist == graph::EdgeDist::uniform) {
    g = graph::make_uniform_random(n, avg_degree, seed);
  } else {
    int scale = 0;
    while ((std::size_t{1} << scale) < n) ++scale;
    EMUSIM_CHECK((std::size_t{1} << scale) == n);  // rmat needs 2^scale
    g = graph::make_rmat(scale,
                         std::max(1, static_cast<int>(avg_degree / 2.0)),
                         seed);
  }
  SparseMatrix a;
  a.rows = a.cols = n;
  a.row_ptr = g.row_ptr;
  a.col_idx = g.adj;
  a.vals.resize(g.adj.size());
  sim::Rng rng(seed ^ 0x5eed5eedULL);
  for (auto& v : a.vals) {
    v = static_cast<double>(1 + rng.below(8));  // integer-valued: exact sums
  }
  // Graph500-style random vertex relabeling: the RMAT recursion parks its
  // hubs at low ids, which would hand the CSR baseline the very clustering
  // the reordered layout is supposed to discover.  Scattering ids makes the
  // natural order carry no locality — as in real-world edge lists.
  std::vector<std::uint32_t> scatter(n);
  std::iota(scatter.begin(), scatter.end(), 0u);
  for (std::size_t i = n - 1; i > 0; --i) {
    std::swap(scatter[i], scatter[rng.below(i + 1)]);
  }
  return permute_symmetric(a, scatter);
}

std::vector<double> make_int_x(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) v = static_cast<double>(1 + rng.below(8));
  return x;
}

std::vector<double> sparse_reference(const SparseMatrix& a,
                                     const std::vector<double>& x) {
  EMUSIM_CHECK(x.size() == a.cols);
  std::vector<double> y(a.rows, 0.0);
  for (std::size_t r = 0; r < a.rows; ++r) {
    double acc = 0.0;
    for (auto k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      acc += a.vals[kk] * x[a.col_idx[kk]];
    }
    y[r] = acc;
  }
  return y;
}

std::vector<std::uint32_t> degree_order(const SparseMatrix& a) {
  std::vector<std::uint32_t> perm(a.rows);
  std::iota(perm.begin(), perm.end(), 0u);
  std::stable_sort(perm.begin(), perm.end(),
                   [&a](std::uint32_t p, std::uint32_t q) {
                     const auto np = a.row_ptr[p + 1] - a.row_ptr[p];
                     const auto nq = a.row_ptr[q + 1] - a.row_ptr[q];
                     if (np != nq) return np > nq;
                     return p < q;
                   });
  return perm;
}

std::vector<std::uint32_t> invert_permutation(
    const std::vector<std::uint32_t>& perm) {
  std::vector<std::uint32_t> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    inv[perm[i]] = static_cast<std::uint32_t>(i);
  }
  return inv;
}

SparseMatrix permute_symmetric(const SparseMatrix& a,
                               const std::vector<std::uint32_t>& perm) {
  EMUSIM_CHECK(a.rows == a.cols && perm.size() == a.rows);
  const auto inv = invert_permutation(perm);
  SparseMatrix b;
  b.rows = a.rows;
  b.cols = a.cols;
  b.row_ptr.assign(a.rows + 1, 0);
  b.col_idx.reserve(a.nnz());
  b.vals.reserve(a.nnz());
  std::vector<std::pair<std::uint32_t, double>> row;
  for (std::size_t nr = 0; nr < a.rows; ++nr) {
    const std::uint32_t orow = perm[nr];
    row.clear();
    for (auto k = a.row_ptr[orow]; k < a.row_ptr[orow + 1]; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      row.emplace_back(inv[a.col_idx[kk]], a.vals[kk]);
    }
    std::sort(row.begin(), row.end());
    for (const auto& [c, v] : row) {
      b.col_idx.push_back(c);
      b.vals.push_back(v);
    }
    b.row_ptr[nr + 1] = static_cast<std::int64_t>(b.col_idx.size());
  }
  return b;
}

namespace {

/// Append the non-empty row segments of CSR matrix `m` to the plan in plan
/// numbering (row r of `m` is plan row r).
void append_rows(const SparseMatrix& m, SpmvPlan* plan) {
  for (std::size_t r = 0; r < m.rows; ++r) {
    const auto b = m.row_ptr[r], e = m.row_ptr[r + 1];
    if (b == e) continue;
    SpmvSegment seg;
    seg.out_row = static_cast<std::uint32_t>(r);
    seg.begin = static_cast<std::int64_t>(plan->col.size());
    for (auto k = b; k < e; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      plan->col.push_back(m.col_idx[kk]);
      plan->val.push_back(m.vals[kk]);
    }
    seg.end = static_cast<std::int64_t>(plan->col.size());
    plan->segments.push_back(seg);
  }
}

}  // namespace

SpmvPlan build_plan(const SparseMatrix& a, const std::vector<double>& x,
                    SparseLayout layout, std::size_t block_cols) {
  EMUSIM_CHECK(x.size() == a.cols);
  SpmvPlan plan;
  plan.layout = layout;
  plan.rows = a.rows;
  plan.cols = a.cols;
  plan.col.reserve(a.nnz());
  plan.val.reserve(a.nnz());

  plan.row_map.resize(a.rows);
  std::iota(plan.row_map.begin(), plan.row_map.end(), 0u);

  switch (layout) {
    case SparseLayout::csr:
      plan.x = x;
      append_rows(a, &plan);
      break;

    case SparseLayout::blocked: {
      EMUSIM_CHECK(block_cols >= 1);
      plan.x = x;
      for (std::size_t b0 = 0; b0 < a.cols; b0 += block_cols) {
        const auto hi = static_cast<std::uint32_t>(
            std::min(b0 + block_cols, a.cols));
        const auto lo = static_cast<std::uint32_t>(b0);
        for (std::size_t r = 0; r < a.rows; ++r) {
          const auto* cb = a.col_idx.data() + a.row_ptr[r];
          const auto* ce = a.col_idx.data() + a.row_ptr[r + 1];
          const auto* sb = std::lower_bound(cb, ce, lo);
          const auto* se = std::lower_bound(sb, ce, hi);
          if (sb == se) continue;
          SpmvSegment seg;
          seg.out_row = static_cast<std::uint32_t>(r);
          seg.begin = static_cast<std::int64_t>(plan.col.size());
          for (const auto* c = sb; c != se; ++c) {
            const auto kk = static_cast<std::size_t>(
                a.row_ptr[r] + (c - cb));
            plan.col.push_back(a.col_idx[kk]);
            plan.val.push_back(a.vals[kk]);
          }
          seg.end = static_cast<std::int64_t>(plan.col.size());
          plan.segments.push_back(seg);
        }
      }
      break;
    }

    case SparseLayout::reordered: {
      const auto perm = degree_order(a);
      const SparseMatrix ap = permute_symmetric(a, perm);
      plan.x.resize(a.cols);
      for (std::size_t i = 0; i < a.cols; ++i) plan.x[i] = x[perm[i]];
      plan.row_map = perm;
      append_rows(ap, &plan);
      break;
    }
  }
  EMUSIM_CHECK(plan.nnz() == a.nnz());
  return plan;
}

namespace {

/// Un-permute a plan-space y into original row order.
std::vector<double> unmap_rows(const SpmvPlan& plan,
                               const std::vector<double>& y_plan) {
  std::vector<double> y(plan.rows, 0.0);
  for (std::size_t i = 0; i < plan.rows; ++i) {
    y[plan.row_map[i]] = y_plan[i];
  }
  return y;
}

/// Host execution of a plan (original row order) — what both timed kernels
/// must reproduce bit-for-bit.
std::vector<double> plan_reference(const SpmvPlan& plan) {
  std::vector<double> y(plan.rows, 0.0);
  for (const auto& seg : plan.segments) {
    double acc = 0.0;
    for (auto k = seg.begin; k < seg.end; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      acc += plan.val[kk] * plan.x[plan.col[kk]];
    }
    y[seg.out_row] += acc;
  }
  return unmap_rows(plan, y);
}

/// Split segments into work quanta of at most `max_nnz` nonzeros each, so
/// the parallel shape is layout-independent: a hub row yields many quanta
/// under any layout, and blocking cannot masquerade as a load-balance
/// optimization.  Each quantum still accumulates into its segment's row.
std::vector<SpmvSegment> make_quanta(const SpmvPlan& plan,
                                     std::int64_t max_nnz) {
  std::vector<SpmvSegment> quanta;
  quanta.reserve(plan.segments.size());
  for (const auto& seg : plan.segments) {
    for (auto b = seg.begin; b < seg.end; b += max_nnz) {
      quanta.push_back({seg.out_row, b, std::min(b + max_nnz, seg.end)});
    }
  }
  return quanta;
}

/// Pack quanta into contiguous tasks of roughly `task_nnz` nonzeros each,
/// so every layout presents the same number of similarly-sized parallel
/// tasks regardless of how its segments fragment.
std::vector<std::pair<std::size_t, std::size_t>> pack_tasks(
    const std::vector<SpmvSegment>& quanta, std::size_t task_nnz) {
  std::vector<std::pair<std::size_t, std::size_t>> tasks;
  std::size_t lo = 0, acc = 0;
  for (std::size_t q = 0; q < quanta.size(); ++q) {
    acc += static_cast<std::size_t>(quanta[q].end - quanta[q].begin);
    if (acc >= task_nnz) {
      tasks.emplace_back(lo, q + 1);
      lo = q + 1;
      acc = 0;
    }
  }
  if (lo < quanta.size()) tasks.emplace_back(lo, quanta.size());
  return tasks;
}

// --- emu ------------------------------------------------------------------

using emu::Context;
using sim::Op;

struct EmuSparse {
  const SpmvPlan* plan;
  emu::Striped1D<std::uint32_t> col;  ///< word-striped nonzero columns
  emu::Striped1D<double> val;
  emu::Replicated<double> x;          ///< local read on every nodelet
  emu::Striped1D<double> y;
  std::vector<double> y_host;

  EmuSparse(emu::Machine& m, const SpmvPlan& p)
      : plan(&p),
        col(m, p.nnz()),
        val(m, p.nnz()),
        x(m, p.cols),
        y(m, p.rows),
        y_host(p.rows, 0.0) {}
};

/// Execute work quanta [lo, hi): walk the plan-ordered nonzero stream,
/// migrating to each word's home, and post one remote atomic per quantum
/// into the owning row.  The per-quantum cost is just that atomic plus a
/// few issue cycles — which is why blocking (more segments, same nonzeros)
/// stays flat-to-mildly-harmful here.
Op<> emu_segments(Context& ctx, EmuSparse* st,
                  const std::vector<SpmvSegment>* quanta, std::size_t lo,
                  std::size_t hi) {
  const SpmvPlan& plan = *st->plan;
  for (std::size_t s = lo; s < hi; ++s) {
    const auto& seg = (*quanta)[s];
    double acc = 0.0;
    for (auto k = seg.begin; k < seg.end; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      const int h = st->col.home(kk);
      if (ctx.nodelet() != h) co_await ctx.migrate_to(h);
      co_await ctx.read_local(st->col.byte_addr(kk), 4);
      co_await ctx.read_local(st->val.byte_addr(kk), 8);
      const std::uint32_t c = plan.col[kk];
      co_await st->x.read(ctx, c);
      co_await ctx.issue(kSparseEmuCyclesPerNnz);
      acc += plan.val[kk] * plan.x[c];
    }
    co_await ctx.issue(kSparseEmuCyclesPerSeg);
    const auto row = seg.out_row;
    ctx.atomic_remote(st->y.home(row), st->y.byte_addr(row),
                      [st, row, acc] { st->y_host[row] += acc; });
  }
}

// --- xeon -----------------------------------------------------------------

using xeon::CpuContext;

struct XeonSparse {
  const SpmvPlan* plan;
  std::uint64_t col_addr = 0, val_addr = 0, x_addr = 0, y_addr = 0;
  std::vector<double> y_host;
};

/// Execute segments [lo, hi): col/val stream one load per cache line, but
/// every nonzero pays its x gather — the random access that cache blocking
/// localizes and hub clustering condenses.
Op<> xeon_segments(CpuContext& ctx, XeonSparse* st, std::size_t lo,
                   std::size_t hi) {
  const SpmvPlan& plan = *st->plan;
  for (std::size_t s = lo; s < hi; ++s) {
    const auto& seg = plan.segments[s];
    co_await ctx.compute(kSparseXeonCyclesPerSeg +
                         kSparseXeonCyclesPerNnz *
                             static_cast<std::uint64_t>(seg.end - seg.begin));
    double acc = 0.0;
    for (auto k = seg.begin; k < seg.end; ++k) {
      const auto kk = static_cast<std::size_t>(k);
      if (k == seg.begin || kk % 16 == 0) {
        co_await ctx.load(st->col_addr + kk * 4);
      }
      if (k == seg.begin || kk % 8 == 0) {
        co_await ctx.load(st->val_addr + kk * 8);
      }
      const std::uint32_t c = plan.col[kk];
      co_await ctx.load(st->x_addr + static_cast<std::uint64_t>(c) * 8);
      acc += plan.val[kk] * plan.x[c];
    }
    st->y_host[seg.out_row] += acc;  // DES-atomic with the store below
    ctx.store(st->y_addr + static_cast<std::uint64_t>(seg.out_row) * 8);
  }
}

void finish_sparse(const SpmvPlan& plan, const std::vector<double>& y_plan,
                   Time elapsed, SparseOptResult* r) {
  r->elapsed = elapsed;
  r->mflops = 2.0 * static_cast<double>(plan.nnz()) / to_seconds(elapsed) /
              1e6;
  r->mb_per_sec = mb_per_sec(plan.nnz() * 12, elapsed);
  r->y = unmap_rows(plan, y_plan);
  r->verified = r->y == plan_reference(plan);
}

}  // namespace

SparseOptResult run_sparse_emu(const emu::SystemConfig& cfg,
                               const SparseOptParams& p) {
  EMUSIM_CHECK(p.plan != nullptr && p.grain >= 1);
  const SpmvPlan& plan = *p.plan;
  emu::Machine m(cfg);
  EmuSparse st(m, plan);
  const auto quanta = make_quanta(plan, 32);
  const auto tasks =
      pack_tasks(quanta, std::max<std::size_t>(1, p.grain * 4));
  // Tasks are nonzero-balanced by construction; split their index range
  // evenly over the nodelets.
  const auto nlets = static_cast<std::size_t>(m.num_nodelets());
  std::vector<std::size_t> bounds(nlets + 1);
  for (std::size_t d = 0; d <= nlets; ++d) {
    bounds[d] = tasks.size() * d / nlets;
  }

  const Time elapsed = m.run_root([&st, &quanta, &tasks,
                                   &bounds](Context& ctx) -> Op<> {
    co_await emu::on_each_nodelet(ctx, [&st, &quanta, &tasks,
                                        &bounds](Context& c) -> Op<> {
      const auto d = static_cast<std::size_t>(c.nodelet());
      co_await emu::parallel_apply(
          c, bounds[d], bounds[d + 1], 1,
          [&st, &quanta, &tasks](Context& t, std::size_t i) {
            return emu_segments(t, &st, &quanta, tasks[i].first,
                                tasks[i].second);
          });
    });
  });

  SparseOptResult r;
  r.migrations = m.stats.migrations;
  finish_sparse(plan, std::move(st.y_host), elapsed, &r);
  return r;
}

SparseOptResult run_sparse_xeon(const xeon::SystemConfig& cfg,
                                const SparseOptParams& p) {
  EMUSIM_CHECK(p.plan != nullptr && p.threads >= 1);
  const SpmvPlan& plan = *p.plan;
  xeon::Machine m(cfg);
  XeonSparse st;
  st.plan = &plan;
  st.col_addr = m.allocate(plan.nnz() ? plan.nnz() * 4 : 4);
  st.val_addr = m.allocate(plan.nnz() ? plan.nnz() * 8 : 8);
  st.x_addr = m.allocate(plan.cols * 8);
  st.y_addr = m.allocate(plan.rows * 8);
  st.y_host.assign(plan.rows, 0.0);

  // Pool tasks balanced by nonzero count, not segment count — the
  // reordered layout fronts the heaviest rows, and count-based chunking
  // would turn that into a straggler thread.
  const std::size_t task_nnz = std::max<std::size_t>(
      32, plan.nnz() / (static_cast<std::size_t>(p.threads) * 8));
  const auto ranges = pack_tasks(plan.segments, task_nnz);
  std::vector<xeon::TaskFn> tasks;
  tasks.reserve(ranges.size());
  for (const auto& [lo, hi] : ranges) {
    tasks.push_back([&st, lo = lo, hi = hi](CpuContext& ctx) {
      return xeon_segments(ctx, &st, lo, hi);
    });
  }
  const Time elapsed = run_task_pool(m, p.threads, std::move(tasks),
                                     cfg.for_chunk_overhead_cycles);

  SparseOptResult r;
  r.llc_hit_rate = m.llc().stats.hit_rate();
  finish_sparse(plan, std::move(st.y_host), elapsed, &r);
  return r;
}

tensor::CooTensor reorder_mode0_by_slice(const tensor::CooTensor& t) {
  std::vector<std::uint64_t> count(t.dim0, 0);
  for (const auto i : t.i) ++count[i];
  std::vector<std::uint32_t> order(t.dim0);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&count](std::uint32_t p, std::uint32_t q) {
                     if (count[p] != count[q]) return count[p] > count[q];
                     return p < q;
                   });
  const auto inv = invert_permutation(order);

  struct Entry {
    std::uint32_t i, j, k;
    double v;
  };
  std::vector<Entry> entries(t.nnz());
  for (std::size_t e = 0; e < t.nnz(); ++e) {
    entries[e] = {inv[t.i[e]], t.j[e], t.k[e], t.val[e]};
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.i != b.i) return a.i < b.i;
              if (a.j != b.j) return a.j < b.j;
              return a.k < b.k;
            });

  tensor::CooTensor out;
  out.dim0 = t.dim0;
  out.dim1 = t.dim1;
  out.dim2 = t.dim2;
  out.i.reserve(t.nnz());
  out.j.reserve(t.nnz());
  out.k.reserve(t.nnz());
  out.val.reserve(t.nnz());
  for (const auto& e : entries) {
    out.i.push_back(e.i);
    out.j.push_back(e.j);
    out.k.push_back(e.k);
    out.val.push_back(e.v);
  }
  return out;
}

}  // namespace emusim::kernels
