// CSR SpMV on the Emu machine model with the paper's three data layouts
// (§III-E, Fig 3, Fig 9a):
//
//   local — everything (row pointers, column indices, values, x, y) in one
//           nodelet's memory: parallelism is capped by that nodelet's 64
//           threadlet slots and single core/channel.
//   one_d — matrix arrays word-striped across nodelets (mw_malloc1dlong),
//           x replicated, y on nodelet 0: walking a row migrates on nearly
//           every nonzero.
//   two_d — the paper's custom two-stage allocation: each nodelet holds the
//           values/indices of the rows assigned to it (balanced by nnz), x
//           replicated, y written back to nodelet 0 with memory-side
//           writes: no migrations inside a row.
//
// Work is created the way the Emu port does it: a remote-spawned leader per
// participating nodelet, which cilk_spawns tasks of `grain` nonzeros
// (paper: 16 on Emu vs 16384 on the CPU).
#pragma once

#include "common/units.hpp"
#include "emu/config.hpp"
#include "kernels/spmv_common.hpp"

namespace emusim::kernels {

enum class SpmvLayout { local, one_d, two_d };
const char* to_string(SpmvLayout l);

struct SpmvEmuParams {
  std::size_t laplacian_n = 100;  ///< grid side; matrix is n^2 x n^2
  SpmvLayout layout = SpmvLayout::two_d;
  std::size_t grain = 16;  ///< nonzeros per spawned task
};

struct SpmvEmuResult {
  double mb_per_sec = 0.0;  ///< 16 B per nonzero over sim time
  Time elapsed = 0;
  std::uint64_t migrations = 0;
  std::uint64_t spawns = 0;
  bool verified = false;
};

/// Issue cost per nonzero (64-bit index arithmetic, unfused multiply-add,
/// loop control on a simple in-order core) and per row (pointer loads,
/// accumulator setup, y write).
inline constexpr std::uint64_t kSpmvEmuCyclesPerNnz = 45;
inline constexpr std::uint64_t kSpmvEmuCyclesPerRow = 40;

SpmvEmuResult run_spmv_emu(const emu::SystemConfig& cfg,
                           const SpmvEmuParams& p);

}  // namespace emusim::kernels
