#include "kernels/chase_scale.hpp"

#include "common/check.hpp"
#include "emu/machine.hpp"
#include "emu/runtime/alloc.hpp"
#include "kernels/chase_common.hpp"
#include "kernels/chase_emu.hpp"
#include "sim/random.hpp"

namespace emusim::kernels {

using emu::Context;
using emu::Striped1D;
using sim::Op;

namespace {

// Full-period LCG over a power-of-two block-index space (Hull–Dobell:
// multiplier ≡ 1 mod 4, increment odd), so a chain visits nblocks distinct
// blocks before repeating — a procedural stand-in for the Fig 11 list's
// block shuffle that needs no O(nblocks) permutation table.
constexpr std::uint64_t kLcgMul = 0xd1342543de82ef95ULL;
constexpr std::uint64_t kLcgAdd = 0x9e3779b97f4a7c15ULL;

std::uint64_t hash_index(std::uint64_t idx, std::uint64_t seed) {
  std::uint64_t s = idx ^ (seed * 0x9e3779b97f4a7c15ULL);
  return sim::splitmix64(s);
}

struct ScaleState {
  ChaseScaleParams p;
  std::uint64_t nblocks;
  std::uint64_t mask;       ///< nblocks - 1
  std::uint64_t blocks_per_thread;
  Striped1D<ChaseElement> elems;  ///< address math only; never materialized
  Striped1D<std::int64_t> sums;   ///< one checksum slot per chain

  ScaleState(emu::Machine& m, const ChaseScaleParams& params)
      : p(params),
        nblocks(params.n / params.block),
        mask(nblocks - 1),
        blocks_per_thread(params.elems_per_thread / params.block),
        elems(m, params.n, params.block),
        sums(m, static_cast<std::size_t>(params.threads)) {}

  std::uint64_t start_block(int t) const {
    std::uint64_t s = p.seed ^ (static_cast<std::uint64_t>(t) + 1);
    return sim::splitmix64(s) & mask;
  }

  std::uint64_t next_block(std::uint64_t b) const {
    return p.shuffled ? (b * kLcgMul + kLcgAdd) & mask : (b + 1) & mask;
  }
};

/// The checksum a chain accumulates over its walk, replayed on the host for
/// verification.  Pure index arithmetic — no element storage on either side.
std::int64_t expected_sum(const ScaleState& st, int t) {
  std::uint64_t sum = 0;
  std::uint64_t b = st.start_block(t);
  for (std::uint64_t k = 0; k < st.blocks_per_thread; ++k) {
    const std::uint64_t first = b * st.p.block;
    for (std::size_t j = 0; j < st.p.block; ++j) {
      sum += hash_index(first + j, st.p.seed);
    }
    b = st.next_block(b);
  }
  return static_cast<std::int64_t>(sum);
}

Op<> scale_worker(Context& ctx, ScaleState* st, int t) {
  std::uint64_t sum = 0;
  std::uint64_t b = st->start_block(t);
  for (std::uint64_t k = 0; k < st->blocks_per_thread; ++k) {
    const std::uint64_t first = b * st->p.block;
    const int home = st->elems.home(first);
    if (home != ctx.nodelet()) co_await ctx.migrate_to(home);
    for (std::size_t j = 0; j < st->p.block; ++j) {
      const std::uint64_t idx = first + j;
      co_await ctx.issue(kChaseCyclesPerElement);
      // One 16 B element: payload + next pointer from the local channel.
      co_await ctx.read_local(st->elems.byte_addr(idx), 16);
      sum += hash_index(idx, st->p.seed);
    }
    b = st->next_block(b);
  }
  // Post the chain's checksum to its striped result slot.  Distinct slots
  // per chain, so the host store is race-free; materializing the slot's
  // chunk is CAS-safe from any shard.
  const auto slot = static_cast<std::size_t>(t);
  ctx.write_remote(st->sums.home(slot), st->sums.byte_addr(slot), 8);
  st->sums[slot] = static_cast<std::int64_t>(sum);
}

int start_home(const ScaleState* st, int t) {
  return st->elems.home(st->start_block(t) * st->p.block);
}

/// Recursive remote-spawn tree over the chain range, each node born on the
/// home nodelet of its first chain's start block (same ramp-avoidance
/// structure as the Fig 11 chase).
Op<> scale_spawn_tree(Context& ctx, ScaleState* st, int tlo, int thi) {
  while (thi - tlo > 1) {
    const int mid = tlo + (thi - tlo) / 2;
    co_await ctx.spawn_at(start_home(st, mid), [st, mid, thi](Context& c) {
      return scale_spawn_tree(c, st, mid, thi);
    });
    thi = mid;
  }
  co_await scale_worker(ctx, st, tlo);
  co_await ctx.sync();
}

Op<> scale_root(Context& ctx, ScaleState* st) {
  co_await ctx.spawn_at(start_home(st, 0), [st](Context& c) {
    return scale_spawn_tree(c, st, 0, st->p.threads);
  });
  co_await ctx.sync();
}

}  // namespace

ChaseScaleResult run_chase_scale(const emu::SystemConfig& cfg,
                                 const ChaseScaleParams& p) {
  EMUSIM_CHECK(p.block >= 1 && (p.block & (p.block - 1)) == 0);
  EMUSIM_CHECK(p.n >= p.block && (p.n & (p.n - 1)) == 0);
  EMUSIM_CHECK(p.threads >= 1);
  EMUSIM_CHECK(p.elems_per_thread >= p.block &&
               p.elems_per_thread % p.block == 0);

  emu::Machine m(cfg);
  ScaleState st(m, p);

  const Time elapsed =
      m.run_root([&](Context& ctx) { return scale_root(ctx, &st); });

  ChaseScaleResult r;
  r.elapsed = elapsed;
  const double total_elems =
      static_cast<double>(p.threads) * static_cast<double>(p.elems_per_thread);
  r.mb_per_sec = mb_per_sec(16.0 * total_elems, elapsed);
  r.migrations = m.stats.migrations;
  r.migrations_per_element = static_cast<double>(m.stats.migrations) /
                             total_elems;
  r.host_peak_bytes = m.host_footprint().peak();
  r.verified = true;
  for (int t = 0; t < p.threads; ++t) {
    if (st.sums[static_cast<std::size_t>(t)] != expected_sum(st, t)) {
      r.verified = false;
      break;
    }
  }
  return r;
}

}  // namespace emusim::kernels
