#include "kernels/spmv_emu.hpp"

#include <cmath>
#include <memory>

#include "emu/machine.hpp"
#include "emu/runtime/alloc.hpp"

namespace emusim::kernels {

using emu::Chunked;
using emu::Context;
using emu::LocalArray;
using emu::Replicated;
using emu::Striped1D;
using sim::Op;

const char* to_string(SpmvLayout l) {
  switch (l) {
    case SpmvLayout::local: return "local";
    case SpmvLayout::one_d: return "1d";
    case SpmvLayout::two_d: return "2d";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------------
// local layout: everything on nodelet 0
// ---------------------------------------------------------------------------

struct LocalState {
  const Csr* a;
  LocalArray<std::int64_t> rowptr, col;
  LocalArray<double> val, x, y;
  LocalState(emu::Machine& m, const Csr& csr)
      : a(&csr),
        rowptr(m, csr.rows + 1, 0),
        col(m, csr.nnz(), 0),
        val(m, csr.nnz(), 0),
        x(m, csr.cols, 0),
        y(m, csr.rows, 0) {}
};

Op<> local_task(Context& ctx, LocalState* st, std::size_t rlo,
                std::size_t rhi) {
  for (std::size_t r = rlo; r < rhi; ++r) {
    co_await ctx.issue(kSpmvEmuCyclesPerRow);
    // Adjacent row pointers: one 16-byte access.
    co_await ctx.read_local(st->rowptr.byte_addr(r), 16);
    double acc = 0.0;
    const auto k0 = static_cast<std::size_t>(st->a->row_ptr[r]);
    const auto k1 = static_cast<std::size_t>(st->a->row_ptr[r + 1]);
    for (std::size_t k = k0; k < k1; ++k) {
      co_await ctx.issue(kSpmvEmuCyclesPerNnz);
      co_await ctx.read_local(st->col.byte_addr(k), 8);
      co_await ctx.read_local(st->val.byte_addr(k), 8);
      const auto c = static_cast<std::size_t>(st->col[k]);
      co_await ctx.read_local(st->x.byte_addr(c), 8);
      acc += st->val[k] * st->x[c];
    }
    st->y[r] = acc;
    ctx.write_local(st->y.byte_addr(r), 8);
  }
}

// ---------------------------------------------------------------------------
// 1D layout: matrix arrays word-striped, x replicated, y on nodelet 0
// ---------------------------------------------------------------------------

struct OneDState {
  const Csr* a;
  Striped1D<std::int64_t> rowptr, col;
  Striped1D<double> val;
  Replicated<double> x;
  LocalArray<double> y;
  OneDState(emu::Machine& m, const Csr& csr)
      : a(&csr),
        rowptr(m, csr.rows + 1),
        col(m, csr.nnz()),
        val(m, csr.nnz()),
        x(m, csr.cols),
        y(m, csr.rows, 0) {}
};

Op<> one_d_task(Context& ctx, OneDState* st, std::size_t rlo,
                std::size_t rhi) {
  for (std::size_t r = rlo; r < rhi; ++r) {
    co_await ctx.issue(kSpmvEmuCyclesPerRow);
    // Row pointers are word-striped: r and r+1 live on different nodelets.
    for (std::size_t rp = r; rp <= r + 1; ++rp) {
      const int h = st->rowptr.home(rp);
      if (h != ctx.nodelet()) co_await ctx.migrate_to(h);
      co_await ctx.read_local(st->rowptr.byte_addr(rp), 8);
    }
    double acc = 0.0;
    const auto k0 = static_cast<std::size_t>(st->a->row_ptr[r]);
    const auto k1 = static_cast<std::size_t>(st->a->row_ptr[r + 1]);
    for (std::size_t k = k0; k < k1; ++k) {
      // col[k] and val[k] share index k, hence a home nodelet: one
      // migration per nonzero as the walk strides the nodelets.
      const int h = st->col.home(k);
      if (h != ctx.nodelet()) co_await ctx.migrate_to(h);
      co_await ctx.issue(kSpmvEmuCyclesPerNnz);
      co_await ctx.read_local(st->col.byte_addr(k), 8);
      co_await ctx.read_local(st->val.byte_addr(k), 8);
      co_await st->x.read(ctx, static_cast<std::size_t>(st->col[k]));
      acc += st->val[k] * st->x[static_cast<std::size_t>(st->col[k])];
    }
    st->y[r] = acc;
    ctx.write_remote(st->y.home(), st->y.byte_addr(r), 8);
  }
}

// ---------------------------------------------------------------------------
// 2D layout: per-nodelet row chunks, x replicated, y on nodelet 0
// ---------------------------------------------------------------------------

struct TwoDState {
  const Csr* a;
  std::vector<std::size_t> row_bounds;  ///< per-nodelet row ranges
  Chunked<std::int64_t> rowptr, col;    ///< per-nodelet local copies
  Chunked<double> val;
  Replicated<double> x;
  LocalArray<double> y;

  static std::vector<std::size_t> rowptr_counts(
      const std::vector<std::size_t>& bounds) {
    std::vector<std::size_t> c;
    for (std::size_t d = 0; d + 1 < bounds.size(); ++d) {
      c.push_back(bounds[d + 1] - bounds[d] + 1);
    }
    return c;
  }
  static std::vector<std::size_t> nnz_counts(
      const Csr& csr, const std::vector<std::size_t>& bounds) {
    std::vector<std::size_t> c;
    for (std::size_t d = 0; d + 1 < bounds.size(); ++d) {
      c.push_back(static_cast<std::size_t>(csr.row_ptr[bounds[d + 1]] -
                                           csr.row_ptr[bounds[d]]));
    }
    return c;
  }

  TwoDState(emu::Machine& m, const Csr& csr)
      : a(&csr),
        row_bounds(partition_rows_by_nnz(csr, m.num_nodelets())),
        rowptr(m, rowptr_counts(row_bounds)),
        col(m, nnz_counts(csr, row_bounds)),
        val(m, nnz_counts(csr, row_bounds)),
        x(m, csr.cols),
        y(m, csr.rows, 0) {}
};

Op<> two_d_task(Context& ctx, TwoDState* st, int d, std::size_t rlo,
                std::size_t rhi) {
  const std::size_t row0 = st->row_bounds[static_cast<std::size_t>(d)];
  const auto kbase = static_cast<std::size_t>(st->a->row_ptr[row0]);
  for (std::size_t r = rlo; r < rhi; ++r) {
    co_await ctx.issue(kSpmvEmuCyclesPerRow);
    co_await ctx.read_local(st->rowptr.byte_addr(d, r - row0), 16);
    double acc = 0.0;
    const auto k0 = static_cast<std::size_t>(st->a->row_ptr[r]);
    const auto k1 = static_cast<std::size_t>(st->a->row_ptr[r + 1]);
    for (std::size_t k = k0; k < k1; ++k) {
      co_await ctx.issue(kSpmvEmuCyclesPerNnz);
      co_await ctx.read_local(st->col.byte_addr(d, k - kbase), 8);
      co_await ctx.read_local(st->val.byte_addr(d, k - kbase), 8);
      const auto c = static_cast<std::size_t>(st->col.at(d, k - kbase));
      co_await st->x.read(ctx, c);
      acc += st->val.at(d, k - kbase) * st->x[c];
    }
    st->y[r] = acc;
    ctx.write_remote(st->y.home(), st->y.byte_addr(r), 8);
  }
}

// ---------------------------------------------------------------------------
// leaders: remote-spawned per nodelet; cilk_spawn grain-sized tasks locally
// ---------------------------------------------------------------------------

template <class SpawnTask>
Op<> leader(Context& ctx, const Csr* a, std::size_t rlo, std::size_t rhi,
            std::size_t grain, SpawnTask spawn_task) {
  const auto bounds = grain_tasks(*a, rlo, rhi, grain);
  for (std::size_t t = 0; t + 1 < bounds.size(); ++t) {
    co_await spawn_task(ctx, bounds[t], bounds[t + 1]);
  }
  co_await ctx.sync();
}

}  // namespace

SpmvEmuResult run_spmv_emu(const emu::SystemConfig& cfg,
                           const SpmvEmuParams& p) {
  const Csr a = make_laplacian_2d(p.laplacian_n);
  const auto x_host = make_x(a.cols);
  const auto y_ref = spmv_reference(a, x_host);

  emu::Machine m(cfg);
  const int nlets = m.num_nodelets();
  Time elapsed = 0;
  std::vector<double> y_out;

  switch (p.layout) {
    case SpmvLayout::local: {
      LocalState st(m, a);
      for (std::size_t i = 0; i <= a.rows; ++i) st.rowptr[i] = a.row_ptr[i];
      for (std::size_t k = 0; k < a.nnz(); ++k) {
        st.col[k] = a.col_idx[k];
        st.val[k] = a.vals[k];
      }
      for (std::size_t i = 0; i < a.cols; ++i) st.x[i] = x_host[i];
      elapsed = m.run_root([&](Context& ctx) -> Op<> {
        co_await ctx.spawn_at(0, [&](Context& c) {
          return leader(c, &a, 0, a.rows, p.grain,
                        [&](Context& lc, std::size_t lo, std::size_t hi) {
                          return lc.spawn([&st, lo, hi](Context& tc) {
                            return local_task(tc, &st, lo, hi);
                          });
                        });
        });
        co_await ctx.sync();
      });
      y_out.assign(a.rows, 0.0);
      for (std::size_t r = 0; r < a.rows; ++r) y_out[r] = st.y[r];
      break;
    }
    case SpmvLayout::one_d: {
      OneDState st(m, a);
      for (std::size_t i = 0; i <= a.rows; ++i) st.rowptr[i] = a.row_ptr[i];
      for (std::size_t k = 0; k < a.nnz(); ++k) {
        st.col[k] = a.col_idx[k];
        st.val[k] = a.vals[k];
      }
      for (std::size_t i = 0; i < a.cols; ++i) st.x[i] = x_host[i];
      const auto bounds = partition_rows_by_nnz(a, nlets);
      elapsed = m.run_root([&](Context& ctx) -> Op<> {
        for (int d = 0; d < nlets; ++d) {
          const std::size_t lo = bounds[static_cast<std::size_t>(d)];
          const std::size_t hi = bounds[static_cast<std::size_t>(d) + 1];
          if (lo >= hi) continue;
          co_await ctx.spawn_at(d, [&, lo, hi](Context& c) {
            return leader(c, &a, lo, hi, p.grain,
                          [&](Context& lc, std::size_t tlo, std::size_t thi) {
                            return lc.spawn([&st, tlo, thi](Context& tc) {
                              return one_d_task(tc, &st, tlo, thi);
                            });
                          });
          });
        }
        co_await ctx.sync();
      });
      y_out.assign(a.rows, 0.0);
      for (std::size_t r = 0; r < a.rows; ++r) y_out[r] = st.y[r];
      break;
    }
    case SpmvLayout::two_d: {
      TwoDState st(m, a);
      for (int d = 0; d < nlets; ++d) {
        const std::size_t lo = st.row_bounds[static_cast<std::size_t>(d)];
        const std::size_t hi = st.row_bounds[static_cast<std::size_t>(d) + 1];
        const auto kbase = static_cast<std::size_t>(a.row_ptr[lo]);
        for (std::size_t r = lo; r <= hi; ++r) {
          st.rowptr.at(d, r - lo) =
              a.row_ptr[r] - static_cast<std::int64_t>(kbase);
        }
        for (auto k = static_cast<std::size_t>(a.row_ptr[lo]);
             k < static_cast<std::size_t>(a.row_ptr[hi]); ++k) {
          st.col.at(d, k - kbase) = a.col_idx[k];
          st.val.at(d, k - kbase) = a.vals[k];
        }
      }
      for (std::size_t i = 0; i < a.cols; ++i) st.x[i] = x_host[i];
      elapsed = m.run_root([&](Context& ctx) -> Op<> {
        for (int d = 0; d < nlets; ++d) {
          const std::size_t lo = st.row_bounds[static_cast<std::size_t>(d)];
          const std::size_t hi = st.row_bounds[static_cast<std::size_t>(d) + 1];
          if (lo >= hi) continue;
          co_await ctx.spawn_at(d, [&, d, lo, hi](Context& c) {
            return leader(c, &a, lo, hi, p.grain,
                          [&, d](Context& lc, std::size_t tlo, std::size_t thi) {
                            return lc.spawn([&st, d, tlo, thi](Context& tc) {
                              return two_d_task(tc, &st, d, tlo, thi);
                            });
                          });
          });
        }
        co_await ctx.sync();
      });
      y_out.assign(a.rows, 0.0);
      for (std::size_t r = 0; r < a.rows; ++r) y_out[r] = st.y[r];
      break;
    }
  }

  SpmvEmuResult r;
  r.elapsed = elapsed;
  r.mb_per_sec = mb_per_sec(spmv_bytes(a), elapsed);
  r.migrations = m.stats.migrations;
  r.spawns = m.stats.spawns;
  r.verified = true;
  for (std::size_t i = 0; i < a.rows; ++i) {
    if (std::abs(y_out[i] - y_ref[i]) > 1e-9) {
      r.verified = false;
      break;
    }
  }
  return r;
}

}  // namespace emusim::kernels
