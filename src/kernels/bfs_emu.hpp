// Level-synchronous BFS on the Emu machine model — the streaming-graph
// motivating application (paper §I) built on the paper's own layout
// lessons: adjacency lists live with their vertex (2D-style chunking),
// distances are word-striped, frontiers are per-nodelet local queues, and
// every edge relaxation migrates to the neighbour's home nodelet to test
// and claim it (reads migrate; there is no remote read).
#pragma once

#include "common/units.hpp"
#include "emu/config.hpp"
#include "graph/graph.hpp"

namespace emusim::kernels {

struct BfsEmuParams {
  const graph::Graph* g = nullptr;
  std::size_t source = 0;
  /// Frontier vertices per spawned task on each nodelet.
  std::size_t grain = 8;
};

struct BfsEmuResult {
  double mteps = 0.0;  ///< millions of directed edges relaxed per second
  Time elapsed = 0;
  std::uint64_t migrations = 0;
  int levels = 0;
  bool verified = false;  ///< distances match the serial reference
};

/// Issue cost per relaxed edge and per frontier vertex.
inline constexpr std::uint64_t kBfsCyclesPerEdge = 14;
inline constexpr std::uint64_t kBfsCyclesPerVertex = 30;

BfsEmuResult run_bfs_emu(const emu::SystemConfig& cfg, const BfsEmuParams& p);

}  // namespace emusim::kernels
