#include "kernels/gups.hpp"

#include <vector>

#include "emu/machine.hpp"
#include "emu/runtime/alloc.hpp"
#include "sim/random.hpp"
#include "xeon/machine.hpp"

namespace emusim::kernels {

using sim::Op;

namespace {

/// The GUPS update stream: XOR each visited word with the hashed index.
/// Both platform kernels and the verifier derive the same stream from the
/// seed, so the final table contents are checkable.
struct UpdateStream {
  std::uint64_t state;
  std::size_t mask;
  explicit UpdateStream(std::uint64_t seed, std::size_t table_words)
      : state(seed), mask(table_words - 1) {}
  std::pair<std::size_t, std::uint64_t> next() {
    const std::uint64_t v = sim::splitmix64(state);
    return {static_cast<std::size_t>(v) & mask, v};
  }
};

Op<> gups_emu_worker(emu::Context& ctx, emu::Striped1D<std::int64_t>* table,
                     std::uint64_t seed, std::size_t updates) {
  UpdateStream stream(seed, table->size());
  for (std::size_t u = 0; u < updates; ++u) {
    const auto [idx, val] = stream.next();
    co_await ctx.issue(kGupsEmuCyclesPerUpdate);
    // Memory-side remote atomic: no migration, no round trip.  The host XOR
    // rides along and executes on the word's owning shard at delivery.
    std::int64_t* slot = &(*table)[idx];
    const auto v = static_cast<std::int64_t>(val);
    ctx.atomic_remote(table->home(idx), table->byte_addr(idx),
                      [slot, v] { *slot ^= v; });
  }
}

Op<> gups_xeon_task(xeon::CpuContext& ctx, std::uint64_t base,
                    std::vector<std::int64_t>* host, std::uint64_t seed,
                    std::size_t updates) {
  UpdateStream stream(seed, host->size());
  for (std::size_t u = 0; u < updates; ++u) {
    const auto [idx, val] = stream.next();
    co_await ctx.load(base + idx * 8);
    co_await ctx.compute(kGupsXeonCyclesPerUpdate);
    (*host)[idx] ^= static_cast<std::int64_t>(val);
    ctx.store(base + idx * 8);
  }
}

bool verify_table(const std::vector<std::int64_t>& got, std::size_t words,
                  std::uint64_t seed, int threads, std::size_t per_thread) {
  std::vector<std::int64_t> want(words, 0);
  for (int t = 0; t < threads; ++t) {
    UpdateStream stream(seed + static_cast<std::uint64_t>(t), words);
    for (std::size_t u = 0; u < per_thread; ++u) {
      const auto [idx, val] = stream.next();
      want[idx] ^= static_cast<std::int64_t>(val);
    }
  }
  return want == got;
}

}  // namespace

GupsResult run_gups_emu(const emu::SystemConfig& cfg, const GupsParams& p) {
  EMUSIM_CHECK((p.table_words & (p.table_words - 1)) == 0);
  emu::Machine m(cfg);
  emu::Striped1D<std::int64_t> table(m, p.table_words);
  for (std::size_t i = 0; i < p.table_words; ++i) table[i] = 0;

  const std::size_t per_thread = p.updates / static_cast<std::size_t>(p.threads);
  const Time elapsed = m.run_root([&](emu::Context& ctx) -> Op<> {
    const int nlets = ctx.machine().num_nodelets();
    for (int t = 0; t < p.threads; ++t) {
      co_await ctx.spawn_at(t % nlets, [&, t](emu::Context& c) {
        return gups_emu_worker(c, &table, p.seed + static_cast<std::uint64_t>(t),
                               per_thread);
      });
    }
    co_await ctx.sync();
  });

  GupsResult r;
  r.elapsed = elapsed;
  const double total = static_cast<double>(per_thread) * p.threads;
  r.giga_updates_per_sec = total / to_seconds(elapsed) / 1e9;
  r.mb_per_sec = mb_per_sec(8.0 * total, elapsed);
  r.migrations = m.stats.migrations;
  std::vector<std::int64_t> got(p.table_words);
  for (std::size_t i = 0; i < p.table_words; ++i) got[i] = table[i];
  r.verified = verify_table(got, p.table_words, p.seed, p.threads, per_thread);
  return r;
}

GupsResult run_gups_xeon(const xeon::SystemConfig& cfg, const GupsParams& p) {
  EMUSIM_CHECK((p.table_words & (p.table_words - 1)) == 0);
  xeon::Machine m(cfg);
  std::vector<std::int64_t> host(p.table_words, 0);
  const std::uint64_t base = m.allocate(p.table_words * 8);

  const std::size_t per_thread = p.updates / static_cast<std::size_t>(p.threads);
  std::vector<xeon::TaskFn> tasks;
  for (int t = 0; t < p.threads; ++t) {
    tasks.push_back([&, t](xeon::CpuContext& c) {
      return gups_xeon_task(c, base, &host, p.seed + static_cast<std::uint64_t>(t),
                            per_thread);
    });
  }
  const Time elapsed = run_task_pool(m, p.threads, std::move(tasks), 0);

  GupsResult r;
  r.elapsed = elapsed;
  const double total = static_cast<double>(per_thread) * p.threads;
  r.giga_updates_per_sec = total / to_seconds(elapsed) / 1e9;
  r.mb_per_sec = mb_per_sec(8.0 * total, elapsed);
  r.verified = verify_table(host, p.table_words, p.seed, p.threads, per_thread);
  return r;
}

}  // namespace emusim::kernels
