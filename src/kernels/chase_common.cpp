#include "kernels/chase_common.hpp"

#include <algorithm>

namespace emusim::kernels {

const char* to_string(ShuffleMode m) {
  switch (m) {
    case ShuffleMode::none: return "none";
    case ShuffleMode::intra_block_shuffle: return "intra_block_shuffle";
    case ShuffleMode::block_shuffle: return "block_shuffle";
    case ShuffleMode::full_block_shuffle: return "full_block_shuffle";
  }
  return "?";
}

ChaseList build_chase_list(std::size_t n, std::size_t block, int threads,
                           ShuffleMode mode, std::uint64_t seed) {
  EMUSIM_CHECK(block >= 1 && n % block == 0);
  const std::size_t num_blocks = n / block;
  EMUSIM_CHECK(threads >= 1 &&
               num_blocks >= static_cast<std::size_t>(threads));

  ChaseList list;
  list.n = n;
  list.block = block;
  list.threads = threads;
  list.next.assign(n, kChaseEnd);
  list.payload.resize(n);
  list.head.resize(static_cast<std::size_t>(threads));
  list.expected_sum.assign(static_cast<std::size_t>(threads), 0);

  sim::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    list.payload[i] = static_cast<std::int64_t>(rng.next() & 0xFFFFFF);
  }

  const bool shuffle_intra = mode == ShuffleMode::intra_block_shuffle ||
                             mode == ShuffleMode::full_block_shuffle;
  const bool shuffle_blocks = mode == ShuffleMode::block_shuffle ||
                              mode == ShuffleMode::full_block_shuffle;

  std::vector<std::uint64_t> block_order;
  std::vector<std::uint64_t> elem_order(block);

  for (int t = 0; t < threads; ++t) {
    // Thread t owns the contiguous block range [first, last); ranges differ
    // by at most one block when threads does not divide the block count.
    const std::size_t first_block =
        num_blocks * static_cast<std::size_t>(t) /
        static_cast<std::size_t>(threads);
    const std::size_t last_block =
        num_blocks * static_cast<std::size_t>(t + 1) /
        static_cast<std::size_t>(threads);
    const std::size_t blocks_per_thread = last_block - first_block;
    block_order.resize(blocks_per_thread);
    for (std::size_t k = 0; k < blocks_per_thread; ++k) {
      block_order[k] = first_block + k;
    }
    if (shuffle_blocks) {
      rng.shuffle(block_order);
    } else if (mode == ShuffleMode::intra_block_shuffle &&
               blocks_per_thread > 1) {
      // Ordered block traversal, but start each chain at a random phase
      // (cyclic order).  Without this every thread visits the striped
      // nodelets in lockstep and the whole fleet convoys on one memory
      // channel at a time — an artifact of the simulator's perfectly
      // synchronized start that hardware jitter destroys.
      const std::size_t rot =
          static_cast<std::size_t>(rng.below(blocks_per_thread));
      std::rotate(block_order.begin(),
                  block_order.begin() + static_cast<std::ptrdiff_t>(rot),
                  block_order.end());
    }

    std::uint64_t prev = kChaseEnd;
    for (std::size_t k = 0; k < blocks_per_thread; ++k) {
      const std::uint64_t b = block_order[k];
      for (std::size_t e = 0; e < block; ++e) {
        elem_order[e] = b * block + e;
      }
      if (shuffle_intra) rng.shuffle(elem_order);
      for (std::size_t e = 0; e < block; ++e) {
        const std::uint64_t idx = elem_order[e];
        if (prev == kChaseEnd) {
          list.head[static_cast<std::size_t>(t)] = idx;
        } else {
          list.next[prev] = idx;
        }
        prev = idx;
        list.expected_sum[static_cast<std::size_t>(t)] += list.payload[idx];
      }
    }
    // prev is the tail; its next stays kChaseEnd.
  }
  return list;
}

}  // namespace emusim::kernels
