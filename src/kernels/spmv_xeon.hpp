// CSR SpMV on the Haswell Xeon model (paper Fig 9b): an MKL-like statically
// scheduled kernel, a cilk_for version (fine chunks through the task pool),
// and a cilk_spawn version with an explicit grain size (the paper found
// 16384 elements per spawn best on the CPU vs 16 on the Emu).
#pragma once

#include "common/units.hpp"
#include "kernels/spmv_common.hpp"
#include "xeon/config.hpp"

namespace emusim::kernels {

enum class SpmvXeonImpl { mkl, cilk_for, cilk_spawn };
const char* to_string(SpmvXeonImpl i);

struct SpmvXeonParams {
  std::size_t laplacian_n = 100;
  SpmvXeonImpl impl = SpmvXeonImpl::mkl;
  int threads = 56;
  std::size_t grain = 16384;  ///< nonzeros per task (cilk_spawn only)
};

struct SpmvXeonResult {
  double mb_per_sec = 0.0;  ///< 16 B per nonzero over sim time
  Time elapsed = 0;
  bool verified = false;
};

/// Core cycles per nonzero (index load, value load, FMA, loop) and per row.
inline constexpr std::uint64_t kSpmvXeonCyclesPerNnz = 3;
inline constexpr std::uint64_t kSpmvXeonCyclesPerRow = 6;

SpmvXeonResult run_spmv_xeon(const xeon::SystemConfig& cfg,
                             const SpmvXeonParams& p);

}  // namespace emusim::kernels
