// Triangle counting on both machine models — the second irregular kernel of
// the streaming-graph suite.  Both backends run the same forward
// merge-intersection algorithm (count common neighbours w > v of each edge
// u < v, so each triangle is found exactly once at its lowest edge):
//
//   emu::  — adjacency chunked at each vertex's home nodelet.  A task per
//            vertex streams its forward list locally, then migrates to each
//            forward neighbour's home and merges the two forward lists
//            there.  Counts accumulate through a SumReducer (local partials,
//            one migratory combine).
//   xeon:: — CSR in flat simulated memory; per-vertex tasks stream the two
//            forward lists through the cache hierarchy (16 ids per line),
//            paying a random rowptr probe per neighbour.
//
// Counts must equal graph::triangle_count_reference exactly — and the tests
// additionally pit both against a brute-force O(V^3) oracle.
#pragma once

#include "common/units.hpp"
#include "emu/config.hpp"
#include "graph/graph.hpp"
#include "xeon/config.hpp"

namespace emusim::kernels {

struct TcEmuParams {
  const graph::Graph* g = nullptr;
  std::size_t grain = 8;  ///< vertices per spawned task on each nodelet
};

struct TcXeonParams {
  const graph::Graph* g = nullptr;
  int threads = 16;
  std::size_t chunk = 64;  ///< vertices per pool task
};

struct TcResult {
  std::uint64_t triangles = 0;
  Time elapsed = 0;
  double mteps = 0.0;  ///< millions of directed edges processed per second
  std::uint64_t migrations = 0;  ///< emu only
  double llc_hit_rate = 0.0;     ///< xeon only
  bool verified = false;  ///< count equals triangle_count_reference
};

/// Issue/compute cost per merge comparison and per visited vertex.
inline constexpr std::uint64_t kTcEmuCyclesPerCompare = 2;
inline constexpr std::uint64_t kTcEmuCyclesPerVertex = 30;
inline constexpr std::uint64_t kTcXeonCyclesPerCompare = 1;
inline constexpr std::uint64_t kTcXeonCyclesPerVertex = 20;

TcResult run_tc_emu(const emu::SystemConfig& cfg, const TcEmuParams& p);
TcResult run_tc_xeon(const xeon::SystemConfig& cfg, const TcXeonParams& p);

}  // namespace emusim::kernels
