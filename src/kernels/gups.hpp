// GUPS / RandomAccess (extension beyond the paper's figures; §III-E notes
// pointer chase is "quite similar to GUPS, however GUPS lacks
// data-dependent loads, and pointer chase does not modify the list").
//
// On the Emu, random updates map onto memory-side remote atomics: the
// thread never migrates and never waits, so GUPS shows the architecture's
// upper bound for fine-grained random traffic.  On the Xeon, every update
// is a read-modify-write of a 64-byte line of which 8 bytes are used.
#pragma once

#include "common/units.hpp"
#include "emu/config.hpp"
#include "xeon/config.hpp"

namespace emusim::kernels {

struct GupsParams {
  std::size_t table_words = std::size_t{1} << 22;  ///< 32 MiB: DRAM-resident
  std::size_t updates = std::size_t{1} << 18;
  int threads = 512;
  std::uint64_t seed = 11;
};

struct GupsResult {
  double giga_updates_per_sec = 0.0;
  double mb_per_sec = 0.0;  ///< 8 useful bytes per update
  Time elapsed = 0;
  std::uint64_t migrations = 0;  ///< emu only; must stay ~0
  bool verified = false;
};

/// Issue cost per update on the Emu (index hash, remote-atomic issue).
inline constexpr std::uint64_t kGupsEmuCyclesPerUpdate = 12;
/// Core cycles per update on the Xeon.
inline constexpr std::uint64_t kGupsXeonCyclesPerUpdate = 4;

GupsResult run_gups_emu(const emu::SystemConfig& cfg, const GupsParams& p);
GupsResult run_gups_xeon(const xeon::SystemConfig& cfg, const GupsParams& p);

}  // namespace emusim::kernels
