// MTTKRP (the CP-ALS inner kernel, ParTI motivation) on both platforms.
//
// Emu layouts, following the SpMV lessons (paper §V-A):
//   one_d — nonzeros word-striped across nodelets, output M on nodelet 0
//           updated through memory-side remote atomics: every nonzero
//           migrates to its coordinates' home.
//   two_d — nonzeros partitioned by mode-0 slices onto nodelets, factor
//           matrices B and C replicated, each M row local to its slice's
//           nodelet: no migrations at all.
//
// The Xeon version runs i-range tasks through the task pool, with
// OoO-overlap load batching as in the SpMV kernel.
#pragma once

#include "common/units.hpp"
#include "emu/config.hpp"
#include "tensor/coo.hpp"
#include "xeon/config.hpp"

namespace emusim::kernels {

enum class MttkrpLayout { one_d, two_d };
const char* to_string(MttkrpLayout l);

struct MttkrpEmuParams {
  const tensor::CooTensor* x = nullptr;
  int rank = 8;
  MttkrpLayout layout = MttkrpLayout::two_d;
  std::size_t grain = 16;  ///< nonzeros per spawned task
};

struct MttkrpResult {
  double mflops = 0.0;
  double mb_per_sec = 0.0;  ///< COO stream (32 B per nonzero) over sim time
  Time elapsed = 0;
  std::uint64_t migrations = 0;
  bool verified = false;
};

/// Issue cost per nonzero, excluding the per-rank-column work.
inline constexpr std::uint64_t kMttkrpEmuCyclesPerNnz = 20;
/// Issue cost per rank column (multiply-add chain on the Gossamer core).
inline constexpr std::uint64_t kMttkrpEmuCyclesPerRankCol = 6;
inline constexpr std::uint64_t kMttkrpXeonCyclesPerNnz = 4;
inline constexpr std::uint64_t kMttkrpXeonCyclesPerRankCol = 1;

MttkrpResult run_mttkrp_emu(const emu::SystemConfig& cfg,
                            const MttkrpEmuParams& p);

struct MttkrpXeonParams {
  const tensor::CooTensor* x = nullptr;
  int rank = 8;
  int threads = 56;
  std::size_t grain = 4096;
};

MttkrpResult run_mttkrp_xeon(const xeon::SystemConfig& cfg,
                             const MttkrpXeonParams& p);

}  // namespace emusim::kernels
