#include "kernels/chase_xeon.hpp"

#include <vector>

#include "xeon/machine.hpp"

namespace emusim::kernels {

using sim::Op;
using xeon::CpuContext;

namespace {

struct XChase {
  std::uint64_t base = 0;  ///< simulated address of element 0 (16 B each)
  const ChaseList* list = nullptr;
  std::vector<std::int64_t> sums;
};

Op<> chase_worker(CpuContext& ctx, XChase* st, int t) {
  std::int64_t sum = 0;
  std::uint64_t idx = st->list->head[static_cast<std::size_t>(t)];
  while (idx != kChaseEnd) {
    co_await ctx.load(st->base + idx * sizeof(ChaseElement));
    co_await ctx.compute(kChaseXeonCyclesPerElement);
    sum += st->list->payload[idx];
    idx = st->list->next[idx];
  }
  st->sums[static_cast<std::size_t>(t)] = sum;
}

}  // namespace

ChaseXeonResult run_chase_xeon(const xeon::SystemConfig& cfg,
                               const ChaseXeonParams& p) {
  const ChaseList list =
      build_chase_list(p.n, p.block, p.threads, p.mode, p.seed);

  xeon::Machine m(cfg);
  XChase st;
  st.base = m.allocate(p.n * sizeof(ChaseElement));
  st.list = &list;
  st.sums.assign(static_cast<std::size_t>(p.threads), 0);

  std::vector<xeon::TaskFn> tasks;
  for (int t = 0; t < p.threads; ++t) {
    tasks.push_back(
        [&st, t](CpuContext& ctx) { return chase_worker(ctx, &st, t); });
  }
  const Time elapsed = run_task_pool(m, p.threads, std::move(tasks), 0);

  ChaseXeonResult r;
  r.elapsed = elapsed;
  r.mb_per_sec = mb_per_sec(16.0 * static_cast<double>(p.n), elapsed);
  r.llc_hit_rate = m.llc().stats.hit_rate();
  for (int c = 0; c < cfg.channels; ++c) {
    r.row_hits += m.channel(c).stats().row_hits;
    r.row_misses += m.channel(c).stats().row_misses;
  }
  r.verified = true;
  for (int t = 0; t < p.threads; ++t) {
    if (st.sums[static_cast<std::size_t>(t)] !=
        list.expected_sum[static_cast<std::size_t>(t)]) {
      r.verified = false;
      break;
    }
  }
  return r;
}

}  // namespace emusim::kernels
