#include "kernels/bfs_xeon.hpp"

#include <vector>

#include "xeon/machine.hpp"

namespace emusim::kernels {

using graph::kBfsUnreached;
using sim::Op;
using xeon::CpuContext;

namespace {

struct XBfs {
  const graph::Graph* g;
  std::uint64_t rowptr_addr, adj_addr, dist_addr;
  std::vector<std::uint32_t> dist;
  std::vector<std::uint32_t> frontier, next_frontier;
};

Op<> relax_chunk(CpuContext& ctx, XBfs* st, std::size_t lo, std::size_t hi,
                 std::uint32_t next_level) {
  const graph::Graph& g = *st->g;
  for (std::size_t f = lo; f < hi; ++f) {
    const std::uint32_t u = st->frontier[f];
    co_await ctx.load(st->rowptr_addr + static_cast<std::uint64_t>(u) * 8);
    co_await ctx.compute(kBfsXeonCyclesPerVertex);
    const auto k0 = static_cast<std::size_t>(g.row_ptr[u]);
    const auto k1 = static_cast<std::size_t>(g.row_ptr[u + 1]);
    for (std::size_t k = k0; k < k1; ++k) {
      // Adjacency stream: 16 ids per 64 B line; one awaited load per line.
      if (k == k0 || k % 16 == 0) {
        co_await ctx.load(st->adj_addr + k * 4);
      }
      const std::uint32_t v = g.adj[k];
      co_await ctx.compute(kBfsXeonCyclesPerEdge);
      if (st->dist[v] != kBfsUnreached) continue;
      // The distance probe: a random 4-byte read (the 16B-in-64B waste).
      co_await ctx.load(st->dist_addr + static_cast<std::uint64_t>(v) * 4);
      if (st->dist[v] == kBfsUnreached) {  // DES-atomic test-and-claim
        st->dist[v] = next_level;
        ctx.store(st->dist_addr + static_cast<std::uint64_t>(v) * 4);
        st->next_frontier.push_back(v);
      }
    }
  }
}

}  // namespace

BfsXeonResult run_bfs_xeon(const xeon::SystemConfig& cfg,
                           const BfsXeonParams& p) {
  EMUSIM_CHECK(p.g != nullptr && p.source < p.g->num_vertices);
  const graph::Graph& g = *p.g;
  xeon::Machine m(cfg);
  XBfs st;
  st.g = &g;
  st.rowptr_addr = m.allocate((g.num_vertices + 1) * 8);
  st.adj_addr = m.allocate(g.adj.size() * 4);
  st.dist_addr = m.allocate(g.num_vertices * 4);
  st.dist.assign(g.num_vertices, kBfsUnreached);
  st.dist[p.source] = 0;
  st.frontier.push_back(static_cast<std::uint32_t>(p.source));

  int levels = 0;
  Time elapsed = 0;
  for (std::uint32_t level = 1; !st.frontier.empty(); ++level) {
    ++levels;
    std::vector<xeon::TaskFn> tasks;
    for (std::size_t lo = 0; lo < st.frontier.size(); lo += p.chunk) {
      const std::size_t hi = std::min(lo + p.chunk, st.frontier.size());
      tasks.push_back([&st, lo, hi, level](CpuContext& ctx) {
        return relax_chunk(ctx, &st, lo, hi, level);
      });
    }
    elapsed += run_task_pool(m, p.threads, std::move(tasks),
                             cfg.for_chunk_overhead_cycles);
    st.frontier.swap(st.next_frontier);
    st.next_frontier.clear();
  }

  BfsXeonResult r;
  r.elapsed = elapsed;
  r.levels = levels;
  r.llc_hit_rate = m.llc().stats.hit_rate();
  r.mteps = static_cast<double>(g.num_directed_edges()) /
            to_seconds(elapsed) / 1e6;
  r.verified = st.dist == graph::bfs_reference(g, p.source);
  return r;
}

}  // namespace emusim::kernels
