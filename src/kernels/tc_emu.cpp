#include "kernels/tc.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "emu/machine.hpp"
#include "emu/runtime/alloc.hpp"
#include "emu/runtime/parallel.hpp"

namespace emusim::kernels {

using emu::Chunked;
using emu::Context;
using emu::Striped1D;
using emu::SumReducer;
using sim::Op;

namespace {

struct TcState {
  const graph::Graph* g;
  int nlets;

  Striped1D<std::int64_t> rowptr;  ///< timed per-vertex row word (home view)
  Chunked<std::uint32_t> adj;      ///< adjacency stored at each vertex's home

  std::vector<std::uint64_t> adj_local_off;  ///< per-vertex offset in chunk
  std::vector<std::size_t> fwd_begin;  ///< first index in adj with id > v

  static std::vector<std::size_t> adj_counts(const graph::Graph& g,
                                             int nlets) {
    std::vector<std::size_t> counts(static_cast<std::size_t>(nlets), 0);
    for (std::size_t v = 0; v < g.num_vertices; ++v) {
      counts[v % static_cast<std::size_t>(nlets)] += g.degree(v);
    }
    return counts;
  }

  TcState(emu::Machine& m, const graph::Graph& graph)
      : g(&graph),
        nlets(m.num_nodelets()),
        rowptr(m, graph.num_vertices),
        adj(m, adj_counts(graph, m.num_nodelets())),
        adj_local_off(graph.num_vertices, 0),
        fwd_begin(graph.num_vertices, 0) {
    std::vector<std::uint64_t> fill(static_cast<std::size_t>(nlets), 0);
    for (std::size_t v = 0; v < graph.num_vertices; ++v) {
      const auto d =
          static_cast<std::size_t>(v % static_cast<std::size_t>(nlets));
      adj_local_off[v] = fill[d];
      for (auto k = graph.row_ptr[v]; k < graph.row_ptr[v + 1]; ++k) {
        adj.at(static_cast<int>(d), fill[d]++) =
            graph.adj[static_cast<std::size_t>(k)];
      }
      // Sorted adjacency: the forward (id > v) part is a suffix.
      const auto* lo = graph.adj.data() + graph.row_ptr[v];
      const auto* hi = graph.adj.data() + graph.row_ptr[v + 1];
      fwd_begin[v] = static_cast<std::size_t>(
          std::upper_bound(lo, hi, static_cast<std::uint32_t>(v)) -
          graph.adj.data());
    }
  }

  int home(std::uint32_t v) const { return rowptr.home(v); }

  /// Stream vertex v's forward ids from its home chunk: one channel access
  /// per 8 bytes (two 4-byte ids).
  Op<> read_forward(Context& ctx, std::uint32_t v) {
    const graph::Graph& gr = *g;
    const auto fb = fwd_begin[v];
    const auto fe = static_cast<std::size_t>(gr.row_ptr[v + 1]);
    const std::size_t bytes = (fe - fb) * 4;
    const std::uint64_t base =
        adj.byte_addr(home(v),
                      adj_local_off[v] +
                          (fb - static_cast<std::size_t>(gr.row_ptr[v])));
    for (std::size_t off = 0; off < bytes; off += 8) {
      co_await ctx.read_local(
          base + off,
          static_cast<std::uint32_t>(std::min<std::size_t>(8, bytes - off)));
    }
  }
};

/// Count triangles whose lowest vertex is u: stream u's forward list at
/// home, then migrate to each forward neighbour v's home and merge u's
/// forward-past-v ids against v's forward list there.
Op<> count_vertex(Context& ctx, TcState* st, std::uint32_t u,
                  SumReducer<std::uint64_t>* red) {
  const graph::Graph& g = *st->g;
  const int hu = st->home(u);
  if (ctx.nodelet() != hu) co_await ctx.migrate_to(hu);
  co_await ctx.issue(kTcEmuCyclesPerVertex);
  co_await ctx.read_local(st->rowptr.byte_addr(u), 8);

  const auto fb = st->fwd_begin[u];
  const auto fe = static_cast<std::size_t>(g.row_ptr[u + 1]);
  if (fb >= fe) co_return;
  co_await st->read_forward(ctx, u);

  std::uint64_t found = 0;
  for (std::size_t k = fb; k < fe; ++k) {
    const std::uint32_t v = g.adj[k];
    const int hv = st->home(v);
    if (ctx.nodelet() != hv) co_await ctx.migrate_to(hv);
    co_await ctx.read_local(st->rowptr.byte_addr(v), 8);
    co_await st->read_forward(ctx, v);

    std::size_t i = k + 1;
    auto j = st->fwd_begin[v];
    const auto je = static_cast<std::size_t>(g.row_ptr[v + 1]);
    std::uint64_t steps = 0;
    while (i < fe && j < je) {
      ++steps;
      if (g.adj[i] < g.adj[j]) {
        ++i;
      } else if (g.adj[j] < g.adj[i]) {
        ++j;
      } else {
        ++found;
        ++i;
        ++j;
      }
    }
    co_await ctx.issue(kTcEmuCyclesPerCompare * (steps + 1));
  }
  if (found) red->add(ctx, found);
}

}  // namespace

TcResult run_tc_emu(const emu::SystemConfig& cfg, const TcEmuParams& p) {
  EMUSIM_CHECK(p.g != nullptr && p.g->num_vertices >= 1);
  emu::Machine m(cfg);
  TcState st(m, *p.g);
  SumReducer<std::uint64_t> red(m);

  std::uint64_t total = 0;
  const Time elapsed = m.run_root([&st, &red, &total,
                                   grain = p.grain](Context& ctx) -> Op<> {
    co_await emu::for_each_home(
        ctx, &st.rowptr, grain, [&st, &red](Context& t, std::size_t u) {
          return count_vertex(t, &st, static_cast<std::uint32_t>(u), &red);
        });
    total = co_await red.reduce(ctx);
  });

  TcResult r;
  r.triangles = total;
  r.elapsed = elapsed;
  r.migrations = m.stats.migrations;
  r.mteps = static_cast<double>(p.g->num_directed_edges()) /
            to_seconds(elapsed) / 1e6;
  r.verified = total == graph::triangle_count_reference(*p.g) &&
               total == red.value_unsynchronized();
  return r;
}

}  // namespace emusim::kernels
