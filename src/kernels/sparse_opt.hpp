// Sparse-optimization ablation: does the standard cache-machine toolkit —
// cache blocking and degree-based reordering — carry over to the migratory
// machine?  Rolinger's follow-on studies on the Chick found it largely does
// not: optimizations that reorganize the access stream for cache reuse are
// flat to mildly harmful under migration, because there is no cache to
// block for and every nonzero pays its migration regardless of order.
//
// All three layouts compile to one representation, an SpmvPlan: an ordered
// list of segments, each owning a contiguous slice of plan-ordered
// (col, val) nonzeros that accumulate into one output row.
//
//   csr       — one segment per non-empty row, original order.
//   blocked   — column-blocked: for each block of `block_cols` columns, the
//               rows' nonzeros falling in that block.  On a cache machine
//               this keeps the x gather inside a block resident in LLC; on
//               the Emu it only adds per-segment overhead.
//   reordered — symmetric degree-descending permutation (P A P^T, P x):
//               hub rows AND hub columns cluster at low indices, so the
//               hot x entries share few cache lines.  The y row a segment
//               targets stays in original numbering.
//
// The matrix is integer-valued (vals and x are small integers), so every
// partial sum is exact in doubles and y is bit-identical across layouts
// and backends no matter the accumulation order — the property the tests
// assert with memcmp-level equality.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "emu/config.hpp"
#include "graph/stream_graph.hpp"
#include "tensor/coo.hpp"
#include "xeon/config.hpp"

namespace emusim::kernels {

enum class SparseLayout { csr, blocked, reordered };
const char* to_string(SparseLayout l);

/// CSR matrix with integer-valued entries (stored as doubles so kernels
/// and references share arithmetic).
struct SparseMatrix {
  std::size_t rows = 0, cols = 0;
  std::vector<std::int64_t> row_ptr;
  std::vector<std::uint32_t> col_idx;
  std::vector<double> vals;

  std::size_t nnz() const { return col_idx.size(); }
};

/// Symmetric sparse matrix over a generated graph pattern (uniform or
/// RMAT-skewed), values small integers in [1, 8], deterministic in `seed`.
SparseMatrix make_sparse_matrix(std::size_t n, double avg_degree,
                                graph::EdgeDist dist, std::uint64_t seed);

/// Integer-valued x in [1, 8], deterministic in `seed`.
std::vector<double> make_int_x(std::size_t n, std::uint64_t seed);

/// Dense reference y = A x.
std::vector<double> sparse_reference(const SparseMatrix& a,
                                     const std::vector<double>& x);

// --- permutation utilities (property-tested in tests/test_sparse_opt) ----

/// Row permutation ordering rows by nonzero count descending (ties by row
/// id ascending): perm[new_pos] = old_row.
std::vector<std::uint32_t> degree_order(const SparseMatrix& a);

std::vector<std::uint32_t> invert_permutation(
    const std::vector<std::uint32_t>& perm);

/// Symmetric permutation A' = P A P^T with perm[new] = old; each row's
/// entries re-sorted by new column id.
SparseMatrix permute_symmetric(const SparseMatrix& a,
                               const std::vector<std::uint32_t>& perm);

// --- the plan -------------------------------------------------------------

struct SpmvSegment {
  std::uint32_t out_row = 0;       ///< y row, PLAN numbering
  std::int64_t begin = 0, end = 0; ///< nonzero slice in plan order
};

struct SpmvPlan {
  SparseLayout layout = SparseLayout::csr;
  std::size_t rows = 0, cols = 0;
  std::vector<SpmvSegment> segments;  ///< execution order
  std::vector<std::uint32_t> col;     ///< plan-ordered column ids
  std::vector<double> val;            ///< plan-ordered values
  std::vector<double> x;              ///< plan-space x (permuted if needed)
  /// Plan row -> original row.  Kernels accumulate y entirely in plan
  /// space (sequential stores for the reordered layout, as a reordering
  /// framework that keeps downstream computation permuted would); the
  /// result un-permutes through this map on the host.
  std::vector<std::uint32_t> row_map;

  std::size_t nnz() const { return col.size(); }
};

/// Compile (a, x) into the given layout.  `block_cols` only matters for
/// blocked.  Executing any plan yields the same y (exactly, by the
/// integer-value construction).
SpmvPlan build_plan(const SparseMatrix& a, const std::vector<double>& x,
                    SparseLayout layout, std::size_t block_cols);

// --- timed execution ------------------------------------------------------

struct SparseOptParams {
  const SpmvPlan* plan = nullptr;
  int threads = 16;        ///< xeon pool width
  std::size_t grain = 16;  ///< emu: segments per spawned task
};

struct SparseOptResult {
  double mflops = 0.0;
  double mb_per_sec = 0.0;  ///< nominal 12 B per nonzero (col+val+x touch)
  Time elapsed = 0;
  std::uint64_t migrations = 0;  ///< emu only
  double llc_hit_rate = 0.0;     ///< xeon only
  bool verified = false;         ///< y equals sparse_reference bit-for-bit
  std::vector<double> y;         ///< original row order
};

/// Issue/compute costs (same scale as the SpMV kernels: migration-bound on
/// emu, memory-bound on xeon).
inline constexpr std::uint64_t kSparseEmuCyclesPerNnz = 45;
inline constexpr std::uint64_t kSparseEmuCyclesPerSeg = 10;
inline constexpr std::uint64_t kSparseXeonCyclesPerNnz = 3;
inline constexpr std::uint64_t kSparseXeonCyclesPerSeg = 6;

SparseOptResult run_sparse_emu(const emu::SystemConfig& cfg,
                               const SparseOptParams& p);
SparseOptResult run_sparse_xeon(const xeon::SystemConfig& cfg,
                                const SparseOptParams& p);

// --- MTTKRP reordering (report-only arm of the ablation) -----------------

/// Renumber mode-0 slices by nonzero count descending and re-sort the
/// tensor — the degree-reordering analogue for MTTKRP.  The result runs
/// through the existing run_mttkrp_{emu,xeon} unchanged.
tensor::CooTensor reorder_mode0_by_slice(const tensor::CooTensor& t);

}  // namespace emusim::kernels
