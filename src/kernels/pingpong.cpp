#include "kernels/pingpong.hpp"

#include "emu/machine.hpp"

namespace emusim::kernels {

using emu::Context;
using sim::Op;

namespace {

Op<> pingpong_worker(Context& ctx, int a, int b, int round_trips) {
  for (int k = 0; k < round_trips; ++k) {
    co_await ctx.migrate_to(b);
    co_await ctx.migrate_to(a);
  }
}

Op<> pingpong_root(Context& ctx, const PingPongParams* p) {
  for (int t = 0; t < p->threads; ++t) {
    co_await ctx.spawn_at(p->nodelet_a, [p](Context& c) {
      return pingpong_worker(c, p->nodelet_a, p->nodelet_b, p->round_trips);
    });
  }
  co_await ctx.sync();
}

}  // namespace

PingPongResult run_pingpong(const emu::SystemConfig& cfg,
                            const PingPongParams& p) {
  emu::Machine m(cfg);
  const Time elapsed =
      m.run_root([&](Context& ctx) { return pingpong_root(ctx, &p); });

  PingPongResult r;
  r.elapsed = elapsed;
  r.migrations = m.stats.migrations;
  r.migrations_per_sec =
      static_cast<double>(r.migrations) / to_seconds(elapsed);
  r.mean_latency_us =
      m.stats.migration_latency_ns.summary().mean() / 1000.0;
  return r;
}

}  // namespace emusim::kernels
