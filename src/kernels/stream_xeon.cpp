#include "kernels/stream_xeon.hpp"

#include <vector>

#include "sim/random.hpp"
#include "xeon/machine.hpp"

namespace emusim::kernels {

using sim::Op;
using xeon::CpuContext;

namespace {

struct XArrays {
  std::uint64_t a, b, c;  ///< simulated base addresses
  std::vector<std::int64_t> va, vb, vc;
};

/// One statically partitioned chunk: walk [lo, hi) line by line, awaiting
/// the two source lines and posting a streaming store of the result line.
Op<> stream_chunk(CpuContext& ctx, XArrays* A, std::size_t lo,
                  std::size_t hi) {
  const std::size_t per_line =
      static_cast<std::size_t>(ctx.machine().cfg().line_bytes) / 8;
  for (std::size_t i = lo; i < hi; i += per_line) {
    const std::size_t chunk = std::min(per_line, hi - i);
    co_await ctx.load(A->a + i * 8);
    co_await ctx.load(A->b + i * 8);
    co_await ctx.compute(kStreamXeonCyclesPerElement * chunk);
    for (std::size_t k = i; k < i + chunk; ++k) {
      A->vc[k] = A->va[k] + A->vb[k];
    }
    ctx.store_nt(A->c + i * 8);
  }
}

}  // namespace

StreamXeonResult run_stream_xeon(const xeon::SystemConfig& cfg,
                                 const StreamXeonParams& p) {
  xeon::Machine m(cfg);
  XArrays A;
  A.a = m.allocate(p.n * 8);
  A.b = m.allocate(p.n * 8);
  A.c = m.allocate(p.n * 8);
  A.va.resize(p.n);
  A.vb.resize(p.n);
  A.vc.assign(p.n, 0);
  sim::Rng rng(7);
  for (std::size_t i = 0; i < p.n; ++i) {
    A.va[i] = static_cast<std::int64_t>(rng.next() & 0xFFFF);
    A.vb[i] = static_cast<std::int64_t>(rng.next() & 0xFFFF);
  }

  // MKL-style static partition: one contiguous chunk per thread, aligned to
  // cache lines so streams do not interleave within a line.
  std::vector<xeon::TaskFn> tasks;
  const std::size_t per_line = static_cast<std::size_t>(cfg.line_bytes) / 8;
  for (int t = 0; t < p.threads; ++t) {
    std::size_t lo = p.n * static_cast<std::size_t>(t) /
                     static_cast<std::size_t>(p.threads);
    std::size_t hi = p.n * static_cast<std::size_t>(t + 1) /
                     static_cast<std::size_t>(p.threads);
    lo = lo / per_line * per_line;
    hi = (t + 1 == p.threads) ? p.n : hi / per_line * per_line;
    if (lo >= hi) continue;
    tasks.push_back(
        [&A, lo, hi](CpuContext& ctx) { return stream_chunk(ctx, &A, lo, hi); });
  }
  const Time elapsed = run_task_pool(m, p.threads, std::move(tasks), 0);

  StreamXeonResult r;
  r.elapsed = elapsed;
  r.mb_per_sec = mb_per_sec(24.0 * static_cast<double>(p.n), elapsed);
  r.verified = true;
  for (std::size_t i = 0; i < p.n; ++i) {
    if (A.vc[i] != A.va[i] + A.vb[i]) {
      r.verified = false;
      break;
    }
  }
  return r;
}

}  // namespace emusim::kernels
