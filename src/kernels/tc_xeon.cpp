#include "kernels/tc.hpp"

#include <algorithm>
#include <vector>

#include "common/check.hpp"
#include "xeon/machine.hpp"

namespace emusim::kernels {

using sim::Op;
using xeon::CpuContext;

namespace {

struct XTc {
  const graph::Graph* g;
  std::uint64_t rowptr_addr = 0, adj_addr = 0, total_addr = 0;
  std::vector<std::size_t> fwd_begin;
  std::uint64_t total = 0;
};

/// Stream vertex v's forward ids through the cache: 16 ids per 64 B line,
/// one awaited load per line touched.
Op<> x_read_forward(CpuContext& ctx, XTc* st, std::uint32_t v) {
  const graph::Graph& g = *st->g;
  const auto fb = st->fwd_begin[v];
  const auto fe = static_cast<std::size_t>(g.row_ptr[v + 1]);
  for (std::size_t k = fb; k < fe; ++k) {
    if (k == fb || k % 16 == 0) {
      co_await ctx.load(st->adj_addr + k * 4);
    }
  }
}

Op<> count_chunk(CpuContext& ctx, XTc* st, std::size_t lo, std::size_t hi) {
  const graph::Graph& g = *st->g;
  std::uint64_t found = 0;
  for (std::size_t u = lo; u < hi; ++u) {
    co_await ctx.load(st->rowptr_addr + u * 8);
    co_await ctx.compute(kTcXeonCyclesPerVertex);
    const auto fb = st->fwd_begin[u];
    const auto fe = static_cast<std::size_t>(g.row_ptr[u + 1]);
    if (fb >= fe) continue;
    co_await x_read_forward(ctx, st, static_cast<std::uint32_t>(u));
    for (std::size_t k = fb; k < fe; ++k) {
      const std::uint32_t v = g.adj[k];
      // Random rowptr probe for the neighbour, then its forward stream.
      co_await ctx.load(st->rowptr_addr +
                        static_cast<std::uint64_t>(v) * 8);
      co_await x_read_forward(ctx, st, v);

      std::size_t i = k + 1;
      auto j = st->fwd_begin[v];
      const auto je = static_cast<std::size_t>(g.row_ptr[v + 1]);
      std::uint64_t steps = 0;
      while (i < fe && j < je) {
        ++steps;
        if (g.adj[i] < g.adj[j]) {
          ++i;
        } else if (g.adj[j] < g.adj[i]) {
          ++j;
        } else {
          ++found;
          ++i;
          ++j;
        }
      }
      co_await ctx.compute(kTcXeonCyclesPerCompare * (steps + 1));
    }
  }
  // Fold into the shared total: a posted read-modify-write, DES-atomic
  // between awaits (the same claim the BFS kernel relies on).
  st->total += found;
  ctx.store(st->total_addr);
}

}  // namespace

TcResult run_tc_xeon(const xeon::SystemConfig& cfg, const TcXeonParams& p) {
  EMUSIM_CHECK(p.g != nullptr && p.g->num_vertices >= 1);
  EMUSIM_CHECK(p.threads >= 1 && p.chunk >= 1);
  const graph::Graph& g = *p.g;
  xeon::Machine m(cfg);
  XTc st;
  st.g = &g;
  st.rowptr_addr = m.allocate((g.num_vertices + 1) * 8);
  st.adj_addr = m.allocate(g.adj.size() ? g.adj.size() * 4 : 4);
  st.total_addr = m.allocate(8);
  st.fwd_begin.assign(g.num_vertices, 0);
  for (std::size_t v = 0; v < g.num_vertices; ++v) {
    const auto* lo = g.adj.data() + g.row_ptr[v];
    const auto* hi = g.adj.data() + g.row_ptr[v + 1];
    st.fwd_begin[v] = static_cast<std::size_t>(
        std::upper_bound(lo, hi, static_cast<std::uint32_t>(v)) -
        g.adj.data());
  }

  std::vector<xeon::TaskFn> tasks;
  for (std::size_t lo = 0; lo < g.num_vertices; lo += p.chunk) {
    const std::size_t hi = std::min(lo + p.chunk, g.num_vertices);
    tasks.push_back([&st, lo, hi](CpuContext& ctx) {
      return count_chunk(ctx, &st, lo, hi);
    });
  }
  const Time elapsed = run_task_pool(m, p.threads, std::move(tasks),
                                     cfg.for_chunk_overhead_cycles);

  TcResult r;
  r.triangles = st.total;
  r.elapsed = elapsed;
  r.llc_hit_rate = m.llc().stats.hit_rate();
  r.mteps = static_cast<double>(g.num_directed_edges()) /
            to_seconds(elapsed) / 1e6;
  r.verified = st.total == graph::triangle_count_reference(g);
  return r;
}

}  // namespace emusim::kernels
