#include "kernels/stream_emu.hpp"

#include <algorithm>

#include "emu/machine.hpp"
#include "emu/runtime/alloc.hpp"
#include "sim/random.hpp"

namespace emusim::kernels {

using emu::Context;
using emu::Striped1D;
using sim::Op;

const char* to_string(SpawnStrategy s) {
  switch (s) {
    case SpawnStrategy::serial_spawn: return "serial_spawn";
    case SpawnStrategy::recursive_spawn: return "recursive_spawn";
    case SpawnStrategy::serial_remote_spawn: return "serial_remote_spawn";
    case SpawnStrategy::recursive_remote_spawn:
      return "recursive_remote_spawn";
  }
  return "?";
}

namespace {

struct Arrays {
  Striped1D<std::int64_t> a, b, c;
  Arrays(emu::Machine& m, std::size_t n, int across)
      : a(m, n, 1, across), b(m, n, 1, across), c(m, n, 1, across) {}
};

/// One worker: c[i] = a[i] + b[i] for i in [lo, hi) stepping by `stride`.
/// All three arrays are striped identically, so element i of a, b, and c
/// share a home nodelet: at most one migration per element.
Op<> worker(Context& ctx, Arrays* A, std::size_t lo, std::size_t hi,
            std::size_t stride) {
  for (std::size_t i = lo; i < hi; i += stride) {
    const int home = A->a.home(i);
    if (home != ctx.nodelet()) co_await ctx.migrate_to(home);
    co_await ctx.issue(kStreamCyclesPerElement);
    co_await ctx.read_local(A->a.byte_addr(i), 8);
    co_await ctx.read_local(A->b.byte_addr(i), 8);
    A->c[i] = A->a[i] + A->b[i];
    ctx.write_local(A->c.byte_addr(i), 8);
  }
}

/// Contiguous global-range chunk of worker w out of `threads`.
struct Chunk {
  std::size_t lo, hi;
};
Chunk chunk_of(std::size_t n, int threads, int w) {
  const auto t = static_cast<std::size_t>(threads);
  const auto i = static_cast<std::size_t>(w);
  return {n * i / t, n * (i + 1) / t};
}

// --- local-spawn strategies (naive global decomposition) -----------------

Op<> serial_spawn_root(Context& ctx, Arrays* A, std::size_t n, int threads) {
  for (int w = 0; w < threads; ++w) {
    const Chunk c = chunk_of(n, threads, w);
    co_await ctx.spawn([A, c](Context& t) {
      return worker(t, A, c.lo, c.hi, 1);
    });
  }
  co_await ctx.sync();
}

/// Local recursive spawn tree over the worker index range.  Each node
/// spawns its left halves and becomes the worker for its final index
/// (spawn-left, iterate-right), bounding live internal frames.
Op<> recursive_spawn(Context& ctx, Arrays* A, std::size_t n, int threads,
                     int wlo, int whi) {
  while (whi - wlo > 1) {
    const int mid = wlo + (whi - wlo) / 2;
    co_await ctx.spawn([A, n, threads, mid, whi](Context& t) {
      return recursive_spawn(t, A, n, threads, mid, whi);
    });
    whi = mid;
  }
  const Chunk c = chunk_of(n, threads, wlo);
  co_await worker(ctx, A, c.lo, c.hi, 1);
  co_await ctx.sync();
}

// --- remote-spawn strategies (nodelet-local decomposition) ----------------

/// Spawn `per_nodelet` local workers covering this nodelet's elements.
/// Element-striped arrays put global index k*nlets + d on nodelet d.
Op<> nodelet_leader_serial(Context& ctx, Arrays* A, int nlets,
                           int per_nodelet) {
  const int d = ctx.nodelet();
  const std::size_t local = A->a.elems_on(d);
  for (int w = 0; w < per_nodelet; ++w) {
    const auto lo_k = local * static_cast<std::size_t>(w) /
                      static_cast<std::size_t>(per_nodelet);
    const auto hi_k = local * static_cast<std::size_t>(w + 1) /
                      static_cast<std::size_t>(per_nodelet);
    if (lo_k == hi_k) continue;
    const std::size_t lo = A->a.global_index(d, lo_k);
    const std::size_t hi = A->a.global_index(d, hi_k - 1) + 1;
    co_await ctx.spawn([A, lo, hi, nlets](Context& t) {
      return worker(t, A, lo, hi, static_cast<std::size_t>(nlets));
    });
  }
  co_await ctx.sync();
}

Op<> nodelet_leader_recursive(Context& ctx, Arrays* A, int nlets,
                              int per_nodelet, int wlo, int whi) {
  const int d = ctx.nodelet();
  const std::size_t local = A->a.elems_on(d);
  while (whi - wlo > 1) {
    const int mid = wlo + (whi - wlo) / 2;
    co_await ctx.spawn([A, nlets, per_nodelet, mid, whi](Context& t) {
      return nodelet_leader_recursive(t, A, nlets, per_nodelet, mid, whi);
    });
    whi = mid;
  }
  const auto lo_k = local * static_cast<std::size_t>(wlo) /
                    static_cast<std::size_t>(per_nodelet);
  const auto hi_k = local * static_cast<std::size_t>(wlo + 1) /
                    static_cast<std::size_t>(per_nodelet);
  if (lo_k < hi_k) {
    const std::size_t lo = A->a.global_index(d, lo_k);
    const std::size_t hi = A->a.global_index(d, hi_k - 1) + 1;
    co_await worker(ctx, A, lo, hi, static_cast<std::size_t>(nlets));
  }
  co_await ctx.sync();
}

Op<> serial_remote_root(Context& ctx, Arrays* A, int nlets, int per_nodelet) {
  for (int d = 0; d < nlets; ++d) {
    co_await ctx.spawn_at(d, [A, nlets, per_nodelet](Context& t) {
      return nodelet_leader_serial(t, A, nlets, per_nodelet);
    });
  }
  co_await ctx.sync();
}

/// Remote recursive tree across nodelets; each tree node becomes the leader
/// of its own nodelet.
Op<> recursive_remote(Context& ctx, Arrays* A, int nlets, int per_nodelet,
                      int dlo, int dhi) {
  while (dhi - dlo > 1) {
    const int mid = dlo + (dhi - dlo) / 2;
    co_await ctx.spawn_at(mid, [A, nlets, per_nodelet, mid, dhi](Context& t) {
      return recursive_remote(t, A, nlets, per_nodelet, mid, dhi);
    });
    dhi = mid;
  }
  co_await nodelet_leader_recursive(ctx, A, nlets, per_nodelet, 0,
                                    per_nodelet);
  co_await ctx.sync();
}

}  // namespace

StreamResult run_stream_add(const emu::SystemConfig& cfg,
                            const StreamParams& p) {
  emu::Machine m(cfg);
  const int nlets = p.across > 0 ? p.across : m.num_nodelets();
  EMUSIM_CHECK(nlets >= 1 && nlets <= m.num_nodelets());

  Arrays A(m, p.n, nlets);
  sim::Rng rng(42);
  for (std::size_t i = 0; i < p.n; ++i) {
    A.a[i] = static_cast<std::int64_t>(rng.next() & 0xFFFF);
    A.b[i] = static_cast<std::int64_t>(rng.next() & 0xFFFF);
    A.c[i] = 0;
  }

  const int threads = std::max(1, p.threads);
  const int per_nodelet = std::max(1, threads / nlets);

  Time elapsed = 0;
  switch (p.strategy) {
    case SpawnStrategy::serial_spawn:
      elapsed = m.run_root([&](Context& ctx) {
        return serial_spawn_root(ctx, &A, p.n, threads);
      });
      break;
    case SpawnStrategy::recursive_spawn:
      elapsed = m.run_root([&](Context& ctx) {
        return recursive_spawn(ctx, &A, p.n, threads, 0, threads);
      });
      break;
    case SpawnStrategy::serial_remote_spawn:
      elapsed = m.run_root([&](Context& ctx) {
        return serial_remote_root(ctx, &A, nlets, per_nodelet);
      });
      break;
    case SpawnStrategy::recursive_remote_spawn:
      elapsed = m.run_root([&](Context& ctx) {
        return recursive_remote(ctx, &A, nlets, per_nodelet, 0, nlets);
      });
      break;
  }

  StreamResult r;
  r.elapsed = elapsed;
  r.mb_per_sec = mb_per_sec(24.0 * static_cast<double>(p.n), elapsed);
  r.migrations = m.stats.migrations;
  r.spawns = m.stats.spawns;
  r.inline_spawns = m.stats.inline_spawns;
  r.verified = true;
  for (std::size_t i = 0; i < p.n; ++i) {
    if (A.c[i] != A.a[i] + A.b[i]) {
      r.verified = false;
      break;
    }
  }
  return r;
}

}  // namespace emusim::kernels
