#include <cmath>

#include "emu/machine.hpp"
#include "emu/runtime/alloc.hpp"
#include "emu/runtime/parallel.hpp"
#include "kernels/mttkrp.hpp"

namespace emusim::kernels {

using emu::Chunked;
using emu::Context;
using emu::Replicated;
using emu::Striped1D;
using sim::Op;

const char* to_string(MttkrpLayout l) {
  switch (l) {
    case MttkrpLayout::one_d: return "1d";
    case MttkrpLayout::two_d: return "2d";
  }
  return "?";
}

namespace {

/// Nonzero range boundaries per nodelet, splitting only between different
/// mode-0 indices so each M row has a single owner.
std::vector<std::size_t> partition_by_slice(const tensor::CooTensor& x,
                                            int parts) {
  std::vector<std::size_t> bounds(1, 0);
  for (int p = 1; p < parts; ++p) {
    std::size_t target = x.nnz() * static_cast<std::size_t>(p) /
                         static_cast<std::size_t>(parts);
    // advance to the next slice boundary
    while (target > 0 && target < x.nnz() &&
           x.i[target] == x.i[target - 1]) {
      ++target;
    }
    bounds.push_back(target);
  }
  bounds.push_back(x.nnz());
  return bounds;
}

// --- 2D layout --------------------------------------------------------------

struct TwoDState {
  const tensor::CooTensor* x;
  const tensor::Factor *b, *c;
  std::size_t rank;
  std::vector<std::size_t> bounds;
  Chunked<std::uint64_t> coords;  ///< 4 words per nonzero (i, j, k, val)
  Replicated<double> bmat, cmat;
  /// First mode-0 index per nodelet.  Declared before `m`: m_counts fills
  /// it while computing m's chunk sizes during member initialization.
  std::vector<std::uint64_t> m_row_base;
  Chunked<double> m;  ///< per-nodelet output rows
  std::vector<double> m_host;

  static std::vector<std::size_t> coord_counts(
      const std::vector<std::size_t>& bounds) {
    std::vector<std::size_t> c;
    for (std::size_t d = 0; d + 1 < bounds.size(); ++d) {
      c.push_back(4 * (bounds[d + 1] - bounds[d]));
    }
    return c;
  }
  std::vector<std::size_t> m_counts(const tensor::CooTensor& t,
                                    const std::vector<std::size_t>& bnds) {
    std::vector<std::size_t> counts;
    m_row_base.clear();
    for (std::size_t d = 0; d + 1 < bnds.size(); ++d) {
      const std::size_t lo = bnds[d], hi = bnds[d + 1];
      const std::uint64_t first = lo < hi ? t.i[lo] : 0;
      const std::uint64_t last = lo < hi ? t.i[hi - 1] + 1 : 0;
      m_row_base.push_back(first);
      counts.push_back(static_cast<std::size_t>(last - first) * rank);
    }
    return counts;
  }

  TwoDState(emu::Machine& mach, const tensor::CooTensor& t,
            const tensor::Factor& bf, const tensor::Factor& cf)
      : x(&t), b(&bf), c(&cf), rank(static_cast<std::size_t>(bf.rank)),
        bounds(partition_by_slice(t, mach.num_nodelets())),
        coords(mach, coord_counts(bounds)),
        bmat(mach, bf.data.size()),
        cmat(mach, cf.data.size()),
        m(mach, m_counts(t, bounds)),
        m_host(t.dim0 * rank, 0.0) {}
};

Op<> two_d_range(Context& ctx, TwoDState* st, int d, std::size_t lo,
                 std::size_t hi) {
  const std::size_t base = st->bounds[static_cast<std::size_t>(d)];
  const auto rank32 = static_cast<std::uint32_t>(st->rank * 8);
  for (std::size_t e = lo; e < hi; ++e) {
    co_await ctx.issue(kMttkrpEmuCyclesPerNnz +
                       kMttkrpEmuCyclesPerRankCol * st->rank);
    // coordinates + value: 32 B local
    co_await ctx.read_local(st->coords.byte_addr(d, 4 * (e - base)), 32);
    // factor rows: local replicas
    co_await ctx.read_local(
        st->bmat.byte_addr_on(d, static_cast<std::size_t>(st->x->j[e]) *
                                     st->rank),
        rank32);
    co_await ctx.read_local(
        st->cmat.byte_addr_on(d, static_cast<std::size_t>(st->x->k[e]) *
                                     st->rank),
        rank32);
    // output row: local read-modify-write
    const std::uint64_t m_off =
        (static_cast<std::uint64_t>(st->x->i[e]) -
         st->m_row_base[static_cast<std::size_t>(d)]) *
        st->rank;
    co_await ctx.read_local(st->m.byte_addr(d, m_off), rank32);
    ctx.write_local(st->m.byte_addr(d, m_off), rank32);

    const double v = st->x->val[e];
    const double* br = st->b->row(st->x->j[e]);
    const double* cr = st->c->row(st->x->k[e]);
    double* mr = st->m_host.data() +
                 static_cast<std::size_t>(st->x->i[e]) * st->rank;
    for (std::size_t r = 0; r < st->rank; ++r) mr[r] += v * br[r] * cr[r];
  }
}

// --- 1D layout --------------------------------------------------------------

struct OneDState {
  const tensor::CooTensor* x;
  const tensor::Factor *b, *c;
  std::size_t rank;
  Striped1D<std::uint64_t> vals;  ///< one word per nonzero value
  Striped1D<std::uint64_t> coords;  ///< 3 words per nnz striped wordwise
  Replicated<double> bmat, cmat;
  emu::LocalArray<double> m;  ///< all of M on nodelet 0
  std::vector<double> m_host;

  OneDState(emu::Machine& mach, const tensor::CooTensor& t,
            const tensor::Factor& bf, const tensor::Factor& cf)
      : x(&t), b(&bf), c(&cf), rank(static_cast<std::size_t>(bf.rank)),
        vals(mach, t.nnz()),
        coords(mach, 3 * t.nnz()),
        bmat(mach, bf.data.size()),
        cmat(mach, cf.data.size()),
        m(mach, t.dim0 * rank, 0),
        m_host(t.dim0 * rank, 0.0) {}
};

Op<> one_d_range(Context& ctx, OneDState* st, std::size_t lo, std::size_t hi) {
  const auto rank32 = static_cast<std::uint32_t>(st->rank * 8);
  for (std::size_t e = lo; e < hi; ++e) {
    // value home leads the walk; coordinates stripe separately, so the
    // thread hops for nearly every word it touches.
    const int hv = st->vals.home(e);
    if (ctx.nodelet() != hv) co_await ctx.migrate_to(hv);
    co_await ctx.issue(kMttkrpEmuCyclesPerNnz +
                       kMttkrpEmuCyclesPerRankCol * st->rank);
    co_await ctx.read_local(st->vals.byte_addr(e), 8);
    for (std::size_t w = 0; w < 3; ++w) {
      const std::size_t idx = 3 * e + w;
      const int hc = st->coords.home(idx);
      if (ctx.nodelet() != hc) co_await ctx.migrate_to(hc);
      co_await ctx.read_local(st->coords.byte_addr(idx), 8);
    }
    const int here = ctx.nodelet();
    co_await ctx.read_local(
        st->bmat.byte_addr_on(here, static_cast<std::size_t>(st->x->j[e]) *
                                        st->rank),
        rank32);
    co_await ctx.read_local(
        st->cmat.byte_addr_on(here, static_cast<std::size_t>(st->x->k[e]) *
                                        st->rank),
        rank32);
    // M lives on nodelet 0: accumulate with memory-side remote atomics,
    // one per rank column.  Each host add rides its atomic and executes on
    // M's owning shard at delivery, so the accumulation order (and the
    // floating-point result) is fixed by the event schedule, not by which
    // worker thread ran which shard.
    const double v = st->x->val[e];
    const double* br = st->b->row(st->x->j[e]);
    const double* cr = st->c->row(st->x->k[e]);
    const std::size_t row0 = static_cast<std::size_t>(st->x->i[e]) * st->rank;
    for (std::size_t r = 0; r < st->rank; ++r) {
      double* mr = st->m_host.data() + row0 + r;
      const double add = v * br[r] * cr[r];
      ctx.atomic_remote(st->m.home(), st->m.byte_addr(row0 + r),
                        [mr, add] { *mr += add; });
    }
  }
}

bool verify(const std::vector<double>& got, const tensor::CooTensor& x,
            const tensor::Factor& b, const tensor::Factor& c) {
  const auto want = tensor::mttkrp_reference(x, b, c);
  if (want.size() != got.size()) return false;
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (std::abs(want[i] - got[i]) > 1e-9) return false;
  }
  return true;
}

}  // namespace

MttkrpResult run_mttkrp_emu(const emu::SystemConfig& cfg,
                            const MttkrpEmuParams& p) {
  EMUSIM_CHECK(p.x != nullptr);
  const tensor::CooTensor& x = *p.x;
  const auto b = tensor::make_factor(x.dim1, p.rank, 21);
  const auto c = tensor::make_factor(x.dim2, p.rank, 22);

  emu::Machine m(cfg);
  MttkrpResult r;

  if (p.layout == MttkrpLayout::two_d) {
    TwoDState st(m, x, b, c);
    r.elapsed = m.run_root([&](Context& ctx) -> Op<> {
      co_await emu::on_each_nodelet(ctx, [&](Context& lead) -> Op<> {
        const int d = lead.nodelet();
        const std::size_t lo = st.bounds[static_cast<std::size_t>(d)];
        const std::size_t hi = st.bounds[static_cast<std::size_t>(d) + 1];
        co_await emu::parallel_apply(
            lead, lo, hi, p.grain,
            [&st, d](Context& t, std::size_t e) {
              return two_d_range(t, &st, d, e, e + 1);
            });
      });
    });
    r.verified = verify(st.m_host, x, b, c);
  } else {
    OneDState st(m, x, b, c);
    r.elapsed = m.run_root([&](Context& ctx) -> Op<> {
      co_await emu::on_each_nodelet(ctx, [&](Context& lead) -> Op<> {
        const int d = lead.nodelet();
        const int nlets = lead.machine().num_nodelets();
        const std::size_t lo = x.nnz() * static_cast<std::size_t>(d) /
                               static_cast<std::size_t>(nlets);
        const std::size_t hi = x.nnz() * static_cast<std::size_t>(d + 1) /
                               static_cast<std::size_t>(nlets);
        co_await emu::parallel_apply(
            lead, lo, hi, p.grain,
            [&st](Context& t, std::size_t e) {
              return one_d_range(t, &st, e, e + 1);
            });
      });
    });
    r.verified = verify(st.m_host, x, b, c);
  }

  r.migrations = m.stats.migrations;
  r.mflops = tensor::mttkrp_flops(x, p.rank) / to_seconds(r.elapsed) / 1e6;
  r.mb_per_sec = mb_per_sec(32.0 * static_cast<double>(x.nnz()), r.elapsed);
  return r;
}

}  // namespace emusim::kernels
