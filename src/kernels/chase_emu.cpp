#include "kernels/chase_emu.hpp"

#include "emu/machine.hpp"
#include "emu/runtime/alloc.hpp"

namespace emusim::kernels {

using emu::Context;
using emu::Striped1D;
using sim::Op;

namespace {

struct ChaseState {
  Striped1D<ChaseElement> elems;
  const ChaseList* list;
  std::vector<std::int64_t> sums;
  ChaseState(emu::Machine& m, const ChaseList& l)
      : elems(m, l.n, l.block), list(&l),
        sums(static_cast<std::size_t>(l.threads), 0) {}
};

Op<> chase_worker(Context& ctx, ChaseState* st, int t) {
  std::int64_t sum = 0;
  std::uint64_t idx = st->list->head[static_cast<std::size_t>(t)];
  while (idx != kChaseEnd) {
    const int home = st->elems.home(idx);
    if (home != ctx.nodelet()) co_await ctx.migrate_to(home);
    co_await ctx.issue(kChaseCyclesPerElement);
    // One 16 B element: payload + next pointer from the local channel.
    co_await ctx.read_local(st->elems.byte_addr(idx), 16);
    const ChaseElement& e = st->elems[idx];
    sum += e.payload;
    idx = e.next;
  }
  st->sums[static_cast<std::size_t>(t)] = sum;
}

int head_home(const ChaseState* st, int t) {
  return st->elems.home(st->list->head[static_cast<std::size_t>(t)]);
}

/// Recursive remote-spawn tree over the chain index range: each tree node
/// is born on the home nodelet of its first chain's head block and becomes
/// that chain's worker.  Serially spawning thousands of chains from one
/// thread would make the measurement ramp-bound — the paper's own Fig 5
/// lesson, applied to the harness.
Op<> chase_spawn_tree(Context& ctx, ChaseState* st, int tlo, int thi) {
  while (thi - tlo > 1) {
    const int mid = tlo + (thi - tlo) / 2;
    co_await ctx.spawn_at(head_home(st, mid), [st, mid, thi](Context& c) {
      return chase_spawn_tree(c, st, mid, thi);
    });
    thi = mid;
  }
  co_await chase_worker(ctx, st, tlo);
  co_await ctx.sync();
}

Op<> chase_root(Context& ctx, ChaseState* st) {
  co_await ctx.spawn_at(head_home(st, 0), [st](Context& c) {
    return chase_spawn_tree(c, st, 0, st->list->threads);
  });
  co_await ctx.sync();
}

}  // namespace

ChaseEmuResult run_chase_emu(const emu::SystemConfig& cfg,
                             const ChaseEmuParams& p) {
  const ChaseList list =
      build_chase_list(p.n, p.block, p.threads, p.mode, p.seed);

  emu::Machine m(cfg);
  ChaseState st(m, list);
  for (std::size_t i = 0; i < list.n; ++i) {
    st.elems[i].payload = list.payload[i];
    st.elems[i].next = list.next[i];
  }

  const Time elapsed =
      m.run_root([&](Context& ctx) { return chase_root(ctx, &st); });

  ChaseEmuResult r;
  r.elapsed = elapsed;
  r.mb_per_sec = mb_per_sec(16.0 * static_cast<double>(p.n), elapsed);
  r.migrations = m.stats.migrations;
  r.migrations_per_element =
      static_cast<double>(m.stats.migrations) / static_cast<double>(p.n);
  r.verified = true;
  for (int t = 0; t < p.threads; ++t) {
    if (st.sums[static_cast<std::size_t>(t)] !=
        list.expected_sum[static_cast<std::size_t>(t)]) {
      r.verified = false;
      break;
    }
  }
  return r;
}

}  // namespace emusim::kernels
