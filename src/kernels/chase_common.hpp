// Linked-list construction for the pointer-chasing benchmark (paper §III-E,
// Fig 2): elements of 16 bytes (8 B payload + 8 B next pointer) are grouped
// into blocks; the traversal order may shuffle the elements within each
// block (intra_block_shuffle), the order of the blocks (block_shuffle), or
// both (full_block_shuffle).
//
// The list is partitioned among T threads: each thread owns a contiguous
// range of blocks and traverses its own independent chain that visits every
// element of those blocks exactly once.  This file is platform-independent;
// the Emu and Xeon kernels lay the same logical lists onto their own
// memories.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "sim/random.hpp"

namespace emusim::kernels {

enum class ShuffleMode {
  none,                 ///< fully sequential traversal (sanity baseline)
  intra_block_shuffle,  ///< shuffle order within blocks; block order kept
  block_shuffle,        ///< shuffle block order; order within blocks kept
  full_block_shuffle,   ///< shuffle both
};

const char* to_string(ShuffleMode m);

/// A 16-byte list element, as laid out in simulated memory.
struct ChaseElement {
  std::int64_t payload = 0;
  std::uint64_t next = 0;  ///< global element index of the successor
};
static_assert(sizeof(ChaseElement) == 16);

inline constexpr std::uint64_t kChaseEnd = ~std::uint64_t{0};

/// The logical list: per-thread chain heads plus the successor of every
/// element, and the payload values with per-thread expected sums.
struct ChaseList {
  std::size_t n = 0;
  std::size_t block = 0;
  int threads = 0;
  std::vector<std::uint64_t> head;           ///< chain head per thread
  std::vector<std::uint64_t> next;           ///< successor per element
  std::vector<std::int64_t> payload;         ///< value per element
  std::vector<std::int64_t> expected_sum;    ///< per-thread traversal sum
};

/// Build a list of `n` elements in blocks of `block` elements, partitioned
/// among `threads` chains.  n must be a multiple of block, and the number
/// of blocks a multiple of threads (keeps every chain the same length, as
/// in the benchmark).
ChaseList build_chase_list(std::size_t n, std::size_t block, int threads,
                           ShuffleMode mode, std::uint64_t seed = 1);

}  // namespace emusim::kernels
