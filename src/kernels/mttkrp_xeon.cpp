#include <cmath>

#include "kernels/mttkrp.hpp"
#include "xeon/machine.hpp"

namespace emusim::kernels {

using sim::Op;
using xeon::CpuContext;

namespace {

struct XState {
  const tensor::CooTensor* x;
  const tensor::Factor *b, *c;
  std::size_t rank;
  std::uint64_t coords_addr, b_addr, c_addr, m_addr;
  std::vector<double> m_host;
};

/// One i-partitioned nonzero range.  Coordinate/value stream is sequential;
/// factor-row gathers and the M-row accumulate are awaited once per nonzero
/// (an OoO core overlaps the per-column work).
Op<> mttkrp_range(CpuContext& ctx, XState* st, std::size_t lo,
                  std::size_t hi) {
  const tensor::CooTensor& x = *st->x;
  for (std::size_t e = lo; e < hi; ++e) {
    if (e % 2 == 0) {
      // 32 B per nonzero: one 64 B coordinate line covers two nonzeros.
      co_await ctx.load(st->coords_addr + e * 32);
    }
    co_await ctx.load(st->b_addr +
                      static_cast<std::uint64_t>(x.j[e]) * st->rank * 8);
    co_await ctx.load(st->c_addr +
                      static_cast<std::uint64_t>(x.k[e]) * st->rank * 8);
    co_await ctx.load(st->m_addr +
                      static_cast<std::uint64_t>(x.i[e]) * st->rank * 8);
    co_await ctx.compute(kMttkrpXeonCyclesPerNnz +
                         kMttkrpXeonCyclesPerRankCol * st->rank);
    ctx.store(st->m_addr + static_cast<std::uint64_t>(x.i[e]) * st->rank * 8);

    const double v = x.val[e];
    const double* br = st->b->row(x.j[e]);
    const double* cr = st->c->row(x.k[e]);
    double* mr =
        st->m_host.data() + static_cast<std::size_t>(x.i[e]) * st->rank;
    for (std::size_t r = 0; r < st->rank; ++r) mr[r] += v * br[r] * cr[r];
  }
}

}  // namespace

MttkrpResult run_mttkrp_xeon(const xeon::SystemConfig& cfg,
                             const MttkrpXeonParams& p) {
  EMUSIM_CHECK(p.x != nullptr);
  const tensor::CooTensor& x = *p.x;
  const auto b = tensor::make_factor(x.dim1, p.rank, 21);
  const auto c = tensor::make_factor(x.dim2, p.rank, 22);

  xeon::Machine m(cfg);
  XState st;
  st.x = &x;
  st.b = &b;
  st.c = &c;
  st.rank = static_cast<std::size_t>(p.rank);
  st.coords_addr = m.allocate(x.nnz() * 32);
  st.b_addr = m.allocate(b.data.size() * 8);
  st.c_addr = m.allocate(c.data.size() * 8);
  st.m_addr = m.allocate(x.dim0 * st.rank * 8);
  st.m_host.assign(x.dim0 * st.rank, 0.0);

  // i-partitioned tasks of >= grain nonzeros, split only at slice
  // boundaries so no two tasks write the same M row.
  std::vector<xeon::TaskFn> tasks;
  std::size_t start = 0;
  while (start < x.nnz()) {
    std::size_t end = std::min(start + p.grain, x.nnz());
    while (end < x.nnz() && x.i[end] == x.i[end - 1]) ++end;
    tasks.push_back([&st, start, end](CpuContext& ctx) {
      return mttkrp_range(ctx, &st, start, end);
    });
    start = end;
  }
  const Time elapsed =
      run_task_pool(m, p.threads, std::move(tasks), cfg.spawn_overhead_cycles);

  MttkrpResult r;
  r.elapsed = elapsed;
  r.mflops = tensor::mttkrp_flops(x, p.rank) / to_seconds(elapsed) / 1e6;
  r.mb_per_sec = mb_per_sec(32.0 * static_cast<double>(x.nnz()), elapsed);
  const auto want = tensor::mttkrp_reference(x, b, c);
  r.verified = true;
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (std::abs(want[i] - st.m_host[i]) > 1e-9) {
      r.verified = false;
      break;
    }
  }
  return r;
}

}  // namespace emusim::kernels
