// Ping-pong migration microbenchmark (paper §III-E, Fig 10): N threads
// migrate back and forth between two nodelets several thousand times,
// measuring migration-engine throughput (migrations/s) and, with a single
// thread, the end-to-end latency of one migration.
#pragma once

#include "common/units.hpp"
#include "emu/config.hpp"

namespace emusim::kernels {

struct PingPongParams {
  int threads = 64;
  int round_trips = 1000;  ///< each round trip is two migrations
  int nodelet_a = 0;
  int nodelet_b = 1;
};

struct PingPongResult {
  double migrations_per_sec = 0.0;
  double mean_latency_us = 0.0;  ///< mean per-migration latency
  Time elapsed = 0;
  std::uint64_t migrations = 0;
};

PingPongResult run_pingpong(const emu::SystemConfig& cfg,
                            const PingPongParams& p);

}  // namespace emusim::kernels
