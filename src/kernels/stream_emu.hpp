// STREAM ADD on the Emu machine model (paper Figs 4, 5, 10).
//
// c[i] = a[i] + b[i] over three arrays of 8-byte integers striped across
// the nodelets, with the paper's four thread-creation strategies:
//
//   serial_spawn          — one thread spawns every worker locally with a
//                           for loop; workers take contiguous *global*
//                           index ranges, so on a multi-nodelet system each
//                           worker strides across nodelets and migrates on
//                           nearly every element (the naive port).
//   recursive_spawn       — same decomposition, but workers are created by
//                           a local recursive spawn tree.
//   serial_remote_spawn   — one thread is first spawned *onto each nodelet*
//                           (remote spawn); each then serially spawns local
//                           workers that touch only nodelet-local elements.
//   recursive_remote_spawn— remote spawn tree across nodelets, then a local
//                           recursive tree per nodelet.
//
// The remote variants eliminate steady-state migrations entirely, which is
// the paper's Fig 5 finding: remote spawns are essential for peak bandwidth.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "emu/config.hpp"

namespace emusim::kernels {

enum class SpawnStrategy {
  serial_spawn,
  recursive_spawn,
  serial_remote_spawn,
  recursive_remote_spawn,
};

const char* to_string(SpawnStrategy s);

struct StreamParams {
  std::size_t n = std::size_t{1} << 20;  ///< elements per array
  int threads = 64;                      ///< total worker threads
  SpawnStrategy strategy = SpawnStrategy::serial_spawn;
  /// Stripe arrays (and spawn work) across only the first `across` nodelets
  /// (0 = all).  Fig 4 uses across=1.
  int across = 0;
};

struct StreamResult {
  double mb_per_sec = 0.0;  ///< useful bytes (24 per element) over sim time
  Time elapsed = 0;
  std::uint64_t migrations = 0;
  std::uint64_t spawns = 0;
  std::uint64_t inline_spawns = 0;
  bool verified = false;  ///< c == a + b for every element
};

/// Instruction cost of one STREAM ADD loop iteration on a Gossamer core
/// (address generation for three striped arrays, the add, loop control, and
/// the issue slots of the loads/store).  Calibrated so eight nodelets peak
/// near the paper's 1.2 GB/s.
inline constexpr std::uint64_t kStreamCyclesPerElement = 22;

StreamResult run_stream_add(const emu::SystemConfig& cfg,
                            const StreamParams& p);

}  // namespace emusim::kernels
