// Lightweight runtime checks.  These guard simulator invariants (not user
// input); violations indicate a bug, so they abort with a location message
// in every build type.
#pragma once

#include <cstdio>
#include <cstdlib>

#define EMUSIM_CHECK(cond)                                               \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "EMUSIM_CHECK failed: %s at %s:%d\n", #cond,  \
                   __FILE__, __LINE__);                                  \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#define EMUSIM_CHECK_MSG(cond, msg)                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "EMUSIM_CHECK failed: %s (%s) at %s:%d\n",     \
                   #cond, msg, __FILE__, __LINE__);                       \
      std::abort();                                                       \
    }                                                                     \
  } while (0)
