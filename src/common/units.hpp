// Time, rate, and size units used throughout the simulator.
//
// Simulated time is kept as an integer count of picoseconds.  Integer time
// makes event ordering exact and runs reproducible; picosecond resolution is
// fine enough that rounding a 150 MHz clock period (6666.67 ps -> 6667 ps)
// perturbs results by < 0.01 %.
#pragma once

#include <cstdint>
#include <string>

namespace emusim {

/// Simulated time in picoseconds.
using Time = std::int64_t;

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1'000;
inline constexpr Time kMicrosecond = 1'000'000;
inline constexpr Time kMillisecond = 1'000'000'000;
inline constexpr Time kSecond = 1'000'000'000'000;

constexpr Time ps(double v) { return static_cast<Time>(v * kPicosecond); }
constexpr Time ns(double v) { return static_cast<Time>(v * kNanosecond); }
constexpr Time us(double v) { return static_cast<Time>(v * kMicrosecond); }
constexpr Time ms(double v) { return static_cast<Time>(v * kMillisecond); }
constexpr Time sec(double v) { return static_cast<Time>(v * kSecond); }

/// Convert a simulated Time to floating-point seconds (for reporting only).
constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Period of a clock in picoseconds.  hz must be positive.
constexpr Time period_from_hz(double hz) {
  return static_cast<Time>(static_cast<double>(kSecond) / hz + 0.5);
}

/// Time to move `bytes` at `bytes_per_sec` (rounded up to at least 1 ps).
constexpr Time transfer_time(double bytes, double bytes_per_sec) {
  const double t = bytes / bytes_per_sec * static_cast<double>(kSecond);
  const auto ticks = static_cast<Time>(t + 0.5);
  return ticks > 0 ? ticks : 1;
}

/// Service interval of a fixed-rate server (events/sec -> ps/event).
constexpr Time interval_from_rate(double events_per_sec) {
  return period_from_hz(events_per_sec);
}

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
inline constexpr double kMB = 1e6;  // decimal megabyte, used for bandwidths
inline constexpr double kGB = 1e9;

/// Bandwidth in MB/s (decimal) given bytes moved over a simulated duration.
constexpr double mb_per_sec(double bytes, Time elapsed) {
  if (elapsed <= 0) return 0.0;
  return bytes / to_seconds(elapsed) / kMB;
}

/// Pretty-print a time value with an adaptive unit (for logs and reports).
std::string format_time(Time t);

/// Pretty-print a byte count with an adaptive binary unit.
std::string format_bytes(double bytes);

}  // namespace emusim
