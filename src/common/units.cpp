#include "common/units.hpp"

#include <array>
#include <cstdio>

namespace emusim {

std::string format_time(Time t) {
  char buf[64];
  const double v = static_cast<double>(t);
  if (t < kNanosecond) {
    std::snprintf(buf, sizeof buf, "%lld ps", static_cast<long long>(t));
  } else if (t < kMicrosecond) {
    std::snprintf(buf, sizeof buf, "%.2f ns", v / kNanosecond);
  } else if (t < kMillisecond) {
    std::snprintf(buf, sizeof buf, "%.2f us", v / kMicrosecond);
  } else if (t < kSecond) {
    std::snprintf(buf, sizeof buf, "%.2f ms", v / kMillisecond);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", v / kSecond);
  }
  return buf;
}

std::string format_bytes(double bytes) {
  static constexpr std::array<const char*, 5> units = {"B", "KiB", "MiB",
                                                       "GiB", "TiB"};
  std::size_t u = 0;
  while (bytes >= 1024.0 && u + 1 < units.size()) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f %s", bytes, units[u]);
  return buf;
}

}  // namespace emusim
