#include "graph/stream_graph.hpp"

#include <algorithm>
#include <coroutine>
#include <deque>
#include <memory>
#include <utility>

#include "common/check.hpp"
#include "emu/machine.hpp"
#include "emu/runtime/alloc.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"
#include "xeon/machine.hpp"

namespace emusim::graph {

namespace {

// Cost model shared by both backends (issue/compute cycles; the memory
// traffic dominates either way).
constexpr std::uint64_t kInsertSetupCycles = 40;  ///< id decode, block walk
constexpr std::uint64_t kScanCyclesPerEdge = 2;   ///< duplicate-check compare
constexpr std::uint64_t kDegreeCycles = 10;
constexpr std::uint64_t kBfsVisitCycles = 12;
/// Edge slots per allocated edge block (8 B per slot, STINGER-style).
constexpr std::size_t kEdgeBlockSlots = 16;

std::size_t blocks_needed(std::size_t degree) {
  return (degree + kEdgeBlockSlots - 1) / kEdgeBlockSlots;
}

}  // namespace

std::vector<std::string> stream_phases() {
  return {"insert", "degree", "bfs"};
}

const char* to_string(EdgeDist d) {
  switch (d) {
    case EdgeDist::uniform: return "uniform";
    case EdgeDist::rmat: return "rmat";
  }
  return "?";
}

StreamWorkload make_stream_workload(const StreamParams& p) {
  EMUSIM_CHECK(p.num_vertices >= 2);
  EMUSIM_CHECK(p.epochs >= 1);
  sim::Rng rng(p.seed);
  const std::size_t n = p.num_vertices;
  int scale = 0;
  while ((std::size_t{1} << scale) < n) ++scale;

  StreamWorkload w;
  w.num_vertices = n;
  w.epochs = p.epochs;
  w.inserts.reserve(p.inserts);

  auto rmat_pair = [&]() {
    // Same quadrant recursion as make_rmat (a=0.57, b=c=0.19), folded into
    // [0, n) for non-power-of-two vertex counts.
    constexpr double kA = 0.57, kB = 0.19, kC = 0.19;
    std::uint32_t u = 0, v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform();
      u <<= 1;
      v <<= 1;
      if (r < kA) {
      } else if (r < kA + kB) {
        v |= 1;
      } else if (r < kA + kB + kC) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    return StreamEdge{static_cast<std::uint32_t>(u % n),
                      static_cast<std::uint32_t>(v % n)};
  };

  for (std::size_t i = 0; i < p.inserts; ++i) {
    if (!w.inserts.empty() && rng.uniform() < p.duplicate_fraction) {
      // Re-insert an already-streamed edge: must commit as a no-op.
      w.inserts.push_back(w.inserts[rng.below(w.inserts.size())]);
      continue;
    }
    StreamEdge e;
    if (p.dist == EdgeDist::uniform) {
      e.u = static_cast<std::uint32_t>(rng.below(n));
      e.v = static_cast<std::uint32_t>(rng.below(n));
    } else {
      e = rmat_pair();
    }
    if (e.u == e.v) e.v = static_cast<std::uint32_t>((e.u + 1) % n);
    w.inserts.push_back(e);
  }

  w.degree_queries.resize(p.epochs);
  w.bfs_sources.resize(p.epochs);
  for (std::size_t e = 0; e < p.epochs; ++e) {
    for (std::uint32_t q = 0; q < p.degree_queries; ++q) {
      w.degree_queries[e].push_back(static_cast<std::uint32_t>(rng.below(n)));
    }
    for (std::uint32_t q = 0; q < p.bfs_queries; ++q) {
      w.bfs_sources[e].push_back(static_cast<std::uint32_t>(rng.below(n)));
    }
  }
  return w;
}

// ---------------------------------------------------------------------------
// StreamGraph (host structure)
// ---------------------------------------------------------------------------

StreamGraph::StreamGraph(std::size_t num_vertices, int nodelets)
    : nodelets_(nodelets), adj_(num_vertices) {
  EMUSIM_CHECK(nodelets >= 1);
}

bool StreamGraph::insert_half(std::uint32_t u, std::uint32_t v) {
  auto& list = adj_[u];
  if (std::find(list.begin(), list.end(), v) != list.end()) return false;
  list.push_back(v);
  half_edges_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

Graph StreamGraph::snapshot() const {
  Graph g;
  g.num_vertices = adj_.size();
  g.row_ptr.assign(adj_.size() + 1, 0);
  for (std::size_t u = 0; u < adj_.size(); ++u) {
    g.row_ptr[u + 1] =
        g.row_ptr[u] + static_cast<std::int64_t>(adj_[u].size());
  }
  g.adj.reserve(static_cast<std::size_t>(g.row_ptr.back()));
  for (const auto& list : adj_) {
    std::vector<std::uint32_t> sorted(list);
    std::sort(sorted.begin(), sorted.end());
    g.adj.insert(g.adj.end(), sorted.begin(), sorted.end());
  }
  return g;
}

namespace {

// ---------------------------------------------------------------------------
// shared epoch-oracle checks (host-side; cost-free on the simulated clock)
// ---------------------------------------------------------------------------

bool check_epoch_snapshot(const StreamGraph& g, const StreamWorkload& w,
                          std::size_t epoch, std::string* err) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  const std::size_t end = w.epoch_end(epoch);
  edges.reserve(end);
  for (std::size_t i = 0; i < end; ++i) {
    edges.emplace_back(w.inserts[i].u, w.inserts[i].v);
  }
  const Graph oracle = from_edge_list(w.num_vertices, std::move(edges));
  const Graph snap = g.snapshot();
  if (snap.row_ptr != oracle.row_ptr || snap.adj != oracle.adj) {
    *err = "epoch " + std::to_string(epoch) +
           ": streamed snapshot != batch-built oracle";
    return false;
  }
  return true;
}

bool check_bfs(const StreamGraph& g, const std::vector<std::uint32_t>& dist,
               std::uint32_t src, std::size_t epoch, std::string* err) {
  const Graph snap = g.snapshot();
  if (dist != bfs_reference(snap, src)) {
    *err = "epoch " + std::to_string(epoch) + ": BFS from " +
           std::to_string(src) + " != reference on flushed snapshot";
    return false;
  }
  return true;
}

struct DriveOut {
  Time insert_time = 0;
  bool ok = true;
  std::string error;
};

// ---------------------------------------------------------------------------
// emu backend
// ---------------------------------------------------------------------------

using emu::Context;

/// Per-shard latency accumulators (the serve_emu scheme): a threadlet
/// records on the shard it finishes on; shards never share an entry and the
/// entries merge in shard order afterwards.
struct EmuTally {
  serve::PhasedLatency lat{stream_phases()};
};

struct EmuStream {
  emu::Machine* m;
  StreamGraph* g;
  /// Per-vertex degree word; Striped1D's word-granular home (v % nodelets)
  /// IS the StreamGraph home, so the counter always lives with the list.
  emu::Striped1D<std::uint64_t> deg;
  /// Per-vertex edge-block base addresses, allocated from the home
  /// nodelet's local memory as the list grows.  Host bookkeeping owned by
  /// the home shard — only threads resident there touch a vertex's entry.
  std::vector<std::vector<std::uint64_t>> blocks;
  std::vector<EmuTally> tallies;

  EmuStream(emu::Machine& machine, StreamGraph& graph)
      : m(&machine),
        g(&graph),
        deg(machine, graph.num_vertices()),
        blocks(graph.num_vertices()),
        tallies(static_cast<std::size_t>(machine.num_shards())) {}
};

/// Timed duplicate scan + CAS-ordered append of half-edge u -> v.  The
/// caller is resident on u's home nodelet.  The membership recheck and the
/// host append happen between suspension points — atomic on the simulated
/// clock, the CAS commit — while the timed scan before it pays for the walk
/// over the current edge blocks.
sim::Op<> scan_append(Context& ctx, EmuStream* st, std::uint32_t u,
                      std::uint32_t v) {
  co_await ctx.issue(kInsertSetupCycles);
  co_await ctx.read_local(st->deg.byte_addr(u), 8);
  const std::size_t scanned = st->g->degree(u);
  for (std::size_t b = 0; b * kEdgeBlockSlots < scanned; ++b) {
    const auto span = static_cast<std::uint32_t>(
        std::min(kEdgeBlockSlots, scanned - b * kEdgeBlockSlots) * 8);
    co_await ctx.read_local(st->blocks[u][b], span);
  }
  co_await ctx.issue(kScanCyclesPerEdge * (st->g->degree(u) + 1));
  if (st->g->insert_half(u, v)) {
    const std::size_t d = st->g->degree(u);
    while (st->blocks[u].size() < blocks_needed(d)) {
      st->blocks[u].push_back(
          st->m->nodelet(ctx.nodelet()).allocate(kEdgeBlockSlots * 8));
    }
    const std::size_t slot = d - 1;
    ctx.write_local(st->blocks[u][slot / kEdgeBlockSlots] +
                        (slot % kEdgeBlockSlots) * 8,
                    8);
    ctx.write_local(st->deg.byte_addr(u), 8);  // the CAS'd degree word
  }
}

/// One inserted edge: a threadlet born at u's home appends the u-side, then
/// migrates to v's home for the mirror half.  Mutation never leaves the
/// owning nodelet's shard.
sim::Op<> insert_one(Context& ctx, EmuStream* st, StreamEdge e, Time b0) {
  co_await scan_append(ctx, st, e.u, e.v);
  const int hv = st->g->home(e.v);
  if (hv != ctx.nodelet()) co_await ctx.migrate_to(hv);
  co_await scan_append(ctx, st, e.v, e.u);
  st->tallies[static_cast<std::size_t>(ctx.shard())].lat.record(
      static_cast<std::size_t>(StreamPhase::insert),
      ctx.engine().now() - b0);
}

sim::Op<> degree_one(Context& ctx, EmuStream* st, std::uint32_t u, Time b0) {
  co_await ctx.issue(kDegreeCycles);
  co_await ctx.read_local(st->deg.byte_addr(u), 8);
  st->tallies[static_cast<std::size_t>(ctx.shard())].lat.record(
      static_cast<std::size_t>(StreamPhase::degree),
      ctx.engine().now() - b0);
}

/// Serial migratory BFS over the streamed structure: the thread follows the
/// frontier from home to home, reading each vertex's edge blocks locally.
sim::Op<> bfs_one(Context& ctx, EmuStream* st, std::uint32_t src,
                  std::vector<std::uint32_t>* out) {
  const Time t0 = ctx.engine().now();
  out->assign(st->g->num_vertices(), kBfsUnreached);
  std::deque<std::uint32_t> queue;
  (*out)[src] = 0;
  queue.push_back(src);
  while (!queue.empty()) {
    const std::uint32_t u = queue.front();
    queue.pop_front();
    const int h = st->g->home(u);
    if (h != ctx.nodelet()) co_await ctx.migrate_to(h);
    co_await ctx.issue(kBfsVisitCycles);
    co_await ctx.read_local(st->deg.byte_addr(u), 8);
    const auto& nb = st->g->neighbors(u);
    for (std::size_t b = 0; b * kEdgeBlockSlots < nb.size(); ++b) {
      const auto span = static_cast<std::uint32_t>(
          std::min(kEdgeBlockSlots, nb.size() - b * kEdgeBlockSlots) * 8);
      co_await ctx.read_local(st->blocks[u][b], span);
    }
    for (const std::uint32_t v : nb) {
      if ((*out)[v] == kBfsUnreached) {
        (*out)[v] = (*out)[u] + 1;
        queue.push_back(v);
      }
    }
  }
  st->tallies[static_cast<std::size_t>(ctx.shard())].lat.record(
      static_cast<std::size_t>(StreamPhase::bfs), ctx.engine().now() - t0);
}

sim::Op<> drive_emu(Context& ctx, EmuStream* st, const StreamWorkload* w,
                    std::uint32_t batch, DriveOut* out) {
  for (std::size_t e = 0; e < w->epochs; ++e) {
    const Time e0 = ctx.engine().now();
    const std::size_t lo = w->epoch_begin(e), hi = w->epoch_end(e);
    for (std::size_t i = lo; i < hi; i += batch) {
      const Time b0 = ctx.engine().now();
      const std::size_t end = std::min<std::size_t>(i + batch, hi);
      for (std::size_t j = i; j < end; ++j) {
        const StreamEdge edge = w->inserts[j];
        co_await ctx.spawn_at(st->g->home(edge.u),
                              [st, edge, b0](Context& c) {
                                return insert_one(c, st, edge, b0);
                              });
      }
      co_await ctx.sync();  // the flush barrier bounding each batch
    }
    out->insert_time += ctx.engine().now() - e0;
    if (!check_epoch_snapshot(*st->g, *w, e, &out->error)) {
      out->ok = false;
      co_return;
    }
    const Time q0 = ctx.engine().now();
    for (const std::uint32_t u : w->degree_queries[e]) {
      co_await ctx.spawn_at(st->g->home(u), [st, u, q0](Context& c) {
        return degree_one(c, st, u, q0);
      });
    }
    co_await ctx.sync();
    for (const std::uint32_t src : w->bfs_sources[e]) {
      std::vector<std::uint32_t> dist;
      co_await bfs_one(ctx, st, src, &dist);
      if (!check_bfs(*st->g, dist, src, e, &out->error)) {
        out->ok = false;
        co_return;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// xeon backend
// ---------------------------------------------------------------------------

using xeon::CpuContext;

/// Countdown barrier joining one batch's workers back to the driver (the
/// serve_xeon scheme).
struct BatchJoin {
  sim::Engine* eng = nullptr;
  int pending = 0;
  std::coroutine_handle<> waiter;

  void done() {
    if (--pending == 0 && waiter) {
      eng->schedule_now(std::exchange(waiter, {}));
    }
  }
  auto wait() {
    struct Awaiter {
      BatchJoin& j;
      bool await_ready() const noexcept { return j.pending == 0; }
      void await_suspend(std::coroutine_handle<> h) { j.waiter = h; }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }
};

/// Writer latches are striped over vertices, not per-vertex: the coarse
/// latch table a lock-based streaming graph starts from.
constexpr std::uint32_t kXeonStripes = 64;

struct XeonStream {
  xeon::Machine* m;
  StreamGraph* g;
  std::uint64_t deg_base = 0;  ///< n degree words
  std::vector<std::vector<std::uint64_t>> blocks;
  std::vector<std::unique_ptr<sim::Semaphore>> latches;
  serve::PhasedLatency lat{stream_phases()};
};

std::uint32_t stripe_of(std::uint32_t v) { return v % kXeonStripes; }

sim::Op<> x_scan_append(CpuContext& ctx, XeonStream* st, std::uint32_t u,
                        std::uint32_t v) {
  co_await ctx.compute(kInsertSetupCycles);
  co_await ctx.load(st->deg_base + u * 8);
  const std::size_t scanned = st->g->degree(u);
  for (std::size_t b = 0; b * kEdgeBlockSlots < scanned; ++b) {
    // Touch each 64 B line of the block actually occupied.
    const std::size_t span =
        std::min(kEdgeBlockSlots, scanned - b * kEdgeBlockSlots) * 8;
    for (std::size_t off = 0; off < span; off += 64) {
      co_await ctx.load(st->blocks[u][b] + off);
    }
  }
  co_await ctx.compute(kScanCyclesPerEdge * (st->g->degree(u) + 1));
  if (st->g->insert_half(u, v)) {
    const std::size_t d = st->g->degree(u);
    while (st->blocks[u].size() < blocks_needed(d)) {
      st->blocks[u].push_back(st->m->allocate(kEdgeBlockSlots * 8));
    }
    const std::size_t slot = d - 1;
    ctx.store(st->blocks[u][slot / kEdgeBlockSlots] +
              (slot % kEdgeBlockSlots) * 8);
    ctx.store(st->deg_base + u * 8);
  }
}

/// One inserted edge under the stripe latches, acquired in ascending stripe
/// order so two-latch inserts cannot deadlock against each other.
sim::Op<> x_insert(CpuContext& ctx, XeonStream* st, StreamEdge e, Time b0) {
  std::uint32_t s1 = stripe_of(e.u), s2 = stripe_of(e.v);
  if (s1 > s2) std::swap(s1, s2);
  co_await st->latches[s1]->acquire();
  if (s2 != s1) co_await st->latches[s2]->acquire();
  co_await x_scan_append(ctx, st, e.u, e.v);
  co_await x_scan_append(ctx, st, e.v, e.u);
  if (s2 != s1) st->latches[s2]->release();
  st->latches[s1]->release();
  st->lat.record(static_cast<std::size_t>(StreamPhase::insert),
                 st->m->engine().now() - b0);
}

sim::Op<> x_degree(CpuContext& ctx, XeonStream* st, std::uint32_t u,
                   Time b0) {
  co_await ctx.compute(kDegreeCycles);
  co_await ctx.load(st->deg_base + u * 8);
  st->lat.record(static_cast<std::size_t>(StreamPhase::degree),
                 st->m->engine().now() - b0);
}

sim::Op<> x_bfs(CpuContext& ctx, XeonStream* st, std::uint32_t src,
                std::vector<std::uint32_t>* out) {
  const Time t0 = st->m->engine().now();
  out->assign(st->g->num_vertices(), kBfsUnreached);
  std::deque<std::uint32_t> queue;
  (*out)[src] = 0;
  queue.push_back(src);
  while (!queue.empty()) {
    const std::uint32_t u = queue.front();
    queue.pop_front();
    co_await ctx.compute(kBfsVisitCycles);
    co_await ctx.load(st->deg_base + u * 8);
    const auto& nb = st->g->neighbors(u);
    for (std::size_t b = 0; b * kEdgeBlockSlots < nb.size(); ++b) {
      const std::size_t span =
          std::min(kEdgeBlockSlots, nb.size() - b * kEdgeBlockSlots) * 8;
      for (std::size_t off = 0; off < span; off += 64) {
        co_await ctx.load(st->blocks[u][b] + off);
      }
    }
    for (const std::uint32_t v : nb) {
      if ((*out)[v] == kBfsUnreached) {
        (*out)[v] = (*out)[u] + 1;
        queue.push_back(v);
      }
    }
  }
  st->lat.record(static_cast<std::size_t>(StreamPhase::bfs),
                 st->m->engine().now() - t0);
}

/// One worker's strided share of a batch slice [begin, end).
template <class OpFn>
sim::Task x_batch_worker(CpuContext ctx, std::size_t begin, std::size_t end,
                         std::size_t stride, BatchJoin* join, OpFn op) {
  for (std::size_t i = begin; i < end; i += stride) {
    co_await op(ctx, i);
  }
  join->done();
}

sim::Task drive_xeon(XeonStream* st, const StreamWorkload* w,
                     std::uint32_t batch, int threads, BatchJoin* join,
                     DriveOut* out) {
  xeon::Machine& m = *st->m;
  auto run_batch = [&](std::size_t lo, std::size_t hi,
                       auto op) -> sim::Op<> {
    const auto nw = std::min<std::size_t>(
        static_cast<std::size_t>(threads), hi - lo);
    join->pending = static_cast<int>(nw);
    join->waiter = {};
    for (std::size_t wk = 0; wk < nw; ++wk) {
      auto task = x_batch_worker(
          CpuContext(m, static_cast<int>(wk) % m.cfg().cores), lo + wk, hi,
          nw, join, op);
      task.start();
    }
    co_await join->wait();
  };

  for (std::size_t e = 0; e < w->epochs; ++e) {
    const Time e0 = m.engine().now();
    const std::size_t lo = w->epoch_begin(e), hi = w->epoch_end(e);
    for (std::size_t i = lo; i < hi; i += batch) {
      const Time b0 = m.engine().now();
      const std::size_t end = std::min<std::size_t>(i + batch, hi);
      co_await run_batch(i, end, [st, w, b0](CpuContext& c, std::size_t j) {
        return x_insert(c, st, w->inserts[j], b0);
      });
    }
    out->insert_time += m.engine().now() - e0;
    if (!check_epoch_snapshot(*st->g, *w, e, &out->error)) {
      out->ok = false;
      co_return;
    }
    if (!w->degree_queries[e].empty()) {
      const Time q0 = m.engine().now();
      const auto* qs = &w->degree_queries[e];
      co_await run_batch(0, qs->size(),
                         [st, qs, q0](CpuContext& c, std::size_t j) {
                           return x_degree(c, st, (*qs)[j], q0);
                         });
    }
    CpuContext bctx(m, 0);
    for (const std::uint32_t src : w->bfs_sources[e]) {
      std::vector<std::uint32_t> dist;
      co_await x_bfs(bctx, st, src, &dist);
      if (!check_bfs(*st->g, dist, src, e, &out->error)) {
        out->ok = false;
        co_return;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// result assembly
// ---------------------------------------------------------------------------

void finish_result(const StreamParams& p, const StreamWorkload& w,
                   const StreamGraph& g, const DriveOut& out, Time elapsed,
                   StreamResult* r) {
  r->elapsed = elapsed;
  r->insert_time = out.insert_time;
  r->inserts = w.inserts.size();
  r->new_edges = g.half_edges() / 2;
  for (const auto& qs : w.degree_queries) r->degree_queries += qs.size();
  for (const auto& qs : w.bfs_sources) r->bfs_queries += qs.size();
  r->inserts_per_sec =
      out.insert_time > 0 ? static_cast<double>(r->inserts) /
                                to_seconds(out.insert_time)
                          : 0.0;
  const std::uint64_t ops =
      r->inserts + r->degree_queries + r->bfs_queries;
  r->ops_per_sec =
      elapsed > 0 ? static_cast<double>(ops) / to_seconds(elapsed) : 0.0;
  r->verified = out.ok;
  r->error = out.error;
  if (r->verified && r->lat.overall().count() != ops) {
    r->verified = false;
    r->error = "latency samples != ops";
  }
  if (r->verified && g.half_edges() % 2 != 0) {
    r->verified = false;
    r->error = "asymmetric half-edge count";
  }
  (void)p;
}

}  // namespace

StreamResult stream_emu(const emu::SystemConfig& cfg, const StreamParams& p) {
  const StreamWorkload w = make_stream_workload(p);
  emu::Machine m(cfg);
  StreamGraph g(p.num_vertices, m.num_nodelets());
  EmuStream st(m, g);
  DriveOut out;
  const Time elapsed = m.run_root([&](Context& ctx) {
    return drive_emu(ctx, &st, &w, p.batch, &out);
  });

  StreamResult r;
  for (const EmuTally& t : st.tallies) r.lat.merge(t.lat);
  r.migrations = m.stats.migrations;
  finish_result(p, w, g, out, elapsed, &r);
  return r;
}

StreamResult stream_xeon(const xeon::SystemConfig& cfg,
                         const StreamParams& p) {
  EMUSIM_CHECK(p.threads >= 1);
  const StreamWorkload w = make_stream_workload(p);
  xeon::Machine m(cfg);
  // Stripe the host structure by a nominal 8 "nodelets" so snapshots from
  // both backends describe the same graph (home only affects emu placement).
  StreamGraph g(p.num_vertices, 8);
  XeonStream st;
  st.m = &m;
  st.g = &g;
  st.deg_base = m.allocate(p.num_vertices * 8);
  st.blocks.resize(p.num_vertices);
  st.latches.reserve(kXeonStripes);
  for (std::uint32_t s = 0; s < kXeonStripes; ++s) {
    st.latches.push_back(std::make_unique<sim::Semaphore>(m.engine(), 1));
  }
  BatchJoin join;
  join.eng = &m.engine();
  DriveOut out;

  const Time t0 = m.engine().now();
  auto d = drive_xeon(&st, &w, p.batch, p.threads, &join, &out);
  d.start();
  m.engine().run();
  const Time elapsed = m.engine().now() - t0;

  StreamResult r;
  r.lat.merge(st.lat);
  finish_result(p, w, g, out, elapsed, &r);
  return r;
}

}  // namespace emusim::graph
