#include "graph/graph.hpp"

#include <algorithm>
#include <deque>

#include "common/check.hpp"
#include "sim/random.hpp"

namespace emusim::graph {

Graph from_edge_list(
    std::size_t num_vertices,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sym;
  sym.reserve(edges.size() * 2);
  for (auto [u, v] : edges) {
    if (u == v) continue;
    sym.emplace_back(u, v);
    sym.emplace_back(v, u);
  }
  std::sort(sym.begin(), sym.end());
  sym.erase(std::unique(sym.begin(), sym.end()), sym.end());

  Graph g;
  g.num_vertices = num_vertices;
  g.row_ptr.assign(num_vertices + 1, 0);
  for (auto [u, v] : sym) {
    ++g.row_ptr[u + 1];
    (void)v;
  }
  for (std::size_t i = 1; i <= num_vertices; ++i) {
    g.row_ptr[i] += g.row_ptr[i - 1];
  }
  g.adj.resize(sym.size());
  std::vector<std::int64_t> fill(g.row_ptr.begin(), g.row_ptr.end() - 1);
  for (auto [u, v] : sym) {
    g.adj[static_cast<std::size_t>(fill[u]++)] = v;
  }
  return g;
}

namespace {

Graph from_edges(std::size_t num_vertices,
                 std::vector<std::pair<std::uint32_t, std::uint32_t>> edges) {
  return from_edge_list(num_vertices, std::move(edges));
}

}  // namespace

Graph make_grid_2d(std::size_t n) {
  EMUSIM_CHECK(n >= 1);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(2 * n * n);
  auto id = [n](std::size_t i, std::size_t j) {
    return static_cast<std::uint32_t>(i * n + j);
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j + 1 < n) edges.emplace_back(id(i, j), id(i, j + 1));
      if (i + 1 < n) edges.emplace_back(id(i, j), id(i + 1, j));
    }
  }
  return from_edges(n * n, std::move(edges));
}

Graph make_uniform_random(std::size_t num_vertices, double avg_degree,
                          std::uint64_t seed) {
  EMUSIM_CHECK(num_vertices >= 2);
  sim::Rng rng(seed);
  const auto num_edges =
      static_cast<std::size_t>(avg_degree * static_cast<double>(num_vertices) /
                               2.0);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(num_edges);
  for (std::size_t e = 0; e < num_edges; ++e) {
    edges.emplace_back(static_cast<std::uint32_t>(rng.below(num_vertices)),
                       static_cast<std::uint32_t>(rng.below(num_vertices)));
  }
  return from_edges(num_vertices, std::move(edges));
}

Graph make_rmat(int scale, int edge_factor, std::uint64_t seed) {
  EMUSIM_CHECK(scale >= 1 && scale < 31);
  sim::Rng rng(seed);
  const std::size_t n = std::size_t{1} << scale;
  const std::size_t m = n * static_cast<std::size_t>(edge_factor);
  constexpr double kA = 0.57, kB = 0.19, kC = 0.19;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(m);
  for (std::size_t e = 0; e < m; ++e) {
    std::uint32_t u = 0, v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform();
      u <<= 1;
      v <<= 1;
      if (r < kA) {
        // top-left quadrant: no bits set
      } else if (r < kA + kB) {
        v |= 1;
      } else if (r < kA + kB + kC) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    edges.emplace_back(u, v);
  }
  return from_edges(n, std::move(edges));
}

std::vector<std::uint32_t> bfs_reference(const Graph& g, std::size_t source) {
  std::vector<std::uint32_t> dist(g.num_vertices, kBfsUnreached);
  std::deque<std::uint32_t> queue;
  dist[source] = 0;
  queue.push_back(static_cast<std::uint32_t>(source));
  while (!queue.empty()) {
    const std::uint32_t u = queue.front();
    queue.pop_front();
    for (auto k = g.row_ptr[u]; k < g.row_ptr[u + 1]; ++k) {
      const std::uint32_t v = g.adj[static_cast<std::size_t>(k)];
      if (dist[v] == kBfsUnreached) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

bool validate(const Graph& g) {
  if (g.row_ptr.size() != g.num_vertices + 1) return false;
  if (g.row_ptr.front() != 0) return false;
  if (static_cast<std::size_t>(g.row_ptr.back()) != g.adj.size()) return false;
  for (std::size_t u = 0; u < g.num_vertices; ++u) {
    if (g.row_ptr[u] > g.row_ptr[u + 1]) return false;
    for (auto k = g.row_ptr[u]; k < g.row_ptr[u + 1]; ++k) {
      const std::uint32_t v = g.adj[static_cast<std::size_t>(k)];
      if (v >= g.num_vertices) return false;
      if (v == u) return false;  // no self loops
      if (k > g.row_ptr[u] &&
          g.adj[static_cast<std::size_t>(k - 1)] >= v) {
        return false;  // sorted, no duplicates
      }
      // symmetric: find u in v's list
      const auto* lo = g.adj.data() + g.row_ptr[v];
      const auto* hi = g.adj.data() + g.row_ptr[v + 1];
      if (!std::binary_search(lo, hi, static_cast<std::uint32_t>(u))) {
        return false;
      }
    }
  }
  return true;
}

std::uint64_t triangle_count_reference(const Graph& g) {
  // Forward counting: for each edge (u, v) with u < v, count common
  // neighbours w > v via a sorted merge of the two forward lists.  Each
  // triangle u < v < w is found exactly once, at its lowest edge.
  std::uint64_t total = 0;
  for (std::size_t u = 0; u < g.num_vertices; ++u) {
    const auto ub = static_cast<std::size_t>(g.row_ptr[u]);
    const auto ue = static_cast<std::size_t>(g.row_ptr[u + 1]);
    for (std::size_t k = ub; k < ue; ++k) {
      const std::uint32_t v = g.adj[k];
      if (v <= u) continue;
      std::size_t i = k + 1;  // u's neighbours > v (sorted)
      auto j = static_cast<std::size_t>(g.row_ptr[v]);
      const auto je = static_cast<std::size_t>(g.row_ptr[v + 1]);
      while (j < je && g.adj[j] <= v) ++j;  // v's neighbours > v
      while (i < ue && j < je) {
        if (g.adj[i] < g.adj[j]) {
          ++i;
        } else if (g.adj[j] < g.adj[i]) {
          ++j;
        } else {
          ++total;
          ++i;
          ++j;
        }
      }
    }
  }
  return total;
}

}  // namespace emusim::graph
