// Streaming graph updates with concurrent queries — the STINGER-style
// workload the Emu follow-on papers ("Programming Strategies for Irregular
// Algorithms on the Emu Chick") used to characterize the machine beyond
// static kernels.
//
// The functional structure is a nodelet-striped adjacency: vertex v's edge
// list lives on nodelet v % nodelets (its *home*), held as append-ordered
// edge blocks.  A generated workload interleaves epochs of concurrent
// edge-insert batches with query phases (degree probes + full BFS), and a
// driver per backend executes it on the simulated clock:
//
//   emu::  — one threadlet per inserted edge, born at the source vertex's
//            home nodelet: it scans the list there, CAS-appends the new
//            half-edge, then migrates to the destination's home for the
//            mirror half.  All mutation happens on the owning nodelet's
//            engine shard, so insertion is lock-free on the host side and
//            deterministic under --engine-threads (the serve_emu pattern).
//   xeon:: — a worker pool drains each batch, taking per-vertex-stripe
//            writer latches (lowest stripe first, so two-latch inserts
//            cannot deadlock) around the scan-and-append critical section —
//            the serialization a lock-based shared-memory STINGER pays.
//
// Every flush epoch the driver snapshots the streamed structure and checks
// it against a from-scratch batch-built graph::Graph over the same insert
// prefix, and every BFS answer against graph::bfs_reference on that
// snapshot — the oracle contract tests/test_stream_graph.cpp re-asserts
// independently.  Per-phase latency (insert / degree / bfs) feeds the same
// serve::PhasedLatency recorder the serving bench uses.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "emu/config.hpp"
#include "graph/graph.hpp"
#include "serve/latency.hpp"
#include "xeon/config.hpp"

namespace emusim::graph {

/// Phase names for the streaming PhasedLatency recorder.
std::vector<std::string> stream_phases();
enum class StreamPhase : std::size_t { insert = 0, degree = 1, bfs = 2 };

struct StreamEdge {
  std::uint32_t u = 0, v = 0;
};

/// Endpoint distribution of generated inserts: uniform, or RMAT-style
/// skewed (hub vertices collect a disproportionate share of edges — the
/// hard case for latch contention and load balance).
enum class EdgeDist { uniform, rmat };
const char* to_string(EdgeDist d);

struct StreamParams {
  std::size_t num_vertices = 1u << 10;
  std::size_t inserts = 1u << 12;  ///< insert ops, duplicates included
  std::size_t epochs = 4;          ///< flush/query epochs
  std::uint32_t batch = 64;        ///< concurrent inserts per dispatch
  EdgeDist dist = EdgeDist::uniform;
  /// Fraction of insert ops that re-insert an already-streamed edge (a real
  /// update stream is full of them); they must commit as no-ops.
  double duplicate_fraction = 0.1;
  std::uint32_t degree_queries = 64;  ///< per epoch
  std::uint32_t bfs_queries = 1;      ///< per epoch
  int threads = 16;                   ///< xeon worker pool width
  std::uint64_t seed = 12;
};

/// The deterministic op stream: inserts split evenly over epochs, plus the
/// per-epoch query sets.  Generated once and shared by both backends, so
/// cross-backend agreement checks compare like with like.
struct StreamWorkload {
  std::size_t num_vertices = 0;
  std::size_t epochs = 0;
  std::vector<StreamEdge> inserts;
  std::vector<std::vector<std::uint32_t>> degree_queries;  ///< per epoch
  std::vector<std::vector<std::uint32_t>> bfs_sources;     ///< per epoch

  std::size_t epoch_begin(std::size_t e) const {
    return e * inserts.size() / epochs;
  }
  std::size_t epoch_end(std::size_t e) const {
    return (e + 1) * inserts.size() / epochs;
  }
};

StreamWorkload make_stream_workload(const StreamParams& p);

/// Host-side streaming adjacency, striped by vertex home.  Append-ordered
/// per-vertex lists with O(degree) duplicate rejection — the functional
/// mirror of the simulated edge blocks.  Both backend drivers mutate one of
/// these through insert_half; under the sharded emu engine each vertex's
/// list is touched only by the shard owning its home nodelet.
class StreamGraph {
 public:
  StreamGraph(std::size_t num_vertices, int nodelets);

  std::size_t num_vertices() const { return adj_.size(); }
  int nodelets() const { return nodelets_; }
  int home(std::uint32_t v) const {
    return static_cast<int>(v % static_cast<std::uint32_t>(nodelets_));
  }

  /// Append v to u's list unless present.  Returns true when appended.
  bool insert_half(std::uint32_t u, std::uint32_t v);
  std::size_t degree(std::uint32_t u) const {
    return adj_[u].size();
  }
  const std::vector<std::uint32_t>& neighbors(std::uint32_t u) const {
    return adj_[u];
  }
  /// Committed half-edges (2x the undirected edge count).
  std::uint64_t half_edges() const {
    return half_edges_.load(std::memory_order_relaxed);
  }

  /// Sorted-CSR snapshot of the current state; equal (row_ptr and adj) to
  /// graph::from_edge_list over the committed inserts.
  Graph snapshot() const;

 private:
  int nodelets_;
  std::vector<std::vector<std::uint32_t>> adj_;
  /// Each adjacency list is mutated only by the engine shard owning its
  /// home nodelet, but this total crosses shards — the one atomic.
  std::atomic<std::uint64_t> half_edges_{0};
};

struct StreamResult {
  Time elapsed = 0;      ///< whole run (inserts + queries), simulated
  Time insert_time = 0;  ///< simulated time inside insert phases only
  std::uint64_t inserts = 0;     ///< insert ops committed
  std::uint64_t new_edges = 0;   ///< distinct undirected edges created
  std::uint64_t degree_queries = 0;
  std::uint64_t bfs_queries = 0;
  double inserts_per_sec = 0.0;  ///< inserts / insert_time
  double ops_per_sec = 0.0;      ///< all ops / elapsed
  std::uint64_t migrations = 0;  ///< emu only
  serve::PhasedLatency lat{stream_phases()};
  bool verified = false;
  std::string error;
};

StreamResult stream_emu(const emu::SystemConfig& cfg, const StreamParams& p);
StreamResult stream_xeon(const xeon::SystemConfig& cfg,
                         const StreamParams& p);

}  // namespace emusim::graph
