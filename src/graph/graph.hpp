// Graph substrate for the streaming-graph motivating application (paper
// §I: STINGER).  CSR adjacency, deterministic generators, and a serial BFS
// reference used to verify the parallel machine kernels.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace emusim::graph {

/// Undirected graph in CSR form (each edge appears in both adjacency
/// lists).  Vertex ids are dense [0, num_vertices).
struct Graph {
  std::size_t num_vertices = 0;
  std::vector<std::int64_t> row_ptr;  ///< num_vertices + 1
  std::vector<std::uint32_t> adj;     ///< concatenated adjacency lists

  std::size_t num_directed_edges() const { return adj.size(); }
  std::size_t degree(std::size_t v) const {
    return static_cast<std::size_t>(row_ptr[v + 1] - row_ptr[v]);
  }
};

/// Build a CSR graph from an explicit edge list, symmetrizing,
/// deduplicating, and dropping self loops — the batch-built oracle the
/// streaming-graph tests compare a StreamGraph snapshot against (the
/// generators below all feed through this).
Graph from_edge_list(std::size_t num_vertices,
                     std::vector<std::pair<std::uint32_t, std::uint32_t>>
                         edges);

/// 2-D grid graph of side `n` (4-neighbour connectivity): diameter 2(n-1),
/// a deep, low-degree BFS workload.
Graph make_grid_2d(std::size_t n);

/// Uniform random graph: `num_vertices` vertices, `avg_degree` expected
/// degree, deterministic in `seed`.  Duplicate edges and self loops are
/// dropped; the result is connected-ish but not guaranteed connected.
Graph make_uniform_random(std::size_t num_vertices, double avg_degree,
                          std::uint64_t seed);

/// RMAT-style scale-free graph (a=0.57, b=c=0.19): 2^scale vertices,
/// edge_factor * 2^scale undirected edges before dedup.  The skewed degree
/// distribution is the hard case for load balance.
Graph make_rmat(int scale, int edge_factor, std::uint64_t seed);

inline constexpr std::uint32_t kBfsUnreached = ~std::uint32_t{0};

/// Serial reference BFS: distance (in hops) from `source` for every vertex,
/// kBfsUnreached where unreachable.
std::vector<std::uint32_t> bfs_reference(const Graph& g, std::size_t source);

/// Structural sanity check used by generators and tests: sorted adjacency,
/// in-range ids, symmetric edges, no self loops.  Returns false with no
/// diagnostics (tests assert on the pieces).
bool validate(const Graph& g);

/// Serial triangle count (each triangle counted once): forward adjacency
/// merge-intersection, the host reference the timed kernels verify against.
/// Tests additionally cross-check this against a brute-force O(V^3) count
/// on small graphs, so the two implementations vouch for each other.
std::uint64_t triangle_count_reference(const Graph& g);

}  // namespace emusim::graph
