#include "tensor/coo.hpp"

#include <algorithm>
#include <tuple>

#include "common/check.hpp"
#include "sim/random.hpp"

namespace emusim::tensor {

CooTensor make_random_tensor(std::size_t dim0, std::size_t dim1,
                             std::size_t dim2, std::size_t nnz,
                             std::uint64_t seed) {
  EMUSIM_CHECK(dim0 >= 1 && dim1 >= 1 && dim2 >= 1);
  sim::Rng rng(seed);
  std::vector<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> coords;
  coords.reserve(nnz);
  for (std::size_t e = 0; e < nnz; ++e) {
    coords.emplace_back(static_cast<std::uint32_t>(rng.below(dim0)),
                        static_cast<std::uint32_t>(rng.below(dim1)),
                        static_cast<std::uint32_t>(rng.below(dim2)));
  }
  std::sort(coords.begin(), coords.end());
  coords.erase(std::unique(coords.begin(), coords.end()), coords.end());

  CooTensor x;
  x.dim0 = dim0;
  x.dim1 = dim1;
  x.dim2 = dim2;
  x.i.reserve(coords.size());
  x.j.reserve(coords.size());
  x.k.reserve(coords.size());
  x.val.reserve(coords.size());
  for (auto [ci, cj, ck] : coords) {
    x.i.push_back(ci);
    x.j.push_back(cj);
    x.k.push_back(ck);
    x.val.push_back(rng.uniform() * 2.0 - 1.0);
  }
  return x;
}

Factor make_factor(std::size_t rows, int rank, std::uint64_t seed) {
  Factor f(rows, rank);
  sim::Rng rng(seed);
  for (auto& v : f.data) v = rng.uniform() * 2.0 - 1.0;
  return f;
}

std::vector<double> mttkrp_reference(const CooTensor& x, const Factor& b,
                                     const Factor& c) {
  EMUSIM_CHECK(b.rows == x.dim1 && c.rows == x.dim2);
  EMUSIM_CHECK(b.rank == c.rank);
  const auto rank = static_cast<std::size_t>(b.rank);
  std::vector<double> m(x.dim0 * rank, 0.0);
  for (std::size_t e = 0; e < x.nnz(); ++e) {
    const double v = x.val[e];
    const double* br = b.row(x.j[e]);
    const double* cr = c.row(x.k[e]);
    double* mr = m.data() + static_cast<std::size_t>(x.i[e]) * rank;
    for (std::size_t r = 0; r < rank; ++r) {
      mr[r] += v * br[r] * cr[r];
    }
  }
  return m;
}

double mttkrp_flops(const CooTensor& x, int rank) {
  return 3.0 * static_cast<double>(x.nnz()) * rank;
}

}  // namespace emusim::tensor
