// Sparse-tensor substrate for the tensor-decomposition motivating
// application (paper §I: ParTI, CP/Tucker decomposition).  Third-order
// tensors in coordinate (COO) form, dense factor matrices, and a serial
// MTTKRP reference — MTTKRP (matricized tensor times Khatri-Rao product)
// being the bandwidth-bound inner kernel of CP-ALS.
#pragma once

#include <cstdint>
#include <vector>

namespace emusim::tensor {

/// Third-order sparse tensor, coordinates sorted by mode-0 index.
struct CooTensor {
  std::size_t dim0 = 0, dim1 = 0, dim2 = 0;
  std::vector<std::uint32_t> i, j, k;
  std::vector<double> val;

  std::size_t nnz() const { return val.size(); }
};

/// Random tensor with `nnz` nonzeros at deterministic coordinates
/// (duplicates collapsed), sorted by i.
CooTensor make_random_tensor(std::size_t dim0, std::size_t dim1,
                             std::size_t dim2, std::size_t nnz,
                             std::uint64_t seed);

/// Dense row-major factor matrix.
struct Factor {
  std::size_t rows = 0;
  int rank = 0;
  std::vector<double> data;  ///< rows x rank

  Factor() = default;
  Factor(std::size_t r, int rk) : rows(r), rank(rk), data(r * static_cast<std::size_t>(rk), 0.0) {}
  double* row(std::size_t r) { return data.data() + r * static_cast<std::size_t>(rank); }
  const double* row(std::size_t r) const {
    return data.data() + r * static_cast<std::size_t>(rank);
  }
};

/// Deterministic factor with entries in [-1, 1).
Factor make_factor(std::size_t rows, int rank, std::uint64_t seed);

/// Mode-0 MTTKRP: M(i,:) += X(i,j,k) * B(j,:) .* C(k,:) over all nonzeros.
/// Returns M as a dim0 x rank row-major matrix.
std::vector<double> mttkrp_reference(const CooTensor& x, const Factor& b,
                                     const Factor& c);

/// Floating-point operations of one MTTKRP (3 per nonzero per rank column).
double mttkrp_flops(const CooTensor& x, int rank);

}  // namespace emusim::tensor
