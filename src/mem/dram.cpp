#include "mem/dram.hpp"

namespace emusim::mem {

DramTiming DramTiming::ncdram_chick() {
  DramTiming t;
  t.transfer_rate_mts = 1600.0;
  t.bus_bits = 8;  // narrow channel: 8-byte word per 8-transfer burst
  t.t_cas = ns(14);
  t.t_rcd = ns(14);
  t.t_rp = ns(14);
  // FPGA soft memory controller + nodelet NoC round trip: a long fixed
  // path, the same order as the Chick's measured 1-2 us migration latency.
  // Calibrated so one Gossamer core approaches STREAM saturation around 32
  // threads (paper Fig 4).
  t.ctrl_latency = ns(550);
  t.banks = 16;
  t.row_bytes = 8 * 1024;
  return t;
}

DramTiming DramTiming::ncdram_fullspeed() {
  DramTiming t = ncdram_chick();
  t.transfer_rate_mts = 2133.0;
  t.ctrl_latency = ns(300);  // hardened controller in the production design
  return t;
}

DramTiming DramTiming::ddr3_1600() {
  DramTiming t;
  t.transfer_rate_mts = 1600.0;
  t.bus_bits = 64;
  t.t_cas = ns(13.75);
  t.t_rcd = ns(13.75);
  t.t_rp = ns(13.75);
  // End-to-end core-to-DRAM path beyond the array timings (ring, home
  // agent, memory controller): calibrated for ~80 ns LLC-miss latency.
  t.ctrl_latency = ns(65);
  t.banks = 32;  // 8 banks x 2 ranks x 2 DIMMs
  t.row_bytes = 8 * 1024;
  return t;
}

DramTiming DramTiming::ddr4_1333() {
  DramTiming t;
  t.transfer_rate_mts = 1333.0;
  t.bus_bits = 64;
  t.t_cas = ns(15);
  t.t_rcd = ns(15);
  t.t_rp = ns(15);
  t.ctrl_latency = ns(70);  // 4-socket E7: longer coherence path
  t.banks = 32;
  t.row_bytes = 8 * 1024;
  return t;
}

Time DramChannel::skip_refresh(Time t) const {
  // The rank is busy for tRFC at the end of every tREFI window (placed at
  // the end so cold-start accesses are not penalized).
  if (timing_.t_refi <= 0) return t;
  const Time phase = t % timing_.t_refi;
  if (phase >= timing_.t_refi - timing_.t_rfc) {
    return t + timing_.t_refi - phase;
  }
  return t;
}

Time DramChannel::access(std::uint64_t addr, std::uint32_t bytes,
                         bool is_write) {
  const std::uint64_t row = addr / timing_.row_bytes;
  const std::size_t bank = bank_of(addr);

  const Time arrival = skip_refresh(eng_->now() + timing_.ctrl_latency);
  const bool hit = open_row_[bank] == row;

  Time cmd_start = std::max(arrival, bank_free_[bank]);
  Time prep = 0;  // precharge + activate when the row buffer misses
  if (!hit) {
    // Activates are additionally rate-limited by the four-activate window.
    cmd_start = std::max(cmd_start, activate_free_);
    activate_free_ = cmd_start + timing_.t_faw / 4;
    prep = timing_.t_rp + timing_.t_rcd;
  }

  // CAS latency pipelines across column commands: the bank is busy for the
  // prep plus the column/burst occupancy, while the data itself arrives a
  // CAS latency later.
  const Time burst = timing_.burst_time(bytes);
  const Time data_ready = cmd_start + prep + timing_.t_cas;
  // The refresh window blocks the data bus as well as new arrivals.
  const Time burst_start = skip_refresh(std::max(data_ready, bus_free_));
  const Time done = burst_start + burst;

  bus_free_ = done;
  bus_busy_ += burst;
  bank_free_[bank] = cmd_start + prep + burst;
  open_row_[bank] = row;

  if (is_write) {
    ++stats_.writes;
  } else {
    ++stats_.reads;
  }
  if (hit) {
    ++stats_.row_hits;
  } else {
    ++stats_.row_misses;
  }
  stats_.bytes += bytes;
  return done;
}

}  // namespace emusim::mem
