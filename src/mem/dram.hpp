// DRAM channel timing model.
//
// Captures the two effects the paper's benchmarks hinge on:
//   * a serialized data bus whose burst time scales with the transfer size
//     and bus width — narrow-channel DRAM (NCDRAM, 8-bit) moves an 8-byte
//     word in one burst at full efficiency, while a 64-bit channel moves a
//     64-byte line per burst;
//   * per-bank open-row state — accesses that hit the open row pay tCAS,
//     accesses to a different row pay precharge + activate + CAS.  This is
//     what creates the Xeon's DRAM-page locality peak in pointer chasing.
//
// Requests are serviced in arrival order.  Bank activity overlaps across
// banks; only data bursts serialize on the bus.  That is a simplification of
// FR-FCFS controllers, but preserves the bandwidth/locality shapes.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace emusim::mem {

using sim::Engine;

struct DramTiming {
  double transfer_rate_mts = 1600.0;  ///< mega-transfers per second
  int bus_bits = 64;                  ///< data bus width
  Time t_cas = ns(14);                ///< column access (open row)
  Time t_rcd = ns(14);                ///< activate-to-column
  Time t_rp = ns(14);                 ///< precharge
  Time ctrl_latency = ns(20);         ///< controller/PHY fixed overhead
  Time t_faw = ns(40);                ///< four-activate window (activate rate)
  Time t_refi = us(7.8);              ///< refresh interval (0 disables)
  Time t_rfc = ns(350);               ///< refresh cycle (rank busy)
  int banks = 16;
  std::size_t row_bytes = 8 * 1024;   ///< row-buffer (DRAM page) size

  /// Peak data-bus bandwidth in bytes/sec.
  double bytes_per_sec() const {
    return transfer_rate_mts * 1e6 * bus_bits / 8.0;
  }

  /// Minimum transfer per access: one BL8 burst (8 transfers x bus width).
  /// This is the crux of the narrow-channel argument — an 8-bit NCDRAM
  /// channel's minimum burst is 8 bytes, a 64-bit channel's is 64 bytes, so
  /// small requests waste most of a wide bus's occupancy.
  std::size_t min_burst_bytes() const {
    return static_cast<std::size_t>(bus_bits);  // 8 transfers x bits/8 bytes
  }

  /// Time the data bus is occupied transferring `bytes`.
  Time burst_time(std::size_t bytes) const {
    const std::size_t moved = bytes < min_burst_bytes() ? min_burst_bytes()
                                                        : bytes;
    return transfer_time(static_cast<double>(moved), bytes_per_sec());
  }

  // --- Configurations used by the reproduction -------------------------
  /// Emu Chick hardware: NCDRAM, 8-bit bus, DDR4 chips clocked at 1600 MT/s.
  /// Controller overhead reflects the FPGA memory path (calibrated so the
  /// single-nodelet STREAM saturation knee lands near 32 threads, Fig 4).
  static DramTiming ncdram_chick();
  /// Full-speed Emu design point: NCDRAM at DDR4-2133.
  static DramTiming ncdram_fullspeed();
  /// Sandy Bridge server channel: 64-bit DDR3-1600 (12.8 GB/s/channel).
  static DramTiming ddr3_1600();
  /// Haswell E7 server channel: 64-bit DDR4 clocked at 1333 MT/s.
  static DramTiming ddr4_1333();
};

struct DramStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t bytes = 0;
};

class DramChannel {
 public:
  DramChannel(Engine& eng, const DramTiming& timing)
      : eng_(&eng),
        timing_(timing),
        bank_free_(static_cast<std::size_t>(timing.banks), 0),
        open_row_(static_cast<std::size_t>(timing.banks), kNoRow) {}

  /// Awaitable read: the caller resumes when the data arrives.
  auto read(std::uint64_t addr, std::uint32_t bytes) {
    struct Awaiter {
      DramChannel& ch;
      std::uint64_t addr;
      std::uint32_t bytes;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        const Time done = ch.access(addr, bytes, /*is_write=*/false);
        ch.eng_->schedule(done, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, addr, bytes};
  }

  /// Posted write: accounted against bus/bank state but the caller does not
  /// wait for completion (write data is buffered by the controller).
  Time write(std::uint64_t addr, std::uint32_t bytes) {
    return access(addr, bytes, /*is_write=*/true);
  }

  /// Timing core, exposed for prefetchers and tests: account one access and
  /// return its completion time.
  Time access(std::uint64_t addr, std::uint32_t bytes, bool is_write);

  /// Push `t` past the refresh blackout at the end of its tREFI window.
  Time skip_refresh(Time t) const;

  /// Bank selection uses a hashed row index, as real controllers do —
  /// without it, same-stride streams (e.g. STREAM's three arrays allocated
  /// a power-of-two apart) alias into one bank and thrash its row buffer.
  std::size_t bank_of(std::uint64_t addr) const {
    std::uint64_t z = addr / timing_.row_bytes;
    z ^= z >> 33;
    z *= 0xFF51AFD7ED558CCDULL;
    z ^= z >> 33;
    return static_cast<std::size_t>(
        z % static_cast<std::uint64_t>(timing_.banks));
  }

  const DramStats& stats() const { return stats_; }
  const DramTiming& timing() const { return timing_; }
  /// Total time the data bus has been occupied (for utilization).
  Time bus_busy_time() const { return bus_busy_; }
  Time bus_free_at() const { return bus_free_; }

 private:
  static constexpr std::uint64_t kNoRow = ~0ULL;

  Engine* eng_;
  DramTiming timing_;
  std::vector<Time> bank_free_;
  std::vector<std::uint64_t> open_row_;
  Time bus_free_ = 0;
  Time bus_busy_ = 0;
  Time activate_free_ = 0;  ///< next time an activate may issue (tFAW/4)
  DramStats stats_;
};

}  // namespace emusim::mem
