#include "xeon/cache.hpp"

namespace emusim::xeon {

namespace {
std::uint64_t floor_pow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}
}  // namespace

SetAssocCache::SetAssocCache(std::size_t capacity_bytes, int ways,
                             int line_bytes)
    : ways_(ways), line_bytes_(line_bytes) {
  EMUSIM_CHECK(ways >= 1 && line_bytes >= 8);
  const std::uint64_t total_lines =
      capacity_bytes / static_cast<std::size_t>(line_bytes);
  EMUSIM_CHECK(total_lines >= static_cast<std::uint64_t>(ways));
  num_sets_ = floor_pow2(total_lines / static_cast<std::uint64_t>(ways));
  lines_.assign(num_sets_ * static_cast<std::uint64_t>(ways_), Line{});
}

SetAssocCache::Line* SetAssocCache::lookup(std::uint64_t addr) {
  const std::uint64_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  Line* base = &lines_[set * static_cast<std::uint64_t>(ways_)];
  for (int w = 0; w < ways_; ++w) {
    if (base[w].tag == tag) {
      base[w].last_use = ++use_clock_;
      ++stats.hits;
      return &base[w];
    }
  }
  ++stats.misses;
  return nullptr;
}

bool SetAssocCache::contains(std::uint64_t addr) const {
  const std::uint64_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  const Line* base = &lines_[set * static_cast<std::uint64_t>(ways_)];
  for (int w = 0; w < ways_; ++w) {
    if (base[w].tag == tag) return true;
  }
  return false;
}

SetAssocCache::Victim SetAssocCache::insert(std::uint64_t addr, Time ready_at,
                                            bool dirty) {
  const std::uint64_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  Line* base = &lines_[set * static_cast<std::uint64_t>(ways_)];
  Line* victim = &base[0];
  for (int w = 0; w < ways_; ++w) {
    if (base[w].tag == tag) {  // refresh an in-flight/present line
      base[w].ready_at = std::min(base[w].ready_at, ready_at);
      base[w].dirty = base[w].dirty || dirty;
      return {};
    }
    if (base[w].tag == kInvalid) {
      victim = &base[w];
      break;
    }
    if (base[w].last_use < victim->last_use) victim = &base[w];
  }

  Victim out;
  if (victim->tag != kInvalid) {
    ++stats.evictions;
    if (victim->dirty) {
      ++stats.writebacks;
      out.evicted_dirty = true;
      out.dirty_addr = victim->tag * static_cast<std::uint64_t>(line_bytes_);
    }
  }
  victim->tag = tag;
  victim->ready_at = ready_at;
  victim->dirty = dirty;
  victim->last_use = ++use_clock_;
  return out;
}

}  // namespace emusim::xeon
