#include "xeon/machine.hpp"

namespace emusim::xeon {

Machine::Machine(const SystemConfig& cfg)
    : cfg_(cfg), llc_(cfg.llc_bytes, cfg.llc_ways, cfg.line_bytes) {
  EMUSIM_CHECK(cfg.cores >= 1 && cfg.channels >= 1);
  for (int c = 0; c < cfg.channels; ++c) channels_.emplace_back(eng_, cfg.dram);
  for (int c = 0; c < cfg.cores; ++c) cores_.emplace_back(eng_, cfg_);
}

std::uint64_t Machine::allocate(std::uint64_t bytes, std::uint64_t align) {
  EMUSIM_CHECK(align > 0 && (align & (align - 1)) == 0);
  brk_ = (brk_ + align - 1) & ~(align - 1);
  const std::uint64_t addr = brk_;
  brk_ += bytes;
  return addr;
}

void Machine::install_line(std::uint64_t line, Time ready_at, bool dirty) {
  const auto victim = llc_.insert(line, ready_at, dirty);
  if (victim.evicted_dirty) {
    channel_of(victim.dirty_addr)
        .write(channel_local_addr(victim.dirty_addr),
               static_cast<std::uint32_t>(cfg_.line_bytes));
  }
}

void Machine::prefetch_advance(int core_idx, std::uint64_t line) {
  Core& c = core(core_idx);
  const std::uint64_t line_sz = static_cast<std::uint64_t>(cfg_.line_bytes);

  // Match the access against the core's tracked streams: a repeat of a
  // stream head is ignored, a successor advances the stream, anything else
  // reallocates the least-recently-used detector slot.
  Core::Stream* s = nullptr;
  Core::Stream* lru = &c.streams[0];
  for (auto& st : c.streams) {
    if (st.last_line == line) return;  // revisit within the line
    if (st.last_line != ~0ULL && line == st.last_line + line_sz) {
      s = &st;
      break;
    }
    if (st.last_use < lru->last_use) lru = &st;
  }
  if (s != nullptr) {
    ++s->run_length;
  } else {
    s = lru;
    s->run_length = 1;
  }
  s->last_line = line;
  s->last_use = ++c.stream_clock;
  if (s->run_length < cfg_.prefetch_trigger) return;

  for (int k = 1; k <= cfg_.prefetch_degree; ++k) {
    const std::uint64_t pl = line + static_cast<std::uint64_t>(k) * line_sz;
    if (llc_.contains(pl)) continue;
    const Time done = channel_of(pl).access(
        channel_local_addr(pl), static_cast<std::uint32_t>(cfg_.line_bytes),
        /*is_write=*/false);
    install_line(pl, done + cfg_.hit_latency, /*dirty=*/false);
    ++stats.prefetches;
  }
}

void Machine::issue_fill(int core_idx, std::uint64_t line,
                         std::coroutine_handle<> h) {
  Time done = channel_of(line).access(
      channel_local_addr(line), static_cast<std::uint32_t>(cfg_.line_bytes),
      /*is_write=*/false);
  // Cross-socket fills pay the QPI hop on top of the DRAM access.
  if (socket_of_addr(line) != socket_of_core(core_idx)) {
    done += cfg_.remote_socket_latency;
  }
  install_line(line, done, /*dirty=*/false);
  eng_.call_at(done, [this, core_idx] { core(core_idx).lfb_release(); });
  eng_.schedule(done, h);
}

void Machine::demand_load(int core_idx, std::uint64_t addr,
                          std::coroutine_handle<> h) {
  const std::uint64_t line = llc_.line_addr(addr);
  prefetch_advance(core_idx, line);
  if (auto* e = llc_.lookup(line)) {
    const Time usable = std::max(eng_.now() + cfg_.hit_latency, e->ready_at);
    eng_.schedule(usable, h);
    return;
  }
  ++stats.demand_misses;
  Core& c = core(core_idx);
  if (c.lfb_try_acquire()) {
    issue_fill(core_idx, line, h);
  } else {
    c.lfb_wait([this, core_idx, line, h] { issue_fill(core_idx, line, h); });
  }
}

void Machine::posted_store(int core_idx, std::uint64_t addr) {
  const std::uint64_t line = llc_.line_addr(addr);
  if (auto* e = llc_.lookup(line)) {
    e->dirty = true;
    return;
  }
  // Write-allocate: fetch the line (RFO) and install it dirty.  Posted —
  // the store buffer hides the latency; bandwidth is still charged.
  (void)core_idx;
  const Time done = channel_of(line).access(
      channel_local_addr(line), static_cast<std::uint32_t>(cfg_.line_bytes),
      /*is_write=*/false);
  install_line(line, done, /*dirty=*/true);
}

void Machine::posted_store_nt(std::uint64_t line_addr) {
  channel_of(line_addr)
      .write(channel_local_addr(line_addr),
             static_cast<std::uint32_t>(cfg_.line_bytes));
}

namespace {

sim::Task pool_worker(Machine* m, CpuContext ctx, std::vector<TaskFn>* tasks,
                      std::size_t* next, int overhead_cycles) {
  while (*next < tasks->size()) {
    const std::size_t i = (*next)++;
    if (overhead_cycles > 0) {
      co_await ctx.compute(static_cast<std::uint64_t>(overhead_cycles));
    }
    co_await (*tasks)[i](ctx);
    ++m->stats.tasks_run;
  }
}

}  // namespace

Time run_task_pool(Machine& m, int threads, std::vector<TaskFn> tasks,
                   int per_task_overhead_cycles) {
  EMUSIM_CHECK(threads >= 1);
  const Time t0 = m.engine().now();
  std::size_t next = 0;
  std::vector<sim::Task> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.push_back(pool_worker(&m, CpuContext(m, t % m.cfg().cores),
                                  &tasks, &next, per_task_overhead_cycles));
  }
  for (auto& w : workers) w.start();
  m.engine().run();
  return m.engine().now() - t0;
}

}  // namespace emusim::xeon
