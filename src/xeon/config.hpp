// Configurations of the cache-based comparison platforms (paper §III-C).
//
//   sandy_bridge — dual-socket Xeon E5-2670: 16 cores @ 2.6 GHz, 20 MiB
//                  shared L3 per socket, 4 channels of DDR3-1600
//                  (51.2 GB/s peak).  Used for STREAM and pointer chasing.
//   haswell      — quad-socket Xeon E7-4850 v3: 56 cores @ 2.2 GHz, 35 MiB
//                  L3 per socket, DDR4 clocked at 1333 MT/s.  Used for SpMV.
//
// The model folds the per-socket L3s into one shared last-level cache and
// interleaves physical lines across all channels (the paper's runs use
// numactl --interleave), which preserves the bandwidth/locality behaviour
// these benchmarks exercise.
#pragma once

#include <cstdint>
#include <string>

#include "mem/dram.hpp"

namespace emusim::xeon {

struct SystemConfig {
  std::string name = "sandy_bridge";

  // --- cores --------------------------------------------------------------
  int cores = 16;
  int sockets = 2;
  /// Added load-to-use latency when a line's home memory is on another
  /// socket (QPI hop).  With numactl --interleave, (sockets-1)/sockets of
  /// all lines are remote to any given core.
  Time remote_socket_latency = ns(50);
  double clock_hz = 2.6e9;
  /// Line-fill buffers per core: the per-core limit on outstanding misses.
  int lfb_per_core = 10;

  // --- cache ---------------------------------------------------------------
  std::size_t llc_bytes = std::size_t{40} << 20;
  int llc_ways = 20;
  int line_bytes = 64;
  Time hit_latency = ns(22);  ///< load-to-use for a cache hit (L2/L3 blend;
                              ///< single-pass kernels rarely hit in L1)

  // --- memory --------------------------------------------------------------
  mem::DramTiming dram = mem::DramTiming::ddr3_1600();
  int channels = 4;
  std::size_t channel_interleave_bytes = 256;

  // --- hardware prefetch ----------------------------------------------------
  int prefetch_trigger = 2;  ///< sequential line misses before streaming
  int prefetch_degree = 12;  ///< lines fetched ahead of a detected stream

  // --- software (Cilk runtime model) ----------------------------------------
  int spawn_overhead_cycles = 3000;  ///< per-task cost of cilk_spawn/steal
  int for_chunk_overhead_cycles = 150;  ///< per-chunk cost of cilk_for

  double peak_bytes_per_sec() const {
    return dram.bytes_per_sec() * channels;
  }
  Time cycle() const { return period_from_hz(clock_hz); }

  static SystemConfig sandy_bridge();
  static SystemConfig haswell();
};

}  // namespace emusim::xeon
