#include "xeon/config.hpp"

namespace emusim::xeon {

SystemConfig SystemConfig::sandy_bridge() {
  SystemConfig c;
  c.name = "sandy_bridge";
  c.cores = 16;
  c.clock_hz = 2.6e9;
  c.lfb_per_core = 10;
  // One socket's L3: threads mostly hit their own socket's cache, so the
  // per-socket capacity is the right working-set threshold.
  c.llc_bytes = std::size_t{20} << 20;
  c.llc_ways = 20;
  c.hit_latency = ns(22);
  c.dram = mem::DramTiming::ddr3_1600();
  c.channels = 4;  // 51.2 GB/s peak, as in the paper
  return c;
}

SystemConfig SystemConfig::haswell() {
  SystemConfig c;
  c.name = "haswell";
  c.cores = 56;  // 4 sockets x 14 cores
  c.sockets = 4;
  c.remote_socket_latency = ns(70);
  c.clock_hz = 2.2e9;
  c.lfb_per_core = 10;
  c.llc_bytes = std::size_t{35} << 20;  // one socket's L3
  c.llc_ways = 20;
  c.hit_latency = ns(20);
  c.dram = mem::DramTiming::ddr4_1333();  // rated 2133, clocked 1333
  c.channels = 16;                        // 4 channels per socket
  return c;
}

}  // namespace emusim::xeon
