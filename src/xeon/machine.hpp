// The cache-based comparison machine (Sandy Bridge / Haswell Xeon model).
//
// Worker threads are coroutines bound to cores.  A load probes the shared
// LLC; a hit costs the blended hit latency, a miss takes a line-fill buffer
// (the per-core MLP limit), fetches the full 64-byte line from the line's
// home DDR channel (row-buffer model in mem/dram), and installs it in the
// cache.  A per-core stream prefetcher watches the demand line sequence and
// runs ahead of sequential streams, occupying channel bandwidth but hiding
// latency.  Stores are posted (write-allocate + write-back, or non-temporal
// for streaming kernels).
//
// The fork-join runtime is modeled as a central task pool: workers pull the
// next task when free, paying a per-task scheduling overhead — cilk_for
// corresponds to many cheap chunks, cilk_spawn with grain g to n/g tasks at
// the (higher) spawn/steal overhead, and an MKL-like static schedule to one
// pre-sized chunk per worker at zero pull overhead.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "mem/dram.hpp"
#include "sim/callback.hpp"
#include "sim/engine.hpp"
#include "sim/op.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"
#include "xeon/cache.hpp"
#include "xeon/config.hpp"

namespace emusim::xeon {

class Machine;

struct XeonStats {
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t demand_misses = 0;
  std::uint64_t prefetches = 0;
  std::uint64_t nt_stores = 0;
  std::uint64_t tasks_run = 0;
};

/// Per-core state: the compute pipeline (FIFO when hyperthreads share the
/// core), line-fill buffers, and the prefetcher's stream detector.
class Core {
 public:
  Core(sim::Engine& eng, const SystemConfig& cfg)
      : compute(eng), lfb_free_(cfg.lfb_per_core) {}

  sim::FifoServer compute;

  bool lfb_try_acquire() {
    if (lfb_free_ > 0) {
      --lfb_free_;
      return true;
    }
    return false;
  }
  void lfb_wait(sim::SmallFn fn) { lfb_waiters_.push_back(std::move(fn)); }
  void lfb_release() {
    if (!lfb_waiters_.empty()) {
      auto fn = std::move(lfb_waiters_.front());
      lfb_waiters_.pop_front();
      fn();  // the waiter inherits the buffer
    } else {
      ++lfb_free_;
    }
  }

  // Prefetch stream detectors: real stream prefetchers track several
  // concurrent streams per core (STREAM alone interleaves two source
  // streams; hyperthreads add more).
  struct Stream {
    std::uint64_t last_line = ~0ULL;
    int run_length = 0;
    std::uint64_t last_use = 0;
  };
  static constexpr int kNumStreams = 16;
  Stream streams[kNumStreams];
  std::uint64_t stream_clock = 0;

 private:
  int lfb_free_;
  std::deque<sim::SmallFn> lfb_waiters_;
};

class Machine {
 public:
  explicit Machine(const SystemConfig& cfg);
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  sim::Engine& engine() { return eng_; }
  const SystemConfig& cfg() const { return cfg_; }
  SetAssocCache& llc() { return llc_; }
  Core& core(int i) { return cores_[static_cast<std::size_t>(i)]; }

  mem::DramChannel& channel(int i) {
    return channels_[static_cast<std::size_t>(i)];
  }

  mem::DramChannel& channel_of(std::uint64_t addr) {
    const auto idx = (addr / cfg_.channel_interleave_bytes) %
                     static_cast<std::uint64_t>(cfg_.channels);
    return channels_[static_cast<std::size_t>(idx)];
  }

  /// Socket that owns a line (channels are interleaved round-robin across
  /// sockets) and the socket a core belongs to.
  int socket_of_addr(std::uint64_t addr) const {
    const auto ch = (addr / cfg_.channel_interleave_bytes) %
                    static_cast<std::uint64_t>(cfg_.channels);
    return static_cast<int>(ch % static_cast<std::uint64_t>(cfg_.sockets));
  }
  int socket_of_core(int core) const {
    return core / (cfg_.cores / cfg_.sockets);
  }

  /// The address as seen by the owning channel's DRAM: global addresses are
  /// interleaved across channels, so the channel-local image is compacted.
  /// Row-buffer state must be keyed on this, not the global address — a
  /// sequential stream fills an entire local row before moving on.
  std::uint64_t channel_local_addr(std::uint64_t addr) const {
    const std::uint64_t il = cfg_.channel_interleave_bytes;
    const std::uint64_t chunk = addr / il;
    return (chunk / static_cast<std::uint64_t>(cfg_.channels)) * il +
           addr % il;
  }

  /// Bump-allocate simulated physical memory (so kernels get realistic
  /// row/channel interleaving).
  std::uint64_t allocate(std::uint64_t bytes, std::uint64_t align = 64);

  XeonStats stats;

  // --- internals used by CpuContext ---------------------------------------
  /// Timing for a demand load at `addr`: schedules `h` when the data is
  /// usable.  Called from the load awaiter.
  void demand_load(int core, std::uint64_t addr, std::coroutine_handle<> h);
  /// Posted store with write-allocate + write-back semantics.
  void posted_store(int core, std::uint64_t addr);
  /// Posted non-temporal (streaming) store of a whole line.
  void posted_store_nt(std::uint64_t line_addr);

 private:
  void issue_fill(int core, std::uint64_t line, std::coroutine_handle<> h);
  void prefetch_advance(int core, std::uint64_t line);
  void install_line(std::uint64_t line, Time ready_at, bool dirty);

  SystemConfig cfg_;
  sim::Engine eng_;
  SetAssocCache llc_;
  std::deque<mem::DramChannel> channels_;
  std::deque<Core> cores_;
  std::uint64_t brk_ = 0;
};

/// Handle through which kernel code running on a worker thread performs
/// timed operations.
class CpuContext {
 public:
  CpuContext(Machine& m, int core) : m_(&m), core_(core) {}

  Machine& machine() { return *m_; }
  int core() const { return core_; }

  /// Awaitable: `cycles` of computation on this core (FIFO-shared when
  /// several worker threads map to the same core).
  auto compute(std::uint64_t cycles) {
    return m_->core(core_).compute.access(static_cast<Time>(cycles) *
                                          m_->cfg().cycle());
  }

  /// Awaitable: blocking load of the line containing `addr`.
  auto load(std::uint64_t addr) {
    struct Awaiter {
      Machine& m;
      int core;
      std::uint64_t addr;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        m.demand_load(core, addr, h);
      }
      void await_resume() const noexcept {}
    };
    ++m_->stats.loads;
    return Awaiter{*m_, core_, addr};
  }

  /// Posted store (write-allocate, write-back).
  void store(std::uint64_t addr) {
    ++m_->stats.stores;
    m_->posted_store(core_, addr);
  }

  /// Posted streaming store of the whole line containing `addr` (used by
  /// STREAM: no RFO, no cache pollution).
  void store_nt(std::uint64_t addr) {
    ++m_->stats.nt_stores;
    m_->posted_store_nt(m_->llc().line_addr(addr));
  }

 private:
  Machine* m_;
  int core_;
};

/// A unit of work for the task-pool runtime.
using TaskFn = std::function<sim::Op<>(CpuContext&)>;

/// Run `tasks` on `threads` workers (round-robin over physical cores,
/// modeling hyperthreads beyond cfg.cores).  Each pull from the pool costs
/// `per_task_overhead_cycles` on the worker.  Returns elapsed time.
Time run_task_pool(Machine& m, int threads, std::vector<TaskFn> tasks,
                   int per_task_overhead_cycles);

}  // namespace emusim::xeon
