// Shared last-level cache: set-associative, LRU, write-back/write-allocate.
//
// Entries carry a `ready_at` time so lines can be inserted the moment their
// fill is *issued*: a subsequent access to an in-flight line hits but may
// not use the data before `ready_at`.  This gives miss-merging and lets the
// prefetcher insert future lines without extra machinery.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"

namespace emusim::xeon {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
  double hit_rate() const {
    const auto total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total)
                 : 0.0;
  }
};

class SetAssocCache {
 public:
  /// `capacity_bytes` split into `ways`-associative sets of `line_bytes`
  /// lines.  The set count is rounded down to a power of two.
  SetAssocCache(std::size_t capacity_bytes, int ways, int line_bytes);

  struct Line {
    std::uint64_t tag = kInvalid;
    Time ready_at = 0;
    std::uint64_t last_use = 0;
    bool dirty = false;
  };

  /// Probe for the line containing `addr`; nullptr on miss.  Touches LRU.
  Line* lookup(std::uint64_t addr);
  /// True if the line is present (no LRU update; used by the prefetcher).
  bool contains(std::uint64_t addr) const;

  struct Victim {
    bool evicted_dirty = false;
    std::uint64_t dirty_addr = 0;  ///< line address needing writeback
  };
  /// Install the line containing `addr` (evicting LRU if needed); the line
  /// becomes usable at `ready_at`.  Returns writeback info for the victim.
  Victim insert(std::uint64_t addr, Time ready_at, bool dirty);

  std::uint64_t line_addr(std::uint64_t addr) const {
    return addr & ~(static_cast<std::uint64_t>(line_bytes_) - 1);
  }
  int line_bytes() const { return line_bytes_; }

  CacheStats stats;

 private:
  static constexpr std::uint64_t kInvalid = ~0ULL;
  std::uint64_t set_of(std::uint64_t addr) const {
    return (addr / static_cast<std::uint64_t>(line_bytes_)) &
           (num_sets_ - 1);
  }
  std::uint64_t tag_of(std::uint64_t addr) const {
    return addr / static_cast<std::uint64_t>(line_bytes_);
  }

  int ways_;
  int line_bytes_;
  std::uint64_t num_sets_;
  std::uint64_t use_clock_ = 0;
  std::vector<Line> lines_;  // num_sets_ * ways_, set-major
};

}  // namespace emusim::xeon
