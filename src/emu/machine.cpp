#include "emu/machine.hpp"

namespace emusim::emu {

namespace {
// Thread-local: the parallel sweep runner (bench/sweep_pool.hpp) installs a
// per-job observer on its worker thread, so observation never crosses
// threads and workers cannot see each other's machines.
thread_local MachineObserver* g_machine_observer = nullptr;

// Per-thread event-storage hint fed back from finished machines: a sweep
// reusing one worker thread for same-shaped points pre-sizes the next
// Engine to the largest footprint seen so far (a stable fixed point — see
// sim::Engine::footprint()).
thread_local std::size_t g_engine_footprint_hint = 0;
}  // namespace

MachineObserver* set_machine_observer(MachineObserver* obs) {
  MachineObserver* prev = g_machine_observer;
  g_machine_observer = obs;
  return prev;
}

MachineObserver* machine_observer() { return g_machine_observer; }

Nodelet::Nodelet(sim::Engine& eng, const SystemConfig& cfg, int index)
    : index_(index),
      channel_(eng, cfg.dram),
      slots_(eng, cfg.slots_per_nodelet()) {
  cores_.reserve(static_cast<std::size_t>(cfg.gcs_per_nodelet));
  for (int i = 0; i < cfg.gcs_per_nodelet; ++i) cores_.emplace_back(eng);
}

std::uint64_t Nodelet::allocate(std::uint64_t bytes, std::uint64_t align) {
  EMUSIM_CHECK(align > 0 && (align & (align - 1)) == 0);
  brk_ = (brk_ + align - 1) & ~(align - 1);
  const std::uint64_t addr = brk_;
  brk_ += bytes;
  return addr;
}

Machine::Machine(const SystemConfig& cfg)
    : cfg_(cfg), cycle_(cfg.cycle()) {
  EMUSIM_CHECK(cfg.nodes >= 1 && cfg.nodelets_per_node >= 1);
  if (g_engine_footprint_hint > 0) eng_.reserve(g_engine_footprint_hint);
  EMUSIM_CHECK(cfg.gcs_per_nodelet >= 1 && cfg.threadlet_slots_per_gc >= 1);
  for (int n = 0; n < cfg.nodes; ++n) {
    nodes_.emplace_back(eng_, cfg_);
  }
  for (int i = 0; i < cfg.total_nodelets(); ++i) {
    nodelets_.emplace_back(eng_, cfg_, i);
  }
  if (g_machine_observer != nullptr) g_machine_observer->machine_created(*this);
}

Machine::~Machine() {
  // Counters, stats, and the trace are still intact here; the observer gets
  // the machine's final simulated time as the run's elapsed time.
  if (g_machine_observer != nullptr) {
    g_machine_observer->machine_finished(*this, eng_.now());
  }
  if (eng_.footprint() > g_engine_footprint_hint) {
    g_engine_footprint_hint = eng_.footprint();
  }
}

sim::Op<> Context::atomic_fetch_remote(int nlet, std::uint64_t addr) {
  Machine& m = *machine_;
  Nodelet& n = m.nodelet(nlet);
  ++n.stats.atomics_in;
  m.trace.record(engine().now(), sim::TraceKind::remote_atomic, nlet,
                 nodelet_, 0, tid_);
  // Request/response each ride the nodelet fabric (approximated by half a
  // migration-engine latency each way) around the remote RMW.
  const Time hop = m.cfg().migration_latency / 2;
  co_await engine().sleep(hop);
  n.channel().write(addr, 8);  // the remote read-modify-write
  n.channel().write(addr, 8);
  co_await engine().sleep(hop);
}

sim::Op<> Context::migrate_to(int dest) {
  if (dest == nodelet_) co_return;
  const Time t0 = engine().now();
  Machine& m = *machine_;
  const int src = nodelet_;  // depart()/arrive() rewrite nodelet_
  const int src_node = m.node_index_of(src);
  const int dst_node = m.node_index_of(dest);

  depart();  // the context leaves the source threadlet slot immediately
  ++m.stats.migrations;
  m.trace.record(t0, sim::TraceKind::migrate_out, src, dest, 0, tid_);

  co_await m.node(src_node).migration_engine().pass();
  if (src_node != dst_node) {
    ++m.stats.internode_migrations;
    const Time wire =
        transfer_time(static_cast<double>(m.cfg().thread_context_bytes),
                      m.cfg().internode_bytes_per_sec);
    co_await m.node(src_node).link().access(wire);
    co_await engine().sleep(m.cfg().internode_latency);
    co_await m.node(dst_node).migration_engine().pass();
  }
  co_await m.nodelet(dest).slots().acquire();
  arrive(dest);
  // b is the source *nodelet* (the header's contract); this used to record
  // the source node index, which collapses to 0 on any single-node config.
  m.trace.record(engine().now(), sim::TraceKind::migrate_in, dest, src, 0,
                 tid_);
  m.stats.migration_latency_ns.add(
      static_cast<std::uint64_t>((engine().now() - t0) / kNanosecond));
}

}  // namespace emusim::emu
