#include "emu/machine.hpp"

namespace emusim::emu {

namespace {
// Thread-local: the parallel sweep runner (bench/sweep_pool.hpp) installs a
// per-job observer on its worker thread, so observation never crosses
// threads and workers cannot see each other's machines.
thread_local MachineObserver* g_machine_observer = nullptr;

// Per-thread event-storage hint fed back from finished machines: a sweep
// reusing one worker thread for same-shaped points pre-sizes the next
// Engine to the largest footprint seen so far (a stable fixed point — see
// sim::Engine::footprint()).
thread_local std::size_t g_engine_footprint_hint = 0;

// Per-thread intra-point engine parallelism (see set_engine_threads()).
// Thread-local for the same reason as the observer: each sweep worker
// decides independently how its machines run their shards.
thread_local int g_engine_threads = 1;

// Per-thread engine shard granularity (see set_engine_shard()).
thread_local EngineShard g_engine_shard = EngineShard::node;

// Per-thread run telemetry (see RunTelemetry in the header): machines fold
// their engine event counts and footprint peak in at destruction; benches
// consume with take_run_telemetry() after a point's machines are gone.
thread_local RunTelemetry g_run_telemetry;
}  // namespace

MachineObserver* set_machine_observer(MachineObserver* obs) {
  MachineObserver* prev = g_machine_observer;
  g_machine_observer = obs;
  return prev;
}

MachineObserver* machine_observer() { return g_machine_observer; }

int set_engine_threads(int n) {
  const int prev = g_engine_threads;
  g_engine_threads = n < 1 ? 1 : n;
  return prev;
}

int engine_threads() { return g_engine_threads; }

EngineShard set_engine_shard(EngineShard mode) {
  const EngineShard prev = g_engine_shard;
  g_engine_shard = mode;
  return prev;
}

EngineShard engine_shard() { return g_engine_shard; }

RunTelemetry take_run_telemetry() {
  const RunTelemetry r = g_run_telemetry;
  g_run_telemetry = RunTelemetry{};
  return r;
}

Nodelet::Nodelet(sim::Engine& eng, const SystemConfig& cfg, int index)
    : index_(index),
      channel_(eng, cfg.dram),
      slots_(eng, cfg.slots_per_nodelet()) {
  cores_.reserve(static_cast<std::size_t>(cfg.gcs_per_nodelet));
  for (int i = 0; i < cfg.gcs_per_nodelet; ++i) cores_.emplace_back(eng);
}

std::uint64_t Nodelet::allocate(std::uint64_t bytes, std::uint64_t align) {
  EMUSIM_CHECK(align > 0 && (align & (align - 1)) == 0);
  brk_ = (brk_ + align - 1) & ~(align - 1);
  const std::uint64_t addr = brk_;
  brk_ += bytes;
  return addr;
}

Machine::Machine(const SystemConfig& cfg)
    : cfg_(cfg),
      shards_per_node_(g_engine_shard == EngineShard::nodelet && cfg.nodes > 0
                           ? cfg.nodelets_per_node
                           : 1),
      set_(static_cast<std::size_t>(
          (cfg.nodes > 0 ? cfg.nodes : 1) * shards_per_node_)),
      cycle_(cfg.cycle()),
      next_tid_(set_.shards(), 0) {
  cfg.validate();
  if (shards_per_node_ > 1) {
    // Two-level windows: the shards of one node run under the intra-node
    // hop lookahead inside each inter-node-lookahead outer window.
    EMUSIM_CHECK(cfg.intranode_hop() > 0);
    set_.set_hierarchy(static_cast<std::size_t>(shards_per_node_),
                       cfg.intranode_hop());
  }
  if (g_engine_footprint_hint > 0) {
    for (int s = 0; s < num_shards(); ++s) {
      shard_engine(s).reserve(g_engine_footprint_hint);
    }
  }
  if (num_shards() > 1) {
    shard_stats_.resize(set_.shards());
    trace_staging_.resize(set_.shards());
    set_.set_window_hook(sim::SmallFn([this] { merge_trace_window(); }));
  }
  // Every node (and each of its nodelets) binds to its shard's engine: all
  // of a shard's resources schedule on the shard's own queue, never on a
  // neighbor's.  Node-shared resources (migration engine, egress link)
  // live on the node's gate shard.
  for (int n = 0; n < cfg.nodes; ++n) {
    nodes_.emplace_back(shard_engine(gate_shard(n)), cfg_);
  }
  for (int i = 0; i < cfg.total_nodelets(); ++i) {
    nodelets_.emplace_back(shard_engine(shard_of_nodelet(i)), cfg_, i);
  }
  if (g_machine_observer != nullptr) g_machine_observer->machine_created(*this);
}

Machine::~Machine() {
  // Counters, stats, and the trace are still intact here; the observer gets
  // the machine's final simulated time as the run's elapsed time (every
  // shard clock reads the same global final time after run_root).
  if (g_machine_observer != nullptr) {
    g_machine_observer->machine_finished(*this, engine().now());
  }
  for (int s = 0; s < num_shards(); ++s) {
    g_run_telemetry.engine_events += shard_engine(s).events_processed();
    if (shard_engine(s).footprint() > g_engine_footprint_hint) {
      g_engine_footprint_hint = shard_engine(s).footprint();
    }
  }
  if (host_footprint_->peak() > g_run_telemetry.peak_host_bytes) {
    g_run_telemetry.peak_host_bytes = host_footprint_->peak();
  }
}

void Machine::fold_stats() {
  if (shard_stats_.empty()) return;
  // Rebuild the public aggregate from the per-shard blocks in shard order;
  // the fixed order keeps the folded floating-point summaries (Welford
  // merge) bit-reproducible.
  stats = MachineStats{};
  for (const MachineStats& s : shard_stats_) stats.merge_from(s);
}

void Machine::merge_trace_window() {
  if (!trace.enabled()) return;
  // K-way merge of the window's per-shard staging buffers by (t, shard,
  // intra-shard order).  Each buffer is already time-ordered (a shard
  // records at its own non-decreasing now()), so one cursor per shard
  // suffices; windows advance monotonically, so the merged stream does too.
  const std::size_t S = trace_staging_.size();
  std::vector<std::size_t> cur(S, 0);
  for (;;) {
    int best = -1;
    for (std::size_t s = 0; s < S; ++s) {
      if (cur[s] >= trace_staging_[s].size()) continue;
      if (best < 0 || trace_staging_[s][cur[s]].t <
                          trace_staging_[static_cast<std::size_t>(best)]
                                        [cur[static_cast<std::size_t>(best)]]
                                            .t) {
        best = static_cast<int>(s);
      }
    }
    if (best < 0) break;
    const sim::TraceRecord& r =
        trace_staging_[static_cast<std::size_t>(best)]
                      [cur[static_cast<std::size_t>(best)]++];
    trace.record(r.t, r.kind, r.a, r.b, r.arg, r.tid);
  }
  for (auto& buf : trace_staging_) buf.clear();
}

void Machine::notify_child_done(Context* parent, int child_shard) {
  const int home = parent->home_shard_;
  if (child_shard == home) {
    parent->note_child_done();
    return;
  }
  Context* p = parent;
  post_remote(child_shard, home,
              shard_engine(child_shard).now() + post_delay(child_shard, home),
              sim::SmallFn([p] { p->note_child_done(); }));
}

sim::Op<> Context::atomic_fetch_remote(int nlet, std::uint64_t addr) {
  Machine& m = *machine_;
  const int ds = m.shard_of_nodelet(nlet);
  if (ds == shard_) {
    Nodelet& n = m.nodelet(nlet);
    ++n.stats.atomics_in;
    m.record_trace(shard_, engine().now(), sim::TraceKind::remote_atomic, nlet,
                   nodelet_, 0, tid_);
    // Request/response each ride the nodelet fabric (one intra-node
    // crossbar hop each way) around the remote RMW.
    const Time hop = m.cfg().intranode_hop();
    co_await engine().sleep(hop);
    n.channel().write(addr, 8);  // the remote read-modify-write
    n.channel().write(addr, 8);
    co_await engine().sleep(hop);
    co_return;
  }
  // Off-shard target: request and response each pay the transit latency of
  // the boundary they cross (the intra-node hop between sibling nodelet
  // shards — matching the same-shard path's fabric approximation exactly —
  // or the inter-node latency) and the RMW (stats, trace, channel
  // occupancy) executes on the owning shard at delivery; the issuing
  // thread stays put and blocks for the round trip.
  struct FetchAwaiter {
    Context& ctx;
    int nlet;
    std::uint64_t addr;
    int dst_shard;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) const {
      Machine* m = ctx.machine_;
      const int src_shard = ctx.shard_;
      const std::int32_t from = ctx.nodelet_;
      const std::int32_t t = ctx.tid_;
      const int nl = nlet;
      const std::uint64_t a = addr;
      const int ds = dst_shard;
      m->post_remote(
          src_shard, ds, ctx.engine().now() + m->post_delay(src_shard, ds),
          sim::SmallFn([m, nl, from, a, t, src_shard, ds, h] {
            Nodelet& n = m->nodelet(nl);
            ++n.stats.atomics_in;
            m->record_trace(ds, m->shard_engine(ds).now(),
                            sim::TraceKind::remote_atomic, nl, from, 0, t);
            n.channel().write(a, 8);
            n.channel().write(a, 8);
            m->post_wake(ds, src_shard,
                         m->shard_engine(ds).now() +
                             m->post_delay(ds, src_shard),
                         h);
          }));
    }
    void await_resume() const noexcept {}
  };
  co_await FetchAwaiter{*this, nlet, addr, ds};
}

sim::Op<> Context::migrate_to(int dest) {
  if (dest == nodelet_) co_return;
  const Time t0 = engine().now();
  Machine& m = *machine_;
  const int src = nodelet_;  // depart()/arrive() rewrite nodelet_
  const int src_node = m.node_index_of(src);
  const int dst_node = m.node_index_of(dest);

  depart();  // the context leaves the source threadlet slot immediately
  ++m.shard_stats(shard_).migrations;
  m.record_trace(shard_, t0, sim::TraceKind::migrate_out, src, dest, 0, tid_);

  // Same-node migrations ride the gate straight to the destination
  // nodelet's shard; cross-node ones resume on the gate shard, which owns
  // the egress link they queue on next.
  co_await gate_pass(src_node, src_node != dst_node
                                   ? m.gate_shard(src_node)
                                   : m.shard_of_nodelet(dest));
  if (src_node != dst_node) {
    ++m.shard_stats(shard_).internode_migrations;
    const Time wire =
        transfer_time(static_cast<double>(m.cfg().thread_context_bytes),
                      m.cfg().internode_bytes_per_sec);
    co_await m.node(src_node).link().access(wire);
    co_await fabric_hop(m.gate_shard(dst_node), m.cfg().internode_latency);
    co_await gate_pass(dst_node, m.shard_of_nodelet(dest));
  }
  co_await m.nodelet(dest).slots().acquire();
  arrive(dest);
  // b is the source *nodelet* (the header's contract); this used to record
  // the source node index, which collapses to 0 on any single-node config.
  m.record_trace(shard_, engine().now(), sim::TraceKind::migrate_in, dest, src,
                 0, tid_);
  m.shard_stats(shard_).migration_latency_ns.add(
      static_cast<std::uint64_t>((engine().now() - t0) / kNanosecond));
}

}  // namespace emusim::emu
