// GlobalArray<T>: the "higher-level memory allocation construct" the paper
// anticipates (§V-A) — a striped distributed array with whole-array
// operations built from the collectives, so application code rarely touches
// addresses or homes directly:
//
//   GlobalArray<std::int64_t> a(m, n);
//   co_await a.fill(ctx, 0);                       // parallel, all local
//   co_await a.transform(ctx, fn);                 // a[i] = fn(i, a[i])
//   auto s = co_await a.reduce_sum(ctx);           // reducer-based
//   auto h = co_await a.histogram(ctx, buckets);   // memory-side atomics
//
// Every operation is timed through the normal machine paths (local channel
// reads/writes, issue cycles, migrations only where the access pattern
// requires them) and functionally correct.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "emu/runtime/alloc.hpp"
#include "emu/runtime/parallel.hpp"

namespace emusim::emu {

template <class T>
class GlobalArray {
 public:
  GlobalArray(Machine& m, std::size_t n, std::size_t block = 1)
      : machine_(&m), view_(m, n, block) {}

  std::size_t size() const { return view_.size(); }
  Striped1D<T>& view() { return view_; }
  T& operator[](std::size_t i) { return view_[i]; }
  const T& operator[](std::size_t i) const { return view_[i]; }

  /// Parallel fill: every element written by a thread local to it.
  sim::Op<> fill(Context& ctx, T value, std::size_t grain = 64) {
    co_await for_each_home(
        ctx, &view_, grain,
        [this, value](Context& c, std::size_t i) -> sim::Op<> {
          view_[i] = value;
          c.write_local(view_.byte_addr(i), sizeof(T));
          co_await c.issue(2);
        });
  }

  /// Parallel transform: a[i] = fn(i, a[i]), all accesses local.
  template <class F>
  sim::Op<> transform(Context& ctx, F fn, std::size_t grain = 64) {
    co_await for_each_home(
        ctx, &view_, grain, [this, fn](Context& c, std::size_t i) -> sim::Op<> {
          co_await c.read_local(view_.byte_addr(i), sizeof(T));
          view_[i] = fn(i, view_[i]);
          c.write_local(view_.byte_addr(i), sizeof(T));
          co_await c.issue(4);
        });
  }

  /// Parallel sum via the reducer hyperobject.
  sim::Op<T> reduce_sum(Context& ctx, std::size_t grain = 64) {
    SumReducer<T> red(*machine_);
    co_await for_each_home(
        ctx, &view_, grain,
        [this, &red](Context& c, std::size_t i) -> sim::Op<> {
          co_await c.read_local(view_.byte_addr(i), sizeof(T));
          red.add(c, view_[i]);
          co_await c.issue(2);
        });
    co_return co_await red.reduce(ctx);
  }

  /// Parallel histogram into `buckets` bins of [lo, hi): bins live striped
  /// across nodelets and are updated with memory-side remote atomics, so
  /// counting threads never migrate (the GUPS pattern).
  sim::Op<std::vector<std::uint64_t>> histogram(Context& ctx, T lo, T hi,
                                                std::size_t buckets,
                                                std::size_t grain = 64) {
    Striped1D<std::uint64_t> bins(*machine_, buckets);
    for (std::size_t b = 0; b < buckets; ++b) bins[b] = 0;
    co_await for_each_home(
        ctx, &view_, grain,
        [this, &bins, lo, hi, buckets](Context& c,
                                       std::size_t i) -> sim::Op<> {
          co_await c.read_local(view_.byte_addr(i), sizeof(T));
          const T v = view_[i];
          if (v < lo || v >= hi) co_return;
          auto b = static_cast<std::size_t>(
              static_cast<double>(v - lo) / static_cast<double>(hi - lo) *
              static_cast<double>(buckets));
          if (b >= buckets) b = buckets - 1;
          // The increment executes on the bin's owning shard at delivery.
          std::uint64_t* slot = &bins[b];
          c.atomic_remote(bins.home(b), bins.byte_addr(b),
                          [slot] { ++*slot; });
          co_await c.issue(6);
        });
    if (machine_->num_shards() > 1) {
      // Remote-atomic deliveries posted by the last finishing counter can
      // still be in flight (they land up to one fabric transit — the
      // inter-node latency, or the intra-node hop between sibling nodelet
      // shards — after the post).  Two transits ahead of the join point is
      // provably past the last delivery's window, so reading and freeing
      // `bins` is safe.
      co_await ctx.engine().sleep(
          2 * std::max(machine_->cfg().internode_latency,
                       machine_->cfg().intranode_hop()));
    }
    std::vector<std::uint64_t> out(buckets);
    for (std::size_t b = 0; b < buckets; ++b) out[b] = bins[b];
    co_return out;
  }

  /// Parallel dot product with another array of identical layout.  Both
  /// sides of each term share a home, so the whole reduction is local.
  sim::Op<T> dot(Context& ctx, GlobalArray<T>& other,
                 std::size_t grain = 64) {
    EMUSIM_CHECK(other.size() == size());
    EMUSIM_CHECK(other.view_.block() == view_.block());
    SumReducer<T> red(*machine_);
    co_await for_each_home(
        ctx, &view_, grain,
        [this, &other, &red](Context& c, std::size_t i) -> sim::Op<> {
          co_await c.read_local(view_.byte_addr(i), sizeof(T));
          co_await c.read_local(other.view_.byte_addr(i), sizeof(T));
          red.add(c, view_[i] * other.view_[i]);
          co_await c.issue(3);
        });
    co_return co_await red.reduce(ctx);
  }

 private:
  Machine* machine_;
  Striped1D<T> view_;
};

}  // namespace emusim::emu
