// Distributed allocation views over the Emu global address space.
//
// The Emu toolchain exposes placement through its malloc family; each view
// here models one of those allocators, owns host backing storage for the
// functional values, and reserves local address ranges on the owning
// nodelets so channel-level row/bank locality is realistic:
//
//   Striped1D<T>  — mw_malloc1dlong: element- (block=1) or block-granular
//                   round-robin striping across all nodelets.
//   LocalArray<T> — mw_localmalloc: contiguous on a single nodelet.
//   Replicated<T> — mw_replicated: one copy per nodelet; reads are always
//                   local and never migrate (used for SpMV's x vector).
//   Chunked<T>    — the paper's custom two-stage "2D" allocation: explicit
//                   per-nodelet chunks (e.g. the rows assigned to a nodelet).
//
// Host storage is chunked per participating nodelet and materialized
// lazily, mirroring the emu_2d_array layout the paper's microbenchmarks
// use: each chunk holds exactly the elements homed on its nodelet, appears
// the first time an element of that nodelet is touched, and is registered
// against the machine's HostFootprint (emu/runtime/footprint.hpp).  A view
// used only for address/home math — the at-scale benches sweep 2^30-element
// regions this way — costs O(participating nodelets) bookkeeping and zero
// element storage, which is what makes billion-element regions on 256-1024
// nodelet configs feasible.  Materialization is thread-safe (CAS-installed
// chunks): kernels capture `&view[i]` host pointers from non-owner shards
// of the windowed parallel engine, so chunks never move once installed.
//
// Views provide address/home mapping for the timed path and plain element
// access for the functional path.  Hot kernels use the mapping directly:
//
//   const int h = view.home(i);
//   if (h != ctx.nodelet()) co_await ctx.migrate_to(h);
//   co_await ctx.read_local(view.byte_addr(i), sizeof(T));
//   use(view[i]);
//
// The `load` convenience coroutine bundles those steps for cold paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "emu/machine.hpp"
#include "emu/runtime/footprint.hpp"
#include "sim/op.hpp"

namespace emusim::emu {

namespace detail {

/// Lazily materialized per-nodelet host chunks with footprint accounting.
/// Chunk sizes are fixed at construction; storage appears on first touch
/// (zero-initialized, matching the old dense mirror's semantics) and is
/// charged to the machine's HostFootprint.  chunk() is safe to race from
/// any engine shard: the loser of the install CAS frees its copy, and an
/// installed chunk's address never changes.
template <class T>
class LazyChunks {
 public:
  LazyChunks(std::shared_ptr<HostFootprint> fp, std::vector<std::size_t> sizes)
      : fp_(std::move(fp)), sizes_(std::move(sizes)) {
    if (!sizes_.empty()) {
      slots_ = std::make_unique<std::atomic<T*>[]>(sizes_.size());
      for (std::size_t d = 0; d < sizes_.size(); ++d) {
        slots_[d].store(nullptr, std::memory_order_relaxed);
      }
    }
  }

  ~LazyChunks() { release(); }

  LazyChunks(LazyChunks&& o) noexcept
      : fp_(std::move(o.fp_)),
        sizes_(std::move(o.sizes_)),
        slots_(std::move(o.slots_)) {
    o.sizes_.clear();
  }
  LazyChunks& operator=(LazyChunks&& o) noexcept {
    if (this != &o) {
      release();
      fp_ = std::move(o.fp_);
      sizes_ = std::move(o.sizes_);
      slots_ = std::move(o.slots_);
      o.sizes_.clear();
    }
    return *this;
  }
  LazyChunks(const LazyChunks&) = delete;
  LazyChunks& operator=(const LazyChunks&) = delete;

  std::size_t num_chunks() const { return sizes_.size(); }
  std::size_t chunk_elems(std::size_t d) const { return sizes_[d]; }

  /// The chunk for nodelet-slot `d`, materializing it on first touch.
  T* chunk(std::size_t d) const {
    T* p = slots_[d].load(std::memory_order_acquire);
    return p != nullptr ? p : materialize(d);
  }

  bool materialized(std::size_t d) const {
    return slots_[d].load(std::memory_order_acquire) != nullptr;
  }

  /// Host bytes of element storage currently materialized.
  std::uint64_t materialized_bytes() const {
    std::uint64_t b = 0;
    for (std::size_t d = 0; d < sizes_.size(); ++d) {
      if (materialized(d)) b += sizes_[d] * sizeof(T);
    }
    return b;
  }

 private:
  T* materialize(std::size_t d) const {
    EMUSIM_CHECK(sizes_[d] > 0);
    T* fresh = new T[sizes_[d]]();
    T* expected = nullptr;
    if (slots_[d].compare_exchange_strong(expected, fresh,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
      if (fp_) fp_->add(sizes_[d] * sizeof(T));
      return fresh;
    }
    delete[] fresh;  // another shard won the install race
    return expected;
  }

  void release() {
    for (std::size_t d = 0; d < sizes_.size(); ++d) {
      T* p = slots_[d].load(std::memory_order_acquire);
      if (p == nullptr) continue;
      delete[] p;
      if (fp_) fp_->sub(sizes_[d] * sizeof(T));
    }
    sizes_.clear();
    slots_.reset();
  }

  std::shared_ptr<HostFootprint> fp_;
  std::vector<std::size_t> sizes_;
  mutable std::unique_ptr<std::atomic<T*>[]> slots_;
};

}  // namespace detail

template <class T>
class Striped1D {
 public:
  /// Stripe `n` elements across the first `across` nodelets of `m` (0 =
  /// all), `block` elements at a time.  block=1 reproduces mw_malloc1dlong's
  /// word-granular striping; across=1 degenerates to a local allocation on
  /// nodelet 0 (used for single-nodelet experiments).
  Striped1D(Machine& m, std::size_t n, std::size_t block = 1, int across = 0)
      : n_(n), block_(block),
        nlets_(static_cast<std::size_t>(across > 0 ? across
                                                   : m.num_nodelets())),
        chunks_(m.host_footprint_ptr(), [&] {
          EMUSIM_CHECK(block >= 1);
          std::vector<std::size_t> sizes(nlets_);
          for (std::size_t d = 0; d < nlets_; ++d) {
            sizes[d] = elems_on(static_cast<int>(d));
          }
          return sizes;
        }()) {
    EMUSIM_CHECK(nlets_ <= static_cast<std::size_t>(m.num_nodelets()));
    base_.reserve(nlets_);
    for (std::size_t d = 0; d < nlets_; ++d) {
      const std::uint64_t bytes = elems_on(static_cast<int>(d)) * sizeof(T);
      base_.push_back(m.nodelet(static_cast<int>(d))
                          .allocate(bytes ? bytes : sizeof(T), alignof(T)));
    }
  }

  std::size_t size() const { return n_; }
  std::size_t block() const { return block_; }
  std::uint64_t bytes() const { return n_ * sizeof(T); }
  /// Host bytes currently materialized for this view (chunk storage only;
  /// an untouched view reports 0 no matter how large the region is).
  std::uint64_t host_bytes() const { return chunks_.materialized_bytes(); }
  /// Whether nodelet `nlet`'s chunk has been materialized.
  bool chunk_materialized(int nlet) const {
    return chunks_.materialized(static_cast<std::size_t>(nlet));
  }

  int home(std::size_t i) const {
    return static_cast<int>((i / block_) % nlets_);
  }

  std::uint64_t byte_addr(std::size_t i) const {
    const std::size_t blk = i / block_;
    const std::size_t local_elem = (blk / nlets_) * block_ + i % block_;
    return base_[(i / block_) % nlets_] + local_elem * sizeof(T);
  }

  T& operator[](std::size_t i) { return element(i); }
  const T& operator[](std::size_t i) const { return element(i); }

  /// Number of elements homed on nodelet `nlet`.
  std::size_t elems_on(int nlet) const {
    const auto d = static_cast<std::size_t>(nlet);
    const std::size_t full_blocks = n_ / block_;
    const std::size_t tail = n_ % block_;
    std::size_t elems = (full_blocks / nlets_) * block_;
    const std::size_t rem = full_blocks % nlets_;
    if (d < rem) elems += block_;
    if (tail && full_blocks % nlets_ == d) elems += tail;
    return elems;
  }

  /// Global index of the k-th element homed on nodelet `nlet`.
  std::size_t global_index(int nlet, std::size_t k) const {
    const std::size_t lb = k / block_;
    const std::size_t blk = lb * nlets_ + static_cast<std::size_t>(nlet);
    return blk * block_ + k % block_;
  }

  /// Convenience timed load: migrate to the element's home if needed, then
  /// read it.  Allocates a coroutine frame — use the manual pattern in hot
  /// kernels.
  sim::Op<T> load(Context& ctx, std::size_t i) {
    const int h = home(i);
    if (h != ctx.nodelet()) co_await ctx.migrate_to(h);
    co_await ctx.read_local(byte_addr(i), sizeof(T));
    co_return element(i);
  }

 private:
  T& element(std::size_t i) const {
    const std::size_t blk = i / block_;
    const std::size_t local = (blk / nlets_) * block_ + i % block_;
    return chunks_.chunk(blk % nlets_)[local];
  }

  std::size_t n_;
  std::size_t block_;
  std::size_t nlets_;
  detail::LazyChunks<T> chunks_;
  std::vector<std::uint64_t> base_;
};

template <class T>
class LocalArray {
 public:
  LocalArray(Machine& m, std::size_t n, int nodelet)
      : nodelet_(nodelet), n_(n),
        chunks_(m.host_footprint_ptr(), std::vector<std::size_t>{n}),
        base_(m.nodelet(nodelet).allocate(n ? n * sizeof(T) : sizeof(T),
                                          alignof(T))) {}

  std::size_t size() const { return n_; }
  std::uint64_t bytes() const { return n_ * sizeof(T); }
  std::uint64_t host_bytes() const { return chunks_.materialized_bytes(); }
  int home(std::size_t) const { return nodelet_; }
  int home() const { return nodelet_; }
  std::uint64_t byte_addr(std::size_t i) const { return base_ + i * sizeof(T); }
  T& operator[](std::size_t i) { return chunks_.chunk(0)[i]; }
  const T& operator[](std::size_t i) const { return chunks_.chunk(0)[i]; }

  sim::Op<T> load(Context& ctx, std::size_t i) {
    if (nodelet_ != ctx.nodelet()) co_await ctx.migrate_to(nodelet_);
    co_await ctx.read_local(byte_addr(i), sizeof(T));
    co_return chunks_.chunk(0)[i];
  }

 private:
  int nodelet_;
  std::size_t n_;
  detail::LazyChunks<T> chunks_;
  std::uint64_t base_;
};

template <class T>
class Replicated {
 public:
  Replicated(Machine& m, std::size_t n)
      : n_(n), chunks_(m.host_footprint_ptr(), std::vector<std::size_t>{n}) {
    const int nlets = m.num_nodelets();
    base_.reserve(static_cast<std::size_t>(nlets));
    for (int d = 0; d < nlets; ++d) {
      base_.push_back(
          m.nodelet(d).allocate(n ? n * sizeof(T) : sizeof(T), alignof(T)));
    }
  }

  std::size_t size() const { return n_; }
  /// Host bytes of the single functional copy (the per-nodelet replicas
  /// share one host image; simulated storage is per nodelet).
  std::uint64_t host_bytes() const { return chunks_.materialized_bytes(); }
  /// Address of element i in the copy local to `nlet`.
  std::uint64_t byte_addr_on(int nlet, std::size_t i) const {
    return base_[static_cast<std::size_t>(nlet)] + i * sizeof(T);
  }
  T& operator[](std::size_t i) { return chunks_.chunk(0)[i]; }
  const T& operator[](std::size_t i) const { return chunks_.chunk(0)[i]; }

  /// Timed read of the local replica: never migrates.
  auto read(Context& ctx, std::size_t i) {
    return ctx.read_local(byte_addr_on(ctx.nodelet(), i), sizeof(T));
  }

 private:
  std::size_t n_;
  detail::LazyChunks<T> chunks_;
  std::vector<std::uint64_t> base_;
};

/// Explicit per-nodelet chunks (the paper's custom two-stage 2D layout for
/// SpMV: each nodelet holds the values/indices of the rows assigned to it).
template <class T>
class Chunked {
 public:
  Chunked(Machine& m, const std::vector<std::size_t>& counts)
      : chunks_(m.host_footprint_ptr(), counts) {
    EMUSIM_CHECK(counts.size() ==
                 static_cast<std::size_t>(m.num_nodelets()));
    base_.reserve(counts.size());
    for (std::size_t d = 0; d < counts.size(); ++d) {
      base_.push_back(m.nodelet(static_cast<int>(d))
                          .allocate(counts[d] ? counts[d] * sizeof(T)
                                              : sizeof(T),
                                    alignof(T)));
    }
  }

  std::size_t chunk_size(int nlet) const {
    return chunks_.chunk_elems(static_cast<std::size_t>(nlet));
  }
  std::uint64_t host_bytes() const { return chunks_.materialized_bytes(); }
  int home(int nlet) const { return nlet; }
  std::uint64_t byte_addr(int nlet, std::size_t i) const {
    return base_[static_cast<std::size_t>(nlet)] + i * sizeof(T);
  }
  T& at(int nlet, std::size_t i) {
    return chunks_.chunk(static_cast<std::size_t>(nlet))[i];
  }
  const T& at(int nlet, std::size_t i) const {
    return chunks_.chunk(static_cast<std::size_t>(nlet))[i];
  }

 private:
  detail::LazyChunks<T> chunks_;
  std::vector<std::uint64_t> base_;
};

}  // namespace emusim::emu
