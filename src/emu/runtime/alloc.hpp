// Distributed allocation views over the Emu global address space.
//
// The Emu toolchain exposes placement through its malloc family; each view
// here models one of those allocators, owns host backing storage for the
// functional values, and reserves local address ranges on the owning
// nodelets so channel-level row/bank locality is realistic:
//
//   Striped1D<T>  — mw_malloc1dlong: element- (block=1) or block-granular
//                   round-robin striping across all nodelets.
//   LocalArray<T> — mw_localmalloc: contiguous on a single nodelet.
//   Replicated<T> — mw_replicated: one copy per nodelet; reads are always
//                   local and never migrate (used for SpMV's x vector).
//   Chunked<T>    — the paper's custom two-stage "2D" allocation: explicit
//                   per-nodelet chunks (e.g. the rows assigned to a nodelet).
//
// Views provide address/home mapping for the timed path and plain element
// access for the functional path.  Hot kernels use the mapping directly:
//
//   const int h = view.home(i);
//   if (h != ctx.nodelet()) co_await ctx.migrate_to(h);
//   co_await ctx.read_local(view.byte_addr(i), sizeof(T));
//   use(view[i]);
//
// The `load` convenience coroutine bundles those steps for cold paths.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "emu/machine.hpp"
#include "sim/op.hpp"

namespace emusim::emu {

template <class T>
class Striped1D {
 public:
  /// Stripe `n` elements across the first `across` nodelets of `m` (0 =
  /// all), `block` elements at a time.  block=1 reproduces mw_malloc1dlong's
  /// word-granular striping; across=1 degenerates to a local allocation on
  /// nodelet 0 (used for single-nodelet experiments).
  Striped1D(Machine& m, std::size_t n, std::size_t block = 1, int across = 0)
      : n_(n), block_(block),
        nlets_(static_cast<std::size_t>(across > 0 ? across
                                                   : m.num_nodelets())),
        host_(n) {
    EMUSIM_CHECK(block_ >= 1);
    EMUSIM_CHECK(nlets_ <= static_cast<std::size_t>(m.num_nodelets()));
    base_.reserve(nlets_);
    for (std::size_t d = 0; d < nlets_; ++d) {
      const std::uint64_t bytes = elems_on(static_cast<int>(d)) * sizeof(T);
      base_.push_back(m.nodelet(static_cast<int>(d))
                          .allocate(bytes ? bytes : sizeof(T), alignof(T)));
    }
  }

  std::size_t size() const { return n_; }
  std::size_t block() const { return block_; }
  std::uint64_t bytes() const { return n_ * sizeof(T); }

  int home(std::size_t i) const {
    return static_cast<int>((i / block_) % nlets_);
  }

  std::uint64_t byte_addr(std::size_t i) const {
    const std::size_t blk = i / block_;
    const std::size_t local_elem = (blk / nlets_) * block_ + i % block_;
    return base_[(i / block_) % nlets_] + local_elem * sizeof(T);
  }

  T& operator[](std::size_t i) { return host_[i]; }
  const T& operator[](std::size_t i) const { return host_[i]; }

  /// Number of elements homed on nodelet `nlet`.
  std::size_t elems_on(int nlet) const {
    const auto d = static_cast<std::size_t>(nlet);
    const std::size_t full_blocks = n_ / block_;
    const std::size_t tail = n_ % block_;
    std::size_t elems = (full_blocks / nlets_) * block_;
    const std::size_t rem = full_blocks % nlets_;
    if (d < rem) elems += block_;
    if (tail && full_blocks % nlets_ == d) elems += tail;
    return elems;
  }

  /// Global index of the k-th element homed on nodelet `nlet`.
  std::size_t global_index(int nlet, std::size_t k) const {
    const std::size_t lb = k / block_;
    const std::size_t blk = lb * nlets_ + static_cast<std::size_t>(nlet);
    return blk * block_ + k % block_;
  }

  /// Convenience timed load: migrate to the element's home if needed, then
  /// read it.  Allocates a coroutine frame — use the manual pattern in hot
  /// kernels.
  sim::Op<T> load(Context& ctx, std::size_t i) {
    const int h = home(i);
    if (h != ctx.nodelet()) co_await ctx.migrate_to(h);
    co_await ctx.read_local(byte_addr(i), sizeof(T));
    co_return host_[i];
  }

 private:
  std::size_t n_;
  std::size_t block_;
  std::size_t nlets_;
  std::vector<T> host_;
  std::vector<std::uint64_t> base_;
};

template <class T>
class LocalArray {
 public:
  LocalArray(Machine& m, std::size_t n, int nodelet)
      : nodelet_(nodelet), host_(n),
        base_(m.nodelet(nodelet).allocate(n ? n * sizeof(T) : sizeof(T),
                                          alignof(T))) {}

  std::size_t size() const { return host_.size(); }
  std::uint64_t bytes() const { return host_.size() * sizeof(T); }
  int home(std::size_t) const { return nodelet_; }
  int home() const { return nodelet_; }
  std::uint64_t byte_addr(std::size_t i) const { return base_ + i * sizeof(T); }
  T& operator[](std::size_t i) { return host_[i]; }
  const T& operator[](std::size_t i) const { return host_[i]; }

  sim::Op<T> load(Context& ctx, std::size_t i) {
    if (nodelet_ != ctx.nodelet()) co_await ctx.migrate_to(nodelet_);
    co_await ctx.read_local(byte_addr(i), sizeof(T));
    co_return host_[i];
  }

 private:
  int nodelet_;
  std::vector<T> host_;
  std::uint64_t base_;
};

template <class T>
class Replicated {
 public:
  Replicated(Machine& m, std::size_t n) : host_(n) {
    const int nlets = m.num_nodelets();
    base_.reserve(static_cast<std::size_t>(nlets));
    for (int d = 0; d < nlets; ++d) {
      base_.push_back(
          m.nodelet(d).allocate(n ? n * sizeof(T) : sizeof(T), alignof(T)));
    }
  }

  std::size_t size() const { return host_.size(); }
  /// Address of element i in the copy local to `nlet`.
  std::uint64_t byte_addr_on(int nlet, std::size_t i) const {
    return base_[static_cast<std::size_t>(nlet)] + i * sizeof(T);
  }
  T& operator[](std::size_t i) { return host_[i]; }
  const T& operator[](std::size_t i) const { return host_[i]; }

  /// Timed read of the local replica: never migrates.
  auto read(Context& ctx, std::size_t i) {
    return ctx.read_local(byte_addr_on(ctx.nodelet(), i), sizeof(T));
  }

 private:
  std::vector<T> host_;
  std::vector<std::uint64_t> base_;
};

/// Explicit per-nodelet chunks (the paper's custom two-stage 2D layout for
/// SpMV: each nodelet holds the values/indices of the rows assigned to it).
template <class T>
class Chunked {
 public:
  Chunked(Machine& m, const std::vector<std::size_t>& counts) {
    EMUSIM_CHECK(counts.size() ==
                 static_cast<std::size_t>(m.num_nodelets()));
    host_.reserve(counts.size());
    base_.reserve(counts.size());
    for (std::size_t d = 0; d < counts.size(); ++d) {
      host_.emplace_back(counts[d]);
      base_.push_back(m.nodelet(static_cast<int>(d))
                          .allocate(counts[d] ? counts[d] * sizeof(T)
                                              : sizeof(T),
                                    alignof(T)));
    }
  }

  std::size_t chunk_size(int nlet) const {
    return host_[static_cast<std::size_t>(nlet)].size();
  }
  int home(int nlet) const { return nlet; }
  std::uint64_t byte_addr(int nlet, std::size_t i) const {
    return base_[static_cast<std::size_t>(nlet)] + i * sizeof(T);
  }
  T& at(int nlet, std::size_t i) {
    return host_[static_cast<std::size_t>(nlet)][i];
  }
  const T& at(int nlet, std::size_t i) const {
    return host_[static_cast<std::size_t>(nlet)][i];
  }

 private:
  std::vector<std::vector<T>> host_;
  std::vector<std::uint64_t> base_;
};

}  // namespace emusim::emu
