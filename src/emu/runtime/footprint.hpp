// Host-side memory accounting for the allocation views.
//
// The simulator's distributed arrays (emu/runtime/alloc.hpp) back their
// functional values with host memory.  At paper scale that was irrelevant;
// at 2^30-element datasets on 256-1024 nodelet configs (ROADMAP item 3) the
// host mirror is the binding resource, so it is tracked as a first-class
// metric: every view registers the bytes it materializes against its
// machine's HostFootprint, and the bench harness reports the peak per sweep
// point (the `mem_peak_bytes` extra, gated by tools/shapes).
//
// The contract the chunked views uphold: bookkeeping is O(participating
// nodelets) per region, and chunks materialize only when element storage is
// actually touched — a view used purely for address/home math (the
// at-scale benches) costs no host memory at all.
//
// Counters are atomics because chunk materialization can happen from any
// shard worker of the windowed parallel engine (src/sim/shard.hpp).
#pragma once

#include <atomic>
#include <cstdint>

namespace emusim::emu {

class HostFootprint {
 public:
  /// Register `bytes` of freshly materialized host storage.
  void add(std::uint64_t bytes) {
    const std::uint64_t cur =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::uint64_t p = peak_.load(std::memory_order_relaxed);
    while (cur > p &&
           !peak_.compare_exchange_weak(p, cur, std::memory_order_relaxed)) {
    }
  }

  /// Release `bytes` (view destruction).
  void sub(std::uint64_t bytes) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// Host bytes currently materialized across all live views.
  std::uint64_t current() const {
    return current_.load(std::memory_order_relaxed);
  }
  /// High-water mark since construction (never reset: peak is the metric).
  std::uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> current_{0};
  std::atomic<std::uint64_t> peak_{0};
};

}  // namespace emusim::emu
