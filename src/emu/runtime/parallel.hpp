// Higher-level parallel constructs over the threadlet runtime.
//
// The Chick's 17.11 toolchain lacked cilk_for and Cilk reducers (paper
// §III-A), and §V anticipates "higher-level memory allocation constructs"
// on top of the malloc family.  This header provides both as a library —
// the forms the paper's own benchmarks hand-rolled:
//
//   parallel_apply      — cilk_for over an index range: a local recursive
//                         spawn tree down to a grain, spawn-left/iterate-
//                         right so live internal frames stay bounded.
//   on_each_nodelet     — remote-spawn tree placing one leader per nodelet
//                         (the "smart spawn" of §IV-A).
//   for_each_home       — distributed for-each over a striped view: leaders
//                         per nodelet, each applying a local spawn tree to
//                         the elements homed there; bodies never migrate.
//   SumReducer<T>       — a reducer hyperobject: per-nodelet partials
//                         updated locally, combined once at the end.
#pragma once

#include <cstdint>

#include "emu/machine.hpp"
#include "emu/runtime/alloc.hpp"

namespace emusim::emu {

namespace detail {

template <class F>
sim::Op<> apply_leaf(Context& ctx, std::size_t lo, std::size_t hi, F body) {
  for (std::size_t i = lo; i < hi; ++i) {
    co_await body(ctx, i);
  }
}

}  // namespace detail

/// cilk_for equivalent: apply `body(ctx, i)` for every i in [lo, hi),
/// spawning subtrees until ranges shrink to `grain`.  The caller's context
/// runs part of the work itself (and syncs before returning).
template <class F>
sim::Op<> parallel_apply(Context& ctx, std::size_t lo, std::size_t hi,
                         std::size_t grain, F body) {
  if (grain < 1) grain = 1;
  while (hi - lo > grain) {
    const std::size_t mid = lo + (hi - lo) / 2;
    co_await ctx.spawn([mid, hi, grain, body](Context& c) {
      return parallel_apply(c, mid, hi, grain, body);
    });
    hi = mid;
  }
  co_await detail::apply_leaf(ctx, lo, hi, body);
  co_await ctx.sync();
}

/// Remote-spawn tree: run `body(ctx)` once on every nodelet, with the
/// spawn packets fanning out through the fabric instead of serializing at
/// the caller.  Completes when every leader (and its children) finish.
template <class F>
sim::Op<> on_each_nodelet(Context& ctx, F body) {
  struct Rec {
    static sim::Op<> go(Context& c, int dlo, int dhi, F body) {
      while (dhi - dlo > 1) {
        const int mid = dlo + (dhi - dlo) / 2;
        co_await c.spawn_at(mid, [mid, dhi, body](Context& t) {
          return Rec::go(t, mid, dhi, body);
        });
        dhi = mid;
      }
      co_await body(c);
      co_await c.sync();
    }
  };
  const int n = ctx.machine().num_nodelets();
  co_await ctx.spawn_at(0, [n, body](Context& c) {
    return Rec::go(c, 0, n, body);
  });
  co_await ctx.sync();
}

/// Distributed for-each over a striped view: one leader per nodelet applies
/// `body(ctx, global_index)` to every element homed there via a local spawn
/// tree of `grain`-sized leaves.  With per-element work that touches only
/// view[global_index], bodies never migrate.
template <class T, class F>
sim::Op<> for_each_home(Context& ctx, Striped1D<T>* view, std::size_t grain,
                        F body) {
  co_await on_each_nodelet(ctx, [view, grain, body](Context& c) -> sim::Op<> {
    const int d = c.nodelet();
    const std::size_t local = view->elems_on(d);
    co_await parallel_apply(
        c, 0, local, grain,
        [view, d, body](Context& t, std::size_t k) -> sim::Op<> {
          co_await body(t, view->global_index(d, k));
        });
  });
}

/// Reducer hyperobject for commutative sums (the Cilk reducer the 17.11
/// toolchain lacked).  Each add() updates the partial on the calling
/// thread's current nodelet — a local memory operation, no contention, no
/// migration.  reduce() visits the partials once.
template <class T>
class SumReducer {
 public:
  explicit SumReducer(Machine& m)
      : partials_(m, 1), values_(static_cast<std::size_t>(m.num_nodelets()),
                                 T{}) {}

  /// Add `v` into the local partial (posted local read-modify-write).
  void add(Context& ctx, T v) {
    values_[static_cast<std::size_t>(ctx.nodelet())] += v;
    ctx.write_local(partials_.byte_addr_on(ctx.nodelet(), 0), sizeof(T));
  }

  /// Combine all partials: the calling thread reads each nodelet's partial
  /// through the normal migratory path, then migrates home so follow-on
  /// local operations are charged to the caller's original nodelet (the
  /// combine loop would otherwise strand the context on nodelet n-1).
  sim::Op<T> reduce(Context& ctx) {
    T total{};
    const int home = ctx.nodelet();
    const int n = ctx.machine().num_nodelets();
    for (int d = 0; d < n; ++d) {
      if (d != ctx.nodelet()) co_await ctx.migrate_to(d);
      co_await ctx.read_local(partials_.byte_addr_on(d, 0), sizeof(T));
      total += values_[static_cast<std::size_t>(d)];
    }
    if (ctx.nodelet() != home) co_await ctx.migrate_to(home);
    co_return total;
  }

  /// Host-side total (no timing); valid once the machine is idle.
  T value_unsynchronized() const {
    T total{};
    for (const auto& v : values_) total += v;
    return total;
  }

 private:
  Replicated<T> partials_;  ///< one timed slot per nodelet
  std::vector<T> values_;   ///< functional partial per nodelet
};

}  // namespace emusim::emu
