// Emu system configurations.
//
// Four named design points cover the paper's experiments:
//   chick_hw          — the Chick prototype as measured (Fig 4-9): one
//                       150 MHz Gossamer core per nodelet, 64 threadlets,
//                       NCDRAM-1600, migration engine ~9 M migrations/s.
//   chick_as_simulated — the same machine as the vendor's architectural
//                       simulator models it: identical except the migration
//                       engine sustains ~16 M migrations/s (the unmodeled
//                       hardware bottleneck the paper diagnoses in Fig 10).
//   chick_fullspeed   — the production design point: 300 MHz, 4 GCs per
//                       nodelet (256 threadlets), NCDRAM-2133.
//   fullspeed_multinode — chick_fullspeed scaled to N node cards (Fig 11
//                       uses 8 nodes = 64 nodelets).
//   chick_fullspeed_nx — fullspeed_multinode addressed by total nodelet
//                       count (64/256/1024 for the ROADMAP scaling sweeps).
#pragma once

#include <string>

#include "mem/dram.hpp"

namespace emusim::emu {

struct SystemConfig {
  std::string name = "chick_hw";

  // --- topology ---------------------------------------------------------
  int nodes = 1;
  int nodelets_per_node = 8;
  int gcs_per_nodelet = 1;

  // --- Gossamer cores ----------------------------------------------------
  double gc_clock_hz = 150e6;
  int threadlet_slots_per_gc = 64;

  // --- memory ------------------------------------------------------------
  mem::DramTiming dram = mem::DramTiming::ncdram_chick();

  // --- migration engine (per node) ----------------------------------------
  /// Sustained migration throughput of one node's migration engine.  The
  /// Chick hardware measures ~9 M/s via ping-pong; the vendor simulator
  /// models ~16 M/s (paper Section IV-D).
  double migrations_per_sec = 9e6;
  /// In-flight latency of a single migration (paper: ~1-2 us).
  Time migration_latency = us(1.4);
  /// Size of a Gossamer thread context (16 GP registers + PC + SP + status;
  /// paper: < 200 bytes).  Used for fabric occupancy on inter-node hops.
  std::size_t thread_context_bytes = 200;

  // --- thread management -------------------------------------------------
  /// Parent-side instructions to execute a spawn.
  int spawn_issue_cycles = 30;
  /// Child-side instructions before the first user operation (register
  /// setup, argument loads).
  int thread_startup_cycles = 60;

  // --- inter-node fabric (RapidIO) ----------------------------------------
  Time internode_latency = us(0.7);
  /// RapidIO egress per node card (gen2 x4-lane class); at ~200 B per
  /// context this sustains ~25 M inter-node migrations/s per link.
  double internode_bytes_per_sec = 5e9;

  int total_nodelets() const { return nodes * nodelets_per_node; }
  /// One hop across the intra-node crossbar: half the full migration
  /// latency (a migration traverses the fabric to the destination nodelet
  /// and back-pressures the same path).  This is the transit cost of
  /// anything crossing nodelets within a node without moving a full thread
  /// context — the fetch-atomic request/response legs — and the lookahead
  /// between a node's per-nodelet engine shards under
  /// `--engine-shard=nodelet`.
  Time intranode_hop() const { return migration_latency / 2; }
  int slots_per_nodelet() const {
    return gcs_per_nodelet * threadlet_slots_per_gc;
  }
  Time cycle() const { return period_from_hz(gc_clock_hz); }

  /// Topology caps enforced by validate().  Nodelet and slot indices (and
  /// their products with small factors) are ints throughout the machine
  /// model; capping each factor at 2^20 leaves >2000x headroom to INT_MAX
  /// for every per-nodelet index computation while comfortably covering the
  /// 64-1024 nodelet scaling sweeps (ROADMAP item 3).
  static constexpr int kMaxTotalNodelets = 1 << 20;
  static constexpr int kMaxSlotsPerNodelet = 1 << 20;

  /// Abort (EMUSIM_CHECK) on non-positive topology factors, index-overflow
  /// headroom violations, or non-physical rate/latency parameters.  Machine
  /// construction validates; the named factories validate what they build.
  void validate() const;

  static SystemConfig chick_hw();
  static SystemConfig chick_as_simulated();
  static SystemConfig chick_fullspeed();
  static SystemConfig fullspeed_multinode(int nodes);
  /// The scaling family by total nodelet count: nodelets must be a positive
  /// multiple of 8 (one node card = 8 nodelets).  64 reproduces Fig 11's
  /// projection; 256 and 1024 are the beyond-paper sweep points.
  static SystemConfig chick_fullspeed_nx(int nodelets);
};

}  // namespace emusim::emu
