// Per-nodelet performance-counter report, in the spirit of the vendor
// simulator's output (paper §III-B: "the simulator counts key performance
// events such as the number of thread spawns, migrations, and memory
// operations per nodelet").  Renders machine statistics after a run.
#pragma once

#include <string>

#include "emu/machine.hpp"

namespace emusim::emu {

/// Snapshot of one nodelet's counters plus derived channel metrics.
struct NodeletCounters {
  int nodelet = 0;
  std::uint64_t reads = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t writes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t remote_writes_in = 0;
  std::uint64_t atomics_in = 0;
  std::uint64_t thread_arrivals = 0;
  int max_resident = 0;
  double row_hit_rate = 0.0;
  double channel_utilization = 0.0;  ///< bus busy / elapsed
};

/// Collect counters for every nodelet; `elapsed` scales utilizations.
std::vector<NodeletCounters> collect_counters(Machine& m, Time elapsed);

/// Machine-wide summary plus the per-nodelet table, as printable text.
std::string counters_report(Machine& m, Time elapsed);

}  // namespace emusim::emu
