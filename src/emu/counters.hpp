// Per-nodelet performance-counter report, in the spirit of the vendor
// simulator's output (paper §III-B: "the simulator counts key performance
// events such as the number of thread spawns, migrations, and memory
// operations per nodelet").  Renders machine statistics after a run, and
// provides phase-scoped snapshots/deltas so benches can attribute traffic
// to named phases (warmup vs. measured) instead of one whole-run total.
#pragma once

#include <string>

#include "emu/machine.hpp"

namespace emusim::emu {

/// Snapshot of one nodelet's counters plus derived channel metrics.  The
/// raw channel counts (row_hits/row_misses/bus_busy) are carried alongside
/// the derived rates so two snapshots can be diffed and the rates
/// recomputed over just the delta window.
struct NodeletCounters {
  int nodelet = 0;
  std::uint64_t reads = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t writes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t remote_writes_in = 0;
  std::uint64_t atomics_in = 0;
  std::uint64_t thread_arrivals = 0;
  int max_resident = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  Time bus_busy = 0;                 ///< cumulative channel busy time
  double row_hit_rate = 0.0;
  double channel_utilization = 0.0;  ///< bus busy / elapsed
};

/// Copyable subset of MachineStats (the histogram stays behind).
struct MachineCounters {
  std::uint64_t migrations = 0;
  std::uint64_t internode_migrations = 0;
  std::uint64_t spawns = 0;
  std::uint64_t remote_spawns = 0;
  std::uint64_t inline_spawns = 0;
  std::uint64_t threads_completed = 0;
};

/// Collect counters for every nodelet; `elapsed` scales utilizations.
std::vector<NodeletCounters> collect_counters(Machine& m, Time elapsed);

/// Machine-wide summary plus the per-nodelet table, as printable text.
std::string counters_report(Machine& m, Time elapsed);

/// Everything observable about a machine at one instant: simulated time,
/// machine-wide and per-nodelet counters, the trace's migration matrix so
/// far, and whether the trace behind that matrix lost records.
struct CounterSnapshot {
  std::string phase;  ///< name of the phase *ending* at this snapshot
  Time t = 0;
  MachineCounters machine;
  std::vector<NodeletCounters> nodelets;
  std::vector<std::vector<std::uint64_t>> migration_matrix;
  bool trace_truncated = false;  ///< matrix is a lower bound when true
};

/// Snapshot `m` now (engine time).  The migration matrix comes from the
/// machine's tracer when enabled (empty otherwise).
CounterSnapshot snapshot_counters(Machine& m, const std::string& phase = "");

struct CounterDelta {
  std::string from;  ///< phase name of the starting snapshot
  std::string to;    ///< phase name of the ending snapshot
  Time t0 = 0;
  Time t1 = 0;
  MachineCounters machine;
  std::vector<NodeletCounters> nodelets;
  std::vector<std::vector<std::uint64_t>> migration_matrix;
  bool trace_truncated = false;
};

/// Difference of two snapshots (`to` - `from`): counts subtract, rates are
/// recomputed over the delta window, and `trace_truncated` is sticky — a
/// delta over a truncated trace undercounts and must say so.
CounterDelta counters_delta(const CounterSnapshot& from,
                            const CounterSnapshot& to);

}  // namespace emusim::emu
