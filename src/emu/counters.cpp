#include "emu/counters.hpp"

#include <cstdio>

namespace emusim::emu {

std::vector<NodeletCounters> collect_counters(Machine& m, Time elapsed) {
  std::vector<NodeletCounters> out;
  out.reserve(static_cast<std::size_t>(m.num_nodelets()));
  for (int d = 0; d < m.num_nodelets(); ++d) {
    Nodelet& n = m.nodelet(d);
    NodeletCounters c;
    c.nodelet = d;
    c.reads = n.stats.reads;
    c.read_bytes = n.stats.read_bytes;
    c.writes = n.stats.writes;
    c.write_bytes = n.stats.write_bytes;
    c.remote_writes_in = n.stats.remote_writes_in;
    c.atomics_in = n.stats.atomics_in;
    c.thread_arrivals = n.stats.thread_arrivals;
    c.max_resident = n.stats.max_resident;
    const auto& ch = n.channel().stats();
    const auto accesses = ch.row_hits + ch.row_misses;
    c.row_hit_rate = accesses ? static_cast<double>(ch.row_hits) /
                                    static_cast<double>(accesses)
                              : 0.0;
    c.channel_utilization =
        elapsed > 0 ? static_cast<double>(n.channel().bus_busy_time()) /
                          static_cast<double>(elapsed)
                    : 0.0;
    out.push_back(c);
  }
  return out;
}

std::string counters_report(Machine& m, Time elapsed) {
  std::string out;
  char line[256];

  std::snprintf(line, sizeof line,
                "machine %s: elapsed %s, %llu threads (%llu remote spawns, "
                "%llu elided), %llu migrations (%llu inter-node)\n",
                m.cfg().name.c_str(), format_time(elapsed).c_str(),
                static_cast<unsigned long long>(m.stats.spawns),
                static_cast<unsigned long long>(m.stats.remote_spawns),
                static_cast<unsigned long long>(m.stats.inline_spawns),
                static_cast<unsigned long long>(m.stats.migrations),
                static_cast<unsigned long long>(m.stats.internode_migrations));
  out += line;
  if (m.stats.migration_latency_ns.count() > 0) {
    std::snprintf(line, sizeof line,
                  "migration latency: mean %.2f us, p99 ~%.2f us\n",
                  m.stats.migration_latency_ns.summary().mean() / 1e3,
                  static_cast<double>(m.stats.migration_latency_ns.quantile(
                      0.99)) / 1e3);
    out += line;
  }

  std::snprintf(line, sizeof line,
                "%-4s %10s %10s %10s %8s %8s %8s %6s %7s %6s\n", "nlet",
                "reads", "readMB", "writes", "remwr", "atomics", "arrive",
                "maxres", "rowhit%", "bus%");
  out += line;
  for (const auto& c : collect_counters(m, elapsed)) {
    std::snprintf(
        line, sizeof line,
        "%-4d %10llu %10.2f %10llu %8llu %8llu %8llu %6d %7.1f %6.1f\n",
        c.nodelet, static_cast<unsigned long long>(c.reads),
        static_cast<double>(c.read_bytes) / 1e6,
        static_cast<unsigned long long>(c.writes),
        static_cast<unsigned long long>(c.remote_writes_in),
        static_cast<unsigned long long>(c.atomics_in),
        static_cast<unsigned long long>(c.thread_arrivals), c.max_resident,
        100.0 * c.row_hit_rate, 100.0 * c.channel_utilization);
    out += line;
  }
  return out;
}

}  // namespace emusim::emu
