#include "emu/counters.hpp"

#include <cstdarg>
#include <cstdio>

#include "common/check.hpp"

namespace emusim::emu {

namespace {

/// printf-append into a growable string: a row is never silently cut at a
/// fixed buffer size (long machine names, large counters).
void appendf(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list probe;
  va_copy(probe, args);
  const int need = std::vsnprintf(nullptr, 0, fmt, probe);
  va_end(probe);
  EMUSIM_CHECK(need >= 0);
  const std::size_t old = out.size();
  out.resize(old + static_cast<std::size_t>(need) + 1);
  std::vsnprintf(out.data() + old, static_cast<std::size_t>(need) + 1, fmt,
                 args);
  va_end(args);
  out.resize(old + static_cast<std::size_t>(need));  // drop the NUL
}

double rate(std::uint64_t num, std::uint64_t den) {
  return den ? static_cast<double>(num) / static_cast<double>(den) : 0.0;
}

}  // namespace

std::vector<NodeletCounters> collect_counters(Machine& m, Time elapsed) {
  std::vector<NodeletCounters> out;
  out.reserve(static_cast<std::size_t>(m.num_nodelets()));
  for (int d = 0; d < m.num_nodelets(); ++d) {
    Nodelet& n = m.nodelet(d);
    NodeletCounters c;
    c.nodelet = d;
    c.reads = n.stats.reads;
    c.read_bytes = n.stats.read_bytes;
    c.writes = n.stats.writes;
    c.write_bytes = n.stats.write_bytes;
    c.remote_writes_in = n.stats.remote_writes_in;
    c.atomics_in = n.stats.atomics_in;
    c.thread_arrivals = n.stats.thread_arrivals;
    c.max_resident = n.stats.max_resident;
    const auto& ch = n.channel().stats();
    c.row_hits = ch.row_hits;
    c.row_misses = ch.row_misses;
    c.bus_busy = n.channel().bus_busy_time();
    c.row_hit_rate = rate(c.row_hits, c.row_hits + c.row_misses);
    c.channel_utilization =
        elapsed > 0 ? static_cast<double>(c.bus_busy) /
                          static_cast<double>(elapsed)
                    : 0.0;
    out.push_back(c);
  }
  return out;
}

std::string counters_report(Machine& m, Time elapsed) {
  std::string out;

  appendf(out,
          "machine %s: elapsed %s, %llu threads (%llu remote spawns, "
          "%llu elided), %llu migrations (%llu inter-node)\n",
          m.cfg().name.c_str(), format_time(elapsed).c_str(),
          static_cast<unsigned long long>(m.stats.spawns),
          static_cast<unsigned long long>(m.stats.remote_spawns),
          static_cast<unsigned long long>(m.stats.inline_spawns),
          static_cast<unsigned long long>(m.stats.migrations),
          static_cast<unsigned long long>(m.stats.internode_migrations));
  if (m.stats.migration_latency_ns.count() > 0) {
    appendf(out, "migration latency: mean %.2f us, p99 ~%.2f us\n",
            m.stats.migration_latency_ns.summary().mean() / 1e3,
            static_cast<double>(m.stats.migration_latency_ns.quantile(0.99)) /
                1e3);
  }
  if (m.trace.enabled() && m.trace.truncated()) {
    appendf(out,
            "trace TRUNCATED: %llu records %s — per-event aggregations "
            "below stats are lower bounds\n",
            static_cast<unsigned long long>(m.trace.dropped()),
            m.trace.ring() ? "overwritten" : "dropped");
  }

  appendf(out, "%-4s %10s %10s %10s %8s %8s %8s %6s %7s %6s\n", "nlet",
          "reads", "readMB", "writes", "remwr", "atomics", "arrive", "maxres",
          "rowhit%", "bus%");
  for (const auto& c : collect_counters(m, elapsed)) {
    appendf(out,
            "%-4d %10llu %10.2f %10llu %8llu %8llu %8llu %6d %7.1f %6.1f\n",
            c.nodelet, static_cast<unsigned long long>(c.reads),
            static_cast<double>(c.read_bytes) / 1e6,
            static_cast<unsigned long long>(c.writes),
            static_cast<unsigned long long>(c.remote_writes_in),
            static_cast<unsigned long long>(c.atomics_in),
            static_cast<unsigned long long>(c.thread_arrivals), c.max_resident,
            100.0 * c.row_hit_rate, 100.0 * c.channel_utilization);
  }
  return out;
}

CounterSnapshot snapshot_counters(Machine& m, const std::string& phase) {
  CounterSnapshot s;
  s.phase = phase;
  s.t = m.engine().now();
  s.machine.migrations = m.stats.migrations;
  s.machine.internode_migrations = m.stats.internode_migrations;
  s.machine.spawns = m.stats.spawns;
  s.machine.remote_spawns = m.stats.remote_spawns;
  s.machine.inline_spawns = m.stats.inline_spawns;
  s.machine.threads_completed = m.stats.threads_completed;
  s.nodelets = collect_counters(m, s.t);
  if (m.trace.enabled()) {
    s.migration_matrix = m.trace.migration_matrix(m.num_nodelets());
    s.trace_truncated = m.trace.truncated();
  }
  return s;
}

CounterDelta counters_delta(const CounterSnapshot& from,
                            const CounterSnapshot& to) {
  EMUSIM_CHECK(from.nodelets.size() == to.nodelets.size());
  CounterDelta d;
  d.from = from.phase;
  d.to = to.phase;
  d.t0 = from.t;
  d.t1 = to.t;
  d.machine.migrations = to.machine.migrations - from.machine.migrations;
  d.machine.internode_migrations =
      to.machine.internode_migrations - from.machine.internode_migrations;
  d.machine.spawns = to.machine.spawns - from.machine.spawns;
  d.machine.remote_spawns =
      to.machine.remote_spawns - from.machine.remote_spawns;
  d.machine.inline_spawns =
      to.machine.inline_spawns - from.machine.inline_spawns;
  d.machine.threads_completed =
      to.machine.threads_completed - from.machine.threads_completed;

  const Time window = d.t1 - d.t0;
  d.nodelets.reserve(to.nodelets.size());
  for (std::size_t i = 0; i < to.nodelets.size(); ++i) {
    const NodeletCounters& a = from.nodelets[i];
    const NodeletCounters& b = to.nodelets[i];
    NodeletCounters c;
    c.nodelet = b.nodelet;
    c.reads = b.reads - a.reads;
    c.read_bytes = b.read_bytes - a.read_bytes;
    c.writes = b.writes - a.writes;
    c.write_bytes = b.write_bytes - a.write_bytes;
    c.remote_writes_in = b.remote_writes_in - a.remote_writes_in;
    c.atomics_in = b.atomics_in - a.atomics_in;
    c.thread_arrivals = b.thread_arrivals - a.thread_arrivals;
    c.max_resident = b.max_resident;  // a high-water mark does not diff
    c.row_hits = b.row_hits - a.row_hits;
    c.row_misses = b.row_misses - a.row_misses;
    c.bus_busy = b.bus_busy - a.bus_busy;
    c.row_hit_rate = rate(c.row_hits, c.row_hits + c.row_misses);
    c.channel_utilization =
        window > 0 ? static_cast<double>(c.bus_busy) /
                         static_cast<double>(window)
                   : 0.0;
    d.nodelets.push_back(c);
  }

  if (!to.migration_matrix.empty()) {
    d.migration_matrix = to.migration_matrix;
    for (std::size_t s = 0; s < d.migration_matrix.size(); ++s) {
      for (std::size_t t = 0; t < d.migration_matrix[s].size(); ++t) {
        if (s < from.migration_matrix.size() &&
            t < from.migration_matrix[s].size()) {
          // Clamp at zero: a ring-mode trace can have overwritten records
          // counted in `from` but gone by `to` (trace_truncated flags it).
          const std::uint64_t f = from.migration_matrix[s][t];
          std::uint64_t& cell = d.migration_matrix[s][t];
          cell = cell >= f ? cell - f : 0;
        }
      }
    }
  }
  d.trace_truncated = from.trace_truncated || to.trace_truncated;
  return d;
}

}  // namespace emusim::emu
