#include "emu/config.hpp"

namespace emusim::emu {

SystemConfig SystemConfig::chick_hw() {
  SystemConfig c;
  c.name = "chick_hw";
  c.nodes = 1;
  c.nodelets_per_node = 8;
  c.gcs_per_nodelet = 1;
  c.gc_clock_hz = 150e6;
  c.threadlet_slots_per_gc = 64;
  c.dram = mem::DramTiming::ncdram_chick();
  c.migrations_per_sec = 9e6;
  c.migration_latency = us(1.4);
  return c;
}

SystemConfig SystemConfig::chick_as_simulated() {
  SystemConfig c = chick_hw();
  c.name = "chick_as_simulated";
  // The vendor's architectural simulator does not model the hardware
  // migration engine's throughput ceiling (paper Fig 10: 16 M vs 9 M
  // migrations/s) and models a shallower in-flight latency.
  c.migrations_per_sec = 16e6;
  c.migration_latency = us(1.0);
  return c;
}

SystemConfig SystemConfig::chick_fullspeed() {
  SystemConfig c;
  c.name = "chick_fullspeed";
  c.nodes = 1;
  c.nodelets_per_node = 8;
  c.gcs_per_nodelet = 4;
  c.gc_clock_hz = 300e6;
  c.threadlet_slots_per_gc = 64;
  c.dram = mem::DramTiming::ncdram_fullspeed();
  c.migrations_per_sec = 32e6;  // hardened migration engine, scaled with clock
  c.migration_latency = us(0.7);
  return c;
}

SystemConfig SystemConfig::fullspeed_multinode(int nodes) {
  SystemConfig c = chick_fullspeed();
  c.name = "fullspeed_" + std::to_string(nodes) + "node";
  c.nodes = nodes;
  return c;
}

}  // namespace emusim::emu
