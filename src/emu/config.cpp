#include "emu/config.hpp"

#include "common/check.hpp"

namespace emusim::emu {

void SystemConfig::validate() const {
  EMUSIM_CHECK_MSG(nodes >= 1, name.c_str());
  EMUSIM_CHECK_MSG(nodelets_per_node >= 1, name.c_str());
  EMUSIM_CHECK_MSG(gcs_per_nodelet >= 1, name.c_str());
  EMUSIM_CHECK_MSG(threadlet_slots_per_gc >= 1, name.c_str());
  // Overflow headroom for int index arithmetic (total_nodelets, nodelet ->
  // node mapping, slot counts).  Divide rather than multiply so the guard
  // itself cannot overflow.
  EMUSIM_CHECK_MSG(nodes <= kMaxTotalNodelets / nodelets_per_node,
                   "total_nodelets exceeds kMaxTotalNodelets");
  EMUSIM_CHECK_MSG(
      gcs_per_nodelet <= kMaxSlotsPerNodelet / threadlet_slots_per_gc,
      "slots_per_nodelet exceeds kMaxSlotsPerNodelet");
  EMUSIM_CHECK_MSG(gc_clock_hz > 0.0, name.c_str());
  EMUSIM_CHECK_MSG(migrations_per_sec > 0.0, name.c_str());
  EMUSIM_CHECK_MSG(migration_latency >= 0, name.c_str());
  EMUSIM_CHECK_MSG(internode_bytes_per_sec > 0.0, name.c_str());
  // Multi-node machines run their shards under conservative windows with
  // lookahead = internode_latency; a non-positive lookahead cannot advance.
  EMUSIM_CHECK_MSG(nodes == 1 || internode_latency > 0,
                   "multi-node config needs a positive internode latency");
}

SystemConfig SystemConfig::chick_hw() {
  SystemConfig c;
  c.name = "chick_hw";
  c.nodes = 1;
  c.nodelets_per_node = 8;
  c.gcs_per_nodelet = 1;
  c.gc_clock_hz = 150e6;
  c.threadlet_slots_per_gc = 64;
  c.dram = mem::DramTiming::ncdram_chick();
  c.migrations_per_sec = 9e6;
  c.migration_latency = us(1.4);
  return c;
}

SystemConfig SystemConfig::chick_as_simulated() {
  SystemConfig c = chick_hw();
  c.name = "chick_as_simulated";
  // The vendor's architectural simulator does not model the hardware
  // migration engine's throughput ceiling (paper Fig 10: 16 M vs 9 M
  // migrations/s) and models a shallower in-flight latency.
  c.migrations_per_sec = 16e6;
  c.migration_latency = us(1.0);
  return c;
}

SystemConfig SystemConfig::chick_fullspeed() {
  SystemConfig c;
  c.name = "chick_fullspeed";
  c.nodes = 1;
  c.nodelets_per_node = 8;
  c.gcs_per_nodelet = 4;
  c.gc_clock_hz = 300e6;
  c.threadlet_slots_per_gc = 64;
  c.dram = mem::DramTiming::ncdram_fullspeed();
  c.migrations_per_sec = 32e6;  // hardened migration engine, scaled with clock
  c.migration_latency = us(0.7);
  return c;
}

SystemConfig SystemConfig::fullspeed_multinode(int nodes) {
  EMUSIM_CHECK_MSG(nodes >= 1, "fullspeed_multinode wants nodes >= 1");
  SystemConfig c = chick_fullspeed();
  c.name = "fullspeed_" + std::to_string(nodes) + "node";
  c.nodes = nodes;
  c.validate();
  return c;
}

SystemConfig SystemConfig::chick_fullspeed_nx(int nodelets) {
  EMUSIM_CHECK_MSG(nodelets >= 8 && nodelets % 8 == 0,
                   "chick_fullspeed_nx wants a positive multiple of 8");
  SystemConfig c = fullspeed_multinode(nodelets / 8);
  c.name = "chick_fullspeed_" + std::to_string(nodelets) + "x";
  return c;
}

}  // namespace emusim::emu
