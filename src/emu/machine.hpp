// The Emu machine model and threadlet runtime.
//
// A Machine assembles nodes, nodelets, Gossamer cores, NCDRAM channels, and
// migration engines per a SystemConfig.  Simulated threads ("threadlets")
// are C++20 coroutines driven by the DES engine; each carries a Context that
// tracks which nodelet it currently occupies and provides the timed
// operations of the programming model:
//
//   co_await ctx.issue(cycles)        — consume instruction issue bandwidth
//   co_await ctx.read_local(a, n)     — blocking load from the home channel
//   ctx.write_local(a, n)             — posted store
//   ctx.write_remote(nlet, a, n)      — memory-side remote write (no
//                                       migration; paper Section II)
//   co_await ctx.migrate_to(nlet)     — move this thread's context
//   co_await ctx.spawn(body)          — cilk_spawn (local; serial elision
//                                       when no threadlet slot is free)
//   co_await ctx.spawn_at(nlet, body) — remote spawn through the fabric
//   co_await ctx.sync()               — cilk_sync (also implicit at thread
//                                       exit)
//
// Modeling summary (see DESIGN.md §5): a Gossamer core is a FIFO issue
// server shared by its resident threadlets — with many threads repeatedly
// requesting small instruction batches, FIFO order approximates the
// hardware's round-robin issue.  Loads block the issuing threadlet (the
// cores are cache-less and in-order; multithreading, not ILP, covers
// latency).  A remote read migrates the thread: it releases its threadlet
// slot, queues on its node's migration engine (throughput cap + in-flight
// latency), and acquires a slot at the destination.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "emu/config.hpp"
#include "mem/dram.hpp"
#include "sim/engine.hpp"
#include "sim/op.hpp"
#include "sim/resource.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "sim/task.hpp"

namespace emusim::emu {

class Machine;
class Context;

/// Per-nodelet event counts, exposed for tests and reports.
struct NodeletStats {
  std::uint64_t reads = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t writes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t remote_writes_in = 0;  ///< memory-side writes landing here
  std::uint64_t atomics_in = 0;
  std::uint64_t thread_arrivals = 0;   ///< migrations + spawns landing here
  int resident = 0;
  int max_resident = 0;
};

class GossamerCore {
 public:
  explicit GossamerCore(sim::Engine& eng) : issue_(eng) {}
  sim::FifoServer& issue() { return issue_; }

 private:
  sim::FifoServer issue_;
};

class Nodelet {
 public:
  Nodelet(sim::Engine& eng, const SystemConfig& cfg, int index);

  int index() const { return index_; }
  mem::DramChannel& channel() { return channel_; }
  sim::Semaphore& slots() { return slots_; }
  GossamerCore& core(int i) { return cores_[static_cast<std::size_t>(i)]; }
  int num_cores() const { return static_cast<int>(cores_.size()); }
  /// Round-robin core assignment for a thread arriving at this nodelet.
  int assign_core() {
    const int c = rr_core_;
    rr_core_ = (rr_core_ + 1) % num_cores();
    return c;
  }

  /// Bump-allocate local memory; returns the local byte address.  Local
  /// addresses feed the channel's bank/row model, so allocation compactness
  /// affects row-buffer locality just as on the real machine.
  std::uint64_t allocate(std::uint64_t bytes, std::uint64_t align = 8);

  NodeletStats stats;

 private:
  int index_;
  std::vector<GossamerCore> cores_;
  mem::DramChannel channel_;
  sim::Semaphore slots_;
  int rr_core_ = 0;
  std::uint64_t brk_ = 0;
};

/// One node card: eight nodelets share a migration engine (the crossbar
/// between nodelets) and a RapidIO egress link toward other nodes.
class Node {
 public:
  Node(sim::Engine& eng, const SystemConfig& cfg)
      : migration_engine_(eng, cfg.migrations_per_sec, cfg.migration_latency),
        link_(eng) {}

  sim::RateGate& migration_engine() { return migration_engine_; }
  sim::FifoServer& link() { return link_; }

 private:
  sim::RateGate migration_engine_;
  sim::FifoServer link_;
};

struct MachineStats {
  std::uint64_t migrations = 0;
  std::uint64_t internode_migrations = 0;
  std::uint64_t spawns = 0;
  std::uint64_t remote_spawns = 0;
  std::uint64_t inline_spawns = 0;  ///< serial elisions (no slot free)
  std::uint64_t threads_completed = 0;
  sim::Log2Histogram migration_latency_ns;  ///< per-migration latency, ns
};

namespace detail {
template <class F>
sim::Task thread_main(Machine* m, std::unique_ptr<Context> ctx, F body);
}

/// Thread-local machine lifecycle hook, used by the observability layer
/// (report/observe.hpp) to attach tracing and counter snapshots to every
/// Machine a bench constructs — kernels build their machines internally, so
/// flag-driven observation cannot reach them through call arguments.  The
/// hook is thread-local (not process-wide) so the parallel sweep runner
/// (bench/sweep_pool.hpp) can observe each worker's machines independently:
/// install on the thread that constructs the machines you want to see.
/// Observers must outlive every Machine constructed while installed.
class MachineObserver {
 public:
  virtual ~MachineObserver() = default;
  /// Called at the end of Machine construction (enable tracing here).
  virtual void machine_created(Machine&) {}
  /// Called at the start of Machine destruction, with the machine's final
  /// simulated time; all counters and the trace are still readable.
  virtual void machine_finished(Machine&, Time /*elapsed*/) {}
};

/// Install `obs` on the calling thread (nullptr to uninstall); returns the
/// thread's previous observer.
MachineObserver* set_machine_observer(MachineObserver* obs);
MachineObserver* machine_observer();

class Machine {
 public:
  explicit Machine(const SystemConfig& cfg);
  ~Machine();
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  sim::Engine& engine() { return eng_; }
  const SystemConfig& cfg() const { return cfg_; }
  Time cycle() const { return cycle_; }

  int num_nodelets() const { return cfg_.total_nodelets(); }
  Nodelet& nodelet(int i) { return nodelets_[static_cast<std::size_t>(i)]; }
  int node_index_of(int nodelet) const {
    return nodelet / cfg_.nodelets_per_node;
  }
  Node& node(int i) { return nodes_[static_cast<std::size_t>(i)]; }
  Node& node_of_nodelet(int nlet) { return node(node_index_of(nlet)); }

  MachineStats stats;
  /// Optional event trace (see sim/trace.hpp); call trace.enable() (or
  /// enable_ring) before run_root to capture per-nodelet event streams.
  sim::Tracer trace;

  /// Next simulated thread id (monotonic per machine; stamped into trace
  /// records so exports can follow one thread across nodelets).
  int alloc_thread_id() { return next_thread_id_++; }

  /// Launch `body` as the root threadlet on nodelet 0 and run the
  /// simulation to completion.  Returns elapsed simulated time.
  /// `body` is any callable (Context&) -> sim::Op<>.
  template <class F>
  Time run_root(F body) {
    const Time t0 = eng_.now();
    start_fabric_thread(/*birth=*/0, /*src=*/0, /*parent=*/nullptr,
                        std::move(body), /*via_fabric=*/false);
    eng_.run();
    return eng_.now() - t0;
  }

  // --- internal spawn plumbing (used by Context) -------------------------

  /// Try to start a thread on `birth` with a pre-acquired slot (local
  /// cilk_spawn).  Returns false if no slot is free — the caller performs
  /// serial elision.
  template <class F>
  bool try_start_local_thread(int birth, Context* parent, const F& body);

  /// Start a thread whose spawn packet traverses the fabric (remote spawn)
  /// or that may wait for a slot (root).  Never fails; the thread queues on
  /// the destination's slot semaphore.
  template <class F>
  void start_fabric_thread(int birth, int src, Context* parent, F body,
                           bool via_fabric = true);

 private:
  template <class F>
  friend sim::Task detail::thread_main(Machine*, std::unique_ptr<Context>, F);

  SystemConfig cfg_;
  sim::Engine eng_;
  Time cycle_;
  std::deque<Nodelet> nodelets_;
  std::deque<Node> nodes_;
  int next_thread_id_ = 0;
};

/// Per-threadlet state and the timed-operation API.  Created by the spawn
/// machinery; kernels receive it by reference and must not store it beyond
/// the kernel's lifetime.
class Context {
 public:
  Context(Machine& m, Context* parent, int birth, bool via_fabric, int src,
          bool has_slot)
      : machine_(&m),
        parent_(parent),
        tid_(m.alloc_thread_id()),
        birth_nodelet_(birth),
        src_nodelet_(src),
        via_fabric_(via_fabric),
        has_slot_at_birth_(has_slot) {}

  Machine& machine() { return *machine_; }
  sim::Engine& engine() { return machine_->engine(); }
  const SystemConfig& cfg() const { return machine_->cfg(); }
  int nodelet() const { return nodelet_; }
  int tid() const { return tid_; }

  /// Awaitable: execute `cycles` instructions on this thread's core.
  ///
  /// The Gossamer core is a fine-grained multithreaded (barrel) core: it
  /// rotates issue slots round-robin over its resident threadlets, so one
  /// thread's batch of k instructions takes ~k * resident cycles of wall
  /// time while the core itself retires work at full rate.  We model that
  /// by accounting the true work (k cycles) on the core's FIFO issue server
  /// — preserving aggregate issue bandwidth — and delaying this thread's
  /// resumption by the additional (resident-1) * k cycles it spends waiting
  /// for its rotation slots.
  auto issue(std::uint64_t cycles) {
    struct Awaiter {
      sim::FifoServer& srv;
      sim::Engine& eng;
      Time work;
      Time rotation_wait;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        const Time depart = srv.post(work);
        eng.schedule(depart + rotation_wait, h);
      }
      void await_resume() const noexcept {}
    };
    Nodelet& n = machine_->nodelet(nodelet_);
    const Time work = static_cast<Time>(cycles) * machine_->cycle();
    // Residents split across this nodelet's cores; each core rotates over
    // its own share.
    const int per_core =
        (n.stats.resident + n.num_cores() - 1) / n.num_cores();
    const int competitors = per_core > 1 ? per_core : 1;
    return Awaiter{n.core(core_).issue(), machine_->engine(), work,
                   work * (competitors - 1)};
  }

  /// Awaitable: blocking load of `bytes` at local address `addr` on the
  /// current nodelet's channel.  The caller must already be co-located with
  /// the data (migrate first; see load helpers in the views).
  auto read_local(std::uint64_t addr, std::uint32_t bytes) {
    Nodelet& n = machine_->nodelet(nodelet_);
    ++n.stats.reads;
    n.stats.read_bytes += bytes;
    machine_->trace.record(engine().now(), sim::TraceKind::mem_read,
                           nodelet_, -1, bytes, tid_);
    return n.channel().read(addr, bytes);
  }

  /// Posted store to the current nodelet (not on the critical path).
  void write_local(std::uint64_t addr, std::uint32_t bytes) {
    Nodelet& n = machine_->nodelet(nodelet_);
    ++n.stats.writes;
    n.stats.write_bytes += bytes;
    machine_->trace.record(engine().now(), sim::TraceKind::mem_write,
                           nodelet_, -1, bytes, tid_);
    n.channel().write(addr, bytes);
  }

  /// Memory-side remote write: the value travels to the remote nodelet's
  /// memory-side processor; the thread does not migrate and does not wait.
  void write_remote(int nlet, std::uint64_t addr, std::uint32_t bytes) {
    Nodelet& n = machine_->nodelet(nlet);
    ++n.stats.writes;
    ++n.stats.remote_writes_in;
    n.stats.write_bytes += bytes;
    machine_->trace.record(engine().now(), sim::TraceKind::mem_write, nlet,
                           nodelet_, bytes, tid_);
    n.channel().write(addr, bytes);
  }

  /// Memory-side remote atomic (e.g. remote add).  Posted; occupies the
  /// remote channel for a read-modify-write.
  void atomic_remote(int nlet, std::uint64_t addr) {
    Nodelet& n = machine_->nodelet(nlet);
    ++n.stats.atomics_in;
    machine_->trace.record(engine().now(), sim::TraceKind::remote_atomic,
                           nlet, nodelet_, 0, tid_);
    n.channel().write(addr, 8);  // RMW occupies roughly one word access
    n.channel().write(addr, 8);
  }

  /// Memory-side remote atomic *with* a returned value (fetch-add style):
  /// the request travels to the remote memory-side processor, performs the
  /// read-modify-write there, and the thread blocks for the round trip —
  /// still far cheaper than migrating there and back.
  sim::Op<> atomic_fetch_remote(int nlet, std::uint64_t addr);

  /// Migrate this thread to nodelet `dest` (no-op when already there).
  sim::Op<> migrate_to(int dest);

  /// cilk_spawn: start `body` as a new threadlet on the current nodelet.
  /// When every threadlet slot is taken the spawn elides to a serial call,
  /// matching Cilk semantics (and avoiding slot-exhaustion deadlock).
  template <class F>
  sim::Op<> spawn(F body) {
    co_await issue(static_cast<std::uint64_t>(cfg().spawn_issue_cycles));
    if (machine_->try_start_local_thread(nodelet_, this, body)) co_return;
    ++machine_->stats.inline_spawns;
    co_await issue(static_cast<std::uint64_t>(cfg().thread_startup_cycles));
    co_await body(*this);
  }

  /// Remote spawn: the spawn packet traverses the migration fabric and the
  /// child begins life on nodelet `dest`.
  template <class F>
  sim::Op<> spawn_at(int dest, F body) {
    co_await issue(static_cast<std::uint64_t>(cfg().spawn_issue_cycles));
    machine_->start_fabric_thread(dest, nodelet_, this, std::move(body));
  }

  /// cilk_sync: wait until all threads spawned by this context finish.
  auto sync() {
    struct Awaiter {
      Context& ctx;
      bool await_ready() const noexcept { return ctx.live_children_ == 0; }
      void await_suspend(std::coroutine_handle<> h) { ctx.sync_waiter_ = h; }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  int live_children() const { return live_children_; }

 private:
  template <class F>
  friend sim::Task detail::thread_main(Machine*, std::unique_ptr<Context>, F);
  friend class Machine;

  void arrive(int nlet) {
    nodelet_ = nlet;
    Nodelet& n = machine_->nodelet(nlet);
    core_ = n.assign_core();
    ++n.stats.thread_arrivals;
    ++n.stats.resident;
    n.stats.max_resident = std::max(n.stats.max_resident, n.stats.resident);
  }

  void depart() {
    Nodelet& n = machine_->nodelet(nodelet_);
    --n.stats.resident;
    n.slots().release();
  }

  void child_done() {
    --live_children_;
    if (live_children_ == 0 && sync_waiter_) {
      auto h = std::exchange(sync_waiter_, {});
      // Sync wakeups are same-timestamp by construction: use the engine's
      // zero-delay FIFO lane so deep spawn trees never churn the heap.
      machine_->engine().schedule_now(h);
    }
  }

  Machine* machine_;
  Context* parent_;
  int tid_;
  int nodelet_ = -1;
  int core_ = 0;
  int birth_nodelet_;
  int src_nodelet_;
  bool via_fabric_;
  bool has_slot_at_birth_;
  int live_children_ = 0;
  std::coroutine_handle<> sync_waiter_;
};

namespace detail {

/// The wrapper coroutine that hosts one threadlet: deliver the spawn packet,
/// take a slot, pay startup cost, run the kernel body, implicit cilk_sync,
/// release the slot.  The completion hook (installed by the spawner) then
/// notifies the parent.
template <class F>
sim::Task thread_main(Machine* m, std::unique_ptr<Context> ctx, F body) {
  Context& c = *ctx;
  if (c.via_fabric_) {
    const int src_node = m->node_index_of(c.src_nodelet_);
    const int dst_node = m->node_index_of(c.birth_nodelet_);
    co_await m->node(src_node).migration_engine().pass();
    if (src_node != dst_node) {
      const Time wire = transfer_time(
          static_cast<double>(m->cfg().thread_context_bytes),
          m->cfg().internode_bytes_per_sec);
      co_await m->node(src_node).link().access(wire);
      co_await m->engine().sleep(m->cfg().internode_latency);
      co_await m->node(dst_node).migration_engine().pass();
    }
  }
  if (!c.has_slot_at_birth_) {
    co_await m->nodelet(c.birth_nodelet_).slots().acquire();
  }
  c.arrive(c.birth_nodelet_);
  m->trace.record(m->engine().now(), sim::TraceKind::thread_start,
                  c.birth_nodelet_, -1, 0, c.tid_);
  co_await c.issue(static_cast<std::uint64_t>(m->cfg().thread_startup_cycles));
  co_await body(c);
  co_await c.sync();  // implicit cilk_sync at thread exit
  m->trace.record(m->engine().now(), sim::TraceKind::thread_end, c.nodelet_,
                  -1, 0, c.tid_);
  c.depart();
}

}  // namespace detail

template <class F>
bool Machine::try_start_local_thread(int birth, Context* parent,
                                     const F& body) {
  if (!nodelet(birth).slots().try_acquire()) return false;
  ++stats.spawns;
  if (parent) ++parent->live_children_;
  auto ctx = std::make_unique<Context>(*this, parent, birth,
                                       /*via_fabric=*/false, birth,
                                       /*has_slot=*/true);
  trace.record(eng_.now(), sim::TraceKind::thread_spawn, birth,
               parent ? parent->nodelet_ : -1, 0, ctx->tid_);
  auto task = detail::thread_main(this, std::move(ctx), body);
  task.on_complete([this, parent] {
    ++stats.threads_completed;
    if (parent) parent->child_done();
  });
  task.start();
  return true;
}

template <class F>
void Machine::start_fabric_thread(int birth, int src, Context* parent, F body,
                                  bool via_fabric) {
  ++stats.spawns;
  if (via_fabric) ++stats.remote_spawns;
  if (parent) ++parent->live_children_;
  auto ctx = std::make_unique<Context>(*this, parent, birth, via_fabric, src,
                                       /*has_slot=*/false);
  trace.record(eng_.now(), sim::TraceKind::thread_spawn, birth,
               parent ? parent->nodelet_ : -1, 0, ctx->tid_);
  auto task = detail::thread_main(this, std::move(ctx), std::move(body));
  task.on_complete([this, parent] {
    ++stats.threads_completed;
    if (parent) parent->child_done();
  });
  task.start();
}

}  // namespace emusim::emu
