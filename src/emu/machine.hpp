// The Emu machine model and threadlet runtime.
//
// A Machine assembles nodes, nodelets, Gossamer cores, NCDRAM channels, and
// migration engines per a SystemConfig.  Simulated threads ("threadlets")
// are C++20 coroutines driven by the DES engine; each carries a Context that
// tracks which nodelet it currently occupies and provides the timed
// operations of the programming model:
//
//   co_await ctx.issue(cycles)        — consume instruction issue bandwidth
//   co_await ctx.read_local(a, n)     — blocking load from the home channel
//   ctx.write_local(a, n)             — posted store
//   ctx.write_remote(nlet, a, n)      — memory-side remote write (no
//                                       migration; paper Section II)
//   co_await ctx.migrate_to(nlet)     — move this thread's context
//   co_await ctx.spawn(body)          — cilk_spawn (local; serial elision
//                                       when no threadlet slot is free)
//   co_await ctx.spawn_at(nlet, body) — remote spawn through the fabric
//   co_await ctx.sync()               — cilk_sync (also implicit at thread
//                                       exit)
//
// Modeling summary (see DESIGN.md §5): a Gossamer core is a FIFO issue
// server shared by its resident threadlets — with many threads repeatedly
// requesting small instruction batches, FIFO order approximates the
// hardware's round-robin issue.  Loads block the issuing threadlet (the
// cores are cache-less and in-order; multithreading, not ILP, covers
// latency).  A remote read migrates the thread: it releases its threadlet
// slot, queues on its node's migration engine (throughput cap + in-flight
// latency), and acquires a slot at the destination.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "emu/config.hpp"
#include "emu/runtime/footprint.hpp"
#include "mem/dram.hpp"
#include "sim/engine.hpp"
#include "sim/op.hpp"
#include "sim/resource.hpp"
#include "sim/shard.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "sim/task.hpp"

namespace emusim::emu {

class Machine;
class Context;

/// Per-nodelet event counts, exposed for tests and reports.
struct NodeletStats {
  std::uint64_t reads = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t writes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t remote_writes_in = 0;  ///< memory-side writes landing here
  std::uint64_t atomics_in = 0;
  std::uint64_t thread_arrivals = 0;   ///< migrations + spawns landing here
  int resident = 0;
  int max_resident = 0;
};

class GossamerCore {
 public:
  explicit GossamerCore(sim::Engine& eng) : issue_(eng) {}
  sim::FifoServer& issue() { return issue_; }

 private:
  sim::FifoServer issue_;
};

class Nodelet {
 public:
  Nodelet(sim::Engine& eng, const SystemConfig& cfg, int index);

  int index() const { return index_; }
  mem::DramChannel& channel() { return channel_; }
  sim::Semaphore& slots() { return slots_; }
  GossamerCore& core(int i) { return cores_[static_cast<std::size_t>(i)]; }
  int num_cores() const { return static_cast<int>(cores_.size()); }
  /// Round-robin core assignment for a thread arriving at this nodelet.
  int assign_core() {
    const int c = rr_core_;
    rr_core_ = (rr_core_ + 1) % num_cores();
    return c;
  }

  /// Bump-allocate local memory; returns the local byte address.  Local
  /// addresses feed the channel's bank/row model, so allocation compactness
  /// affects row-buffer locality just as on the real machine.
  std::uint64_t allocate(std::uint64_t bytes, std::uint64_t align = 8);

  NodeletStats stats;

 private:
  int index_;
  std::vector<GossamerCore> cores_;
  mem::DramChannel channel_;
  sim::Semaphore slots_;
  int rr_core_ = 0;
  std::uint64_t brk_ = 0;
};

/// One node card: eight nodelets share a migration engine (the crossbar
/// between nodelets) and a RapidIO egress link toward other nodes.
class Node {
 public:
  Node(sim::Engine& eng, const SystemConfig& cfg)
      : migration_engine_(eng, cfg.migrations_per_sec, cfg.migration_latency),
        link_(eng) {}

  sim::RateGate& migration_engine() { return migration_engine_; }
  sim::FifoServer& link() { return link_; }

 private:
  sim::RateGate migration_engine_;
  sim::FifoServer link_;
};

struct MachineStats {
  std::uint64_t migrations = 0;
  std::uint64_t internode_migrations = 0;
  std::uint64_t spawns = 0;
  std::uint64_t remote_spawns = 0;
  std::uint64_t inline_spawns = 0;  ///< serial elisions (no slot free)
  std::uint64_t threads_completed = 0;
  sim::Log2Histogram migration_latency_ns;  ///< per-migration latency, ns

  /// Fold another stats block into this one (per-shard stats are merged in
  /// shard order after a sharded run).
  void merge_from(const MachineStats& o) {
    migrations += o.migrations;
    internode_migrations += o.internode_migrations;
    spawns += o.spawns;
    remote_spawns += o.remote_spawns;
    inline_spawns += o.inline_spawns;
    threads_completed += o.threads_completed;
    migration_latency_ns.merge(o.migration_latency_ns);
  }
};

namespace detail {
template <class F>
sim::Task thread_main(Machine* m, std::unique_ptr<Context> ctx, F body);
}

/// Thread-local machine lifecycle hook, used by the observability layer
/// (report/observe.hpp) to attach tracing and counter snapshots to every
/// Machine a bench constructs — kernels build their machines internally, so
/// flag-driven observation cannot reach them through call arguments.  The
/// hook is thread-local (not process-wide) so the parallel sweep runner
/// (bench/sweep_pool.hpp) can observe each worker's machines independently:
/// install on the thread that constructs the machines you want to see.
/// Observers must outlive every Machine constructed while installed.
class MachineObserver {
 public:
  virtual ~MachineObserver() = default;
  /// Called at the end of Machine construction (enable tracing here).
  virtual void machine_created(Machine&) {}
  /// Called at the start of Machine destruction, with the machine's final
  /// simulated time; all counters and the trace are still readable.
  virtual void machine_finished(Machine&, Time /*elapsed*/) {}
};

/// Install `obs` on the calling thread (nullptr to uninstall); returns the
/// thread's previous observer.
MachineObserver* set_machine_observer(MachineObserver* obs);
MachineObserver* machine_observer();

/// Thread-local intra-point engine parallelism: how many worker threads a
/// Machine constructed on this thread uses to run its shard engines (one
/// shard per node by default; clamped to the shard count, so single-node
/// machines are serial unless nodelet sharding is on).  Like the observer
/// hook, this is thread-local so the sweep runner can compose `--jobs`
/// (across points) with `--engine-threads` (within a point) per worker.
/// Returns the previous value.
int set_engine_threads(int n);
int engine_threads();

/// Engine shard granularity (see sim/shard.hpp).  `node` is the default:
/// one event-queue shard per node card, single-level windows with the
/// inter-node lookahead.  `nodelet` shards per nodelet, grouped by node
/// card under two-level windows (intra-node hop lookahead inside a node,
/// inter-node lookahead across nodes), so --engine-threads can scale to
/// the nodelet count instead of the node count.  Under either mode the
/// thread count never changes simulation results; the two modes are
/// distinct (equally valid) machine models, differing only in where
/// intra-node cross-nodelet deliveries pay the crossbar hop.  Thread-local
/// like set_engine_threads, captured at Machine construction.
enum class EngineShard { node, nodelet };
EngineShard set_engine_shard(EngineShard mode);
EngineShard engine_shard();

/// Per-thread run telemetry, accumulated as machines are destroyed: the
/// engine-speed and memory-footprint numbers the bench harness attaches to
/// sweep points (`engine_events`, `events_per_sec`, `mem_peak_bytes` —
/// see bench/bench_util.hpp).  Thread-local for the same reason as the
/// observer hook: each sweep worker's points must see only their own
/// machines.  Both fields are wall-clock-free and therefore deterministic
/// across --jobs and --engine-threads.
struct RunTelemetry {
  /// Σ over destroyed machines of Σ over shards of events_processed().
  std::uint64_t engine_events = 0;
  /// Max over destroyed machines of the HostFootprint high-water mark.
  std::uint64_t peak_host_bytes = 0;
};

/// Return the calling thread's accumulated telemetry and reset it to zero.
/// Benches call this once per sweep point, after the point's machines die.
RunTelemetry take_run_telemetry();

class Machine {
 public:
  explicit Machine(const SystemConfig& cfg);
  ~Machine();
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Shard 0's engine.  For single-node machines this is the one and only
  /// engine (the serial fast path); for sharded machines it is still the
  /// right clock to read after run_root, which synchronizes every shard to
  /// the global final time.
  sim::Engine& engine() { return set_.shard(0); }
  sim::EngineSet& engines() { return set_; }
  const SystemConfig& cfg() const { return cfg_; }
  Time cycle() const { return cycle_; }

  int num_nodelets() const { return cfg_.total_nodelets(); }
  Nodelet& nodelet(int i) { return nodelets_[static_cast<std::size_t>(i)]; }

  /// Host-side memory accounting shared with every allocation view built on
  /// this machine (emu/runtime/alloc.hpp).  The shared_ptr form lets views
  /// keep the counters alive regardless of view/machine destruction order.
  HostFootprint& host_footprint() { return *host_footprint_; }
  const HostFootprint& host_footprint() const { return *host_footprint_; }
  std::shared_ptr<HostFootprint> host_footprint_ptr() const {
    return host_footprint_;
  }

  int node_index_of(int nodelet) const {
    return nodelet / cfg_.nodelets_per_node;
  }
  Node& node(int i) { return nodes_[static_cast<std::size_t>(i)]; }
  Node& node_of_nodelet(int nlet) { return node(node_index_of(nlet)); }

  // --- sharding (per node, or per nodelet under --engine-shard=nodelet;
  // see sim/shard.hpp) ----------------------------------------------------

  int num_shards() const { return static_cast<int>(set_.shards()); }
  /// Engine shards per node card: 1 (node mode) or nodelets_per_node
  /// (nodelet mode).
  int shards_per_node() const { return shards_per_node_; }
  /// The shard that owns a nodelet's state (its engine, channel, slots,
  /// stats): the nodelet's node in node mode, the nodelet itself in nodelet
  /// mode.
  int shard_of_nodelet(int nlet) const {
    return shards_per_node_ > 1 ? nlet : node_index_of(nlet);
  }
  /// The shard that owns a *node's* shared resources (migration engine,
  /// egress link): the node's first shard.  Equals the node index in node
  /// mode.
  int gate_shard(int node) const { return node * shards_per_node_; }
  int node_of_shard(int s) const { return s / shards_per_node_; }
  /// Minimum latency a cross-shard post from `src_shard` to `dst_shard`
  /// must pay: zero same-shard, the intra-node crossbar hop within a node,
  /// the inter-node latency across nodes.  These are exactly the two
  /// window lookaheads of the hierarchical engine, so any post paying
  /// post_delay is lookahead-safe.
  Time post_delay(int src_shard, int dst_shard) const {
    if (src_shard == dst_shard) return 0;
    return node_of_shard(src_shard) == node_of_shard(dst_shard)
               ? cfg_.intranode_hop()
               : cfg_.internode_latency;
  }
  sim::Engine& shard_engine(int s) {
    return set_.shard(static_cast<std::size_t>(s));
  }
  /// The stats block a shard's worker may mutate.  Single shard: the public
  /// `stats` itself (mid-run reads stay exact); sharded: a per-shard block,
  /// folded into `stats` at the end of every run_root.
  MachineStats& shard_stats(int s) {
    return shard_stats_.empty() ? stats
                                : shard_stats_[static_cast<std::size_t>(s)];
  }

  /// Post a cross-shard delivery (applied remote write/atomic, sync
  /// protocol message) into the windowed mailboxes; `when` must pay at
  /// least post_delay(src, dst) (= the level's window lookahead).
  void post_remote(int src_shard, int dst_shard, Time when, sim::SmallFn fn) {
    set_.post_call(static_cast<std::size_t>(src_shard),
                   static_cast<std::size_t>(dst_shard), when, std::move(fn));
  }
  /// Post a cross-shard coroutine resumption (fabric hop, sync wake).
  void post_wake(int src_shard, int dst_shard, Time when,
                 std::coroutine_handle<> h) {
    set_.post(static_cast<std::size_t>(src_shard),
              static_cast<std::size_t>(dst_shard), when, h);
  }

  /// Route a child-completion notification to the parent's home shard (the
  /// shard of its birth nodelet, which owns the sync bookkeeping).
  void notify_child_done(Context* parent, int child_shard);

  MachineStats stats;
  /// Optional event trace (see sim/trace.hpp); call trace.enable() (or
  /// enable_ring) before run_root to capture per-nodelet event streams.
  sim::Tracer trace;

  /// Record a trace event from shard `shard`.  Single shard: straight into
  /// the tracer (the serial path, byte-identical to the old engine).
  /// Sharded: into the shard's staging buffer, merged into the tracer at
  /// every window barrier in canonical (t, shard) order.
  void record_trace(int shard, Time t, sim::TraceKind kind, std::int32_t a,
                    std::int32_t b = -1, std::uint64_t arg = 0,
                    std::int32_t tid = -1) {
    if (!trace.enabled()) return;
    if (trace_staging_.empty()) {
      trace.record(t, kind, a, b, arg, tid);
      return;
    }
    trace_staging_[static_cast<std::size_t>(shard)].push_back(
        sim::TraceRecord{t, kind, a, b, tid, arg});
  }

  /// Next simulated thread id.  Ids are striped by creation shard
  /// (counter * num_shards + shard) so allocation is shard-local and
  /// deterministic regardless of worker-thread count; a single shard
  /// degenerates to the old monotonic sequence.  Stamped into trace records
  /// so exports can follow one thread across nodelets.
  int alloc_thread_id(int shard) {
    return next_tid_[static_cast<std::size_t>(shard)]++ * num_shards() + shard;
  }

  /// Launch `body` as the root threadlet on nodelet 0 and run the
  /// simulation to completion.  Returns elapsed simulated time.
  /// `body` is any callable (Context&) -> sim::Op<>.
  ///
  /// Multi-node machines run their shards under conservative time windows
  /// with lookahead = the inter-node latency (the minimum latency of any
  /// cross-shard interaction), on engine_threads() workers.  The thread
  /// count never changes the simulation: shard structure is fixed by the
  /// config, and cross-shard messages are merged in a canonical order.
  template <class F>
  Time run_root(F body) {
    const Time t0 = engine().now();
    start_fabric_thread(/*birth=*/0, /*src=*/0, /*parent=*/nullptr,
                        std::move(body), /*via_fabric=*/false);
    const Time t1 = set_.run(cfg_.internode_latency, engine_threads());
    fold_stats();
    return t1 - t0;
  }

  // --- internal spawn plumbing (used by Context) -------------------------

  /// Try to start a thread on `birth` with a pre-acquired slot (local
  /// cilk_spawn).  Returns false if no slot is free — the caller performs
  /// serial elision.
  template <class F>
  bool try_start_local_thread(int birth, Context* parent, const F& body);

  /// Start a thread whose spawn packet traverses the fabric (remote spawn)
  /// or that may wait for a slot (root).  Never fails; the thread queues on
  /// the destination's slot semaphore.
  template <class F>
  void start_fabric_thread(int birth, int src, Context* parent, F body,
                           bool via_fabric = true);

 private:
  template <class F>
  friend sim::Task detail::thread_main(Machine*, std::unique_ptr<Context>, F);

  /// Fold per-shard stats into the public `stats` (no-op for one shard).
  void fold_stats();
  /// Merge the window's per-shard trace staging into the tracer, ordered by
  /// (t, shard, intra-shard order).  Installed as the EngineSet window hook.
  void merge_trace_window();

  SystemConfig cfg_;
  int shards_per_node_;  ///< captured from engine_shard() at construction
  sim::EngineSet set_;
  std::shared_ptr<HostFootprint> host_footprint_ =
      std::make_shared<HostFootprint>();
  Time cycle_;
  std::deque<Nodelet> nodelets_;
  std::deque<Node> nodes_;
  std::vector<int> next_tid_;               ///< per-shard tid counters
  std::vector<MachineStats> shard_stats_;   ///< empty when single shard
  std::vector<std::vector<sim::TraceRecord>> trace_staging_;  ///< ditto
};

/// Per-threadlet state and the timed-operation API.  Created by the spawn
/// machinery; kernels receive it by reference and must not store it beyond
/// the kernel's lifetime.
class Context {
 public:
  Context(Machine& m, Context* parent, int birth, bool via_fabric, int src,
          bool has_slot)
      : machine_(&m),
        parent_(parent),
        shard_(m.shard_of_nodelet(via_fabric ? src : birth)),
        home_shard_(m.shard_of_nodelet(birth)),
        tid_(m.alloc_thread_id(shard_)),
        birth_nodelet_(birth),
        src_nodelet_(src),
        via_fabric_(via_fabric),
        has_slot_at_birth_(has_slot) {}

  Machine& machine() { return *machine_; }
  /// The engine of the shard this thread currently executes on.
  sim::Engine& engine() { return machine_->shard_engine(shard_); }
  const SystemConfig& cfg() const { return machine_->cfg(); }
  int nodelet() const { return nodelet_; }
  int shard() const { return shard_; }
  int tid() const { return tid_; }

  /// Awaitable: execute `cycles` instructions on this thread's core.
  ///
  /// The Gossamer core is a fine-grained multithreaded (barrel) core: it
  /// rotates issue slots round-robin over its resident threadlets, so one
  /// thread's batch of k instructions takes ~k * resident cycles of wall
  /// time while the core itself retires work at full rate.  We model that
  /// by accounting the true work (k cycles) on the core's FIFO issue server
  /// — preserving aggregate issue bandwidth — and delaying this thread's
  /// resumption by the additional (resident-1) * k cycles it spends waiting
  /// for its rotation slots.
  auto issue(std::uint64_t cycles) {
    struct Awaiter {
      sim::FifoServer& srv;
      sim::Engine& eng;
      Time work;
      Time rotation_wait;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        const Time depart = srv.post(work);
        eng.schedule(depart + rotation_wait, h);
      }
      void await_resume() const noexcept {}
    };
    Nodelet& n = machine_->nodelet(nodelet_);
    const Time work = static_cast<Time>(cycles) * machine_->cycle();
    // Residents split across this nodelet's cores; each core rotates over
    // its own share.
    const int per_core =
        (n.stats.resident + n.num_cores() - 1) / n.num_cores();
    const int competitors = per_core > 1 ? per_core : 1;
    return Awaiter{n.core(core_).issue(), engine(), work,
                   work * (competitors - 1)};
  }

  /// Awaitable: blocking load of `bytes` at local address `addr` on the
  /// current nodelet's channel.  The caller must already be co-located with
  /// the data (migrate first; see load helpers in the views).
  auto read_local(std::uint64_t addr, std::uint32_t bytes) {
    Nodelet& n = machine_->nodelet(nodelet_);
    ++n.stats.reads;
    n.stats.read_bytes += bytes;
    machine_->record_trace(shard_, engine().now(), sim::TraceKind::mem_read,
                           nodelet_, -1, bytes, tid_);
    return n.channel().read(addr, bytes);
  }

  /// Posted store to the current nodelet (not on the critical path).
  void write_local(std::uint64_t addr, std::uint32_t bytes) {
    Nodelet& n = machine_->nodelet(nodelet_);
    ++n.stats.writes;
    n.stats.write_bytes += bytes;
    machine_->record_trace(shard_, engine().now(), sim::TraceKind::mem_write,
                           nodelet_, -1, bytes, tid_);
    n.channel().write(addr, bytes);
  }

  /// Memory-side remote write: the value travels to the remote nodelet's
  /// memory-side processor; the thread does not migrate and does not wait.
  /// Same-shard targets are applied immediately (the old direct path); a
  /// packet leaving the shard pays the transit latency of the boundary it
  /// crosses — the intra-node crossbar hop or the inter-node link — and is
  /// applied by the owning shard on arrival, so no shard ever touches
  /// another's state.
  void write_remote(int nlet, std::uint64_t addr, std::uint32_t bytes) {
    const int ds = machine_->shard_of_nodelet(nlet);
    if (ds == shard_) {
      Nodelet& n = machine_->nodelet(nlet);
      ++n.stats.writes;
      ++n.stats.remote_writes_in;
      n.stats.write_bytes += bytes;
      machine_->record_trace(shard_, engine().now(), sim::TraceKind::mem_write,
                             nlet, nodelet_, bytes, tid_);
      n.channel().write(addr, bytes);
      return;
    }
    Machine* m = machine_;
    const std::int32_t from = nodelet_;
    const std::int32_t t = tid_;
    machine_->post_remote(
        shard_, ds, engine().now() + machine_->post_delay(shard_, ds),
        sim::SmallFn([m, nlet, from, addr, bytes, t] {
          Nodelet& n = m->nodelet(nlet);
          ++n.stats.writes;
          ++n.stats.remote_writes_in;
          n.stats.write_bytes += bytes;
          const int s = m->shard_of_nodelet(nlet);
          m->record_trace(s, m->shard_engine(s).now(),
                          sim::TraceKind::mem_write, nlet, from, bytes, t);
          n.channel().write(addr, bytes);
        }));
  }

  /// Memory-side remote atomic (e.g. remote add).  Posted; occupies the
  /// remote channel for a read-modify-write.
  void atomic_remote(int nlet, std::uint64_t addr) {
    atomic_remote(nlet, addr, [] {});
  }

  /// Memory-side remote atomic carrying its host-side effect: `apply` runs
  /// when the atomic is performed at the owning nodelet — immediately for a
  /// same-shard target (matching the old call-site ordering, where the
  /// caller mutated host memory before posting the atomic), at delivery on
  /// the owning shard otherwise.  Kernels whose host mutation targets
  /// remote striped data (GUPS xor, histogram bins, MTTKRP rank
  /// accumulations) must use this form: it is what keeps the mutation on
  /// the owning shard's thread under the sharded engine.
  template <class Apply>
  void atomic_remote(int nlet, std::uint64_t addr, Apply apply) {
    const int ds = machine_->shard_of_nodelet(nlet);
    if (ds == shard_) {
      apply();
      Nodelet& n = machine_->nodelet(nlet);
      ++n.stats.atomics_in;
      machine_->record_trace(shard_, engine().now(),
                             sim::TraceKind::remote_atomic, nlet, nodelet_, 0,
                             tid_);
      n.channel().write(addr, 8);  // RMW occupies roughly one word access
      n.channel().write(addr, 8);
      return;
    }
    Machine* m = machine_;
    const std::int32_t from = nodelet_;
    const std::int32_t t = tid_;
    machine_->post_remote(
        shard_, ds, engine().now() + machine_->post_delay(shard_, ds),
        sim::SmallFn([m, nlet, from, addr, t,
                      apply = std::move(apply)]() mutable {
          apply();
          Nodelet& n = m->nodelet(nlet);
          ++n.stats.atomics_in;
          const int s = m->shard_of_nodelet(nlet);
          m->record_trace(s, m->shard_engine(s).now(),
                          sim::TraceKind::remote_atomic, nlet, from, 0, t);
          n.channel().write(addr, 8);
          n.channel().write(addr, 8);
        }));
  }

  /// Memory-side remote atomic *with* a returned value (fetch-add style):
  /// the request travels to the remote memory-side processor, performs the
  /// read-modify-write there, and the thread blocks for the round trip —
  /// still far cheaper than migrating there and back.
  sim::Op<> atomic_fetch_remote(int nlet, std::uint64_t addr);

  /// Migrate this thread to nodelet `dest` (no-op when already there).
  sim::Op<> migrate_to(int dest);

  /// cilk_spawn: start `body` as a new threadlet on the current nodelet.
  /// When every threadlet slot is taken the spawn elides to a serial call,
  /// matching Cilk semantics (and avoiding slot-exhaustion deadlock).
  template <class F>
  sim::Op<> spawn(F body) {
    co_await issue(static_cast<std::uint64_t>(cfg().spawn_issue_cycles));
    if (machine_->try_start_local_thread(nodelet_, this, body)) co_return;
    ++machine_->shard_stats(shard_).inline_spawns;
    co_await issue(static_cast<std::uint64_t>(cfg().thread_startup_cycles));
    co_await body(*this);
  }

  /// Remote spawn: the spawn packet traverses the migration fabric and the
  /// child begins life on nodelet `dest`.
  template <class F>
  sim::Op<> spawn_at(int dest, F body) {
    co_await issue(static_cast<std::uint64_t>(cfg().spawn_issue_cycles));
    machine_->start_fabric_thread(dest, nodelet_, this, std::move(body));
  }

  /// cilk_sync: wait until all threads spawned by this context finish.
  ///
  /// Bookkeeping ownership under the sharded engine: `spawned_` is written
  /// only by this thread itself (spawning is a sequential act of the
  /// parent); `completed_` and the waiter registration are owned by the
  /// *home shard* — the shard of the birth nodelet — to which every child
  /// completion is routed.  A context syncing away from its home shard
  /// therefore cannot read `completed_` directly: it sends a registration
  /// message home and is woken by a message back (one fabric transit each
  /// way — post_delay between the shards — the price of carrying sync
  /// state across the fabric).  The common cases stay fast: a leaf thread
  /// (nothing spawned) is ready immediately, and a parent syncing on its
  /// home shard checks directly, exactly like the serial engine.
  auto sync() {
    struct Awaiter {
      Context& ctx;
      bool await_ready() const noexcept {
        if (ctx.spawned_ == 0) return true;  // leaf: nothing to wait for
        if (ctx.shard_ == ctx.home_shard_) {
          return ctx.completed_ == ctx.spawned_;
        }
        return false;  // off home: must round-trip to the owning shard
      }
      void await_suspend(std::coroutine_handle<> h) {
        Context& c = ctx;
        if (c.shard_ == c.home_shard_) {
          c.waiter_shard_ = c.shard_;
          c.sync_waiter_ = h;
          return;
        }
        Context* p = &c;
        const int cur = c.shard_;
        c.machine_->post_remote(
            cur, c.home_shard_,
            c.engine().now() + c.machine_->post_delay(cur, c.home_shard_),
            sim::SmallFn([p, cur, h] {  // runs on the home shard
              if (p->completed_ == p->spawned_) {
                Machine* m = p->machine_;
                m->post_wake(p->home_shard_, cur,
                             m->shard_engine(p->home_shard_).now() +
                                 m->post_delay(p->home_shard_, cur),
                             h);
              } else {
                p->waiter_shard_ = cur;
                p->sync_waiter_ = h;
              }
            }));
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Children spawned and not yet known complete.  Exact on the home shard
  /// (and always post-run); elsewhere mid-run it can lag by in-flight
  /// completion messages.
  int live_children() const { return spawned_ - completed_; }

 private:
  template <class F>
  friend sim::Task detail::thread_main(Machine*, std::unique_ptr<Context>, F);
  friend class Machine;

  /// Awaitable: carry this thread across the fabric to `dest_shard`,
  /// arriving one `latency` later.  The continuation rides the cross-shard
  /// mailbox and resumes on the destination shard's worker; `shard_` is
  /// retargeted at suspension so everything after the hop charges the
  /// destination.  (Same-shard hops — possible only when the machine has a
  /// single shard — degenerate to a plain sleep.)
  auto fabric_hop(int dest_shard, Time latency) {
    struct Awaiter {
      Context& ctx;
      int dst;
      Time latency;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        const int src = ctx.shard_;
        sim::Engine& src_eng = ctx.machine_->shard_engine(src);
        if (dst == src) {
          src_eng.schedule_in(latency, h);
          return;
        }
        const Time when = src_eng.now() + latency;
        ctx.shard_ = dst;
        ctx.machine_->post_wake(src, dst, when, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, dest_shard, latency};
  }

  /// Awaitable: queue on `node`'s migration engine and resume on shard
  /// `resume_shard` one pipeline latency after the gate grants departure.
  /// The gate lives on the node's gate shard; when the requester executes
  /// on a sibling nodelet shard (nodelet sharding), the request crosses
  /// the intra-node fabric to reach it — a transit that *overlaps* the
  /// gate's queueing (the gate serves the request from its issue time, see
  /// FifoServer::post_at), so an uncontended pass times exactly like the
  /// one-shard-per-node model.  `shard_` is retargeted to `resume_shard`
  /// at suspension so everything after the pass charges the right shard.
  /// In node mode requester == owner == resume and this is byte-identical
  /// to RateGate::pass().
  auto gate_pass(int node, int resume_shard) {
    struct Awaiter {
      Context& ctx;
      int node;
      int resume;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        Machine* m = ctx.machine_;
        const int src = ctx.shard_;
        const int owner = m->gate_shard(node);
        const Time t0 = ctx.engine().now();
        ctx.shard_ = resume;
        const int res = resume;
        const int nd = node;
        if (src == owner) {
          sim::RateGate& gate = m->node(nd).migration_engine();
          const Time when = gate.depart_at(t0) + gate.latency();
          if (res == owner) {
            m->shard_engine(owner).schedule(when, h);
          } else {
            m->post_wake(owner, res, when, h);
          }
          return;
        }
        m->post_remote(
            src, owner, t0 + m->cfg().intranode_hop(),
            sim::SmallFn([m, nd, t0, res, owner, h] {
              sim::RateGate& gate = m->node(nd).migration_engine();
              const Time when = gate.depart_at(t0) + gate.latency();
              if (res == owner) {
                m->shard_engine(owner).schedule(when, h);
              } else {
                m->post_wake(owner, res, when, h);
              }
            }));
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, node, resume_shard};
  }

  void arrive(int nlet) {
    nodelet_ = nlet;
    shard_ = machine_->shard_of_nodelet(nlet);
    Nodelet& n = machine_->nodelet(nlet);
    core_ = n.assign_core();
    ++n.stats.thread_arrivals;
    ++n.stats.resident;
    n.stats.max_resident = std::max(n.stats.max_resident, n.stats.resident);
  }

  void depart() {
    Nodelet& n = machine_->nodelet(nodelet_);
    --n.stats.resident;
    n.slots().release();
  }

  /// One child finished.  Always runs on the home shard (routed there by
  /// Machine::notify_child_done), which owns `completed_` and the waiter.
  void note_child_done() {
    ++completed_;
    if (sync_waiter_ && completed_ == spawned_) {
      auto h = std::exchange(sync_waiter_, {});
      if (waiter_shard_ == home_shard_) {
        // Sync wakeups are same-timestamp by construction: use the engine's
        // zero-delay FIFO lane so deep spawn trees never churn the heap.
        machine_->shard_engine(home_shard_).schedule_now(h);
      } else {
        machine_->post_wake(home_shard_, waiter_shard_,
                            machine_->shard_engine(home_shard_).now() +
                                machine_->post_delay(home_shard_, waiter_shard_),
                            h);
      }
    }
  }

  Machine* machine_;
  Context* parent_;
  int shard_;       ///< shard this thread currently executes on
  int home_shard_;  ///< shard of the birth nodelet; owns sync bookkeeping
  int tid_;
  int nodelet_ = -1;
  int core_ = 0;
  int birth_nodelet_;
  int src_nodelet_;
  bool via_fabric_;
  bool has_slot_at_birth_;
  int spawned_ = 0;    ///< children spawned; written only by this thread
  int completed_ = 0;  ///< children completed; written only on home shard
  int waiter_shard_ = -1;  ///< shard the sync waiter suspended on
  std::coroutine_handle<> sync_waiter_;
};

namespace detail {

/// The wrapper coroutine that hosts one threadlet: deliver the spawn packet,
/// take a slot, pay startup cost, run the kernel body, implicit cilk_sync,
/// release the slot.  The completion hook (installed by the spawner) then
/// notifies the parent.
template <class F>
sim::Task thread_main(Machine* m, std::unique_ptr<Context> ctx, F body) {
  Context& c = *ctx;
  if (c.via_fabric_) {
    const int src_node = m->node_index_of(c.src_nodelet_);
    const int dst_node = m->node_index_of(c.birth_nodelet_);
    const int birth_shard = m->shard_of_nodelet(c.birth_nodelet_);
    // A same-node spawn packet rides straight from the gate to the birth
    // nodelet's shard; a cross-node one resumes on the gate shard, which
    // owns the egress link it queues on next.
    co_await c.gate_pass(src_node, src_node != dst_node
                                       ? m->gate_shard(src_node)
                                       : birth_shard);
    if (src_node != dst_node) {
      const Time wire = transfer_time(
          static_cast<double>(m->cfg().thread_context_bytes),
          m->cfg().internode_bytes_per_sec);
      co_await m->node(src_node).link().access(wire);
      co_await c.fabric_hop(m->gate_shard(dst_node),
                            m->cfg().internode_latency);
      co_await c.gate_pass(dst_node, birth_shard);
    }
  }
  if (!c.has_slot_at_birth_) {
    co_await m->nodelet(c.birth_nodelet_).slots().acquire();
  }
  c.arrive(c.birth_nodelet_);
  m->record_trace(c.shard_, c.engine().now(), sim::TraceKind::thread_start,
                  c.birth_nodelet_, -1, 0, c.tid_);
  co_await c.issue(static_cast<std::uint64_t>(m->cfg().thread_startup_cycles));
  co_await body(c);
  co_await c.sync();  // implicit cilk_sync at thread exit
  m->record_trace(c.shard_, c.engine().now(), sim::TraceKind::thread_end,
                  c.nodelet_, -1, 0, c.tid_);
  c.depart();
  // Completion accounting happens here, inside the coroutine, where the
  // final shard is known: the parent notification must be routed to the
  // parent's home shard, and a Task completion hook would fire after the
  // frame (and this context) is gone.
  ++m->shard_stats(c.shard_).threads_completed;
  if (c.parent_ != nullptr) m->notify_child_done(c.parent_, c.shard_);
}

}  // namespace detail

template <class F>
bool Machine::try_start_local_thread(int birth, Context* parent,
                                     const F& body) {
  if (!nodelet(birth).slots().try_acquire()) return false;
  // A local spawn is always issued by the parent on the birth nodelet's
  // shard: every touch below (slots, stats, trace, the child's first steps)
  // is shard-local.
  const int cs = shard_of_nodelet(birth);
  ++shard_stats(cs).spawns;
  if (parent) ++parent->spawned_;
  auto ctx = std::make_unique<Context>(*this, parent, birth,
                                       /*via_fabric=*/false, birth,
                                       /*has_slot=*/true);
  record_trace(cs, shard_engine(cs).now(), sim::TraceKind::thread_spawn, birth,
               parent ? parent->nodelet_ : -1, 0, ctx->tid_);
  auto task = detail::thread_main(this, std::move(ctx), body);
  task.start();  // parent notification happens inside thread_main
  return true;
}

template <class F>
void Machine::start_fabric_thread(int birth, int src, Context* parent, F body,
                                  bool via_fabric) {
  // The spawn packet is issued where the parent currently executes: the
  // shard of `src` (nodelet 0 / shard 0 for the root).
  const int cs = shard_of_nodelet(src);
  ++shard_stats(cs).spawns;
  if (via_fabric) ++shard_stats(cs).remote_spawns;
  if (parent) ++parent->spawned_;
  auto ctx = std::make_unique<Context>(*this, parent, birth, via_fabric, src,
                                       /*has_slot=*/false);
  record_trace(cs, shard_engine(cs).now(), sim::TraceKind::thread_spawn, birth,
               parent ? parent->nodelet_ : -1, 0, ctx->tid_);
  auto task = detail::thread_main(this, std::move(ctx), std::move(body));
  task.start();  // parent notification happens inside thread_main
}

}  // namespace emusim::emu
