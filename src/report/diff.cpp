#include "report/diff.hpp"

#include <cmath>

namespace emusim::report {

DiffReport diff_results(const std::vector<BenchResult>& baseline,
                        const std::vector<BenchResult>& candidate,
                        const DiffOptions& opt) {
  DiffReport rep;
  auto find_bench = [&candidate](const std::string& name) -> const BenchResult* {
    for (const auto& r : candidate) {
      if (r.bench == name) return &r;
    }
    return nullptr;
  };

  for (const auto& base : baseline) {
    const BenchResult* cand = find_bench(base.bench);
    if (cand == nullptr) {
      rep.problems.push_back("bench '" + base.bench +
                             "' missing from candidate");
      continue;
    }
    if (!base.fingerprint.empty() && !cand->fingerprint.empty() &&
        base.fingerprint != cand->fingerprint) {
      rep.problems.push_back(
          "bench '" + base.bench + "' config fingerprint mismatch (" +
          base.fingerprint + " vs " + cand->fingerprint +
          ") — refresh the baseline, these runs are not comparable");
      continue;
    }
    for (const auto& bs : base.series) {
      const ResultSeries* cs = cand->find(bs.name);
      if (cs == nullptr) {
        rep.problems.push_back("series '" + base.bench + "/" + bs.name +
                               "' missing from candidate");
        continue;
      }
      for (const auto& bp : bs.points) {
        const ResultPoint* cp = bp.label.empty()
                                    ? cs->find(bp.x)
                                    : cs->find_label(bp.label);
        if (cp == nullptr) {
          rep.problems.push_back(
              "point '" + base.bench + "/" + bs.name + "' at " +
              (bp.label.empty() ? "x=" + json_number(bp.x) : bp.label) +
              " missing from candidate");
          continue;
        }
        DiffEntry e;
        e.bench = base.bench;
        e.series = bs.name;
        e.x = bp.x;
        e.label = bp.label;
        e.base_y = bp.y;
        e.cand_y = cp->y;
        if (bp.y != 0.0) {
          e.delta_pct = (cp->y - bp.y) / std::fabs(bp.y) * 100.0;
        } else {
          e.delta_pct = cp->y == 0.0 ? 0.0 : 100.0;
        }
        // Wall-clock-derived metrics (y_wall_clock) are reported but never
        // gated: host throughput varies run to run, unlike simulated time.
        e.wall_clock = base.y_wall_clock || cand->y_wall_clock;
        e.regression = !e.wall_clock && e.delta_pct < -opt.max_regress_pct;
        if (e.regression) ++rep.regressions;
        if (!e.wall_clock && e.delta_pct > opt.max_regress_pct) {
          ++rep.improvements;
        }
        // Tail-latency summaries and the engine-speed/footprint metrics
        // (engine_events, events_per_sec, mem_peak_bytes) ride along as
        // report-only entries (see DiffEntry::report_only): deltas show in
        // the diff output, but a shifted percentile or a host-speed change
        // never fails the gate.
        const auto report_only_metric = [](const std::string& name) {
          return name.rfind("lat_", 0) == 0 || name == "engine_events" ||
                 name == "events_per_sec" || name == "mem_peak_bytes";
        };
        std::vector<DiffEntry> lat;
        for (const auto& [name, bv] : bp.extra) {
          if (!report_only_metric(name)) continue;
          const double* cv = cp->metric(name);
          if (cv == nullptr) continue;
          DiffEntry le = e;
          le.metric = name;
          le.base_y = bv;
          le.cand_y = *cv;
          le.delta_pct = bv != 0.0
                             ? (*cv - bv) / std::fabs(bv) * 100.0
                             : (*cv == 0.0 ? 0.0 : 100.0);
          le.regression = false;
          le.report_only = true;
          lat.push_back(std::move(le));
        }
        rep.entries.push_back(std::move(e));
        for (auto& le : lat) rep.entries.push_back(std::move(le));
      }
    }
  }
  return rep;
}

}  // namespace emusim::report
