// Fixed-width table printing for benchmark harnesses.  Each bench binary
// prints the rows/series of the paper figure it regenerates.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace emusim::report {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& columns(std::vector<std::string> names) {
    header_ = std::move(names);
    return *this;
  }

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  const std::string& title() const { return title_; }
  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  void print(std::FILE* out = stdout) const;

  // --- cell formatting helpers -------------------------------------------
  static std::string num(double v, int precision = 1);
  static std::string integer(long long v);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace emusim::report
