// Versioned machine-readable bench-result model.  Every bench binary emits
// one of these as JSON (next to its tidy CSV); tools/shapecheck and
// tools/benchdiff load them back.  The schema is documented in
// docs/RESULTS.md; bump kResultsSchemaVersion on incompatible changes.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "report/json.hpp"

namespace emusim::report {

inline constexpr int kResultsSchemaVersion = 1;

/// One measurement: y at sweep position x, plus named auxiliary metrics
/// (migrations, utilization, simulated milliseconds, ...).  `label` is set
/// for categorical sweeps (e.g. graph names) and then identifies the point;
/// numeric sweeps leave it empty and are identified by x.
struct ResultPoint {
  double x = 0.0;
  double y = 0.0;
  std::string label;
  std::vector<std::pair<std::string, double>> extra;

  const double* metric(const std::string& name) const;
};

struct ResultSeries {
  std::string name;
  std::vector<ResultPoint> points;

  /// Nearest-exact lookup by x (relative tolerance 1e-9) or by label.
  const ResultPoint* find(double x) const;
  const ResultPoint* find_label(const std::string& label) const;
};

struct BenchResult {
  int schema_version = kResultsSchemaVersion;
  std::string bench;   ///< binary name, e.g. "fig04_stream_single_nodelet"
  std::string x_axis;  ///< what x means, e.g. "threads"
  std::string y_axis;  ///< what y means, e.g. "mb_per_sec"
  bool quick = false;
  int reps = 1;
  double wall_seconds = 0.0;  ///< host wall-clock for the whole run
  double sim_seconds = 0.0;   ///< total simulated time across all points
  /// True when the y metric itself is wall-clock-derived (host throughput,
  /// as in micro_simcore) rather than simulated time or bandwidth.  Such
  /// results are never deterministic, so tools/benchdiff reports but does
  /// not gate on them.  Additive: absent in old files means false.
  bool y_wall_clock = false;
  std::string fingerprint;    ///< hash of bench + config (see fingerprint())
  std::vector<std::pair<std::string, std::string>> config;
  std::vector<ResultSeries> series;
  /// Optional observability payload (docs/OBSERVABILITY.md): per-phase
  /// counter deltas and trace accounting, emitted by --counters/--trace.
  /// Additive — readers that predate it ignore the key, so the schema
  /// version is unchanged.  Null when the run was not observed.
  Json observe;
  /// Optional tail-latency payload from online-serving benches: a map of
  /// "series/label" -> histogram blob (serve::PhasedLatency::to_json, with
  /// per-phase p50/p95/p99/max and sparse buckets).  Additive like
  /// `observe`; null for offline sweeps.  Point-level summaries also ride
  /// the points' extra metrics (lat_p50_us, ...) so shapecheck and
  /// benchdiff see them through the ordinary metric path.
  Json latency;

  const ResultSeries* find(const std::string& name) const;

  Json to_json() const;
  static bool from_json(const Json& j, BenchResult* out, std::string* err);

  /// Serialize to `path`.  Returns false (with a message on stderr) on I/O
  /// failure — callers treat a requested-but-failed write as a hard error.
  bool save(const std::string& path) const;
  static bool load(const std::string& path, BenchResult* out,
                   std::string* err);
};

/// FNV-1a over the identity of a run: bench name, quick flag, and the
/// config key/value list.  Two results with different fingerprints were not
/// produced by the same experiment and must not be diffed silently.
std::string result_fingerprint(const BenchResult& r);

}  // namespace emusim::report
