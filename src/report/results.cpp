#include "report/results.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace emusim::report {

namespace {

bool x_matches(double px, double x) {
  const double tol = 1e-9 * std::fmax(1.0, std::fabs(x));
  return std::fabs(px - x) <= tol;
}

}  // namespace

const double* ResultPoint::metric(const std::string& name) const {
  for (const auto& [k, v] : extra) {
    if (k == name) return &v;
  }
  return nullptr;
}

const ResultPoint* ResultSeries::find(double x) const {
  for (const auto& p : points) {
    if (p.label.empty() && x_matches(p.x, x)) return &p;
  }
  return nullptr;
}

const ResultPoint* ResultSeries::find_label(const std::string& label) const {
  for (const auto& p : points) {
    if (p.label == label) return &p;
  }
  return nullptr;
}

const ResultSeries* BenchResult::find(const std::string& name) const {
  for (const auto& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string result_fingerprint(const BenchResult& r) {
  std::uint64_t h = 14695981039346656037ULL;
  auto mix = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ULL;
    }
    h ^= 0xff;  // field separator
    h *= 1099511628211ULL;
  };
  mix(r.bench);
  mix(r.quick ? "quick" : "full");
  for (const auto& [k, v] : r.config) {
    mix(k);
    mix(v);
  }
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

Json BenchResult::to_json() const {
  Json j = Json::object();
  j.set("schema_version", Json::number(schema_version));
  j.set("bench", Json::string(bench));
  j.set("quick", Json::boolean(quick));
  j.set("reps", Json::number(reps));
  j.set("wall_seconds", Json::number(wall_seconds));
  j.set("sim_seconds", Json::number(sim_seconds));
  if (y_wall_clock) j.set("y_wall_clock", Json::boolean(true));
  j.set("fingerprint", Json::string(fingerprint));

  Json axes = Json::object();
  axes.set("x", Json::string(x_axis));
  axes.set("y", Json::string(y_axis));
  j.set("axes", std::move(axes));

  Json cfg = Json::object();
  for (const auto& [k, v] : config) cfg.set(k, Json::string(v));
  j.set("config", std::move(cfg));

  Json arr = Json::array();
  for (const auto& s : series) {
    Json js = Json::object();
    js.set("name", Json::string(s.name));
    Json pts = Json::array();
    for (const auto& p : s.points) {
      Json jp = Json::object();
      jp.set("x", Json::number(p.x));
      if (!p.label.empty()) jp.set("label", Json::string(p.label));
      jp.set("y", Json::number(p.y));
      if (!p.extra.empty()) {
        Json ex = Json::object();
        for (const auto& [k, v] : p.extra) ex.set(k, Json::number(v));
        jp.set("extra", std::move(ex));
      }
      pts.push_back(std::move(jp));
    }
    js.set("points", std::move(pts));
    arr.push_back(std::move(js));
  }
  j.set("series", std::move(arr));
  if (!observe.is_null()) j.set("observe", observe);
  if (!latency.is_null()) j.set("latency", latency);
  return j;
}

bool BenchResult::from_json(const Json& j, BenchResult* out,
                            std::string* err) {
  auto fail = [err](const std::string& what) {
    if (err != nullptr) *err = what;
    return false;
  };
  if (!j.is_object()) return fail("result is not a JSON object");
  BenchResult r;
  r.schema_version = static_cast<int>(j.get_number("schema_version", -1));
  if (r.schema_version != kResultsSchemaVersion) {
    return fail("unsupported schema_version " +
                std::to_string(r.schema_version) + " (want " +
                std::to_string(kResultsSchemaVersion) + ")");
  }
  r.bench = j.get_string("bench");
  if (r.bench.empty()) return fail("missing bench name");
  r.quick = j.get_bool("quick");
  r.reps = static_cast<int>(j.get_number("reps", 1));
  r.wall_seconds = j.get_number("wall_seconds");
  r.sim_seconds = j.get_number("sim_seconds");
  r.y_wall_clock = j.get_bool("y_wall_clock");
  r.fingerprint = j.get_string("fingerprint");
  if (const Json* axes = j.find("axes"); axes != nullptr) {
    r.x_axis = axes->get_string("x");
    r.y_axis = axes->get_string("y");
  }
  if (const Json* cfg = j.find("config"); cfg != nullptr && cfg->is_object()) {
    for (const auto& [k, v] : cfg->members()) {
      r.config.emplace_back(k, v.is_string() ? v.as_string() : v.dump(0));
    }
  }
  const Json* series = j.find("series");
  if (series == nullptr || !series->is_array()) {
    return fail("missing series array");
  }
  for (const Json& js : series->items()) {
    ResultSeries s;
    s.name = js.get_string("name");
    if (s.name.empty()) return fail("series with missing name");
    const Json* pts = js.find("points");
    if (pts == nullptr || !pts->is_array()) {
      return fail("series '" + s.name + "' missing points array");
    }
    for (const Json& jp : pts->items()) {
      ResultPoint p;
      const Json* x = jp.find("x");
      const Json* y = jp.find("y");
      if (x == nullptr || !x->is_number() || y == nullptr || !y->is_number()) {
        return fail("series '" + s.name + "' has a point without numeric x/y");
      }
      p.x = x->as_number();
      p.y = y->as_number();
      p.label = jp.get_string("label");
      if (const Json* ex = jp.find("extra");
          ex != nullptr && ex->is_object()) {
        for (const auto& [k, v] : ex->members()) {
          if (v.is_number()) p.extra.emplace_back(k, v.as_number());
        }
      }
      s.points.push_back(std::move(p));
    }
    r.series.push_back(std::move(s));
  }
  if (const Json* obs = j.find("observe"); obs != nullptr) r.observe = *obs;
  if (const Json* lat = j.find("latency"); lat != nullptr) r.latency = *lat;
  *out = std::move(r);
  return true;
}

bool BenchResult::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "emusim: cannot open JSON output '%s': %s\n",
                 path.c_str(), std::strerror(errno));
    return false;
  }
  const std::string text = to_json().dump(2);
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  ok = std::fputc('\n', f) != EOF && ok;
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::fprintf(stderr, "emusim: error writing JSON output '%s'\n",
                 path.c_str());
  }
  return ok;
}

bool BenchResult::load(const std::string& path, BenchResult* out,
                       std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (err != nullptr) {
      *err = std::string("cannot open '") + path + "': " + std::strerror(errno);
    }
    return false;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  std::fclose(f);
  Json j;
  std::string perr;
  if (!Json::parse(text, &j, &perr)) {
    if (err != nullptr) *err = path + ": " + perr;
    return false;
  }
  std::string merr;
  if (!from_json(j, out, &merr)) {
    if (err != nullptr) *err = path + ": " + merr;
    return false;
  }
  return true;
}

}  // namespace emusim::report
