#include "report/shapes.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace emusim::report {

namespace {

std::string fmt(double v) { return json_number(v); }

std::string ref_str(const ShapeRef& r) {
  std::string s = r.series;
  s += r.label.empty() ? "[x=" + fmt(r.x) + "]" : "[" + r.label + "]";
  if (!r.metric.empty()) s += "." + r.metric;
  return s;
}

/// Resolve a reference to a value; on failure fills `*why` and returns false.
bool resolve(const BenchResult& res, const ShapeRef& ref, double* out,
             std::string* why) {
  const ResultSeries* s = res.find(ref.series);
  if (s == nullptr) {
    *why = "series '" + ref.series + "' not in result";
    return false;
  }
  const ResultPoint* p =
      ref.label.empty() ? s->find(ref.x) : s->find_label(ref.label);
  if (p == nullptr) {
    *why = "point " + ref_str(ref) + " not in result";
    return false;
  }
  if (ref.metric.empty()) {
    *out = p->y;
    return true;
  }
  const double* m = p->metric(ref.metric);
  if (m == nullptr) {
    *why = "metric '" + ref.metric + "' not on point " + ref_str(ref);
    return false;
  }
  *out = *m;
  return true;
}

double point_value(const ResultPoint& p, const std::string& metric) {
  if (metric.empty()) return p.y;
  const double* m = p.metric(metric);
  return m != nullptr ? *m : 0.0;
}

bool want_x(const std::vector<double>& xs, double x) {
  if (xs.empty()) return true;
  for (double want : xs) {
    if (std::fabs(want - x) <= 1e-9 * std::fmax(1.0, std::fabs(want))) {
      return true;
    }
  }
  return false;
}

ShapeVerdict check(const ShapeAssert& a, bool pass, std::string detail) {
  return ShapeVerdict{pass, a.desc.empty() ? a.type : a.desc,
                      std::move(detail)};
}

ShapeVerdict eval_one(const ShapeAssert& a, const BenchResult& res) {
  std::string why;
  if (a.type == "value_between") {
    double v;
    if (!resolve(res, a.a, &v, &why)) return check(a, false, why);
    return check(a, v >= a.lo && v <= a.hi,
                 ref_str(a.a) + " = " + fmt(v) + ", want [" + fmt(a.lo) +
                     ", " + fmt(a.hi) + "]");
  }
  if (a.type == "ratio_gt" || a.type == "ratio_lt" ||
      a.type == "ratio_between") {
    double num, den;
    if (!resolve(res, a.a, &num, &why)) return check(a, false, why);
    if (!resolve(res, a.b, &den, &why)) return check(a, false, why);
    if (den == 0.0) return check(a, false, ref_str(a.b) + " is zero");
    const double ratio = num / den;
    const std::string measured = ref_str(a.a) + " / " + ref_str(a.b) + " = " +
                                 fmt(num) + " / " + fmt(den) + " = " +
                                 fmt(ratio);
    if (a.type == "ratio_gt") {
      return check(a, ratio > a.bound,
                   measured + ", want > " + fmt(a.bound));
    }
    if (a.type == "ratio_lt") {
      return check(a, ratio < a.bound,
                   measured + ", want < " + fmt(a.bound));
    }
    return check(a, ratio >= a.lo && ratio <= a.hi,
                 measured + ", want [" + fmt(a.lo) + ", " + fmt(a.hi) + "]");
  }
  if (a.type == "flat_within") {
    const ResultSeries* s = res.find(a.a.series);
    if (s == nullptr) {
      return check(a, false, "series '" + a.a.series + "' not in result");
    }
    double lo = 0.0, hi = 0.0;
    int n = 0;
    for (const auto& p : s->points) {
      if (!want_x(a.xs, p.x)) continue;
      const double v = point_value(p, a.a.metric);
      lo = n == 0 ? v : std::min(lo, v);
      hi = n == 0 ? v : std::max(hi, v);
      ++n;
    }
    if (n < 2) {
      return check(a, false, "series '" + a.a.series + "' has " +
                                 std::to_string(n) + " comparable points");
    }
    if (lo <= 0.0) return check(a, false, "non-positive minimum " + fmt(lo));
    const double swing = hi / lo;
    return check(a, swing <= a.bound,
                 a.a.series + " max/min = " + fmt(hi) + " / " + fmt(lo) +
                     " = " + fmt(swing) + " over " + std::to_string(n) +
                     " points, want <= " + fmt(a.bound));
  }
  if (a.type == "dominates") {
    const ResultSeries* sa = res.find(a.a.series);
    const ResultSeries* sb = res.find(a.b.series);
    if (sa == nullptr || sb == nullptr) {
      return check(a, false,
                   std::string("series '") +
                       (sa == nullptr ? a.a.series : a.b.series) +
                       "' not in result");
    }
    int compared = 0;
    for (const auto& pa : sa->points) {
      if (!want_x(a.xs, pa.x)) continue;
      const ResultPoint* pb = pa.label.empty() ? sb->find(pa.x)
                                               : sb->find_label(pa.label);
      if (pb == nullptr) continue;
      ++compared;
      const double va = point_value(pa, a.a.metric);
      const double vb = point_value(*pb, a.b.metric);
      if (va < a.factor * vb) {
        return check(a, false,
                     a.a.series + " = " + fmt(va) + " < " + fmt(a.factor) +
                         " * " + a.b.series + " (" + fmt(vb) + ") at x=" +
                         fmt(pa.x));
      }
    }
    if (compared == 0) return check(a, false, "no comparable points");
    return check(a, true,
                 a.a.series + " >= " + fmt(a.factor) + " * " + a.b.series +
                     " at all " + std::to_string(compared) + " shared points");
  }
  if (a.type == "monotone_nondec") {
    const ResultSeries* s = res.find(a.a.series);
    if (s == nullptr) {
      return check(a, false, "series '" + a.a.series + "' not in result");
    }
    std::vector<const ResultPoint*> pts;
    for (const auto& p : s->points) {
      if (want_x(a.xs, p.x)) pts.push_back(&p);
    }
    if (pts.size() < 2) {
      return check(a, false, "series '" + a.a.series + "' has " +
                                 std::to_string(pts.size()) +
                                 " comparable points");
    }
    std::sort(pts.begin(), pts.end(),
              [](const ResultPoint* l, const ResultPoint* r) {
                return l->x < r->x;
              });
    for (std::size_t i = 1; i < pts.size(); ++i) {
      if (!a.a.metric.empty() && pts[i]->metric(a.a.metric) == nullptr) {
        return check(a, false, "metric '" + a.a.metric + "' not on point x=" +
                                   fmt(pts[i]->x));
      }
      const double prev = point_value(*pts[i - 1], a.a.metric);
      const double cur = point_value(*pts[i], a.a.metric);
      if (cur < a.factor * prev) {
        return check(a, false,
                     a.a.series + ": y(x=" + fmt(pts[i]->x) + ") = " +
                         fmt(cur) + " < " + fmt(a.factor) + " * y(x=" +
                         fmt(pts[i - 1]->x) + ") (" + fmt(prev) + ")");
      }
    }
    return check(a, true,
                 a.a.series + " non-decreasing (slack " + fmt(a.factor) +
                     ") over " + std::to_string(pts.size()) + " points");
  }
  if (a.type == "metric_ratio_lt") {
    const ResultSeries* s = res.find(a.a.series);
    if (s == nullptr) {
      return check(a, false, "series '" + a.a.series + "' not in result");
    }
    if (a.a.metric.empty() && a.b.metric.empty()) {
      return check(a, false, "metric_ratio_lt needs metrics on a and b");
    }
    int compared = 0;
    for (const auto& p : s->points) {
      if (!want_x(a.xs, p.x)) continue;
      const std::string at =
          p.label.empty() ? "x=" + fmt(p.x) : "'" + p.label + "'";
      if (!a.a.metric.empty() && p.metric(a.a.metric) == nullptr) {
        return check(a, false, "metric '" + a.a.metric + "' not on point " +
                                   a.a.series + "[" + at + "]");
      }
      const double num = point_value(p, a.a.metric);
      const double den = point_value(p, a.b.metric);
      if (den == 0.0) {
        return check(a, false,
                     a.a.series + "[" + at + "]." + a.b.metric + " is zero");
      }
      ++compared;
      const double ratio = num / den;
      if (ratio >= a.bound) {
        return check(a, false,
                     a.a.series + "[" + at + "]: " + a.a.metric + " / " +
                         a.b.metric + " = " + fmt(num) + " / " + fmt(den) +
                         " = " + fmt(ratio) + ", want < " + fmt(a.bound));
      }
    }
    if (compared == 0) return check(a, false, "no comparable points");
    return check(a, true,
                 a.a.series + ": " + a.a.metric + " / " + a.b.metric +
                     " < " + fmt(a.bound) + " at all " +
                     std::to_string(compared) + " points");
  }
  if (a.type == "knee_at") {
    ShapeRef r = a.a;
    double yb, yk, ya;
    r.x = a.before;
    if (!resolve(res, r, &yb, &why)) return check(a, false, why);
    r.x = a.knee;
    if (!resolve(res, r, &yk, &why)) return check(a, false, why);
    r.x = a.after;
    if (!resolve(res, r, &ya, &why)) return check(a, false, why);
    if (yb <= 0.0 || yk <= 0.0) {
      return check(a, false, "non-positive values before knee");
    }
    const double scale = yk / yb;
    const double flat = ya / yk;
    const bool pass = scale >= a.min_scale && flat <= a.max_flat;
    return check(a, pass,
                 a.a.series + ": y(" + fmt(a.knee) + ")/y(" + fmt(a.before) +
                     ") = " + fmt(scale) + " (want >= " + fmt(a.min_scale) +
                     "), y(" + fmt(a.after) + ")/y(" + fmt(a.knee) + ") = " +
                     fmt(flat) + " (want <= " + fmt(a.max_flat) + ")");
  }
  return check(a, false, "unknown assertion type '" + a.type + "'");
}

bool parse_ref(const Json& j, ShapeRef* out, std::string* err) {
  if (!j.is_object()) {
    *err = "reference is not an object";
    return false;
  }
  out->series = j.get_string("series");
  if (out->series.empty()) {
    *err = "reference missing series";
    return false;
  }
  out->x = j.get_number("x");
  out->label = j.get_string("label");
  out->metric = j.get_string("metric");
  return true;
}

}  // namespace

std::vector<ShapeVerdict> evaluate(const ShapeSpec& spec,
                                   const BenchResult& result) {
  std::vector<ShapeVerdict> out;
  out.reserve(spec.asserts.size());
  for (const auto& a : spec.asserts) out.push_back(eval_one(a, result));
  return out;
}

bool ShapeSpec::from_json(const Json& j, ShapeSpec* out, std::string* err) {
  auto fail = [err](const std::string& what) {
    if (err != nullptr) *err = what;
    return false;
  };
  if (!j.is_object()) return fail("shape spec is not a JSON object");
  ShapeSpec spec;
  spec.schema_version = static_cast<int>(j.get_number("schema_version", -1));
  if (spec.schema_version != kShapesSchemaVersion) {
    return fail("unsupported shapes schema_version");
  }
  spec.bench = j.get_string("bench");
  if (spec.bench.empty()) return fail("shape spec missing bench");
  const Json* asserts = j.find("asserts");
  if (asserts == nullptr || !asserts->is_array()) {
    return fail("shape spec missing asserts array");
  }
  for (const Json& ja : asserts->items()) {
    ShapeAssert a;
    a.type = ja.get_string("type");
    if (a.type.empty()) return fail("assertion missing type");
    a.desc = ja.get_string("desc");
    std::string rerr;
    if (const Json* ra = ja.find("a"); ra != nullptr) {
      if (!parse_ref(*ra, &a.a, &rerr)) return fail(rerr);
    } else if (a.type != "unknown") {
      return fail("assertion '" + a.type + "' missing reference a");
    }
    if (const Json* rb = ja.find("b"); rb != nullptr) {
      if (!parse_ref(*rb, &a.b, &rerr)) return fail(rerr);
    }
    a.bound = ja.get_number("bound");
    a.lo = ja.get_number("lo");
    a.hi = ja.get_number("hi");
    a.factor = ja.get_number("factor", 1.0);
    a.before = ja.get_number("before");
    a.knee = ja.get_number("knee");
    a.after = ja.get_number("after");
    a.min_scale = ja.get_number("min_scale", 1.0);
    a.max_flat = ja.get_number("max_flat", 1.0);
    if (const Json* xs = ja.find("xs"); xs != nullptr && xs->is_array()) {
      for (const Json& x : xs->items()) {
        if (x.is_number()) a.xs.push_back(x.as_number());
      }
    }
    spec.asserts.push_back(std::move(a));
  }
  *out = std::move(spec);
  return true;
}

bool ShapeSpec::load(const std::string& path, ShapeSpec* out,
                     std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (err != nullptr) *err = "cannot open '" + path + "'";
    return false;
  }
  std::string text;
  char buf[1 << 14];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  std::fclose(f);
  Json j;
  std::string perr;
  if (!Json::parse(text, &j, &perr)) {
    if (err != nullptr) *err = path + ": " + perr;
    return false;
  }
  std::string serr;
  if (!from_json(j, out, &serr)) {
    if (err != nullptr) *err = path + ": " + serr;
    return false;
  }
  return true;
}

}  // namespace emusim::report
