// Minimal JSON value type: build, serialize, and parse without any external
// dependency.  Used by the bench harness to emit machine-readable results
// and by tools/shapecheck + tools/benchdiff to load them back, so writer and
// parser must round-trip each other's output exactly.
//
// Scope is deliberately small: UTF-8 pass-through strings, doubles for all
// numbers (plus an integer fast-path in formatting), objects that preserve
// insertion order so emitted files are deterministic and diffable.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace emusim::report {

class Json {
 public:
  enum class Type { null, boolean, number, string, array, object };

  Json() = default;  // null

  static Json boolean(bool b);
  static Json number(double v);
  static Json string(std::string s);
  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::null; }
  bool is_bool() const { return type_ == Type::boolean; }
  bool is_number() const { return type_ == Type::number; }
  bool is_string() const { return type_ == Type::string; }
  bool is_array() const { return type_ == Type::array; }
  bool is_object() const { return type_ == Type::object; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<Json>& items() const { return items_; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Array append (no-op unless this is an array).
  void push_back(Json v);
  /// Object insert-or-replace; preserves first-insertion order.
  void set(const std::string& key, Json v);
  /// Object lookup; nullptr when absent (or not an object).
  const Json* find(const std::string& key) const;

  // --- typed object accessors with defaults --------------------------------
  double get_number(const std::string& key, double fallback = 0.0) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback = "") const;
  bool get_bool(const std::string& key, bool fallback = false) const;

  /// Serialize.  indent > 0 pretty-prints; 0 emits compact one-line JSON.
  std::string dump(int indent = 2) const;

  /// Parse `text` into `*out`.  Returns false and fills `*err` (with a byte
  /// offset) on malformed input.  Trailing non-whitespace is an error.
  static bool parse(const std::string& text, Json* out, std::string* err);

 private:
  Type type_ = Type::null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;                             // array
  std::vector<std::pair<std::string, Json>> members_;   // object

  void dump_to(std::string& out, int indent, int depth) const;
};

/// Escape `s` for embedding inside a JSON string literal (no quotes added).
std::string json_escape(const std::string& s);

/// Format a double the way the writer does: integers without a decimal
/// point, everything else with enough digits to survive a round-trip check
/// at benchdiff tolerances.
std::string json_number(double v);

}  // namespace emusim::report
