// Declarative shape assertions over bench results — the paper's claims
// (saturation knees, locality flatness, layout orderings) expressed as data
// instead of C++, so CI can gate fresh runs against them.  This mirrors
// tests/test_validation.cpp; the checked-in expectations for Figs 4-11 live
// in tools/shapes/*.json and are evaluated by tools/shapecheck.
//
// Vocabulary (see docs/RESULTS.md for the JSON spelling):
//   value_between — lo <= value(a) <= hi
//   ratio_gt      — value(a) / value(b) >  bound
//   ratio_lt      — value(a) / value(b) <  bound
//   ratio_between — lo <= value(a) / value(b) <= hi
//   flat_within   — max/min over a series' points (optionally restricted to
//                   xs) <= bound: "flat to within X"
//   dominates     — series a >= factor * series b at every compared x:
//                   "series A dominates B"
//   knee_at       — y(knee)/y(before) >= min_scale (still scaling into the
//                   knee) AND y(after)/y(knee) <= max_flat (flat past it)
//   monotone_nondec — series a's values never decrease along ascending x
//                   (optionally restricted to xs): each consecutive value
//                   >= factor * its predecessor (factor <= 1 gives slack);
//                   "throughput is monotone non-decreasing in batch size"
//   metric_ratio_lt — for EVERY point of series a: metric(a) / metric(b)
//                   < bound, both metrics read off the same point
//                   (optionally restricted to xs); "p99/p50 stays within a
//                   bounded factor across all arrival processes"
//
// A reference selects series + point (by x, or by label for categorical
// sweeps) + metric ("" = the primary y; otherwise a named extra).
#pragma once

#include <string>
#include <vector>

#include "report/results.hpp"

namespace emusim::report {

inline constexpr int kShapesSchemaVersion = 1;

struct ShapeRef {
  std::string series;
  double x = 0.0;
  std::string label;   ///< categorical lookup when nonempty (wins over x)
  std::string metric;  ///< "" = primary y
};

struct ShapeAssert {
  std::string type;
  std::string desc;
  ShapeRef a, b;
  double bound = 0.0;
  double lo = 0.0, hi = 0.0;
  double factor = 1.0;
  double before = 0.0, knee = 0.0, after = 0.0;
  double min_scale = 1.0, max_flat = 1.0;
  std::vector<double> xs;  ///< flat_within / dominates: restrict compared xs
};

struct ShapeSpec {
  int schema_version = kShapesSchemaVersion;
  std::string bench;  ///< which BenchResult these assertions apply to
  std::vector<ShapeAssert> asserts;

  static bool from_json(const Json& j, ShapeSpec* out, std::string* err);
  static bool load(const std::string& path, ShapeSpec* out, std::string* err);
};

struct ShapeVerdict {
  bool pass = false;
  std::string desc;    ///< the assertion's own description
  std::string detail;  ///< measured values / failure reason
};

/// Evaluate every assertion in `spec` against `result`.  Missing series,
/// points, or metrics yield failing verdicts (never silent skips) — a shape
/// that cannot be checked is a broken gate, not a passing one.
std::vector<ShapeVerdict> evaluate(const ShapeSpec& spec,
                                   const BenchResult& result);

}  // namespace emusim::report
