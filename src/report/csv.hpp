// CSV output for benchmark harnesses.  Every bench accepts --csv <path> and
// writes its series as one tidy CSV (figure, series, x, y, extra columns).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace emusim::report {

class CsvWriter {
 public:
  /// Opens `path` for writing ("" disables output entirely; calls become
  /// no-ops so harness code stays unconditional).
  explicit CsvWriter(const std::string& path,
                     const std::vector<std::string>& header);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void row(const std::vector<std::string>& cells);
  bool enabled() const { return file_ != nullptr; }

 private:
  std::FILE* file_ = nullptr;
};

/// Minimal CSV field quoting (commas/quotes/newlines).
std::string csv_escape(const std::string& s);

}  // namespace emusim::report
