// CSV output for benchmark harnesses.  Every bench accepts --csv <path> and
// writes its series as one tidy CSV (figure, series, x, y, extra columns).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace emusim::report {

class CsvWriter {
 public:
  /// Opens `path` for writing ("" disables output entirely; calls become
  /// no-ops so harness code stays unconditional).  A nonempty path that
  /// fails to open is an error: a warning goes to stderr and ok() turns
  /// false, so harnesses can distinguish "output disabled" from "all rows
  /// silently discarded".
  explicit CsvWriter(const std::string& path,
                     const std::vector<std::string>& header);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void row(const std::vector<std::string>& cells);
  bool enabled() const { return file_ != nullptr; }
  /// False when a requested output file could not be opened.
  bool ok() const { return ok_; }

 private:
  std::FILE* file_ = nullptr;
  bool ok_ = true;
};

/// Minimal CSV field quoting (commas/quotes/newlines/carriage returns).
std::string csv_escape(const std::string& s);

}  // namespace emusim::report
