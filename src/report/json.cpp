#include "report/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace emusim::report {

Json Json::boolean(bool b) {
  Json j;
  j.type_ = Type::boolean;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::number;
  j.number_ = v;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.type_ = Type::string;
  j.string_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::array;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::object;
  return j;
}

void Json::push_back(Json v) {
  if (type_ == Type::array) items_.push_back(std::move(v));
}

void Json::set(const std::string& key, Json v) {
  if (type_ != Type::object) return;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::object) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Json::get_number(const std::string& key, double fallback) const {
  const Json* j = find(key);
  return j != nullptr && j->is_number() ? j->as_number() : fallback;
}

std::string Json::get_string(const std::string& key,
                             const std::string& fallback) const {
  const Json* j = find(key);
  return j != nullptr && j->is_string() ? j->as_string() : fallback;
}

bool Json::get_bool(const std::string& key, bool fallback) const {
  const Json* j = find(key);
  return j != nullptr && j->is_bool() ? j->as_bool() : fallback;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan
  // Integers up to 2^53 print exactly, without a decimal point.
  if (v == std::floor(v) && std::fabs(v) < 9.007e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent) * (depth + 1), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent) * depth, ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::null: out += "null"; break;
    case Type::boolean: out += bool_ ? "true" : "false"; break;
    case Type::number: out += json_number(number_); break;
    case Type::string:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Type::array: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (indent > 0) out += pad;
        items_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += nl;
      }
      if (indent > 0) out += close_pad;
      out += ']';
      break;
    }
    case Type::object: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (indent > 0) out += pad;
        out += '"';
        out += json_escape(members_[i].first);
        out += indent > 0 ? "\": " : "\":";
        members_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += nl;
      }
      if (indent > 0) out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// --- parser ----------------------------------------------------------------

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string err;

  bool fail(const std::string& what) {
    err = what + " at byte " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(const char* word, std::size_t len) {
    if (text.compare(pos, len, word) != 0) return fail("bad literal");
    pos += len;
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return fail("expected string");
    std::string s;
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') {
        *out = std::move(s);
        return true;
      }
      if (c != '\\') {
        s += c;
        continue;
      }
      if (pos >= text.size()) return fail("dangling escape");
      char e = text[pos++];
      switch (e) {
        case '"': s += '"'; break;
        case '\\': s += '\\'; break;
        case '/': s += '/'; break;
        case 'b': s += '\b'; break;
        case 'f': s += '\f'; break;
        case 'n': s += '\n'; break;
        case 'r': s += '\r'; break;
        case 't': s += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("short \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad hex digit in \\u escape");
          }
          // Encode the code point as UTF-8 (surrogate pairs unsupported; the
          // writer never emits them — it only escapes control bytes).
          if (cp < 0x80) {
            s += static_cast<char>(cp);
          } else if (cp < 0x800) {
            s += static_cast<char>(0xC0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            s += static_cast<char>(0xE0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(Json* out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    char c = text[pos];
    if (c == 'n') {
      if (!literal("null", 4)) return false;
      *out = Json();
      return true;
    }
    if (c == 't') {
      if (!literal("true", 4)) return false;
      *out = Json::boolean(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false", 5)) return false;
      *out = Json::boolean(false);
      return true;
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(&s)) return false;
      *out = Json::string(std::move(s));
      return true;
    }
    if (c == '[') {
      ++pos;
      Json arr = Json::array();
      skip_ws();
      if (consume(']')) {
        *out = std::move(arr);
        return true;
      }
      while (true) {
        Json v;
        if (!parse_value(&v)) return false;
        arr.push_back(std::move(v));
        skip_ws();
        if (consume(']')) break;
        if (!consume(',')) return fail("expected ',' or ']'");
      }
      *out = std::move(arr);
      return true;
    }
    if (c == '{') {
      ++pos;
      Json obj = Json::object();
      skip_ws();
      if (consume('}')) {
        *out = std::move(obj);
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (!consume(':')) return fail("expected ':'");
        Json v;
        if (!parse_value(&v)) return false;
        obj.set(key, std::move(v));
        skip_ws();
        if (consume('}')) break;
        if (!consume(',')) return fail("expected ',' or '}'");
      }
      *out = std::move(obj);
      return true;
    }
    // number
    const char* start = text.c_str() + pos;
    char* end = nullptr;
    double v = std::strtod(start, &end);
    if (end == start) return fail("expected value");
    pos += static_cast<std::size_t>(end - start);
    *out = Json::number(v);
    return true;
  }
};

}  // namespace

bool Json::parse(const std::string& text, Json* out, std::string* err) {
  Parser p{text};
  if (!p.parse_value(out)) {
    if (err != nullptr) *err = p.err;
    return false;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (err != nullptr) {
      *err = "trailing garbage at byte " + std::to_string(p.pos);
    }
    return false;
  }
  return true;
}

}  // namespace emusim::report
