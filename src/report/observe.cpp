#include "report/observe.hpp"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace emusim::report {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list probe;
  va_copy(probe, args);
  const int need = std::vsnprintf(nullptr, 0, fmt, probe);
  va_end(probe);
  if (need < 0) {
    va_end(args);
    return;
  }
  const std::size_t old = out.size();
  out.resize(old + static_cast<std::size_t>(need) + 1);
  std::vsnprintf(out.data() + old, static_cast<std::size_t>(need) + 1, fmt,
                 args);
  va_end(args);
  out.resize(old + static_cast<std::size_t>(need));
}

/// Buffered line-at-a-time emitter for the traceEvents array: events are
/// written as they stream by, never held as a Json tree (a 64k-record ring
/// is ~130k events — building that as Json objects would dwarf the trace).
class EventStream {
 public:
  explicit EventStream(std::FILE* f) : f_(f) {}

  void event(const std::string& line) {
    buf_ += first_ ? "  " : ",\n  ";
    first_ = false;
    buf_ += line;
    if (buf_.size() >= (std::size_t{1} << 20)) flush();
  }

  bool flush() {
    if (!buf_.empty()) {
      ok_ = std::fwrite(buf_.data(), 1, buf_.size(), f_) == buf_.size() && ok_;
      buf_.clear();
    }
    return ok_;
  }

 private:
  std::FILE* f_;
  std::string buf_;
  bool first_ = true;
  bool ok_ = true;
};

double ts_us(Time t) { return static_cast<double>(t) / 1e6; }

/// Per simulated thread, the state needed to maintain its residency slice.
struct ThreadState {
  bool open = false;
  int nodelet = -1;
  std::uint64_t flow = 0;  ///< id of the in-flight migration arrow
  bool in_flight = false;
};

}  // namespace

TraceAccounting trace_accounting(const sim::Tracer& t) {
  TraceAccounting a;
  a.records = t.size();
  a.dropped = t.dropped();
  a.truncated = t.truncated();
  a.ring = t.ring();
  return a;
}

Json to_json(const TraceAccounting& a) {
  Json j = Json::object();
  j.set("records", Json::number(static_cast<double>(a.records)));
  j.set("dropped", Json::number(static_cast<double>(a.dropped)));
  j.set("truncated", Json::boolean(a.truncated));
  j.set("ring", Json::boolean(a.ring));
  return j;
}

bool write_perfetto_trace(const sim::Tracer& t, int num_nodelets,
                          const std::string& path, std::string* err) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (err != nullptr) {
      *err = "cannot open '" + path + "': " + std::strerror(errno);
    }
    return false;
  }

  Json meta = to_json(trace_accounting(t));
  meta.set("num_nodelets", Json::number(num_nodelets));
  meta.set("tool", Json::string("emusim"));
  std::string head = "{\n\"displayTimeUnit\": \"ns\",\n\"otherData\": "
                     "{\"emusim\": " +
                     meta.dump(0) + "},\n\"traceEvents\": [\n";
  bool ok = std::fwrite(head.data(), 1, head.size(), f) == head.size();

  EventStream es(f);
  std::string line;

  // Per-nodelet process tracks, in nodelet order.
  for (int d = 0; d < num_nodelets; ++d) {
    line.clear();
    appendf(line,
            "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
            "\"args\":{\"name\":\"nodelet %d\"}}",
            d, d);
    es.event(line);
    line.clear();
    appendf(line,
            "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_sort_index\","
            "\"args\":{\"sort_index\":%d}}",
            d, d);
    es.event(line);
  }

  std::vector<ThreadState> threads;
  std::vector<int> resident(static_cast<std::size_t>(num_nodelets), 0);
  // Channel byte traffic, bucketed so the counter track stays compact.
  constexpr std::size_t kBytesBuckets = 256;
  std::vector<std::vector<std::uint64_t>> bytes(
      static_cast<std::size_t>(num_nodelets),
      std::vector<std::uint64_t>(kBytesBuckets, 0));
  Time t_max = t.size() > 0 ? t.at(t.size() - 1).t : 0;
  const Time bucket_w = t_max / static_cast<Time>(kBytesBuckets) + 1;
  std::uint64_t next_flow = 1;

  auto state = [&threads](std::int32_t tid) -> ThreadState* {
    if (tid < 0) return nullptr;
    if (static_cast<std::size_t>(tid) >= threads.size()) {
      threads.resize(static_cast<std::size_t>(tid) + 1);
    }
    return &threads[static_cast<std::size_t>(tid)];
  };
  auto in_range = [num_nodelets](std::int32_t d) {
    return d >= 0 && d < num_nodelets;
  };
  auto slice_begin = [&](int pid, std::int32_t tid, Time at) {
    line.clear();
    appendf(line,
            "{\"ph\":\"B\",\"pid\":%d,\"tid\":%d,\"ts\":%.6f,"
            "\"name\":\"t%d\",\"cat\":\"thread\"}",
            pid, tid, ts_us(at), tid);
    es.event(line);
  };
  auto slice_end = [&](int pid, std::int32_t tid, Time at) {
    line.clear();
    appendf(line, "{\"ph\":\"E\",\"pid\":%d,\"tid\":%d,\"ts\":%.6f}", pid,
            tid, ts_us(at));
    es.event(line);
  };
  auto counter = [&](int pid, const char* name, const char* key, Time at,
                     long long v) {
    line.clear();
    appendf(line,
            "{\"ph\":\"C\",\"pid\":%d,\"ts\":%.6f,\"name\":\"%s\","
            "\"args\":{\"%s\":%lld}}",
            pid, ts_us(at), name, key, v);
    es.event(line);
  };
  auto arrive = [&](std::int32_t nlet, ThreadState* st, std::int32_t tid,
                    Time at) {
    if (st->open && st->nodelet == nlet) return;
    if (st->open) slice_end(st->nodelet, tid, at);  // missed departure
    st->open = true;
    st->nodelet = nlet;
    slice_begin(nlet, tid, at);
    ++resident[static_cast<std::size_t>(nlet)];
    counter(nlet, "resident threads", "threads", at,
            resident[static_cast<std::size_t>(nlet)]);
  };
  auto leave = [&](ThreadState* st, std::int32_t tid, Time at) {
    if (!st->open) return;  // truncated trace: the arrival was overwritten
    slice_end(st->nodelet, tid, at);
    st->open = false;
    int& r = resident[static_cast<std::size_t>(st->nodelet)];
    if (r > 0) --r;
    counter(st->nodelet, "resident threads", "threads", at, r);
  };

  t.for_each([&](const sim::TraceRecord& r) {
    ThreadState* st = state(r.tid);
    switch (r.kind) {
      case sim::TraceKind::thread_spawn:
        if (in_range(r.a)) {
          line.clear();
          appendf(line,
                  "{\"ph\":\"i\",\"s\":\"p\",\"pid\":%d,\"ts\":%.6f,"
                  "\"name\":\"spawn\",\"cat\":\"spawn\","
                  "\"args\":{\"parent_nodelet\":%d,\"tid\":%d}}",
                  r.a, ts_us(r.t), r.b, r.tid);
          es.event(line);
        }
        break;
      case sim::TraceKind::thread_start:
        if (st != nullptr && in_range(r.a)) arrive(r.a, st, r.tid, r.t);
        break;
      case sim::TraceKind::thread_end:
        if (st != nullptr) leave(st, r.tid, r.t);
        break;
      case sim::TraceKind::migrate_out:
        if (st != nullptr && in_range(r.a)) {
          // Flow arrow source: anchored at the end of the residency slice.
          line.clear();
          appendf(line,
                  "{\"ph\":\"s\",\"pid\":%d,\"tid\":%d,\"ts\":%.6f,"
                  "\"id\":%llu,\"name\":\"migrate\",\"cat\":\"migration\","
                  "\"args\":{\"src\":%d,\"dst\":%d}}",
                  r.a, r.tid, ts_us(r.t),
                  static_cast<unsigned long long>(next_flow), r.a, r.b);
          es.event(line);
          st->flow = next_flow++;
          st->in_flight = true;
          leave(st, r.tid, r.t);
        }
        break;
      case sim::TraceKind::migrate_in:
        if (st != nullptr && in_range(r.a)) {
          if (st->in_flight) {
            line.clear();
            appendf(line,
                    "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":%d,\"tid\":%d,"
                    "\"ts\":%.6f,\"id\":%llu,\"name\":\"migrate\","
                    "\"cat\":\"migration\"}",
                    r.a, r.tid, ts_us(r.t),
                    static_cast<unsigned long long>(st->flow));
            es.event(line);
            st->in_flight = false;
          }
          arrive(r.a, st, r.tid, r.t);
        }
        break;
      case sim::TraceKind::mem_read:
      case sim::TraceKind::mem_write:
        if (in_range(r.a) && r.t >= 0) {
          bytes[static_cast<std::size_t>(r.a)]
               [static_cast<std::size_t>(r.t / bucket_w)] += r.arg;
        }
        break;
      case sim::TraceKind::remote_atomic:
        if (in_range(r.a) && r.t >= 0) {
          // The RMW occupies roughly two word accesses on the channel.
          bytes[static_cast<std::size_t>(r.a)]
               [static_cast<std::size_t>(r.t / bucket_w)] += 16;
        }
        break;
    }
  });

  // Close residency slices left open at the end of the trace.
  for (std::size_t tid = 0; tid < threads.size(); ++tid) {
    if (threads[tid].open) {
      leave(&threads[tid], static_cast<std::int32_t>(tid), t_max);
    }
  }

  // Channel traffic counter tracks (bytes moved per bucket of sim time).
  for (int d = 0; d < num_nodelets; ++d) {
    bool any = false;
    for (std::size_t b = 0; b < kBytesBuckets; ++b) {
      const std::uint64_t v = bytes[static_cast<std::size_t>(d)][b];
      if (v == 0 && !any) continue;
      any = true;
      counter(d, "channel bytes", "bytes",
              static_cast<Time>(b) * bucket_w,
              static_cast<long long>(v));
    }
  }

  ok = es.flush() && ok;
  const char tail[] = "\n]\n}\n";
  ok = std::fwrite(tail, 1, sizeof tail - 1, f) == sizeof tail - 1 && ok;
  if (std::fclose(f) != 0) ok = false;
  if (!ok && err != nullptr) *err = "error writing '" + path + "'";
  return ok;
}

Json to_json(const emu::CounterDelta& d) {
  Json j = Json::object();
  if (!d.from.empty()) j.set("from", Json::string(d.from));
  j.set("phase", Json::string(d.to));
  j.set("t0_ms", Json::number(to_seconds(d.t0) * 1e3));
  j.set("t1_ms", Json::number(to_seconds(d.t1) * 1e3));

  Json m = Json::object();
  m.set("migrations", Json::number(static_cast<double>(d.machine.migrations)));
  m.set("internode_migrations",
        Json::number(static_cast<double>(d.machine.internode_migrations)));
  m.set("spawns", Json::number(static_cast<double>(d.machine.spawns)));
  m.set("remote_spawns",
        Json::number(static_cast<double>(d.machine.remote_spawns)));
  m.set("inline_spawns",
        Json::number(static_cast<double>(d.machine.inline_spawns)));
  m.set("threads_completed",
        Json::number(static_cast<double>(d.machine.threads_completed)));
  j.set("machine", std::move(m));

  Json rows = Json::array();
  for (const auto& c : d.nodelets) {
    Json r = Json::object();
    r.set("nodelet", Json::number(c.nodelet));
    r.set("reads", Json::number(static_cast<double>(c.reads)));
    r.set("read_bytes", Json::number(static_cast<double>(c.read_bytes)));
    r.set("writes", Json::number(static_cast<double>(c.writes)));
    r.set("write_bytes", Json::number(static_cast<double>(c.write_bytes)));
    r.set("remote_writes_in",
          Json::number(static_cast<double>(c.remote_writes_in)));
    r.set("atomics_in", Json::number(static_cast<double>(c.atomics_in)));
    r.set("arrivals", Json::number(static_cast<double>(c.thread_arrivals)));
    r.set("max_resident", Json::number(c.max_resident));
    r.set("row_hit_rate", Json::number(c.row_hit_rate));
    r.set("channel_utilization", Json::number(c.channel_utilization));
    rows.push_back(std::move(r));
  }
  j.set("nodelets", std::move(rows));

  if (!d.migration_matrix.empty()) {
    Json mm = Json::array();
    for (const auto& row : d.migration_matrix) {
      Json jr = Json::array();
      for (const auto v : row) {
        jr.push_back(Json::number(static_cast<double>(v)));
      }
      mm.push_back(std::move(jr));
    }
    j.set("migration_matrix", std::move(mm));
  }
  j.set("trace_truncated", Json::boolean(d.trace_truncated));
  return j;
}

void PhaseTimeline::mark(emu::Machine& m, const std::string& phase) {
  snaps_.push_back(emu::snapshot_counters(m, phase));
}

std::vector<emu::CounterDelta> PhaseTimeline::deltas() const {
  std::vector<emu::CounterDelta> out;
  for (std::size_t i = 1; i < snaps_.size(); ++i) {
    out.push_back(emu::counters_delta(snaps_[i - 1], snaps_[i]));
  }
  return out;
}

Json PhaseTimeline::to_json() const {
  Json arr = Json::array();
  for (const auto& d : deltas()) arr.push_back(report::to_json(d));
  return arr;
}

BenchObserver::BenchObserver(Options opt) : opt_(std::move(opt)) {
  prev_ = emu::set_machine_observer(this);
}

BenchObserver::~BenchObserver() { emu::set_machine_observer(prev_); }

void BenchObserver::machine_created(emu::Machine& m) {
  if (tracing()) m.trace.enable_ring(opt_.trace_capacity);
  if (opt_.counters) starts_.emplace_back(&m, emu::snapshot_counters(m));
}

void BenchObserver::machine_finished(emu::Machine& m, Time elapsed) {
  ++runs_;
  (void)elapsed;
  if (opt_.counters) {
    emu::CounterSnapshot end = emu::snapshot_counters(m);
    emu::CounterSnapshot start;
    bool found = false;
    for (std::size_t i = 0; i < starts_.size(); ++i) {
      if (starts_[i].first == &m) {
        start = std::move(starts_[i].second);
        starts_.erase(starts_.begin() + static_cast<std::ptrdiff_t>(i));
        found = true;
        break;
      }
    }
    if (!found) {
      // Machine predates this observer: diff against an all-zero start.
      start.nodelets.resize(end.nodelets.size());
      for (std::size_t i = 0; i < start.nodelets.size(); ++i) {
        start.nodelets[i].nodelet = static_cast<int>(i);
      }
    }
    pending_.push_back(to_json(emu::counters_delta(start, end)));
  }
  if (tracing() && m.trace.enabled()) {
    // Keep the busiest run (most events observed, retained or not): a bench
    // sweeps many machine runs and the densest one is the one worth opening
    // in Perfetto.  Ties go to the newer run (past any warmup reps).
    const std::uint64_t observed = m.trace.size() + m.trace.dropped();
    if (observed >=
        last_trace_.size() + last_trace_.dropped()) {
      last_trace_ = std::move(m.trace);
      last_num_nodelets_ = m.num_nodelets();
    }
  }
}

std::vector<Json> BenchObserver::take_pending_counters() {
  std::vector<Json> out = std::move(pending_);
  pending_.clear();
  return out;
}

void BenchObserver::inject_pending(Json delta) {
  pending_.push_back(std::move(delta));
}

void BenchObserver::offer_trace(sim::Tracer t, int num_nodelets, int runs) {
  runs_ += runs;
  if (num_nodelets <= 0) return;  // the other observer saw no traced run
  const std::uint64_t observed = t.size() + t.dropped();
  if (observed >= last_trace_.size() + last_trace_.dropped()) {
    last_trace_ = std::move(t);
    last_num_nodelets_ = num_nodelets;
  }
}

bool BenchObserver::write_trace(std::string* err) const {
  if (!tracing()) {
    if (err != nullptr) *err = "no --trace path configured";
    return false;
  }
  if (runs_ == 0 || last_num_nodelets_ == 0) {
    if (err != nullptr) *err = "no traced machine run to export";
    return false;
  }
  return write_perfetto_trace(last_trace_, last_num_nodelets_,
                              opt_.trace_path, err);
}

TraceAccounting BenchObserver::last_trace_accounting() const {
  return trace_accounting(last_trace_);
}

}  // namespace emusim::report
