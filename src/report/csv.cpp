#include "report/csv.hpp"

#include <cerrno>
#include <cstring>

namespace emusim::report {

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header) {
  if (path.empty()) return;  // output deliberately disabled; still ok()
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) {
    ok_ = false;
    std::fprintf(stderr, "emusim: cannot open CSV output '%s': %s\n",
                 path.c_str(), std::strerror(errno));
    return;
  }
  row(header);
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr && std::fclose(file_) != 0) {
    std::fprintf(stderr, "emusim: error closing CSV output: %s\n",
                 std::strerror(errno));
  }
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (file_ == nullptr) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) std::fputc(',', file_);
    std::fputs(csv_escape(cells[i]).c_str(), file_);
  }
  std::fputc('\n', file_);
}

}  // namespace emusim::report
