#include "report/table.hpp"

#include <algorithm>

namespace emusim::report {

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }

  std::size_t total = 0;
  for (auto w : width) total += w + 2;

  std::fprintf(out, "\n%s\n", title_.c_str());
  for (std::size_t i = 0; i < std::max<std::size_t>(total, title_.size());
       ++i) {
    std::fputc('-', out);
  }
  std::fputc('\n', out);

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size() && c < width.size(); ++c) {
      std::fprintf(out, "%-*s", static_cast<int>(width[c] + 2),
                   cells[c].c_str());
    }
    std::fputc('\n', out);
  };
  print_row(header_);
  for (const auto& r : rows_) print_row(r);
  std::fflush(out);
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

}  // namespace emusim::report
