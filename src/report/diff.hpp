// Regression comparison between two sets of bench results (a committed
// baseline and a fresh run).  The simulator is deterministic, so the
// primary y metric (simulated bandwidth for nearly every bench) reproduces
// bit-for-bit on a correct build; the tolerance exists to absorb deliberate
// small recalibrations, not measurement noise.  tools/benchdiff is the CLI.
#pragma once

#include <string>
#include <vector>

#include "report/results.hpp"

namespace emusim::report {

struct DiffOptions {
  /// Maximum tolerated drop of the primary metric, percent (y lower than
  /// baseline by more than this fails).  Improvements never fail.
  double max_regress_pct = 5.0;
  /// When false, benches/series/points present in the baseline but missing
  /// from the candidate are only warnings rather than failures.
  bool require_coverage = true;
};

struct DiffEntry {
  std::string bench;
  std::string series;
  double x = 0.0;
  std::string label;
  /// Empty for the primary y; otherwise the name of the extra metric this
  /// entry compares (currently the lat_* tail-latency summaries).
  std::string metric;
  double base_y = 0.0;
  double cand_y = 0.0;
  double delta_pct = 0.0;  ///< (cand - base) / base * 100
  bool regression = false;
  /// True when this point's y is wall-clock-derived (y_wall_clock on either
  /// result): compared for the report, but never gated — host throughput is
  /// not deterministic and must not fail CI against a committed baseline.
  bool wall_clock = false;
  /// True for tail-latency extras (lat_* metrics on serving benches):
  /// compared and printed so a PR's percentile shifts are visible in the
  /// diff, but never gated — like wall-clock, by policy rather than
  /// nondeterminism.  Percentiles move with deliberate latency-model
  /// recalibration and histogram bucket resolution; the throughput y and
  /// the shape gates (tools/shapes) are the pass/fail line.
  bool report_only = false;
};

struct DiffReport {
  std::vector<DiffEntry> entries;       ///< every compared point
  std::vector<std::string> problems;    ///< missing coverage, mismatches
  int regressions = 0;
  int improvements = 0;  ///< points that moved up by more than the tolerance

  bool ok(const DiffOptions& opt) const {
    return regressions == 0 && (!opt.require_coverage || problems.empty());
  }
};

/// Compare candidate against baseline.  Every (bench, series, point) in the
/// baseline must exist in the candidate (else a problem is recorded);
/// candidate-only data is ignored — adding benches or sweep points is never
/// a regression.  Fingerprints must match per bench: results produced from
/// different configs are a problem, not a comparison.
DiffReport diff_results(const std::vector<BenchResult>& baseline,
                        const std::vector<BenchResult>& candidate,
                        const DiffOptions& opt);

}  // namespace emusim::report
