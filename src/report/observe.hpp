// Observability layer: Perfetto/Chrome trace export, phase-scoped counter
// snapshots, and the machine-lifecycle observer that wires both into the
// bench harness (docs/OBSERVABILITY.md).
//
// The paper's analysis leans on the vendor simulator's per-nodelet event
// counters (§III-B) — thread spawns, migrations, memory operations — to
// explain *why* a bandwidth curve has its shape.  This layer makes the
// same story inspectable for every bench run:
//
//   * write_perfetto_trace() renders a sim::Tracer stream as trace-event
//     JSON loadable in https://ui.perfetto.dev (thread residency slices on
//     per-nodelet tracks, migration flow arrows, counter tracks for
//     resident threads and channel byte traffic).
//   * PhaseTimeline marks named phases on a live machine and reports
//     counter *deltas* between them, so warmup and measured traffic are
//     attributed separately.
//   * BenchObserver implements emu::MachineObserver for the harness's
//     --trace/--counters flags: kernels construct machines internally, so
//     observation attaches at machine construction, not call sites.
//
// Truncation guarantee: every export produced here carries the trace's
// dropped/truncated accounting — an aggregation over a truncated trace is
// a lower bound and is always labeled as one.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "emu/counters.hpp"
#include "report/json.hpp"
#include "sim/trace.hpp"

namespace emusim::report {

/// What the Perfetto writer retained and lost, mirrored into the file's
/// "otherData.emusim" block so tools/traceview can report it offline.
struct TraceAccounting {
  std::size_t records = 0;   ///< records exported
  std::uint64_t dropped = 0; ///< records the tracer lost before export
  bool truncated = false;
  bool ring = false;
};

TraceAccounting trace_accounting(const sim::Tracer& t);
Json to_json(const TraceAccounting& a);

/// Stream `t`'s records to `path` as Chrome/Perfetto trace-event JSON.
/// Returns false with a message in `*err` on I/O failure.
bool write_perfetto_trace(const sim::Tracer& t, int num_nodelets,
                          const std::string& path, std::string* err);

/// Counter-delta JSON: machine totals, per-nodelet rows (arrivals, traffic,
/// row-hit rate, channel utilization), migration matrix, truncation flag.
Json to_json(const emu::CounterDelta& d);

/// Named-phase counter snapshots over one live machine.  mark() snapshots
/// now; deltas() yields the per-phase differences (phase i covers the
/// window between mark i-1 and mark i; the first mark opens the timeline).
class PhaseTimeline {
 public:
  void mark(emu::Machine& m, const std::string& phase);
  std::size_t marks() const { return snaps_.size(); }
  std::vector<emu::CounterDelta> deltas() const;
  /// JSON array of the per-phase deltas.
  Json to_json() const;

 private:
  std::vector<emu::CounterSnapshot> snaps_;
};

/// Machine observer behind the harness's --trace/--counters flags.
/// Installs itself process-wide on construction (restoring the previous
/// observer on destruction), enables ring-buffered tracing on every machine
/// a bench constructs, and keeps (a) one whole-run counter delta per
/// machine and (b) the newest completed machine's trace for export.
class BenchObserver final : public emu::MachineObserver {
 public:
  struct Options {
    bool counters = false;        ///< collect per-run counter deltas
    std::string trace_path;       ///< non-empty: export Perfetto JSON here
    std::size_t trace_capacity = std::size_t{1} << 16;  ///< ring records
  };

  explicit BenchObserver(Options opt);
  ~BenchObserver() override;
  BenchObserver(const BenchObserver&) = delete;
  BenchObserver& operator=(const BenchObserver&) = delete;

  void machine_created(emu::Machine& m) override;
  void machine_finished(emu::Machine& m, Time elapsed) override;

  bool counters() const { return opt_.counters; }
  bool tracing() const { return !opt_.trace_path.empty(); }
  int runs() const { return runs_; }

  /// Whole-run counter deltas (as JSON) for machines finished since the
  /// last take, oldest first.  The caller labels them with phase names.
  std::vector<Json> take_pending_counters();

  /// Merge support for the parallel sweep runner (bench/sweep_pool.hpp):
  /// each job runs under its own thread-local observer, and the pool folds
  /// those observers into the main-thread one in submission order, which
  /// reproduces the serial fold exactly.

  /// Append one counter-delta JSON as if a machine had just finished here.
  void inject_pending(Json delta);
  /// Fold another observer's trace: `runs` machine runs completed under it,
  /// and `t` is the busiest of them (empty when it saw no traced machine,
  /// signalled by num_nodelets == 0, in which case only `runs` is counted).
  /// Same busiest-wins / ties-to-newer rule as machine_finished().
  void offer_trace(sim::Tracer t, int num_nodelets, int runs);
  /// Move out the retained busiest trace (for handing to offer_trace()).
  sim::Tracer take_trace() { return std::move(last_trace_); }
  int last_num_nodelets() const { return last_num_nodelets_; }

  /// Export the newest completed machine's trace to opt_.trace_path.
  /// False (with *err) on I/O failure or when no machine ran.
  bool write_trace(std::string* err) const;

  /// Accounting for the trace write_trace() would export.
  TraceAccounting last_trace_accounting() const;

 private:
  Options opt_;
  emu::MachineObserver* prev_ = nullptr;
  std::vector<std::pair<emu::Machine*, emu::CounterSnapshot>> starts_;
  sim::Tracer last_trace_;
  int last_num_nodelets_ = 0;
  int runs_ = 0;
  std::vector<Json> pending_;
};

}  // namespace emusim::report
