// Higher-level programming on the Emu model: GlobalArray whole-array
// operations (fill / transform / reduce / histogram / dot) built on the
// cilk_for-style collectives and reducer hyperobjects — the §V "higher-
// level constructs" the 2018 toolchain did not yet provide.
//
//   $ ./build/examples/global_arrays
#include <cstdio>

#include "emu/counters.hpp"
#include "emu/runtime/global_array.hpp"

using namespace emusim;
using emu::Context;
using sim::Op;

int main() {
  emu::Machine m(emu::SystemConfig::chick_hw());
  constexpr std::size_t kN = 1 << 15;

  emu::GlobalArray<std::int64_t> a(m, kN), b(m, kN);
  std::int64_t sum = 0, dot = 0;
  std::vector<std::uint64_t> hist;

  const Time elapsed = m.run_root([&](Context& ctx) -> Op<> {
    co_await a.transform(ctx, [](std::size_t i, std::int64_t) {
      return static_cast<std::int64_t>(i % 1000);
    });
    co_await b.fill(ctx, 2);
    sum = co_await a.reduce_sum(ctx);
    dot = co_await a.dot(ctx, b);
    hist = co_await a.histogram(ctx, 0, 1000, 8);
  });

  std::printf("n = %zu elements striped over %d nodelets\n", kN,
              m.num_nodelets());
  std::printf("sum(a)    = %lld\n", static_cast<long long>(sum));
  std::printf("dot(a,2)  = %lld (= 2*sum: %s)\n",
              static_cast<long long>(dot),
              dot == 2 * sum ? "ok" : "WRONG");
  std::printf("histogram of a over [0,1000) in 8 bins:\n  ");
  for (auto h : hist) std::printf("%llu ", static_cast<unsigned long long>(h));
  std::printf("\nsimulated time: %s, migrations: %llu (reduction passes "
              "only)\n\n",
              format_time(elapsed).c_str(),
              static_cast<unsigned long long>(m.stats.migrations));
  std::fputs(emu::counters_report(m, elapsed).c_str(), stdout);
  return dot == 2 * sum ? 0 : 1;
}
