// Streaming-graph scenario (the paper's motivating application: STINGER-
// style streaming graph analytics).
//
// A stream of edges arrives; per-vertex degree counters live in an array
// striped across the nodelets.  Two ingest strategies are compared on the
// same simulated machine:
//
//   migrate  — the worker thread migrates to each endpoint's nodelet and
//              updates the counter with local reads/writes (the naive port:
//              every edge touches two random vertices => ~2 migrations per
//              edge).
//   remote   — the worker uses memory-side remote atomics (the Emu's
//              "memory-side processor" operations): no migrations at all.
//
// This is the paper's Section V "smart thread migration" guidance in
// miniature: choosing operations that avoid unnecessary migrations is as
// important as data layout.
#include <cstdio>
#include <vector>

#include "emu/machine.hpp"
#include "emu/runtime/alloc.hpp"
#include "sim/random.hpp"

using namespace emusim;
using emu::Context;
using sim::Op;

namespace {

struct EdgeStream {
  std::vector<std::uint32_t> src, dst;
};

EdgeStream make_edges(std::size_t count, std::size_t vertices,
                      std::uint64_t seed) {
  sim::Rng rng(seed);
  EdgeStream es;
  es.src.reserve(count);
  es.dst.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Power-law-ish endpoints: collapse a uniform draw quadratically so a
    // few vertices are hot, as in real graph streams.
    const auto u = static_cast<double>(rng.uniform());
    const auto v = static_cast<double>(rng.uniform());
    es.src.push_back(static_cast<std::uint32_t>(u * u * (vertices - 1)));
    es.dst.push_back(static_cast<std::uint32_t>(v * v * (vertices - 1)));
  }
  return es;
}

Op<> ingest_migrating(Context& ctx, const EdgeStream* es,
                      emu::Striped1D<std::int64_t>* degree, std::size_t lo,
                      std::size_t hi) {
  for (std::size_t e = lo; e < hi; ++e) {
    for (const std::uint32_t v : {es->src[e], es->dst[e]}) {
      const int home = degree->home(v);
      if (home != ctx.nodelet()) co_await ctx.migrate_to(home);
      co_await ctx.issue(10);
      co_await ctx.read_local(degree->byte_addr(v), 8);
      ++(*degree)[v];
      ctx.write_local(degree->byte_addr(v), 8);
    }
  }
}

Op<> ingest_remote_atomic(Context& ctx, const EdgeStream* es,
                          emu::Striped1D<std::int64_t>* degree,
                          std::size_t lo, std::size_t hi) {
  for (std::size_t e = lo; e < hi; ++e) {
    for (const std::uint32_t v : {es->src[e], es->dst[e]}) {
      co_await ctx.issue(10);
      ++(*degree)[v];
      ctx.atomic_remote(degree->home(v), degree->byte_addr(v));
    }
  }
}

template <class Ingest>
Time run(const EdgeStream& es, std::size_t vertices, int workers,
         Ingest ingest, std::uint64_t* migrations,
         std::vector<std::int64_t>* out) {
  emu::Machine m(emu::SystemConfig::chick_hw());
  emu::Striped1D<std::int64_t> degree(m, vertices);
  for (std::size_t i = 0; i < vertices; ++i) degree[i] = 0;

  const std::size_t edges = es.src.size();
  const Time elapsed = m.run_root([&](Context& ctx) -> Op<> {
    for (int w = 0; w < workers; ++w) {
      const std::size_t lo = edges * static_cast<std::size_t>(w) /
                             static_cast<std::size_t>(workers);
      const std::size_t hi = edges * static_cast<std::size_t>(w + 1) /
                             static_cast<std::size_t>(workers);
      co_await ctx.spawn_at(w % ctx.machine().num_nodelets(),
                            [&, lo, hi](Context& c) {
                              return ingest(c, &es, &degree, lo, hi);
                            });
    }
    co_await ctx.sync();
  });
  *migrations = m.stats.migrations;
  out->resize(vertices);
  for (std::size_t i = 0; i < vertices; ++i) (*out)[i] = degree[i];
  return elapsed;
}

}  // namespace

int main() {
  constexpr std::size_t kVertices = 1 << 14;
  constexpr std::size_t kEdges = 1 << 15;
  constexpr int kWorkers = 256;
  const EdgeStream es = make_edges(kEdges, kVertices, 17);

  std::vector<std::int64_t> deg_migrate, deg_remote;
  std::uint64_t mig_migrate = 0, mig_remote = 0;

  const Time t_migrate =
      run(es, kVertices, kWorkers,
          [](Context& c, const EdgeStream* e, emu::Striped1D<std::int64_t>* d,
             std::size_t lo, std::size_t hi) {
            return ingest_migrating(c, e, d, lo, hi);
          },
          &mig_migrate, &deg_migrate);
  const Time t_remote =
      run(es, kVertices, kWorkers,
          [](Context& c, const EdgeStream* e, emu::Striped1D<std::int64_t>* d,
             std::size_t lo, std::size_t hi) {
            return ingest_remote_atomic(c, e, d, lo, hi);
          },
          &mig_remote, &deg_remote);

  if (deg_migrate != deg_remote) {
    std::printf("FAIL: strategies disagree on the degree counts\n");
    return 1;
  }
  std::int64_t total = 0;
  for (auto d : deg_migrate) total += d;
  if (total != 2 * static_cast<std::int64_t>(kEdges)) {
    std::printf("FAIL: degree sum %lld != 2*edges\n",
                static_cast<long long>(total));
    return 1;
  }

  const double eps_migrate =
      static_cast<double>(kEdges) / to_seconds(t_migrate) / 1e6;
  const double eps_remote =
      static_cast<double>(kEdges) / to_seconds(t_remote) / 1e6;
  std::printf("ingest via migrations    : %7.2f M edges/s  (%llu migrations)\n",
              eps_migrate, static_cast<unsigned long long>(mig_migrate));
  std::printf("ingest via remote atomics: %7.2f M edges/s  (%llu migrations)\n",
              eps_remote, static_cast<unsigned long long>(mig_remote));
  std::printf("speedup: %.2fx — memory-side operations avoid ~2 migrations "
              "per edge\n",
              eps_remote / eps_migrate);
  return 0;
}
