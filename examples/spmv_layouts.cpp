// SpMV layout explorer: runs the same Laplacian SpMV under the paper's
// three Emu data layouts and prints bandwidth, migrations, and spawns side
// by side — the quickest way to see why layout is the dominant knob on a
// migratory-thread machine (paper Fig 9a and Section V-A).
//
//   $ ./build/examples/spmv_layouts [n]
#include <cstdio>
#include <cstdlib>

#include "kernels/spmv_emu.hpp"
#include "report/table.hpp"

using namespace emusim;

int main(int argc, char** argv) {
  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 100;
  const auto cfg = emu::SystemConfig::chick_hw();

  report::Table t("SpMV layouts on the Emu Chick model, 5-pt Laplacian n=" +
                  std::to_string(n) + " (" + std::to_string(5 * n * n) +
                  " nonzeros, grain 16)");
  t.columns({"layout", "MB/s", "migrations", "migrations/nnz", "spawns"});

  for (auto layout : {kernels::SpmvLayout::local, kernels::SpmvLayout::one_d,
                      kernels::SpmvLayout::two_d}) {
    kernels::SpmvEmuParams p;
    p.laplacian_n = n;
    p.layout = layout;
    p.grain = 16;
    const auto r = kernels::run_spmv_emu(cfg, p);
    if (!r.verified) {
      std::fprintf(stderr, "FAIL: SpMV result mismatch for layout %s\n",
                   to_string(layout));
      return 1;
    }
    const double nnz = 5.0 * static_cast<double>(n) * static_cast<double>(n);
    t.row({to_string(layout), report::Table::num(r.mb_per_sec),
           report::Table::integer(static_cast<long long>(r.migrations)),
           report::Table::num(static_cast<double>(r.migrations) / nnz, 3),
           report::Table::integer(static_cast<long long>(r.spawns))});
  }
  t.print();
  std::printf(
      "\nlocal: no migrations but one nodelet's core/channel/slots;\n"
      "1d:    word striping puts consecutive nonzeros on different nodelets "
      "(~1 migration/nnz);\n"
      "2d:    per-nodelet row chunks + replicated x: parallel AND local.\n");
  return 0;
}
