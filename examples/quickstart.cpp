// Quickstart: build an Emu Chick machine, allocate a striped array, spawn a
// worker per nodelet with a remote spawn, and sum the array in parallel.
//
//   $ ./build/examples/quickstart
//
// Demonstrates the core programming model: Machine + SystemConfig, the
// threadlet Context operations (spawn_at / migrate / read / sync), the
// Striped1D allocation view, and the per-run statistics.
#include <cstdio>
#include <vector>

#include "emu/machine.hpp"
#include "emu/runtime/alloc.hpp"

using namespace emusim;
using emu::Context;
using sim::Op;

namespace {

// Each worker sums the elements homed on its own nodelet.  Because the
// worker is spawned *onto* that nodelet and only touches local elements, it
// never migrates — the "smart thread migration" pattern from the paper.
Op<> sum_local_elements(Context& ctx, emu::Striped1D<std::int64_t>* arr,
                        std::int64_t* out) {
  const int d = ctx.nodelet();
  const std::size_t count = arr->elems_on(d);
  std::int64_t sum = 0;
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t i = arr->global_index(d, k);
    co_await ctx.issue(8);  // index arithmetic + add
    co_await ctx.read_local(arr->byte_addr(i), 8);
    sum += (*arr)[i];
  }
  out[d] = sum;
}

Op<> root(Context& ctx, emu::Striped1D<std::int64_t>* arr,
          std::vector<std::int64_t>* partials) {
  for (int d = 0; d < ctx.machine().num_nodelets(); ++d) {
    co_await ctx.spawn_at(d, [arr, partials](Context& c) {
      return sum_local_elements(c, arr, partials->data());
    });
  }
  co_await ctx.sync();
}

}  // namespace

int main() {
  // A machine configured like the Chick prototype: 8 nodelets, one 150 MHz
  // Gossamer core each, 64 threadlet slots, NCDRAM.
  emu::Machine m(emu::SystemConfig::chick_hw());

  constexpr std::size_t kN = 1 << 16;
  emu::Striped1D<std::int64_t> arr(m, kN);  // mw_malloc1dlong equivalent
  for (std::size_t i = 0; i < kN; ++i) arr[i] = static_cast<std::int64_t>(i);

  std::vector<std::int64_t> partials(
      static_cast<std::size_t>(m.num_nodelets()), 0);
  const Time elapsed =
      m.run_root([&](Context& ctx) { return root(ctx, &arr, &partials); });

  std::int64_t total = 0;
  for (auto p : partials) total += p;
  const std::int64_t expected =
      static_cast<std::int64_t>(kN) * (static_cast<std::int64_t>(kN) - 1) / 2;

  std::printf("sum = %lld (%s)\n", static_cast<long long>(total),
              total == expected ? "correct" : "WRONG");
  std::printf("simulated time  : %s\n", format_time(elapsed).c_str());
  std::printf("bandwidth       : %.1f MB/s\n",
              mb_per_sec(8.0 * kN, elapsed));
  std::printf("threads spawned : %llu (remote: %llu)\n",
              static_cast<unsigned long long>(m.stats.spawns),
              static_cast<unsigned long long>(m.stats.remote_spawns));
  std::printf("migrations      : %llu\n",
              static_cast<unsigned long long>(m.stats.migrations));
  return total == expected ? 0 : 1;
}
