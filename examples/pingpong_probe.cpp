// Migration probe: measures thread-migration latency and throughput between
// two nodelets across the machine configurations, and prints the latency
// histogram — the tool behind the paper's Fig 10c diagnosis (hardware
// migration engine ~9 M/s vs ~16 M/s simulated, 1-2 us per migration).
//
//   $ ./build/examples/pingpong_probe
#include <cstdio>

#include "emu/machine.hpp"
#include "kernels/pingpong.hpp"
#include "report/table.hpp"

using namespace emusim;
using sim::Op;

namespace {

/// Re-run one config with the machine visible so we can print the latency
/// histogram the kernel wrapper does not expose.
void probe(const emu::SystemConfig& cfg) {
  emu::Machine m(cfg);
  const int trips = 2000;
  const Time elapsed = m.run_root([&](emu::Context& ctx) -> Op<> {
    for (int t = 0; t < 64; ++t) {
      co_await ctx.spawn_at(0, [trips = trips](emu::Context& c) -> Op<> {
        for (int k = 0; k < trips; ++k) {
          co_await c.migrate_to(1);
          co_await c.migrate_to(0);
        }
      });
    }
    co_await ctx.sync();
  });

  const auto& hist = m.stats.migration_latency_ns;
  std::printf("\n=== %s ===\n", cfg.name.c_str());
  std::printf("migrations      : %llu in %s\n",
              static_cast<unsigned long long>(m.stats.migrations),
              format_time(elapsed).c_str());
  std::printf("throughput      : %.2f M migrations/s\n",
              static_cast<double>(m.stats.migrations) / to_seconds(elapsed) /
                  1e6);
  std::printf("latency mean    : %.2f us   p50 ~%.2f us   p99 ~%.2f us\n",
              hist.summary().mean() / 1e3,
              static_cast<double>(hist.quantile(0.50)) / 1e3,
              static_cast<double>(hist.quantile(0.99)) / 1e3);
  std::printf("latency histogram (ns buckets):\n%s", hist.render().c_str());
}

}  // namespace

int main() {
  probe(emu::SystemConfig::chick_hw());
  probe(emu::SystemConfig::chick_as_simulated());
  probe(emu::SystemConfig::chick_fullspeed());
  return 0;
}
