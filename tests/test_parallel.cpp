// The higher-level parallel constructs: parallel_apply (cilk_for),
// on_each_nodelet, for_each_home, and SumReducer.
#include "emu/runtime/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

namespace emusim::emu {
namespace {

sim::Op<> touch(Context& ctx, std::vector<int>* hits, std::size_t i) {
  ++(*hits)[i];
  co_await ctx.issue(5);
}

class ParallelApplyGrains : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelApplyGrains, VisitsEveryIndexExactlyOnce) {
  Machine m(SystemConfig::chick_hw());
  constexpr std::size_t kN = 500;
  std::vector<int> hits(kN, 0);
  const std::size_t grain = GetParam();
  m.run_root([&](Context& ctx) -> sim::Op<> {
    co_await parallel_apply(ctx, 0, kN, grain,
                            [&](Context& c, std::size_t i) {
                              return touch(c, &hits, i);
                            });
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Grains, ParallelApplyGrains,
                         ::testing::Values(1, 2, 7, 16, 100, 1000));

TEST(ParallelApply, EmptyAndSingletonRanges) {
  Machine m(SystemConfig::chick_hw());
  std::vector<int> hits(4, 0);
  m.run_root([&](Context& ctx) -> sim::Op<> {
    co_await parallel_apply(ctx, 2, 2, 8,
                            [&](Context& c, std::size_t i) {
                              return touch(c, &hits, i);
                            });
    co_await parallel_apply(ctx, 3, 4, 8,
                            [&](Context& c, std::size_t i) {
                              return touch(c, &hits, i);
                            });
  });
  EXPECT_EQ(hits, (std::vector<int>{0, 0, 0, 1}));
}

TEST(ParallelApply, ActuallyRunsConcurrently) {
  // With grain 1 and per-leaf issue work, total time must be far below the
  // serial sum.
  auto run = [](std::size_t grain) {
    Machine m(SystemConfig::chick_hw());
    std::vector<int> hits(256, 0);
    return m.run_root([&, grain](Context& ctx) -> sim::Op<> {
      co_await parallel_apply(ctx, 0, 256, grain,
                              [&](Context& c, std::size_t i) -> sim::Op<> {
                                ++hits[i];
                                co_await c.engine().sleep(us(10));
                              });
    });
  };
  EXPECT_LT(run(1), run(256) / 4);
}

TEST(OnEachNodelet, RunsExactlyOncePerNodelet) {
  Machine m(SystemConfig::chick_hw());
  std::multiset<int> where;
  m.run_root([&](Context& ctx) -> sim::Op<> {
    co_await on_each_nodelet(ctx, [&](Context& c) -> sim::Op<> {
      where.insert(c.nodelet());
      co_await c.issue(1);
    });
  });
  ASSERT_EQ(where.size(), 8u);
  for (int d = 0; d < 8; ++d) EXPECT_EQ(where.count(d), 1u);
}

TEST(OnEachNodelet, WorksOn64Nodelets) {
  Machine m(SystemConfig::fullspeed_multinode(8));
  int count = 0;
  m.run_root([&](Context& ctx) -> sim::Op<> {
    co_await on_each_nodelet(ctx, [&](Context& c) -> sim::Op<> {
      ++count;
      co_await c.issue(1);
    });
  });
  EXPECT_EQ(count, 64);
}

TEST(ForEachHome, BodiesNeverMigrate) {
  Machine m(SystemConfig::chick_hw());
  Striped1D<std::int64_t> arr(m, 1000);
  for (std::size_t i = 0; i < arr.size(); ++i) arr[i] = 1;
  std::int64_t sum = 0;
  m.run_root([&](Context& ctx) -> sim::Op<> {
    co_await for_each_home(
        ctx, &arr, 16, [&](Context& c, std::size_t i) -> sim::Op<> {
          EXPECT_EQ(c.nodelet(), arr.home(i));
          co_await c.read_local(arr.byte_addr(i), 8);
          sum += arr[i];
        });
  });
  EXPECT_EQ(sum, 1000);
  EXPECT_EQ(m.stats.migrations, 0u);
}

TEST(SumReducer, LocalAddsAndGlobalReduce) {
  Machine m(SystemConfig::chick_hw());
  Striped1D<std::int64_t> arr(m, 512);
  for (std::size_t i = 0; i < arr.size(); ++i) {
    arr[i] = static_cast<std::int64_t>(i);
  }
  SumReducer<std::int64_t> red(m);
  std::int64_t reduced = 0;
  m.run_root([&](Context& ctx) -> sim::Op<> {
    co_await for_each_home(ctx, &arr, 8,
                           [&](Context& c, std::size_t i) -> sim::Op<> {
                             co_await c.read_local(arr.byte_addr(i), 8);
                             red.add(c, arr[i]);
                           });
    reduced = co_await red.reduce(ctx);
  });
  EXPECT_EQ(reduced, 512 * 511 / 2);
  EXPECT_EQ(red.value_unsynchronized(), 512 * 511 / 2);
  // The reduce pass migrates at most once per nodelet (plus the hop home).
  EXPECT_LE(m.stats.migrations, 8u);
}

TEST(SumReducer, ReduceReturnsToCallingNodelet) {
  // Regression: reduce() used to strand the calling context on nodelet n-1
  // after the combine loop, so follow-on "local" operations were charged to
  // the wrong nodelet.
  Machine m(SystemConfig::chick_hw());
  SumReducer<std::int64_t> red(m);
  m.run_root([&](Context& ctx) -> sim::Op<> {
    co_await ctx.migrate_to(3);  // reduce from a non-zero home nodelet
    red.add(ctx, 7);
    const int home = ctx.nodelet();
    const std::int64_t total = co_await red.reduce(ctx);
    EXPECT_EQ(total, 7);
    EXPECT_EQ(ctx.nodelet(), home);
    // A local write after reduce lands on the home nodelet's channel.
    const auto before = m.nodelet(home).stats.writes;
    ctx.write_local(0, 8);
    EXPECT_EQ(m.nodelet(home).stats.writes, before + 1);
  });
}

}  // namespace
}  // namespace emusim::emu
