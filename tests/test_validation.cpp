// Shape regression suite: the paper's headline findings, asserted as tests.
// If a model change breaks one of these, the reproduction no longer tells
// the paper's story — these are the scientific invariants of the repo.
#include <gtest/gtest.h>

#include "kernels/chase_emu.hpp"
#include "kernels/chase_xeon.hpp"
#include "kernels/pingpong.hpp"
#include "kernels/stream_emu.hpp"
#include "kernels/stream_xeon.hpp"

namespace emusim {
namespace {

using namespace kernels;

// Fig 4: one nodelet scales well past 16 threads and plateaus by 64.
TEST(Shapes, Fig4SingleNodeletKnee) {
  StreamParams p;
  p.n = 1 << 15;
  p.across = 1;
  auto bw = [&](int t) {
    p.threads = t;
    return run_stream_add(emu::SystemConfig::chick_hw(), p).mb_per_sec;
  };
  const double b8 = bw(8), b32 = bw(32), b64 = bw(64);
  EXPECT_GT(b32, 1.2 * b8);        // still scaling at 8->32
  EXPECT_LT(b64, 1.25 * b32);      // mostly flat at 32->64
}

// Fig 5: remote spawn strategies are essential on 8 nodelets.
TEST(Shapes, Fig5RemoteSpawnEssential) {
  StreamParams p;
  p.n = 1 << 17;
  p.threads = 256;
  p.strategy = SpawnStrategy::recursive_spawn;
  const auto local = run_stream_add(emu::SystemConfig::chick_hw(), p);
  p.strategy = SpawnStrategy::recursive_remote_spawn;
  const auto remote = run_stream_add(emu::SystemConfig::chick_hw(), p);
  EXPECT_GT(remote.mb_per_sec, 3.0 * local.mb_per_sec);
}

// Figs 6/7: Emu is flat across block sizes where the Xeon swings widely.
TEST(Shapes, Fig6Fig7LocalitySensitivityContrast) {
  // Emu is flat above the block-1 recovery point; the Xeon swings across
  // the full sweep (its block-1 case wastes 3/4 of every line).
  double emu_min = 1e18, emu_max = 0, xeon_min = 1e18, xeon_max = 0;
  for (std::size_t block : {8u, 64u, 512u}) {
    ChaseEmuParams ep;
    ep.n = 1 << 17;
    ep.block = block;
    ep.threads = 128;
    const double e = run_chase_emu(emu::SystemConfig::chick_hw(), ep).mb_per_sec;
    emu_min = std::min(emu_min, e);
    emu_max = std::max(emu_max, e);
  }
  for (std::size_t block : {1u, 64u, 1024u}) {
    ChaseXeonParams xp;
    xp.n = 1 << 19;
    xp.block = block;
    xp.threads = 16;
    auto cfg = xeon::SystemConfig::sandy_bridge();
    cfg.llc_bytes = 1 << 20;  // keep the test list DRAM-resident
    const double x = run_chase_xeon(cfg, xp).mb_per_sec;
    xeon_min = std::min(xeon_min, x);
    xeon_max = std::max(xeon_max, x);
  }
  EXPECT_LT(emu_max / emu_min, 1.35);   // Emu: flat
  EXPECT_GT(xeon_max / xeon_min, 2.0);  // Xeon: locality dependent
}

// Fig 8: Emu chase utilization far above the Xeon's.
TEST(Shapes, Fig8UtilizationContrast) {
  StreamParams esp;
  esp.n = 1 << 17;
  esp.threads = 512;
  esp.strategy = SpawnStrategy::recursive_remote_spawn;
  const double emu_peak =
      run_stream_add(emu::SystemConfig::chick_hw(), esp).mb_per_sec;
  ChaseEmuParams ecp;
  ecp.n = 1 << 17;
  ecp.block = 64;
  ecp.threads = 512;
  const double emu_chase =
      run_chase_emu(emu::SystemConfig::chick_hw(), ecp).mb_per_sec;
  const double emu_util = emu_chase / emu_peak;

  StreamXeonParams xsp;
  xsp.n = 1 << 19;
  xsp.threads = 16;
  const double xeon_peak =
      run_stream_xeon(xeon::SystemConfig::sandy_bridge(), xsp).mb_per_sec;
  ChaseXeonParams xcp;
  xcp.n = std::size_t{1} << 22;  // 64 MiB: DRAM-resident vs the 20 MiB LLC
  xcp.block = 256;
  xcp.threads = 32;
  const double xeon_chase =
      run_chase_xeon(xeon::SystemConfig::sandy_bridge(), xcp).mb_per_sec;
  const double xeon_util = xeon_chase / xeon_peak;

  EXPECT_GT(emu_util, 0.55);   // paper: ~80% typical, 50% worst
  EXPECT_LT(xeon_util, 0.40);  // paper: < ~25%
  EXPECT_GT(emu_util, 1.8 * xeon_util);
}

// Fig 10: STREAM validates, pointer chase exposes the migration-engine gap.
TEST(Shapes, Fig10ValidationGapIsMigrationBound) {
  const auto hw = emu::SystemConfig::chick_hw();
  const auto sim = emu::SystemConfig::chick_as_simulated();

  StreamParams sp;
  sp.n = 1 << 16;
  sp.threads = 256;
  sp.strategy = SpawnStrategy::recursive_remote_spawn;
  const double s_hw = run_stream_add(hw, sp).mb_per_sec;
  const double s_sim = run_stream_add(sim, sp).mb_per_sec;
  EXPECT_NEAR(s_sim / s_hw, 1.0, 0.05);  // STREAM matches

  ChaseEmuParams cp;
  cp.n = 1 << 14;
  cp.block = 1;
  cp.threads = 256;
  const double c_hw = run_chase_emu(hw, cp).mb_per_sec;
  const double c_sim = run_chase_emu(sim, cp).mb_per_sec;
  // Migration-bound: the gap tracks the 16/9 engine-rate ratio.
  EXPECT_NEAR(c_sim / c_hw, 16.0 / 9.0, 0.25);
}

// Fig 11: the full-speed 64-nodelet system stays locality-insensitive and
// scales with threads.
TEST(Shapes, Fig11FullSpeedScalesAndStaysFlat) {
  // Locality insensitivity needs enough threads to cover the inter-node
  // hop latency — which is itself the figure's second claim: bandwidth
  // keeps scaling into the thousands of threads.
  const auto cfg = emu::SystemConfig::fullspeed_multinode(8);
  ChaseEmuParams p;
  p.n = 1 << 18;
  p.threads = 2048;
  p.block = 16;
  const auto b16 = run_chase_emu(cfg, p);
  p.block = 128;
  const auto b128 = run_chase_emu(cfg, p);
  EXPECT_NEAR(b16.mb_per_sec / b128.mb_per_sec, 1.0, 0.3);

  p.block = 64;
  p.threads = 256;
  const auto few = run_chase_emu(cfg, p);
  p.threads = 2048;
  const auto many = run_chase_emu(cfg, p);
  EXPECT_GT(many.mb_per_sec, 2.0 * few.mb_per_sec);
}

// §IV-D: single-migration latency is 1-2 us on the hardware.
TEST(Shapes, MigrationLatencyPaperRange) {
  PingPongParams p;
  p.threads = 1;
  p.round_trips = 100;
  const auto r = run_pingpong(emu::SystemConfig::chick_hw(), p);
  EXPECT_GE(r.mean_latency_us, 1.0);
  EXPECT_LE(r.mean_latency_us, 2.0);
}

}  // namespace
}  // namespace emusim
