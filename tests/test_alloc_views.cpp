// Property tests for the distributed allocation views: for every (n, block,
// across) combination, the striping must partition indices exactly, local
// addresses must not collide, and the local/global index maps must be
// mutual inverses.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "emu/runtime/alloc.hpp"

namespace emusim::emu {
namespace {

struct StripeCase {
  std::size_t n;
  std::size_t block;
  int across;  // 0 = all nodelets
};

class StripedProps : public ::testing::TestWithParam<StripeCase> {};

TEST_P(StripedProps, HomesPartitionAndAddressesAreUnique) {
  const auto c = GetParam();
  Machine m(SystemConfig::chick_hw());
  Striped1D<std::int64_t> v(m, c.n, c.block, c.across);
  const int nlets = c.across > 0 ? c.across : m.num_nodelets();

  std::map<int, std::set<std::uint64_t>> addrs_by_home;
  std::map<int, std::size_t> count_by_home;
  for (std::size_t i = 0; i < c.n; ++i) {
    const int h = v.home(i);
    ASSERT_GE(h, 0);
    ASSERT_LT(h, nlets);
    // Addresses within a home nodelet must be unique and 8-byte aligned.
    const auto addr = v.byte_addr(i);
    EXPECT_EQ(addr % 8, 0u);
    EXPECT_TRUE(addrs_by_home[h].insert(addr).second)
        << "address collision at index " << i;
    ++count_by_home[h];
  }

  // elems_on must agree with the explicit count, and sum to n.
  std::size_t total = 0;
  for (int d = 0; d < nlets; ++d) {
    EXPECT_EQ(v.elems_on(d), count_by_home[d]) << "nodelet " << d;
    total += v.elems_on(d);
  }
  EXPECT_EQ(total, c.n);
}

TEST_P(StripedProps, GlobalIndexInvertsLocalEnumeration) {
  const auto c = GetParam();
  Machine m(SystemConfig::chick_hw());
  Striped1D<std::int64_t> v(m, c.n, c.block, c.across);
  const int nlets = c.across > 0 ? c.across : m.num_nodelets();

  std::set<std::size_t> seen;
  for (int d = 0; d < nlets; ++d) {
    for (std::size_t k = 0; k < v.elems_on(d); ++k) {
      const std::size_t i = v.global_index(d, k);
      ASSERT_LT(i, c.n);
      EXPECT_EQ(v.home(i), d);
      EXPECT_TRUE(seen.insert(i).second) << "duplicate global index " << i;
    }
  }
  EXPECT_EQ(seen.size(), c.n);
}

TEST_P(StripedProps, BlocksAreContiguousWithinANodelet) {
  const auto c = GetParam();
  Machine m(SystemConfig::chick_hw());
  Striped1D<std::int64_t> v(m, c.n, c.block, c.across);
  // Within one block, consecutive global indices must be adjacent in the
  // home nodelet's memory (this is what makes intra-block access local and
  // row-buffer friendly).
  for (std::size_t i = 0; i + 1 < c.n; ++i) {
    if ((i / c.block) == ((i + 1) / c.block)) {
      EXPECT_EQ(v.home(i), v.home(i + 1));
      EXPECT_EQ(v.byte_addr(i + 1), v.byte_addr(i) + 8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StripedProps,
    ::testing::Values(StripeCase{1, 1, 0}, StripeCase{7, 1, 0},
                      StripeCase{8, 1, 0}, StripeCase{64, 1, 0},
                      StripeCase{100, 1, 0}, StripeCase{100, 4, 0},
                      StripeCase{96, 8, 0}, StripeCase{1000, 16, 0},
                      StripeCase{100, 1, 1}, StripeCase{100, 8, 1},
                      StripeCase{100, 4, 3}, StripeCase{513, 64, 0},
                      StripeCase{4096, 512, 0}, StripeCase{33, 32, 5}));

TEST(LocalArrayView, FixedHomeAndDenseAddresses) {
  Machine m(SystemConfig::chick_hw());
  LocalArray<double> v(m, 100, 3);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(v.home(i), 3);
    EXPECT_EQ(v.byte_addr(i), v.byte_addr(0) + i * sizeof(double));
  }
}

TEST(ReplicatedView, PerNodeletCopiesHaveDistinctAddresses) {
  Machine m(SystemConfig::chick_hw());
  Replicated<std::int64_t> v(m, 10);
  std::set<std::uint64_t> bases;
  for (int d = 0; d < m.num_nodelets(); ++d) {
    bases.insert(v.byte_addr_on(d, 0));
  }
  // Bases may legitimately coincide numerically across nodelets (separate
  // address spaces), but within a machine built fresh they all start at
  // offset 0 of each arena — what matters is that indexing is dense.
  for (int d = 0; d < m.num_nodelets(); ++d) {
    EXPECT_EQ(v.byte_addr_on(d, 7), v.byte_addr_on(d, 0) + 56);
  }
}

TEST(ChunkedView, SizesAndHomesMatchRequest) {
  Machine m(SystemConfig::chick_hw());
  std::vector<std::size_t> counts = {5, 0, 3, 1, 0, 0, 2, 9};
  Chunked<int> v(m, counts);
  for (int d = 0; d < 8; ++d) {
    EXPECT_EQ(v.chunk_size(d), counts[static_cast<std::size_t>(d)]);
    EXPECT_EQ(v.home(d), d);
  }
  v.at(7, 8) = 77;
  EXPECT_EQ(v.at(7, 8), 77);
}

// --- lazily chunked host storage -------------------------------------------
//
// The host mirror is chunked per participating nodelet and materialized on
// first touch.  These tests pin the semantics the dense mirror used to give
// (zero-init, stable element identity, full round-trips) plus the new
// contracts: untouched views cost nothing, a touch materializes exactly one
// home's chunk, and the machine footprint tracks chunk bytes.

TEST_P(StripedProps, ElementsRoundTripThroughTheChunkedLayout) {
  const auto c = GetParam();
  Machine m(SystemConfig::chick_hw());
  Striped1D<std::int64_t> v(m, c.n, c.block, c.across);
  // Dense-mirror semantics: every element reads zero before any write.
  for (std::size_t i = 0; i < c.n; ++i) {
    ASSERT_EQ(v[i], 0) << "index " << i;
  }
  // Distinct value per index, written through the global operator[].
  for (std::size_t i = 0; i < c.n; ++i) {
    v[i] = static_cast<std::int64_t>(i * 3 + 1);
  }
  for (std::size_t i = 0; i < c.n; ++i) {
    ASSERT_EQ(v[i], static_cast<std::int64_t>(i * 3 + 1)) << "index " << i;
  }
  // The same elements seen through the local (nodelet, k) enumeration:
  // operator[] of global_index(d, k) must walk every element exactly once
  // with the values intact — i.e. the global->(chunk, local) map used by
  // element access inverts the enumeration the address math uses.
  const int nlets = c.across > 0 ? c.across : m.num_nodelets();
  std::size_t seen = 0;
  for (int d = 0; d < nlets; ++d) {
    for (std::size_t k = 0; k < v.elems_on(d); ++k) {
      const std::size_t i = v.global_index(d, k);
      ASSERT_EQ(v[i], static_cast<std::int64_t>(i * 3 + 1));
      ++seen;
    }
  }
  EXPECT_EQ(seen, c.n);
  // Everything is now materialized; the footprint must charge exactly the
  // element bytes (n > 0 touches every nodelet that homes elements).
  EXPECT_EQ(v.host_bytes(), c.n * sizeof(std::int64_t));
  EXPECT_EQ(m.host_footprint().current(), c.n * sizeof(std::int64_t));
}

TEST(LazyStriped, UntouchedBillionElementViewMaterializesNothing) {
  Machine m(SystemConfig::chick_hw());
  // 2^30 elements = 8 GiB dense — the old mirror would allocate it here.
  const std::size_t n = std::size_t{1} << 30;
  Striped1D<std::int64_t> v(m, n, 64);
  EXPECT_EQ(v.size(), n);
  EXPECT_EQ(v.host_bytes(), 0u);
  EXPECT_EQ(m.host_footprint().current(), 0u);
  EXPECT_EQ(m.host_footprint().peak(), 0u);
  // Address/home math must work across the whole region without touching
  // host storage.
  const std::size_t far = n - 3;
  EXPECT_GE(v.home(far), 0);
  EXPECT_LT(v.home(far), m.num_nodelets());
  EXPECT_EQ(v.byte_addr(far) % 8, 0u);
  for (int d = 0; d < m.num_nodelets(); ++d) {
    EXPECT_FALSE(v.chunk_materialized(d));
  }
}

TEST(LazyStriped, TouchMaterializesOnlyTheHomeChunk) {
  Machine m(SystemConfig::chick_hw());
  Striped1D<std::int64_t> v(m, 1024, 4);
  const std::size_t i = 10;  // block 2 -> nodelet 2 under block=4 striping
  v[i] = 42;
  const int h = v.home(i);
  for (int d = 0; d < m.num_nodelets(); ++d) {
    EXPECT_EQ(v.chunk_materialized(d), d == h) << "nodelet " << d;
  }
  const std::uint64_t chunk_bytes = v.elems_on(h) * sizeof(std::int64_t);
  EXPECT_EQ(v.host_bytes(), chunk_bytes);
  EXPECT_EQ(m.host_footprint().current(), chunk_bytes);
  EXPECT_EQ(m.host_footprint().peak(), chunk_bytes);
  EXPECT_EQ(v[i], 42);
  // Other elements of the same chunk were zero-initialized by the touch.
  EXPECT_EQ(v[i + 1], 0);
}

TEST(LazyStriped, FootprintReleasesOnDestructionButPeakPersists) {
  Machine m(SystemConfig::chick_hw());
  {
    Striped1D<std::int64_t> v(m, 256);
    for (std::size_t i = 0; i < 256; ++i) v[i] = 1;
    EXPECT_EQ(m.host_footprint().current(), 256 * sizeof(std::int64_t));
  }
  EXPECT_EQ(m.host_footprint().current(), 0u);
  EXPECT_EQ(m.host_footprint().peak(), 256 * sizeof(std::int64_t));
}

TEST(LazyStriped, ZeroSizeViewIsWellFormed) {
  Machine m(SystemConfig::chick_hw());
  Striped1D<std::int64_t> v(m, 0);
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.host_bytes(), 0u);
  for (int d = 0; d < m.num_nodelets(); ++d) {
    EXPECT_EQ(v.elems_on(d), 0u);
  }
}

TEST(LazyStriped, SingleNodeletDegenerateRoundTrips) {
  Machine m(SystemConfig::chick_hw());
  Striped1D<std::int64_t> v(m, 100, 8, /*across=*/1);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(v.home(i), 0);
    v[i] = static_cast<std::int64_t>(1000 - i);
  }
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(v[i], static_cast<std::int64_t>(1000 - i));
  }
  EXPECT_EQ(v.host_bytes(), 100 * sizeof(std::int64_t));
}

TEST(LazyStriped, MoveTransfersChunksAndFootprint) {
  Machine m(SystemConfig::chick_hw());
  Striped1D<std::int64_t> a(m, 64);
  a[7] = 7;
  const std::uint64_t charged = m.host_footprint().current();
  EXPECT_GT(charged, 0u);
  Striped1D<std::int64_t> b(std::move(a));
  EXPECT_EQ(b[7], 7);
  EXPECT_EQ(b.host_bytes(), charged);
  // The charge moved with the chunks — no double count, no early release.
  EXPECT_EQ(m.host_footprint().current(), charged);
}

TEST(LazyViews, LocalReplicatedAndChunkedAreLazyToo) {
  Machine m(SystemConfig::chick_hw());
  LocalArray<double> local(m, 50, 2);
  Replicated<std::int64_t> repl(m, 20);
  Chunked<int> chunked(m, {4, 0, 0, 0, 0, 0, 0, 4});
  EXPECT_EQ(local.host_bytes(), 0u);
  EXPECT_EQ(repl.host_bytes(), 0u);
  EXPECT_EQ(chunked.host_bytes(), 0u);
  EXPECT_EQ(m.host_footprint().current(), 0u);
  local[0] = 1.5;
  repl[3] = 9;
  chunked.at(7, 1) = 4;
  EXPECT_EQ(local.host_bytes(), 50 * sizeof(double));
  // Replicated keeps ONE functional host image regardless of nodelet count.
  EXPECT_EQ(repl.host_bytes(), 20 * sizeof(std::int64_t));
  EXPECT_EQ(chunked.host_bytes(), 4 * sizeof(int));
  EXPECT_EQ(m.host_footprint().current(),
            local.host_bytes() + repl.host_bytes() + chunked.host_bytes());
}

TEST(Views, ArenasAdvancePerAllocation) {
  Machine m(SystemConfig::chick_hw());
  Striped1D<std::int64_t> a(m, 64);
  Striped1D<std::int64_t> b(m, 64);
  // Two allocations on the same machine must not overlap on any nodelet.
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = 0; j < 64; ++j) {
      if (a.home(i) == b.home(j)) {
        EXPECT_NE(a.byte_addr(i), b.byte_addr(j));
      }
    }
  }
}

}  // namespace
}  // namespace emusim::emu
