// Property tests for the distributed allocation views: for every (n, block,
// across) combination, the striping must partition indices exactly, local
// addresses must not collide, and the local/global index maps must be
// mutual inverses.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "emu/runtime/alloc.hpp"

namespace emusim::emu {
namespace {

struct StripeCase {
  std::size_t n;
  std::size_t block;
  int across;  // 0 = all nodelets
};

class StripedProps : public ::testing::TestWithParam<StripeCase> {};

TEST_P(StripedProps, HomesPartitionAndAddressesAreUnique) {
  const auto c = GetParam();
  Machine m(SystemConfig::chick_hw());
  Striped1D<std::int64_t> v(m, c.n, c.block, c.across);
  const int nlets = c.across > 0 ? c.across : m.num_nodelets();

  std::map<int, std::set<std::uint64_t>> addrs_by_home;
  std::map<int, std::size_t> count_by_home;
  for (std::size_t i = 0; i < c.n; ++i) {
    const int h = v.home(i);
    ASSERT_GE(h, 0);
    ASSERT_LT(h, nlets);
    // Addresses within a home nodelet must be unique and 8-byte aligned.
    const auto addr = v.byte_addr(i);
    EXPECT_EQ(addr % 8, 0u);
    EXPECT_TRUE(addrs_by_home[h].insert(addr).second)
        << "address collision at index " << i;
    ++count_by_home[h];
  }

  // elems_on must agree with the explicit count, and sum to n.
  std::size_t total = 0;
  for (int d = 0; d < nlets; ++d) {
    EXPECT_EQ(v.elems_on(d), count_by_home[d]) << "nodelet " << d;
    total += v.elems_on(d);
  }
  EXPECT_EQ(total, c.n);
}

TEST_P(StripedProps, GlobalIndexInvertsLocalEnumeration) {
  const auto c = GetParam();
  Machine m(SystemConfig::chick_hw());
  Striped1D<std::int64_t> v(m, c.n, c.block, c.across);
  const int nlets = c.across > 0 ? c.across : m.num_nodelets();

  std::set<std::size_t> seen;
  for (int d = 0; d < nlets; ++d) {
    for (std::size_t k = 0; k < v.elems_on(d); ++k) {
      const std::size_t i = v.global_index(d, k);
      ASSERT_LT(i, c.n);
      EXPECT_EQ(v.home(i), d);
      EXPECT_TRUE(seen.insert(i).second) << "duplicate global index " << i;
    }
  }
  EXPECT_EQ(seen.size(), c.n);
}

TEST_P(StripedProps, BlocksAreContiguousWithinANodelet) {
  const auto c = GetParam();
  Machine m(SystemConfig::chick_hw());
  Striped1D<std::int64_t> v(m, c.n, c.block, c.across);
  // Within one block, consecutive global indices must be adjacent in the
  // home nodelet's memory (this is what makes intra-block access local and
  // row-buffer friendly).
  for (std::size_t i = 0; i + 1 < c.n; ++i) {
    if ((i / c.block) == ((i + 1) / c.block)) {
      EXPECT_EQ(v.home(i), v.home(i + 1));
      EXPECT_EQ(v.byte_addr(i + 1), v.byte_addr(i) + 8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StripedProps,
    ::testing::Values(StripeCase{1, 1, 0}, StripeCase{7, 1, 0},
                      StripeCase{8, 1, 0}, StripeCase{64, 1, 0},
                      StripeCase{100, 1, 0}, StripeCase{100, 4, 0},
                      StripeCase{96, 8, 0}, StripeCase{1000, 16, 0},
                      StripeCase{100, 1, 1}, StripeCase{100, 8, 1},
                      StripeCase{100, 4, 3}, StripeCase{513, 64, 0},
                      StripeCase{4096, 512, 0}, StripeCase{33, 32, 5}));

TEST(LocalArrayView, FixedHomeAndDenseAddresses) {
  Machine m(SystemConfig::chick_hw());
  LocalArray<double> v(m, 100, 3);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(v.home(i), 3);
    EXPECT_EQ(v.byte_addr(i), v.byte_addr(0) + i * sizeof(double));
  }
}

TEST(ReplicatedView, PerNodeletCopiesHaveDistinctAddresses) {
  Machine m(SystemConfig::chick_hw());
  Replicated<std::int64_t> v(m, 10);
  std::set<std::uint64_t> bases;
  for (int d = 0; d < m.num_nodelets(); ++d) {
    bases.insert(v.byte_addr_on(d, 0));
  }
  // Bases may legitimately coincide numerically across nodelets (separate
  // address spaces), but within a machine built fresh they all start at
  // offset 0 of each arena — what matters is that indexing is dense.
  for (int d = 0; d < m.num_nodelets(); ++d) {
    EXPECT_EQ(v.byte_addr_on(d, 7), v.byte_addr_on(d, 0) + 56);
  }
}

TEST(ChunkedView, SizesAndHomesMatchRequest) {
  Machine m(SystemConfig::chick_hw());
  std::vector<std::size_t> counts = {5, 0, 3, 1, 0, 0, 2, 9};
  Chunked<int> v(m, counts);
  for (int d = 0; d < 8; ++d) {
    EXPECT_EQ(v.chunk_size(d), counts[static_cast<std::size_t>(d)]);
    EXPECT_EQ(v.home(d), d);
  }
  v.at(7, 8) = 77;
  EXPECT_EQ(v.at(7, 8), 77);
}

TEST(Views, ArenasAdvancePerAllocation) {
  Machine m(SystemConfig::chick_hw());
  Striped1D<std::int64_t> a(m, 64);
  Striped1D<std::int64_t> b(m, 64);
  // Two allocations on the same machine must not overlap on any nodelet.
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = 0; j < 64; ++j) {
      if (a.home(i) == b.home(j)) {
        EXPECT_NE(a.byte_addr(i), b.byte_addr(j));
      }
    }
  }
}

}  // namespace
}  // namespace emusim::emu
