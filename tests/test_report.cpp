// Reporting helpers: table layout and CSV escaping/round-tripping.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "report/csv.hpp"
#include "report/table.hpp"

namespace emusim::report {
namespace {

TEST(Table, FormattersProduceFixedPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(1000.0), "1000.0");
  EXPECT_EQ(Table::num(0.5, 3), "0.500");
  EXPECT_EQ(Table::integer(-42), "-42");
  EXPECT_EQ(Table::integer(1LL << 40), "1099511627776");
}

TEST(Table, AccumulatesRows) {
  Table t("demo");
  t.columns({"a", "b"});
  t.row({"1", "2"}).row({"3", "4"});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.header().size(), 2u);
  EXPECT_EQ(t.rows()[1][0], "3");
}

TEST(Table, PrintsAlignedColumns) {
  Table t("title line");
  t.columns({"col", "wide_column"});
  t.row({"x", "1"});
  t.row({"longer", "2"});
  char buf[4096] = {};
  std::FILE* f = fmemopen(buf, sizeof buf, "w");
  ASSERT_NE(f, nullptr);
  t.print(f);
  std::fclose(f);
  const std::string out = buf;
  EXPECT_NE(out.find("title line"), std::string::npos);
  EXPECT_NE(out.find("wide_column"), std::string::npos);
  // Rows start in column 0 and the second column aligns across rows.
  const auto p1 = out.find("x");
  const auto p2 = out.find("longer");
  ASSERT_NE(p1, std::string::npos);
  ASSERT_NE(p2, std::string::npos);
}

TEST(Csv, EscapingRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(csv_escape("multi\nline"), "\"multi\nline\"");
  // Carriage returns (e.g. from Windows-origin input) must be quoted too,
  // or a bare \r splits the record in most readers.
  EXPECT_EQ(csv_escape("carriage\rreturn"), "\"carriage\rreturn\"");
  EXPECT_EQ(csv_escape("crlf\r\nend"), "\"crlf\r\nend\"");
}

TEST(Csv, EmptyPathDisablesSilently) {
  CsvWriter w("", {"a", "b"});
  EXPECT_FALSE(w.enabled());
  EXPECT_TRUE(w.ok());  // disabled on purpose is not an error
  w.row({"1", "2"});    // must be a no-op, not a crash
}

TEST(Csv, UnopenablePathReportsError) {
  // Regression: a nonempty path that fails to open used to silently discard
  // every row, indistinguishable from the deliberate "" no-op mode.
  CsvWriter w("/nonexistent_dir_emusim/out.csv", {"a", "b"});
  EXPECT_FALSE(w.enabled());
  EXPECT_FALSE(w.ok());
  w.row({"1", "2"});  // still a safe no-op
}

TEST(Csv, CarriageReturnFieldRoundTrips) {
  const std::string path = "/tmp/emusim_test_csv_cr.csv";
  {
    CsvWriter w(path, {"x"});
    ASSERT_TRUE(w.ok());
    w.row({"a\rb"});
  }
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "x\n\"a\rb\"\n");
  std::remove(path.c_str());
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/emusim_test_csv.csv";
  {
    CsvWriter w(path, {"x", "y"});
    EXPECT_TRUE(w.enabled());
    w.row({"1", "a,b"});
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "x,y\n1,\"a,b\"\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace emusim::report
