// CSR utilities: Laplacian structure, the serial reference, nnz-balanced
// partitioning, and grain task splitting — parameterized over grid sizes.
#include <gtest/gtest.h>

#include "kernels/spmv_common.hpp"

namespace emusim::kernels {
namespace {

class LaplacianProps : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LaplacianProps, StructureIsAFivePointStencil) {
  const std::size_t n = GetParam();
  const Csr a = make_laplacian_2d(n);
  EXPECT_EQ(a.rows, n * n);
  EXPECT_EQ(a.cols, n * n);
  ASSERT_EQ(a.row_ptr.size(), a.rows + 1);
  EXPECT_EQ(a.row_ptr.front(), 0);
  EXPECT_EQ(static_cast<std::size_t>(a.row_ptr.back()), a.nnz());
  // nnz = 5 per row minus boundary corrections: 5n^2 - 4n.
  EXPECT_EQ(a.nnz(), 5 * n * n - 4 * n);

  for (std::size_t r = 0; r < a.rows; ++r) {
    const auto k0 = static_cast<std::size_t>(a.row_ptr[r]);
    const auto k1 = static_cast<std::size_t>(a.row_ptr[r + 1]);
    ASSERT_GE(k1, k0);
    const std::size_t row_nnz = k1 - k0;
    EXPECT_GE(row_nnz, n >= 2 ? 3u : 1u);  // corner rows (1x1 grid: diag only)
    EXPECT_LE(row_nnz, 5u);                // interior rows
    double diag = 0, offsum = 0;
    for (std::size_t k = k0; k < k1; ++k) {
      ASSERT_LT(static_cast<std::size_t>(a.col_idx[k]), a.cols);
      if (k > k0) {
        EXPECT_LT(a.col_idx[k - 1], a.col_idx[k]) << "columns must be sorted";
      }
      if (static_cast<std::size_t>(a.col_idx[k]) == r) {
        diag = a.vals[k];
      } else {
        offsum += a.vals[k];
      }
    }
    EXPECT_EQ(diag, 4.0);
    EXPECT_LE(offsum, 0.0);
  }
}

TEST_P(LaplacianProps, SymmetricPattern) {
  const std::size_t n = GetParam();
  const Csr a = make_laplacian_2d(n);
  // A(i,j) nonzero implies A(j,i) nonzero with the same value.
  auto value_at = [&](std::size_t r, std::size_t c) -> double {
    for (auto k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      if (static_cast<std::size_t>(a.col_idx[static_cast<std::size_t>(k)]) ==
          c) {
        return a.vals[static_cast<std::size_t>(k)];
      }
    }
    return 0.0;
  };
  for (std::size_t r = 0; r < a.rows; ++r) {
    for (auto k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      const auto c =
          static_cast<std::size_t>(a.col_idx[static_cast<std::size_t>(k)]);
      EXPECT_EQ(value_at(c, r), a.vals[static_cast<std::size_t>(k)]);
    }
  }
}

TEST_P(LaplacianProps, ReferenceMatchesDenseProduct) {
  const std::size_t n = GetParam();
  if (n > 12) GTEST_SKIP() << "dense check only for small grids";
  const Csr a = make_laplacian_2d(n);
  const auto x = make_x(a.cols);
  const auto y = spmv_reference(a, x);

  // Dense recompute.
  std::vector<std::vector<double>> dense(a.rows,
                                         std::vector<double>(a.cols, 0.0));
  for (std::size_t r = 0; r < a.rows; ++r) {
    for (auto k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      dense[r][static_cast<std::size_t>(
          a.col_idx[static_cast<std::size_t>(k)])] =
          a.vals[static_cast<std::size_t>(k)];
    }
  }
  for (std::size_t r = 0; r < a.rows; ++r) {
    double acc = 0;
    for (std::size_t c = 0; c < a.cols; ++c) acc += dense[r][c] * x[c];
    EXPECT_NEAR(y[r], acc, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LaplacianProps,
                         ::testing::Values(1, 2, 3, 5, 8, 12, 25, 40));

class PartitionProps : public ::testing::TestWithParam<int> {};

TEST_P(PartitionProps, CoversAllRowsInOrderAndBalancesNnz) {
  const int parts = GetParam();
  const Csr a = make_laplacian_2d(30);
  const auto b = partition_rows_by_nnz(a, parts);
  ASSERT_EQ(b.size(), static_cast<std::size_t>(parts) + 1);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), a.rows);
  for (std::size_t i = 0; i + 1 < b.size(); ++i) EXPECT_LE(b[i], b[i + 1]);

  // Each part's nnz within 2 rows' worth of the ideal share.
  const double ideal = static_cast<double>(a.nnz()) / parts;
  for (std::size_t i = 0; i + 1 < b.size(); ++i) {
    const auto nnz =
        static_cast<double>(a.row_ptr[b[i + 1]] - a.row_ptr[b[i]]);
    EXPECT_NEAR(nnz, ideal, 12.0) << "part " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Parts, PartitionProps,
                         ::testing::Values(1, 2, 3, 7, 8, 16, 56));

class GrainProps : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GrainProps, TasksCoverRangeAndRespectGrain) {
  const std::size_t grain = GetParam();
  const Csr a = make_laplacian_2d(20);
  const auto b = grain_tasks(a, 0, a.rows, grain);
  EXPECT_EQ(b.front(), 0u);
  EXPECT_EQ(b.back(), a.rows);
  for (std::size_t i = 0; i + 1 < b.size(); ++i) {
    ASSERT_LT(b[i], b[i + 1]);
    const auto nnz = a.row_ptr[b[i + 1]] - a.row_ptr[b[i]];
    // Every task except possibly the last reaches the grain.
    if (i + 2 < b.size()) {
      EXPECT_GE(static_cast<std::size_t>(nnz), grain);
    }
    // And never overshoots by more than one row's nonzeros.
    EXPECT_LE(static_cast<std::size_t>(nnz), grain + 5);
  }
}

INSTANTIATE_TEST_SUITE_P(Grains, GrainProps,
                         ::testing::Values(1, 4, 16, 64, 256, 1024, 100000));

TEST(GrainTasks, SubrangeOnly) {
  const Csr a = make_laplacian_2d(10);
  const auto b = grain_tasks(a, 20, 60, 16);
  EXPECT_EQ(b.front(), 20u);
  EXPECT_EQ(b.back(), 60u);
}

TEST(SpmvBytes, SixteenPerNonzero) {
  const Csr a = make_laplacian_2d(10);
  EXPECT_DOUBLE_EQ(spmv_bytes(a), 16.0 * static_cast<double>(a.nnz()));
}

}  // namespace
}  // namespace emusim::kernels
