// Parameterized DRAM model properties: for every configuration and access
// pattern, completion times must be causal, bandwidth must respect the bus
// peak, counters must balance, and refresh must cost what it costs.
#include <gtest/gtest.h>

#include <vector>

#include "mem/dram.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"

namespace emusim::mem {
namespace {

using sim::Engine;
using sim::Task;

enum class Pattern { sequential, random, strided };

struct DramCase {
  const char* config;
  Pattern pattern;
  std::uint32_t bytes;
};

DramTiming timing_by_name(const char* name) {
  const std::string s = name;
  if (s == "ncdram_chick") return DramTiming::ncdram_chick();
  if (s == "ncdram_fullspeed") return DramTiming::ncdram_fullspeed();
  if (s == "ddr4_1333") return DramTiming::ddr4_1333();
  return DramTiming::ddr3_1600();
}

class DramProps : public ::testing::TestWithParam<DramCase> {};

Task one_read(Engine& eng, DramChannel& ch, std::uint64_t addr,
              std::uint32_t bytes, std::vector<Time>* done) {
  co_await ch.read(addr, bytes);
  done->push_back(eng.now());
}

TEST_P(DramProps, CausalAndBounded) {
  const auto c = GetParam();
  const DramTiming timing = timing_by_name(c.config);
  Engine eng;
  DramChannel ch(eng, timing);
  sim::Rng rng(3);

  constexpr int kN = 1500;
  std::vector<Time> done;
  std::vector<Task> ts;
  std::uint64_t addr = 0;
  for (int i = 0; i < kN; ++i) {
    switch (c.pattern) {
      case Pattern::sequential: addr = static_cast<std::uint64_t>(i) * c.bytes; break;
      case Pattern::random: addr = (rng.below(1u << 28)) & ~7ULL; break;
      case Pattern::strided: addr = static_cast<std::uint64_t>(i) * 4096; break;
    }
    ts.push_back(one_read(eng, ch, addr, c.bytes, &done));
  }
  for (auto& t : ts) t.start();
  const Time elapsed = eng.run();

  // All requests completed, in causal order (all issued at t=0, FIFO).
  ASSERT_EQ(done.size(), static_cast<std::size_t>(kN));
  for (std::size_t i = 1; i < done.size(); ++i) {
    EXPECT_LE(done[i - 1], done[i]);
  }
  // Counter balance.
  EXPECT_EQ(ch.stats().reads, static_cast<std::uint64_t>(kN));
  EXPECT_EQ(ch.stats().row_hits + ch.stats().row_misses,
            static_cast<std::uint64_t>(kN));
  EXPECT_EQ(ch.stats().bytes, static_cast<std::uint64_t>(kN) * c.bytes);
  // Useful bandwidth can never beat the bus peak; bus occupancy can never
  // exceed wall-clock.
  const double bw = static_cast<double>(kN) * c.bytes / to_seconds(elapsed);
  EXPECT_LE(bw, timing.bytes_per_sec() * 1.001);
  EXPECT_LE(ch.bus_busy_time(), elapsed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DramProps,
    ::testing::Values(
        DramCase{"ncdram_chick", Pattern::sequential, 8},
        DramCase{"ncdram_chick", Pattern::random, 8},
        DramCase{"ncdram_chick", Pattern::random, 16},
        DramCase{"ncdram_fullspeed", Pattern::sequential, 8},
        DramCase{"ddr3_1600", Pattern::sequential, 64},
        DramCase{"ddr3_1600", Pattern::random, 64},
        DramCase{"ddr3_1600", Pattern::strided, 64},
        DramCase{"ddr4_1333", Pattern::random, 64},
        DramCase{"ddr4_1333", Pattern::sequential, 64}));

TEST(DramRefresh, StealsAboutTrfcOverTrefi) {
  // Long sequential stream: throughput with refresh enabled is lower by
  // roughly tRFC/tREFI (~4.5%).
  auto run = [](bool refresh) {
    DramTiming t = DramTiming::ddr3_1600();
    if (!refresh) t.t_refi = 0;
    Engine eng;
    DramChannel ch(eng, t);
    std::vector<Time> done;
    std::vector<Task> ts;
    constexpr int kLines = 20000;  // ~100 us of bus time: many windows
    for (int i = 0; i < kLines; ++i) {
      ts.push_back(one_read(eng, ch, static_cast<std::uint64_t>(i) * 64, 64,
                            &done));
    }
    for (auto& t2 : ts) t2.start();
    return eng.run();
  };
  const double with = static_cast<double>(run(true));
  const double without = static_cast<double>(run(false));
  const double overhead = with / without - 1.0;
  EXPECT_GT(overhead, 0.02);
  EXPECT_LT(overhead, 0.08);
}

TEST(DramRefresh, ColdAccessUnaffected) {
  Engine eng;
  DramChannel ch(eng, DramTiming::ddr3_1600());
  // Access at t=0 must not be pushed behind a refresh window.
  const auto t = ch.access(0, 64, false);
  const auto& tm = ch.timing();
  EXPECT_EQ(t, tm.ctrl_latency + tm.t_rp + tm.t_rcd + tm.t_cas +
                   tm.burst_time(64));
}

TEST(DramMinBurst, WideBusMovesAtLeastOneBurst) {
  DramTiming t = DramTiming::ddr3_1600();
  EXPECT_EQ(t.min_burst_bytes(), 64u);
  EXPECT_EQ(t.burst_time(8), t.burst_time(64));
  DramTiming n = DramTiming::ncdram_chick();
  EXPECT_EQ(n.min_burst_bytes(), 8u);
  EXPECT_EQ(n.burst_time(16), 2 * n.burst_time(8));
}

TEST(DramBankHash, SpreadsConsecutiveRows) {
  Engine eng;
  DramChannel ch(eng, DramTiming::ddr3_1600());
  // 64 consecutive rows should occupy most of the 32 banks.
  std::vector<int> used(64, 0);
  std::size_t distinct = 0;
  std::vector<bool> seen(64, false);
  for (std::uint64_t r = 0; r < 64; ++r) {
    const auto b = ch.bank_of(r * 8192);
    if (!seen[b]) {
      seen[b] = true;
      ++distinct;
    }
  }
  EXPECT_GE(distinct, 24u);
  (void)used;
}

}  // namespace
}  // namespace emusim::mem
