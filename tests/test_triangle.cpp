// Triangle counting: the host merge-intersection reference is pitted
// against an independent brute-force O(V^3) oracle on small seeded random
// graphs, and both timed kernels must reproduce it exactly (and agree with
// each other) — so three implementations vouch for one another.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "kernels/tc.hpp"

namespace emusim::kernels {
namespace {

// Independent oracle: test every vertex triple for mutual adjacency.
// Deliberately artless — no shared code with the merge-intersection
// reference it checks.
std::uint64_t brute_force_triangles(const graph::Graph& g) {
  const std::size_t n = g.num_vertices;
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (std::size_t u = 0; u < n; ++u) {
    for (std::int64_t e = g.row_ptr[u]; e < g.row_ptr[u + 1]; ++e) {
      adj[u][g.adj[e]] = true;
    }
  }
  std::uint64_t count = 0;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      if (!adj[a][b]) continue;
      for (std::size_t c = b + 1; c < n; ++c) {
        if (adj[a][c] && adj[b][c]) ++count;
      }
    }
  }
  return count;
}

graph::Graph complete_graph(std::size_t n) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return graph::from_edge_list(n, std::move(edges));
}

TEST(TriangleReference, KnownCounts) {
  // K5 has C(5,3) = 10 triangles; a bipartite-ish grid has none.
  EXPECT_EQ(graph::triangle_count_reference(complete_graph(5)), 10u);
  EXPECT_EQ(graph::triangle_count_reference(graph::make_grid_2d(6)), 0u);
  // A single triangle plus a pendant edge.
  const auto g = graph::from_edge_list(
      4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  EXPECT_EQ(graph::triangle_count_reference(g), 1u);
}

TEST(TriangleReference, MatchesBruteForceOnSeededRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto g = graph::make_uniform_random(64, 6.0, seed);
    EXPECT_EQ(graph::triangle_count_reference(g), brute_force_triangles(g))
        << "seed " << seed;
  }
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto g = graph::make_rmat(5, 6, seed);  // 32 vertices, skewed
    EXPECT_EQ(graph::triangle_count_reference(g), brute_force_triangles(g))
        << "rmat seed " << seed;
  }
}

TEST(TriangleKernels, EmuMatchesOracle) {
  const auto cfg = emu::SystemConfig::chick_hw();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto g = graph::make_uniform_random(64, 6.0, seed);
    TcEmuParams p;
    p.g = &g;
    const TcResult r = run_tc_emu(cfg, p);
    EXPECT_TRUE(r.verified) << "seed " << seed;
    EXPECT_EQ(r.triangles, brute_force_triangles(g)) << "seed " << seed;
    EXPECT_GT(r.elapsed, 0u);
  }
}

TEST(TriangleKernels, XeonMatchesOracle) {
  const auto cfg = xeon::SystemConfig::sandy_bridge();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto g = graph::make_uniform_random(64, 6.0, seed);
    TcXeonParams p;
    p.g = &g;
    const TcResult r = run_tc_xeon(cfg, p);
    EXPECT_TRUE(r.verified) << "seed " << seed;
    EXPECT_EQ(r.triangles, brute_force_triangles(g)) << "seed " << seed;
    EXPECT_GT(r.elapsed, 0u);
  }
}

TEST(TriangleKernels, BackendsAgreeOnSkewedGraph) {
  const auto g = graph::make_rmat(6, 8, 3);
  TcEmuParams pe;
  pe.g = &g;
  TcXeonParams px;
  px.g = &g;
  const TcResult re = run_tc_emu(emu::SystemConfig::chick_hw(), pe);
  const TcResult rx = run_tc_xeon(xeon::SystemConfig::sandy_bridge(), px);
  ASSERT_TRUE(re.verified);
  ASSERT_TRUE(rx.verified);
  EXPECT_EQ(re.triangles, rx.triangles);
  EXPECT_EQ(re.triangles, graph::triangle_count_reference(g));
}

TEST(TriangleKernels, EmuGrainDoesNotChangeTheCount) {
  const auto cfg = emu::SystemConfig::chick_hw();
  const auto g = graph::make_uniform_random(96, 8.0, 11);
  const std::uint64_t want = graph::triangle_count_reference(g);
  for (const std::size_t grain : {1u, 4u, 32u}) {
    TcEmuParams p;
    p.g = &g;
    p.grain = grain;
    const TcResult r = run_tc_emu(cfg, p);
    EXPECT_TRUE(r.verified) << "grain " << grain;
    EXPECT_EQ(r.triangles, want) << "grain " << grain;
  }
}

}  // namespace
}  // namespace emusim::kernels
