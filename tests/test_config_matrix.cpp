// Configuration matrix smoke tests: every named machine configuration must
// construct and run a representative kernel correctly.  Catches config
// regressions (topology arithmetic, clock scaling, resource sizing) across
// the whole configuration space.
#include <gtest/gtest.h>

#include "emu/machine.hpp"
#include "kernels/chase_emu.hpp"
#include "kernels/chase_xeon.hpp"
#include "kernels/stream_emu.hpp"
#include "kernels/stream_xeon.hpp"

namespace emusim {
namespace {

using EmuConfigFn = emu::SystemConfig (*)();

emu::SystemConfig fullspeed8() { return emu::SystemConfig::fullspeed_multinode(8); }
emu::SystemConfig fullspeed2() { return emu::SystemConfig::fullspeed_multinode(2); }

class EmuConfigs : public ::testing::TestWithParam<EmuConfigFn> {};

TEST_P(EmuConfigs, TopologyIsConsistent) {
  const auto cfg = GetParam()();
  emu::Machine m(cfg);
  EXPECT_EQ(m.num_nodelets(), cfg.nodes * cfg.nodelets_per_node);
  EXPECT_GT(m.cycle(), 0);
  for (int d = 0; d < m.num_nodelets(); ++d) {
    EXPECT_EQ(m.nodelet(d).slots().available(), cfg.slots_per_nodelet());
    EXPECT_EQ(m.nodelet(d).num_cores(), cfg.gcs_per_nodelet);
  }
  EXPECT_EQ(m.node_index_of(m.num_nodelets() - 1), cfg.nodes - 1);
}

TEST_P(EmuConfigs, StreamRunsAndVerifies) {
  const auto cfg = GetParam()();
  kernels::StreamParams p;
  p.n = 1 << 13;
  p.threads = 64;
  p.strategy = kernels::SpawnStrategy::recursive_remote_spawn;
  const auto r = kernels::run_stream_add(cfg, p);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.mb_per_sec, 0.0);
}

TEST_P(EmuConfigs, ChaseRunsAndVerifies) {
  const auto cfg = GetParam()();
  kernels::ChaseEmuParams p;
  p.n = 1 << 12;
  p.block = 8;
  p.threads = 32;
  const auto r = kernels::run_chase_emu(cfg, p);
  EXPECT_TRUE(r.verified);
}

INSTANTIATE_TEST_SUITE_P(
    All, EmuConfigs,
    ::testing::Values(&emu::SystemConfig::chick_hw,
                      &emu::SystemConfig::chick_as_simulated,
                      &emu::SystemConfig::chick_fullspeed, &fullspeed2,
                      &fullspeed8));

TEST(EmuConfigs2, FasterDesignPointsAreActuallyFaster) {
  kernels::StreamParams p;
  p.n = 1 << 14;
  p.threads = 256;
  p.strategy = kernels::SpawnStrategy::recursive_remote_spawn;
  const auto hw = kernels::run_stream_add(emu::SystemConfig::chick_hw(), p);
  const auto full =
      kernels::run_stream_add(emu::SystemConfig::chick_fullspeed(), p);
  // 2x clock and 4 GCs: comfortably more than 2x STREAM.
  EXPECT_GT(full.mb_per_sec, 2.0 * hw.mb_per_sec);
}

using XeonConfigFn = xeon::SystemConfig (*)();

class XeonConfigs : public ::testing::TestWithParam<XeonConfigFn> {};

TEST_P(XeonConfigs, StreamAndChaseRun) {
  const auto cfg = GetParam()();
  kernels::StreamXeonParams sp;
  sp.n = 1 << 15;
  sp.threads = cfg.cores / 2;
  const auto sr = kernels::run_stream_xeon(cfg, sp);
  EXPECT_TRUE(sr.verified);
  EXPECT_LT(sr.mb_per_sec, cfg.peak_bytes_per_sec() / 1e6 * 1.01);

  kernels::ChaseXeonParams cp;
  cp.n = 1 << 13;
  cp.block = 16;
  cp.threads = 8;
  const auto cr = kernels::run_chase_xeon(cfg, cp);
  EXPECT_TRUE(cr.verified);
}

INSTANTIATE_TEST_SUITE_P(All, XeonConfigs,
                         ::testing::Values(&xeon::SystemConfig::sandy_bridge,
                                           &xeon::SystemConfig::haswell));

TEST(XeonConfigs2, PeakBandwidthsMatchPaperSpecs) {
  EXPECT_NEAR(xeon::SystemConfig::sandy_bridge().peak_bytes_per_sec(),
              51.2e9, 0.1e9);  // paper: 51.2 GB/s
  // Haswell: 16 channels of DDR4-1333.
  EXPECT_NEAR(xeon::SystemConfig::haswell().peak_bytes_per_sec(),
              16 * 1333e6 * 8, 1e9);
}

}  // namespace
}  // namespace emusim
