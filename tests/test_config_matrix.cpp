// Configuration matrix smoke tests: every named machine configuration must
// construct and run a representative kernel correctly.  Catches config
// regressions (topology arithmetic, clock scaling, resource sizing) across
// the whole configuration space.
#include <gtest/gtest.h>

#include "emu/machine.hpp"
#include "kernels/chase_emu.hpp"
#include "kernels/chase_xeon.hpp"
#include "kernels/stream_emu.hpp"
#include "kernels/stream_xeon.hpp"

namespace emusim {
namespace {

using EmuConfigFn = emu::SystemConfig (*)();

emu::SystemConfig fullspeed8() { return emu::SystemConfig::fullspeed_multinode(8); }
emu::SystemConfig fullspeed2() { return emu::SystemConfig::fullspeed_multinode(2); }

class EmuConfigs : public ::testing::TestWithParam<EmuConfigFn> {};

TEST_P(EmuConfigs, TopologyIsConsistent) {
  const auto cfg = GetParam()();
  emu::Machine m(cfg);
  EXPECT_EQ(m.num_nodelets(), cfg.nodes * cfg.nodelets_per_node);
  EXPECT_GT(m.cycle(), 0);
  for (int d = 0; d < m.num_nodelets(); ++d) {
    EXPECT_EQ(m.nodelet(d).slots().available(), cfg.slots_per_nodelet());
    EXPECT_EQ(m.nodelet(d).num_cores(), cfg.gcs_per_nodelet);
  }
  EXPECT_EQ(m.node_index_of(m.num_nodelets() - 1), cfg.nodes - 1);
}

TEST_P(EmuConfigs, StreamRunsAndVerifies) {
  const auto cfg = GetParam()();
  kernels::StreamParams p;
  p.n = 1 << 13;
  p.threads = 64;
  p.strategy = kernels::SpawnStrategy::recursive_remote_spawn;
  const auto r = kernels::run_stream_add(cfg, p);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.mb_per_sec, 0.0);
}

TEST_P(EmuConfigs, ChaseRunsAndVerifies) {
  const auto cfg = GetParam()();
  kernels::ChaseEmuParams p;
  p.n = 1 << 12;
  p.block = 8;
  p.threads = 32;
  const auto r = kernels::run_chase_emu(cfg, p);
  EXPECT_TRUE(r.verified);
}

INSTANTIATE_TEST_SUITE_P(
    All, EmuConfigs,
    ::testing::Values(&emu::SystemConfig::chick_hw,
                      &emu::SystemConfig::chick_as_simulated,
                      &emu::SystemConfig::chick_fullspeed, &fullspeed2,
                      &fullspeed8));

TEST(EmuConfigs2, FasterDesignPointsAreActuallyFaster) {
  kernels::StreamParams p;
  p.n = 1 << 14;
  p.threads = 256;
  p.strategy = kernels::SpawnStrategy::recursive_remote_spawn;
  const auto hw = kernels::run_stream_add(emu::SystemConfig::chick_hw(), p);
  const auto full =
      kernels::run_stream_add(emu::SystemConfig::chick_fullspeed(), p);
  // 2x clock and 4 GCs: comfortably more than 2x STREAM.
  EXPECT_GT(full.mb_per_sec, 2.0 * hw.mb_per_sec);
}

// --- config validation and the scaling family ------------------------------

TEST(ConfigValidation, NamedConfigsAllValidate) {
  emu::SystemConfig::chick_hw().validate();
  emu::SystemConfig::chick_as_simulated().validate();
  emu::SystemConfig::chick_fullspeed().validate();
  emu::SystemConfig::fullspeed_multinode(1).validate();
  emu::SystemConfig::fullspeed_multinode(128).validate();
  emu::SystemConfig::chick_fullspeed_nx(8).validate();
  emu::SystemConfig::chick_fullspeed_nx(1024).validate();
}

TEST(ConfigValidationDeathTest, RejectsNonPositiveNodeCounts) {
  // fullspeed_multinode(0) used to silently build a machine with zero
  // nodelets (and the first Striped1D then divided by zero).
  EXPECT_DEATH(emu::SystemConfig::fullspeed_multinode(0), "nodes >= 1");
  EXPECT_DEATH(emu::SystemConfig::fullspeed_multinode(-4), "nodes >= 1");
}

TEST(ConfigValidationDeathTest, RejectsOverflowingTopology) {
  emu::SystemConfig c = emu::SystemConfig::chick_fullspeed();
  // nodes * nodelets_per_node would overflow int without the division-form
  // guard; validate() must refuse long before total_nodelets() wraps.
  c.nodes = (1 << 20);  // 2^20 nodes * 8 nodelets/node > kMaxTotalNodelets
  EXPECT_DEATH(c.validate(), "total_nodelets");
  c = emu::SystemConfig::chick_fullspeed();
  c.gcs_per_nodelet = 1 << 16;
  c.threadlet_slots_per_gc = 1 << 16;
  EXPECT_DEATH(c.validate(), "slots_per_nodelet");
}

TEST(ConfigValidationDeathTest, RejectsNonPhysicalParameters) {
  emu::SystemConfig c = emu::SystemConfig::chick_hw();
  c.gc_clock_hz = 0.0;
  EXPECT_DEATH(c.validate(), "EMUSIM_CHECK");
  c = emu::SystemConfig::chick_hw();
  c.migrations_per_sec = -1.0;
  EXPECT_DEATH(c.validate(), "EMUSIM_CHECK");
  // Multi-node configs need a positive inter-node latency: the windowed
  // parallel engine's lookahead is exactly that latency, so zero would
  // deadlock window scheduling.
  c = emu::SystemConfig::fullspeed_multinode(2);
  c.internode_latency = 0;
  EXPECT_DEATH(c.validate(), "internode latency");
}

TEST(ConfigValidationDeathTest, ScalingFamilyWantsMultiplesOfEight) {
  EXPECT_DEATH(emu::SystemConfig::chick_fullspeed_nx(0), "multiple of 8");
  EXPECT_DEATH(emu::SystemConfig::chick_fullspeed_nx(-8), "multiple of 8");
  EXPECT_DEATH(emu::SystemConfig::chick_fullspeed_nx(12), "multiple of 8");
}

TEST(ScalingFamily, AddressesTheFullspeedTopologyByNodeletCount) {
  for (int nlets : {8, 64, 256, 1024}) {
    const auto cfg = emu::SystemConfig::chick_fullspeed_nx(nlets);
    EXPECT_EQ(cfg.total_nodelets(), nlets);
    EXPECT_EQ(cfg.nodes, nlets / 8);
    EXPECT_EQ(cfg.name, "chick_fullspeed_" + std::to_string(nlets) + "x");
    // Per-nodelet resources match the single-node fullspeed design point:
    // scaling changes the node count, never the node card.
    const auto one = emu::SystemConfig::chick_fullspeed();
    EXPECT_EQ(cfg.nodelets_per_node, one.nodelets_per_node);
    EXPECT_EQ(cfg.gcs_per_nodelet, one.gcs_per_nodelet);
    EXPECT_EQ(cfg.slots_per_nodelet(), one.slots_per_nodelet());
    EXPECT_EQ(cfg.gc_clock_hz, one.gc_clock_hz);
    if (cfg.nodes > 1) EXPECT_GT(cfg.internode_latency, 0);
  }
}

using XeonConfigFn = xeon::SystemConfig (*)();

class XeonConfigs : public ::testing::TestWithParam<XeonConfigFn> {};

TEST_P(XeonConfigs, StreamAndChaseRun) {
  const auto cfg = GetParam()();
  kernels::StreamXeonParams sp;
  sp.n = 1 << 15;
  sp.threads = cfg.cores / 2;
  const auto sr = kernels::run_stream_xeon(cfg, sp);
  EXPECT_TRUE(sr.verified);
  EXPECT_LT(sr.mb_per_sec, cfg.peak_bytes_per_sec() / 1e6 * 1.01);

  kernels::ChaseXeonParams cp;
  cp.n = 1 << 13;
  cp.block = 16;
  cp.threads = 8;
  const auto cr = kernels::run_chase_xeon(cfg, cp);
  EXPECT_TRUE(cr.verified);
}

INSTANTIATE_TEST_SUITE_P(All, XeonConfigs,
                         ::testing::Values(&xeon::SystemConfig::sandy_bridge,
                                           &xeon::SystemConfig::haswell));

TEST(XeonConfigs2, PeakBandwidthsMatchPaperSpecs) {
  EXPECT_NEAR(xeon::SystemConfig::sandy_bridge().peak_bytes_per_sec(),
              51.2e9, 0.1e9);  // paper: 51.2 GB/s
  // Haswell: 16 channels of DDR4-1333.
  EXPECT_NEAR(xeon::SystemConfig::haswell().peak_bytes_per_sec(),
              16 * 1333e6 * 8, 1e9);
}

}  // namespace
}  // namespace emusim
