// Property tests for the pointer-chase list builder: every chain must visit
// each of its elements exactly once, chains must partition the list, and
// each shuffle mode must respect its structural guarantees.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "kernels/chase_common.hpp"

namespace emusim::kernels {
namespace {

struct ListCase {
  std::size_t n;
  std::size_t block;
  int threads;
  ShuffleMode mode;
};

void PrintTo(const ListCase& c, std::ostream* os) {
  *os << "n=" << c.n << " block=" << c.block << " threads=" << c.threads
      << " mode=" << to_string(c.mode);
}

class ChaseListProps : public ::testing::TestWithParam<ListCase> {};

TEST_P(ChaseListProps, ChainsPartitionAllElements) {
  const auto c = GetParam();
  const auto l = build_chase_list(c.n, c.block, c.threads, c.mode);
  std::set<std::uint64_t> seen;
  for (int t = 0; t < c.threads; ++t) {
    std::vector<std::uint64_t> order;
    std::uint64_t idx = l.head[static_cast<std::size_t>(t)];
    std::size_t steps = 0;
    while (idx != kChaseEnd) {
      ASSERT_LT(steps++, c.n + 1) << "cycle detected in chain " << t;
      EXPECT_TRUE(seen.insert(idx).second) << "index visited twice: " << idx;
      idx = l.next[idx];
    }
  }
  EXPECT_EQ(seen.size(), c.n);
}

TEST_P(ChaseListProps, ExpectedSumsMatchTraversal) {
  const auto c = GetParam();
  const auto l = build_chase_list(c.n, c.block, c.threads, c.mode);
  for (int t = 0; t < c.threads; ++t) {
    std::int64_t sum = 0;
    std::uint64_t idx = l.head[static_cast<std::size_t>(t)];
    while (idx != kChaseEnd) {
      sum += l.payload[idx];
      idx = l.next[idx];
    }
    EXPECT_EQ(sum, l.expected_sum[static_cast<std::size_t>(t)]);
  }
}

TEST_P(ChaseListProps, BlocksAreFullyVisitedBeforeLeaving) {
  // The benchmark's defining property (paper Fig 2): all elements of a
  // block are accessed before the chain jumps to another block.
  const auto c = GetParam();
  const auto l = build_chase_list(c.n, c.block, c.threads, c.mode);
  for (int t = 0; t < c.threads; ++t) {
    std::set<std::uint64_t> finished_blocks;
    std::uint64_t cur_block = ~0ULL;
    std::size_t in_block = 0;
    std::uint64_t idx = l.head[static_cast<std::size_t>(t)];
    while (idx != kChaseEnd) {
      const std::uint64_t b = idx / c.block;
      if (b != cur_block) {
        if (cur_block != ~0ULL) {
          EXPECT_EQ(in_block, c.block) << "left block " << cur_block
                                       << " before finishing it";
          EXPECT_TRUE(finished_blocks.insert(cur_block).second);
        }
        cur_block = b;
        in_block = 0;
      }
      ++in_block;
      idx = l.next[idx];
    }
    if (cur_block != ~0ULL) {
      EXPECT_EQ(in_block, c.block);
    }
  }
}

TEST_P(ChaseListProps, DeterministicForSeed) {
  const auto c = GetParam();
  const auto a = build_chase_list(c.n, c.block, c.threads, c.mode, 5);
  const auto b = build_chase_list(c.n, c.block, c.threads, c.mode, 5);
  EXPECT_EQ(a.next, b.next);
  EXPECT_EQ(a.head, b.head);
  const auto d = build_chase_list(c.n, c.block, c.threads, c.mode, 6);
  if (c.mode != ShuffleMode::none && c.n / c.block > 2) {
    EXPECT_NE(a.next, d.next) << "different seeds should differ";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ChaseListProps,
    ::testing::Values(
        ListCase{64, 1, 1, ShuffleMode::full_block_shuffle},
        ListCase{64, 8, 2, ShuffleMode::full_block_shuffle},
        ListCase{256, 4, 4, ShuffleMode::block_shuffle},
        ListCase{256, 16, 4, ShuffleMode::intra_block_shuffle},
        ListCase{1024, 32, 8, ShuffleMode::full_block_shuffle},
        ListCase{1024, 1, 16, ShuffleMode::block_shuffle},
        ListCase{512, 512, 1, ShuffleMode::intra_block_shuffle},
        ListCase{960, 8, 5, ShuffleMode::full_block_shuffle},
        ListCase{128, 2, 2, ShuffleMode::none},
        ListCase{1024, 64, 3, ShuffleMode::full_block_shuffle}));

TEST(ChaseList, NoneModeIsFullySequential) {
  const auto l = build_chase_list(64, 8, 1, ShuffleMode::none);
  std::uint64_t idx = l.head[0];
  for (std::uint64_t expect = 0; expect < 64; ++expect) {
    ASSERT_EQ(idx, expect);
    idx = l.next[idx];
  }
  EXPECT_EQ(idx, kChaseEnd);
}

TEST(ChaseList, BlockShuffleKeepsIntraOrderSequential) {
  const auto l = build_chase_list(256, 8, 1, ShuffleMode::block_shuffle);
  std::uint64_t idx = l.head[0];
  while (idx != kChaseEnd) {
    const std::uint64_t next = l.next[idx];
    if (next != kChaseEnd && next / 8 == idx / 8) {
      EXPECT_EQ(next, idx + 1) << "intra-block order must stay sequential";
    }
    idx = next;
  }
}

TEST(ChaseList, FullShuffleActuallyShufflesWithinBlocks) {
  const auto l = build_chase_list(512, 64, 1, ShuffleMode::full_block_shuffle);
  std::uint64_t idx = l.head[0];
  int sequential_steps = 0, total_steps = 0;
  while (idx != kChaseEnd) {
    const std::uint64_t next = l.next[idx];
    if (next != kChaseEnd) {
      ++total_steps;
      if (next == idx + 1) ++sequential_steps;
    }
    idx = next;
  }
  // A shuffled 64-element block has far fewer than half sequential hops.
  EXPECT_LT(sequential_steps * 2, total_steps);
}

TEST(ChaseList, UnevenThreadSplitStillCoversEverything) {
  // 100 blocks over 7 threads: ranges differ by one block.
  const auto l = build_chase_list(800, 8, 7, ShuffleMode::full_block_shuffle);
  std::size_t visited = 0;
  for (int t = 0; t < 7; ++t) {
    std::uint64_t idx = l.head[static_cast<std::size_t>(t)];
    while (idx != kChaseEnd) {
      ++visited;
      idx = l.next[idx];
    }
  }
  EXPECT_EQ(visited, 800u);
}

}  // namespace
}  // namespace emusim::kernels
