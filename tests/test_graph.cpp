// Graph substrate: generator structure, validation, BFS reference.
#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace emusim::graph {
namespace {

TEST(GridGraph, StructureAndDegrees) {
  const Graph g = make_grid_2d(4);
  EXPECT_EQ(g.num_vertices, 16u);
  // 2*n*(n-1) undirected edges -> 2x directed.
  EXPECT_EQ(g.num_directed_edges(), 2u * 2 * 4 * 3);
  EXPECT_TRUE(validate(g));
  // Corner degree 2, edge degree 3, interior degree 4.
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_EQ(g.degree(5), 4u);
}

TEST(GridGraph, BfsDistancesAreManhattan) {
  const std::size_t n = 6;
  const Graph g = make_grid_2d(n);
  const auto dist = bfs_reference(g, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(dist[i * n + j], static_cast<std::uint32_t>(i + j));
    }
  }
}

class RandomGraphs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphs, UniformValidatesAndIsDeterministic) {
  const Graph a = make_uniform_random(500, 8.0, GetParam());
  const Graph b = make_uniform_random(500, 8.0, GetParam());
  EXPECT_TRUE(validate(a));
  EXPECT_EQ(a.adj, b.adj);
  EXPECT_EQ(a.row_ptr, b.row_ptr);
  // Expected degree within a loose band (dedup removes a few).
  const double avg =
      static_cast<double>(a.num_directed_edges()) / a.num_vertices;
  EXPECT_GT(avg, 5.0);
  EXPECT_LT(avg, 9.0);
}

TEST_P(RandomGraphs, RmatValidatesAndIsSkewed) {
  const Graph g = make_rmat(9, 8, GetParam());
  EXPECT_TRUE(validate(g));
  EXPECT_EQ(g.num_vertices, 512u);
  std::size_t max_deg = 0;
  for (std::size_t v = 0; v < g.num_vertices; ++v) {
    max_deg = std::max(max_deg, g.degree(v));
  }
  const double avg =
      static_cast<double>(g.num_directed_edges()) / g.num_vertices;
  // Scale-free: the hub's degree dwarfs the average.
  EXPECT_GT(static_cast<double>(max_deg), 4.0 * avg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphs, ::testing::Values(1, 7, 99));

TEST(BfsReference, DisconnectedVerticesUnreached) {
  // Two vertices, no edges.
  Graph g;
  g.num_vertices = 2;
  g.row_ptr = {0, 0, 0};
  const auto dist = bfs_reference(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], kBfsUnreached);
}

}  // namespace
}  // namespace emusim::graph
