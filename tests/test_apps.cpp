// The application kernels built on the substrates: BFS and MTTKRP on the
// Emu model, MTTKRP on the Xeon model.
#include <gtest/gtest.h>

#include "kernels/bfs_emu.hpp"
#include "kernels/bfs_xeon.hpp"
#include "kernels/mttkrp.hpp"

namespace emusim::kernels {
namespace {

TEST(BfsEmu, GridDistancesVerify) {
  const auto g = graph::make_grid_2d(16);
  BfsEmuParams p;
  p.g = &g;
  p.source = 0;
  const auto r = run_bfs_emu(emu::SystemConfig::chick_hw(), p);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.levels, 31);  // frontiers at depths 0..30 (diameter 2*(16-1))
  EXPECT_GT(r.mteps, 0.0);
}

TEST(BfsEmu, RmatVerifiesDespiteSkew) {
  const auto g = graph::make_rmat(9, 8, 3);
  BfsEmuParams p;
  p.g = &g;
  // Source must be reachable-rich: pick the max-degree vertex.
  std::size_t best = 0;
  for (std::size_t v = 0; v < g.num_vertices; ++v) {
    if (g.degree(v) > g.degree(best)) best = v;
  }
  p.source = best;
  const auto r = run_bfs_emu(emu::SystemConfig::chick_hw(), p);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.migrations, 0u);
}

TEST(BfsEmu, UniformRandomVerifies) {
  const auto g = graph::make_uniform_random(2000, 8.0, 11);
  BfsEmuParams p;
  p.g = &g;
  p.source = 0;
  const auto r = run_bfs_emu(emu::SystemConfig::chick_hw(), p);
  EXPECT_TRUE(r.verified);
}

TEST(BfsEmu, DeterministicAcrossRuns) {
  const auto g = graph::make_uniform_random(500, 6.0, 2);
  BfsEmuParams p;
  p.g = &g;
  p.source = 0;
  const auto a = run_bfs_emu(emu::SystemConfig::chick_hw(), p);
  const auto b = run_bfs_emu(emu::SystemConfig::chick_hw(), p);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.migrations, b.migrations);
}

TEST(BfsXeon, GridAndRandomVerify) {
  for (int variant = 0; variant < 2; ++variant) {
    const auto g = variant == 0 ? graph::make_grid_2d(12)
                                : graph::make_uniform_random(1500, 8.0, 4);
    BfsXeonParams p;
    p.g = &g;
    p.source = 0;
    p.threads = 8;
    const auto r = run_bfs_xeon(xeon::SystemConfig::sandy_bridge(), p);
    EXPECT_TRUE(r.verified) << "variant " << variant;
    EXPECT_GT(r.mteps, 0.0);
  }
}

TEST(BfsXeon, MoreThreadsHelpOnWideGraphs) {
  const auto g = graph::make_uniform_random(8000, 16.0, 6);
  BfsXeonParams p;
  p.g = &g;
  p.source = 0;
  p.threads = 1;
  const auto t1 = run_bfs_xeon(xeon::SystemConfig::sandy_bridge(), p);
  p.threads = 16;
  const auto t16 = run_bfs_xeon(xeon::SystemConfig::sandy_bridge(), p);
  EXPECT_TRUE(t1.verified);
  EXPECT_TRUE(t16.verified);
  EXPECT_GT(t16.mteps, 3.0 * t1.mteps);
}

TEST(MttkrpEmu, TwoDVerifiesWithoutMigrations) {
  const auto x = tensor::make_random_tensor(64, 48, 48, 2000, 7);
  MttkrpEmuParams p;
  p.x = &x;
  p.rank = 8;
  p.layout = MttkrpLayout::two_d;
  const auto r = run_mttkrp_emu(emu::SystemConfig::chick_hw(), p);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.migrations, 0u);
}

TEST(MttkrpEmu, OneDVerifiesAndMigratesHeavily) {
  const auto x = tensor::make_random_tensor(64, 48, 48, 1000, 7);
  MttkrpEmuParams p;
  p.x = &x;
  p.rank = 8;
  p.layout = MttkrpLayout::one_d;
  const auto r = run_mttkrp_emu(emu::SystemConfig::chick_hw(), p);
  EXPECT_TRUE(r.verified);
  // Several word hops per nonzero (value + three striped coordinates).
  EXPECT_GT(r.migrations, x.nnz());
}

TEST(MttkrpEmu, TwoDBeatsOneD) {
  const auto x = tensor::make_random_tensor(64, 48, 48, 4000, 9);
  MttkrpEmuParams p;
  p.x = &x;
  p.rank = 8;
  p.layout = MttkrpLayout::two_d;
  const auto two = run_mttkrp_emu(emu::SystemConfig::chick_hw(), p);
  p.layout = MttkrpLayout::one_d;
  const auto one = run_mttkrp_emu(emu::SystemConfig::chick_hw(), p);
  EXPECT_GT(two.mflops, 1.5 * one.mflops);
}

class MttkrpRanks : public ::testing::TestWithParam<int> {};

TEST_P(MttkrpRanks, XeonVerifiesAcrossRanks) {
  const auto x = tensor::make_random_tensor(100, 80, 80, 3000, 13);
  MttkrpXeonParams p;
  p.x = &x;
  p.rank = GetParam();
  p.threads = 14;
  p.grain = 256;
  const auto r = run_mttkrp_xeon(xeon::SystemConfig::haswell(), p);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.mflops, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Ranks, MttkrpRanks, ::testing::Values(1, 4, 8, 16));

TEST(MttkrpXeon, ScalesWithThreads) {
  const auto x = tensor::make_random_tensor(400, 200, 200, 40000, 17);
  MttkrpXeonParams p;
  p.x = &x;
  p.rank = 8;
  p.grain = 512;
  p.threads = 1;
  const auto t1 = run_mttkrp_xeon(xeon::SystemConfig::haswell(), p);
  p.threads = 16;
  const auto t16 = run_mttkrp_xeon(xeon::SystemConfig::haswell(), p);
  EXPECT_GT(t16.mflops, 4.0 * t1.mflops);
}

}  // namespace
}  // namespace emusim::kernels
