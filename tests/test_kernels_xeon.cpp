// Behavioural tests of the Xeon-side kernels.
#include <gtest/gtest.h>

#include "kernels/gups.hpp"
#include "kernels/spmv_xeon.hpp"
#include "kernels/stream_xeon.hpp"

namespace emusim::kernels {
namespace {

xeon::SystemConfig snb() { return xeon::SystemConfig::sandy_bridge(); }
xeon::SystemConfig hsw() { return xeon::SystemConfig::haswell(); }

class SpmvImpls : public ::testing::TestWithParam<SpmvXeonImpl> {};

TEST_P(SpmvImpls, ComputesCorrectProduct) {
  SpmvXeonParams p;
  p.laplacian_n = 40;
  p.impl = GetParam();
  p.threads = 8;
  const auto r = run_spmv_xeon(hsw(), p);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.mb_per_sec, 0.0);
}

INSTANTIATE_TEST_SUITE_P(All, SpmvImpls,
                         ::testing::Values(SpmvXeonImpl::mkl,
                                           SpmvXeonImpl::cilk_for,
                                           SpmvXeonImpl::cilk_spawn));

TEST(SpmvXeon, ScalesWithMatrixSize) {
  // Fig 9b: MKL-like and cilk_for improve with n (overheads amortize).
  for (auto impl : {SpmvXeonImpl::mkl, SpmvXeonImpl::cilk_for}) {
    SpmvXeonParams p;
    p.impl = impl;
    p.threads = 56;
    p.laplacian_n = 25;
    const auto small = run_spmv_xeon(hsw(), p);
    p.laplacian_n = 200;
    const auto large = run_spmv_xeon(hsw(), p);
    EXPECT_GT(large.mb_per_sec, 1.5 * small.mb_per_sec) << to_string(impl);
  }
}

TEST(SpmvXeon, CilkSpawnNeedsEnoughWorkForItsGrain) {
  // With grain 16384, a tiny matrix yields a single task (serial), a large
  // one enough tasks to engage the machine.
  SpmvXeonParams p;
  p.impl = SpmvXeonImpl::cilk_spawn;
  p.threads = 56;
  p.grain = 16384;
  p.laplacian_n = 25;  // 2.6k nnz -> one task
  const auto tiny = run_spmv_xeon(hsw(), p);
  p.laplacian_n = 400;  // 800k nnz -> ~49 tasks
  const auto big = run_spmv_xeon(hsw(), p);
  EXPECT_GT(big.mb_per_sec, 5.0 * tiny.mb_per_sec);
}

TEST(SpmvXeon, LargeGrainBeatsTinyGrainOnLargeMatrices) {
  // The paper's §IV-C finding, CPU side.
  SpmvXeonParams p;
  p.impl = SpmvXeonImpl::cilk_spawn;
  p.threads = 56;
  p.laplacian_n = 400;
  p.grain = 16;
  const auto fine = run_spmv_xeon(hsw(), p);
  p.grain = 16384;
  const auto coarse = run_spmv_xeon(hsw(), p);
  EXPECT_GT(coarse.mb_per_sec, 1.5 * fine.mb_per_sec);
}

TEST(StreamXeon, SingleThreadIsComputeBoundNotBusBound) {
  StreamXeonParams p;
  p.n = 1 << 18;
  p.threads = 1;
  const auto r = run_stream_xeon(snb(), p);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.mb_per_sec, 1000.0);
  EXPECT_LT(r.mb_per_sec, 12000.0);
}

TEST(GupsXeon, ComputesCorrectTable) {
  GupsParams p;
  p.table_words = 1 << 12;
  p.updates = 1 << 12;
  p.threads = 8;
  const auto r = run_gups_xeon(snb(), p);
  EXPECT_TRUE(r.verified);
}

TEST(GupsXeon, DramResidentTableIsSlowerThanCached) {
  GupsParams p;
  p.updates = 1 << 13;
  p.threads = 8;
  p.table_words = 1 << 12;  // 32 KiB: cache resident
  const auto cached = run_gups_xeon(snb(), p);
  p.table_words = 1 << 22;  // 32 MiB: DRAM resident
  const auto dram = run_gups_xeon(snb(), p);
  EXPECT_GT(cached.giga_updates_per_sec, 1.5 * dram.giga_updates_per_sec);
}

}  // namespace
}  // namespace emusim::kernels
