// Behavioural tests of the Emu-side kernels: functional verification plus
// the migration/spawn accounting each workload must exhibit.
#include <gtest/gtest.h>

#include "kernels/chase_emu.hpp"
#include "kernels/gups.hpp"
#include "kernels/pingpong.hpp"
#include "kernels/spmv_emu.hpp"
#include "kernels/stream_emu.hpp"

namespace emusim::kernels {
namespace {

emu::SystemConfig hw() { return emu::SystemConfig::chick_hw(); }

// --- STREAM ---------------------------------------------------------------

class StreamStrategies : public ::testing::TestWithParam<SpawnStrategy> {};

TEST_P(StreamStrategies, ComputesCorrectSums) {
  StreamParams p;
  p.n = 1 << 12;
  p.threads = 32;
  p.strategy = GetParam();
  const auto r = run_stream_add(hw(), p);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.mb_per_sec, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    All, StreamStrategies,
    ::testing::Values(SpawnStrategy::serial_spawn,
                      SpawnStrategy::recursive_spawn,
                      SpawnStrategy::serial_remote_spawn,
                      SpawnStrategy::recursive_remote_spawn));

TEST(StreamEmu, RemoteSpawnWorkersDoNotMigrateSteadyState) {
  StreamParams p;
  p.n = 1 << 14;
  p.threads = 64;
  p.strategy = SpawnStrategy::serial_remote_spawn;
  const auto r = run_stream_add(hw(), p);
  EXPECT_TRUE(r.verified);
  // Remote-spawned workers are born on their data's nodelet.
  EXPECT_EQ(r.migrations, 0u);
}

TEST(StreamEmu, LocalSpawnWorkersMigratePerElement) {
  StreamParams p;
  p.n = 1 << 14;
  p.threads = 64;
  p.strategy = SpawnStrategy::serial_spawn;
  const auto r = run_stream_add(hw(), p);
  EXPECT_TRUE(r.verified);
  // Contiguous global ranges over word-striped arrays: nearly every element
  // is a hop to the next nodelet.
  EXPECT_GT(r.migrations, static_cast<std::uint64_t>(p.n) * 9 / 10);
}

TEST(StreamEmu, RemoteBeatsLocalOnEightNodelets) {
  StreamParams p;
  p.n = 1 << 16;
  p.threads = 256;
  p.strategy = SpawnStrategy::serial_spawn;
  const auto local = run_stream_add(hw(), p);
  p.strategy = SpawnStrategy::serial_remote_spawn;
  const auto remote = run_stream_add(hw(), p);
  EXPECT_GT(remote.mb_per_sec, 2.0 * local.mb_per_sec);
}

TEST(StreamEmu, SingleNodeletSaturatesAroundPlateau) {
  // Fig 4 shape: 64 threads on one nodelet land near the ~145 MB/s plateau,
  // and 4 threads are far below it.
  StreamParams p;
  p.n = 1 << 15;
  p.across = 1;
  p.threads = 4;
  const auto few = run_stream_add(hw(), p);
  p.threads = 64;
  const auto many = run_stream_add(hw(), p);
  EXPECT_GT(many.mb_per_sec, 2.0 * few.mb_per_sec);
  EXPECT_GT(many.mb_per_sec, 120.0);
  EXPECT_LT(many.mb_per_sec, 170.0);
}

TEST(StreamEmu, EightNodeletsApproachNodePeak) {
  StreamParams p;
  p.n = 1 << 18;
  p.threads = 512;
  p.strategy = SpawnStrategy::recursive_remote_spawn;
  const auto r = run_stream_add(hw(), p);
  // Paper: ~1.2 GB/s on one node card.
  EXPECT_GT(r.mb_per_sec, 950.0);
  EXPECT_LT(r.mb_per_sec, 1300.0);
}

// --- pointer chase ----------------------------------------------------------

TEST(ChaseEmu, VerifiesAcrossModes) {
  for (auto mode : {ShuffleMode::intra_block_shuffle, ShuffleMode::block_shuffle,
                    ShuffleMode::full_block_shuffle}) {
    ChaseEmuParams p;
    p.n = 1 << 13;
    p.block = 16;
    p.threads = 32;
    p.mode = mode;
    const auto r = run_chase_emu(hw(), p);
    EXPECT_TRUE(r.verified) << to_string(mode);
  }
}

TEST(ChaseEmu, BlockOneMigratesAlmostEveryHop) {
  ChaseEmuParams p;
  p.n = 1 << 13;
  p.block = 1;
  p.threads = 16;
  const auto r = run_chase_emu(hw(), p);
  // With 8 nodelets, a random hop stays local 1/8 of the time.
  EXPECT_GT(r.migrations_per_element, 0.80);
  EXPECT_LE(r.migrations_per_element, 1.0);
}

TEST(ChaseEmu, LargeBlocksMigrateOncePerBlock) {
  ChaseEmuParams p;
  p.n = 1 << 13;
  p.block = 64;
  p.threads = 16;
  const auto r = run_chase_emu(hw(), p);
  EXPECT_LT(r.migrations_per_element, 1.0 / 32.0);
}

TEST(ChaseEmu, FlatAcrossBlockSizesAboveRecovery) {
  // Fig 6: Emu is insensitive to locality once blocks hold >= ~8 elements.
  ChaseEmuParams p;
  p.n = 1 << 15;
  p.threads = 128;
  p.block = 8;
  const auto b8 = run_chase_emu(hw(), p);
  p.block = 256;
  const auto b256 = run_chase_emu(hw(), p);
  EXPECT_NEAR(b8.mb_per_sec / b256.mb_per_sec, 1.0, 0.25);
}

TEST(ChaseEmu, BlockOneIsMigrationBound) {
  ChaseEmuParams p;
  p.n = 1 << 15;
  p.threads = 256;
  p.block = 1;
  const auto worst = run_chase_emu(hw(), p);
  p.block = 64;
  const auto good = run_chase_emu(hw(), p);
  EXPECT_GT(good.mb_per_sec, 3.0 * worst.mb_per_sec);
  // Throughput at block 1 ~ migration engine rate (9 M/s) x 16 B.
  EXPECT_NEAR(worst.mb_per_sec, 9.0 * 16, 40.0);
}

// --- SpMV --------------------------------------------------------------------

class SpmvLayouts : public ::testing::TestWithParam<SpmvLayout> {};

TEST_P(SpmvLayouts, ComputesCorrectProduct) {
  SpmvEmuParams p;
  p.laplacian_n = 30;
  p.layout = GetParam();
  const auto r = run_spmv_emu(hw(), p);
  EXPECT_TRUE(r.verified);
}

INSTANTIATE_TEST_SUITE_P(All, SpmvLayouts,
                         ::testing::Values(SpmvLayout::local, SpmvLayout::one_d,
                                           SpmvLayout::two_d));

TEST(SpmvEmu, LayoutOrderingMatchesPaper) {
  SpmvEmuParams p;
  p.laplacian_n = 60;
  p.layout = SpmvLayout::local;
  const auto local = run_spmv_emu(hw(), p);
  p.layout = SpmvLayout::one_d;
  const auto one_d = run_spmv_emu(hw(), p);
  p.layout = SpmvLayout::two_d;
  const auto two_d = run_spmv_emu(hw(), p);
  EXPECT_GT(one_d.mb_per_sec, local.mb_per_sec);
  EXPECT_GT(two_d.mb_per_sec, one_d.mb_per_sec);
}

TEST(SpmvEmu, OneDMigratesAboutOncePerNonzero) {
  SpmvEmuParams p;
  p.laplacian_n = 40;
  p.layout = SpmvLayout::one_d;
  const auto r = run_spmv_emu(hw(), p);
  const double nnz = 5.0 * 40 * 40 - 4 * 40;
  const double per = static_cast<double>(r.migrations) / nnz;
  EXPECT_GT(per, 0.8);
  EXPECT_LT(per, 2.0);  // row-pointer walks add some
}

TEST(SpmvEmu, LocalAndTwoDDoNotMigrate) {
  for (auto layout : {SpmvLayout::local, SpmvLayout::two_d}) {
    SpmvEmuParams p;
    p.laplacian_n = 40;
    p.layout = layout;
    const auto r = run_spmv_emu(hw(), p);
    EXPECT_EQ(r.migrations, 0u) << to_string(layout);
  }
}

// --- ping-pong -----------------------------------------------------------------

TEST(PingPong, ThroughputTracksEngineRate) {
  PingPongParams p;
  p.threads = 64;
  p.round_trips = 500;
  const auto r = run_pingpong(hw(), p);
  EXPECT_NEAR(r.migrations_per_sec / 1e6, 9.0, 0.5);
  const auto sim = run_pingpong(emu::SystemConfig::chick_as_simulated(), p);
  EXPECT_NEAR(sim.migrations_per_sec / 1e6, 16.0, 1.0);
}

TEST(PingPong, SingleThreadLatencyInPaperRange) {
  PingPongParams p;
  p.threads = 1;
  p.round_trips = 200;
  const auto r = run_pingpong(hw(), p);
  EXPECT_GT(r.mean_latency_us, 1.0);
  EXPECT_LT(r.mean_latency_us, 2.0);
}

TEST(PingPong, CountsExactMigrations) {
  PingPongParams p;
  p.threads = 3;
  p.round_trips = 10;
  const auto r = run_pingpong(hw(), p);
  EXPECT_EQ(r.migrations, 3u * 10u * 2u);
}

// --- GUPS ------------------------------------------------------------------------

TEST(GupsEmu, RemoteAtomicsNeverMigrate) {
  GupsParams p;
  p.table_words = 1 << 12;
  p.updates = 1 << 12;
  p.threads = 64;
  const auto r = run_gups_emu(hw(), p);
  EXPECT_TRUE(r.verified);
  EXPECT_EQ(r.migrations, 0u);
  EXPECT_GT(r.giga_updates_per_sec, 0.0);
}

}  // namespace
}  // namespace emusim::kernels
