// Deterministic RNG: reproducibility, bounds, permutation validity, and
// crude uniformity — parameterized across seeds.
#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace emusim::sim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SplitmixIsStable) {
  // Pin the first splitmix64 output for seed 0 (cross-platform stability of
  // all workload layouts depends on this).
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64(s), 0xE220A8397B1DCDAFULL);
}

class RngSeeded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeeded, BelowStaysInBounds) {
  Rng rng(GetParam());
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST_P(RngSeeded, UniformInUnitInterval) {
  Rng rng(GetParam());
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST_P(RngSeeded, PermutationIsValid) {
  Rng rng(GetParam());
  for (std::size_t n : {1u, 2u, 17u, 256u, 1000u}) {
    auto p = rng.permutation(n);
    ASSERT_EQ(p.size(), n);
    auto sorted = p;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(sorted[i], static_cast<std::uint32_t>(i));
    }
  }
}

TEST_P(RngSeeded, ShufflePreservesMultiset) {
  Rng rng(GetParam());
  std::vector<int> v(500);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
  // 500 elements: identity after shuffle is effectively impossible.
  EXPECT_NE(v, orig);
}

TEST_P(RngSeeded, BelowIsRoughlyUniform) {
  Rng rng(GetParam());
  constexpr std::uint64_t kBuckets = 8;
  std::array<int, kBuckets> counts{};
  constexpr int kDraws = 16000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<std::size_t>(rng.below(kBuckets))];
  }
  for (auto c : counts) {
    EXPECT_NEAR(c, kDraws / static_cast<int>(kBuckets), kDraws / 40);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeeded,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xDEADBEEFULL,
                                           ~0ULL));

}  // namespace
}  // namespace emusim::sim
