// Summary statistics and the log2 histogram.
#include "sim/stats.hpp"

#include <gtest/gtest.h>

namespace emusim::sim {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(7.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_DOUBLE_EQ(s.min(), 7.5);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance of that classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Summary, WelfordMatchesNaiveOnLargeStream) {
  Summary s;
  double sum = 0, sumsq = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double v = (i * 37 % 1001) * 0.25;
    s.add(v);
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = (sumsq - n * mean * mean) / (n - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(Log2Histogram, BucketsByPowerOfTwo) {
  Log2Histogram h;
  h.add(1);     // bucket 0
  h.add(2);     // bucket 1
  h.add(3);     // bucket 1
  h.add(4);     // bucket 2
  h.add(1023);  // bucket 9
  h.add(1024);  // bucket 10
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.bucket(10), 1u);
}

TEST(Log2Histogram, QuantilesBracketTheData) {
  Log2Histogram h;
  for (int i = 0; i < 900; ++i) h.add(100);   // bucket 6 ([64,128))
  for (int i = 0; i < 100; ++i) h.add(5000);  // bucket 12
  EXPECT_LE(h.quantile(0.5), 256u);   // p50 in the low bucket
  EXPECT_GE(h.quantile(0.99), 4096u);  // p99 in the high bucket
}

TEST(Log2Histogram, RenderShowsOccupiedRange) {
  Log2Histogram h;
  EXPECT_EQ(h.render(), "(empty)\n");
  h.add(1000);
  const auto out = h.render();
  EXPECT_NE(out.find("[2^09, 2^10)"), std::string::npos);
  EXPECT_NE(out.find("1"), std::string::npos);
}

}  // namespace
}  // namespace emusim::sim
