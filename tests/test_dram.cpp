// DRAM channel model: burst timing, row-buffer hits/misses, bank overlap,
// bandwidth limits for the configurations used in the reproduction.
#include "mem/dram.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/task.hpp"

namespace emusim::mem {
namespace {

using sim::Engine;
using sim::Task;

Task do_read(Engine& eng, DramChannel& ch, std::uint64_t addr,
             std::uint32_t bytes, std::vector<Time>& done) {
  co_await ch.read(addr, bytes);
  done.push_back(eng.now());
}

TEST(DramTiming, PeakBandwidths) {
  EXPECT_NEAR(DramTiming::ncdram_chick().bytes_per_sec(), 1.6e9, 1e6);
  EXPECT_NEAR(DramTiming::ncdram_fullspeed().bytes_per_sec(), 2.133e9, 1e6);
  EXPECT_NEAR(DramTiming::ddr3_1600().bytes_per_sec(), 12.8e9, 1e7);
  EXPECT_NEAR(DramTiming::ddr4_1333().bytes_per_sec(), 10.664e9, 1e7);
}

TEST(DramTiming, NarrowChannelBurstMovesOneWord) {
  const auto t = DramTiming::ncdram_chick();
  // 8 bytes over an 8-bit bus at 1600 MT/s: 8 transfers = 5 ns.
  EXPECT_EQ(t.burst_time(8), ns(5));
}

TEST(DramTiming, WideChannelBurstMovesOneLine) {
  const auto t = DramTiming::ddr3_1600();
  // 64 bytes over a 64-bit bus at 1600 MT/s: 8 transfers = 5 ns.
  EXPECT_EQ(t.burst_time(64), ns(5));
}

TEST(DramChannel, FirstAccessIsARowMiss) {
  Engine eng;
  DramChannel ch(eng, DramTiming::ddr3_1600());
  std::vector<Time> done;
  auto t = do_read(eng, ch, 0, 64, done);
  t.start();
  eng.run();
  EXPECT_EQ(ch.stats().row_misses, 1u);
  EXPECT_EQ(ch.stats().row_hits, 0u);
  const auto& tm = ch.timing();
  EXPECT_EQ(done[0], tm.ctrl_latency + tm.t_rp + tm.t_rcd + tm.t_cas +
                         tm.burst_time(64));
}

TEST(DramChannel, SameRowAccessesHit) {
  Engine eng;
  DramChannel ch(eng, DramTiming::ddr3_1600());
  std::vector<Time> done;
  std::vector<Task> ts;
  // Five accesses within one 8 KiB row.
  for (int i = 0; i < 5; ++i) {
    ts.push_back(do_read(eng, ch, static_cast<std::uint64_t>(i) * 64, 64, done));
  }
  for (auto& t : ts) t.start();
  eng.run();
  EXPECT_EQ(ch.stats().row_misses, 1u);
  EXPECT_EQ(ch.stats().row_hits, 4u);
}

TEST(DramChannel, DifferentRowsSameBankMiss) {
  Engine eng;
  const auto tm = DramTiming::ddr3_1600();
  DramChannel ch(eng, tm);
  // Find four different rows that hash to the same bank.
  std::vector<std::uint64_t> addrs;
  const std::size_t target = ch.bank_of(0);
  for (std::uint64_t r = 0; addrs.size() < 4 && r < 10000; ++r) {
    const std::uint64_t addr = r * tm.row_bytes;
    if (ch.bank_of(addr) == target) addrs.push_back(addr);
  }
  ASSERT_EQ(addrs.size(), 4u);
  std::vector<Time> done;
  std::vector<Task> ts;
  for (auto a : addrs) ts.push_back(do_read(eng, ch, a, 64, done));
  for (auto& t : ts) t.start();
  eng.run();
  EXPECT_EQ(ch.stats().row_misses, 4u);
}

TEST(DramChannel, BankParallelismOverlapsActivates) {
  // Accesses to different banks should complete far faster than the same
  // number of same-bank row misses.
  auto run = [](bool same_bank) {
    Engine eng;
    const auto tm = DramTiming::ddr3_1600();
    DramChannel ch(eng, tm);
    // Pick 8 rows that map to the same bank, or 8 rows on distinct banks.
    std::vector<std::uint64_t> addrs;
    std::vector<bool> used(static_cast<std::size_t>(tm.banks), false);
    const std::size_t target = ch.bank_of(0);
    for (std::uint64_t r = 1; addrs.size() < 8 && r < 100000; ++r) {
      const std::uint64_t addr = r * tm.row_bytes;
      const std::size_t b = ch.bank_of(addr);
      if (same_bank ? (b == target) : !used[b]) {
        addrs.push_back(addr);
        used[b] = true;
      }
    }
    std::vector<Time> done;
    std::vector<Task> ts;
    for (auto a : addrs) ts.push_back(do_read(eng, ch, a, 64, done));
    for (auto& t : ts) t.start();
    return eng.run();
  };
  EXPECT_LT(run(/*same_bank=*/false), run(/*same_bank=*/true));
}

TEST(DramChannel, StreamingApproachesPeakBandwidth) {
  Engine eng;
  const auto tm = DramTiming::ddr3_1600();
  DramChannel ch(eng, tm);
  std::vector<Time> done;
  std::vector<Task> ts;
  constexpr int kLines = 2000;
  for (int i = 0; i < kLines; ++i) {
    ts.push_back(do_read(eng, ch, static_cast<std::uint64_t>(i) * 64, 64,
                         done));
  }
  for (auto& t : ts) t.start();
  const Time elapsed = eng.run();
  const double bw = kLines * 64.0 / to_seconds(elapsed);
  // Sequential reads: bus-bound, within 15% of the 12.8 GB/s peak.
  EXPECT_GT(bw, 0.85 * tm.bytes_per_sec());
}

TEST(DramChannel, RandomAccessPaysActivates) {
  Engine eng;
  const auto tm = DramTiming::ddr3_1600();
  DramChannel ch(eng, tm);
  std::vector<Time> done;
  std::vector<Task> ts;
  constexpr int kLines = 512;
  // Jump a prime number of rows each time: mostly misses.
  std::uint64_t addr = 0;
  for (int i = 0; i < kLines; ++i) {
    ts.push_back(do_read(eng, ch, addr, 64, done));
    addr += 37 * tm.row_bytes;
  }
  for (auto& t : ts) t.start();
  const Time elapsed = eng.run();
  const double bw = kLines * 64.0 / to_seconds(elapsed);
  EXPECT_LT(bw, 0.6 * tm.bytes_per_sec());
  EXPECT_GT(ch.stats().row_misses, ch.stats().row_hits);
}

TEST(DramChannel, PostedWritesAccountBytes) {
  Engine eng;
  DramChannel ch(eng, DramTiming::ncdram_chick());
  ch.write(0, 8);
  ch.write(8, 8);
  EXPECT_EQ(ch.stats().writes, 2u);
  EXPECT_EQ(ch.stats().bytes, 16u);
}

TEST(DramChannel, NarrowVsWideSmallAccessEfficiency) {
  // The Section II-D claim: for 8-byte requests, a narrow channel spends its
  // bus time moving useful data, while a wide bus is bound by latency/
  // underutilized bursts.  Compare useful bandwidth for random 8 B reads.
  auto run = [](const DramTiming& tm) {
    Engine eng;
    DramChannel ch(eng, tm);
    std::vector<Time> done;
    std::vector<sim::Task> ts;
    constexpr int kN = 1000;
    std::uint64_t addr = 0;
    for (int i = 0; i < kN; ++i) {
      ts.push_back(do_read(eng, ch, addr, 8, done));
      addr += 7919 * 8;  // scattered 8 B words
    }
    for (auto& t : ts) t.start();
    const Time elapsed = eng.run();
    return kN * 8.0 / to_seconds(elapsed) / tm.bytes_per_sec();
  };
  const double narrow_eff = run(DramTiming::ncdram_chick());
  const double wide_eff = run(DramTiming::ddr3_1600());
  EXPECT_GT(narrow_eff, 2.0 * wide_eff);
}

}  // namespace
}  // namespace emusim::mem
