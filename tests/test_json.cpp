// Unit tests for the dependency-free JSON writer/parser in src/report/json
// — the substrate of the bench-result schema, so escaping and round-trips
// must be exactly right.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "report/json.hpp"

namespace {

using emusim::report::Json;
using emusim::report::json_escape;
using emusim::report::json_number;

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello world_42"), "hello world_42");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("say \"hi\\\""), "say \\\"hi\\\\\\\"");
}

TEST(JsonEscape, EscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\tb\nc"), "a\\tb\\nc");
  EXPECT_EQ(json_escape(std::string("\x01", 1)), "\\u0001");
}

TEST(JsonNumber, IntegersPrintWithoutExponent) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(65536.0), "65536");
  EXPECT_EQ(json_number(-3.0), "-3");
}

TEST(JsonNumber, NonFiniteBecomesZero) {
  EXPECT_EQ(json_number(std::nan("")), "0");
  EXPECT_EQ(json_number(HUGE_VAL), "0");
}

TEST(JsonValue, ObjectPreservesInsertionOrder) {
  Json obj = Json::object();
  obj.set("zebra", Json::number(1));
  obj.set("alpha", Json::number(2));
  obj.set("mid", Json::string("x"));
  const std::string text = obj.dump(0);
  const auto z = text.find("zebra");
  const auto a = text.find("alpha");
  const auto m = text.find("mid");
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(z, a);
  EXPECT_LT(a, m);
}

TEST(JsonValue, SetReplacesExistingKeyInPlace) {
  Json obj = Json::object();
  obj.set("k", Json::number(1));
  obj.set("other", Json::number(2));
  obj.set("k", Json::number(99));
  EXPECT_EQ(obj.get_number("k"), 99.0);
  // Replacement must not duplicate the key.
  const std::string text = obj.dump(0);
  EXPECT_EQ(text.find("\"k\""), text.rfind("\"k\""));
}

TEST(JsonParse, RoundTripsNestedStructure) {
  Json root = Json::object();
  root.set("name", Json::string("bench \"x\"\n"));
  root.set("ok", Json::boolean(true));
  root.set("none", Json());  // default-constructed Json is null
  Json arr = Json::array();
  arr.push_back(Json::number(1.5));
  arr.push_back(Json::number(-2));
  Json inner = Json::object();
  inner.set("deep", Json::string("\t"));
  arr.push_back(std::move(inner));
  root.set("items", std::move(arr));

  Json back;
  std::string err;
  ASSERT_TRUE(Json::parse(root.dump(2), &back, &err)) << err;
  EXPECT_EQ(back.get_string("name"), "bench \"x\"\n");
  EXPECT_TRUE(back.get_bool("ok"));
  const Json* items = back.find("items");
  ASSERT_NE(items, nullptr);
  ASSERT_EQ(items->items().size(), 3u);
  EXPECT_DOUBLE_EQ(items->items()[0].as_number(), 1.5);
  EXPECT_EQ(items->items()[2].get_string("deep"), "\t");
}

TEST(JsonParse, AcceptsUnicodeEscapes) {
  Json v;
  std::string err;
  ASSERT_TRUE(Json::parse("{\"s\": \"a\\u0041\\u00e9\"}", &v, &err)) << err;
  EXPECT_EQ(v.get_string("s"), "aA\xc3\xa9");
}

TEST(JsonParse, RejectsTrailingGarbage) {
  Json v;
  std::string err;
  EXPECT_FALSE(Json::parse("{} trailing", &v, &err));
  EXPECT_FALSE(err.empty());
}

TEST(JsonParse, RejectsMalformedInput) {
  Json v;
  std::string err;
  EXPECT_FALSE(Json::parse("{\"a\": }", &v, &err));
  EXPECT_FALSE(Json::parse("[1, 2", &v, &err));
  EXPECT_FALSE(Json::parse("", &v, &err));
  EXPECT_FALSE(Json::parse("{\"a\" 1}", &v, &err));
}

TEST(JsonParse, NumbersWithExponents) {
  Json v;
  std::string err;
  ASSERT_TRUE(Json::parse("[1e3, -2.5e-2, 0.125]", &v, &err)) << err;
  EXPECT_DOUBLE_EQ(v.items()[0].as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(v.items()[1].as_number(), -0.025);
  EXPECT_DOUBLE_EQ(v.items()[2].as_number(), 0.125);
}

TEST(JsonValue, GetWithDefaults) {
  Json obj = Json::object();
  obj.set("present", Json::number(7));
  EXPECT_EQ(obj.get_number("present", -1), 7.0);
  EXPECT_EQ(obj.get_number("absent", -1), -1.0);
  EXPECT_EQ(obj.get_string("absent", "dflt"), "dflt");
  EXPECT_TRUE(obj.get_bool("absent", true));
}

}  // namespace
