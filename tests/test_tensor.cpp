// Tensor substrate: generator invariants and the MTTKRP reference.
#include "tensor/coo.hpp"

#include <gtest/gtest.h>

namespace emusim::tensor {
namespace {

TEST(CooTensor, GeneratorSortedUniqueInRange) {
  const auto x = make_random_tensor(20, 30, 40, 500, 5);
  EXPECT_LE(x.nnz(), 500u);
  EXPECT_GT(x.nnz(), 450u);  // few duplicate coordinates at this density
  for (std::size_t e = 0; e < x.nnz(); ++e) {
    EXPECT_LT(x.i[e], 20u);
    EXPECT_LT(x.j[e], 30u);
    EXPECT_LT(x.k[e], 40u);
    if (e > 0) {
      const auto prev = std::tuple(x.i[e - 1], x.j[e - 1], x.k[e - 1]);
      const auto cur = std::tuple(x.i[e], x.j[e], x.k[e]);
      EXPECT_LT(prev, cur);  // sorted by (i, j, k), unique
    }
  }
}

TEST(CooTensor, DeterministicInSeed) {
  const auto a = make_random_tensor(10, 10, 10, 200, 3);
  const auto b = make_random_tensor(10, 10, 10, 200, 3);
  EXPECT_EQ(a.val, b.val);
  const auto c = make_random_tensor(10, 10, 10, 200, 4);
  EXPECT_NE(a.val, c.val);
}

TEST(Mttkrp, ReferenceMatchesHandComputation) {
  // X with a single nonzero: M(i,:) = v * B(j,:) .* C(k,:).
  CooTensor x;
  x.dim0 = 2;
  x.dim1 = 3;
  x.dim2 = 4;
  x.i = {1};
  x.j = {2};
  x.k = {3};
  x.val = {2.0};
  Factor b(3, 2), c(4, 2);
  b.row(2)[0] = 5.0;
  b.row(2)[1] = 7.0;
  c.row(3)[0] = 11.0;
  c.row(3)[1] = 13.0;
  const auto m = mttkrp_reference(x, b, c);
  EXPECT_DOUBLE_EQ(m[0], 0.0);
  EXPECT_DOUBLE_EQ(m[1], 0.0);
  EXPECT_DOUBLE_EQ(m[2], 2.0 * 5.0 * 11.0);
  EXPECT_DOUBLE_EQ(m[3], 2.0 * 7.0 * 13.0);
}

TEST(Mttkrp, FlopsCount) {
  const auto x = make_random_tensor(8, 8, 8, 100, 1);
  EXPECT_DOUBLE_EQ(mttkrp_flops(x, 16),
                   3.0 * static_cast<double>(x.nnz()) * 16);
}

TEST(Factor, RowAccess) {
  Factor f = make_factor(5, 4, 9);
  EXPECT_EQ(f.rows, 5u);
  EXPECT_EQ(f.rank, 4);
  EXPECT_EQ(f.data.size(), 20u);
  f.row(3)[2] = 42.0;
  EXPECT_EQ(f.data[3 * 4 + 2], 42.0);
  for (double v : make_factor(10, 8, 2).data) {
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
}

}  // namespace
}  // namespace emusim::tensor
