// Observability layer: Perfetto export roundtrip, phase-scoped counter
// deltas, the machine-lifecycle observer, and the truncation-reporting
// guarantees from docs/OBSERVABILITY.md.
#include "report/observe.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "emu/counters.hpp"
#include "emu/machine.hpp"
#include "emu/runtime/alloc.hpp"
#include "report/json.hpp"

namespace emusim {
namespace {

using report::Json;

sim::Op<> striped_walk(emu::Context& ctx, emu::Striped1D<std::int64_t>* arr) {
  for (std::size_t i = 0; i < arr->size(); ++i) {
    const int h = arr->home(i);
    if (h != ctx.nodelet()) co_await ctx.migrate_to(h);
    co_await ctx.read_local(arr->byte_addr(i), 8);
  }
}

/// Write-to-temp helper: unique per test to keep ctest -j runs independent.
std::string temp_path(const std::string& tag) {
  return ::testing::TempDir() + "emusim_" + tag + ".json";
}

Json parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  Json root;
  std::string err;
  EXPECT_TRUE(Json::parse(buf.str(), &root, &err)) << err;
  return root;
}

// --- Perfetto writer -------------------------------------------------------

TEST(PerfettoTrace, RoundTripsMigratingRun) {
  emu::Machine m(emu::SystemConfig::chick_hw());
  m.trace.enable();
  emu::Striped1D<std::int64_t> arr(m, 64);
  m.run_root([&](emu::Context& ctx) { return striped_walk(ctx, &arr); });
  const std::uint64_t migrations = m.stats.migrations;
  ASSERT_GT(migrations, 0u);

  const std::string path = temp_path("roundtrip");
  std::string err;
  ASSERT_TRUE(report::write_perfetto_trace(m.trace, m.num_nodelets(), path,
                                           &err))
      << err;
  const Json root = parse_file(path);

  const Json* meta = root.find("otherData")->find("emusim");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->get_number("records"), double(m.trace.size()));
  EXPECT_EQ(meta->get_number("dropped"), 0.0);
  EXPECT_FALSE(meta->get_bool("truncated"));
  EXPECT_EQ(meta->get_number("num_nodelets"), double(m.num_nodelets()));

  const Json* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::map<std::string, int> by_ph;
  std::map<std::pair<int, int>, int> depth;  // (pid,tid) open slices
  int flow_pairs_ok = 0;
  std::map<int, double> flow_start_ts;
  for (const Json& e : events->items()) {
    const std::string ph = e.get_string("ph");
    ++by_ph[ph];
    const int pid = static_cast<int>(e.get_number("pid", -1));
    if (ph != "M") {
      EXPECT_GE(pid, 0);
      EXPECT_LT(pid, m.num_nodelets());
    }
    if (ph == "B") ++depth[{pid, static_cast<int>(e.get_number("tid"))}];
    if (ph == "E") --depth[{pid, static_cast<int>(e.get_number("tid"))}];
    if (ph == "s") {
      flow_start_ts[static_cast<int>(e.get_number("id"))] =
          e.get_number("ts");
      const Json* args = e.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ((static_cast<int>(args->get_number("src")) + 1) %
                    m.num_nodelets(),
                static_cast<int>(args->get_number("dst")));
    }
    if (ph == "f") {
      EXPECT_EQ(e.get_string("bp"), "e");
      const auto it = flow_start_ts.find(static_cast<int>(e.get_number("id")));
      ASSERT_NE(it, flow_start_ts.end());
      EXPECT_GE(e.get_number("ts"), it->second);
      ++flow_pairs_ok;
    }
  }
  // One flow arrow per migration, every 'f' paired with an earlier 's'.
  EXPECT_EQ(by_ph["s"], static_cast<int>(migrations));
  EXPECT_EQ(flow_pairs_ok, static_cast<int>(migrations));
  EXPECT_EQ(by_ph["B"], by_ph["E"]);  // all slices closed
  for (const auto& [key, d] : depth) EXPECT_EQ(d, 0) << key.first;
  EXPECT_GT(by_ph["C"], 0);                         // counter tracks
  EXPECT_EQ(by_ph["M"], 2 * m.num_nodelets());      // name + sort per nodelet
  std::remove(path.c_str());
}

TEST(PerfettoTrace, TruncatedRingTraceStillBalancesAndSaysSo) {
  emu::Machine m(emu::SystemConfig::chick_hw());
  m.trace.enable_ring(/*capacity=*/32);  // far smaller than the event count
  emu::Striped1D<std::int64_t> arr(m, 64);
  m.run_root([&](emu::Context& ctx) { return striped_walk(ctx, &arr); });
  ASSERT_TRUE(m.trace.truncated());

  const std::string path = temp_path("truncated");
  std::string err;
  ASSERT_TRUE(report::write_perfetto_trace(m.trace, m.num_nodelets(), path,
                                           &err))
      << err;
  const Json root = parse_file(path);
  const Json* meta = root.find("otherData")->find("emusim");
  EXPECT_TRUE(meta->get_bool("truncated"));
  EXPECT_TRUE(meta->get_bool("ring"));
  EXPECT_GT(meta->get_number("dropped"), 0.0);
  // Even over a window that starts mid-run the writer must emit balanced
  // slices (stale starts closed, missing starts synthesized).
  int b = 0, e = 0;
  for (const Json& ev : root.find("traceEvents")->items()) {
    if (ev.get_string("ph") == "B") ++b;
    if (ev.get_string("ph") == "E") ++e;
  }
  EXPECT_EQ(b, e);
  std::remove(path.c_str());
}

TEST(TraceAccounting, JsonCarriesAllFields) {
  sim::Tracer t;
  t.enable_ring(2);
  t.record(0, sim::TraceKind::mem_read, 0);
  t.record(1, sim::TraceKind::mem_read, 0);
  t.record(2, sim::TraceKind::mem_read, 0);
  const Json j = report::to_json(report::trace_accounting(t));
  EXPECT_EQ(j.get_number("records"), 2.0);
  EXPECT_EQ(j.get_number("dropped"), 1.0);
  EXPECT_TRUE(j.get_bool("truncated"));
  EXPECT_TRUE(j.get_bool("ring"));
}

// --- phase-scoped counter deltas -------------------------------------------

TEST(PhaseTimeline, AttributesTrafficToPhases) {
  emu::Machine m(emu::SystemConfig::chick_hw());
  m.trace.enable();
  emu::Striped1D<std::int64_t> arr(m, 64);

  report::PhaseTimeline tl;
  tl.mark(m, "start");
  m.run_root([&](emu::Context& ctx) { return striped_walk(ctx, &arr); });
  const std::uint64_t mig_phase1 = m.stats.migrations;
  tl.mark(m, "walk1");
  m.run_root([&](emu::Context& ctx) { return striped_walk(ctx, &arr); });
  tl.mark(m, "walk2");

  const auto deltas = tl.deltas();
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas[0].from, "start");
  EXPECT_EQ(deltas[0].to, "walk1");
  EXPECT_EQ(deltas[0].machine.migrations, mig_phase1);
  // Identical workload in each phase: identical per-phase migration counts,
  // and the two windows sum to the machine total.
  EXPECT_EQ(deltas[1].machine.migrations, mig_phase1);
  EXPECT_EQ(deltas[0].machine.migrations + deltas[1].machine.migrations,
            m.stats.migrations);
  EXPECT_LT(deltas[0].t0, deltas[0].t1);
  EXPECT_EQ(deltas[0].t1, deltas[1].t0);

  std::uint64_t reads = 0;
  for (const auto& n : deltas[0].nodelets) {
    reads += n.reads;
    EXPECT_GE(n.row_hit_rate, 0.0);
    EXPECT_LE(n.row_hit_rate, 1.0);
    EXPECT_LE(n.channel_utilization, 1.0);
  }
  EXPECT_EQ(reads, 64u);

  const Json j = tl.to_json();
  ASSERT_EQ(j.items().size(), 2u);
  EXPECT_EQ(j.items()[0].get_string("phase"), "walk1");
}

TEST(CounterDelta, ClampsMatrixAndPropagatesTruncation) {
  // Synthetic snapshots: under ring truncation a later matrix can have
  // *smaller* cells than an earlier one; the delta clamps at zero rather
  // than wrapping, and the truncated flag is sticky.
  emu::CounterSnapshot a, b;
  a.phase = "a";
  b.phase = "b";
  a.t = 0;
  b.t = ms(1);
  a.nodelets.resize(2);
  b.nodelets.resize(2);
  b.nodelets[0].reads = 7;
  a.migration_matrix = {{0, 5}, {2, 0}};
  b.migration_matrix = {{0, 3}, {9, 0}};
  a.trace_truncated = true;  // the *older* snapshot saw a truncated trace
  const auto d = emu::counters_delta(a, b);
  EXPECT_EQ(d.migration_matrix[0][1], 0u);  // 3 - 5 clamps
  EXPECT_EQ(d.migration_matrix[1][0], 7u);  // 9 - 2
  EXPECT_TRUE(d.trace_truncated);
  EXPECT_EQ(d.nodelets[0].reads, 7u);
  EXPECT_EQ(d.from, "a");
  EXPECT_EQ(d.to, "b");
}

TEST(CounterDelta, JsonReportsTruncationAndPerNodeletRows) {
  emu::Machine m(emu::SystemConfig::chick_hw());
  m.trace.enable_ring(/*capacity=*/16);
  emu::Striped1D<std::int64_t> arr(m, 64);
  const auto before = emu::snapshot_counters(m, "start");
  m.run_root([&](emu::Context& ctx) { return striped_walk(ctx, &arr); });
  const auto after = emu::snapshot_counters(m, "walk");
  const Json j = report::to_json(emu::counters_delta(before, after));
  EXPECT_EQ(j.get_string("phase"), "walk");
  EXPECT_TRUE(j.get_bool("trace_truncated"));
  const Json* nodelets = j.find("nodelets");
  ASSERT_NE(nodelets, nullptr);
  ASSERT_EQ(nodelets->items().size(), 8u);
  const Json* matrix = j.find("migration_matrix");
  ASSERT_NE(matrix, nullptr);
  EXPECT_EQ(matrix->items().size(), 8u);
  const Json* mach = j.find("machine");
  ASSERT_NE(mach, nullptr);
  EXPECT_GT(mach->get_number("migrations"), 0.0);
}

// --- counters_report -------------------------------------------------------

TEST(CountersReport, SurvivesLongMachineNamesAndFlagsTruncation) {
  // Regression: the report used a fixed 256-byte line buffer, so a long
  // machine name silently truncated the header (and could truncate rows).
  auto cfg = emu::SystemConfig::chick_hw();
  cfg.name.assign(300, 'x');
  emu::Machine m(cfg);
  m.trace.enable_ring(/*capacity=*/8);
  emu::Striped1D<std::int64_t> arr(m, 64);
  const Time elapsed =
      m.run_root([&](emu::Context& ctx) { return striped_walk(ctx, &arr); });
  const std::string report = emu::counters_report(m, elapsed);
  EXPECT_NE(report.find(cfg.name), std::string::npos)
      << "long machine name was truncated out of the report";
  EXPECT_NE(report.find("TRUNCATED"), std::string::npos)
      << "report over a truncated trace must say so";
}

// --- BenchObserver ---------------------------------------------------------

TEST(BenchObserver, CollectsRunsAndWritesTrace) {
  const std::string path = temp_path("observer");
  {
    report::BenchObserver obs({/*counters=*/true, path,
                               /*trace_capacity=*/1 << 12});
    // Machines constructed while the observer is installed are traced even
    // though this scope never touches m.trace directly.
    for (int run = 0; run < 2; ++run) {
      emu::Machine m(emu::SystemConfig::chick_hw());
      emu::Striped1D<std::int64_t> arr(m, 64);
      m.run_root([&](emu::Context& ctx) { return striped_walk(ctx, &arr); });
    }
    EXPECT_EQ(obs.runs(), 2);
    auto pending = obs.take_pending_counters();
    ASSERT_EQ(pending.size(), 2u);
    EXPECT_GT(pending[0].find("machine")->get_number("migrations"), 0.0);
    EXPECT_TRUE(obs.take_pending_counters().empty());  // drained

    std::string err;
    ASSERT_TRUE(obs.write_trace(&err)) << err;
    const auto acct = obs.last_trace_accounting();
    EXPECT_GT(acct.records, 0u);
    EXPECT_TRUE(acct.ring);
  }
  // Observer uninstalled: new machines are untraced again.
  emu::Machine m(emu::SystemConfig::chick_hw());
  EXPECT_FALSE(m.trace.enabled());

  const Json root = parse_file(path);
  EXPECT_TRUE(root.find("traceEvents")->is_array());
  std::remove(path.c_str());
}

TEST(BenchObserver, WriteTraceFailsCleanlyOnBadPath) {
  report::BenchObserver obs({false, "/nonexistent-dir/trace.json", 64});
  {
    emu::Machine m(emu::SystemConfig::chick_hw());
    emu::Striped1D<std::int64_t> arr(m, 8);
    m.run_root([&](emu::Context& ctx) { return striped_walk(ctx, &arr); });
  }
  std::string err;
  EXPECT_FALSE(obs.write_trace(&err));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace emusim
