// Every kernel runner must be bit-for-bit reproducible: identical params ->
// identical simulated time and statistics.  This is what makes the figure
// harnesses trustworthy regression artifacts.
#include <gtest/gtest.h>

#include "kernels/chase_emu.hpp"
#include "kernels/chase_xeon.hpp"
#include "kernels/gups.hpp"
#include "kernels/pingpong.hpp"
#include "kernels/spmv_emu.hpp"
#include "kernels/spmv_xeon.hpp"
#include "kernels/stream_emu.hpp"
#include "kernels/stream_xeon.hpp"

namespace emusim::kernels {
namespace {

TEST(Determinism, StreamEmu) {
  StreamParams p;
  p.n = 1 << 14;
  p.threads = 128;
  p.strategy = SpawnStrategy::recursive_remote_spawn;
  const auto a = run_stream_add(emu::SystemConfig::chick_hw(), p);
  const auto b = run_stream_add(emu::SystemConfig::chick_hw(), p);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.spawns, b.spawns);
}

TEST(Determinism, ChaseEmu) {
  ChaseEmuParams p;
  p.n = 1 << 13;
  p.block = 4;
  p.threads = 64;
  const auto a = run_chase_emu(emu::SystemConfig::chick_hw(), p);
  const auto b = run_chase_emu(emu::SystemConfig::chick_hw(), p);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.migrations, b.migrations);
}

TEST(Determinism, SpmvEmuAllLayouts) {
  for (auto layout :
       {SpmvLayout::local, SpmvLayout::one_d, SpmvLayout::two_d}) {
    SpmvEmuParams p;
    p.laplacian_n = 25;
    p.layout = layout;
    const auto a = run_spmv_emu(emu::SystemConfig::chick_hw(), p);
    const auto b = run_spmv_emu(emu::SystemConfig::chick_hw(), p);
    EXPECT_EQ(a.elapsed, b.elapsed) << to_string(layout);
    EXPECT_EQ(a.migrations, b.migrations) << to_string(layout);
  }
}

TEST(Determinism, PingPong) {
  PingPongParams p;
  p.threads = 16;
  p.round_trips = 100;
  const auto a = run_pingpong(emu::SystemConfig::chick_hw(), p);
  const auto b = run_pingpong(emu::SystemConfig::chick_hw(), p);
  EXPECT_EQ(a.elapsed, b.elapsed);
}

TEST(Determinism, StreamXeon) {
  StreamXeonParams p;
  p.n = 1 << 15;
  p.threads = 8;
  const auto a = run_stream_xeon(xeon::SystemConfig::sandy_bridge(), p);
  const auto b = run_stream_xeon(xeon::SystemConfig::sandy_bridge(), p);
  EXPECT_EQ(a.elapsed, b.elapsed);
}

TEST(Determinism, ChaseXeon) {
  ChaseXeonParams p;
  p.n = 1 << 14;
  p.block = 16;
  p.threads = 8;
  const auto a = run_chase_xeon(xeon::SystemConfig::sandy_bridge(), p);
  const auto b = run_chase_xeon(xeon::SystemConfig::sandy_bridge(), p);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.row_hits, b.row_hits);
}

TEST(Determinism, SpmvXeon) {
  SpmvXeonParams p;
  p.laplacian_n = 30;
  p.impl = SpmvXeonImpl::cilk_for;
  p.threads = 14;
  const auto a = run_spmv_xeon(xeon::SystemConfig::haswell(), p);
  const auto b = run_spmv_xeon(xeon::SystemConfig::haswell(), p);
  EXPECT_EQ(a.elapsed, b.elapsed);
}

TEST(Determinism, Gups) {
  GupsParams p;
  p.table_words = 1 << 12;
  p.updates = 1 << 11;
  p.threads = 32;
  const auto a = run_gups_emu(emu::SystemConfig::chick_hw(), p);
  const auto b = run_gups_emu(emu::SystemConfig::chick_hw(), p);
  EXPECT_EQ(a.elapsed, b.elapsed);
  const auto c = run_gups_xeon(xeon::SystemConfig::sandy_bridge(), p);
  const auto d = run_gups_xeon(xeon::SystemConfig::sandy_bridge(), p);
  EXPECT_EQ(c.elapsed, d.elapsed);
}

}  // namespace
}  // namespace emusim::kernels
