// Event tracer: recording, capacity, aggregations, and integration with the
// Emu machine (per-nodelet counts, migration matrices).
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "emu/counters.hpp"
#include "emu/machine.hpp"
#include "emu/runtime/alloc.hpp"

namespace emusim {
namespace {

using sim::TraceKind;
using sim::Tracer;

TEST(Tracer, DisabledByDefaultAndFree) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.record(0, TraceKind::mem_read, 1);
  EXPECT_TRUE(t.records().empty());
}

TEST(Tracer, RecordsInOrder) {
  Tracer t;
  t.enable();
  t.record(ns(5), TraceKind::mem_read, 2, -1, 8);
  t.record(ns(9), TraceKind::migrate_out, 2, 3);
  ASSERT_EQ(t.records().size(), 2u);
  EXPECT_EQ(t.records()[0].t, ns(5));
  EXPECT_EQ(t.records()[0].arg, 8u);
  EXPECT_EQ(t.records()[1].b, 3);
}

TEST(Tracer, CapacityBoundsAndCountsDrops) {
  Tracer t;
  t.enable(/*capacity=*/10);
  for (int i = 0; i < 25; ++i) t.record(i, TraceKind::mem_read, 0);
  EXPECT_EQ(t.records().size(), 10u);
  EXPECT_EQ(t.dropped(), 15u);
}

TEST(Tracer, CountFiltersByKindAndEntity) {
  Tracer t;
  t.enable();
  t.record(0, TraceKind::mem_read, 1);
  t.record(0, TraceKind::mem_read, 2);
  t.record(0, TraceKind::mem_write, 1);
  EXPECT_EQ(t.count(TraceKind::mem_read), 2u);
  EXPECT_EQ(t.count(TraceKind::mem_read, 1), 1u);
  EXPECT_EQ(t.count(TraceKind::mem_write, 2), 0u);
}

TEST(Tracer, MigrationMatrix) {
  Tracer t;
  t.enable();
  t.record(0, TraceKind::migrate_out, 0, 1);
  t.record(0, TraceKind::migrate_out, 0, 1);
  t.record(0, TraceKind::migrate_out, 1, 0);
  const auto m = t.migration_matrix(2);
  EXPECT_EQ(m[0][1], 2u);
  EXPECT_EQ(m[1][0], 1u);
  EXPECT_EQ(m[0][0], 0u);
}

TEST(Tracer, ActivityBuckets) {
  Tracer t;
  t.enable();
  t.record(ns(5), TraceKind::mem_read, 0);
  t.record(ns(15), TraceKind::mem_read, 0);
  t.record(ns(15), TraceKind::mem_read, 1);
  t.record(ns(25), TraceKind::mem_read, 0);
  const auto a = t.activity(TraceKind::mem_read, 2, ns(10), ns(30));
  ASSERT_EQ(a[0].size(), 3u);
  EXPECT_EQ(a[0][0], 1u);
  EXPECT_EQ(a[0][1], 1u);
  EXPECT_EQ(a[0][2], 1u);
  EXPECT_EQ(a[1][1], 1u);
}

TEST(Tracer, TruncatedFlagDistinguishesFullFromOverflowed) {
  Tracer t;
  t.enable(/*capacity=*/4);
  for (int i = 0; i < 4; ++i) t.record(i, TraceKind::mem_read, 0);
  EXPECT_FALSE(t.truncated());  // exactly full is not truncated
  t.record(4, TraceKind::mem_read, 0);
  EXPECT_TRUE(t.truncated());
  EXPECT_EQ(t.dropped(), 1u);
}

TEST(Tracer, RingModeKeepsNewestInTimeOrder) {
  Tracer t;
  t.enable_ring(/*capacity=*/4);
  EXPECT_TRUE(t.ring());
  for (int i = 0; i < 10; ++i) t.record(ns(i), TraceKind::mem_read, i);
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  EXPECT_TRUE(t.truncated());
  // at() and for_each() present records oldest-to-newest even after the
  // write head wrapped mid-buffer.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t.at(i).t, ns(6 + static_cast<long long>(i)));
    EXPECT_EQ(t.at(i).a, 6 + static_cast<int>(i));
  }
  std::vector<Time> seen;
  t.for_each([&](const sim::TraceRecord& r) { seen.push_back(r.t); });
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.front(), ns(6));
  EXPECT_EQ(seen.back(), ns(9));
}

TEST(Tracer, AggregatesAfterOverflowUseRetainedRecordsOnly) {
  // Linear mode keeps the oldest records; ring mode keeps the newest.  In
  // both cases aggregation must reflect exactly the retained set and the
  // truncated flag must warn the caller (satellite: silent dropped_).
  Tracer lin;
  lin.enable(/*capacity=*/3);
  lin.record(0, TraceKind::migrate_out, 0, 1);
  lin.record(1, TraceKind::migrate_out, 1, 2);
  lin.record(2, TraceKind::migrate_out, 2, 3);
  lin.record(3, TraceKind::migrate_out, 3, 4);  // dropped
  auto m = lin.migration_matrix(8);
  EXPECT_EQ(m[0][1] + m[1][2] + m[2][3], 3u);
  EXPECT_EQ(m[3][4], 0u);
  EXPECT_TRUE(lin.truncated());

  Tracer ring;
  ring.enable_ring(/*capacity=*/3);
  ring.record(0, TraceKind::migrate_out, 0, 1);  // overwritten
  ring.record(1, TraceKind::migrate_out, 1, 2);
  ring.record(2, TraceKind::migrate_out, 2, 3);
  ring.record(3, TraceKind::migrate_out, 3, 4);
  m = ring.migration_matrix(8);
  EXPECT_EQ(m[0][1], 0u);
  EXPECT_EQ(m[1][2] + m[2][3] + m[3][4], 3u);
  EXPECT_TRUE(ring.truncated());
}

TEST(Tracer, MigrationMatrixCountsOutOfRangeIds) {
  Tracer t;
  t.enable();
  t.record(0, TraceKind::migrate_out, 0, 1);
  t.record(0, TraceKind::migrate_out, 7, 9);   // dst out of range for 8
  t.record(0, TraceKind::migrate_out, -1, 3);  // src out of range
  std::uint64_t oor = 0;
  const auto m = t.migration_matrix(8, &oor);
  EXPECT_EQ(m[0][1], 1u);
  EXPECT_EQ(oor, 2u);
}

TEST(Tracer, ActivityWindowEdgesAndOutOfWindowCount) {
  Tracer t;
  t.enable();
  t.record(0, TraceKind::mem_read, 0);         // t == 0: first bucket
  t.record(ns(29), TraceKind::mem_read, 0);    // inside last bucket
  t.record(ns(30), TraceKind::mem_read, 0);    // t == end: out of window
  t.record(ns(99), TraceKind::mem_read, 0);    // far past end
  t.record(-ns(1), TraceKind::mem_read, 0);    // before the window
  std::uint64_t oow = 0;
  const auto a = t.activity(TraceKind::mem_read, 1, ns(10), ns(30), &oow);
  ASSERT_EQ(a[0].size(), 3u);
  EXPECT_EQ(a[0][0], 1u);
  EXPECT_EQ(a[0][1], 0u);
  // Regression: records at/after `end` used to be clamped into the last
  // bucket, inflating it; they must be dropped and counted instead.
  EXPECT_EQ(a[0][2], 1u);
  EXPECT_EQ(oow, 3u);
}

// --- machine integration ---------------------------------------------------

sim::Op<> traced_workload(emu::Context& ctx,
                          emu::Striped1D<std::int64_t>* arr) {
  for (std::size_t i = 0; i < arr->size(); ++i) {
    const int h = arr->home(i);
    if (h != ctx.nodelet()) co_await ctx.migrate_to(h);
    co_await ctx.read_local(arr->byte_addr(i), 8);
  }
}

TEST(TracerIntegration, MachineEventsMatchStats) {
  emu::Machine m(emu::SystemConfig::chick_hw());
  m.trace.enable();
  emu::Striped1D<std::int64_t> arr(m, 64);
  m.run_root([&](emu::Context& ctx) { return traced_workload(ctx, &arr); });

  EXPECT_EQ(m.trace.count(TraceKind::migrate_out), m.stats.migrations);
  EXPECT_EQ(m.trace.count(TraceKind::migrate_in), m.stats.migrations);
  EXPECT_EQ(m.trace.count(TraceKind::thread_spawn), m.stats.spawns);
  std::uint64_t reads = 0;
  for (int d = 0; d < m.num_nodelets(); ++d) {
    reads += m.nodelet(d).stats.reads;
    EXPECT_EQ(m.trace.count(TraceKind::mem_read, d),
              m.nodelet(d).stats.reads);
  }
  EXPECT_EQ(reads, 64u);
}

TEST(TracerIntegration, RoundRobinWalkMigrationMatrixIsCyclic) {
  emu::Machine m(emu::SystemConfig::chick_hw());
  m.trace.enable();
  emu::Striped1D<std::int64_t> arr(m, 64);
  m.run_root([&](emu::Context& ctx) { return traced_workload(ctx, &arr); });
  const auto mat = m.trace.migration_matrix(m.num_nodelets());
  // Element-striped walk: every migration goes to the next nodelet.
  for (int s = 0; s < 8; ++s) {
    for (int d = 0; d < 8; ++d) {
      if (d == (s + 1) % 8) {
        EXPECT_GT(mat[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)],
                  0u);
      } else {
        EXPECT_EQ(mat[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)],
                  0u);
      }
    }
  }
}

TEST(TracerIntegration, MigrateInRecordsSourceNodeletAndThreadId) {
  emu::Machine m(emu::SystemConfig::chick_hw());
  m.trace.enable();
  emu::Striped1D<std::int64_t> arr(m, 64);
  m.run_root([&](emu::Context& ctx) { return traced_workload(ctx, &arr); });
  // Regression: migrate_in.b used to carry the *node* index (always 0 on a
  // single-node chick), losing the route.  It must be the source nodelet,
  // pairing with a migrate_out of the same thread id.
  std::uint64_t paired = 0;
  m.trace.for_each([&](const sim::TraceRecord& r) {
    if (r.kind != sim::TraceKind::migrate_in) return;
    EXPECT_GE(r.b, 0);
    EXPECT_LT(r.b, m.num_nodelets());
    EXPECT_EQ((r.b + 1) % m.num_nodelets(), r.a);  // round-robin walk
    EXPECT_GE(r.tid, 0);
    ++paired;
  });
  EXPECT_EQ(paired, m.stats.migrations);
}

TEST(Counters, ReportContainsPerNodeletRows) {
  emu::Machine m(emu::SystemConfig::chick_hw());
  emu::Striped1D<std::int64_t> arr(m, 64);
  const Time elapsed =
      m.run_root([&](emu::Context& ctx) { return traced_workload(ctx, &arr); });

  const auto counters = emu::collect_counters(m, elapsed);
  ASSERT_EQ(counters.size(), 8u);
  std::uint64_t reads = 0;
  for (const auto& c : counters) {
    reads += c.reads;
    EXPECT_LE(c.channel_utilization, 1.0);
  }
  EXPECT_EQ(reads, 64u);

  const auto report = emu::counters_report(m, elapsed);
  EXPECT_NE(report.find("chick_hw"), std::string::npos);
  EXPECT_NE(report.find("rowhit%"), std::string::npos);
}

}  // namespace
}  // namespace emusim
