// Event tracer: recording, capacity, aggregations, and integration with the
// Emu machine (per-nodelet counts, migration matrices).
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "emu/counters.hpp"
#include "emu/machine.hpp"
#include "emu/runtime/alloc.hpp"

namespace emusim {
namespace {

using sim::TraceKind;
using sim::Tracer;

TEST(Tracer, DisabledByDefaultAndFree) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.record(0, TraceKind::mem_read, 1);
  EXPECT_TRUE(t.records().empty());
}

TEST(Tracer, RecordsInOrder) {
  Tracer t;
  t.enable();
  t.record(ns(5), TraceKind::mem_read, 2, -1, 8);
  t.record(ns(9), TraceKind::migrate_out, 2, 3);
  ASSERT_EQ(t.records().size(), 2u);
  EXPECT_EQ(t.records()[0].t, ns(5));
  EXPECT_EQ(t.records()[0].arg, 8u);
  EXPECT_EQ(t.records()[1].b, 3);
}

TEST(Tracer, CapacityBoundsAndCountsDrops) {
  Tracer t;
  t.enable(/*capacity=*/10);
  for (int i = 0; i < 25; ++i) t.record(i, TraceKind::mem_read, 0);
  EXPECT_EQ(t.records().size(), 10u);
  EXPECT_EQ(t.dropped(), 15u);
}

TEST(Tracer, CountFiltersByKindAndEntity) {
  Tracer t;
  t.enable();
  t.record(0, TraceKind::mem_read, 1);
  t.record(0, TraceKind::mem_read, 2);
  t.record(0, TraceKind::mem_write, 1);
  EXPECT_EQ(t.count(TraceKind::mem_read), 2u);
  EXPECT_EQ(t.count(TraceKind::mem_read, 1), 1u);
  EXPECT_EQ(t.count(TraceKind::mem_write, 2), 0u);
}

TEST(Tracer, MigrationMatrix) {
  Tracer t;
  t.enable();
  t.record(0, TraceKind::migrate_out, 0, 1);
  t.record(0, TraceKind::migrate_out, 0, 1);
  t.record(0, TraceKind::migrate_out, 1, 0);
  const auto m = t.migration_matrix(2);
  EXPECT_EQ(m[0][1], 2u);
  EXPECT_EQ(m[1][0], 1u);
  EXPECT_EQ(m[0][0], 0u);
}

TEST(Tracer, ActivityBuckets) {
  Tracer t;
  t.enable();
  t.record(ns(5), TraceKind::mem_read, 0);
  t.record(ns(15), TraceKind::mem_read, 0);
  t.record(ns(15), TraceKind::mem_read, 1);
  t.record(ns(25), TraceKind::mem_read, 0);
  const auto a = t.activity(TraceKind::mem_read, 2, ns(10), ns(30));
  ASSERT_EQ(a[0].size(), 3u);
  EXPECT_EQ(a[0][0], 1u);
  EXPECT_EQ(a[0][1], 1u);
  EXPECT_EQ(a[0][2], 1u);
  EXPECT_EQ(a[1][1], 1u);
}

// --- machine integration ---------------------------------------------------

sim::Op<> traced_workload(emu::Context& ctx,
                          emu::Striped1D<std::int64_t>* arr) {
  for (std::size_t i = 0; i < arr->size(); ++i) {
    const int h = arr->home(i);
    if (h != ctx.nodelet()) co_await ctx.migrate_to(h);
    co_await ctx.read_local(arr->byte_addr(i), 8);
  }
}

TEST(TracerIntegration, MachineEventsMatchStats) {
  emu::Machine m(emu::SystemConfig::chick_hw());
  m.trace.enable();
  emu::Striped1D<std::int64_t> arr(m, 64);
  m.run_root([&](emu::Context& ctx) { return traced_workload(ctx, &arr); });

  EXPECT_EQ(m.trace.count(TraceKind::migrate_out), m.stats.migrations);
  EXPECT_EQ(m.trace.count(TraceKind::migrate_in), m.stats.migrations);
  EXPECT_EQ(m.trace.count(TraceKind::thread_spawn), m.stats.spawns);
  std::uint64_t reads = 0;
  for (int d = 0; d < m.num_nodelets(); ++d) {
    reads += m.nodelet(d).stats.reads;
    EXPECT_EQ(m.trace.count(TraceKind::mem_read, d),
              m.nodelet(d).stats.reads);
  }
  EXPECT_EQ(reads, 64u);
}

TEST(TracerIntegration, RoundRobinWalkMigrationMatrixIsCyclic) {
  emu::Machine m(emu::SystemConfig::chick_hw());
  m.trace.enable();
  emu::Striped1D<std::int64_t> arr(m, 64);
  m.run_root([&](emu::Context& ctx) { return traced_workload(ctx, &arr); });
  const auto mat = m.trace.migration_matrix(m.num_nodelets());
  // Element-striped walk: every migration goes to the next nodelet.
  for (int s = 0; s < 8; ++s) {
    for (int d = 0; d < 8; ++d) {
      if (d == (s + 1) % 8) {
        EXPECT_GT(mat[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)],
                  0u);
      } else {
        EXPECT_EQ(mat[static_cast<std::size_t>(s)][static_cast<std::size_t>(d)],
                  0u);
      }
    }
  }
}

TEST(Counters, ReportContainsPerNodeletRows) {
  emu::Machine m(emu::SystemConfig::chick_hw());
  emu::Striped1D<std::int64_t> arr(m, 64);
  const Time elapsed =
      m.run_root([&](emu::Context& ctx) { return traced_workload(ctx, &arr); });

  const auto counters = emu::collect_counters(m, elapsed);
  ASSERT_EQ(counters.size(), 8u);
  std::uint64_t reads = 0;
  for (const auto& c : counters) {
    reads += c.reads;
    EXPECT_LE(c.channel_utilization, 1.0);
  }
  EXPECT_EQ(reads, 64u);

  const auto report = emu::counters_report(m, elapsed);
  EXPECT_NE(report.find("chick_hw"), std::string::npos);
  EXPECT_NE(report.find("rowhit%"), std::string::npos);
}

}  // namespace
}  // namespace emusim
