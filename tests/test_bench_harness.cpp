// Unit tests for the shared bench flag parser — especially the rejection
// paths (unknown flags, flags missing their argument) that used to be
// silently ignored.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_util.hpp"

namespace {

using emusim::bench::Options;
using emusim::bench::parse_options;

struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    ptrs.push_back(const_cast<char*>("bench"));
    for (auto& s : storage) ptrs.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
};

TEST(ParseOptions, DefaultsWithNoFlags) {
  Argv a({});
  Options opt;
  std::string err;
  ASSERT_TRUE(parse_options(a.argc(), a.argv(), &opt, &err)) << err;
  EXPECT_FALSE(opt.quick);
  EXPECT_TRUE(opt.csv_path.empty());
  EXPECT_TRUE(opt.json_path.empty());
  EXPECT_EQ(opt.reps, 1);
  EXPECT_FALSE(opt.help);
}

TEST(ParseOptions, ParsesAllCommonFlags) {
  Argv a({"--quick", "--csv", "out.csv", "--json", "out.json", "--filter",
          "spawn", "--reps", "3"});
  Options opt;
  std::string err;
  ASSERT_TRUE(parse_options(a.argc(), a.argv(), &opt, &err)) << err;
  EXPECT_TRUE(opt.quick);
  EXPECT_EQ(opt.csv_path, "out.csv");
  EXPECT_EQ(opt.json_path, "out.json");
  EXPECT_EQ(opt.filter, "spawn");
  EXPECT_EQ(opt.reps, 3);
}

TEST(ParseOptions, RejectsUnknownFlag) {
  Argv a({"--frobnicate"});
  Options opt;
  std::string err;
  EXPECT_FALSE(parse_options(a.argc(), a.argv(), &opt, &err));
  EXPECT_NE(err.find("--frobnicate"), std::string::npos);
}

TEST(ParseOptions, RejectsTrailingFlagMissingArgument) {
  for (const char* flag : {"--csv", "--json", "--filter", "--reps"}) {
    Argv a({flag});
    Options opt;
    std::string err;
    EXPECT_FALSE(parse_options(a.argc(), a.argv(), &opt, &err)) << flag;
    EXPECT_NE(err.find(flag), std::string::npos) << err;
  }
}

TEST(ParseOptions, RejectsBadRepsValues) {
  for (const char* reps : {"0", "-2", "abc", "3x"}) {
    Argv a({"--reps", reps});
    Options opt;
    std::string err;
    EXPECT_FALSE(parse_options(a.argc(), a.argv(), &opt, &err)) << reps;
  }
}

TEST(ParseOptions, ParsesJobs) {
  Argv a({"--jobs", "8"});
  Options opt;
  std::string err;
  ASSERT_TRUE(parse_options(a.argc(), a.argv(), &opt, &err)) << err;
  EXPECT_EQ(opt.jobs, 8);
}

TEST(ParseOptions, JobsDefaultsToAuto) {
  Argv a({});
  Options opt;
  std::string err;
  ASSERT_TRUE(parse_options(a.argc(), a.argv(), &opt, &err)) << err;
  EXPECT_EQ(opt.jobs, 0);  // 0 = pick hardware_concurrency at run time
}

TEST(ParseOptions, RejectsBadJobsValues) {
  for (const char* jobs : {"0", "-4", "abc", "2000"}) {
    Argv a({"--jobs", jobs});
    Options opt;
    std::string err;
    EXPECT_FALSE(parse_options(a.argc(), a.argv(), &opt, &err)) << jobs;
  }
}

TEST(ParseOptions, ParsesEngineThreadsBothForms) {
  Argv a({"--engine-threads", "4", "--jobs=2"});
  Options opt;
  std::string err;
  ASSERT_TRUE(parse_options(a.argc(), a.argv(), &opt, &err)) << err;
  EXPECT_EQ(opt.engine_threads, 4);
  EXPECT_EQ(opt.jobs, 2);

  Argv b({"--engine-threads=16"});
  ASSERT_TRUE(parse_options(b.argc(), b.argv(), &opt, &err)) << err;
  EXPECT_EQ(opt.engine_threads, 16);
}

TEST(ParseOptions, EngineThreadsDefaultsToSerial) {
  Argv a({});
  Options opt;
  std::string err;
  ASSERT_TRUE(parse_options(a.argc(), a.argv(), &opt, &err)) << err;
  EXPECT_EQ(opt.engine_threads, 1);
}

TEST(ParseOptions, RejectsBadEngineThreadsValues) {
  for (const char* n : {"0", "-1", "x", "4096"}) {
    Argv a({"--engine-threads", n});
    Options opt;
    std::string err;
    EXPECT_FALSE(parse_options(a.argc(), a.argv(), &opt, &err)) << n;
  }
}

TEST(ParseOptions, RejectsBarePositionalArgument) {
  Argv a({"stray"});
  Options opt;
  std::string err;
  EXPECT_FALSE(parse_options(a.argc(), a.argv(), &opt, &err));
}

TEST(ParseOptions, HelpFlagSetsHelp) {
  Argv a({"--help"});
  Options opt;
  std::string err;
  ASSERT_TRUE(parse_options(a.argc(), a.argv(), &opt, &err)) << err;
  EXPECT_TRUE(opt.help);
}

TEST(ParseOptions, PassthroughPrefixCollectsForeignFlags) {
  Argv a({"--quick", "--benchmark_filter=BM_Engine",
          "--benchmark_min_time=0.5"});
  Options opt;
  std::string err;
  ASSERT_TRUE(parse_options(a.argc(), a.argv(), &opt, &err, "--benchmark_"))
      << err;
  EXPECT_TRUE(opt.quick);
  ASSERT_EQ(opt.passthrough.size(), 2u);
  EXPECT_EQ(opt.passthrough[0], "--benchmark_filter=BM_Engine");
  EXPECT_EQ(opt.passthrough[1], "--benchmark_min_time=0.5");
}

TEST(ParseOptions, WithoutPrefixForeignFlagsAreErrors) {
  Argv a({"--benchmark_filter=BM_Engine"});
  Options opt;
  std::string err;
  EXPECT_FALSE(parse_options(a.argc(), a.argv(), &opt, &err));
}

TEST(ParseOptions, ObserveFlagsAndInlineValues) {
  Argv a({"--trace", "t.json", "--trace-cap=4096", "--counters",
          "--filter=spawn"});
  Options opt;
  std::string err;
  ASSERT_TRUE(parse_options(a.argc(), a.argv(), &opt, &err)) << err;
  EXPECT_EQ(opt.trace_path, "t.json");
  EXPECT_EQ(opt.trace_cap, 4096);
  EXPECT_TRUE(opt.counters);
  EXPECT_EQ(opt.filter, "spawn");  // --flag=value form on a string flag
}

TEST(ParseOptions, TraceEqualsFormAndDefaults) {
  Argv a({"--trace=out/trace.json"});
  Options opt;
  std::string err;
  ASSERT_TRUE(parse_options(a.argc(), a.argv(), &opt, &err)) << err;
  EXPECT_EQ(opt.trace_path, "out/trace.json");
  EXPECT_EQ(opt.trace_cap, 1 << 16);
  EXPECT_FALSE(opt.counters);
}

TEST(ParseOptions, RejectsMalformedObserveFlags) {
  const std::vector<std::vector<std::string>> bad = {
      {"--trace"},             // missing value
      {"--trace="},            // empty value
      {"--trace-cap", "0"},    // must be positive
      {"--trace-cap", "-5"},
      {"--trace-cap", "abc"},
      {"--counters=yes"},      // boolean flag takes no value
      {"--quick=1"},
  };
  for (const auto& args : bad) {
    Argv a(args);
    Options opt;
    std::string err;
    EXPECT_FALSE(parse_options(a.argc(), a.argv(), &opt, &err)) << args[0];
    EXPECT_FALSE(err.empty()) << args[0];
  }
}

TEST(ParseOptions, PassthroughPrefixWinsOverEqualsSplitting) {
  // A foreign flag with '=' must be preserved verbatim, not split as if it
  // were one of ours.
  Argv a({"--benchmark_filter=BM_x", "--trace=t.json"});
  Options opt;
  std::string err;
  ASSERT_TRUE(parse_options(a.argc(), a.argv(), &opt, &err, "--benchmark_"))
      << err;
  ASSERT_EQ(opt.passthrough.size(), 1u);
  EXPECT_EQ(opt.passthrough[0], "--benchmark_filter=BM_x");
  EXPECT_EQ(opt.trace_path, "t.json");
}

TEST(Usage, MentionsEveryFlag) {
  const std::string u = emusim::bench::usage("some_bench");
  EXPECT_NE(u.find("usage:"), std::string::npos);
  EXPECT_NE(u.find("some_bench"), std::string::npos);
  for (const char* flag :
       {"--csv", "--json", "--quick", "--filter", "--reps", "--jobs",
        "--trace", "--trace-cap", "--counters", "--help"}) {
    EXPECT_NE(u.find(flag), std::string::npos) << flag;
  }
}

}  // namespace
