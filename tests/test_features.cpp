// Newer model features: NUMA socket penalty (Xeon), value-returning remote
// atomics (Emu), and their interactions.
#include <gtest/gtest.h>

#include "emu/machine.hpp"
#include "emu/runtime/alloc.hpp"
#include "xeon/machine.hpp"

namespace emusim {
namespace {

TEST(XeonNuma, SocketMapping) {
  xeon::Machine m(xeon::SystemConfig::sandy_bridge());
  EXPECT_EQ(m.cfg().sockets, 2);
  EXPECT_EQ(m.socket_of_core(0), 0);
  EXPECT_EQ(m.socket_of_core(7), 0);
  EXPECT_EQ(m.socket_of_core(8), 1);
  EXPECT_EQ(m.socket_of_core(15), 1);
  // Channels interleave across sockets.
  const auto il = m.cfg().channel_interleave_bytes;
  EXPECT_EQ(m.socket_of_addr(0), 0);
  EXPECT_EQ(m.socket_of_addr(il), 1);
  EXPECT_EQ(m.socket_of_addr(2 * il), 0);
}

sim::Task xeon_load(xeon::Machine* m, int core, std::uint64_t addr,
                    Time* done) {
  xeon::CpuContext ctx(*m, core);
  co_await ctx.load(addr);
  *done = m->engine().now();
}

TEST(XeonNuma, RemoteSocketMissesPayTheHop) {
  // A core-0 (socket 0) miss to a socket-1 line costs remote_socket_latency
  // more than a socket-0 line.
  const auto cfg = xeon::SystemConfig::sandy_bridge();
  auto run = [&](std::uint64_t addr) {
    xeon::Machine m(cfg);
    Time done = 0;
    auto t = xeon_load(&m, 0, addr, &done);
    t.start();
    m.engine().run();
    return done;
  };
  const Time local = run(0);                                // socket 0
  const Time remote = run(cfg.channel_interleave_bytes);    // socket 1
  EXPECT_EQ(remote - local, cfg.remote_socket_latency);
}

TEST(XeonNuma, HaswellHasFourSockets) {
  const auto cfg = xeon::SystemConfig::haswell();
  EXPECT_EQ(cfg.sockets, 4);
  xeon::Machine m(cfg);
  EXPECT_EQ(m.socket_of_core(55), 3);
}

sim::Op<> fetch_add_worker(emu::Context& ctx,
                           emu::LocalArray<std::int64_t>* counter, int times) {
  for (int i = 0; i < times; ++i) {
    (*counter)[0] += 1;
    co_await ctx.atomic_fetch_remote(counter->home(), counter->byte_addr(0));
  }
}

TEST(EmuFetchAtomic, DoesNotMigrateButBlocks) {
  emu::Machine m(emu::SystemConfig::chick_hw());
  emu::LocalArray<std::int64_t> counter(m, 1, /*nodelet=*/5);
  counter[0] = 0;
  const Time elapsed = m.run_root([&](emu::Context& ctx) -> sim::Op<> {
    co_await fetch_add_worker(ctx, &counter, 10);
  });
  EXPECT_EQ(counter[0], 10);
  EXPECT_EQ(m.stats.migrations, 0u);
  EXPECT_EQ(m.nodelet(5).stats.atomics_in, 10u);
  // Each fetch-atomic blocks for about one migration-latency round trip.
  EXPECT_GT(elapsed, 10 * m.cfg().migration_latency * 9 / 10);
}

TEST(EmuFetchAtomic, CheaperThanMigratingRoundTrip) {
  // fetch-add to a remote counter vs migrating there and back, per update.
  const auto cfg = emu::SystemConfig::chick_hw();
  Time t_atomic, t_migrate;
  {
    emu::Machine m(cfg);
    emu::LocalArray<std::int64_t> c(m, 1, 5);
    c[0] = 0;
    t_atomic = m.run_root([&](emu::Context& ctx) -> sim::Op<> {
      co_await fetch_add_worker(ctx, &c, 50);
    });
  }
  {
    emu::Machine m(cfg);
    emu::LocalArray<std::int64_t> c(m, 1, 5);
    c[0] = 0;
    t_migrate = m.run_root([&](emu::Context& ctx) -> sim::Op<> {
      for (int i = 0; i < 50; ++i) {
        co_await ctx.migrate_to(5);
        co_await ctx.read_local(c.byte_addr(0), 8);
        c[0] += 1;
        ctx.write_local(c.byte_addr(0), 8);
        co_await ctx.migrate_to(0);
      }
    });
  }
  EXPECT_LT(t_atomic, t_migrate);
}

}  // namespace
}  // namespace emusim
