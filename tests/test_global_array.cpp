// GlobalArray whole-array operations: correctness, locality (no stray
// migrations), and timed-path accounting.
#include "emu/runtime/global_array.hpp"

#include <gtest/gtest.h>

namespace emusim::emu {
namespace {

TEST(GlobalArray, FillWritesEveryElementLocally) {
  Machine m(SystemConfig::chick_hw());
  GlobalArray<std::int64_t> a(m, 1000);
  m.run_root([&](Context& ctx) -> sim::Op<> {
    co_await a.fill(ctx, 7);
  });
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], 7);
  EXPECT_EQ(m.stats.migrations, 0u);
  std::uint64_t writes = 0;
  for (int d = 0; d < m.num_nodelets(); ++d) {
    writes += m.nodelet(d).stats.writes;
  }
  EXPECT_EQ(writes, 1000u);
}

TEST(GlobalArray, TransformAppliesFunction) {
  Machine m(SystemConfig::chick_hw());
  GlobalArray<std::int64_t> a(m, 512);
  m.run_root([&](Context& ctx) -> sim::Op<> {
    co_await a.fill(ctx, 1);
    co_await a.transform(ctx, [](std::size_t i, std::int64_t v) {
      return v + static_cast<std::int64_t>(i);
    });
  });
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], 1 + static_cast<std::int64_t>(i));
  }
}

TEST(GlobalArray, ReduceSumMatchesSerial) {
  Machine m(SystemConfig::chick_hw());
  GlobalArray<std::int64_t> a(m, 777);
  std::int64_t got = 0;
  m.run_root([&](Context& ctx) -> sim::Op<> {
    co_await a.transform(ctx, [](std::size_t i, std::int64_t) {
      return static_cast<std::int64_t>(i * i % 101);
    });
    got = co_await a.reduce_sum(ctx);
  });
  std::int64_t want = 0;
  for (std::size_t i = 0; i < 777; ++i) {
    want += static_cast<std::int64_t>(i * i % 101);
  }
  EXPECT_EQ(got, want);
}

TEST(GlobalArray, HistogramCountsWithoutMigrating) {
  Machine m(SystemConfig::chick_hw());
  GlobalArray<std::int64_t> a(m, 1024);
  std::vector<std::uint64_t> hist;
  m.run_root([&](Context& ctx) -> sim::Op<> {
    co_await a.transform(ctx, [](std::size_t i, std::int64_t) {
      return static_cast<std::int64_t>(i % 100);
    });
    hist = co_await a.histogram(ctx, 0, 100, 10);
  });
  ASSERT_EQ(hist.size(), 10u);
  std::uint64_t total = 0;
  for (auto h : hist) total += h;
  EXPECT_EQ(total, 1024u);
  // 1024 values cycling 0..99: each decade holds ~102-103.
  for (auto h : hist) {
    EXPECT_GE(h, 100u);
    EXPECT_LE(h, 110u);
  }
  EXPECT_EQ(m.stats.migrations, 0u);  // all phases stay home
}

TEST(GlobalArray, DotProductMatchesSerial) {
  Machine m(SystemConfig::chick_hw());
  GlobalArray<std::int64_t> a(m, 300), b(m, 300);
  std::int64_t got = 0;
  m.run_root([&](Context& ctx) -> sim::Op<> {
    co_await a.transform(ctx, [](std::size_t i, std::int64_t) {
      return static_cast<std::int64_t>(i % 7);
    });
    co_await b.transform(ctx, [](std::size_t i, std::int64_t) {
      return static_cast<std::int64_t>(i % 11);
    });
    got = co_await a.dot(ctx, b);
  });
  std::int64_t want = 0;
  for (std::size_t i = 0; i < 300; ++i) {
    want += static_cast<std::int64_t>((i % 7) * (i % 11));
  }
  EXPECT_EQ(got, want);
}

TEST(GlobalArray, OperationsAreDeterministic) {
  auto run = [] {
    Machine m(SystemConfig::chick_hw());
    GlobalArray<std::int64_t> a(m, 256);
    return m.run_root([&](Context& ctx) -> sim::Op<> {
      co_await a.fill(ctx, 3);
      (void)co_await a.reduce_sum(ctx);
    });
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace emusim::emu
