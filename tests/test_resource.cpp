// Queueing primitives: FIFO server timing math, rate gates, semaphores.
#include "sim/resource.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/task.hpp"

namespace emusim::sim {
namespace {

Task one_access(Engine& eng, FifoServer& srv, Time service, Time start_delay,
                std::vector<Time>& done) {
  co_await eng.sleep(start_delay);
  co_await srv.access(service);
  done.push_back(eng.now());
}

TEST(FifoServer, SingleRequestTakesServiceTime) {
  Engine eng;
  FifoServer srv(eng);
  std::vector<Time> done;
  auto t = one_access(eng, srv, ns(10), 0, done);
  t.start();
  eng.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], ns(10));
}

TEST(FifoServer, BackToBackRequestsSerialize) {
  Engine eng;
  FifoServer srv(eng);
  std::vector<Time> done;
  std::vector<Task> ts;
  for (int i = 0; i < 4; ++i) ts.push_back(one_access(eng, srv, ns(10), 0, done));
  for (auto& t : ts) t.start();
  eng.run();
  EXPECT_EQ(done, (std::vector<Time>{ns(10), ns(20), ns(30), ns(40)}));
}

TEST(FifoServer, IdleGapDoesNotAccumulateCredit) {
  Engine eng;
  FifoServer srv(eng);
  std::vector<Time> done;
  auto a = one_access(eng, srv, ns(10), 0, done);
  auto b = one_access(eng, srv, ns(10), ns(100), done);
  a.start();
  b.start();
  eng.run();
  // The second request arrives long after the server went idle; it must not
  // start "in the past".
  EXPECT_EQ(done, (std::vector<Time>{ns(10), ns(110)}));
}

TEST(FifoServer, PostAccountsWithoutSuspending) {
  Engine eng;
  FifoServer srv(eng);
  EXPECT_EQ(srv.post(ns(7)), ns(7));
  EXPECT_EQ(srv.post(ns(3)), ns(10));
  EXPECT_EQ(srv.busy_time(), ns(10));
  EXPECT_EQ(srv.requests(), 2u);
}

TEST(FifoServer, UtilizationAccounting) {
  Engine eng;
  FifoServer srv(eng);
  std::vector<Time> done;
  auto a = one_access(eng, srv, ns(30), 0, done);
  a.start();
  eng.run();
  EXPECT_EQ(srv.busy_time(), ns(30));
}

Task pass_gate(Engine& eng, RateGate& gate, std::vector<Time>& done) {
  co_await gate.pass();
  done.push_back(eng.now());
}

TEST(RateGate, ThroughputCapAndPipelineLatency) {
  Engine eng;
  // 10M items/s => 100 ns interval; 1 us pipeline latency.
  RateGate gate(eng, 10e6, us(1));
  std::vector<Time> done;
  std::vector<Task> ts;
  for (int i = 0; i < 5; ++i) ts.push_back(pass_gate(eng, gate, done));
  for (auto& t : ts) t.start();
  eng.run();
  ASSERT_EQ(done.size(), 5u);
  // Item k leaves the throughput stage at (k+1)*100ns, then rides the
  // pipeline for 1us; latency overlaps across items.
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(done[static_cast<size_t>(k)], ns(100) * (k + 1) + us(1));
  }
  EXPECT_EQ(gate.items(), 5u);
}

TEST(RateGate, SteadyStateThroughputMatchesRate) {
  Engine eng;
  RateGate gate(eng, 1e6, us(2));  // 1M/s
  std::vector<Time> done;
  std::vector<Task> ts;
  constexpr int kN = 1000;
  for (int i = 0; i < kN; ++i) ts.push_back(pass_gate(eng, gate, done));
  for (auto& t : ts) t.start();
  const Time elapsed = eng.run();
  const double rate = kN / to_seconds(elapsed);
  EXPECT_NEAR(rate, 1e6, 0.01e6);
}

Task hold_sem(Engine& eng, Semaphore& sem, Time hold, std::vector<Time>& done) {
  co_await sem.acquire();
  co_await eng.sleep(hold);
  sem.release();
  done.push_back(eng.now());
}

TEST(Semaphore, LimitsConcurrency) {
  Engine eng;
  Semaphore sem(eng, 2);
  std::vector<Time> done;
  std::vector<Task> ts;
  for (int i = 0; i < 6; ++i) ts.push_back(hold_sem(eng, sem, ns(10), done));
  for (auto& t : ts) t.start();
  eng.run();
  // 6 holders, 2 at a time, 10 ns each -> waves at 10, 20, 30 ns.
  EXPECT_EQ(done, (std::vector<Time>{ns(10), ns(10), ns(20), ns(20), ns(30),
                                     ns(30)}));
}

TEST(Semaphore, TryAcquire) {
  Engine eng;
  Semaphore sem(eng, 1);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
  sem.release();
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_EQ(sem.available(), 0);
}

TEST(Semaphore, ReleaseTransfersToWaiterFifo) {
  Engine eng;
  Semaphore sem(eng, 1);
  std::vector<Time> done;
  std::vector<Task> ts;
  for (int i = 0; i < 3; ++i) ts.push_back(hold_sem(eng, sem, ns(5), done));
  for (auto& t : ts) t.start();
  eng.run();
  EXPECT_EQ(done, (std::vector<Time>{ns(5), ns(10), ns(15)}));
  EXPECT_EQ(sem.available(), 1);
  EXPECT_EQ(sem.waiting(), 0u);
}

}  // namespace
}  // namespace emusim::sim
