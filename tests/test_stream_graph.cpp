// Oracle cross-checks for the streaming graph: the host StreamGraph against
// the batch-built graph::from_edge_list oracle, and both timed drivers
// against the host structure (and each other) on small deterministic
// workloads — including under the sharded parallel engine.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "emu/machine.hpp"
#include "graph/stream_graph.hpp"

namespace emusim::graph {
namespace {

std::vector<std::pair<std::uint32_t, std::uint32_t>> as_pairs(
    const std::vector<StreamEdge>& edges, std::size_t begin,
    std::size_t end) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  out.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    out.emplace_back(edges[i].u, edges[i].v);
  }
  return out;
}

StreamParams small_params(EdgeDist dist) {
  StreamParams p;
  p.num_vertices = 128;
  p.inserts = 512;
  p.epochs = 3;
  p.batch = 32;
  p.dist = dist;
  p.degree_queries = 16;
  p.bfs_queries = 1;
  p.threads = 4;
  p.seed = 7;
  return p;
}

TEST(StreamWorkload, DeterministicAndInRange) {
  const StreamParams p = small_params(EdgeDist::rmat);
  const StreamWorkload a = make_stream_workload(p);
  const StreamWorkload b = make_stream_workload(p);
  ASSERT_EQ(a.inserts.size(), p.inserts);
  ASSERT_EQ(a.epochs, p.epochs);
  ASSERT_EQ(a.degree_queries.size(), p.epochs);
  ASSERT_EQ(a.bfs_sources.size(), p.epochs);
  for (std::size_t i = 0; i < a.inserts.size(); ++i) {
    EXPECT_EQ(a.inserts[i].u, b.inserts[i].u);
    EXPECT_EQ(a.inserts[i].v, b.inserts[i].v);
    EXPECT_LT(a.inserts[i].u, p.num_vertices);
    EXPECT_LT(a.inserts[i].v, p.num_vertices);
    EXPECT_NE(a.inserts[i].u, a.inserts[i].v) << "self loop at op " << i;
  }
  for (std::size_t e = 0; e < p.epochs; ++e) {
    EXPECT_EQ(a.degree_queries[e].size(), p.degree_queries);
    EXPECT_EQ(a.bfs_sources[e].size(), p.bfs_queries);
    EXPECT_EQ(a.degree_queries[e], b.degree_queries[e]);
    EXPECT_EQ(a.bfs_sources[e], b.bfs_sources[e]);
  }
  // Epoch boundaries tile [0, inserts) exactly.
  EXPECT_EQ(a.epoch_begin(0), 0u);
  EXPECT_EQ(a.epoch_end(p.epochs - 1), p.inserts);
  for (std::size_t e = 0; e + 1 < p.epochs; ++e) {
    EXPECT_EQ(a.epoch_end(e), a.epoch_begin(e + 1));
  }
}

TEST(StreamWorkload, DuplicateFractionProducesDuplicates) {
  StreamParams p = small_params(EdgeDist::uniform);
  p.inserts = 2048;
  const StreamWorkload w = make_stream_workload(p);
  StreamGraph g(p.num_vertices, 8);
  std::uint64_t dups = 0;
  for (const StreamEdge& e : w.inserts) {
    const bool a = g.insert_half(e.u, e.v);
    const bool b = g.insert_half(e.v, e.u);
    EXPECT_EQ(a, b) << "half-edge commit asymmetry for (" << e.u << ", "
                    << e.v << ")";
    if (!a) ++dups;
  }
  // duplicate_fraction = 0.1 re-emits prior ops; random collisions add a
  // few more.  Anything in a broad band around 10% is healthy.
  const double share = static_cast<double>(dups) / p.inserts;
  EXPECT_GT(share, 0.03);
  EXPECT_LT(share, 0.5);
}

TEST(StreamGraphHost, MatchesBatchOracleAfterEveryEpoch) {
  for (const EdgeDist dist : {EdgeDist::uniform, EdgeDist::rmat}) {
    const StreamParams p = small_params(dist);
    const StreamWorkload w = make_stream_workload(p);
    StreamGraph sg(p.num_vertices, 8);
    for (std::size_t e = 0; e < p.epochs; ++e) {
      for (std::size_t i = w.epoch_begin(e); i < w.epoch_end(e); ++i) {
        sg.insert_half(w.inserts[i].u, w.inserts[i].v);
        sg.insert_half(w.inserts[i].v, w.inserts[i].u);
      }
      const Graph snap = sg.snapshot();
      const Graph oracle = from_edge_list(
          p.num_vertices, as_pairs(w.inserts, 0, w.epoch_end(e)));
      ASSERT_EQ(snap.row_ptr, oracle.row_ptr)
          << to_string(dist) << ": row_ptr diverged after epoch " << e;
      ASSERT_EQ(snap.adj, oracle.adj)
          << to_string(dist) << ": adjacency diverged after epoch " << e;
      EXPECT_TRUE(validate(snap));
      EXPECT_EQ(sg.half_edges(), snap.adj.size());
    }
  }
}

TEST(StreamGraphHost, DuplicateInsertIsANoOp) {
  StreamGraph sg(8, 4);
  EXPECT_TRUE(sg.insert_half(1, 2));
  EXPECT_TRUE(sg.insert_half(2, 1));
  EXPECT_EQ(sg.half_edges(), 2u);
  EXPECT_FALSE(sg.insert_half(1, 2));
  EXPECT_FALSE(sg.insert_half(2, 1));
  EXPECT_EQ(sg.half_edges(), 2u);
  EXPECT_EQ(sg.degree(1), 1u);
  EXPECT_EQ(sg.degree(2), 1u);
}

TEST(StreamGraphHost, HomeStripesByVertexId) {
  StreamGraph sg(64, 8);
  for (std::uint32_t v = 0; v < 64; ++v) {
    EXPECT_EQ(sg.home(v), static_cast<int>(v % 8));
  }
}

// The timed drivers verify themselves against the batch oracle after every
// epoch (StreamResult::verified); these tests assert that contract holds on
// both backends and that the backends commit identical structure.
TEST(StreamDrivers, EmuVerifiedOnBothDistributions) {
  const auto cfg = emu::SystemConfig::chick_hw();
  for (const EdgeDist dist : {EdgeDist::uniform, EdgeDist::rmat}) {
    const StreamParams p = small_params(dist);
    const StreamResult r = stream_emu(cfg, p);
    EXPECT_TRUE(r.verified) << to_string(dist) << ": " << r.error;
    EXPECT_EQ(r.inserts, p.inserts);
    EXPECT_GT(r.new_edges, 0u);
    EXPECT_LT(r.new_edges, r.inserts);  // duplicates must no-op
    EXPECT_GT(r.migrations, 0u);
    EXPECT_GT(r.inserts_per_sec, 0.0);
    EXPECT_EQ(r.lat.overall().count(),
              r.inserts + r.degree_queries + r.bfs_queries);
  }
}

TEST(StreamDrivers, XeonVerifiedOnBothDistributions) {
  const auto cfg = xeon::SystemConfig::sandy_bridge();
  for (const EdgeDist dist : {EdgeDist::uniform, EdgeDist::rmat}) {
    const StreamParams p = small_params(dist);
    const StreamResult r = stream_xeon(cfg, p);
    EXPECT_TRUE(r.verified) << to_string(dist) << ": " << r.error;
    EXPECT_EQ(r.inserts, p.inserts);
    EXPECT_GT(r.new_edges, 0u);
    EXPECT_GT(r.inserts_per_sec, 0.0);
  }
}

TEST(StreamDrivers, BackendsCommitIdenticalStructure) {
  const StreamParams p = small_params(EdgeDist::rmat);
  const StreamResult re = stream_emu(emu::SystemConfig::chick_hw(), p);
  const StreamResult rx = stream_xeon(xeon::SystemConfig::sandy_bridge(), p);
  ASSERT_TRUE(re.verified) << re.error;
  ASSERT_TRUE(rx.verified) << rx.error;
  // Same workload, same dedup semantics: the committed edge set (hence the
  // distinct-edge count) must agree exactly.
  EXPECT_EQ(re.new_edges, rx.new_edges);
  EXPECT_EQ(re.degree_queries, rx.degree_queries);
  EXPECT_EQ(re.bfs_queries, rx.bfs_queries);
}

// The sharded parallel engine must produce the identical simulated result:
// same final time, same committed structure, oracle checks green.
TEST(StreamDrivers, EmuDeterministicUnderEngineThreads) {
  auto cfg = emu::SystemConfig::fullspeed_multinode(2);
  StreamParams p = small_params(EdgeDist::rmat);
  p.inserts = 256;

  const int prev = emu::set_engine_threads(1);
  const StreamResult serial = stream_emu(cfg, p);
  emu::set_engine_threads(2);
  const StreamResult sharded = stream_emu(cfg, p);
  emu::set_engine_threads(prev);

  ASSERT_TRUE(serial.verified) << serial.error;
  ASSERT_TRUE(sharded.verified) << sharded.error;
  EXPECT_EQ(serial.elapsed, sharded.elapsed);
  EXPECT_EQ(serial.insert_time, sharded.insert_time);
  EXPECT_EQ(serial.new_edges, sharded.new_edges);
  EXPECT_EQ(serial.migrations, sharded.migrations);
}

}  // namespace
}  // namespace emusim::graph
