// Parameterized cache-model properties: capacity behaviour, associativity
// conflicts, in-flight ready_at semantics, and stats balance across
// configurations.
#include <gtest/gtest.h>

#include "sim/random.hpp"
#include "xeon/cache.hpp"

namespace emusim::xeon {
namespace {

struct CacheCase {
  std::size_t capacity;
  int ways;
  int line;
};

class CacheProps : public ::testing::TestWithParam<CacheCase> {};

TEST_P(CacheProps, SecondPassOverFittingWorkingSetHits) {
  const auto c = GetParam();
  SetAssocCache cache(c.capacity, c.ways, c.line);
  // Working set at half capacity: insert all, then every lookup must hit.
  const std::size_t lines = c.capacity / static_cast<std::size_t>(c.line) / 2;
  for (std::size_t i = 0; i < lines; ++i) {
    const std::uint64_t addr = i * static_cast<std::uint64_t>(c.line);
    if (cache.lookup(addr) == nullptr) {
      cache.insert(addr, 0, false);
    }
  }
  cache.stats = CacheStats{};
  for (std::size_t i = 0; i < lines; ++i) {
    EXPECT_NE(cache.lookup(i * static_cast<std::uint64_t>(c.line)), nullptr);
  }
  EXPECT_DOUBLE_EQ(cache.stats.hit_rate(), 1.0);
}

TEST_P(CacheProps, OversizedWorkingSetMostlyMisses) {
  const auto c = GetParam();
  SetAssocCache cache(c.capacity, c.ways, c.line);
  // Working set at 4x capacity, two sequential passes: the second pass
  // still misses (LRU has evicted the front by the time we wrap).
  const std::size_t lines = c.capacity / static_cast<std::size_t>(c.line) * 4;
  for (int pass = 0; pass < 2; ++pass) {
    if (pass == 1) cache.stats = CacheStats{};
    for (std::size_t i = 0; i < lines; ++i) {
      const std::uint64_t addr = i * static_cast<std::uint64_t>(c.line);
      if (cache.lookup(addr) == nullptr) {
        cache.insert(addr, 0, false);
      }
    }
  }
  EXPECT_LT(cache.stats.hit_rate(), 0.01);
}

TEST_P(CacheProps, StatsBalance) {
  const auto c = GetParam();
  SetAssocCache cache(c.capacity, c.ways, c.line);
  sim::Rng rng(4);
  const std::uint64_t span = static_cast<std::uint64_t>(c.capacity) * 8;
  std::uint64_t inserts = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t addr = rng.below(span);
    if (cache.lookup(addr) == nullptr) {
      cache.insert(addr, 0, rng.below(2) == 0);
      ++inserts;
    }
  }
  EXPECT_EQ(cache.stats.hits + cache.stats.misses, 20000u);
  EXPECT_EQ(cache.stats.misses, inserts);
  // Evictions can't exceed inserts, writebacks can't exceed evictions.
  EXPECT_LE(cache.stats.evictions, inserts);
  EXPECT_LE(cache.stats.writebacks, cache.stats.evictions);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheProps,
    ::testing::Values(CacheCase{1 << 16, 4, 64}, CacheCase{1 << 16, 16, 64},
                      CacheCase{1 << 20, 8, 64}, CacheCase{1 << 20, 20, 64},
                      CacheCase{1 << 18, 1, 64},  // direct-mapped
                      CacheCase{1 << 16, 8, 128}));

TEST(CacheConflicts, LowAssociativityThrashesOnSetStride) {
  // Addresses hitting one set: a working set of ways+1 lines always misses
  // under LRU, but fits easily in a higher-associativity cache.
  auto run = [](int ways) {
    SetAssocCache cache(64 * 1024, ways, 64);
    const std::uint64_t sets = 64ull * 1024 / 64 / static_cast<unsigned>(ways);
    std::uint64_t set_stride = sets * 64;
    cache.stats = CacheStats{};
    for (int round = 0; round < 50; ++round) {
      for (int k = 0; k < 17; ++k) {
        const std::uint64_t addr = static_cast<std::uint64_t>(k) * set_stride;
        if (cache.lookup(addr) == nullptr) cache.insert(addr, 0, false);
      }
    }
    return cache.stats.hit_rate();
  };
  EXPECT_LT(run(8), 0.05);    // 17 lines in an 8-way set: LRU thrash
  EXPECT_GT(run(32), 0.90);   // fits in a 32-way set
}

TEST(CacheInFlight, ReadyAtPropagatesToHits) {
  SetAssocCache cache(1 << 16, 8, 64);
  cache.insert(0x4000, us(5), false);
  auto* line = cache.lookup(0x4000);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->ready_at, us(5));
  // Re-inserting the same line keeps the earlier availability.
  cache.insert(0x4000, us(9), false);
  EXPECT_EQ(cache.lookup(0x4000)->ready_at, us(5));
}

TEST(CacheInFlight, ReinsertMergesDirtyBit) {
  SetAssocCache cache(1 << 16, 8, 64);
  cache.insert(0x8000, 0, false);
  cache.insert(0x8000, 0, true);  // e.g. a store joins an in-flight fill
  EXPECT_TRUE(cache.lookup(0x8000)->dirty);
}

}  // namespace
}  // namespace emusim::xeon
