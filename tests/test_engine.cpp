// DES engine fundamentals: event ordering, determinism, coroutine sleeps,
// Task lifecycle and completion hooks.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/task.hpp"

namespace emusim::sim {
namespace {

TEST(Engine, StartsAtZeroAndIdle) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0);
  EXPECT_TRUE(eng.idle());
  EXPECT_FALSE(eng.step());
}

TEST(Engine, CallbacksRunInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.call_at(ns(30), [&] { order.push_back(3); });
  eng.call_at(ns(10), [&] { order.push_back(1); });
  eng.call_at(ns(20), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), ns(30));
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.call_at(ns(5), [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, NestedScheduling) {
  Engine eng;
  int fired = 0;
  eng.call_at(ns(10), [&] {
    eng.call_in(ns(5), [&] {
      ++fired;
      EXPECT_EQ(eng.now(), ns(15));
    });
  });
  eng.run();
  EXPECT_EQ(fired, 1);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine eng;
  int fired = 0;
  eng.call_at(ns(10), [&] { ++fired; });
  eng.call_at(ns(100), [&] { ++fired; });
  eng.run_until(ns(50));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(eng.idle());
  eng.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventCountAccumulates) {
  Engine eng;
  for (int i = 0; i < 7; ++i) eng.call_at(i, [] {});
  eng.run();
  EXPECT_EQ(eng.events_processed(), 7u);
}

Task sleeper(Engine& eng, std::vector<Time>& wakeups) {
  co_await eng.sleep(ns(10));
  wakeups.push_back(eng.now());
  co_await eng.sleep(ns(25));
  wakeups.push_back(eng.now());
  co_await eng.sleep(0);
  wakeups.push_back(eng.now());
}

TEST(Task, SleepAdvancesTime) {
  Engine eng;
  std::vector<Time> wakeups;
  auto t = sleeper(eng, wakeups);
  t.start();
  eng.run();
  EXPECT_EQ(wakeups, (std::vector<Time>{ns(10), ns(35), ns(35)}));
}

Task trivial(Engine& eng) { co_await eng.sleep(ns(1)); }

TEST(Task, OnCompleteFiresOnce) {
  Engine eng;
  int completions = 0;
  auto t = trivial(eng);
  t.on_complete([&] { ++completions; });
  t.start();
  eng.run();
  EXPECT_EQ(completions, 1);
}

TEST(Task, UnstartedTaskDoesNotLeakOrFire) {
  Engine eng;
  int completions = 0;
  {
    auto t = trivial(eng);
    t.on_complete([&] { ++completions; });
    // destroyed without start(): the frame must be freed (ASAN would catch
    // a leak) and the hook must not run
  }
  eng.run();
  EXPECT_EQ(completions, 0);
}

TEST(Task, ManyConcurrentTasksDeterministic) {
  auto run_once = [] {
    Engine eng;
    std::vector<Time> wakeups;
    std::vector<Task> tasks;
    for (int i = 0; i < 100; ++i) tasks.push_back(sleeper(eng, wakeups));
    for (auto& t : tasks) t.start();
    eng.run();
    return wakeups;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace emusim::sim
