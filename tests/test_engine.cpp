// DES engine fundamentals: event ordering, determinism, coroutine sleeps,
// Task lifecycle and completion hooks.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/task.hpp"

namespace emusim::sim {
namespace {

TEST(Engine, StartsAtZeroAndIdle) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0);
  EXPECT_TRUE(eng.idle());
  EXPECT_FALSE(eng.step());
}

TEST(Engine, ResetReturnsToPristineState) {
  Engine eng;
  int fired = 0;
  eng.call_at(ns(10), [&] { ++fired; });
  eng.call_at(ns(20), [&] { ++fired; });
  eng.run();
  EXPECT_EQ(fired, 2);
  eng.call_at(ns(99), [&] { ++fired; });  // pending at reset: must be dropped
  eng.reset();
  EXPECT_EQ(eng.now(), 0);
  EXPECT_TRUE(eng.idle());
  EXPECT_EQ(eng.events_processed(), 0u);
  eng.call_at(ns(5), [&] { ++fired; });
  eng.run();
  EXPECT_EQ(fired, 3);  // the pre-reset pending callback never ran
  EXPECT_EQ(eng.now(), ns(5));
}

TEST(Engine, ResetKeepsDeterministicOrdering) {
  // A reused engine must replay the exact event order of a fresh one —
  // this is what lets sweep workers recycle engines between points.
  auto run_once = [](Engine& eng) {
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      eng.call_at(ns(static_cast<long long>(i % 7)),
                  [&order, i] { order.push_back(i); });
    }
    eng.run();
    return order;
  };
  Engine fresh;
  const auto want = run_once(fresh);
  Engine reused;
  run_once(reused);
  reused.reset();
  EXPECT_EQ(run_once(reused), want);
}

TEST(Engine, ReserveGrowsFootprintUpFront) {
  Engine eng;
  eng.reserve(4096);
  const std::size_t before = eng.footprint();
  EXPECT_GE(before, 4096u);
  // A workload within the hint must not grow the footprint further.
  for (int i = 0; i < 4096; ++i) {
    eng.call_at(static_cast<Time>(i), [] {});
  }
  eng.run();
  EXPECT_EQ(eng.footprint(), before);
}

TEST(Engine, FootprintIsAStableReuseHint) {
  // Feeding an engine's own footprint back through reserve() must reach a
  // fixed point: footprint(reserve(footprint())) == footprint().
  Engine first;
  for (int i = 0; i < 1000; ++i) {
    first.call_at(static_cast<Time>(i % 13), [] {});
  }
  first.run();
  const std::size_t hint = first.footprint();
  EXPECT_GT(hint, 0u);
  Engine second;
  second.reserve(hint);
  EXPECT_EQ(second.footprint(), hint);
}

TEST(Engine, CallbacksRunInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.call_at(ns(30), [&] { order.push_back(3); });
  eng.call_at(ns(10), [&] { order.push_back(1); });
  eng.call_at(ns(20), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), ns(30));
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.call_at(ns(5), [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, NestedScheduling) {
  Engine eng;
  int fired = 0;
  eng.call_at(ns(10), [&] {
    eng.call_in(ns(5), [&] {
      ++fired;
      EXPECT_EQ(eng.now(), ns(15));
    });
  });
  eng.run();
  EXPECT_EQ(fired, 1);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine eng;
  int fired = 0;
  eng.call_at(ns(10), [&] { ++fired; });
  eng.call_at(ns(100), [&] { ++fired; });
  eng.run_until(ns(50));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(eng.idle());
  eng.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunUntilAdvancesClockToDeadline) {
  Engine eng;
  int fired = 0;
  eng.call_at(ns(10), [&] { ++fired; });
  // Next event past the deadline: the clock still advances to the deadline,
  // so a caller's subsequent call_at(now() + dt, ...) lands where expected.
  eng.call_at(ns(100), [&] { ++fired; });
  eng.run_until(ns(50));
  EXPECT_EQ(eng.now(), ns(50));
  // Queue drained entirely before the deadline: same guarantee.
  eng.run_until(ns(200));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eng.now(), ns(200));
  eng.run_until(ns(300));
  EXPECT_EQ(eng.now(), ns(300));
  // A deadline in the past never moves time backwards.
  eng.run_until(ns(40));
  EXPECT_EQ(eng.now(), ns(300));
  // Relative scheduling off the clamped clock observes the full interval.
  eng.call_in(ns(5), [&] {
    EXPECT_EQ(eng.now(), ns(305));
    ++fired;
  });
  eng.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, SameTimestampOrderSpansHeapAndFifoLanes) {
  // Events 2 and 3 are scheduled for "now" from inside event 0 and take the
  // zero-delay FIFO fast lane; event 1 was scheduled earlier for the same
  // timestamp and sits in the heap.  Global insertion order must still win:
  // the heap's seq-1 event fires before the FIFO's seq-2/seq-3 events.
  Engine eng;
  std::vector<int> order;
  eng.call_at(ns(10), [&] {
    order.push_back(0);
    eng.call_in(0, [&] { order.push_back(2); });
    eng.call_at(ns(10), [&] { order.push_back(3); });
  });
  eng.call_at(ns(10), [&] { order.push_back(1); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(eng.now(), ns(10));
}

/// Suspend and requeue via schedule_now(): the explicit FIFO entry point.
struct ScheduleNowAwaiter {
  Engine& eng;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const { eng.schedule_now(h); }
  void await_resume() const noexcept {}
};

/// Suspend and requeue via schedule(now(), h): the general entry point fed
/// a same-timestamp event, which must route to the FIFO lane too.
struct ScheduleAtNowAwaiter {
  Engine& eng;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) const {
    eng.schedule(eng.now(), h);
  }
  void await_resume() const noexcept {}
};

Task lane_probe(Engine& eng, std::vector<int>* order, int id, int mode) {
  co_await eng.sleep(ns(10));
  order->push_back(id);
  switch (mode) {
    case 0:
      co_await ScheduleNowAwaiter{eng};
      break;
    case 1:
      co_await ScheduleAtNowAwaiter{eng};
      break;
    default:
      co_await eng.sleep(0);
      break;
  }
  order->push_back(id + 10);
}

TEST(Engine, SameTimestampTiesAcrossAllEntryPoints) {
  // All three ways of queueing work "for the current timestamp" —
  // schedule_now(), schedule(now(), h), and a zero-delay sleep — must obey
  // one global insertion order together with heap-lane events scheduled for
  // the same timestamp in advance.  This is the tie invariant the sharded
  // engine's mailbox merge has to preserve, pinned down on one engine.
  auto run_once = [](Engine& eng) {
    std::vector<int> order;
    eng.call_at(ns(10), [&] { order.push_back(0); });  // heap lane, seq 0
    std::vector<Task> tasks;
    tasks.push_back(lane_probe(eng, &order, 1, 0));  // sleeps: seq 1
    tasks.push_back(lane_probe(eng, &order, 2, 1));  // seq 2
    tasks.push_back(lane_probe(eng, &order, 3, 2));  // seq 3
    for (auto& t : tasks) t.start();
    eng.call_at(ns(10), [&] { order.push_back(4); });  // heap lane, seq 4
    eng.run();
    return order;
  };
  // At ns(10) the heap-lane events fire in seq order (0,1,2,3,4); each probe
  // requeues itself through its FIFO-lane entry point, so the +10 echoes
  // follow in the same relative order.
  const std::vector<int> want{0, 1, 2, 3, 4, 11, 12, 13};
  Engine fresh;
  EXPECT_EQ(run_once(fresh), want);
  // After reset() the seq counter restarts, so a reused engine must replay
  // the identical cross-lane tie order.
  Engine reused;
  run_once(reused);
  reused.reset();
  EXPECT_EQ(run_once(reused), want);
  EXPECT_EQ(reused.now(), ns(10));
}

TEST(Engine, RunWindowAndInjectPreserveOrderAcrossWindows) {
  // run_window(end) processes strictly-before-end events and leaves the
  // clock at the last one; a message injected at the window boundary then
  // interleaves with pre-existing same-timestamp events by seq order.
  Engine eng;
  std::vector<int> fired;
  eng.call_at(ns(10), [&] { fired.push_back(1); });  // seq 0
  eng.call_at(ns(20), [&] { fired.push_back(2); });  // seq 1
  eng.call_at(ns(30), [&] { fired.push_back(3); });  // seq 2
  eng.run_window(ns(20));
  EXPECT_EQ(fired, (std::vector<int>{1}));
  EXPECT_EQ(eng.now(), ns(10));  // not bumped to the window end
  EXPECT_FALSE(eng.idle());
  eng.inject_call(ns(20), SmallFn([&] { fired.push_back(9); }));  // seq 3
  eng.run_window(ns(25));
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 9}));
  eng.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 9, 3}));
  eng.advance_to(ns(100));
  EXPECT_EQ(eng.now(), ns(100));
  eng.advance_to(ns(50));  // never moves time backwards
  EXPECT_EQ(eng.now(), ns(100));
}

Task yield_chain(Engine& eng, std::vector<int>* order, int id, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    order->push_back(id);
    co_await eng.sleep(0);
  }
}

TEST(Engine, ZeroDelayYieldsInterleaveRoundRobin) {
  // Zero-delay sleeps ride the FIFO lane; seq order degenerates to a fair
  // round-robin over the ready tasks, all at one timestamp.
  Engine eng;
  std::vector<int> order;
  std::vector<Task> tasks;
  for (int id = 0; id < 3; ++id) {
    tasks.push_back(yield_chain(eng, &order, id, 3));
  }
  for (auto& t : tasks) t.start();
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 0, 1, 2, 0, 1, 2}));
  EXPECT_EQ(eng.now(), 0);
}

struct CopyCountingCallable {
  int* copies;
  int* invocations;
  CopyCountingCallable(int* c, int* i) : copies(c), invocations(i) {}
  CopyCountingCallable(const CopyCountingCallable& o)
      : copies(o.copies), invocations(o.invocations) {
    ++*copies;
  }
  CopyCountingCallable(CopyCountingCallable&& o) noexcept = default;
  void operator()() { ++*invocations; }
};

TEST(Engine, DispatchNeverCopiesCallbacks) {
  // Regression for the old std::priority_queue engine, which copied the
  // event (and its closure) out of top() before pop on every dispatch.
  Engine eng;
  int copies = 0;
  int invocations = 0;
  // Surround the counted event with neighbors at other timestamps so heap
  // sift-up and sift-down both relocate it.
  for (int i = 0; i < 16; ++i) eng.call_at(ns(i), [] {});
  eng.call_at(ns(8), CopyCountingCallable(&copies, &invocations));
  for (int i = 16; i < 32; ++i) eng.call_at(ns(i), [] {});
  eng.run();
  EXPECT_EQ(invocations, 1);
  EXPECT_EQ(copies, 0);
}

TEST(Engine, OversizedCaptureFallsBackToHeapAndStillFires) {
  // Captures beyond SmallFn's inline budget take the heap-cell fallback;
  // behavior (ordering, invocation) must be identical.
  Engine eng;
  struct Big {
    std::uint64_t payload[12];
  } big{};
  big.payload[11] = 42;
  std::uint64_t seen = 0;
  SmallFn fn = [big, &seen] { seen = big.payload[11]; };
  EXPECT_FALSE(fn.is_inline());
  eng.call_at(ns(1), std::move(fn));
  SmallFn small = [&seen] { ++seen; };
  EXPECT_TRUE(small.is_inline());
  eng.call_at(ns(2), std::move(small));
  eng.run();
  EXPECT_EQ(seen, 43u);
}

TEST(Engine, EventCountAccumulates) {
  Engine eng;
  for (int i = 0; i < 7; ++i) eng.call_at(i, [] {});
  eng.run();
  EXPECT_EQ(eng.events_processed(), 7u);
}

Task sleeper(Engine& eng, std::vector<Time>& wakeups) {
  co_await eng.sleep(ns(10));
  wakeups.push_back(eng.now());
  co_await eng.sleep(ns(25));
  wakeups.push_back(eng.now());
  co_await eng.sleep(0);
  wakeups.push_back(eng.now());
}

TEST(Task, SleepAdvancesTime) {
  Engine eng;
  std::vector<Time> wakeups;
  auto t = sleeper(eng, wakeups);
  t.start();
  eng.run();
  EXPECT_EQ(wakeups, (std::vector<Time>{ns(10), ns(35), ns(35)}));
}

Task trivial(Engine& eng) { co_await eng.sleep(ns(1)); }

TEST(Task, OnCompleteFiresOnce) {
  Engine eng;
  int completions = 0;
  auto t = trivial(eng);
  t.on_complete([&] { ++completions; });
  t.start();
  eng.run();
  EXPECT_EQ(completions, 1);
}

TEST(Task, UnstartedTaskDoesNotLeakOrFire) {
  Engine eng;
  int completions = 0;
  {
    auto t = trivial(eng);
    t.on_complete([&] { ++completions; });
    // destroyed without start(): the frame must be freed (ASAN would catch
    // a leak) and the hook must not run
  }
  eng.run();
  EXPECT_EQ(completions, 0);
}

TEST(Task, ManyConcurrentTasksDeterministic) {
  auto run_once = [] {
    Engine eng;
    std::vector<Time> wakeups;
    std::vector<Task> tasks;
    for (int i = 0; i < 100; ++i) tasks.push_back(sleeper(eng, wakeups));
    for (auto& t : tasks) t.start();
    eng.run();
    return wakeups;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace emusim::sim
