// Property tests for the sparse-optimization ablation: permutation
// round-trips are exact, every SpmvPlan layout preserves the nonzero set,
// and — by the integer-valued construction — y is bit-identical across all
// layouts and both backends.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "kernels/sparse_opt.hpp"
#include "tensor/coo.hpp"

namespace emusim::kernels {
namespace {

SparseMatrix small_matrix(graph::EdgeDist dist, std::uint64_t seed) {
  return make_sparse_matrix(256, 6.0, dist, seed);
}

bool matrices_equal(const SparseMatrix& a, const SparseMatrix& b) {
  return a.rows == b.rows && a.cols == b.cols && a.row_ptr == b.row_ptr &&
         a.col_idx == b.col_idx && a.vals == b.vals;
}

// Multiset of (row, col, val) triples — layout-independent identity of the
// matrix a plan encodes.
std::vector<std::tuple<std::uint32_t, std::uint32_t, double>> plan_triples(
    const SpmvPlan& plan) {
  std::vector<std::tuple<std::uint32_t, std::uint32_t, double>> t;
  // Columns are plan-space too for the reordered layout; map both axes back
  // to original numbering through row_map (symmetric permutation).
  for (const SpmvSegment& s : plan.segments) {
    const std::uint32_t row = plan.row_map[s.out_row];
    for (std::int64_t k = s.begin; k < s.end; ++k) {
      t.emplace_back(row, plan.row_map[plan.col[k]], plan.val[k]);
    }
  }
  std::sort(t.begin(), t.end());
  return t;
}

std::vector<std::tuple<std::uint32_t, std::uint32_t, double>>
matrix_triples(const SparseMatrix& a) {
  std::vector<std::tuple<std::uint32_t, std::uint32_t, double>> t;
  for (std::size_t r = 0; r < a.rows; ++r) {
    for (std::int64_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      t.emplace_back(static_cast<std::uint32_t>(r), a.col_idx[k],
                     a.vals[k]);
    }
  }
  std::sort(t.begin(), t.end());
  return t;
}

TEST(Permutation, InverseComposesToIdentity) {
  const auto a = small_matrix(graph::EdgeDist::rmat, 5);
  const auto perm = degree_order(a);
  const auto inv = invert_permutation(perm);
  ASSERT_EQ(perm.size(), a.rows);
  ASSERT_EQ(inv.size(), a.rows);
  for (std::uint32_t i = 0; i < a.rows; ++i) {
    EXPECT_EQ(perm[inv[perm[i]]], perm[i]);
    EXPECT_EQ(inv[perm[i]], i);
    EXPECT_EQ(perm[inv[i]], i);
  }
}

TEST(Permutation, DegreeOrderIsAPermutationSortedByDegree) {
  const auto a = small_matrix(graph::EdgeDist::rmat, 9);
  const auto perm = degree_order(a);
  std::vector<std::uint32_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::uint32_t> iota(a.rows);
  std::iota(iota.begin(), iota.end(), 0u);
  EXPECT_EQ(sorted, iota);  // a bijection on [0, rows)
  auto deg = [&a](std::uint32_t r) {
    return a.row_ptr[r + 1] - a.row_ptr[r];
  };
  for (std::size_t i = 0; i + 1 < perm.size(); ++i) {
    EXPECT_GE(deg(perm[i]), deg(perm[i + 1])) << "position " << i;
  }
}

TEST(Permutation, ApplyThenInverseRoundTripsCsrExactly) {
  for (const graph::EdgeDist dist :
       {graph::EdgeDist::uniform, graph::EdgeDist::rmat}) {
    const auto a = small_matrix(dist, 13);
    const auto perm = degree_order(a);
    const auto inv = invert_permutation(perm);
    const auto round = permute_symmetric(permute_symmetric(a, perm), inv);
    EXPECT_TRUE(matrices_equal(a, round)) << to_string(dist);
  }
}

TEST(Permutation, SymmetricPermutationPreservesStructuralSymmetry) {
  const auto a = small_matrix(graph::EdgeDist::rmat, 21);
  const auto ap = permute_symmetric(a, degree_order(a));
  EXPECT_EQ(ap.nnz(), a.nnz());
  // The pattern stays symmetric (values are per directed entry, so only
  // structure mirrors): (r, c) present iff (c, r) present.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pat;
  for (const auto& [r, c, v] : matrix_triples(ap)) pat.emplace_back(r, c);
  for (const auto& [r, c] : pat) {
    const auto want = std::make_pair(c, r);
    EXPECT_TRUE(std::binary_search(pat.begin(), pat.end(), want))
        << "lost mirror of (" << r << ", " << c << ")";
  }
}

TEST(SpmvPlan, AllLayoutsEncodeTheSameMatrix) {
  const auto a = small_matrix(graph::EdgeDist::rmat, 3);
  const auto x = make_int_x(a.cols, 4);
  const auto want = matrix_triples(a);
  for (const SparseLayout layout :
       {SparseLayout::csr, SparseLayout::blocked, SparseLayout::reordered}) {
    const auto plan = build_plan(a, x, layout, 64);
    EXPECT_EQ(plan.nnz(), a.nnz()) << to_string(layout);
    EXPECT_EQ(plan.val.size(), plan.col.size()) << to_string(layout);
    EXPECT_EQ(plan_triples(plan), want) << to_string(layout);
    // Segments tile plan order without gaps or overlaps.
    std::int64_t covered = 0;
    for (const auto& s : plan.segments) {
      EXPECT_LT(s.begin, s.end);
      covered += s.end - s.begin;
    }
    EXPECT_EQ(covered, static_cast<std::int64_t>(plan.nnz()));
  }
}

TEST(SpmvPlan, XeonBitIdenticalAcrossLayouts) {
  const auto cfg = xeon::SystemConfig::sandy_bridge();
  for (const graph::EdgeDist dist :
       {graph::EdgeDist::uniform, graph::EdgeDist::rmat}) {
    const auto a = small_matrix(dist, 17);
    const auto x = make_int_x(a.cols, 18);
    const auto want = sparse_reference(a, x);
    for (const SparseLayout layout : {SparseLayout::csr,
                                      SparseLayout::blocked,
                                      SparseLayout::reordered}) {
      const auto plan = build_plan(a, x, layout, 64);
      SparseOptParams p;
      p.plan = &plan;
      p.threads = 4;
      const SparseOptResult r = run_sparse_xeon(cfg, p);
      EXPECT_TRUE(r.verified)
          << to_string(dist) << "/" << to_string(layout);
      // Bit-identical, not approximately equal: integer-valued inputs make
      // every partial sum exact regardless of accumulation order.
      EXPECT_EQ(r.y, want) << to_string(dist) << "/" << to_string(layout);
    }
  }
}

TEST(SpmvPlan, EmuBitIdenticalAcrossLayouts) {
  const auto cfg = emu::SystemConfig::chick_hw();
  const auto a = small_matrix(graph::EdgeDist::rmat, 29);
  const auto x = make_int_x(a.cols, 30);
  const auto want = sparse_reference(a, x);
  for (const SparseLayout layout : {SparseLayout::csr, SparseLayout::blocked,
                                    SparseLayout::reordered}) {
    const auto plan = build_plan(a, x, layout, 64);
    SparseOptParams p;
    p.plan = &plan;
    const SparseOptResult r = run_sparse_emu(cfg, p);
    EXPECT_TRUE(r.verified) << to_string(layout);
    EXPECT_EQ(r.y, want) << to_string(layout);
    EXPECT_GT(r.migrations, 0u) << to_string(layout);
  }
}

TEST(TensorReorder, Mode0SliceReorderPreservesEntries) {
  const auto t0 = tensor::make_random_tensor(32, 32, 32, 512, 5);
  const auto t1 = reorder_mode0_by_slice(t0);
  ASSERT_EQ(t1.i.size(), t0.i.size());
  EXPECT_EQ(t1.dim0, t0.dim0);
  EXPECT_EQ(t1.dim1, t0.dim1);
  EXPECT_EQ(t1.dim2, t0.dim2);
  // Entry multisets match up to the mode-0 relabeling: compare slice
  // fingerprints (count and value-sum per slice, plus j/k multisets).
  auto slice_sizes = [](const tensor::CooTensor& t) {
    std::vector<std::size_t> sz(t.dim0, 0);
    for (const std::uint32_t i : t.i) ++sz[i];
    std::sort(sz.begin(), sz.end());
    return sz;
  };
  EXPECT_EQ(slice_sizes(t1), slice_sizes(t0));
  auto jk = [](const tensor::CooTensor& t) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> v;
    for (std::size_t n = 0; n < t.j.size(); ++n) {
      v.emplace_back(t.j[n], t.k[n]);
    }
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(jk(t1), jk(t0));
  // Slices come out largest-first.
  std::vector<std::size_t> sz(t1.dim0, 0);
  for (const std::uint32_t i : t1.i) ++sz[i];
  for (std::size_t i = 0; i + 1 < sz.size(); ++i) {
    EXPECT_GE(sz[i], sz[i + 1]) << "slice " << i;
  }
  // And the entry stream is re-sorted lexicographically.
  for (std::size_t n = 1; n < t1.i.size(); ++n) {
    const auto prev = std::make_tuple(t1.i[n - 1], t1.j[n - 1], t1.k[n - 1]);
    const auto cur = std::make_tuple(t1.i[n], t1.j[n], t1.k[n]);
    EXPECT_LE(prev, cur) << "entry " << n;
  }
}

}  // namespace
}  // namespace emusim::kernels
