// Unit tests for the online serving frontend: the deterministic request
// generator, the log-bucketed latency recorder, the B+-tree forest, and the
// end-to-end serving drivers on both machine models.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "emu/config.hpp"
#include "serve/service.hpp"
#include "sim/random.hpp"
#include "xeon/config.hpp"

namespace {

using namespace emusim;
using serve::Arrival;
using serve::BTreeFamily;
using serve::BTreeForest;
using serve::LatencyRecorder;
using serve::OpKind;
using serve::PhasedLatency;
using serve::Request;
using serve::StreamParams;
using serve::ZipfSampler;

// --- request generator -----------------------------------------------------

TEST(RequestGen, ZipfEmpiricalFrequenciesMatchTheory) {
  const std::uint64_t n = 1024;
  const double theta = 0.99;
  ZipfSampler zipf(n, theta);
  double harmonic = 0.0;
  for (std::uint64_t r = 1; r <= n; ++r) {
    harmonic += 1.0 / std::pow(static_cast<double>(r), theta);
  }
  const int draws = 200000;
  std::vector<int> counts(8, 0);
  sim::Rng rng(42);
  for (int i = 0; i < draws; ++i) {
    const std::uint64_t r = zipf.rank(rng.uniform());
    ASSERT_LT(r, n);
    if (r < counts.size()) ++counts[static_cast<std::size_t>(r)];
  }
  // The head ranks carry enough mass for tight relative bounds.
  for (std::size_t r = 0; r < counts.size(); ++r) {
    const double expect =
        1.0 / std::pow(static_cast<double>(r + 1), theta) / harmonic;
    const double emp = static_cast<double>(counts[r]) / draws;
    EXPECT_NEAR(emp, expect, 0.1 * expect)
        << "rank " << r << ": empirical " << emp << " vs theoretical "
        << expect;
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[4]);
}

TEST(RequestGen, StreamIsAPureFunctionOfParams) {
  StreamParams p;
  p.process = Arrival::zipf;
  p.requests = 512;
  p.key_space = 1 << 10;
  const auto a = serve::generate_stream(p);
  const auto b = serve::generate_stream(p);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].op, b[i].op);
    EXPECT_EQ(a[i].key, b[i].key);
  }
  p.seed = 2;
  const auto c = serve::generate_stream(p);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].key != c[i].key || a[i].arrival != c[i].arrival;
  }
  EXPECT_TRUE(differs) << "seed change left the stream untouched";
}

TEST(RequestGen, StreamStructureAndKeyParity) {
  StreamParams p;
  p.requests = 640;
  p.batch = 32;
  p.key_space = 1 << 10;
  const auto s = serve::generate_stream(p);
  ASSERT_EQ(s.size(), p.requests);
  int lookups = 0, inserts = 0, scans = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_LT(s[i].key, p.key_space);
    if (i > 0) {
      EXPECT_GE(s[i].arrival, s[i - 1].arrival);
    }
    // Whole batches share one arrival instant.
    if (i % p.batch != 0) {
      EXPECT_EQ(s[i].arrival, s[i - 1].arrival);
    }
    switch (s[i].op) {
      case OpKind::lookup:
        ++lookups;
        EXPECT_EQ(s[i].key % 2, 0u);
        break;
      case OpKind::insert:
        ++inserts;
        EXPECT_EQ(s[i].key % 2, 1u);
        break;
      case OpKind::scan:
        ++scans;
        EXPECT_EQ(s[i].key % 2, 0u);
        EXPECT_EQ(s[i].scan_len, p.scan_len);
        break;
    }
  }
  // 70/20/10 mix, loosely (640 requests).
  EXPECT_NEAR(lookups, 0.70 * 640, 60);
  EXPECT_NEAR(inserts, 0.20 * 640, 50);
  EXPECT_NEAR(scans, 0.10 * 640, 40);
}

TEST(RequestGen, BurstyArrivalsStayInsideTheOnWindow) {
  StreamParams p;
  p.process = Arrival::bursty;
  p.requests = 2048;
  p.mean_interarrival = ns(500);
  const Time period = p.burst_on + p.burst_off;
  const auto s = serve::generate_stream(p);
  for (const Request& r : s) {
    EXPECT_LT(r.arrival % period, p.burst_on)
        << "arrival " << r.arrival << " lands in the off-window";
  }
}

TEST(RequestGen, ClosedLoopKeepsKeySequenceAndCollapsesArrivals) {
  StreamParams open;
  open.process = Arrival::zipf;
  open.requests = 256;
  StreamParams closed = open;
  closed.mean_interarrival = 0;
  const auto a = serve::generate_stream(open);
  const auto b = serve::generate_stream(closed);
  ASSERT_EQ(a.size(), b.size());
  const std::size_t batches = open.requests / open.batch;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Same RNG draw sequence: identical keys and ops, only timing differs.
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].op, b[i].op);
    // Closed loop: gaps clamp to 1 ps, so every batch is available
    // essentially immediately.
    EXPECT_LE(b[i].arrival, static_cast<Time>(batches));
  }
}

// --- latency recorder ------------------------------------------------------

TEST(Latency, PercentilesMatchSortedOracleWithinBucketResolution) {
  LatencyRecorder rec;
  std::vector<Time> vals;
  sim::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    // Mix magnitudes so several octaves are exercised.
    const Time v = static_cast<Time>(rng.below(1000000000ULL)) + 1;
    vals.push_back(v);
    rec.record(v);
  }
  std::sort(vals.begin(), vals.end());
  EXPECT_EQ(rec.count(), vals.size());
  EXPECT_EQ(rec.max(), vals.back());
  for (double q : {0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0}) {
    auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(vals.size())));
    if (rank == 0) rank = 1;
    const Time oracle = vals[rank - 1];
    const Time got = rec.percentile(q);
    EXPECT_GE(got, oracle) << "q=" << q;
    EXPECT_LE(got, oracle + oracle / 32 + 1) << "q=" << q;
  }
  EXPECT_EQ(rec.percentile(1.0), vals.back());
}

TEST(Latency, BucketEdgesCoverPowerOfTwoBoundaries) {
  for (Time v : {Time{0}, Time{1}, Time{31}, Time{32}, Time{33}, Time{63},
                 Time{64}, Time{65}, Time{(1 << 20) - 1}, Time{1 << 20},
                 Time{(1 << 20) + 1}, Time{1} << 40,
                 (Time{1} << 40) + 12345}) {
    const std::size_t i = LatencyRecorder::bucket_of(v);
    ASSERT_LT(i, LatencyRecorder::kNumBuckets) << v;
    const Time upper = LatencyRecorder::bucket_upper(i);
    EXPECT_GE(upper, v) << v;
    // Sub-32 values get exact unit buckets; larger ones a <=1/32 overshoot.
    if (v < static_cast<Time>(LatencyRecorder::kSubBuckets)) {
      EXPECT_EQ(upper, v);
    } else {
      EXPECT_LE(upper - v, v / 32 + 1) << v;
    }
    // Edges are monotone in the bucket index where defined.
    if (i + 1 < LatencyRecorder::kNumBuckets) {
      EXPECT_GT(LatencyRecorder::bucket_upper(i + 1), upper);
    }
  }
}

TEST(Latency, NearestRankMatchesIntegerOracleAtSmallCounts) {
  // At these magnitudes the double product is exact, so a long-double
  // oracle of ceil(q * count) is trustworthy; the integer path must agree.
  for (std::uint64_t count : {1ULL, 2ULL, 3ULL, 10ULL, 100ULL, 9973ULL}) {
    for (double q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
      const auto oracle = static_cast<std::uint64_t>(
          std::ceil(static_cast<long double>(q) *
                    static_cast<long double>(count)));
      const std::uint64_t want = oracle == 0 ? 1 : oracle;
      EXPECT_EQ(LatencyRecorder::nearest_rank(q, count), want)
          << "q=" << q << " count=" << count;
    }
  }
  EXPECT_EQ(LatencyRecorder::nearest_rank(0.95, 100), 95u);
  EXPECT_EQ(LatencyRecorder::nearest_rank(0.5, 7), 4u);
  EXPECT_EQ(LatencyRecorder::nearest_rank(1e-9, 100), 1u);
}

TEST(Latency, NearestRankStaysExactAtExtremeCounts) {
  // The seed computed ceil(q * count) in doubles; at counts near 2^53 the
  // product loses integer resolution and misranks.  The decomposed integer
  // path must stay exact for every uint64 count.
  const std::uint64_t big = (1ULL << 53) + 1;
  // double(big) rounds to 2^53, so the old path would return 2^53 here.
  EXPECT_EQ(LatencyRecorder::nearest_rank(1.0, big), big);
  EXPECT_EQ(LatencyRecorder::nearest_rank(1.0, ~0ULL), ~0ULL);
  // q = 0.5 is an exact double: ceil(count / 2) must be exact too.
  EXPECT_EQ(LatencyRecorder::nearest_rank(0.5, (1ULL << 60) + 1),
            (1ULL << 59) + 1);
  EXPECT_EQ(LatencyRecorder::nearest_rank(0.5, (1ULL << 60)), 1ULL << 59);
  // Exact dyadic q at the very top of the range.
  EXPECT_EQ(LatencyRecorder::nearest_rank(0.25, (1ULL << 62) + 3),
            (1ULL << 60) + 1);
  // A sub-normal-small q can never rank past the first sample.
  EXPECT_EQ(LatencyRecorder::nearest_rank(1e-300, ~0ULL), 1u);
  // Ranks clamp into [1, count] even when rounding lands on the edges.
  for (std::uint64_t count : {1ULL, (1ULL << 53) - 1, (1ULL << 53) + 3}) {
    for (double q : {1e-12, 0.5, 1.0}) {
      const std::uint64_t r = LatencyRecorder::nearest_rank(q, count);
      EXPECT_GE(r, 1u);
      EXPECT_LE(r, count);
    }
  }
  EXPECT_EQ(LatencyRecorder::nearest_rank(0.5, 0), 0u);
}

TEST(Latency, BucketUpperSaturatesAtTheTimeRangeInsteadOfWrapping) {
  constexpr Time kMax = std::numeric_limits<Time>::max();
  // The largest representable value round-trips: its bucket's edge clamps
  // exactly to the Time maximum (the unsaturated formula wraps negative).
  const std::size_t top = LatencyRecorder::bucket_of(kMax);
  ASSERT_LT(top, LatencyRecorder::kNumBuckets);
  EXPECT_EQ(LatencyRecorder::bucket_upper(top), kMax);
  // Every edge — including the top octave's tail past any reachable value —
  // is non-negative, monotone non-decreasing, and capped at the maximum.
  Time prev = 0;
  for (std::size_t i = 0; i < LatencyRecorder::kNumBuckets; ++i) {
    const Time upper = LatencyRecorder::bucket_upper(i);
    EXPECT_GE(upper, 0) << "bucket " << i;
    EXPECT_GE(upper, prev) << "bucket " << i;
    EXPECT_LE(upper, kMax) << "bucket " << i;
    prev = upper;
  }
  EXPECT_EQ(LatencyRecorder::bucket_upper(LatencyRecorder::kNumBuckets - 1),
            kMax);
  // Recording the extreme value keeps percentiles finite and exact-capped.
  LatencyRecorder rec;
  rec.record(kMax);
  rec.record(1);
  EXPECT_EQ(rec.percentile(1.0), kMax);
  EXPECT_EQ(rec.p50(), 1);
}

TEST(Latency, MergeEqualsRecordingEverythingInOneRecorder) {
  LatencyRecorder a, b, all;
  sim::Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const Time v = static_cast<Time>(rng.below(1u << 30));
    ((i % 3 == 0) ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.sum(), all.sum());
  EXPECT_EQ(a.max(), all.max());
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(a.percentile(q), all.percentile(q)) << q;
  }
}

TEST(Latency, PhasedRecorderTracksPhasesAndSerializes) {
  PhasedLatency lat(serve::op_phases());
  lat.record(static_cast<std::size_t>(OpKind::lookup), us(1));
  lat.record(static_cast<std::size_t>(OpKind::lookup), us(2));
  lat.record(static_cast<std::size_t>(OpKind::insert), us(10));
  EXPECT_EQ(lat.overall().count(), 3u);
  EXPECT_EQ(lat.phase(0).count(), 2u);
  EXPECT_EQ(lat.phase(1).count(), 1u);
  EXPECT_EQ(lat.phase(2).count(), 0u);
  EXPECT_EQ(lat.phase_name(1), "insert");

  PhasedLatency other(serve::op_phases());
  other.record(static_cast<std::size_t>(OpKind::scan), us(5));
  lat.merge(other);
  EXPECT_EQ(lat.overall().count(), 4u);
  EXPECT_EQ(lat.phase(2).count(), 1u);

  const report::Json j = lat.to_json();
  ASSERT_NE(j.find("overall"), nullptr);
  const report::Json* phases = j.find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_NE(phases->find("lookup"), nullptr);
  EXPECT_DOUBLE_EQ(phases->find("lookup")->get_number("count"), 2.0);
}

// --- B+-tree forest --------------------------------------------------------

TEST(BTree, ShuffledUpsertsKeepInvariantsAndContents) {
  std::uint64_t next_addr = 0x1000;
  BTreeFamily fam(4, [&next_addr](std::uint64_t bytes) {
    const std::uint64_t a = next_addr;
    next_addr += bytes;
    return a;
  });
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; k < 400; k += 2) keys.push_back(k);
  sim::Rng rng(3);
  rng.shuffle(keys);
  for (std::uint64_t k : keys) {
    const auto out = fam.upsert(k, serve::value_of_key(k));
    EXPECT_TRUE(out.added);
  }
  std::string err;
  ASSERT_TRUE(fam.check_invariants(&err)) << err;
  EXPECT_GT(fam.height(), 1);
  for (std::uint64_t k : keys) {
    std::uint64_t v = 0;
    ASSERT_TRUE(fam.lookup(k, &v)) << k;
    EXPECT_EQ(v, serve::value_of_key(k));
  }
  std::uint64_t v = 0;
  EXPECT_FALSE(fam.lookup(1, &v));

  // Updating an existing key changes the value, not the structure.
  const std::size_t nodes_before = fam.num_nodes();
  const auto upd = fam.upsert(10, 999);
  EXPECT_FALSE(upd.added);
  EXPECT_EQ(fam.num_nodes(), nodes_before);
  ASSERT_TRUE(fam.lookup(10, &v));
  EXPECT_EQ(v, 999u);

  // collect() walks the leaf chain in key order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> all;
  fam.collect(&all);
  ASSERT_EQ(all.size(), keys.size());
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].first, all[i].first);
  }

  // A scan plan visits exactly the requested number of elements.
  std::uint32_t planned = 0;
  for (const auto& step : fam.scan_plan(100, 20)) planned += step.elems;
  EXPECT_EQ(planned, 20u);
}

TEST(BTree, ForestPartitionsKeysAndVerifies) {
  auto alloc = [](int, std::uint64_t) { return std::uint64_t{0x100}; };
  BTreeForest forest(8, 1 << 10, 8, alloc);
  EXPECT_EQ(forest.family_of(0), 0);
  EXPECT_EQ(forest.family_of((1 << 10) - 1), 7);
  EXPECT_EQ(forest.family_of(1 << 7), 1);
  forest.preload_even();
  EXPECT_EQ(forest.total_keys(), static_cast<std::uint64_t>(1 << 9));
  std::string err;
  ASSERT_TRUE(forest.check_all(&err)) << err;

  // verify_forest accepts the preloaded state against an empty stream...
  EXPECT_TRUE(serve::verify_forest(forest, {}, &err)) << err;
  // ...and rejects a forest with a stray key the stream never inserted.
  forest.family(3).upsert(3 * (1 << 7) + 1,
                          serve::value_of_key(3 * (1 << 7) + 1));
  EXPECT_FALSE(serve::verify_forest(forest, {}, &err));
  EXPECT_FALSE(err.empty());
}

// --- serving drivers -------------------------------------------------------

serve::ServeParams small_params(Arrival a) {
  serve::ServeParams p;
  p.stream.process = a;
  p.stream.requests = 256;
  p.stream.batch = 16;
  p.stream.key_space = 1 << 9;
  return p;
}

TEST(ServeDrivers, EmuServesVerifiablyAndDeterministically) {
  const auto cfg = emu::SystemConfig::chick_hw();
  const auto p = small_params(Arrival::zipf);
  const auto r = serve::serve_emu(cfg, p);
  ASSERT_TRUE(r.verified) << r.error;
  EXPECT_EQ(r.ops, p.stream.requests);
  EXPECT_EQ(r.lat.overall().count(), r.ops);
  EXPECT_GT(r.mops_per_sec, 0.0);
  EXPECT_GT(r.elapsed, 0);
  ASSERT_EQ(r.range_ops.size(), 8u);
  std::uint64_t range_total = 0;
  for (auto c : r.range_ops) range_total += c;
  EXPECT_EQ(range_total, r.ops);
  // Zipf concentrates on the lowest key range.
  EXPECT_GT(r.range_ops[0], r.ops / 2);

  const auto r2 = serve::serve_emu(cfg, p);
  EXPECT_EQ(r2.elapsed, r.elapsed);
  EXPECT_DOUBLE_EQ(r2.mops_per_sec, r.mops_per_sec);
  EXPECT_EQ(r2.lat.overall().p99(), r.lat.overall().p99());
}

TEST(ServeDrivers, XeonServesVerifiablyAndDeterministically) {
  const auto cfg = xeon::SystemConfig::sandy_bridge();
  const auto p = small_params(Arrival::uniform);
  const auto r = serve::serve_xeon(cfg, p);
  ASSERT_TRUE(r.verified) << r.error;
  EXPECT_EQ(r.ops, p.stream.requests);
  EXPECT_EQ(r.lat.overall().count(), r.ops);
  EXPECT_GT(r.mops_per_sec, 0.0);
  ASSERT_EQ(r.range_ops.size(), 8u);

  const auto r2 = serve::serve_xeon(cfg, p);
  EXPECT_EQ(r2.elapsed, r.elapsed);
  EXPECT_EQ(r2.lat.overall().p99(), r.lat.overall().p99());
}

TEST(ServeDrivers, BackendsAgreeOnTheStreamSkewCounter) {
  // range_ops counts ops per key range on the *same* generated stream, so
  // the two machine models must agree exactly.
  const auto pe = small_params(Arrival::zipf);
  const auto re = serve::serve_emu(emu::SystemConfig::chick_hw(), pe);
  const auto rx = serve::serve_xeon(xeon::SystemConfig::sandy_bridge(), pe);
  ASSERT_TRUE(re.verified) << re.error;
  ASSERT_TRUE(rx.verified) << rx.error;
  EXPECT_EQ(re.range_ops, rx.range_ops);
  EXPECT_EQ(re.lookups, rx.lookups);
  EXPECT_EQ(re.inserts, rx.inserts);
  EXPECT_EQ(re.scans, rx.scans);
}

}  // namespace
