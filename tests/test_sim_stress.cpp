// Stress and scale tests of the simulation core: large event volumes, deep
// resource contention, fairness, and cross-component determinism.
#include <gtest/gtest.h>

#include "emu/machine.hpp"
#include "emu/runtime/alloc.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace emusim::sim {
namespace {

TEST(EngineStress, HundredThousandEventsInOrder) {
  Engine eng;
  Rng rng(1);
  Time last_seen = -1;
  std::uint64_t fired = 0;
  for (int i = 0; i < 100000; ++i) {
    const Time when = static_cast<Time>(rng.below(1'000'000'000));
    eng.call_at(when, [&, when] {
      EXPECT_GE(when, last_seen);
      last_seen = when;
      ++fired;
    });
  }
  eng.run();
  EXPECT_EQ(fired, 100000u);
}

Task contender(Engine& eng, FifoServer& srv, Rng* rng, int rounds,
               std::uint64_t* completions) {
  for (int i = 0; i < rounds; ++i) {
    co_await srv.access(static_cast<Time>(1 + rng->below(100)));
    co_await eng.sleep(static_cast<Time>(rng->below(50)));
    ++*completions;
  }
}

TEST(EngineStress, ManyCoroutinesOnOneServer) {
  Engine eng;
  FifoServer srv(eng);
  Rng rng(7);
  std::uint64_t completions = 0;
  std::vector<Task> ts;
  for (int i = 0; i < 500; ++i) {
    ts.push_back(contender(eng, srv, &rng, 20, &completions));
  }
  for (auto& t : ts) t.start();
  eng.run();
  EXPECT_EQ(completions, 500u * 20u);
  // Work conservation: the server was busy exactly the sum of services.
  EXPECT_EQ(srv.requests(), 500u * 20u);
  EXPECT_LE(srv.busy_time(), eng.now());
}

Task sem_user(Engine& eng, Semaphore& sem, int rounds, int* peak,
              int* current) {
  for (int i = 0; i < rounds; ++i) {
    co_await sem.acquire();
    ++*current;
    *peak = std::max(*peak, *current);
    co_await eng.sleep(ns(7));
    --*current;
    sem.release();
  }
}

TEST(EngineStress, SemaphoreNeverOversubscribed) {
  Engine eng;
  constexpr int kLimit = 13;
  Semaphore sem(eng, kLimit);
  int peak = 0, current = 0;
  std::vector<Task> ts;
  for (int i = 0; i < 200; ++i) {
    ts.push_back(sem_user(eng, sem, 5, &peak, &current));
  }
  for (auto& t : ts) t.start();
  eng.run();
  EXPECT_LE(peak, kLimit);
  EXPECT_EQ(peak, kLimit);  // under load it should reach the limit
  EXPECT_EQ(sem.available(), kLimit);
}

TEST(EngineStress, RateGateConservesItems) {
  Engine eng;
  RateGate gate(eng, 5e6, us(3));
  std::uint64_t passed = 0;
  std::vector<Task> ts;
  struct Runner {
    static Task go(Engine& eng, RateGate& g, std::uint64_t* n) {
      for (int i = 0; i < 50; ++i) {
        co_await g.pass();
        ++*n;
      }
      (void)eng;
    }
  };
  for (int i = 0; i < 64; ++i) ts.push_back(Runner::go(eng, gate, &passed));
  for (auto& t : ts) t.start();
  const Time elapsed = eng.run();
  EXPECT_EQ(passed, 64u * 50u);
  // Saturated: total time ~ items/rate (+ pipeline tail).
  const double expected = 64.0 * 50.0 / 5e6;
  EXPECT_NEAR(to_seconds(elapsed), expected, 0.1 * expected + 5e-6);
}

// A mixed Emu workload reusing every resource type at once must stay
// deterministic and conserve its counters.
sim::Op<> mixed_worker(emu::Context& ctx, emu::Striped1D<std::int64_t>* arr,
                       std::uint64_t seed, std::int64_t* sum) {
  Rng rng(seed);
  for (int i = 0; i < 40; ++i) {
    const auto idx = static_cast<std::size_t>(rng.below(arr->size()));
    const int h = arr->home(idx);
    if (h != ctx.nodelet()) co_await ctx.migrate_to(h);
    co_await ctx.issue(1 + rng.below(30));
    co_await ctx.read_local(arr->byte_addr(idx), 8);
    *sum += (*arr)[idx];
    if (rng.below(4) == 0) {
      ctx.write_remote(arr->home(0), arr->byte_addr(0), 8);
    }
  }
}

TEST(EngineStress, MixedEmuWorkloadDeterministicAndBalanced) {
  auto run = [](std::uint64_t* migrations, std::int64_t* sum) {
    emu::Machine m(emu::SystemConfig::chick_hw());
    emu::Striped1D<std::int64_t> arr(m, 4096);
    for (std::size_t i = 0; i < arr.size(); ++i) {
      arr[i] = static_cast<std::int64_t>(i % 97);
    }
    const Time t = m.run_root([&](emu::Context& ctx) -> sim::Op<> {
      for (int w = 0; w < 200; ++w) {
        co_await ctx.spawn_at(w % 8, [&arr, w, sum](emu::Context& c) {
          return mixed_worker(c, &arr, static_cast<std::uint64_t>(w), sum);
        });
      }
      co_await ctx.sync();
    });
    *migrations = m.stats.migrations;
    // Residency balances back to zero everywhere.
    for (int d = 0; d < m.num_nodelets(); ++d) {
      EXPECT_EQ(m.nodelet(d).stats.resident, 0);
    }
    EXPECT_EQ(m.stats.threads_completed, 201u);
    return t;
  };
  std::uint64_t mig_a = 0, mig_b = 0;
  std::int64_t sum_a = 0, sum_b = 0;
  const Time ta = run(&mig_a, &sum_a);
  const Time tb = run(&mig_b, &sum_b);
  EXPECT_EQ(ta, tb);
  EXPECT_EQ(mig_a, mig_b);
  EXPECT_EQ(sum_a, sum_b);
}

}  // namespace
}  // namespace emusim::sim
