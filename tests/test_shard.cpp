// The windowed parallel engine (sim::EngineSet) and the machine-level
// determinism contract: the worker-thread count may change wall-clock
// behavior but never the simulation — timings, stats, and traces are
// byte-identical between serial and threaded runs.
#include "sim/shard.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "emu/machine.hpp"
#include "emu/runtime/global_array.hpp"
#include "emu/runtime/parallel.hpp"
#include "kernels/gups.hpp"

namespace emusim {
namespace {

using emu::Context;
using emu::Machine;
using emu::SystemConfig;

TEST(EngineSet, SingleShardDegeneratesToSerialRun) {
  sim::EngineSet set(1);
  std::vector<int> order;
  set.shard(0).call_at(us(1), [&order] { order.push_back(1); });
  set.shard(0).call_at(ns(10), [&order] { order.push_back(0); });
  // With one shard the thread count is irrelevant; this is Engine::run().
  const Time t = set.run(us(1), 8);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(t, us(1));
  EXPECT_EQ(set.shard(0).now(), us(1));
}

TEST(EngineSet, EmptySetFinishesAtTimeZero) {
  sim::EngineSet set(3);
  EXPECT_EQ(set.run(us(1), 2), 0);
}

/// Cross-shard messages drain in canonical order — per destination,
/// stable-sorted by timestamp with source-major tie order — regardless of
/// how many worker threads ran the windows.
std::vector<int> canonical_order_run(int threads) {
  constexpr std::size_t kShards = 4;
  const Time L = us(1);
  const Time t0 = ns(100);
  sim::EngineSet set(kShards);
  std::vector<int> order;
  for (std::size_t s = 1; s < kShards; ++s) {
    set.shard(s).call_at(t0, [&set, &order, s, L] {
      // Post the later-timestamped message first: the drain's stable sort
      // must still deliver the +L pair (source-major) before the +2L pair.
      set.post_call(s, 0, ns(100) + 2 * L,
                    sim::SmallFn([&order, s] { order.push_back(20 + static_cast<int>(s)); }));
      set.post_call(s, 0, ns(100) + L,
                    sim::SmallFn([&order, s] { order.push_back(10 + static_cast<int>(s)); }));
    });
  }
  set.run(L, threads);
  return order;
}

TEST(EngineSet, CanonicalCrossShardDrainOrder) {
  const std::vector<int> want = {11, 12, 13, 21, 22, 23};
  EXPECT_EQ(canonical_order_run(1), want);
  EXPECT_EQ(canonical_order_run(2), want);
  EXPECT_EQ(canonical_order_run(4), want);
  EXPECT_EQ(canonical_order_run(16), want);  // clamped to shard count
}

TEST(EngineSet, ResetDropsPendingCrossShardMessages) {
  sim::EngineSet set(2);
  int fired = 0;
  set.post_call(0, 1, us(5), sim::SmallFn([&fired] { ++fired; }));
  set.reset();
  EXPECT_EQ(set.run(us(1), 2), 0);
  EXPECT_EQ(fired, 0);
}

/// A mixed multi-node workload touching every cross-shard path: remote
/// spawns, fetch-atomic round trips, fire-and-forget remote atomics,
/// remote writes, inter-node migrations, and cross-shard parent sync.
struct RunOut {
  Time elapsed = 0;
  std::uint64_t migrations = 0;
  std::uint64_t internode = 0;
  std::uint64_t spawns = 0;
  std::uint64_t remote_spawns = 0;
  std::uint64_t completed = 0;
  std::uint64_t mig_count = 0;
  double mig_mean = 0.0;
  std::vector<sim::TraceRecord> trace;

  bool operator==(const RunOut& o) const {
    if (elapsed != o.elapsed || migrations != o.migrations ||
        internode != o.internode || spawns != o.spawns ||
        remote_spawns != o.remote_spawns || completed != o.completed ||
        mig_count != o.mig_count || mig_mean != o.mig_mean ||
        trace.size() != o.trace.size()) {
      return false;
    }
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const auto& a = trace[i];
      const auto& b = o.trace[i];
      if (a.t != b.t || a.kind != b.kind || a.a != b.a || a.b != b.b ||
          a.tid != b.tid || a.arg != b.arg) {
        return false;
      }
    }
    return true;
  }
};

RunOut run_mixed_workload(const SystemConfig& cfg, int threads) {
  const int prev = emu::set_engine_threads(threads);
  Machine m(cfg);
  m.trace.enable(1u << 16);
  const Time elapsed = m.run_root([&m](Context& ctx) -> sim::Op<> {
    const int n = m.num_nodelets();
    co_await emu::on_each_nodelet(ctx, [n](Context& c) -> sim::Op<> {
      const int here = c.nodelet();
      const int far = (here + n / 2) % n;
      co_await c.atomic_fetch_remote(far, 64);
      c.atomic_remote((here + 1) % n, 128);
      c.write_remote(far, 8, 256);
      co_await c.migrate_to(far);
      co_await c.issue(10);
      co_await c.migrate_to(here);
    });
  });
  RunOut o;
  o.elapsed = elapsed;
  o.migrations = m.stats.migrations;
  o.internode = m.stats.internode_migrations;
  o.spawns = m.stats.spawns;
  o.remote_spawns = m.stats.remote_spawns;
  o.completed = m.stats.threads_completed;
  o.mig_count = m.stats.migration_latency_ns.count();
  o.mig_mean = m.stats.migration_latency_ns.summary().mean();
  o.trace = m.trace.records();
  emu::set_engine_threads(prev);
  return o;
}

TEST(ShardedMachine, ThreadCountNeverChangesResults) {
  const SystemConfig cfg = SystemConfig::fullspeed_multinode(4);
  const RunOut serial = run_mixed_workload(cfg, 1);
  EXPECT_GT(serial.elapsed, 0);
  EXPECT_GT(serial.internode, 0u);
  EXPECT_FALSE(serial.trace.empty());
  EXPECT_TRUE(serial == run_mixed_workload(cfg, 2));
  EXPECT_TRUE(serial == run_mixed_workload(cfg, 3));
  EXPECT_TRUE(serial == run_mixed_workload(cfg, 4));
  EXPECT_TRUE(serial == run_mixed_workload(cfg, 64));
}

TEST(ShardedMachine, SingleNodeIgnoresEngineThreads) {
  const SystemConfig cfg = SystemConfig::chick_fullspeed();
  const RunOut serial = run_mixed_workload(cfg, 1);
  EXPECT_TRUE(serial == run_mixed_workload(cfg, 8));
}

TEST(ShardedMachine, CrossNodeSyncWaitsForAllChildren) {
  const SystemConfig cfg = SystemConfig::fullspeed_multinode(4);
  Machine m(cfg);
  const int nodelets = m.num_nodelets();
  std::vector<int> visited(static_cast<std::size_t>(nodelets), 0);
  m.run_root([&](Context& ctx) -> sim::Op<> {
    // One child per node card, plus checks that sync really joined them.
    for (int node = 0; node < m.cfg().nodes; ++node) {
      const int target = node * m.cfg().nodelets_per_node;
      co_await ctx.spawn_at(target, [&visited](Context& c) -> sim::Op<> {
        co_await c.issue(100);
        ++visited[static_cast<std::size_t>(c.nodelet())];
      });
    }
    co_await ctx.sync();
    EXPECT_EQ(ctx.live_children(), 0);
  });
  EXPECT_EQ(m.stats.threads_completed,
            static_cast<std::uint64_t>(m.cfg().nodes) + 1);  // children + root
  for (int node = 0; node < m.cfg().nodes; ++node) {
    EXPECT_EQ(visited[static_cast<std::size_t>(node * m.cfg().nodelets_per_node)],
              1);
  }
}

/// The histogram path exercises the apply-lambda remote atomics: the bin
/// increments execute on the owning shard at delivery, and the collective
/// still returns correct, thread-count-independent counts.
std::vector<std::uint64_t> run_histogram(const SystemConfig& cfg, int threads) {
  const int prev = emu::set_engine_threads(threads);
  std::vector<std::uint64_t> out;
  {
    Machine m(cfg);
    emu::GlobalArray<std::int64_t> a(m, 512);
    m.run_root([&](Context& ctx) -> sim::Op<> {
      co_await a.transform(ctx, [](std::size_t i, std::int64_t) {
        return static_cast<std::int64_t>(i % 16);
      });
      out = co_await a.histogram(ctx, 0, 16, 16);
    });
  }
  emu::set_engine_threads(prev);
  return out;
}

TEST(ShardedMachine, HistogramRemoteAtomicsAreExactAndDeterministic) {
  const SystemConfig cfg = SystemConfig::fullspeed_multinode(2);
  const auto serial = run_histogram(cfg, 1);
  ASSERT_EQ(serial.size(), 16u);
  for (const auto& count : serial) EXPECT_EQ(count, 512u / 16u);
  EXPECT_EQ(serial, run_histogram(cfg, 2));
}

TEST(ShardedMachine, GupsVerifiesAcrossNodesAndThreadCounts) {
  const SystemConfig cfg = SystemConfig::fullspeed_multinode(2);
  kernels::GupsParams p;
  p.table_words = 1u << 10;
  p.updates = 1u << 12;
  p.threads = 32;
  const int prev = emu::set_engine_threads(1);
  const auto serial = kernels::run_gups_emu(cfg, p);
  emu::set_engine_threads(2);
  const auto threaded = kernels::run_gups_emu(cfg, p);
  emu::set_engine_threads(prev);
  EXPECT_TRUE(serial.verified);
  EXPECT_TRUE(threaded.verified);
  EXPECT_EQ(serial.elapsed, threaded.elapsed);
  EXPECT_EQ(serial.migrations, threaded.migrations);
}

}  // namespace
}  // namespace emusim
