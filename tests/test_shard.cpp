// The windowed parallel engine (sim::EngineSet) and the machine-level
// determinism contract: the worker-thread count may change wall-clock
// behavior but never the simulation — timings, stats, and traces are
// byte-identical between serial and threaded runs.
#include "sim/shard.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "emu/machine.hpp"
#include "emu/runtime/global_array.hpp"
#include "emu/runtime/parallel.hpp"
#include "kernels/gups.hpp"

namespace emusim {
namespace {

using emu::Context;
using emu::Machine;
using emu::SystemConfig;

TEST(EngineSet, SingleShardDegeneratesToSerialRun) {
  sim::EngineSet set(1);
  std::vector<int> order;
  set.shard(0).call_at(us(1), [&order] { order.push_back(1); });
  set.shard(0).call_at(ns(10), [&order] { order.push_back(0); });
  // With one shard the thread count is irrelevant; this is Engine::run().
  const Time t = set.run(us(1), 8);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_EQ(t, us(1));
  EXPECT_EQ(set.shard(0).now(), us(1));
}

TEST(EngineSet, EmptySetFinishesAtTimeZero) {
  sim::EngineSet set(3);
  EXPECT_EQ(set.run(us(1), 2), 0);
}

/// Cross-shard messages drain in canonical order — per destination,
/// stable-sorted by timestamp with source-major tie order — regardless of
/// how many worker threads ran the windows.
std::vector<int> canonical_order_run(int threads) {
  constexpr std::size_t kShards = 4;
  const Time L = us(1);
  const Time t0 = ns(100);
  sim::EngineSet set(kShards);
  std::vector<int> order;
  for (std::size_t s = 1; s < kShards; ++s) {
    set.shard(s).call_at(t0, [&set, &order, s, L] {
      // Post the later-timestamped message first: the drain's stable sort
      // must still deliver the +L pair (source-major) before the +2L pair.
      set.post_call(s, 0, ns(100) + 2 * L,
                    sim::SmallFn([&order, s] { order.push_back(20 + static_cast<int>(s)); }));
      set.post_call(s, 0, ns(100) + L,
                    sim::SmallFn([&order, s] { order.push_back(10 + static_cast<int>(s)); }));
    });
  }
  set.run(L, threads);
  return order;
}

TEST(EngineSet, CanonicalCrossShardDrainOrder) {
  const std::vector<int> want = {11, 12, 13, 21, 22, 23};
  EXPECT_EQ(canonical_order_run(1), want);
  EXPECT_EQ(canonical_order_run(2), want);
  EXPECT_EQ(canonical_order_run(4), want);
  EXPECT_EQ(canonical_order_run(16), want);  // clamped to shard count
}

TEST(EngineSet, ResetDropsPendingCrossShardMessages) {
  sim::EngineSet set(2);
  int fired = 0;
  set.post_call(0, 1, us(5), sim::SmallFn([&fired] { ++fired; }));
  set.reset();
  EXPECT_EQ(set.run(us(1), 2), 0);
  EXPECT_EQ(fired, 0);
}

/// Flat mode fast-forwards over event-free gaps: a chain of posts spaced
/// milliseconds apart under a microsecond lookahead opens a handful of
/// windows, not thousands of empty ones.
TEST(EngineSet, FlatWindowPlannerFastForwardsEmptyGaps) {
  auto run_chain = [](int threads) {
    sim::EngineSet set(3);
    std::vector<int> order;
    set.shard(0).call_at(ns(100), [&set, &order] {
      order.push_back(0);
      set.post_call(0, 1, ms(1),
                    sim::SmallFn([&set, &order] {
                      order.push_back(1);
                      set.post_call(1, 2, ms(2),
                                    sim::SmallFn([&order] { order.push_back(2); }));
                    }));
    });
    const Time t = set.run(us(1), threads);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(t, ms(2));
    // Fixed-width marching would need ~2000 windows to cover 2 ms at 1 us.
    EXPECT_LE(set.outer_windows(), 5u);
    return set.outer_windows();
  };
  const auto serial = run_chain(1);
  EXPECT_EQ(serial, run_chain(3));
}

/// Hierarchical drains stay canonical: intra-group posts (inner lookahead)
/// and cross-group posts (outer lookahead) deliver per destination in
/// stable timestamp order with source-major ties, for any thread count —
/// including thread counts that split one group across a team.
std::pair<std::vector<int>, std::pair<std::uint64_t, std::uint64_t>>
hierarchical_order_run(int threads) {
  constexpr std::size_t kShards = 4;  // two groups of two
  const Time inner = ns(100);
  const Time outer = us(1);
  sim::EngineSet set(kShards);
  set.set_hierarchy(2, inner);
  std::vector<int> order;
  // Shard 1 posts intra-group to shard 0; shards 2 and 3 post cross-group
  // to shard 0 at an equal timestamp (source-major tie).  Shard 0's
  // delivery at +inner then posts cross-group back to shard 3.
  set.shard(1).call_at(ns(10), [&set, &order] {
    order.push_back(1);
    set.post_call(1, 0, ns(10) + ns(100), sim::SmallFn([&set, &order] {
                    order.push_back(10);
                    set.post_call(0, 3, ns(110) + us(1),
                                  sim::SmallFn([&order] { order.push_back(3); }));
                  }));
  });
  // us(3) keeps these deliveries in a later outer window than shard 3's, so
  // recorded pushes never straddle two shards inside one window (shards of a
  // window run concurrently under threads > 1).
  set.shard(2).call_at(ns(10), [&set, &order] {
    set.post_call(2, 0, us(3), sim::SmallFn([&order] { order.push_back(20); }));
  });
  set.shard(3).call_at(ns(10), [&set, &order] {
    set.post_call(3, 0, us(3), sim::SmallFn([&order] { order.push_back(30); }));
  });
  set.run(outer, threads);
  return {order, {set.outer_windows(), set.inner_windows()}};
}

TEST(EngineSet, HierarchicalCanonicalDrainOrder) {
  const auto serial = hierarchical_order_run(1);
  EXPECT_EQ(serial.first, (std::vector<int>{1, 10, 3, 20, 30}));
  EXPECT_GT(serial.second.first, 0u);   // outer windows opened
  EXPECT_GT(serial.second.second, 0u);  // inner windows opened
  EXPECT_EQ(serial, hierarchical_order_run(2));  // one worker per group
  EXPECT_EQ(serial, hierarchical_order_run(3));  // uneven teams
  EXPECT_EQ(serial, hierarchical_order_run(4));  // full team per group
  EXPECT_EQ(serial, hierarchical_order_run(16));  // clamped
}

/// Same-timestamp intra-group ties resolve source-major across inner
/// barriers even when the whole group runs as one team (threads > groups).
TEST(EngineSet, InnerWindowSameTimestampTieOrder) {
  auto run_ties = [](int threads) {
    sim::EngineSet set(4);
    set.set_hierarchy(4, ns(100));  // one group holding every shard
    std::vector<int> order;
    for (std::size_t s = 1; s < 4; ++s) {
      set.shard(s).call_at(ns(10), [&set, &order, s] {
        set.post_call(s, 0, ns(10) + ns(100), sim::SmallFn([&order, s] {
                        order.push_back(static_cast<int>(s));
                      }));
      });
    }
    set.run(us(1), threads);
    return order;
  };
  const std::vector<int> want = {1, 2, 3};
  EXPECT_EQ(run_ties(1), want);
  EXPECT_EQ(run_ties(2), want);
  EXPECT_EQ(run_ties(4), want);
}

/// group_size == 1 is flat mode by definition; group_size == shards() is a
/// single group whose inner windows do all the work.  Both must agree with
/// plain flat windowing on a cross-shard chain where every post pays the
/// outer lookahead.
TEST(EngineSet, HierarchyDegeneracies) {
  auto run_chain = [](std::size_t group_size, int threads) {
    sim::EngineSet set(4);
    if (group_size > 1) set.set_hierarchy(group_size, us(1));
    std::vector<int> order;
    set.shard(0).call_at(ns(10), [&set, &order] {
      order.push_back(0);
      set.post_call(0, 3, ns(10) + us(1), sim::SmallFn([&set, &order] {
                      order.push_back(3);
                      set.post_call(3, 1, ns(10) + 2 * us(1),
                                    sim::SmallFn([&order] { order.push_back(1); }));
                    }));
    });
    const Time t = set.run(us(1), threads);
    EXPECT_EQ(t, ns(10) + 2 * us(1));
    return order;
  };
  const std::vector<int> want = {0, 3, 1};
  EXPECT_EQ(run_chain(1, 1), want);  // flat
  EXPECT_EQ(run_chain(1, 4), want);
  EXPECT_EQ(run_chain(4, 1), want);  // one group == whole set
  EXPECT_EQ(run_chain(4, 4), want);
}

/// The worker pool persists across run() invocations: a second run on the
/// same set (same thread count, same layout) reuses the parked threads and
/// still drains canonically.
TEST(EngineSet, PersistentPoolReusedAcrossRuns) {
  sim::EngineSet set(4);
  set.set_hierarchy(2, ns(100));
  std::vector<int> order;
  set.shard(0).call_at(ns(10), [&set, &order] {
    set.post_call(0, 2, us(2), sim::SmallFn([&order] { order.push_back(2); }));
  });
  set.run(us(1), 4);
  EXPECT_EQ(order, (std::vector<int>{2}));
  // Second run, later events: the pool wakes by epoch, barriers stay
  // phase-aligned, and the clocks keep advancing monotonically.
  const Time t1 = set.shard(0).now();
  set.shard(1).call_at(t1 + ns(10), [&set, &order, t1] {
    set.post_call(1, 3, t1 + us(2), sim::SmallFn([&order] { order.push_back(3); }));
  });
  const Time t2 = set.run(us(1), 4);
  EXPECT_EQ(order, (std::vector<int>{2, 3}));
  EXPECT_GT(t2, t1);
  // A different thread count rebuilds the pool rather than misusing it.
  const Time t3 = set.shard(2).now();
  set.shard(2).call_at(t3 + ns(10), [&set, &order, t3] {
    set.post_call(2, 0, t3 + us(2), sim::SmallFn([&order] { order.push_back(0); }));
  });
  set.run(us(1), 2);
  EXPECT_EQ(order, (std::vector<int>{2, 3, 0}));
}

/// A mixed multi-node workload touching every cross-shard path: remote
/// spawns, fetch-atomic round trips, fire-and-forget remote atomics,
/// remote writes, inter-node migrations, and cross-shard parent sync.
struct RunOut {
  Time elapsed = 0;
  std::uint64_t migrations = 0;
  std::uint64_t internode = 0;
  std::uint64_t spawns = 0;
  std::uint64_t remote_spawns = 0;
  std::uint64_t completed = 0;
  std::uint64_t mig_count = 0;
  double mig_mean = 0.0;
  std::vector<sim::TraceRecord> trace;

  bool operator==(const RunOut& o) const {
    if (elapsed != o.elapsed || migrations != o.migrations ||
        internode != o.internode || spawns != o.spawns ||
        remote_spawns != o.remote_spawns || completed != o.completed ||
        mig_count != o.mig_count || mig_mean != o.mig_mean ||
        trace.size() != o.trace.size()) {
      return false;
    }
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const auto& a = trace[i];
      const auto& b = o.trace[i];
      if (a.t != b.t || a.kind != b.kind || a.a != b.a || a.b != b.b ||
          a.tid != b.tid || a.arg != b.arg) {
        return false;
      }
    }
    return true;
  }
};

RunOut run_mixed_workload(const SystemConfig& cfg, int threads,
                          emu::EngineShard shard = emu::EngineShard::node) {
  const int prev = emu::set_engine_threads(threads);
  const emu::EngineShard prev_shard = emu::set_engine_shard(shard);
  Machine m(cfg);
  m.trace.enable(1u << 16);
  const Time elapsed = m.run_root([&m](Context& ctx) -> sim::Op<> {
    const int n = m.num_nodelets();
    co_await emu::on_each_nodelet(ctx, [n](Context& c) -> sim::Op<> {
      const int here = c.nodelet();
      const int far = (here + n / 2) % n;
      co_await c.atomic_fetch_remote(far, 64);
      c.atomic_remote((here + 1) % n, 128);
      c.write_remote(far, 8, 256);
      co_await c.migrate_to(far);
      co_await c.issue(10);
      co_await c.migrate_to(here);
    });
  });
  RunOut o;
  o.elapsed = elapsed;
  o.migrations = m.stats.migrations;
  o.internode = m.stats.internode_migrations;
  o.spawns = m.stats.spawns;
  o.remote_spawns = m.stats.remote_spawns;
  o.completed = m.stats.threads_completed;
  o.mig_count = m.stats.migration_latency_ns.count();
  o.mig_mean = m.stats.migration_latency_ns.summary().mean();
  o.trace = m.trace.records();
  emu::set_engine_threads(prev);
  emu::set_engine_shard(prev_shard);
  return o;
}

TEST(ShardedMachine, ThreadCountNeverChangesResults) {
  const SystemConfig cfg = SystemConfig::fullspeed_multinode(4);
  const RunOut serial = run_mixed_workload(cfg, 1);
  EXPECT_GT(serial.elapsed, 0);
  EXPECT_GT(serial.internode, 0u);
  EXPECT_FALSE(serial.trace.empty());
  EXPECT_TRUE(serial == run_mixed_workload(cfg, 2));
  EXPECT_TRUE(serial == run_mixed_workload(cfg, 3));
  EXPECT_TRUE(serial == run_mixed_workload(cfg, 4));
  EXPECT_TRUE(serial == run_mixed_workload(cfg, 64));
}

TEST(ShardedMachine, SingleNodeIgnoresEngineThreads) {
  const SystemConfig cfg = SystemConfig::chick_fullspeed();
  const RunOut serial = run_mixed_workload(cfg, 1);
  EXPECT_TRUE(serial == run_mixed_workload(cfg, 8));
}

/// Nodelet sharding obeys the same contract: one shard per nodelet under
/// two-level windows, and the worker-thread count never changes the
/// simulation — timings, stats, and traces byte-identical to serial.
TEST(ShardedMachine, NodeletShardingThreadCountNeverChangesResults) {
  const SystemConfig cfg = SystemConfig::fullspeed_multinode(4);
  const RunOut serial =
      run_mixed_workload(cfg, 1, emu::EngineShard::nodelet);
  EXPECT_GT(serial.elapsed, 0);
  EXPECT_GT(serial.internode, 0u);
  EXPECT_FALSE(serial.trace.empty());
  EXPECT_TRUE(serial ==
              run_mixed_workload(cfg, 2, emu::EngineShard::nodelet));
  EXPECT_TRUE(serial ==
              run_mixed_workload(cfg, 8, emu::EngineShard::nodelet));
  EXPECT_TRUE(serial ==
              run_mixed_workload(cfg, 64, emu::EngineShard::nodelet));
}

/// A single-node machine still shards per nodelet in nodelet mode (node
/// mode would be fully serial), and the thread count stays irrelevant.
TEST(ShardedMachine, NodeletShardingSingleNodeIsDeterministic) {
  const SystemConfig cfg = SystemConfig::chick_fullspeed();
  const RunOut serial =
      run_mixed_workload(cfg, 1, emu::EngineShard::nodelet);
  EXPECT_GT(serial.elapsed, 0);
  EXPECT_TRUE(serial ==
              run_mixed_workload(cfg, 4, emu::EngineShard::nodelet));
  EXPECT_TRUE(serial ==
              run_mixed_workload(cfg, 8, emu::EngineShard::nodelet));
}

/// Node and nodelet sharding are distinct machine models (intra-node
/// cross-nodelet traffic pays the crossbar hop under nodelet sharding), so
/// simulated times may differ — but the structural counts of the execution
/// (migrations, spawns, completed threads) are identical.
TEST(ShardedMachine, NodeAndNodeletModesAgreeOnStructure) {
  const SystemConfig cfg = SystemConfig::fullspeed_multinode(4);
  const RunOut node = run_mixed_workload(cfg, 1, emu::EngineShard::node);
  const RunOut nodelet =
      run_mixed_workload(cfg, 1, emu::EngineShard::nodelet);
  EXPECT_EQ(node.migrations, nodelet.migrations);
  EXPECT_EQ(node.internode, nodelet.internode);
  EXPECT_EQ(node.spawns, nodelet.spawns);
  EXPECT_EQ(node.remote_spawns, nodelet.remote_spawns);
  EXPECT_EQ(node.completed, nodelet.completed);
  EXPECT_EQ(node.mig_count, nodelet.mig_count);
}

TEST(ShardedMachine, CrossNodeSyncWaitsForAllChildren) {
  const SystemConfig cfg = SystemConfig::fullspeed_multinode(4);
  Machine m(cfg);
  const int nodelets = m.num_nodelets();
  std::vector<int> visited(static_cast<std::size_t>(nodelets), 0);
  m.run_root([&](Context& ctx) -> sim::Op<> {
    // One child per node card, plus checks that sync really joined them.
    for (int node = 0; node < m.cfg().nodes; ++node) {
      const int target = node * m.cfg().nodelets_per_node;
      co_await ctx.spawn_at(target, [&visited](Context& c) -> sim::Op<> {
        co_await c.issue(100);
        ++visited[static_cast<std::size_t>(c.nodelet())];
      });
    }
    co_await ctx.sync();
    EXPECT_EQ(ctx.live_children(), 0);
  });
  EXPECT_EQ(m.stats.threads_completed,
            static_cast<std::uint64_t>(m.cfg().nodes) + 1);  // children + root
  for (int node = 0; node < m.cfg().nodes; ++node) {
    EXPECT_EQ(visited[static_cast<std::size_t>(node * m.cfg().nodelets_per_node)],
              1);
  }
}

/// The histogram path exercises the apply-lambda remote atomics: the bin
/// increments execute on the owning shard at delivery, and the collective
/// still returns correct, thread-count-independent counts.
std::vector<std::uint64_t> run_histogram(const SystemConfig& cfg, int threads) {
  const int prev = emu::set_engine_threads(threads);
  std::vector<std::uint64_t> out;
  {
    Machine m(cfg);
    emu::GlobalArray<std::int64_t> a(m, 512);
    m.run_root([&](Context& ctx) -> sim::Op<> {
      co_await a.transform(ctx, [](std::size_t i, std::int64_t) {
        return static_cast<std::int64_t>(i % 16);
      });
      out = co_await a.histogram(ctx, 0, 16, 16);
    });
  }
  emu::set_engine_threads(prev);
  return out;
}

TEST(ShardedMachine, HistogramRemoteAtomicsAreExactAndDeterministic) {
  const SystemConfig cfg = SystemConfig::fullspeed_multinode(2);
  const auto serial = run_histogram(cfg, 1);
  ASSERT_EQ(serial.size(), 16u);
  for (const auto& count : serial) EXPECT_EQ(count, 512u / 16u);
  EXPECT_EQ(serial, run_histogram(cfg, 2));
}

TEST(ShardedMachine, GupsVerifiesAcrossNodesAndThreadCounts) {
  const SystemConfig cfg = SystemConfig::fullspeed_multinode(2);
  kernels::GupsParams p;
  p.table_words = 1u << 10;
  p.updates = 1u << 12;
  p.threads = 32;
  const int prev = emu::set_engine_threads(1);
  const auto serial = kernels::run_gups_emu(cfg, p);
  emu::set_engine_threads(2);
  const auto threaded = kernels::run_gups_emu(cfg, p);
  emu::set_engine_threads(prev);
  EXPECT_TRUE(serial.verified);
  EXPECT_TRUE(threaded.verified);
  EXPECT_EQ(serial.elapsed, threaded.elapsed);
  EXPECT_EQ(serial.migrations, threaded.migrations);
}

TEST(ShardedMachine, NodeletHistogramIsExactAndDeterministic) {
  const SystemConfig cfg = SystemConfig::fullspeed_multinode(2);
  const emu::EngineShard prev =
      emu::set_engine_shard(emu::EngineShard::nodelet);
  const auto serial = run_histogram(cfg, 1);
  ASSERT_EQ(serial.size(), 16u);
  for (const auto& count : serial) EXPECT_EQ(count, 512u / 16u);
  EXPECT_EQ(serial, run_histogram(cfg, 4));
  emu::set_engine_shard(prev);
}

TEST(ShardedMachine, NodeletGupsVerifiesAcrossThreadCounts) {
  const SystemConfig cfg = SystemConfig::fullspeed_multinode(2);
  kernels::GupsParams p;
  p.table_words = 1u << 10;
  p.updates = 1u << 12;
  p.threads = 32;
  const emu::EngineShard prev_shard =
      emu::set_engine_shard(emu::EngineShard::nodelet);
  const int prev = emu::set_engine_threads(1);
  const auto serial = kernels::run_gups_emu(cfg, p);
  emu::set_engine_threads(8);
  const auto threaded = kernels::run_gups_emu(cfg, p);
  emu::set_engine_threads(prev);
  emu::set_engine_shard(prev_shard);
  EXPECT_TRUE(serial.verified);
  EXPECT_TRUE(threaded.verified);
  EXPECT_EQ(serial.elapsed, threaded.elapsed);
  EXPECT_EQ(serial.migrations, threaded.migrations);
}

}  // namespace
}  // namespace emusim
