// Unit tests for the at-scale procedural pointer chase (kernels/chase_scale):
// checksum verification on the scaling config family, the O(nodelets)
// host-memory contract (peak bytes never track n), and the run telemetry the
// scale_chase bench reports (engine events, peak host bytes).
#include <gtest/gtest.h>

#include "emu/machine.hpp"
#include "kernels/chase_scale.hpp"

namespace emusim {
namespace {

kernels::ChaseScaleParams small_params() {
  kernels::ChaseScaleParams p;
  p.n = std::size_t{1} << 16;
  p.block = 64;
  p.threads = 32;
  p.elems_per_thread = 256;
  return p;
}

TEST(ChaseScale, VerifiesInBothBlockOrders) {
  const auto cfg = emu::SystemConfig::chick_fullspeed_nx(16);
  for (const bool shuffled : {false, true}) {
    auto p = small_params();
    p.shuffled = shuffled;
    const auto r = kernels::run_chase_scale(cfg, p);
    EXPECT_TRUE(r.verified) << "shuffled=" << shuffled;
    EXPECT_GT(r.mb_per_sec, 0.0);
    EXPECT_GT(r.elapsed, 0);
    EXPECT_GT(r.migrations, 0u);
  }
}

TEST(ChaseScale, MigratesAboutOncePerBlock) {
  // Block-cyclic striping sends consecutive blocks to consecutive nodelets,
  // so both walk orders change nodelet nearly every block: migrations per
  // element should sit near 1/block (spawn-tree hops add a little).
  const auto cfg = emu::SystemConfig::chick_fullspeed_nx(16);
  const auto p = small_params();
  const auto r = kernels::run_chase_scale(cfg, p);
  ASSERT_TRUE(r.verified);
  EXPECT_GT(r.migrations_per_element, 0.5 / static_cast<double>(p.block));
  EXPECT_LT(r.migrations_per_element, 2.0 / static_cast<double>(p.block));
}

TEST(ChaseScale, HostPeakIsPerChainSlotsNotDataSize) {
  // The whole point of the lazily chunked views: the n-element region is
  // address math only, so peak host bytes equal the per-chain checksum
  // array (threads * 8 bytes) — identical at 2^16 and 2^24 elements.
  const auto cfg = emu::SystemConfig::chick_fullspeed_nx(16);
  auto p = small_params();
  const std::uint64_t slot_bytes =
      static_cast<std::uint64_t>(p.threads) * sizeof(std::int64_t);

  const auto small = kernels::run_chase_scale(cfg, p);
  ASSERT_TRUE(small.verified);
  EXPECT_EQ(small.host_peak_bytes, slot_bytes);

  p.n = std::size_t{1} << 24;  // 256x the data, same footprint
  const auto big = kernels::run_chase_scale(cfg, p);
  ASSERT_TRUE(big.verified);
  EXPECT_EQ(big.host_peak_bytes, slot_bytes);
}

TEST(ChaseScale, RunTelemetryReportsEventsAndPeakBytes) {
  const auto cfg = emu::SystemConfig::chick_fullspeed_nx(16);
  const auto p = small_params();
  emu::take_run_telemetry();  // drop anything earlier tests accumulated
  const auto r = kernels::run_chase_scale(cfg, p);
  ASSERT_TRUE(r.verified);
  const emu::RunTelemetry tel = emu::take_run_telemetry();
  EXPECT_GT(tel.engine_events, 0u);
  EXPECT_EQ(tel.peak_host_bytes, r.host_peak_bytes);
  // take semantics: a second take reads a reset accumulator.
  const emu::RunTelemetry again = emu::take_run_telemetry();
  EXPECT_EQ(again.engine_events, 0u);
  EXPECT_EQ(again.peak_host_bytes, 0u);
}

TEST(ChaseScale, WorkIsFixedPerThreadRegardlessOfDataSize) {
  // Fixed per-chain work is what makes billion-element points affordable:
  // simulated time may differ slightly (different block walks), but stays
  // within a narrow band as n grows 256x.
  const auto cfg = emu::SystemConfig::chick_fullspeed_nx(16);
  auto p = small_params();
  const auto small = kernels::run_chase_scale(cfg, p);
  p.n = std::size_t{1} << 24;
  const auto big = kernels::run_chase_scale(cfg, p);
  ASSERT_TRUE(small.verified);
  ASSERT_TRUE(big.verified);
  EXPECT_LT(to_seconds(big.elapsed), 1.5 * to_seconds(small.elapsed));
  EXPECT_GT(to_seconds(big.elapsed), 0.5 * to_seconds(small.elapsed));
}

}  // namespace
}  // namespace emusim
