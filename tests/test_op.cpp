// Op<T> awaitable coroutines: value propagation, sequential chaining,
// nesting depth, interaction with engine time, and frame cleanup.
#include "sim/op.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace emusim::sim {
namespace {

Op<int> value_op(int v) { co_return v; }

Op<int> add_ops(int a, int b) {
  const int x = co_await value_op(a);
  const int y = co_await value_op(b);
  co_return x + y;
}

Op<> timed_op(Engine& eng, Time d) { co_await eng.sleep(d); }

Op<int> deep(int depth) {
  if (depth == 0) co_return 0;
  const int below = co_await deep(depth - 1);
  co_return below + 1;
}

Task driver(Engine& eng, int* out) {
  *out = co_await add_ops(2, 3);
  co_await timed_op(eng, ns(100));
  *out += co_await deep(200);
}

TEST(Op, ValuesChainAndNest) {
  Engine eng;
  int out = 0;
  auto t = driver(eng, &out);
  t.start();
  eng.run();
  EXPECT_EQ(out, 205);
  EXPECT_EQ(eng.now(), ns(100));
}

Op<std::unique_ptr<int>> moveonly_op() {
  co_return std::make_unique<int>(42);
}

Task moveonly_driver(int* out) {
  auto p = co_await moveonly_op();
  *out = *p;
}

TEST(Op, MoveOnlyResults) {
  Engine eng;
  int out = 0;
  auto t = moveonly_driver(&out);
  t.start();
  eng.run();
  EXPECT_EQ(out, 42);
}

Op<int> sleepy_value(Engine& eng, Time d, int v) {
  co_await eng.sleep(d);
  co_return v;
}

Task serial_timing(Engine& eng, std::vector<Time>* marks) {
  co_await sleepy_value(eng, ns(10), 1);
  marks->push_back(eng.now());
  co_await sleepy_value(eng, ns(20), 2);
  marks->push_back(eng.now());
}

TEST(Op, SequentialAwaitsAccumulateTime) {
  Engine eng;
  std::vector<Time> marks;
  auto t = serial_timing(eng, &marks);
  t.start();
  eng.run();
  EXPECT_EQ(marks, (std::vector<Time>{ns(10), ns(30)}));
}

TEST(Op, ManyConcurrentTasksWithOps) {
  Engine eng;
  int done = 0;
  std::vector<Task> ts;
  for (int i = 0; i < 64; ++i) {
    struct Run {
      static Task go(Engine& eng, int i, int* done) {
        co_await sleepy_value(eng, ns(i), i);
        co_await sleepy_value(eng, ns(64 - i), i);
        ++*done;
      }
    };
    ts.push_back(Run::go(eng, i, &done));
  }
  for (auto& t : ts) t.start();
  eng.run();
  EXPECT_EQ(done, 64);
  EXPECT_EQ(eng.now(), ns(64));  // every pair sums to 64 ns
}

}  // namespace
}  // namespace emusim::sim
