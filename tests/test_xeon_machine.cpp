// Xeon machine model: cache behaviour, prefetcher, MLP limits, task pool,
// and end-to-end kernel calibration checks (STREAM peak, chase locality).
#include "xeon/machine.hpp"

#include <gtest/gtest.h>

#include "kernels/chase_xeon.hpp"
#include "kernels/stream_xeon.hpp"
#include "xeon/cache.hpp"

namespace emusim::xeon {
namespace {

TEST(Cache, HitsAfterInsert) {
  SetAssocCache c(1 << 20, 8, 64);
  EXPECT_EQ(c.lookup(0x1000), nullptr);
  c.insert(0x1000, ns(10), false);
  auto* e = c.lookup(0x1000);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->ready_at, ns(10));
  // Same line, different offset.
  EXPECT_NE(c.lookup(0x1038), nullptr);
  // Different line.
  EXPECT_EQ(c.lookup(0x1040), nullptr);
}

TEST(Cache, LruEvictionWithinSet) {
  // 2-way cache: lines mapping to the same set evict the least recent.
  SetAssocCache c(64 * 2 * 4, 2, 64);  // 4 sets, 2 ways
  const std::uint64_t set_stride = 64 * 4;
  c.insert(0, 0, false);
  c.insert(set_stride, 0, false);
  EXPECT_NE(c.lookup(0), nullptr);  // touch line 0: line 1 becomes LRU
  c.insert(2 * set_stride, 0, false);
  EXPECT_NE(c.lookup(0), nullptr);
  EXPECT_EQ(c.lookup(set_stride), nullptr);  // evicted
  EXPECT_NE(c.lookup(2 * set_stride), nullptr);
}

TEST(Cache, DirtyEvictionReportsWriteback) {
  SetAssocCache c(64 * 2 * 1, 2, 64);  // 1 set, 2 ways
  c.insert(0, 0, /*dirty=*/true);
  c.insert(64, 0, false);
  const auto v = c.insert(128, 0, false);
  EXPECT_TRUE(v.evicted_dirty);
  EXPECT_EQ(v.dirty_addr, 0u);
  EXPECT_EQ(c.stats.writebacks, 1u);
}

TEST(Machine, AllocatorInterleavesChannels) {
  Machine m(SystemConfig::sandy_bridge());
  const auto interleave = m.cfg().channel_interleave_bytes;
  // Consecutive interleave-sized chunks land on consecutive channels.
  auto& ch0 = m.channel_of(0);
  auto& ch1 = m.channel_of(interleave);
  EXPECT_NE(&ch0, &ch1);
  auto& ch0b = m.channel_of(interleave * static_cast<std::uint64_t>(
                                m.cfg().channels));
  EXPECT_EQ(&ch0, &ch0b);
}

TEST(StreamXeon, ApproachesNominalBandwidth) {
  // Paper §IV-A: the Sandy Bridge reference achieves close to the nominal
  // 51.2 GB/s on STREAM.  Expect at least ~70% of nominal with all cores.
  kernels::StreamXeonParams p;
  p.n = 1u << 19;
  p.threads = 16;
  const auto r = kernels::run_stream_xeon(SystemConfig::sandy_bridge(), p);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.mb_per_sec, 0.70 * 51200.0);
  EXPECT_LT(r.mb_per_sec, 51200.0);  // cannot beat the bus
}

TEST(StreamXeon, ScalesWithThreads) {
  kernels::StreamXeonParams p1, p8;
  p1.n = p8.n = 1u << 18;
  p1.threads = 1;
  p8.threads = 8;
  const auto r1 = kernels::run_stream_xeon(SystemConfig::sandy_bridge(), p1);
  const auto r8 = kernels::run_stream_xeon(SystemConfig::sandy_bridge(), p8);
  EXPECT_GT(r8.mb_per_sec, 2.5 * r1.mb_per_sec);
}

TEST(ChaseXeon, LocalitySensitivity) {
  // The Xeon must be strongly sensitive to block size (unlike the Emu):
  // mid-size blocks beat block=1 by a large factor.  Shrink the LLC so a
  // test-sized list is DRAM-resident, as the paper's lists are.
  auto cfg = SystemConfig::sandy_bridge();
  cfg.llc_bytes = 1 << 20;
  kernels::ChaseXeonParams p;
  p.n = 1u << 18;  // keep the test fast; shape still holds
  p.threads = 8;
  p.mode = kernels::ShuffleMode::full_block_shuffle;

  p.block = 1;
  const auto worst = kernels::run_chase_xeon(cfg, p);
  p.block = 512;
  const auto best = kernels::run_chase_xeon(cfg, p);
  EXPECT_TRUE(worst.verified);
  EXPECT_TRUE(best.verified);
  EXPECT_GT(best.mb_per_sec, 2.0 * worst.mb_per_sec);
}

TEST(ChaseXeon, SequentialBeatsRandomViaPrefetch) {
  auto cfg = SystemConfig::sandy_bridge();
  cfg.llc_bytes = 1 << 20;  // DRAM-resident list (see above)
  kernels::ChaseXeonParams p;
  p.n = 1u << 18;
  p.threads = 4;
  p.block = p.n / 4;  // one big ordered block per thread
  p.mode = kernels::ShuffleMode::none;
  const auto seq = kernels::run_chase_xeon(cfg, p);

  p.block = 16;
  p.mode = kernels::ShuffleMode::full_block_shuffle;
  const auto rnd = kernels::run_chase_xeon(cfg, p);
  EXPECT_GT(seq.mb_per_sec, 1.5 * rnd.mb_per_sec);
}

TEST(TaskPool, RunsAllTasksAndBalances) {
  Machine m(SystemConfig::sandy_bridge());
  int done = 0;
  std::vector<TaskFn> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&done](CpuContext& ctx) -> sim::Op<> {
      ++done;
      co_await ctx.compute(1000);
    });
  }
  const Time elapsed = run_task_pool(m, 4, std::move(tasks), 0);
  EXPECT_EQ(done, 100);
  EXPECT_EQ(m.stats.tasks_run, 100u);
  // 100 tasks x 1000 cycles over 4 workers ~ 25000 cycles.
  const Time ideal = 25000 * m.cfg().cycle();
  EXPECT_NEAR(static_cast<double>(elapsed), static_cast<double>(ideal),
              0.05 * static_cast<double>(ideal));
}

TEST(TaskPool, PerTaskOverheadSlowsManySmallTasks) {
  auto run = [](int ntasks, int overhead) {
    Machine m(SystemConfig::sandy_bridge());
    std::vector<TaskFn> tasks;
    const int work_per_task = 100000 / ntasks;
    for (int i = 0; i < ntasks; ++i) {
      tasks.push_back([work_per_task](CpuContext& ctx) -> sim::Op<> {
        co_await ctx.compute(static_cast<std::uint64_t>(work_per_task));
      });
    }
    return run_task_pool(m, 4, std::move(tasks), overhead);
  };
  // Same total work, same overhead rate: fine-grained tasks pay more.
  EXPECT_GT(run(1000, 600), run(10, 600));
}

}  // namespace
}  // namespace emusim::xeon
