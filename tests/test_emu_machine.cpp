// Emu machine model: threadlet lifecycle, spawn/sync semantics, migration
// accounting, threadlet-slot limits, memory-side operations, allocators.
#include "emu/machine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "emu/runtime/alloc.hpp"

namespace emusim::emu {
namespace {

SystemConfig tiny_config() {
  SystemConfig c = SystemConfig::chick_hw();
  return c;
}

sim::Op<> noop(Context&) { co_return; }

TEST(Machine, Topology) {
  Machine m(SystemConfig::chick_hw());
  EXPECT_EQ(m.num_nodelets(), 8);
  EXPECT_EQ(m.cfg().slots_per_nodelet(), 64);
  EXPECT_EQ(m.cycle(), 6667);

  Machine full(SystemConfig::fullspeed_multinode(8));
  EXPECT_EQ(full.num_nodelets(), 64);
  EXPECT_EQ(full.cfg().slots_per_nodelet(), 256);
  EXPECT_EQ(full.node_index_of(0), 0);
  EXPECT_EQ(full.node_index_of(63), 7);
}

TEST(Machine, RootThreadRunsAndCompletes) {
  Machine m(tiny_config());
  const Time elapsed = m.run_root(noop);
  EXPECT_GT(elapsed, 0);
  EXPECT_EQ(m.stats.threads_completed, 1u);
  EXPECT_EQ(m.stats.spawns, 1u);
}

sim::Op<> root_migrates(Context& ctx) {
  EXPECT_EQ(ctx.nodelet(), 0);
  co_await ctx.migrate_to(5);
  EXPECT_EQ(ctx.nodelet(), 5);
  co_await ctx.migrate_to(5);  // no-op
  co_await ctx.migrate_to(2);
  EXPECT_EQ(ctx.nodelet(), 2);
}

TEST(Machine, MigrationMovesThreadAndCounts) {
  Machine m(tiny_config());
  m.run_root(root_migrates);
  EXPECT_EQ(m.stats.migrations, 2u);  // the self-migration is free
  EXPECT_EQ(m.nodelet(5).stats.thread_arrivals, 1u);
  EXPECT_EQ(m.nodelet(2).stats.thread_arrivals, 1u);
  EXPECT_EQ(m.stats.migration_latency_ns.count(), 2u);
  // Per-migration latency should be in the paper's 1-2 us range.
  const double mean_ns = m.stats.migration_latency_ns.summary().mean();
  EXPECT_GT(mean_ns, 500.0);
  EXPECT_LT(mean_ns, 3000.0);
}

sim::Op<> spawn_children(Context& ctx, int count, std::vector<int>* where,
                         Time child_hold = 0) {
  for (int i = 0; i < count; ++i) {
    co_await ctx.spawn([where, child_hold](Context& c) -> sim::Op<> {
      where->push_back(c.nodelet());
      co_await c.issue(10);
      if (child_hold > 0) co_await c.engine().sleep(child_hold);
    });
  }
  co_await ctx.sync();
  // After sync, no children remain.
  EXPECT_EQ(ctx.live_children(), 0);
}

TEST(Machine, LocalSpawnAndSync) {
  Machine m(tiny_config());
  std::vector<int> where;
  m.run_root([&](Context& ctx) { return spawn_children(ctx, 10, &where); });
  EXPECT_EQ(where.size(), 10u);
  for (int n : where) EXPECT_EQ(n, 0);  // local spawns start on the parent's nodelet
  EXPECT_EQ(m.stats.threads_completed, 11u);
  EXPECT_EQ(m.stats.remote_spawns, 0u);
}

sim::Op<> remote_spawner(Context& ctx, std::vector<int>* where) {
  for (int d = 0; d < ctx.machine().num_nodelets(); ++d) {
    co_await ctx.spawn_at(d, [where, d](Context& c) -> sim::Op<> {
      EXPECT_EQ(c.nodelet(), d);
      where->push_back(c.nodelet());
      co_await c.issue(1);
    });
  }
  co_await ctx.sync();
}

TEST(Machine, RemoteSpawnLandsOnTarget) {
  Machine m(tiny_config());
  std::vector<int> where;
  m.run_root([&](Context& ctx) { return remote_spawner(ctx, &where); });
  EXPECT_EQ(where.size(), 8u);
  EXPECT_EQ(m.stats.remote_spawns, 8u);
  // A remote spawn is not a migration.
  EXPECT_EQ(m.stats.migrations, 0u);
}

TEST(Machine, SlotExhaustionElidesSerially) {
  // Spawning far more long-lived local threads than slots must complete
  // (serial elision), and residency must never exceed the slot count.  The
  // children hold their slots for many cycles so the nodelet fills up.
  Machine m(tiny_config());
  std::vector<int> where;
  m.run_root([&](Context& ctx) {
    return spawn_children(ctx, 300, &where, /*child_hold=*/us(500));
  });
  EXPECT_EQ(where.size(), 300u);
  EXPECT_LE(m.nodelet(0).stats.max_resident, 64);
  EXPECT_GT(m.stats.inline_spawns, 0u);
  EXPECT_EQ(m.stats.threads_completed + m.stats.inline_spawns, 301u);
}

sim::Op<> reader(Context& ctx, Striped1D<std::int64_t>* arr, std::int64_t* sum) {
  for (std::size_t i = 0; i < arr->size(); ++i) {
    const int h = arr->home(i);
    if (h != ctx.nodelet()) co_await ctx.migrate_to(h);
    co_await ctx.read_local(arr->byte_addr(i), 8);
    *sum += (*arr)[i];
  }
}

TEST(Machine, StripedWalkMigratesPerElement) {
  Machine m(tiny_config());
  Striped1D<std::int64_t> arr(m, 64, /*block=*/1);
  for (std::size_t i = 0; i < 64; ++i) arr[i] = static_cast<std::int64_t>(i);
  std::int64_t sum = 0;
  m.run_root([&](Context& ctx) { return reader(ctx, &arr, &sum); });
  EXPECT_EQ(sum, 64 * 63 / 2);
  // Walking an element-striped array: 8 nodelets, so 7 of every 8 steps
  // migrate (plus the walk cycles around 8 times).
  EXPECT_EQ(m.stats.migrations, 63u);
}

TEST(Machine, BlockStripedWalkMigratesPerBlock) {
  Machine m(tiny_config());
  Striped1D<std::int64_t> arr(m, 64, /*block=*/8);
  std::int64_t sum = 0;
  m.run_root([&](Context& ctx) { return reader(ctx, &arr, &sum); });
  EXPECT_EQ(m.stats.migrations, 7u);  // one per block boundary
}

sim::Op<> remote_writer(Context& ctx, LocalArray<std::int64_t>* arr) {
  // Memory-side writes from nodelet 0 to arrays on nodelet 3: no migration.
  for (std::size_t i = 0; i < arr->size(); ++i) {
    (*arr)[i] = 7;
    ctx.write_remote(arr->home(), arr->byte_addr(i), 8);
    co_await ctx.issue(2);
  }
}

TEST(Machine, MemorySideWritesDoNotMigrate) {
  Machine m(tiny_config());
  LocalArray<std::int64_t> arr(m, 32, /*nodelet=*/3);
  m.run_root([&](Context& ctx) { return remote_writer(ctx, &arr); });
  EXPECT_EQ(m.stats.migrations, 0u);
  EXPECT_EQ(m.nodelet(3).stats.remote_writes_in, 32u);
  EXPECT_EQ(arr[31], 7);
}

TEST(Machine, ReplicatedReadsAreAlwaysLocal) {
  Machine m(tiny_config());
  Replicated<std::int64_t> x(m, 16);
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<std::int64_t>(i);
  std::int64_t sum = 0;
  m.run_root([&](Context& ctx) -> sim::Op<> {
    co_await ctx.migrate_to(4);
    for (std::size_t i = 0; i < 16; ++i) {
      co_await x.read(ctx, i);
      sum += x[i];
    }
  });
  EXPECT_EQ(sum, 120);
  EXPECT_EQ(m.stats.migrations, 1u);  // only the explicit one
  EXPECT_EQ(m.nodelet(4).stats.reads, 16u);
}

TEST(Machine, NestedSpawnTreeSyncs) {
  // A recursive spawn tree: every level spawns two children until depth 0.
  Machine m(tiny_config());
  std::int64_t leaves = 0;
  struct Rec {
    static sim::Op<> go(Context& ctx, int depth, std::int64_t* leaves) {
      if (depth == 0) {
        ++*leaves;
        co_await ctx.issue(1);
        co_return;
      }
      for (int i = 0; i < 2; ++i) {
        co_await ctx.spawn([depth, leaves](Context& c) {
          return Rec::go(c, depth - 1, leaves);
        });
      }
      co_await ctx.sync();
    }
  };
  m.run_root([&](Context& ctx) { return Rec::go(ctx, 6, &leaves); });
  EXPECT_EQ(leaves, 64);
}

TEST(Machine, AllocatorAlignsAndAdvances) {
  Machine m(tiny_config());
  auto& n0 = m.nodelet(0);
  const auto a = n0.allocate(10, 8);
  const auto b = n0.allocate(8, 8);
  EXPECT_EQ(a % 8, 0u);
  EXPECT_EQ(b % 8, 0u);
  EXPECT_GE(b, a + 10);
  // Independent nodelets have independent address spaces.
  EXPECT_EQ(m.nodelet(1).allocate(8), 0u);
}

TEST(Machine, ChunkedLayoutHomesPerChunk) {
  Machine m(tiny_config());
  std::vector<std::size_t> counts = {4, 0, 2, 0, 0, 0, 0, 1};
  Chunked<double> c(m, counts);
  EXPECT_EQ(c.chunk_size(0), 4u);
  EXPECT_EQ(c.chunk_size(2), 2u);
  c.at(0, 3) = 2.5;
  EXPECT_EQ(c.at(0, 3), 2.5);
  EXPECT_EQ(c.home(7), 7);
}

TEST(Machine, DeterministicElapsedTime) {
  auto run = [] {
    Machine m(tiny_config());
    std::vector<int> where;
    return m.run_root(
        [&](Context& ctx) { return spawn_children(ctx, 50, &where); });
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace emusim::emu
