#include "common/units.hpp"

#include <gtest/gtest.h>

namespace emusim {
namespace {

TEST(Units, Constants) {
  EXPECT_EQ(kNanosecond, 1000);
  EXPECT_EQ(kSecond, 1'000'000'000'000LL);
  EXPECT_EQ(ns(1.5), 1500);
  EXPECT_EQ(us(2), 2'000'000);
}

TEST(Units, PeriodFromHz) {
  EXPECT_EQ(period_from_hz(1e9), 1000);        // 1 GHz -> 1 ns
  EXPECT_EQ(period_from_hz(150e6), 6667);      // 150 MHz, rounded
  EXPECT_EQ(period_from_hz(300e6), 3333);
}

TEST(Units, TransferTime) {
  // 8 bytes at 2 GB/s -> 4 ns
  EXPECT_EQ(transfer_time(8, 2e9), 4000);
  // 64 bytes at 12.8 GB/s -> 5 ns
  EXPECT_EQ(transfer_time(64, 12.8e9), 5000);
  // Never zero, even for tiny transfers.
  EXPECT_GE(transfer_time(1, 1e15), 1);
}

TEST(Units, Bandwidth) {
  // 1 MB in 1 ms = 1000 MB/s
  EXPECT_DOUBLE_EQ(mb_per_sec(1e6, kMillisecond), 1000.0);
  EXPECT_DOUBLE_EQ(mb_per_sec(100, 0), 0.0);
}

TEST(Units, FormatTime) {
  EXPECT_EQ(format_time(500), "500 ps");
  EXPECT_EQ(format_time(ns(2.5)), "2.50 ns");
  EXPECT_EQ(format_time(us(3)), "3.00 us");
  EXPECT_EQ(format_time(ms(7)), "7.00 ms");
  EXPECT_EQ(format_time(sec(1.5)), "1.500 s");
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(3.5 * 1024 * 1024), "3.50 MiB");
}

}  // namespace
}  // namespace emusim
