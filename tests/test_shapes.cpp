// Unit tests for the result schema round-trip, the shape-assertion verdict
// logic, and the benchdiff comparison — the pieces CI's perf gate stands on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "report/diff.hpp"
#include "report/json.hpp"
#include "report/results.hpp"
#include "report/shapes.hpp"

namespace {

using emusim::report::BenchResult;
using emusim::report::DiffOptions;
using emusim::report::Json;
using emusim::report::ResultPoint;
using emusim::report::ResultSeries;
using emusim::report::ShapeSpec;

BenchResult sample_result() {
  BenchResult r;
  r.bench = "sample_bench";
  r.x_axis = "threads";
  r.y_axis = "mb_per_sec";
  r.quick = true;
  r.config = {{"machine", "sample"}, {"n", "1024"}};
  ResultSeries fast;
  fast.name = "fast";
  fast.points = {{1, 100, "", {{"util_pct", 50}}},
                 {2, 190, "", {{"util_pct", 95}}},
                 {4, 200, "", {{"util_pct", 100}}}};
  ResultSeries slow;
  slow.name = "slow";
  slow.points = {{1, 50, "", {}}, {2, 60, "", {}}, {4, 61, "", {}}};
  ResultSeries graphs;
  graphs.name = "graphs";
  graphs.points = {{0, 10, "grid", {}}, {1, 30, "rmat", {}}};
  r.series = {fast, slow, graphs};
  r.fingerprint = emusim::report::result_fingerprint(r);
  return r;
}

ShapeSpec parse_spec(const std::string& text) {
  Json j;
  std::string err;
  EXPECT_TRUE(Json::parse(text, &j, &err)) << err;
  ShapeSpec spec;
  EXPECT_TRUE(ShapeSpec::from_json(j, &spec, &err)) << err;
  return spec;
}

// --- result schema ---------------------------------------------------------

TEST(Results, JsonRoundTripPreservesEverything) {
  const BenchResult r = sample_result();
  BenchResult back;
  std::string err;
  ASSERT_TRUE(BenchResult::from_json(r.to_json(), &back, &err)) << err;
  EXPECT_EQ(back.bench, r.bench);
  EXPECT_EQ(back.x_axis, "threads");
  EXPECT_EQ(back.y_axis, "mb_per_sec");
  EXPECT_TRUE(back.quick);
  EXPECT_EQ(back.fingerprint, r.fingerprint);
  ASSERT_EQ(back.series.size(), 3u);
  ASSERT_EQ(back.series[0].points.size(), 3u);
  EXPECT_DOUBLE_EQ(back.series[0].points[1].y, 190.0);
  const double* util = back.series[0].points[1].metric("util_pct");
  ASSERT_NE(util, nullptr);
  EXPECT_DOUBLE_EQ(*util, 95.0);
  EXPECT_EQ(back.series[2].points[1].label, "rmat");
  EXPECT_EQ(back.config, r.config);
}

TEST(Results, FromJsonRejectsWrongSchemaVersion) {
  Json j = sample_result().to_json();
  j.set("schema_version", Json::number(999));
  BenchResult back;
  std::string err;
  EXPECT_FALSE(BenchResult::from_json(j, &back, &err));
  EXPECT_NE(err.find("schema"), std::string::npos);
}

TEST(Results, FingerprintSensitiveToConfigAndQuick) {
  BenchResult a = sample_result();
  BenchResult b = a;
  EXPECT_EQ(emusim::report::result_fingerprint(a),
            emusim::report::result_fingerprint(b));
  b.config.emplace_back("extra", "1");
  EXPECT_NE(emusim::report::result_fingerprint(a),
            emusim::report::result_fingerprint(b));
  BenchResult c = a;
  c.quick = false;
  EXPECT_NE(emusim::report::result_fingerprint(a),
            emusim::report::result_fingerprint(c));
}

TEST(Results, FindByXAndLabel) {
  const BenchResult r = sample_result();
  const ResultSeries* fast = r.find("fast");
  ASSERT_NE(fast, nullptr);
  const ResultPoint* p = fast->find(2);
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->y, 190.0);
  EXPECT_EQ(fast->find(3), nullptr);
  const ResultSeries* graphs = r.find("graphs");
  ASSERT_NE(graphs, nullptr);
  const ResultPoint* rmat = graphs->find_label("rmat");
  ASSERT_NE(rmat, nullptr);
  EXPECT_DOUBLE_EQ(rmat->y, 30.0);
  EXPECT_EQ(r.find("nope"), nullptr);
}

// --- shape assertions ------------------------------------------------------

TEST(Shapes, AllVocabularyTypesPassOnSampleData) {
  const ShapeSpec spec = parse_spec(R"({
    "schema_version": 1, "bench": "sample_bench", "asserts": [
      {"type": "value_between", "a": {"series": "fast", "x": 4,
       "metric": "util_pct"}, "lo": 99, "hi": 101},
      {"type": "ratio_gt", "a": {"series": "fast", "x": 1},
       "b": {"series": "slow", "x": 1}, "bound": 1.9},
      {"type": "ratio_lt", "a": {"series": "slow", "x": 1},
       "b": {"series": "fast", "x": 1}, "bound": 0.6},
      {"type": "ratio_between", "a": {"series": "graphs", "label": "rmat"},
       "b": {"series": "graphs", "label": "grid"}, "lo": 2.9, "hi": 3.1},
      {"type": "flat_within", "a": {"series": "slow"}, "xs": [2, 4],
       "bound": 1.05},
      {"type": "dominates", "a": {"series": "fast"}, "b": {"series": "slow"},
       "factor": 2.0},
      {"type": "knee_at", "a": {"series": "fast"}, "before": 1, "knee": 2,
       "after": 4, "min_scale": 1.5, "max_flat": 1.2}
    ]})");
  const auto verdicts = emusim::report::evaluate(spec, sample_result());
  ASSERT_EQ(verdicts.size(), 7u);
  for (const auto& v : verdicts) {
    EXPECT_TRUE(v.pass) << v.desc << ": " << v.detail;
  }
}

TEST(Shapes, FailingAssertionsReportDetails) {
  const ShapeSpec spec = parse_spec(R"({
    "schema_version": 1, "bench": "sample_bench", "asserts": [
      {"type": "dominates", "a": {"series": "slow"}, "b": {"series": "fast"}},
      {"type": "flat_within", "a": {"series": "fast"}, "bound": 1.1},
      {"type": "knee_at", "a": {"series": "fast"}, "before": 1, "knee": 2,
       "after": 4, "min_scale": 3.0, "max_flat": 1.2}
    ]})");
  const auto verdicts = emusim::report::evaluate(spec, sample_result());
  ASSERT_EQ(verdicts.size(), 3u);
  for (const auto& v : verdicts) {
    EXPECT_FALSE(v.pass) << v.desc;
    EXPECT_FALSE(v.detail.empty());
  }
}

TEST(Shapes, MissingDataFailsInsteadOfSkipping) {
  const ShapeSpec spec = parse_spec(R"({
    "schema_version": 1, "bench": "sample_bench", "asserts": [
      {"type": "value_between", "a": {"series": "ghost", "x": 1},
       "lo": 0, "hi": 1},
      {"type": "value_between", "a": {"series": "fast", "x": 99},
       "lo": 0, "hi": 1},
      {"type": "value_between", "a": {"series": "fast", "x": 1,
       "metric": "no_such_metric"}, "lo": 0, "hi": 1},
      {"type": "frobnicate", "a": {"series": "fast", "x": 1}}
    ]})");
  const auto verdicts = emusim::report::evaluate(spec, sample_result());
  ASSERT_EQ(verdicts.size(), 4u);
  for (const auto& v : verdicts) {
    EXPECT_FALSE(v.pass) << v.desc << ": " << v.detail;
  }
}

TEST(Shapes, SpecParserRejectsBadSpecs) {
  Json j;
  std::string err;
  ShapeSpec spec;
  ASSERT_TRUE(Json::parse(
      R"({"schema_version": 2, "bench": "b", "asserts": []})", &j, &err));
  EXPECT_FALSE(ShapeSpec::from_json(j, &spec, &err));
  ASSERT_TRUE(Json::parse(
      R"({"schema_version": 1, "asserts": []})", &j, &err));
  EXPECT_FALSE(ShapeSpec::from_json(j, &spec, &err));
  ASSERT_TRUE(Json::parse(
      R"({"schema_version": 1, "bench": "b",
          "asserts": [{"type": "ratio_gt"}]})", &j, &err));
  EXPECT_FALSE(ShapeSpec::from_json(j, &spec, &err));
}

// --- benchdiff -------------------------------------------------------------

TEST(Diff, IdenticalResultsAreClean) {
  const std::vector<BenchResult> base = {sample_result()};
  const auto rep = emusim::report::diff_results(base, base, DiffOptions{});
  EXPECT_TRUE(rep.ok(DiffOptions{}));
  EXPECT_EQ(rep.regressions, 0);
  EXPECT_TRUE(rep.problems.empty());
  EXPECT_EQ(rep.entries.size(), 8u);
}

TEST(Diff, FlagsRegressionBeyondTolerance) {
  const std::vector<BenchResult> base = {sample_result()};
  std::vector<BenchResult> cand = base;
  cand[0].series[0].points[2].y *= 0.90;  // -10% on fast[x=4]
  cand[0].series[1].points[0].y *= 0.96;  // -4%: within tolerance
  DiffOptions opt;
  opt.max_regress_pct = 5.0;
  const auto rep = emusim::report::diff_results(base, cand, opt);
  EXPECT_FALSE(rep.ok(opt));
  EXPECT_EQ(rep.regressions, 1);
  int flagged = 0;
  for (const auto& e : rep.entries) {
    if (e.regression) {
      ++flagged;
      EXPECT_EQ(e.series, "fast");
      EXPECT_DOUBLE_EQ(e.x, 4.0);
      EXPECT_NEAR(e.delta_pct, -10.0, 1e-9);
    }
  }
  EXPECT_EQ(flagged, 1);
}

TEST(Diff, ImprovementsNeverFail) {
  const std::vector<BenchResult> base = {sample_result()};
  std::vector<BenchResult> cand = base;
  for (auto& s : cand[0].series) {
    for (auto& p : s.points) p.y *= 2.0;
  }
  const auto rep = emusim::report::diff_results(base, cand, DiffOptions{});
  EXPECT_TRUE(rep.ok(DiffOptions{}));
  EXPECT_EQ(rep.regressions, 0);
  EXPECT_GT(rep.improvements, 0);
}

TEST(Diff, WallClockResultsNeverGate) {
  // A bench whose y metric is host wall clock (micro_simcore) varies run
  // to run; benchdiff must report its deltas but never gate on them — in
  // either direction, and regardless of which side carries the marker.
  const std::vector<BenchResult> base = {sample_result()};
  std::vector<BenchResult> cand = base;
  cand[0].y_wall_clock = true;
  for (auto& s : cand[0].series) {
    for (auto& p : s.points) p.y *= 0.5;  // -50%: far past any tolerance
  }
  DiffOptions opt;
  opt.max_regress_pct = 5.0;
  const auto rep = emusim::report::diff_results(base, cand, opt);
  EXPECT_TRUE(rep.ok(opt));
  EXPECT_EQ(rep.regressions, 0);
  for (const auto& e : rep.entries) {
    EXPECT_TRUE(e.wall_clock);
    EXPECT_FALSE(e.regression);
  }

  // Doubling shouldn't count as an improvement either — wall-clock noise
  // must not drown out real simulated-metric improvements in the summary.
  std::vector<BenchResult> faster = base;
  faster[0].y_wall_clock = true;
  for (auto& s : faster[0].series) {
    for (auto& p : s.points) p.y *= 2.0;
  }
  const auto rep2 = emusim::report::diff_results(base, faster, opt);
  EXPECT_TRUE(rep2.ok(opt));
  EXPECT_EQ(rep2.improvements, 0);
}

TEST(Diff, WallClockMarkerRoundTripsThroughJson) {
  BenchResult r = sample_result();
  r.y_wall_clock = true;
  std::string err;
  Json j;
  ASSERT_TRUE(Json::parse(r.to_json().dump(), &j, &err)) << err;
  BenchResult back;
  ASSERT_TRUE(BenchResult::from_json(j, &back, &err)) << err;
  EXPECT_TRUE(back.y_wall_clock);
}

TEST(Diff, MissingCoverageIsAProblem) {
  const std::vector<BenchResult> base = {sample_result()};
  std::vector<BenchResult> cand = base;
  cand[0].series[0].points.pop_back();          // drop fast[x=4]
  cand[0].series.erase(cand[0].series.begin() + 1);  // drop slow entirely
  DiffOptions opt;
  const auto rep = emusim::report::diff_results(base, cand, opt);
  EXPECT_FALSE(rep.ok(opt));
  EXPECT_GE(rep.problems.size(), 2u);
  opt.require_coverage = false;
  EXPECT_TRUE(rep.ok(opt));
}

TEST(Diff, MissingBenchIsAProblem) {
  const std::vector<BenchResult> base = {sample_result()};
  const auto rep =
      emusim::report::diff_results(base, {}, DiffOptions{});
  EXPECT_FALSE(rep.ok(DiffOptions{}));
  ASSERT_EQ(rep.problems.size(), 1u);
  EXPECT_NE(rep.problems[0].find("sample_bench"), std::string::npos);
}

TEST(Diff, FingerprintMismatchIsAProblemNotAComparison) {
  const std::vector<BenchResult> base = {sample_result()};
  std::vector<BenchResult> cand = base;
  cand[0].config.emplace_back("n", "2048");
  cand[0].fingerprint = emusim::report::result_fingerprint(cand[0]);
  const auto rep = emusim::report::diff_results(base, cand, DiffOptions{});
  EXPECT_FALSE(rep.ok(DiffOptions{}));
  ASSERT_FALSE(rep.problems.empty());
  EXPECT_NE(rep.problems[0].find("fingerprint"), std::string::npos);
  EXPECT_TRUE(rep.entries.empty());
}

TEST(Diff, CandidateOnlyDataIsIgnored) {
  const std::vector<BenchResult> base = {sample_result()};
  std::vector<BenchResult> cand = base;
  BenchResult extra = sample_result();
  extra.bench = "brand_new_bench";
  extra.fingerprint = emusim::report::result_fingerprint(extra);
  cand.push_back(extra);
  ResultSeries more;
  more.name = "new_series";
  more.points = {{1, 1, "", {}}};
  cand[0].series.push_back(more);
  const auto rep = emusim::report::diff_results(base, cand, DiffOptions{});
  EXPECT_TRUE(rep.ok(DiffOptions{}));
  EXPECT_EQ(rep.entries.size(), 8u);
}

// --- serving shapes and latency diffs --------------------------------------

/// A serving-bench-shaped result: labeled arrival-process points carrying
/// lat_* extras, plus a closed-loop batch sweep.
BenchResult serving_result() {
  BenchResult r;
  r.bench = "serving_sample";
  r.x_axis = "batch";
  r.y_axis = "mops_per_sec";
  r.quick = true;
  ResultSeries emu;
  emu.name = "emu";
  emu.points = {
      {0, 0.44, "uniform", {{"lat_p50_us", 12.8}, {"lat_p99_us", 34.6}}},
      {1, 0.43, "zipf", {{"lat_p50_us", 41.9}, {"lat_p99_us", 142.6}}},
      {2, 0.26, "bursty", {{"lat_p50_us", 12.6}, {"lat_p99_us", 32.5}}}};
  ResultSeries sweep;
  sweep.name = "emu_batch";
  // Deliberately out of x order: monotone_nondec must sort by x itself.
  sweep.points = {{32, 0.74, "", {}}, {8, 0.62, "", {}}, {128, 0.76, "", {}}};
  r.series = {emu, sweep};
  r.fingerprint = emusim::report::result_fingerprint(r);
  return r;
}

TEST(Shapes, MonotoneNondecSortsByXAndRespectsSlack) {
  const ShapeSpec pass = parse_spec(R"({
    "schema_version": 1, "bench": "serving_sample", "asserts": [
      {"type": "monotone_nondec", "a": {"series": "emu_batch"}},
      {"type": "monotone_nondec", "a": {"series": "emu_batch"},
       "xs": [8, 32]}
    ]})");
  for (const auto& v : emusim::report::evaluate(pass, serving_result())) {
    EXPECT_TRUE(v.pass) << v.desc << ": " << v.detail;
  }

  BenchResult dipped = serving_result();
  dipped.series[1].points[0].y = 0.5;  // x=32 dips below x=8's 0.62
  const ShapeSpec strict = parse_spec(R"({
    "schema_version": 1, "bench": "serving_sample", "asserts": [
      {"type": "monotone_nondec", "a": {"series": "emu_batch"}}
    ]})");
  auto verdicts = emusim::report::evaluate(strict, dipped);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_FALSE(verdicts[0].pass);
  EXPECT_NE(verdicts[0].detail.find("x=32"), std::string::npos);

  // A generous slack factor forgives the same dip.
  const ShapeSpec slack = parse_spec(R"({
    "schema_version": 1, "bench": "serving_sample", "asserts": [
      {"type": "monotone_nondec", "a": {"series": "emu_batch"},
       "factor": 0.7}
    ]})");
  verdicts = emusim::report::evaluate(slack, dipped);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_TRUE(verdicts[0].pass) << verdicts[0].detail;
}

TEST(Shapes, MonotoneNondecFailsOnMissingData) {
  const ShapeSpec spec = parse_spec(R"({
    "schema_version": 1, "bench": "serving_sample", "asserts": [
      {"type": "monotone_nondec", "a": {"series": "ghost"}},
      {"type": "monotone_nondec", "a": {"series": "emu_batch"},
       "xs": [8]},
      {"type": "monotone_nondec", "a": {"series": "emu_batch",
       "metric": "no_such_metric"}}
    ]})");
  const auto verdicts = emusim::report::evaluate(spec, serving_result());
  ASSERT_EQ(verdicts.size(), 3u);
  for (const auto& v : verdicts) {
    EXPECT_FALSE(v.pass) << v.desc << ": " << v.detail;
  }
}

TEST(Shapes, MetricRatioLtQuantifiesOverEveryPoint) {
  const ShapeSpec pass = parse_spec(R"({
    "schema_version": 1, "bench": "serving_sample", "asserts": [
      {"type": "metric_ratio_lt", "a": {"series": "emu",
       "metric": "lat_p99_us"}, "b": {"series": "emu",
       "metric": "lat_p50_us"}, "bound": 6.0}
    ]})");
  for (const auto& v : emusim::report::evaluate(pass, serving_result())) {
    EXPECT_TRUE(v.pass) << v.desc << ": " << v.detail;
  }

  // Tighten the bound below the zipf point's 142.6/41.9 = 3.4: the verdict
  // must fail and name the offending point.
  const ShapeSpec tight = parse_spec(R"({
    "schema_version": 1, "bench": "serving_sample", "asserts": [
      {"type": "metric_ratio_lt", "a": {"series": "emu",
       "metric": "lat_p99_us"}, "b": {"series": "emu",
       "metric": "lat_p50_us"}, "bound": 3.0}
    ]})");
  const auto verdicts = emusim::report::evaluate(tight, serving_result());
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_FALSE(verdicts[0].pass);
  EXPECT_NE(verdicts[0].detail.find("zipf"), std::string::npos);
}

TEST(Shapes, MetricRatioLtFailsOnMissingOrZeroMetrics) {
  const ShapeSpec spec = parse_spec(R"({
    "schema_version": 1, "bench": "serving_sample", "asserts": [
      {"type": "metric_ratio_lt", "a": {"series": "ghost",
       "metric": "lat_p99_us"}, "b": {"series": "ghost",
       "metric": "lat_p50_us"}, "bound": 6.0},
      {"type": "metric_ratio_lt", "a": {"series": "emu",
       "metric": "no_such"}, "b": {"series": "emu",
       "metric": "lat_p50_us"}, "bound": 6.0},
      {"type": "metric_ratio_lt", "a": {"series": "emu",
       "metric": "lat_p99_us"}, "b": {"series": "emu",
       "metric": "no_such"}, "bound": 6.0},
      {"type": "metric_ratio_lt", "a": {"series": "emu"},
       "b": {"series": "emu"}, "bound": 6.0}
    ]})");
  const auto verdicts = emusim::report::evaluate(spec, serving_result());
  ASSERT_EQ(verdicts.size(), 4u);
  for (const auto& v : verdicts) {
    EXPECT_FALSE(v.pass) << v.desc << ": " << v.detail;
  }
}

TEST(Diff, LatencyExtrasReportButNeverGate) {
  const std::vector<BenchResult> base = {serving_result()};
  std::vector<BenchResult> cand = base;
  // Blow up a tail by 10x: visible in the report, but never a regression —
  // only the primary throughput y gates.
  for (auto& p : cand[0].series[0].points) {
    for (auto& [k, v] : p.extra) {
      if (k == "lat_p99_us") v *= 10.0;
    }
  }
  DiffOptions opt;
  const auto rep = emusim::report::diff_results(base, cand, opt);
  EXPECT_TRUE(rep.ok(opt));
  EXPECT_EQ(rep.regressions, 0);
  int latency_entries = 0;
  for (const auto& e : rep.entries) {
    if (e.metric.empty()) continue;
    EXPECT_TRUE(e.report_only);
    EXPECT_FALSE(e.regression);
    EXPECT_EQ(e.metric.rfind("lat_", 0), 0u);
    ++latency_entries;
  }
  // 3 labeled emu points x {lat_p50_us, lat_p99_us}.
  EXPECT_EQ(latency_entries, 6);

  // ...but a throughput regression on the same points still gates.
  cand[0].series[0].points[1].y *= 0.5;
  const auto rep2 = emusim::report::diff_results(base, cand, opt);
  EXPECT_FALSE(rep2.ok(opt));
  EXPECT_EQ(rep2.regressions, 1);
}

TEST(Results, LatencyBlobRoundTripsThroughJson) {
  BenchResult r = serving_result();
  Json blob = Json::object();
  Json hist = Json::object();
  hist.set("count", Json::number(128));
  hist.set("p99_ps", Json::number(142600000));
  blob.set("emu/zipf", std::move(hist));
  r.latency = std::move(blob);
  BenchResult back;
  std::string err;
  ASSERT_TRUE(BenchResult::from_json(r.to_json(), &back, &err)) << err;
  ASSERT_FALSE(back.latency.is_null());
  const Json* hist_back = back.latency.find("emu/zipf");
  ASSERT_NE(hist_back, nullptr);
  EXPECT_DOUBLE_EQ(hist_back->get_number("count"), 128.0);
  // Results without the additive key stay null through the round trip.
  BenchResult plain = sample_result();
  BenchResult plain_back;
  ASSERT_TRUE(
      BenchResult::from_json(plain.to_json(), &plain_back, &err)) << err;
  EXPECT_TRUE(plain_back.latency.is_null());
}

}  // namespace
