// Unit tests for the parallel sweep runner: submission-order merge no
// matter which worker finishes first, stable duplicate-point averaging
// across jobs, and failure propagation through the merge barrier.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "sweep_pool.hpp"

namespace {

using emusim::bench::Harness;
using emusim::bench::PointSink;
using emusim::bench::SweepPool;

struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    ptrs.push_back(const_cast<char*>("bench"));
    for (auto& s : storage) ptrs.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
};

/// Submit `n` jobs that finish in reverse submission order (the first job
/// sleeps longest) and return the merged result as JSON text.
std::string scrambled_run(int jobs, int n) {
  Argv a({"--jobs", std::to_string(jobs)});
  Harness h("sweep_pool_test", a.argc(), a.argv());
  h.table("scramble");
  SweepPool pool(h);
  for (int i = 0; i < n; ++i) {
    pool.submit([i, n](PointSink& sink) {
      std::this_thread::sleep_for(std::chrono::milliseconds(n - i));
      sink.add("s", i, i * 10.0, {{"extra", i * 100.0}});
    });
  }
  std::string err;
  EXPECT_TRUE(pool.drain(&err)) << err;
  return h.result().to_json().dump();
}

TEST(SweepPool, MergesInSubmissionOrderRegardlessOfCompletion) {
  // Workers race and complete back-to-front; the merged result must match
  // the single-worker (trivially ordered) run byte for byte.
  const std::string serial = scrambled_run(1, 8);
  const std::string parallel = scrambled_run(4, 8);
  EXPECT_EQ(serial, parallel);
}

TEST(SweepPool, JobsFlagControlsWorkerCount) {
  Argv a({"--jobs", "3"});
  Harness h("sweep_pool_test", a.argc(), a.argv());
  SweepPool pool(h);
  EXPECT_EQ(pool.jobs(), 3);
}

TEST(SweepPool, DuplicatePointsAverageStably) {
  // Two jobs land on the same (series, x): the merge must average them in
  // submission order, exactly as a serial --reps loop would.
  Argv a({"--jobs", "2"});
  Harness h("sweep_pool_test", a.argc(), a.argv());
  h.table("dups");
  SweepPool pool(h);
  pool.submit([](PointSink& sink) { sink.add("s", 1, 1.0); });
  pool.submit([](PointSink& sink) { sink.add("s", 1, 2.0); });
  std::string err;
  ASSERT_TRUE(pool.drain(&err)) << err;
  const auto& pts = h.result().series.at(0).points;
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_DOUBLE_EQ(pts[0].y, 1.5);
}

TEST(SweepPool, FailPropagatesToDrain) {
  Argv a({"--jobs", "2"});
  Harness h("sweep_pool_test", a.argc(), a.argv());
  h.table("fail");
  SweepPool pool(h);
  pool.submit([](PointSink& sink) { sink.add("s", 0, 1.0); });
  pool.submit([](PointSink& sink) { sink.fail("verification failed"); });
  std::string err;
  EXPECT_FALSE(pool.drain(&err));
  EXPECT_NE(err.find("verification failed"), std::string::npos) << err;
}

TEST(SweepPool, FirstFailureInSubmissionOrderWins) {
  // Job 2 fails fast, job 1 fails slow: the reported error must still be
  // job 1's, matching what the serial loop would have hit first.
  Argv a({"--jobs", "4"});
  Harness h("sweep_pool_test", a.argc(), a.argv());
  h.table("fail");
  SweepPool pool(h);
  pool.submit([](PointSink& sink) { sink.add("s", 0, 1.0); });
  pool.submit([](PointSink& sink) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sink.fail("earlier job");
  });
  pool.submit([](PointSink& sink) { sink.fail("later job"); });
  std::string err;
  EXPECT_FALSE(pool.drain(&err));
  EXPECT_NE(err.find("earlier job"), std::string::npos) << err;
  EXPECT_EQ(err.find("later job"), std::string::npos) << err;
}

TEST(SweepPool, UnhandledExceptionIsCaptured) {
  Argv a({"--jobs", "2"});
  Harness h("sweep_pool_test", a.argc(), a.argv());
  h.table("throw");
  SweepPool pool(h);
  pool.submit(
      [](PointSink&) { throw std::runtime_error("kernel blew up"); });
  std::string err;
  EXPECT_FALSE(pool.drain(&err));
  EXPECT_NE(err.find("kernel blew up"), std::string::npos) << err;
}

TEST(SweepPool, DrainResetsForReuse) {
  // Benches with several tables reuse one pool across loops; drain must
  // leave the pool ready for a fresh batch.
  Argv a({"--jobs", "2"});
  Harness h("sweep_pool_test", a.argc(), a.argv());
  h.table("first");
  SweepPool pool(h);
  pool.submit([](PointSink& sink) { sink.add("a", 0, 1.0); });
  std::string err;
  ASSERT_TRUE(pool.drain(&err)) << err;
  pool.submit([](PointSink& sink) { sink.add("a", 1, 2.0); });
  ASSERT_TRUE(pool.drain(&err)) << err;
  EXPECT_EQ(h.result().series.at(0).points.size(), 2u);
}

TEST(SweepPool, RngSeedIsPerJobAndStable) {
  Argv a({"--jobs", "4"});
  Harness h("sweep_pool_test", a.argc(), a.argv());
  h.table("seed");
  SweepPool pool(h);
  std::vector<std::uint64_t> seeds(3);
  for (int i = 0; i < 3; ++i) {
    pool.submit([i, &seeds](PointSink& sink) {
      seeds[static_cast<std::size_t>(i)] = sink.rng_seed();
    });
  }
  std::string err;
  ASSERT_TRUE(pool.drain(&err)) << err;
  EXPECT_NE(seeds[0], seeds[1]);
  EXPECT_NE(seeds[1], seeds[2]);
  // Stable across runs: derived from the submission index only.
  std::vector<std::uint64_t> again(3);
  for (int i = 0; i < 3; ++i) {
    pool.submit([i, &again](PointSink& sink) {
      again[static_cast<std::size_t>(i)] = sink.rng_seed();
    });
  }
  ASSERT_TRUE(pool.drain(&err)) << err;
  EXPECT_EQ(seeds, again);
}

}  // namespace
