# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_units[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_resource[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_emu_machine[1]_include.cmake")
include("/root/repo/build/tests/test_xeon_machine[1]_include.cmake")
include("/root/repo/build/tests/test_op[1]_include.cmake")
include("/root/repo/build/tests/test_random[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_alloc_views[1]_include.cmake")
include("/root/repo/build/tests/test_chase_list[1]_include.cmake")
include("/root/repo/build/tests/test_spmv_common[1]_include.cmake")
include("/root/repo/build/tests/test_kernels_emu[1]_include.cmake")
include("/root/repo/build/tests/test_kernels_xeon[1]_include.cmake")
include("/root/repo/build/tests/test_validation[1]_include.cmake")
include("/root/repo/build/tests/test_determinism[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_dram_properties[1]_include.cmake")
include("/root/repo/build/tests/test_features[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_sim_stress[1]_include.cmake")
include("/root/repo/build/tests/test_global_array[1]_include.cmake")
include("/root/repo/build/tests/test_config_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_cache_properties[1]_include.cmake")
