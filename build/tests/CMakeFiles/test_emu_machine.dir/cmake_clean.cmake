file(REMOVE_RECURSE
  "CMakeFiles/test_emu_machine.dir/test_emu_machine.cpp.o"
  "CMakeFiles/test_emu_machine.dir/test_emu_machine.cpp.o.d"
  "test_emu_machine"
  "test_emu_machine.pdb"
  "test_emu_machine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emu_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
