# Empty dependencies file for test_emu_machine.
# This may be replaced when dependencies are built.
