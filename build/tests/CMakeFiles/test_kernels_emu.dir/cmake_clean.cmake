file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_emu.dir/test_kernels_emu.cpp.o"
  "CMakeFiles/test_kernels_emu.dir/test_kernels_emu.cpp.o.d"
  "test_kernels_emu"
  "test_kernels_emu.pdb"
  "test_kernels_emu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
