# Empty compiler generated dependencies file for test_kernels_emu.
# This may be replaced when dependencies are built.
