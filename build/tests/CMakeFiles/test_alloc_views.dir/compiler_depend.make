# Empty compiler generated dependencies file for test_alloc_views.
# This may be replaced when dependencies are built.
