file(REMOVE_RECURSE
  "CMakeFiles/test_alloc_views.dir/test_alloc_views.cpp.o"
  "CMakeFiles/test_alloc_views.dir/test_alloc_views.cpp.o.d"
  "test_alloc_views"
  "test_alloc_views.pdb"
  "test_alloc_views[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloc_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
