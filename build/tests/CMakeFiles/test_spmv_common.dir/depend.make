# Empty dependencies file for test_spmv_common.
# This may be replaced when dependencies are built.
