file(REMOVE_RECURSE
  "CMakeFiles/test_spmv_common.dir/test_spmv_common.cpp.o"
  "CMakeFiles/test_spmv_common.dir/test_spmv_common.cpp.o.d"
  "test_spmv_common"
  "test_spmv_common.pdb"
  "test_spmv_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spmv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
