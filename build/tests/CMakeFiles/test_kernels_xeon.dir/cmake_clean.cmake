file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_xeon.dir/test_kernels_xeon.cpp.o"
  "CMakeFiles/test_kernels_xeon.dir/test_kernels_xeon.cpp.o.d"
  "test_kernels_xeon"
  "test_kernels_xeon.pdb"
  "test_kernels_xeon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_xeon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
