# Empty dependencies file for test_kernels_xeon.
# This may be replaced when dependencies are built.
