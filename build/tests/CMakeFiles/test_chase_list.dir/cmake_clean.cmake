file(REMOVE_RECURSE
  "CMakeFiles/test_chase_list.dir/test_chase_list.cpp.o"
  "CMakeFiles/test_chase_list.dir/test_chase_list.cpp.o.d"
  "test_chase_list"
  "test_chase_list.pdb"
  "test_chase_list[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chase_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
