# Empty compiler generated dependencies file for test_chase_list.
# This may be replaced when dependencies are built.
