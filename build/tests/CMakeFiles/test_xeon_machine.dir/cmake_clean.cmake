file(REMOVE_RECURSE
  "CMakeFiles/test_xeon_machine.dir/test_xeon_machine.cpp.o"
  "CMakeFiles/test_xeon_machine.dir/test_xeon_machine.cpp.o.d"
  "test_xeon_machine"
  "test_xeon_machine.pdb"
  "test_xeon_machine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xeon_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
