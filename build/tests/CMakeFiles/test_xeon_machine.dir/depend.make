# Empty dependencies file for test_xeon_machine.
# This may be replaced when dependencies are built.
