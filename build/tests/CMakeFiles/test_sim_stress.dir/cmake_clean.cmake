file(REMOVE_RECURSE
  "CMakeFiles/test_sim_stress.dir/test_sim_stress.cpp.o"
  "CMakeFiles/test_sim_stress.dir/test_sim_stress.cpp.o.d"
  "test_sim_stress"
  "test_sim_stress.pdb"
  "test_sim_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
