file(REMOVE_RECURSE
  "CMakeFiles/test_global_array.dir/test_global_array.cpp.o"
  "CMakeFiles/test_global_array.dir/test_global_array.cpp.o.d"
  "test_global_array"
  "test_global_array.pdb"
  "test_global_array[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_global_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
