# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_stream "/root/repo/build/tools/emusim_cli" "stream" "--n" "13" "--threads" "64")
set_tests_properties(cli_stream PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_chase_xeon "/root/repo/build/tools/emusim_cli" "chase" "--platform" "xeon" "--n" "14" "--block" "16" "--threads" "8")
set_tests_properties(cli_chase_xeon PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_spmv "/root/repo/build/tools/emusim_cli" "spmv" "--layout" "1d" "--lap-n" "30")
set_tests_properties(cli_spmv PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_gups "/root/repo/build/tools/emusim_cli" "gups" "--n" "14" "--updates" "12" "--threads" "64")
set_tests_properties(cli_gups PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bfs "/root/repo/build/tools/emusim_cli" "bfs" "--graph" "grid" "--side" "12")
set_tests_properties(cli_bfs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_mttkrp "/root/repo/build/tools/emusim_cli" "mttkrp" "--dim" "32" "--nnz" "2000" "--rank" "4")
set_tests_properties(cli_mttkrp PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
