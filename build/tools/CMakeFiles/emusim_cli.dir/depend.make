# Empty dependencies file for emusim_cli.
# This may be replaced when dependencies are built.
