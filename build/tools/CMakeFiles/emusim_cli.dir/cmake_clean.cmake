file(REMOVE_RECURSE
  "CMakeFiles/emusim_cli.dir/emusim_cli.cpp.o"
  "CMakeFiles/emusim_cli.dir/emusim_cli.cpp.o.d"
  "emusim_cli"
  "emusim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emusim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
