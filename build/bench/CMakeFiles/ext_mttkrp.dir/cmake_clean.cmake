file(REMOVE_RECURSE
  "CMakeFiles/ext_mttkrp.dir/ext_mttkrp.cpp.o"
  "CMakeFiles/ext_mttkrp.dir/ext_mttkrp.cpp.o.d"
  "ext_mttkrp"
  "ext_mttkrp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_mttkrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
