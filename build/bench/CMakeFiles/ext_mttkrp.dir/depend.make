# Empty dependencies file for ext_mttkrp.
# This may be replaced when dependencies are built.
