# Empty compiler generated dependencies file for abl_migration_cost.
# This may be replaced when dependencies are built.
