file(REMOVE_RECURSE
  "CMakeFiles/abl_migration_cost.dir/abl_migration_cost.cpp.o"
  "CMakeFiles/abl_migration_cost.dir/abl_migration_cost.cpp.o.d"
  "abl_migration_cost"
  "abl_migration_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_migration_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
