# Empty compiler generated dependencies file for fig04_stream_single_nodelet.
# This may be replaced when dependencies are built.
