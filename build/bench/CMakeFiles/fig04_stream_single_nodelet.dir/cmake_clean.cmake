file(REMOVE_RECURSE
  "CMakeFiles/fig04_stream_single_nodelet.dir/fig04_stream_single_nodelet.cpp.o"
  "CMakeFiles/fig04_stream_single_nodelet.dir/fig04_stream_single_nodelet.cpp.o.d"
  "fig04_stream_single_nodelet"
  "fig04_stream_single_nodelet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_stream_single_nodelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
