file(REMOVE_RECURSE
  "CMakeFiles/abl_numa.dir/abl_numa.cpp.o"
  "CMakeFiles/abl_numa.dir/abl_numa.cpp.o.d"
  "abl_numa"
  "abl_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
