# Empty compiler generated dependencies file for abl_numa.
# This may be replaced when dependencies are built.
