file(REMOVE_RECURSE
  "CMakeFiles/fig07_chase_xeon.dir/fig07_chase_xeon.cpp.o"
  "CMakeFiles/fig07_chase_xeon.dir/fig07_chase_xeon.cpp.o.d"
  "fig07_chase_xeon"
  "fig07_chase_xeon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_chase_xeon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
