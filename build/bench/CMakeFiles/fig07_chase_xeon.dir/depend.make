# Empty dependencies file for fig07_chase_xeon.
# This may be replaced when dependencies are built.
