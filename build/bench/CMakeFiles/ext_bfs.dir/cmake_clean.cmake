file(REMOVE_RECURSE
  "CMakeFiles/ext_bfs.dir/ext_bfs.cpp.o"
  "CMakeFiles/ext_bfs.dir/ext_bfs.cpp.o.d"
  "ext_bfs"
  "ext_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
