file(REMOVE_RECURSE
  "CMakeFiles/fig06_chase_emu.dir/fig06_chase_emu.cpp.o"
  "CMakeFiles/fig06_chase_emu.dir/fig06_chase_emu.cpp.o.d"
  "fig06_chase_emu"
  "fig06_chase_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_chase_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
