# Empty compiler generated dependencies file for fig06_chase_emu.
# This may be replaced when dependencies are built.
