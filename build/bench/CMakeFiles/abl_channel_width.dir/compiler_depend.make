# Empty compiler generated dependencies file for abl_channel_width.
# This may be replaced when dependencies are built.
