file(REMOVE_RECURSE
  "CMakeFiles/abl_channel_width.dir/abl_channel_width.cpp.o"
  "CMakeFiles/abl_channel_width.dir/abl_channel_width.cpp.o.d"
  "abl_channel_width"
  "abl_channel_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_channel_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
