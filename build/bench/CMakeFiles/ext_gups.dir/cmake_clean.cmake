file(REMOVE_RECURSE
  "CMakeFiles/ext_gups.dir/ext_gups.cpp.o"
  "CMakeFiles/ext_gups.dir/ext_gups.cpp.o.d"
  "ext_gups"
  "ext_gups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_gups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
