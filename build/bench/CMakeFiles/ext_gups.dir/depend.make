# Empty dependencies file for ext_gups.
# This may be replaced when dependencies are built.
