file(REMOVE_RECURSE
  "CMakeFiles/fig11_chase_64nodelet.dir/fig11_chase_64nodelet.cpp.o"
  "CMakeFiles/fig11_chase_64nodelet.dir/fig11_chase_64nodelet.cpp.o.d"
  "fig11_chase_64nodelet"
  "fig11_chase_64nodelet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_chase_64nodelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
