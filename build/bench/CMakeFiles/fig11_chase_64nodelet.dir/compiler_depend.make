# Empty compiler generated dependencies file for fig11_chase_64nodelet.
# This may be replaced when dependencies are built.
