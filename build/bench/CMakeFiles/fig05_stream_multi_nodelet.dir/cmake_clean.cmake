file(REMOVE_RECURSE
  "CMakeFiles/fig05_stream_multi_nodelet.dir/fig05_stream_multi_nodelet.cpp.o"
  "CMakeFiles/fig05_stream_multi_nodelet.dir/fig05_stream_multi_nodelet.cpp.o.d"
  "fig05_stream_multi_nodelet"
  "fig05_stream_multi_nodelet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_stream_multi_nodelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
