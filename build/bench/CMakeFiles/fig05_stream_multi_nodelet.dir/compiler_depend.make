# Empty compiler generated dependencies file for fig05_stream_multi_nodelet.
# This may be replaced when dependencies are built.
