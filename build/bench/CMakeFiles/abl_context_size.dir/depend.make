# Empty dependencies file for abl_context_size.
# This may be replaced when dependencies are built.
