file(REMOVE_RECURSE
  "CMakeFiles/abl_context_size.dir/abl_context_size.cpp.o"
  "CMakeFiles/abl_context_size.dir/abl_context_size.cpp.o.d"
  "abl_context_size"
  "abl_context_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_context_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
