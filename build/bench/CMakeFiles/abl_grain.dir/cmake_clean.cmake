file(REMOVE_RECURSE
  "CMakeFiles/abl_grain.dir/abl_grain.cpp.o"
  "CMakeFiles/abl_grain.dir/abl_grain.cpp.o.d"
  "abl_grain"
  "abl_grain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_grain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
