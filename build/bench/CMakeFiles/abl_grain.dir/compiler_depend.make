# Empty compiler generated dependencies file for abl_grain.
# This may be replaced when dependencies are built.
