# Empty dependencies file for fig10_validation.
# This may be replaced when dependencies are built.
