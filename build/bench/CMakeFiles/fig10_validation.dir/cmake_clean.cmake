file(REMOVE_RECURSE
  "CMakeFiles/fig10_validation.dir/fig10_validation.cpp.o"
  "CMakeFiles/fig10_validation.dir/fig10_validation.cpp.o.d"
  "fig10_validation"
  "fig10_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
