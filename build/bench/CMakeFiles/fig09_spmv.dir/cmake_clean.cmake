file(REMOVE_RECURSE
  "CMakeFiles/fig09_spmv.dir/fig09_spmv.cpp.o"
  "CMakeFiles/fig09_spmv.dir/fig09_spmv.cpp.o.d"
  "fig09_spmv"
  "fig09_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
