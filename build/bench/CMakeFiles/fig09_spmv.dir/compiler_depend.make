# Empty compiler generated dependencies file for fig09_spmv.
# This may be replaced when dependencies are built.
