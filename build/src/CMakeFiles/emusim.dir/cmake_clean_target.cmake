file(REMOVE_RECURSE
  "libemusim.a"
)
