
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/units.cpp" "src/CMakeFiles/emusim.dir/common/units.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/common/units.cpp.o.d"
  "/root/repo/src/emu/config.cpp" "src/CMakeFiles/emusim.dir/emu/config.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/emu/config.cpp.o.d"
  "/root/repo/src/emu/counters.cpp" "src/CMakeFiles/emusim.dir/emu/counters.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/emu/counters.cpp.o.d"
  "/root/repo/src/emu/machine.cpp" "src/CMakeFiles/emusim.dir/emu/machine.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/emu/machine.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/emusim.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/graph/graph.cpp.o.d"
  "/root/repo/src/kernels/bfs_emu.cpp" "src/CMakeFiles/emusim.dir/kernels/bfs_emu.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/kernels/bfs_emu.cpp.o.d"
  "/root/repo/src/kernels/bfs_xeon.cpp" "src/CMakeFiles/emusim.dir/kernels/bfs_xeon.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/kernels/bfs_xeon.cpp.o.d"
  "/root/repo/src/kernels/chase_common.cpp" "src/CMakeFiles/emusim.dir/kernels/chase_common.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/kernels/chase_common.cpp.o.d"
  "/root/repo/src/kernels/chase_emu.cpp" "src/CMakeFiles/emusim.dir/kernels/chase_emu.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/kernels/chase_emu.cpp.o.d"
  "/root/repo/src/kernels/chase_xeon.cpp" "src/CMakeFiles/emusim.dir/kernels/chase_xeon.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/kernels/chase_xeon.cpp.o.d"
  "/root/repo/src/kernels/gups.cpp" "src/CMakeFiles/emusim.dir/kernels/gups.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/kernels/gups.cpp.o.d"
  "/root/repo/src/kernels/mttkrp_emu.cpp" "src/CMakeFiles/emusim.dir/kernels/mttkrp_emu.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/kernels/mttkrp_emu.cpp.o.d"
  "/root/repo/src/kernels/mttkrp_xeon.cpp" "src/CMakeFiles/emusim.dir/kernels/mttkrp_xeon.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/kernels/mttkrp_xeon.cpp.o.d"
  "/root/repo/src/kernels/pingpong.cpp" "src/CMakeFiles/emusim.dir/kernels/pingpong.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/kernels/pingpong.cpp.o.d"
  "/root/repo/src/kernels/spmv_common.cpp" "src/CMakeFiles/emusim.dir/kernels/spmv_common.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/kernels/spmv_common.cpp.o.d"
  "/root/repo/src/kernels/spmv_emu.cpp" "src/CMakeFiles/emusim.dir/kernels/spmv_emu.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/kernels/spmv_emu.cpp.o.d"
  "/root/repo/src/kernels/spmv_xeon.cpp" "src/CMakeFiles/emusim.dir/kernels/spmv_xeon.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/kernels/spmv_xeon.cpp.o.d"
  "/root/repo/src/kernels/stream_emu.cpp" "src/CMakeFiles/emusim.dir/kernels/stream_emu.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/kernels/stream_emu.cpp.o.d"
  "/root/repo/src/kernels/stream_xeon.cpp" "src/CMakeFiles/emusim.dir/kernels/stream_xeon.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/kernels/stream_xeon.cpp.o.d"
  "/root/repo/src/mem/dram.cpp" "src/CMakeFiles/emusim.dir/mem/dram.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/mem/dram.cpp.o.d"
  "/root/repo/src/report/csv.cpp" "src/CMakeFiles/emusim.dir/report/csv.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/report/csv.cpp.o.d"
  "/root/repo/src/report/table.cpp" "src/CMakeFiles/emusim.dir/report/table.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/report/table.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/emusim.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/emusim.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/sim/trace.cpp.o.d"
  "/root/repo/src/tensor/coo.cpp" "src/CMakeFiles/emusim.dir/tensor/coo.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/tensor/coo.cpp.o.d"
  "/root/repo/src/xeon/cache.cpp" "src/CMakeFiles/emusim.dir/xeon/cache.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/xeon/cache.cpp.o.d"
  "/root/repo/src/xeon/config.cpp" "src/CMakeFiles/emusim.dir/xeon/config.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/xeon/config.cpp.o.d"
  "/root/repo/src/xeon/machine.cpp" "src/CMakeFiles/emusim.dir/xeon/machine.cpp.o" "gcc" "src/CMakeFiles/emusim.dir/xeon/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
