# Empty dependencies file for emusim.
# This may be replaced when dependencies are built.
