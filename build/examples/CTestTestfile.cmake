# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_streaming_graph "/root/repo/build/examples/streaming_graph_degree")
set_tests_properties(example_streaming_graph PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spmv_layouts "/root/repo/build/examples/spmv_layouts" "40")
set_tests_properties(example_spmv_layouts PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_global_arrays "/root/repo/build/examples/global_arrays")
set_tests_properties(example_global_arrays PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
