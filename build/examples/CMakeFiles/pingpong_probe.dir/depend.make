# Empty dependencies file for pingpong_probe.
# This may be replaced when dependencies are built.
