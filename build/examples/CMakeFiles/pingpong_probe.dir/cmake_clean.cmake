file(REMOVE_RECURSE
  "CMakeFiles/pingpong_probe.dir/pingpong_probe.cpp.o"
  "CMakeFiles/pingpong_probe.dir/pingpong_probe.cpp.o.d"
  "pingpong_probe"
  "pingpong_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pingpong_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
