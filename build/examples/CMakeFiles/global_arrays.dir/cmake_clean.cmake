file(REMOVE_RECURSE
  "CMakeFiles/global_arrays.dir/global_arrays.cpp.o"
  "CMakeFiles/global_arrays.dir/global_arrays.cpp.o.d"
  "global_arrays"
  "global_arrays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_arrays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
