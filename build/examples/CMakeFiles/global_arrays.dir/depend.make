# Empty dependencies file for global_arrays.
# This may be replaced when dependencies are built.
