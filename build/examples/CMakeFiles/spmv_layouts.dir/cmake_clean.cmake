file(REMOVE_RECURSE
  "CMakeFiles/spmv_layouts.dir/spmv_layouts.cpp.o"
  "CMakeFiles/spmv_layouts.dir/spmv_layouts.cpp.o.d"
  "spmv_layouts"
  "spmv_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
