# Empty dependencies file for spmv_layouts.
# This may be replaced when dependencies are built.
