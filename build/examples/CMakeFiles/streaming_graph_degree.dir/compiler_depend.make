# Empty compiler generated dependencies file for streaming_graph_degree.
# This may be replaced when dependencies are built.
