file(REMOVE_RECURSE
  "CMakeFiles/streaming_graph_degree.dir/streaming_graph_degree.cpp.o"
  "CMakeFiles/streaming_graph_degree.dir/streaming_graph_degree.cpp.o.d"
  "streaming_graph_degree"
  "streaming_graph_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_graph_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
