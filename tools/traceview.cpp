// traceview — summarize and validate the Chrome/Perfetto trace-event JSON
// files that the bench harness's --trace flag emits (docs/OBSERVABILITY.md).
//
//   traceview [--check] [--strict] [--top <n>] <trace.json>
//
// Default mode prints a human summary: top migration routes (from the flow
// arrows), a per-nodelet residency timeline (from the "resident threads"
// counter tracks), and — always — the dropped/truncated record accounting
// from the trace's own metadata.  A truncated trace is still a usable trace;
// what is never acceptable is pretending it is complete.
//
//   --check   structural validation: metadata present, every event carries
//             the fields its phase requires, B/E slices balance per thread
//             track, and every flow id has exactly one 's' and one 'f' in
//             causal order.  Exit 1 on the first batch of violations.
//   --strict  with --check: additionally fail when the trace is truncated
//             (ring overwrote records) or records were dropped.  CI uses
//             this to keep golden fixtures honest.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "report/json.hpp"

using emusim::report::Json;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--check] [--strict] [--top <n>] <trace.json>\n",
               argv0);
  return 2;
}

struct Accounting {
  double records = 0;
  double dropped = 0;
  bool truncated = false;
  bool ring = false;
  double num_nodelets = 0;
  bool present = false;
};

Accounting read_accounting(const Json& root) {
  Accounting a;
  const Json* other = root.find("otherData");
  const Json* meta = other ? other->find("emusim") : nullptr;
  if (!meta || !meta->is_object()) return a;
  a.present = true;
  a.records = meta->get_number("records");
  a.dropped = meta->get_number("dropped");
  a.truncated = meta->get_bool("truncated");
  a.ring = meta->get_bool("ring");
  a.num_nodelets = meta->get_number("num_nodelets");
  return a;
}

void print_accounting(const Accounting& a) {
  if (!a.present) {
    std::printf("accounting: no emusim metadata (not written by --trace?)\n");
    return;
  }
  std::printf("accounting: %.0f records retained, %.0f dropped (%s mode)%s\n",
              a.records, a.dropped, a.ring ? "ring" : "linear",
              a.truncated ? " -- trace TRUNCATED, aggregates are partial"
                          : " -- complete");
}

/// Structural validation (--check).  Appends human-readable violations to
/// `errs`, capped so a malformed file cannot flood the terminal.
void check_events(const Json& events, std::vector<std::string>* errs) {
  constexpr std::size_t kMaxErrs = 10;
  auto fail = [&](std::size_t i, const std::string& what) {
    if (errs->size() < kMaxErrs)
      errs->push_back("event " + std::to_string(i) + ": " + what);
  };
  // Per-(pid,tid) open-slice depth; per-flow-id ('s' count, 'f' count, ts).
  std::map<std::pair<int, int>, int> depth;
  struct Flow {
    int starts = 0, ends = 0;
    double start_ts = 0;
  };
  std::map<int, Flow> flows;
  const auto& items = events.items();
  for (std::size_t i = 0; i < items.size(); ++i) {
    const Json& e = items[i];
    if (!e.is_object()) {
      fail(i, "not an object");
      continue;
    }
    const std::string ph = e.get_string("ph");
    if (ph.size() != 1 || std::string("MBECisf").find(ph) == std::string::npos) {
      fail(i, "unknown ph '" + ph + "'");
      continue;
    }
    const Json* pid = e.find("pid");
    if (!pid || !pid->is_number()) fail(i, "missing numeric pid");
    if (ph == "M") continue;  // metadata carries no timestamp
    const Json* ts = e.find("ts");
    if (!ts || !ts->is_number()) {
      fail(i, ph + " event missing numeric ts");
      continue;
    }
    const int p = pid && pid->is_number() ? static_cast<int>(pid->as_number())
                                          : -1;
    const Json* tid = e.find("tid");
    const int t = tid && tid->is_number() ? static_cast<int>(tid->as_number())
                                          : -1;
    if (ph == "B" || ph == "E") {
      if (t < 0) fail(i, ph + " slice missing tid");
      int& d = depth[{p, t}];
      if (ph == "B") {
        ++d;
      } else if (--d < 0) {
        fail(i, "E without matching B on pid " + std::to_string(p) +
                    " tid " + std::to_string(t));
        d = 0;
      }
    } else if (ph == "s" || ph == "f") {
      const Json* id = e.find("id");
      if (!id || !id->is_number()) {
        fail(i, "flow event missing numeric id");
        continue;
      }
      Flow& fl = flows[static_cast<int>(id->as_number())];
      if (ph == "s") {
        ++fl.starts;
        fl.start_ts = ts->as_number();
      } else {
        ++fl.ends;
        if (e.get_string("bp") != "e") fail(i, "flow end missing bp:\"e\"");
        if (fl.starts == 0)
          fail(i, "flow 'f' before its 's'");
        else if (ts->as_number() < fl.start_ts)
          fail(i, "flow 'f' earlier than its 's'");
      }
    } else if (ph == "C") {
      const Json* args = e.find("args");
      if (!args || !args->is_object() || args->members().empty() ||
          !args->members().front().second.is_number())
        fail(i, "counter event without a numeric args member");
    }
  }
  for (const auto& [key, d] : depth)
    if (d != 0 && errs->size() < kMaxErrs)
      errs->push_back("unclosed slice: pid " + std::to_string(key.first) +
                      " tid " + std::to_string(key.second) + " depth " +
                      std::to_string(d));
  for (const auto& [id, fl] : flows)
    if ((fl.starts != 1 || fl.ends != 1) && errs->size() < kMaxErrs)
      errs->push_back("flow id " + std::to_string(id) + " has " +
                      std::to_string(fl.starts) + " starts / " +
                      std::to_string(fl.ends) + " ends (want 1/1)");
}

void print_summary(const Json& events, const Accounting& acct, int top_n) {
  // Route histogram from flow starts; residency samples from counter tracks.
  std::map<std::pair<int, int>, long long> routes;
  struct Sample {
    double ts;
    double value;
  };
  std::map<int, std::vector<Sample>> resident;  // pid -> samples
  std::map<std::string, long long> by_ph;
  double t_min = 0, t_max = 0;
  bool have_span = false;
  for (const Json& e : events.items()) {
    if (!e.is_object()) continue;
    const std::string ph = e.get_string("ph");
    ++by_ph[ph];
    const Json* ts = e.find("ts");
    if (ts && ts->is_number()) {
      const double t = ts->as_number();
      if (!have_span || t < t_min) t_min = t;
      if (!have_span || t > t_max) t_max = t;
      have_span = true;
    }
    if (ph == "s") {
      const Json* args = e.find("args");
      if (args) {
        routes[{static_cast<int>(args->get_number("src", -1)),
                static_cast<int>(args->get_number("dst", -1))}]++;
      }
    } else if (ph == "C" && e.get_string("name") == "resident threads") {
      const Json* args = e.find("args");
      if (args && ts && ts->is_number())
        resident[static_cast<int>(e.get_number("pid", -1))].push_back(
            {ts->as_number(), args->get_number("threads")});
    }
  }

  std::printf("events:");
  for (const auto& [ph, n] : by_ph) std::printf(" %s=%lld", ph.c_str(), n);
  std::printf("\n");
  if (have_span)
    std::printf("span: %.3f us .. %.3f us (%.3f us)\n", t_min, t_max,
                t_max - t_min);

  long long total_migrations = 0;
  for (const auto& [route, n] : routes) total_migrations += n;
  std::printf("\nmigration routes (%lld migrations in trace window):\n",
              total_migrations);
  if (routes.empty()) {
    std::printf("  none recorded\n");
  } else {
    std::vector<std::pair<std::pair<int, int>, long long>> sorted(
        routes.begin(), routes.end());
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      return a.second != b.second ? a.second > b.second : a.first < b.first;
    });
    const std::size_t n_show =
        std::min<std::size_t>(sorted.size(), static_cast<std::size_t>(top_n));
    for (std::size_t i = 0; i < n_show; ++i)
      std::printf("  nlet %d -> nlet %d : %lld\n", sorted[i].first.first,
                  sorted[i].first.second, sorted[i].second);
    if (n_show < sorted.size())
      std::printf("  ... %zu more routes\n", sorted.size() - n_show);
  }

  std::printf("\nper-nodelet residency (time-weighted over trace span):\n");
  if (resident.empty() || !have_span || t_max <= t_min) {
    std::printf("  no resident-thread counter samples\n");
  } else {
    for (auto& [pid, samples] : resident) {
      std::stable_sort(
          samples.begin(), samples.end(),
          [](const Sample& a, const Sample& b) { return a.ts < b.ts; });
      double weighted = 0, busy = 0, vmax = 0;
      for (std::size_t i = 0; i < samples.size(); ++i) {
        const double until =
            i + 1 < samples.size() ? samples[i + 1].ts : t_max;
        const double dt = std::max(0.0, until - samples[i].ts);
        weighted += samples[i].value * dt;
        if (samples[i].value > 0) busy += dt;
        vmax = std::max(vmax, samples[i].value);
      }
      const double span = t_max - t_min;
      std::printf("  nlet %d : mean %.2f, max %.0f threads, occupied %.1f%% "
                  "of span\n",
                  pid, weighted / span, vmax, 100.0 * busy / span);
    }
  }
  std::printf("\n");
  print_accounting(acct);
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false, strict = false;
  int top_n = 10;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--top" && i + 1 < argc) {
      top_n = std::atoi(argv[++i]);
      if (top_n <= 0) {
        std::fprintf(stderr, "traceview: --top wants a positive integer\n");
        return usage(argv[0]);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "traceview: unknown or incomplete flag '%s'\n",
                   arg.c_str());
      return usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "traceview: more than one trace file given\n");
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);
  if (strict) check = true;  // --strict is a stricter --check

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "traceview: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  Json root;
  std::string err;
  if (!Json::parse(buf.str(), &root, &err)) {
    std::fprintf(stderr, "traceview: %s: malformed JSON: %s\n", path.c_str(),
                 err.c_str());
    return 1;
  }
  if (!root.is_object()) {
    std::fprintf(stderr, "traceview: %s: top level is not an object\n",
                 path.c_str());
    return 1;
  }
  const Json* events = root.find("traceEvents");
  if (!events || !events->is_array()) {
    std::fprintf(stderr, "traceview: %s: missing traceEvents array\n",
                 path.c_str());
    return 1;
  }
  const Accounting acct = read_accounting(root);

  if (check) {
    std::vector<std::string> errs;
    if (!acct.present)
      errs.push_back("missing otherData.emusim accounting metadata");
    check_events(*events, &errs);
    if (strict && (acct.truncated || acct.dropped > 0))
      errs.push_back("strict: trace is truncated (" +
                     std::to_string(static_cast<long long>(acct.dropped)) +
                     " records dropped)");
    if (!errs.empty()) {
      for (const auto& e : errs)
        std::fprintf(stderr, "traceview: %s: %s\n", path.c_str(), e.c_str());
      std::fprintf(stderr, "traceview: %s: FAILED %s\n", path.c_str(),
                   strict ? "--check --strict" : "--check");
      return 1;
    }
    print_accounting(acct);
    std::printf("%s: OK (%zu events%s)\n", path.c_str(),
                events->items().size(), strict ? ", strict" : "");
    return 0;
  }

  std::printf("%s\n", path.c_str());
  print_summary(*events, acct, top_n);
  return 0;
}
