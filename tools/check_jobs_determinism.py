#!/usr/bin/env python3
"""Check that a bench produces identical results at --jobs 1 and --jobs N.

Runs the given bench binary twice (serial and parallel), captures the JSON
result of each, strips the host-wall-clock fields (wall_seconds, and the
y/extras of any series marked y_wall_clock), and requires the remainder to
be byte-identical.  This is the executable form of the sweep runner's
guarantee: parallelism may change only how long the sweep takes, never what
it reports.

usage: check_jobs_determinism.py <bench-binary> [jobs] [extra bench args...]
"""
import json
import subprocess
import sys
import tempfile
import os


def strip_wall_fields(result):
    result.pop("wall_seconds", None)
    if result.pop("y_wall_clock", False):
        # Wall-clock y values (micro_simcore) are expected to vary run to
        # run; only the sweep structure is checked for such benches.
        for series in result.get("series", []):
            for point in series.get("points", []):
                point.pop("y", None)
                point.pop("extra", None)
    return result


def run(binary, jobs, extra):
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        path = tmp.name
    try:
        cmd = [binary, "--quick", "--jobs", str(jobs), "--json", path] + extra
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            sys.exit(f"{' '.join(cmd)} exited {proc.returncode}:\n"
                     f"{proc.stdout}\n{proc.stderr}")
        with open(path) as f:
            return strip_wall_fields(json.load(f))
    finally:
        os.unlink(path)


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    binary = sys.argv[1]
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    extra = sys.argv[3:]
    serial = run(binary, 1, extra)
    parallel = run(binary, jobs, extra)
    if serial != parallel:
        a = json.dumps(serial, indent=1, sort_keys=True).splitlines()
        b = json.dumps(parallel, indent=1, sort_keys=True).splitlines()
        diff = [f"-{x}\n+{y}" for x, y in zip(a, b) if x != y]
        sys.exit(f"{binary}: --jobs 1 vs --jobs {jobs} results differ "
                 f"after stripping wall-clock fields:\n" + "\n".join(diff[:40]))
    print(f"{os.path.basename(binary)}: --jobs 1 == --jobs {jobs} "
          f"({len(serial.get('series', []))} series) OK")


if __name__ == "__main__":
    main()
