#!/usr/bin/env python3
"""Check that a bench produces identical results serial vs parallel.

Runs the given bench binary twice — with the chosen parallelism flag at 1
and at N — captures the JSON result of each, strips the host-wall-clock
fields (wall_seconds, and the y/extras of any series marked y_wall_clock),
and requires the remainder to be byte-identical.

Two flags carry that guarantee and both are gated with this script:

  --flag jobs            the sweep runner (bench/sweep_pool.hpp): points
                         merge in submission order regardless of
                         completion order
  --flag engine-threads  the windowed parallel engine (src/sim/shard.hpp):
                         per-node shards under conservative time windows,
                         canonical mailbox drain order

Extra arguments after the thread count are passed verbatim to both runs,
so the engine-threads gate composes with the shard-granularity switch:

  check_jobs_determinism.py --flag engine-threads bench 4 --engine-shard=nodelet

checks that per-nodelet sharding under two-level windows is equally
thread-count-invariant.  (node vs nodelet outputs are distinct machine
models and are never compared with each other.)

usage: check_jobs_determinism.py [--flag NAME] <bench-binary> [n] [extra...]
"""
import json
import subprocess
import sys
import tempfile
import os


def strip_wall_fields(result):
    result.pop("wall_seconds", None)
    if result.pop("y_wall_clock", False):
        # Wall-clock y values (micro_simcore) are expected to vary run to
        # run; only the sweep structure is checked for such benches.
        for series in result.get("series", []):
            for point in series.get("points", []):
                point.pop("y", None)
                point.pop("extra", None)
    # events_per_sec is engine_events over host wall time: the only
    # wall-derived point extra on simulated-metric benches.  engine_events
    # and mem_peak_bytes stay — both are deterministic and must match.
    for series in result.get("series", []):
        for point in series.get("points", []):
            extra = point.get("extra")
            if isinstance(extra, dict):
                extra.pop("events_per_sec", None)
    return result


def run(binary, flag, n, extra):
    # A listed-but-unbuilt bench must fail the gate, not die in a confusing
    # FileNotFoundError inside subprocess: CI loops over bench names, and a
    # typo'd or dropped binary silently skipping would hollow out the gate.
    if not (os.path.isfile(binary) and os.access(binary, os.X_OK)):
        sys.exit(f"check_jobs_determinism: bench binary '{binary}' does not "
                 f"exist or is not executable — build it (or fix the gate's "
                 f"bench list)")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        path = tmp.name
    try:
        cmd = [binary, "--quick", f"--{flag}", str(n), "--json", path] + extra
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            sys.exit(f"{' '.join(cmd)} exited {proc.returncode}:\n"
                     f"{proc.stdout}\n{proc.stderr}")
        with open(path) as f:
            return strip_wall_fields(json.load(f))
    finally:
        os.unlink(path)


def main():
    args = sys.argv[1:]
    flag = "jobs"
    if args and args[0] == "--flag":
        if len(args) < 2:
            sys.exit(__doc__)
        flag = args[1]
        args = args[2:]
    if not args:
        sys.exit(__doc__)
    binary = args[0]
    n = int(args[1]) if len(args) > 1 else 8
    extra = args[2:]
    serial = run(binary, flag, 1, extra)
    parallel = run(binary, flag, n, extra)
    if serial != parallel:
        a = json.dumps(serial, indent=1, sort_keys=True).splitlines()
        b = json.dumps(parallel, indent=1, sort_keys=True).splitlines()
        diff = [f"-{x}\n+{y}" for x, y in zip(a, b) if x != y]
        sys.exit(f"{binary}: --{flag} 1 vs --{flag} {n} results differ "
                 f"after stripping wall-clock fields:\n" + "\n".join(diff[:40]))
    print(f"{os.path.basename(binary)}: --{flag} 1 == --{flag} {n} "
          f"({len(serial.get('series', []))} series) OK")


if __name__ == "__main__":
    main()
