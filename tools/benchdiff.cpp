// benchdiff — compare two sets of bench result JSONs and fail on
// regressions of the primary metric beyond a tolerance.  CI diffs a PR's
// --quick run against the committed baseline under results/quick/.
//
//   benchdiff --baseline <file-or-dir> --candidate <file-or-dir>
//             [--tolerance <pct>] [--no-coverage] [--verbose]
//
// The simulator is deterministic, so on an unchanged build every simulated
// metric reproduces exactly; the default 5% tolerance absorbs deliberate
// recalibration, not noise.  Baseline coverage is required by default:
// every baseline point must exist in the candidate (dropping a bench or a
// sweep point is itself a regression).  Candidate-only data is ignored.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "report/diff.hpp"
#include "report/results.hpp"

namespace fs = std::filesystem;
using emusim::report::BenchResult;
using emusim::report::DiffOptions;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --baseline <file-or-dir> --candidate <file-or-dir>\n"
               "          [--tolerance <pct>] [--no-coverage] [--verbose]\n",
               argv0);
  return 2;
}

std::vector<BenchResult> load_results(const std::string& path, bool* ok) {
  std::vector<std::string> files;
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    for (const auto& e : fs::directory_iterator(path, ec)) {
      if (e.path().extension() == ".json") files.push_back(e.path().string());
    }
    std::sort(files.begin(), files.end());
  } else if (fs::exists(path, ec)) {
    files.push_back(path);
  }
  if (files.empty()) {
    std::fprintf(stderr, "benchdiff: no result files at %s\n", path.c_str());
    *ok = false;
    return {};
  }
  std::vector<BenchResult> out;
  for (const auto& f : files) {
    BenchResult r;
    std::string err;
    if (!BenchResult::load(f, &r, &err)) {
      std::fprintf(stderr, "benchdiff: %s: %s\n", f.c_str(), err.c_str());
      *ok = false;
      return {};
    }
    out.push_back(std::move(r));
  }
  *ok = true;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string base_path, cand_path;
  DiffOptions opt;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      base_path = argv[++i];
    } else if (arg == "--candidate" && i + 1 < argc) {
      cand_path = argv[++i];
    } else if (arg == "--tolerance" && i + 1 < argc) {
      char* end = nullptr;
      opt.max_regress_pct = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || opt.max_regress_pct < 0) {
        std::fprintf(stderr, "benchdiff: bad --tolerance '%s'\n", argv[i]);
        return usage(argv[0]);
      }
    } else if (arg == "--no-coverage") {
      opt.require_coverage = false;
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr, "benchdiff: unknown or incomplete flag '%s'\n",
                   arg.c_str());
      return usage(argv[0]);
    }
  }
  if (base_path.empty() || cand_path.empty()) return usage(argv[0]);

  bool ok = false;
  const auto baseline = load_results(base_path, &ok);
  if (!ok) return 2;
  const auto candidate = load_results(cand_path, &ok);
  if (!ok) return 2;

  const auto report = emusim::report::diff_results(baseline, candidate, opt);
  for (const auto& p : report.problems) {
    std::printf("PROBLEM %s\n", p.c_str());
  }
  for (const auto& e : report.entries) {
    if (!e.regression && !verbose) continue;
    const std::string pt =
        e.label.empty() ? "x=" + std::to_string(e.x) : e.label;
    const std::string what =
        e.metric.empty() ? e.series : e.series + ":" + e.metric;
    std::printf("%s %s/%s %s: %.4g -> %.4g (%+.2f%%)\n",
                e.regression     ? "REGRESSION"
                : e.report_only  ? "latency   "
                : e.wall_clock   ? "wall-clock"
                                 : "ok        ",
                e.bench.c_str(), what.c_str(), pt.c_str(), e.base_y,
                e.cand_y, e.delta_pct);
  }
  std::printf(
      "benchdiff: %zu point(s) compared, %d regression(s) (tolerance "
      "%.1f%%), %d improvement(s), %zu problem(s)%s\n",
      report.entries.size(), report.regressions, opt.max_regress_pct,
      report.improvements, report.problems.size(),
      opt.require_coverage || report.problems.empty()
          ? ""
          : " [ignored: --no-coverage]");
  return report.ok(opt) ? 0 : 1;
}
