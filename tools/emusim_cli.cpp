// emusim command-line driver: run any benchmark kernel on any machine
// configuration without writing code, with optional config overrides and
// the per-nodelet counter report.
//
//   emusim_cli stream   --config chick_hw --threads 512 --n 20
//   emusim_cli chase    --config chick_fullspeed8 --block 4 --threads 1024
//   emusim_cli chase    --platform xeon --block 256 --threads 32
//   emusim_cli spmv     --layout 2d --lap-n 100 --grain 16 --counters
//   emusim_cli spmv     --platform xeon --impl cilk_spawn --grain 16384
//   emusim_cli pingpong --config chick_as_simulated --threads 64
//   emusim_cli gups     --threads 512
//   emusim_cli bfs      --graph rmat --scale 12
//   emusim_cli mttkrp   --layout 1d --rank 8
//
// Overrides (Emu configs): --gc-mhz, --mig-per-sec, --mig-latency-us.
// `--n` is log2 of the element count for stream/chase/gups.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "emu/counters.hpp"
#include "kernels/bfs_emu.hpp"
#include "kernels/chase_emu.hpp"
#include "kernels/chase_xeon.hpp"
#include "kernels/gups.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/pingpong.hpp"
#include "kernels/spmv_emu.hpp"
#include "kernels/spmv_xeon.hpp"
#include "kernels/stream_emu.hpp"
#include "kernels/stream_xeon.hpp"

using namespace emusim;

namespace {

struct Args {
  std::string benchmark;
  std::map<std::string, std::string> opts;

  bool has(const std::string& k) const { return opts.count(k) > 0; }
  std::string str(const std::string& k, const std::string& dflt) const {
    auto it = opts.find(k);
    return it == opts.end() ? dflt : it->second;
  }
  long long num(const std::string& k, long long dflt) const {
    auto it = opts.find(k);
    return it == opts.end() ? dflt : std::atoll(it->second.c_str());
  }
  double real(const std::string& k, double dflt) const {
    auto it = opts.find(k);
    return it == opts.end() ? dflt : std::atof(it->second.c_str());
  }
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: emusim_cli <stream|chase|spmv|pingpong|gups|bfs|"
               "mttkrp> [--key value ...]\n"
               "  common: --platform emu|xeon  --config <name>  --threads N\n"
               "          --counters (print the per-nodelet report, emu)\n"
               "  sizes:  --n LOG2  --block B  --lap-n N  --grain G "
               "--rank R\n"
               "  emu configs: chick_hw chick_as_simulated chick_fullspeed "
               "chick_fullspeed8\n"
               "  xeon configs: sandy_bridge haswell\n"
               "  emu overrides: --gc-mhz F  --mig-per-sec F  "
               "--mig-latency-us F\n");
  std::exit(2);
}

Args parse(int argc, char** argv) {
  if (argc < 2) usage();
  Args a;
  a.benchmark = argv[1];
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) usage("expected --key");
    if (std::strcmp(arg, "--counters") == 0) {
      a.opts["counters"] = "1";
      continue;
    }
    if (i + 1 >= argc) usage("missing value");
    a.opts[arg + 2] = argv[++i];
  }
  return a;
}

emu::SystemConfig emu_config(const Args& a) {
  const std::string name = a.str("config", "chick_hw");
  emu::SystemConfig cfg;
  if (name == "chick_hw") {
    cfg = emu::SystemConfig::chick_hw();
  } else if (name == "chick_as_simulated") {
    cfg = emu::SystemConfig::chick_as_simulated();
  } else if (name == "chick_fullspeed") {
    cfg = emu::SystemConfig::chick_fullspeed();
  } else if (name == "chick_fullspeed8") {
    cfg = emu::SystemConfig::fullspeed_multinode(8);
  } else {
    usage("unknown emu config");
  }
  if (a.has("gc-mhz")) cfg.gc_clock_hz = a.real("gc-mhz", 150) * 1e6;
  if (a.has("mig-per-sec")) {
    cfg.migrations_per_sec = a.real("mig-per-sec", 9e6);
  }
  if (a.has("mig-latency-us")) {
    cfg.migration_latency = us(a.real("mig-latency-us", 1.4));
  }
  return cfg;
}

xeon::SystemConfig xeon_config(const Args& a) {
  const std::string name = a.str("config", "sandy_bridge");
  if (name == "sandy_bridge") return xeon::SystemConfig::sandy_bridge();
  if (name == "haswell") return xeon::SystemConfig::haswell();
  usage("unknown xeon config");
}

void print_summary(const char* what, double value, const char* unit,
                   Time elapsed) {
  std::printf("%-10s %12.2f %-8s (simulated %s)\n", what, value, unit,
              format_time(elapsed).c_str());
}

int run_stream(const Args& a) {
  const auto n = std::size_t{1} << a.num("n", 19);
  if (a.str("platform", "emu") == "xeon") {
    kernels::StreamXeonParams p;
    p.n = n;
    p.threads = static_cast<int>(a.num("threads", 16));
    const auto r = kernels::run_stream_xeon(xeon_config(a), p);
    print_summary("STREAM", r.mb_per_sec, "MB/s", r.elapsed);
    return r.verified ? 0 : 1;
  }
  kernels::StreamParams p;
  p.n = n;
  p.threads = static_cast<int>(a.num("threads", 512));
  const std::string strat = a.str("strategy", "recursive_remote_spawn");
  if (strat == "serial_spawn") {
    p.strategy = kernels::SpawnStrategy::serial_spawn;
  } else if (strat == "recursive_spawn") {
    p.strategy = kernels::SpawnStrategy::recursive_spawn;
  } else if (strat == "serial_remote_spawn") {
    p.strategy = kernels::SpawnStrategy::serial_remote_spawn;
  } else {
    p.strategy = kernels::SpawnStrategy::recursive_remote_spawn;
  }
  p.across = static_cast<int>(a.num("across", 0));
  const auto r = kernels::run_stream_add(emu_config(a), p);
  print_summary("STREAM", r.mb_per_sec, "MB/s", r.elapsed);
  std::printf("migrations: %llu, spawns: %llu\n",
              static_cast<unsigned long long>(r.migrations),
              static_cast<unsigned long long>(r.spawns));
  return r.verified ? 0 : 1;
}

kernels::ShuffleMode parse_mode(const Args& a) {
  const std::string m = a.str("mode", "full_block_shuffle");
  if (m == "none") return kernels::ShuffleMode::none;
  if (m == "intra_block_shuffle") {
    return kernels::ShuffleMode::intra_block_shuffle;
  }
  if (m == "block_shuffle") return kernels::ShuffleMode::block_shuffle;
  return kernels::ShuffleMode::full_block_shuffle;
}

int run_chase(const Args& a) {
  const auto n = std::size_t{1} << a.num("n", 17);
  if (a.str("platform", "emu") == "xeon") {
    kernels::ChaseXeonParams p;
    p.n = std::size_t{1} << a.num("n", 21);
    p.block = static_cast<std::size_t>(a.num("block", 64));
    p.threads = static_cast<int>(a.num("threads", 32));
    p.mode = parse_mode(a);
    const auto r = kernels::run_chase_xeon(xeon_config(a), p);
    print_summary("chase", r.mb_per_sec, "MB/s", r.elapsed);
    std::printf("llc hit rate: %.3f\n", r.llc_hit_rate);
    return r.verified ? 0 : 1;
  }
  kernels::ChaseEmuParams p;
  p.n = n;
  p.block = static_cast<std::size_t>(a.num("block", 64));
  p.threads = static_cast<int>(a.num("threads", 512));
  p.mode = parse_mode(a);
  const auto r = kernels::run_chase_emu(emu_config(a), p);
  print_summary("chase", r.mb_per_sec, "MB/s", r.elapsed);
  std::printf("migrations/element: %.4f\n", r.migrations_per_element);
  return r.verified ? 0 : 1;
}

int run_spmv(const Args& a) {
  const auto n = static_cast<std::size_t>(a.num("lap-n", 100));
  if (a.str("platform", "emu") == "xeon") {
    kernels::SpmvXeonParams p;
    p.laplacian_n = n;
    p.threads = static_cast<int>(a.num("threads", 56));
    p.grain = static_cast<std::size_t>(a.num("grain", 16384));
    const std::string impl = a.str("impl", "mkl");
    p.impl = impl == "cilk_for"
                 ? kernels::SpmvXeonImpl::cilk_for
                 : impl == "cilk_spawn" ? kernels::SpmvXeonImpl::cilk_spawn
                                        : kernels::SpmvXeonImpl::mkl;
    const auto r = kernels::run_spmv_xeon(xeon_config(a), p);
    print_summary("SpMV", r.mb_per_sec, "MB/s", r.elapsed);
    return r.verified ? 0 : 1;
  }
  kernels::SpmvEmuParams p;
  p.laplacian_n = n;
  p.grain = static_cast<std::size_t>(a.num("grain", 16));
  const std::string layout = a.str("layout", "2d");
  p.layout = layout == "local"
                 ? kernels::SpmvLayout::local
                 : layout == "1d" ? kernels::SpmvLayout::one_d
                                  : kernels::SpmvLayout::two_d;
  const auto r = kernels::run_spmv_emu(emu_config(a), p);
  print_summary("SpMV", r.mb_per_sec, "MB/s", r.elapsed);
  std::printf("migrations: %llu\n",
              static_cast<unsigned long long>(r.migrations));
  return r.verified ? 0 : 1;
}

int run_pingpong(const Args& a) {
  kernels::PingPongParams p;
  p.threads = static_cast<int>(a.num("threads", 64));
  p.round_trips = static_cast<int>(a.num("round-trips", 1000));
  const auto r = kernels::run_pingpong(emu_config(a), p);
  print_summary("pingpong", r.migrations_per_sec / 1e6, "M mig/s", r.elapsed);
  std::printf("mean migration latency: %.2f us\n", r.mean_latency_us);
  return 0;
}

int run_gups(const Args& a) {
  kernels::GupsParams p;
  p.table_words = std::size_t{1} << a.num("n", 20);
  p.updates = std::size_t{1} << a.num("updates", 17);
  p.threads = static_cast<int>(a.num("threads", 512));
  if (a.str("platform", "emu") == "xeon") {
    p.threads = static_cast<int>(a.num("threads", 32));
    const auto r = kernels::run_gups_xeon(xeon_config(a), p);
    print_summary("GUPS", r.giga_updates_per_sec, "GUPS", r.elapsed);
    return r.verified ? 0 : 1;
  }
  const auto r = kernels::run_gups_emu(emu_config(a), p);
  print_summary("GUPS", r.giga_updates_per_sec, "GUPS", r.elapsed);
  return r.verified ? 0 : 1;
}

int run_bfs(const Args& a) {
  const std::string kind = a.str("graph", "rmat");
  graph::Graph g;
  if (kind == "grid") {
    g = graph::make_grid_2d(static_cast<std::size_t>(a.num("side", 64)));
  } else if (kind == "uniform") {
    g = graph::make_uniform_random(
        static_cast<std::size_t>(a.num("vertices", 16384)),
        a.real("degree", 16.0), 5);
  } else {
    g = graph::make_rmat(static_cast<int>(a.num("scale", 12)),
                         static_cast<int>(a.num("edge-factor", 16)), 5);
  }
  std::size_t source = static_cast<std::size_t>(a.num("source", 0));
  if (kind == "rmat" && !a.has("source")) {
    for (std::size_t v = 0; v < g.num_vertices; ++v) {
      if (g.degree(v) > g.degree(source)) source = v;
    }
  }
  kernels::BfsEmuParams p;
  p.g = &g;
  p.source = source;
  const auto r = kernels::run_bfs_emu(emu_config(a), p);
  print_summary("BFS", r.mteps, "MTEPS", r.elapsed);
  std::printf("levels: %d, migrations: %llu\n", r.levels,
              static_cast<unsigned long long>(r.migrations));
  return r.verified ? 0 : 1;
}

int run_mttkrp(const Args& a) {
  const auto dim = static_cast<std::size_t>(a.num("dim", 256));
  const auto x = tensor::make_random_tensor(
      dim, dim, dim, static_cast<std::size_t>(a.num("nnz", 100000)), 31);
  if (a.str("platform", "emu") == "xeon") {
    kernels::MttkrpXeonParams p;
    p.x = &x;
    p.rank = static_cast<int>(a.num("rank", 8));
    p.threads = static_cast<int>(a.num("threads", 56));
    const auto r = kernels::run_mttkrp_xeon(xeon_config(a), p);
    print_summary("MTTKRP", r.mflops, "Mflop/s", r.elapsed);
    return r.verified ? 0 : 1;
  }
  kernels::MttkrpEmuParams p;
  p.x = &x;
  p.rank = static_cast<int>(a.num("rank", 8));
  p.layout = a.str("layout", "2d") == "1d" ? kernels::MttkrpLayout::one_d
                                           : kernels::MttkrpLayout::two_d;
  const auto r = kernels::run_mttkrp_emu(emu_config(a), p);
  print_summary("MTTKRP", r.mflops, "Mflop/s", r.elapsed);
  std::printf("migrations: %llu\n",
              static_cast<unsigned long long>(r.migrations));
  return r.verified ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  if (a.benchmark == "stream") return run_stream(a);
  if (a.benchmark == "chase") return run_chase(a);
  if (a.benchmark == "spmv") return run_spmv(a);
  if (a.benchmark == "pingpong") return run_pingpong(a);
  if (a.benchmark == "gups") return run_gups(a);
  if (a.benchmark == "bfs") return run_bfs(a);
  if (a.benchmark == "mttkrp") return run_mttkrp(a);
  usage("unknown benchmark");
}
