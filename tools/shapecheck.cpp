// shapecheck — evaluate declarative shape assertions (tools/shapes/*.json)
// against bench result JSONs.  Exit 0 only when every assertion in every
// applicable spec passes; the paper's figure shapes become a CI gate.
//
//   shapecheck --shapes <file-or-dir> --results <file-or-dir>
//              [--allow-missing] [--verbose]
//
// By default a spec whose bench has no result file is a failure: a gate
// that silently skips is a broken gate.  --allow-missing downgrades those
// to warnings (useful when checking a partial result set locally).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "report/results.hpp"
#include "report/shapes.hpp"

namespace fs = std::filesystem;
using emusim::report::BenchResult;
using emusim::report::ShapeSpec;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --shapes <file-or-dir> --results <file-or-dir>\n"
               "          [--allow-missing] [--verbose]\n",
               argv0);
  return 2;
}

/// Collect every .json file under `path` (or `path` itself), sorted so runs
/// are deterministic across filesystems.
std::vector<std::string> json_files(const std::string& path,
                                    std::string* err) {
  std::vector<std::string> out;
  std::error_code ec;
  if (fs::is_directory(path, ec)) {
    for (const auto& e : fs::directory_iterator(path, ec)) {
      if (e.path().extension() == ".json") out.push_back(e.path().string());
    }
    if (ec) {
      *err = path + ": " + ec.message();
      return {};
    }
    std::sort(out.begin(), out.end());
  } else if (fs::exists(path, ec)) {
    out.push_back(path);
  } else {
    *err = path + ": no such file or directory";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string shapes_path, results_path;
  bool allow_missing = false, verbose = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shapes" && i + 1 < argc) {
      shapes_path = argv[++i];
    } else if (arg == "--results" && i + 1 < argc) {
      results_path = argv[++i];
    } else if (arg == "--allow-missing") {
      allow_missing = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::fprintf(stderr, "shapecheck: unknown or incomplete flag '%s'\n",
                   arg.c_str());
      return usage(argv[0]);
    }
  }
  if (shapes_path.empty() || results_path.empty()) return usage(argv[0]);

  std::string err;
  const auto shape_files = json_files(shapes_path, &err);
  if (shape_files.empty()) {
    std::fprintf(stderr, "shapecheck: no shape specs: %s\n",
                 err.empty() ? shapes_path.c_str() : err.c_str());
    return 2;
  }
  const auto result_files = json_files(results_path, &err);
  if (result_files.empty()) {
    std::fprintf(stderr, "shapecheck: no results: %s\n",
                 err.empty() ? results_path.c_str() : err.c_str());
    return 2;
  }

  std::map<std::string, BenchResult> results;
  for (const auto& f : result_files) {
    BenchResult r;
    if (!BenchResult::load(f, &r, &err)) {
      std::fprintf(stderr, "shapecheck: %s: %s\n", f.c_str(), err.c_str());
      return 2;
    }
    results[r.bench] = std::move(r);
  }

  int specs = 0, checks = 0, failures = 0, missing = 0;
  for (const auto& f : shape_files) {
    ShapeSpec spec;
    if (!ShapeSpec::load(f, &spec, &err)) {
      std::fprintf(stderr, "shapecheck: %s: %s\n", f.c_str(), err.c_str());
      return 2;
    }
    ++specs;
    const auto it = results.find(spec.bench);
    if (it == results.end()) {
      ++missing;
      std::printf("%s %s: no result for bench '%s'\n",
                  allow_missing ? "SKIP" : "FAIL", f.c_str(),
                  spec.bench.c_str());
      continue;
    }
    const auto verdicts = emusim::report::evaluate(spec, it->second);
    for (const auto& v : verdicts) {
      ++checks;
      if (!v.pass) ++failures;
      if (!v.pass || verbose) {
        std::printf("%s [%s] %s%s%s\n", v.pass ? "ok  " : "FAIL",
                    spec.bench.c_str(), v.desc.c_str(),
                    v.detail.empty() ? "" : " — ", v.detail.c_str());
      }
    }
  }

  const bool missing_fail = missing > 0 && !allow_missing;
  std::printf(
      "shapecheck: %d spec(s), %d assertion(s), %d failure(s), %d missing "
      "bench(es)%s\n",
      specs, checks, failures, missing,
      missing_fail ? " (missing = failure; use --allow-missing to skip)" : "");
  return (failures > 0 || missing_fail) ? 1 : 0;
}
