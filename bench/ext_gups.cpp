// Extension: GUPS / RandomAccess on both platforms.
//
// The paper positions pointer chasing as GUPS-with-dependent-loads
// (§III-E).  GUPS itself maps onto the Emu's memory-side atomics — the
// updating thread never migrates and never waits — so it isolates the
// fine-grained-traffic advantage without the latency chain.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "kernels/gups.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace emusim;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  report::CsvWriter csv(opt.csv_path, {"extension", "platform", "threads",
                                       "gups", "mb_per_sec"});

  report::Table t("Extension: GUPS (random 8 B updates), Emu chick_hw vs "
                  "Sandy Bridge Xeon");
  t.columns({"platform", "threads", "GUPS", "MB/s", "migrations"});

  kernels::GupsParams p;
  p.table_words = opt.quick ? (1u << 16) : (std::size_t{1} << 22);
  p.updates = opt.quick ? (1u << 14) : (1u << 18);

  for (int threads : opt.quick ? std::vector<int>{64}
                               : std::vector<int>{64, 256, 512}) {
    p.threads = threads;
    const auto r = kernels::run_gups_emu(emu::SystemConfig::chick_hw(), p);
    if (!r.verified) {
      std::fprintf(stderr, "FAIL: emu GUPS verification failed\n");
      return 1;
    }
    t.row({"emu", report::Table::integer(threads),
           report::Table::num(r.giga_updates_per_sec, 4),
           report::Table::num(r.mb_per_sec),
           report::Table::integer(static_cast<long long>(r.migrations))});
    csv.row({"gups", "emu", report::Table::integer(threads),
             report::Table::num(r.giga_updates_per_sec, 5),
             report::Table::num(r.mb_per_sec)});
  }

  for (int threads : opt.quick ? std::vector<int>{16}
                               : std::vector<int>{8, 16, 32}) {
    p.threads = threads;
    const auto r = kernels::run_gups_xeon(xeon::SystemConfig::sandy_bridge(), p);
    if (!r.verified) {
      std::fprintf(stderr, "FAIL: xeon GUPS verification failed\n");
      return 1;
    }
    t.row({"xeon", report::Table::integer(threads),
           report::Table::num(r.giga_updates_per_sec, 4),
           report::Table::num(r.mb_per_sec), "-"});
    csv.row({"gups", "xeon", report::Table::integer(threads),
             report::Table::num(r.giga_updates_per_sec, 5),
             report::Table::num(r.mb_per_sec)});
  }
  t.print();
  return 0;
}
