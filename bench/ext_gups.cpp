// Extension: GUPS / RandomAccess on both platforms.
//
// The paper positions pointer chasing as GUPS-with-dependent-loads
// (§III-E).  GUPS itself maps onto the Emu's memory-side atomics — the
// updating thread never migrates and never waits — so it isolates the
// fine-grained-traffic advantage without the latency chain.
#include <vector>

#include "bench_util.hpp"
#include "kernels/gups.hpp"
#include "sweep_pool.hpp"

using namespace emusim;

int main(int argc, char** argv) {
  bench::Harness h("ext_gups", argc, argv);
  bench::record_config(h, emu::SystemConfig::chick_hw(), "emu.");
  bench::record_config(h, xeon::SystemConfig::sandy_bridge(), "xeon.");
  h.axes("threads", "giga_updates_per_sec");
  h.table("Extension: GUPS (random 8 B updates), Emu chick_hw vs "
          "Sandy Bridge Xeon", 4);

  kernels::GupsParams p;
  p.table_words = h.quick() ? (1u << 16) : (std::size_t{1} << 22);
  p.updates = h.quick() ? (1u << 14) : (1u << 18);
  h.config("table_words", static_cast<long long>(p.table_words));
  h.config("updates", static_cast<long long>(p.updates));

  bench::SweepPool pool(h);
  if (h.enabled("emu")) {
    for (int threads : h.quick() ? std::vector<int>{64}
                                 : std::vector<int>{64, 256, 512}) {
      kernels::GupsParams pe = p;
      pe.threads = threads;
      pool.submit([&h, pe, threads](bench::PointSink& sink) {
        const auto r = bench::repeated(h, [&] {
          return kernels::run_gups_emu(emu::SystemConfig::chick_hw(), pe);
        });
        if (!r.verified) sink.fail("emu GUPS verification failed");
        sink.add("emu", threads, r.giga_updates_per_sec,
                 {{"mb_per_sec", r.mb_per_sec},
                  {"migrations", static_cast<double>(r.migrations)},
                  {"sim_ms", to_seconds(r.elapsed) * 1e3}});
      });
    }
  }

  if (h.enabled("xeon")) {
    for (int threads : h.quick() ? std::vector<int>{16}
                                 : std::vector<int>{8, 16, 32}) {
      kernels::GupsParams px = p;
      px.threads = threads;
      pool.submit([&h, px, threads](bench::PointSink& sink) {
        const auto r = bench::repeated(h, [&] {
          return kernels::run_gups_xeon(xeon::SystemConfig::sandy_bridge(),
                                        px);
        });
        if (!r.verified) sink.fail("xeon GUPS verification failed");
        sink.add("xeon", threads, r.giga_updates_per_sec,
                 {{"mb_per_sec", r.mb_per_sec},
                  {"sim_ms", to_seconds(r.elapsed) * 1e3}});
      });
    }
  }
  pool.wait();
  return h.done();
}
