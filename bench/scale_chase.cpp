// Scaling sweep: pointer chasing at 64 / 256 / 1024 nodelets on the
// chick_fullspeed_Nx family, with data sizes up to 2^30 elements (ROADMAP
// item 3, extending the paper's Fig 11 projection).
//
// The chase_scale kernel does fixed per-chain work with a procedurally
// generated block walk, so a point's simulated event count — and its wall
// cost — is independent of n; only the address space grows.  Each point
// therefore doubles as the memory-footprint gate: the lazily chunked
// striped views must keep peak host bytes at chunk bookkeeping only
// (O(nodelets), never O(n)), asserted by tools/shapes/scale_chase.json.
//
// Per-point extras:
//   engine_events   — Σ DES events processed (deterministic engine-work
//                     measure; identical across --jobs/--engine-threads)
//   events_per_sec  — engine_events over host wall time (the engine-speed
//                     headline; wall-derived, so reported but never gated)
//   mem_peak_bytes  — peak host bytes materialized by the machine's views
//   sim_ms, migrations_per_element — as the other chase benches
//
// Series: nl<N>_seq / nl<N>_shuf per nodelet count — sequential vs
// LCG-shuffled block order.  Both change nodelet nearly every block, so the
// paper's locality-insensitivity claim (7) predicts matching bandwidth; the
// shape spec checks that ratio at 64 and 256 nodelets.
#include <chrono>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "emu/machine.hpp"
#include "kernels/chase_scale.hpp"
#include "sweep_pool.hpp"

using namespace emusim;
using kernels::ChaseScaleParams;

namespace {

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("scale_chase", argc, argv);

  // Quick keeps every series the shape spec references (64 and 256
  // nodelets, both orders) at small n; full adds 1024 nodelets and the
  // >= 2^30-element points.  x = log2(n); quick xs are a subset of full xs
  // so the spec's per-point claims hold for both.
  const std::vector<int> nodelet_counts =
      h.quick() ? std::vector<int>{64, 256} : std::vector<int>{64, 256, 1024};
  const std::vector<int> log2_ns = h.quick() ? std::vector<int>{20, 24}
                                             : std::vector<int>{20, 24, 30};
  const std::uint64_t elems_per_thread = h.quick() ? 256 : 4096;
  const std::size_t block = 64;

  for (int nlets : nodelet_counts) {
    bench::record_config(
        h, emu::SystemConfig::chick_fullspeed_nx(nlets),
        "nl" + std::to_string(nlets) + ".");
  }
  h.config("block", static_cast<long long>(block));
  h.config("elems_per_thread", static_cast<long long>(elems_per_thread));
  h.axes("log2_n", "mb_per_sec");
  h.table("Scaling: procedural pointer chase, chick_fullspeed_Nx — MB/s");

  bench::SweepPool pool(h);
  for (int nlets : nodelet_counts) {
    for (const bool shuffled : {false, true}) {
      const std::string series = "nl" + std::to_string(nlets) +
                                 (shuffled ? "_shuf" : "_seq");
      if (!h.enabled(series)) continue;
      for (int log2n : log2_ns) {
        pool.submit([&h, series, nlets, shuffled, log2n, elems_per_thread,
                     block](bench::PointSink& sink) {
          const auto cfg = emu::SystemConfig::chick_fullspeed_nx(nlets);
          ChaseScaleParams p;
          p.n = std::size_t{1} << log2n;
          p.block = block;
          p.threads = 4 * nlets;  // threads scale with the machine
          p.elems_per_thread = elems_per_thread;
          p.shuffled = shuffled;
          emu::take_run_telemetry();  // drop any prior machines' counts
          const double w0 = wall_now();
          const auto r = bench::repeated(
              h, [&] { return kernels::run_chase_scale(cfg, p); });
          const double wall = wall_now() - w0;
          const emu::RunTelemetry tel = emu::take_run_telemetry();
          if (!r.verified) sink.fail(series + ": checksum mismatch");
          sink.add(series, static_cast<double>(log2n), r.mb_per_sec,
                   {{"sim_ms", to_seconds(r.elapsed) * 1e3},
                    {"migrations_per_element", r.migrations_per_element},
                    {"engine_events", static_cast<double>(tel.engine_events)},
                    {"events_per_sec",
                     wall > 0.0
                         ? static_cast<double>(tel.engine_events) / wall
                         : 0.0},
                    {"mem_peak_bytes",
                     static_cast<double>(tel.peak_host_bytes)}});
        });
      }
    }
  }
  pool.wait();
  return h.done();
}
