// google-benchmark microbenchmarks of the simulator itself: DES event
// throughput, coroutine task churn, FIFO-server accounting, DRAM channel
// accesses, and cache probes.  These bound the wall-clock cost of the
// figure harnesses and catch performance regressions in the hot paths.
#include <benchmark/benchmark.h>

#include "mem/dram.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"
#include "xeon/cache.hpp"

namespace {

using namespace emusim;

void BM_EngineScheduleDrain(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < batch; ++i) {
      eng.call_at(static_cast<Time>(i), [] {});
    }
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EngineScheduleDrain)->Arg(1024)->Arg(65536);

sim::Task sleeper_task(sim::Engine& eng, int hops) {
  for (int i = 0; i < hops; ++i) co_await eng.sleep(ns(1));
}

void BM_CoroutineHops(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    auto t = sleeper_task(eng, hops);
    t.start();
    eng.run();
    benchmark::DoNotOptimize(eng.now());
  }
  state.SetItemsProcessed(state.iterations() * hops);
}
BENCHMARK(BM_CoroutineHops)->Arg(1024)->Arg(16384);

void BM_FifoServerPost(benchmark::State& state) {
  sim::Engine eng;
  sim::FifoServer srv(eng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(srv.post(ns(5)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FifoServerPost);

void BM_DramAccess(benchmark::State& state) {
  sim::Engine eng;
  mem::DramChannel ch(eng, mem::DramTiming::ddr3_1600());
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.access(addr, 64, false));
    addr += 7919 * 64;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramAccess);

void BM_CacheLookupHit(benchmark::State& state) {
  xeon::SetAssocCache cache(1 << 20, 16, 64);
  for (std::uint64_t a = 0; a < (1 << 19); a += 64) {
    cache.insert(a, 0, false);
  }
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(addr));
    addr = (addr + 4096) & ((1 << 19) - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookupHit);

}  // namespace

BENCHMARK_MAIN();
