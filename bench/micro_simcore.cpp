// google-benchmark microbenchmarks of the simulator itself: DES event
// throughput, coroutine task churn, FIFO-server accounting, DRAM channel
// accesses, and cache probes.  These bound the wall-clock cost of the
// figure harnesses and catch performance regressions in the hot paths.
//
// The engine scenarios run twice: once against sim::Engine (the 4-ary-heap
// + FIFO-fast-lane queue with SmallFn events) and once against a
// LegacyEngine that reproduces the seed design — std::priority_queue over
// events carrying a std::function, copied out of top() on every dispatch.
// Comparing the BM_Engine* and BM_Legacy* items/sec gives the before/after
// events-per-second figure recorded in results/micro_simcore.csv and
// docs/MODELING.md.
#include <benchmark/benchmark.h>

#include <coroutine>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mem/dram.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"
#include "xeon/cache.hpp"

namespace {

using namespace emusim;

// --- the seed event queue, kept verbatim as the comparison baseline -------

class LegacyEngine {
 public:
  Time now() const { return now_; }

  void schedule(Time when, std::coroutine_handle<> h) {
    pq_.push(Event{when, next_seq_++, h, {}});
  }
  void schedule_in(Time delay, std::coroutine_handle<> h) {
    schedule(now_ + delay, h);
  }
  void call_at(Time when, std::function<void()> fn) {
    pq_.push(Event{when, next_seq_++, {}, std::move(fn)});
  }
  void call_in(Time delay, std::function<void()> fn) {
    call_at(now_ + delay, std::move(fn));
  }

  bool step() {
    if (pq_.empty()) return false;
    Event ev = pq_.top();  // the seed's copy-before-pop, deliberately kept
    pq_.pop();
    now_ = ev.when;
    ++events_processed_;
    if (ev.coro) {
      ev.coro.resume();
    } else {
      ev.fn();
    }
    return true;
  }
  Time run() {
    while (step()) {
    }
    return now_;
  }

  std::uint64_t events_processed() const { return events_processed_; }

  auto sleep(Time delay) {
    struct Awaiter {
      LegacyEngine& eng;
      Time delay;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        eng.schedule_in(delay, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, delay};
  }

 private:
  struct Event {
    Time when = 0;
    std::uint64_t seq = 0;
    std::coroutine_handle<> coro;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> pq_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
};

// --- engine scenarios, templated over the queue implementation ------------

template <class EngineT>
void bm_schedule_drain(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EngineT eng;
    for (int i = 0; i < batch; ++i) {
      eng.call_at(static_cast<Time>(i), [] {});
    }
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}

// Callback-heavy: chains of plain callbacks, each capturing 24 bytes (an
// engine pointer plus two counters) and re-posting itself — the shape of
// machine-component events such as prefetch completions and LFB releases.
// 24 bytes exceeds libstdc++ std::function's inline buffer, so the legacy
// queue allocates per event; SmallFn keeps it inline.
template <class EngineT>
void post_chain(EngineT& eng, std::uint64_t remaining, Time stride) {
  eng.call_in(stride, [&eng, remaining, stride] {
    if (remaining > 1) post_chain(eng, remaining - 1, stride);
  });
}

template <class EngineT>
void bm_callback_heavy(benchmark::State& state) {
  const int chains = 256;
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EngineT eng;
    for (int c = 0; c < chains; ++c) {
      post_chain(eng, static_cast<std::uint64_t>(hops),
                 static_cast<Time>(c % 17 + 1));
    }
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * chains * hops);
}

template <class EngineT>
sim::Task sleeper_task(EngineT& eng, int hops, Time delay) {
  for (int i = 0; i < hops; ++i) co_await eng.sleep(delay);
}

template <class EngineT>
void bm_coroutine_hops(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EngineT eng;
    auto t = sleeper_task(eng, hops, ns(1));
    t.start();
    eng.run();
    benchmark::DoNotOptimize(eng.now());
  }
  state.SetItemsProcessed(state.iterations() * hops);
}

// Zero-delay yield: many tasks repeatedly co_await sleep(0) at one
// timestamp — the spawn-tree fairness pattern from the emu runtime
// (parallel_apply, sync wakeups, semaphore grants).  The new engine routes
// these through the FIFO fast lane; the legacy queue pays a heap
// sift per yield.
template <class EngineT>
void bm_zero_delay_yield(benchmark::State& state) {
  const int tasks = 64;
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    EngineT eng;
    std::vector<sim::Task> ts;
    ts.reserve(tasks);
    for (int i = 0; i < tasks; ++i) {
      ts.push_back(sleeper_task(eng, hops, 0));
    }
    for (auto& t : ts) t.start();
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * tasks * hops);
}

void BM_EngineScheduleDrain(benchmark::State& s) {
  bm_schedule_drain<sim::Engine>(s);
}
void BM_LegacyScheduleDrain(benchmark::State& s) {
  bm_schedule_drain<LegacyEngine>(s);
}
BENCHMARK(BM_EngineScheduleDrain)->Arg(1024)->Arg(65536);
BENCHMARK(BM_LegacyScheduleDrain)->Arg(1024)->Arg(65536);

void BM_EngineCallbackHeavy(benchmark::State& s) {
  bm_callback_heavy<sim::Engine>(s);
}
void BM_LegacyCallbackHeavy(benchmark::State& s) {
  bm_callback_heavy<LegacyEngine>(s);
}
BENCHMARK(BM_EngineCallbackHeavy)->Arg(64)->Arg(1024);
BENCHMARK(BM_LegacyCallbackHeavy)->Arg(64)->Arg(1024);

void BM_CoroutineHops(benchmark::State& s) {
  bm_coroutine_hops<sim::Engine>(s);
}
void BM_LegacyCoroutineHops(benchmark::State& s) {
  bm_coroutine_hops<LegacyEngine>(s);
}
BENCHMARK(BM_CoroutineHops)->Arg(1024)->Arg(16384);
BENCHMARK(BM_LegacyCoroutineHops)->Arg(1024)->Arg(16384);

void BM_EngineZeroDelayYield(benchmark::State& s) {
  bm_zero_delay_yield<sim::Engine>(s);
}
void BM_LegacyZeroDelayYield(benchmark::State& s) {
  bm_zero_delay_yield<LegacyEngine>(s);
}
BENCHMARK(BM_EngineZeroDelayYield)->Arg(256)->Arg(4096);
BENCHMARK(BM_LegacyZeroDelayYield)->Arg(256)->Arg(4096);

// --- engine reuse vs cold start (Engine::reset + reserve) -----------------
//
// The sweep workers keep a per-thread footprint hint and pre-size each
// machine's engine from the previous point (machine.cpp).  This pair
// measures what that buys: Cold constructs a fresh engine per simulation;
// Reuse resets one engine and re-reserves the last observed footprint, so
// the heap/FIFO/slot storage never reallocates after the first run.

void saturate_engine(sim::Engine& eng, int batch) {
  for (int i = 0; i < batch; ++i) {
    eng.call_at(static_cast<Time>(i % 64), [] {});
  }
  eng.run();
}

void BM_EngineCold(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    saturate_engine(eng, batch);
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}

void BM_EngineReuse(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  sim::Engine eng;
  std::size_t hint = 0;
  for (auto _ : state) {
    eng.reset();
    if (hint > 0) eng.reserve(hint);
    saturate_engine(eng, batch);
    if (eng.footprint() > hint) hint = eng.footprint();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EngineCold)->Arg(1024)->Arg(65536);
BENCHMARK(BM_EngineReuse)->Arg(1024)->Arg(65536);

// --- component microbenchmarks (unchanged scenarios) ----------------------

void BM_FifoServerPost(benchmark::State& state) {
  sim::Engine eng;
  sim::FifoServer srv(eng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(srv.post(ns(5)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FifoServerPost);

void BM_DramAccess(benchmark::State& state) {
  sim::Engine eng;
  mem::DramChannel ch(eng, mem::DramTiming::ddr3_1600());
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.access(addr, 64, false));
    addr += 7919 * 64;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramAccess);

void BM_CacheLookupHit(benchmark::State& state) {
  xeon::SetAssocCache cache(1 << 20, 16, 64);
  for (std::uint64_t a = 0; a < (1 << 19); a += 64) {
    cache.insert(a, 0, false);
  }
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(addr));
    addr = (addr + 4096) & ((1 << 19) - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookupHit);

// Forwards google-benchmark's console output unchanged while mirroring each
// run into the shared harness, so micro_simcore emits the same CSV/JSON
// schema as the figure benches.  Series = benchmark name up to the '/',
// x = the Arg after it (0 for argless benchmarks), y = M items/s.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit CaptureReporter(bench::Harness& h) : h_(h) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const auto& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      std::string series = name;
      double x = 0;
      if (const auto slash = name.find('/'); slash != std::string::npos) {
        series = name.substr(0, slash);
        x = std::atof(name.c_str() + slash + 1);
      }
      double mips = 0;
      if (const auto it = run.counters.find("items_per_second");
          it != run.counters.end()) {
        mips = it->second.value / 1e6;
      }
      h_.add(series, x, mips,
             {{"real_time_ns", run.GetAdjustedRealTime()},
              {"iterations", static_cast<double>(run.iterations)}});
    }
  }

 private:
  bench::Harness& h_;
};

}  // namespace

int main(int argc, char** argv) {
  // The harness consumes the common flags; anything starting with
  // --benchmark_ passes through to google-benchmark untouched.
  bench::Harness h("micro_simcore", argc, argv, "--benchmark_");
  h.axes("arg", "m_items_per_sec");
  h.table("Simulator-core microbenchmarks (M items/s)", 2);
  h.config("quick", h.quick() ? "1" : "0");
  // Every y here is host-wall-clock-derived, so benchdiff reports but never
  // gates on this bench.
  h.mark_wall_clock_y();

  std::vector<std::string> fwd_storage;
  fwd_storage.push_back(argv[0]);
  bool have_min_time = false;
  for (const auto& flag : h.opt().passthrough) {
    if (flag.rfind("--benchmark_min_time", 0) == 0) have_min_time = true;
    fwd_storage.push_back(flag);
  }
  // --quick caps measurement time per item unless the caller already chose.
  if (h.quick() && !have_min_time) {
    fwd_storage.push_back("--benchmark_min_time=0.01");
  }
  if (!h.opt().filter.empty()) {
    fwd_storage.push_back("--benchmark_filter=" + h.opt().filter);
  }
  std::vector<char*> fwd;
  fwd.reserve(fwd_storage.size());
  for (auto& s : fwd_storage) fwd.push_back(s.data());
  int fwd_argc = static_cast<int>(fwd.size());

  benchmark::Initialize(&fwd_argc, fwd.data());
  CaptureReporter reporter(h);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return h.done();
}
