// Figure 10: hardware-vs-simulator validation.
//
// The paper configures the vendor's architectural simulator to match the
// Chick and compares: STREAM agrees for 1 and 8 nodelets; pointer chasing
// does NOT — the simulator overestimates because the real migration engine
// sustains only ~9 M migrations/s against ~16 M simulated.  The ping-pong
// microbenchmark isolates exactly that, and single-migration latency is
// ~1-2 us.  Here `chick_hw` plays the hardware and `chick_as_simulated`
// (identical but for the idealized migration engine) plays the simulator —
// reproducing the validation gap by construction, which is precisely the
// paper's diagnosis of where the discrepancy lives.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "kernels/chase_emu.hpp"
#include "kernels/pingpong.hpp"
#include "kernels/stream_emu.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace emusim;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const auto hw = emu::SystemConfig::chick_hw();
  const auto sim = emu::SystemConfig::chick_as_simulated();
  report::CsvWriter csv(opt.csv_path,
                        {"figure", "benchmark", "x", "hardware", "simulator"});

  // --- STREAM, 1 nodelet and 8 nodelets ----------------------------------
  report::Table ts("Fig 10a: STREAM ADD, hardware vs simulator (MB/s)");
  ts.columns({"config", "threads", "hardware", "simulator", "ratio"});
  struct StreamCase {
    const char* label;
    int across;
    int threads;
  };
  const StreamCase stream_cases[] = {{"1 nodelet", 1, 64},
                                     {"8 nodelets", 0, 512}};
  for (const auto& c : stream_cases) {
    kernels::StreamParams p;
    p.n = opt.quick ? (1u << 16) : (1u << 19);
    p.threads = c.threads;
    p.across = c.across;
    p.strategy = kernels::SpawnStrategy::recursive_remote_spawn;
    const auto rh = kernels::run_stream_add(hw, p);
    const auto rs = kernels::run_stream_add(sim, p);
    ts.row({c.label, report::Table::integer(c.threads),
            report::Table::num(rh.mb_per_sec), report::Table::num(rs.mb_per_sec),
            report::Table::num(rs.mb_per_sec / rh.mb_per_sec, 2)});
    csv.row({"fig10", "stream", c.label, report::Table::num(rh.mb_per_sec),
             report::Table::num(rs.mb_per_sec)});
  }
  ts.print();

  // --- pointer chase vs block size ----------------------------------------
  report::Table tc(
      "Fig 10b: Pointer chase (512 threads, full_block_shuffle), hardware vs "
      "simulator (MB/s)");
  tc.columns({"block", "hardware", "simulator", "ratio"});
  const std::vector<std::size_t> blocks =
      opt.quick ? std::vector<std::size_t>{1, 8}
                : std::vector<std::size_t>{1, 2, 4, 8, 16, 64, 256};
  for (std::size_t b : blocks) {
    kernels::ChaseEmuParams p;
    p.n = opt.quick ? (1u << 15) : (1u << 17);
    p.block = b;
    p.threads = opt.quick ? 64 : 512;
    const auto rh = kernels::run_chase_emu(hw, p);
    const auto rs = kernels::run_chase_emu(sim, p);
    tc.row({report::Table::integer(static_cast<long long>(b)),
            report::Table::num(rh.mb_per_sec), report::Table::num(rs.mb_per_sec),
            report::Table::num(rs.mb_per_sec / rh.mb_per_sec, 2)});
    csv.row({"fig10", "chase",
             report::Table::integer(static_cast<long long>(b)),
             report::Table::num(rh.mb_per_sec),
             report::Table::num(rs.mb_per_sec)});
  }
  tc.print();

  // --- ping-pong migration throughput and latency --------------------------
  report::Table tp("Fig 10c: Ping-pong thread migration, hardware vs simulator");
  tp.columns({"metric", "hardware", "simulator"});
  kernels::PingPongParams pp;
  pp.threads = 64;
  pp.round_trips = opt.quick ? 200 : 2000;
  const auto ph = kernels::run_pingpong(hw, pp);
  const auto ps = kernels::run_pingpong(sim, pp);
  tp.row({"migrations/s (M)", report::Table::num(ph.migrations_per_sec / 1e6),
          report::Table::num(ps.migrations_per_sec / 1e6)});
  csv.row({"fig10", "pingpong", "migrations_per_sec",
           report::Table::num(ph.migrations_per_sec),
           report::Table::num(ps.migrations_per_sec)});

  kernels::PingPongParams p1 = pp;
  p1.threads = 1;
  const auto lh = kernels::run_pingpong(hw, p1);
  const auto ls = kernels::run_pingpong(sim, p1);
  tp.row({"1-thread latency (us)", report::Table::num(lh.mean_latency_us, 2),
          report::Table::num(ls.mean_latency_us, 2)});
  csv.row({"fig10", "pingpong", "latency_us",
           report::Table::num(lh.mean_latency_us, 3),
           report::Table::num(ls.mean_latency_us, 3)});
  tp.print();
  return 0;
}
