// Figure 10: hardware-vs-simulator validation.
//
// The paper configures the vendor's architectural simulator to match the
// Chick and compares: STREAM agrees for 1 and 8 nodelets; pointer chasing
// does NOT — the simulator overestimates because the real migration engine
// sustains only ~9 M migrations/s against ~16 M simulated.  The ping-pong
// microbenchmark isolates exactly that, and single-migration latency is
// ~1-2 us.  Here `chick_hw` plays the hardware and `chick_as_simulated`
// (identical but for the idealized migration engine) plays the simulator —
// reproducing the validation gap by construction, which is precisely the
// paper's diagnosis of where the discrepancy lives.
#include <vector>

#include "bench_util.hpp"
#include "kernels/chase_emu.hpp"
#include "kernels/pingpong.hpp"
#include "kernels/stream_emu.hpp"
#include "sweep_pool.hpp"

using namespace emusim;

int main(int argc, char** argv) {
  bench::Harness h("fig10_validation", argc, argv);
  const auto hw = emu::SystemConfig::chick_hw();
  const auto sim = emu::SystemConfig::chick_as_simulated();
  bench::record_config(h, hw, "hw.");
  bench::record_config(h, sim, "sim.");
  h.axes("x", "mb_per_sec");

  bench::SweepPool pool(h);

  // --- STREAM, 1 nodelet and 8 nodelets: x = nodelet count ----------------
  const std::string table_a =
      "Fig 10a: STREAM ADD, hardware vs simulator (MB/s) vs nodelets";
  struct StreamCase {
    int nodelets;
    int across;
    int threads;
  };
  for (const auto& c :
       {StreamCase{1, 1, 64}, StreamCase{8, 0, 512}}) {
    pool.submit([&h, &hw, &sim, table_a, c](bench::PointSink& sink) {
      sink.table(table_a);
      kernels::StreamParams p;
      p.n = h.quick() ? (1u << 16) : (1u << 19);
      p.threads = c.threads;
      p.across = c.across;
      p.strategy = kernels::SpawnStrategy::recursive_remote_spawn;
      const auto rh =
          bench::repeated(h, [&] { return kernels::run_stream_add(hw, p); });
      const auto rs =
          bench::repeated(h, [&] { return kernels::run_stream_add(sim, p); });
      if (!rh.verified || !rs.verified) sink.fail("STREAM verification failed");
      sink.add("stream_hw", c.nodelets, rh.mb_per_sec,
               {{"sim_ms", to_seconds(rh.elapsed) * 1e3}});
      sink.add("stream_sim", c.nodelets, rs.mb_per_sec,
               {{"sim_ms", to_seconds(rs.elapsed) * 1e3}});
    });
  }

  // --- pointer chase vs block size ----------------------------------------
  const std::string table_b =
      "Fig 10b: Pointer chase (full_block_shuffle), hardware vs simulator "
      "(MB/s) vs block size";
  const std::vector<std::size_t> blocks =
      h.quick() ? std::vector<std::size_t>{1, 8}
                : std::vector<std::size_t>{1, 2, 4, 8, 16, 64, 256};
  for (std::size_t b : blocks) {
    pool.submit([&h, &hw, &sim, table_b, b](bench::PointSink& sink) {
      sink.table(table_b);
      kernels::ChaseEmuParams p;
      p.n = h.quick() ? (1u << 15) : (1u << 17);
      p.block = b;
      p.threads = h.quick() ? 64 : 512;
      const auto rh =
          bench::repeated(h, [&] { return kernels::run_chase_emu(hw, p); });
      const auto rs =
          bench::repeated(h, [&] { return kernels::run_chase_emu(sim, p); });
      if (!rh.verified || !rs.verified) sink.fail("chase verification failed");
      sink.add("chase_hw", static_cast<double>(b), rh.mb_per_sec,
               {{"sim_ms", to_seconds(rh.elapsed) * 1e3}});
      sink.add("chase_sim", static_cast<double>(b), rs.mb_per_sec,
               {{"sim_ms", to_seconds(rs.elapsed) * 1e3}});
    });
  }

  // --- ping-pong migration throughput and latency --------------------------
  // Series carry migrations/s at x = thread count; the single-thread case
  // also records the mean per-migration latency as an extra metric.
  const std::string table_c =
      "Fig 10c: Ping-pong thread migration, hardware vs simulator "
      "(migrations/s)";
  pool.submit([&h, &hw, &sim, table_c](bench::PointSink& sink) {
    sink.table(table_c, 0);
    kernels::PingPongParams pp;
    pp.threads = 64;
    pp.round_trips = h.quick() ? 200 : 2000;
    const auto ph =
        bench::repeated(h, [&] { return kernels::run_pingpong(hw, pp); });
    const auto ps =
        bench::repeated(h, [&] { return kernels::run_pingpong(sim, pp); });
    sink.add("pingpong_hw", pp.threads, ph.migrations_per_sec,
             {{"sim_ms", to_seconds(ph.elapsed) * 1e3}});
    sink.add("pingpong_sim", pp.threads, ps.migrations_per_sec,
             {{"sim_ms", to_seconds(ps.elapsed) * 1e3}});
  });
  pool.submit([&h, &hw, &sim, table_c](bench::PointSink& sink) {
    sink.table(table_c, 0);
    kernels::PingPongParams p1;
    p1.threads = 1;
    p1.round_trips = h.quick() ? 200 : 2000;
    const auto lh =
        bench::repeated(h, [&] { return kernels::run_pingpong(hw, p1); });
    const auto ls =
        bench::repeated(h, [&] { return kernels::run_pingpong(sim, p1); });
    sink.add("pingpong_hw", p1.threads, lh.migrations_per_sec,
             {{"latency_us", lh.mean_latency_us},
              {"sim_ms", to_seconds(lh.elapsed) * 1e3}});
    sink.add("pingpong_sim", p1.threads, ls.migrations_per_sec,
             {{"latency_us", ls.mean_latency_us},
              {"sim_ms", to_seconds(ls.elapsed) * 1e3}});
  });
  pool.wait();
  return h.done();
}
