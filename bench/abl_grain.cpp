// Ablation: spawn grain size on both platforms (paper §IV-C) — "a large
// grain size of 16,384 for cilk_spawn works best for CPU-based SpMV while a
// much smaller grain size of 16 elements per spawn is most effective for
// the Emu implementation."
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "kernels/spmv_emu.hpp"
#include "kernels/spmv_xeon.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace emusim;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const std::size_t n = opt.quick ? 100 : 800;  // 5*n^2 nonzeros

  report::CsvWriter csv(opt.csv_path,
                        {"ablation", "platform", "grain", "mb_per_sec"});
  report::Table t("Ablation: SpMV spawn grain (nonzeros per task), Laplacian n=" +
                  std::to_string(n));
  t.columns({"grain", "emu 2D MB/s", "xeon cilk_spawn MB/s"});

  const std::vector<std::size_t> grains =
      opt.quick ? std::vector<std::size_t>{16, 1024}
                : std::vector<std::size_t>{4, 16, 64, 256, 1024, 4096, 16384};
  for (std::size_t g : grains) {
    kernels::SpmvEmuParams ep;
    ep.laplacian_n = n;
    ep.layout = kernels::SpmvLayout::two_d;
    ep.grain = g;
    const auto er = kernels::run_spmv_emu(emu::SystemConfig::chick_hw(), ep);

    kernels::SpmvXeonParams xp;
    xp.laplacian_n = n;
    xp.impl = kernels::SpmvXeonImpl::cilk_spawn;
    xp.grain = g;
    const auto xr = kernels::run_spmv_xeon(xeon::SystemConfig::haswell(), xp);

    if (!er.verified || !xr.verified) {
      std::fprintf(stderr, "FAIL: verification failed\n");
      return 1;
    }
    t.row({report::Table::integer(static_cast<long long>(g)),
           report::Table::num(er.mb_per_sec), report::Table::num(xr.mb_per_sec)});
    csv.row({"grain", "emu", report::Table::integer(static_cast<long long>(g)),
             report::Table::num(er.mb_per_sec)});
    csv.row({"grain", "xeon", report::Table::integer(static_cast<long long>(g)),
             report::Table::num(xr.mb_per_sec)});
  }
  t.print();
  return 0;
}
