// Ablation: spawn grain size on both platforms (paper §IV-C) — "a large
// grain size of 16,384 for cilk_spawn works best for CPU-based SpMV while a
// much smaller grain size of 16 elements per spawn is most effective for
// the Emu implementation."
#include <vector>

#include "bench_util.hpp"
#include "kernels/spmv_emu.hpp"
#include "kernels/spmv_xeon.hpp"
#include "sweep_pool.hpp"

using namespace emusim;

int main(int argc, char** argv) {
  bench::Harness h("abl_grain", argc, argv);
  const std::size_t n = h.quick() ? 100 : 800;  // 5*n^2 nonzeros
  bench::record_config(h, emu::SystemConfig::chick_hw(), "emu.");
  bench::record_config(h, xeon::SystemConfig::haswell(), "xeon.");
  h.config("laplacian_n", static_cast<long long>(n));
  h.axes("grain", "mb_per_sec");
  h.table("Ablation: SpMV spawn grain (nonzeros per task), Laplacian n=" +
          std::to_string(n));

  const std::vector<std::size_t> grains =
      h.quick() ? std::vector<std::size_t>{16, 1024}
                : std::vector<std::size_t>{4, 16, 64, 256, 1024, 4096, 16384};
  bench::SweepPool pool(h);
  for (std::size_t g : grains) {
    pool.submit([&h, n, g](bench::PointSink& sink) {
      kernels::SpmvEmuParams ep;
      ep.laplacian_n = n;
      ep.layout = kernels::SpmvLayout::two_d;
      ep.grain = g;
      const auto er = bench::repeated(h, [&] {
        return kernels::run_spmv_emu(emu::SystemConfig::chick_hw(), ep);
      });

      kernels::SpmvXeonParams xp;
      xp.laplacian_n = n;
      xp.impl = kernels::SpmvXeonImpl::cilk_spawn;
      xp.grain = g;
      const auto xr = bench::repeated(h, [&] {
        return kernels::run_spmv_xeon(xeon::SystemConfig::haswell(), xp);
      });

      if (!er.verified || !xr.verified) sink.fail("verification failed");
      if (h.enabled("emu_2d")) {
        sink.add("emu_2d", static_cast<double>(g), er.mb_per_sec,
                 {{"sim_ms", to_seconds(er.elapsed) * 1e3}});
      }
      if (h.enabled("xeon_cilk_spawn")) {
        sink.add("xeon_cilk_spawn", static_cast<double>(g), xr.mb_per_sec,
                 {{"sim_ms", to_seconds(xr.elapsed) * 1e3}});
      }
    });
  }
  pool.wait();
  return h.done();
}
