// Figure 9: effective CSR SpMV bandwidth on synthetic 5-point Laplacian
// inputs (matrix is n^2 x n^2 with 5 diagonals).
//   9a — Emu chick_hw, 512 threadlet slots, grain 16: local vs 1D vs 2D
//        layouts.  Paper shape: local ~50 MB/s (single-nodelet parallelism),
//        1D ~100 MB/s (migration per nonzero), 2D scaling to ~250 MB/s.
//   9b — Haswell Xeon, 56 threads: MKL-like and cilk_for scale with n into
//        the GB/s range; cilk_spawn (grain 16384) depends on having enough
//        nonzeros to fill its coarse tasks.
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "kernels/spmv_emu.hpp"
#include "kernels/spmv_xeon.hpp"
#include "sweep_pool.hpp"

using namespace emusim;
using kernels::SpmvEmuParams;
using kernels::SpmvLayout;
using kernels::SpmvXeonImpl;
using kernels::SpmvXeonParams;

int main(int argc, char** argv) {
  bench::Harness h("fig09_spmv", argc, argv);
  const auto emu_cfg = emu::SystemConfig::chick_hw();
  const auto cpu_cfg = xeon::SystemConfig::haswell();
  bench::record_config(h, emu_cfg, "emu.");
  bench::record_config(h, cpu_cfg, "xeon.");
  h.axes("laplacian_n", "mb_per_sec");

  const std::vector<std::size_t> sizes =
      h.quick() ? std::vector<std::size_t>{25, 100}
                : std::vector<std::size_t>{25, 50, 100, 150, 200, 400, 800};

  bench::SweepPool pool(h);
  const std::string table_a =
      "Fig 9a: SpMV effective bandwidth, Emu chick_hw (grain 16) — MB/s vs "
      "Laplacian n";
  const SpmvLayout layouts[3] = {SpmvLayout::local, SpmvLayout::one_d,
                                 SpmvLayout::two_d};
  for (std::size_t n : sizes) {
    for (auto layout : layouts) {
      if (!h.enabled(to_string(layout))) continue;
      pool.submit(
          [&h, &emu_cfg, table_a, n, layout](bench::PointSink& sink) {
            sink.table(table_a);
            SpmvEmuParams p;
            p.laplacian_n = n;
            p.layout = layout;
            p.grain = 16;
            const auto r = bench::repeated(
                h, [&] { return kernels::run_spmv_emu(emu_cfg, p); });
            if (!r.verified) {
              sink.fail(std::string("emu SpMV verification failed (") +
                        to_string(layout) + " n=" + std::to_string(n) + ")");
            }
            sink.add(to_string(layout), static_cast<double>(n), r.mb_per_sec,
                     {{"nnz", static_cast<double>(5 * n * n)},
                      {"sim_ms", to_seconds(r.elapsed) * 1e3},
                      {"migrations", static_cast<double>(r.migrations)}});
          });
    }
  }

  const std::string table_b =
      "Fig 9b: SpMV effective bandwidth, Haswell Xeon (56 threads) — MB/s "
      "vs Laplacian n";
  const SpmvXeonImpl impls[3] = {SpmvXeonImpl::mkl, SpmvXeonImpl::cilk_for,
                                 SpmvXeonImpl::cilk_spawn};
  for (std::size_t n : sizes) {
    for (auto impl : impls) {
      if (!h.enabled(to_string(impl))) continue;
      pool.submit([&h, &cpu_cfg, table_b, n, impl](bench::PointSink& sink) {
        sink.table(table_b);
        SpmvXeonParams p;
        p.laplacian_n = n;
        p.impl = impl;
        p.threads = 56;
        p.grain = 16384;
        const auto r = bench::repeated(
            h, [&] { return kernels::run_spmv_xeon(cpu_cfg, p); });
        if (!r.verified) {
          sink.fail(std::string("xeon SpMV verification failed (") +
                    to_string(impl) + " n=" + std::to_string(n) + ")");
        }
        sink.add(to_string(impl), static_cast<double>(n), r.mb_per_sec,
                 {{"nnz", static_cast<double>(5 * n * n)},
                  {"sim_ms", to_seconds(r.elapsed) * 1e3}});
      });
    }
  }
  pool.wait();
  return h.done();
}
