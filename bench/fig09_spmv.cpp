// Figure 9: effective CSR SpMV bandwidth on synthetic 5-point Laplacian
// inputs (matrix is n^2 x n^2 with 5 diagonals).
//   9a — Emu chick_hw, 512 threadlet slots, grain 16: local vs 1D vs 2D
//        layouts.  Paper shape: local ~50 MB/s (single-nodelet parallelism),
//        1D ~100 MB/s (migration per nonzero), 2D scaling to ~250 MB/s.
//   9b — Haswell Xeon, 56 threads: MKL-like and cilk_for scale with n into
//        the GB/s range; cilk_spawn (grain 16384) depends on having enough
//        nonzeros to fill its coarse tasks.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "kernels/spmv_emu.hpp"
#include "kernels/spmv_xeon.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace emusim;
using kernels::SpmvEmuParams;
using kernels::SpmvLayout;
using kernels::SpmvXeonImpl;
using kernels::SpmvXeonParams;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const auto emu_cfg = emu::SystemConfig::chick_hw();
  const auto cpu_cfg = xeon::SystemConfig::haswell();

  const std::vector<std::size_t> sizes =
      opt.quick ? std::vector<std::size_t>{25, 100}
                : std::vector<std::size_t>{25, 50, 100, 150, 200, 400, 800};

  report::CsvWriter csv(opt.csv_path, {"figure", "platform", "impl", "n",
                                       "nnz", "mb_per_sec"});

  report::Table t9a(
      "Fig 9a: SpMV effective bandwidth, Emu chick_hw (grain 16) — MB/s vs "
      "Laplacian n");
  t9a.columns({"n", "local", "1d", "2d"});
  const SpmvLayout layouts[3] = {SpmvLayout::local, SpmvLayout::one_d,
                                 SpmvLayout::two_d};
  for (std::size_t n : sizes) {
    std::vector<std::string> cells = {
        report::Table::integer(static_cast<long long>(n))};
    for (auto layout : layouts) {
      SpmvEmuParams p;
      p.laplacian_n = n;
      p.layout = layout;
      p.grain = 16;
      const auto r = kernels::run_spmv_emu(emu_cfg, p);
      if (!r.verified) {
        std::fprintf(stderr, "FAIL: emu SpMV verification failed (%s n=%zu)\n",
                     to_string(layout), n);
        return 1;
      }
      cells.push_back(report::Table::num(r.mb_per_sec));
      csv.row({"fig9a", "emu", to_string(layout),
               report::Table::integer(static_cast<long long>(n)),
               report::Table::integer(static_cast<long long>(5 * n * n)),
               report::Table::num(r.mb_per_sec)});
    }
    t9a.row(cells);
  }
  t9a.print();

  report::Table t9b(
      "Fig 9b: SpMV effective bandwidth, Haswell Xeon (56 threads) — MB/s "
      "vs Laplacian n");
  t9b.columns({"n", "mkl", "cilk_for", "cilk_spawn(16384)"});
  const SpmvXeonImpl impls[3] = {SpmvXeonImpl::mkl, SpmvXeonImpl::cilk_for,
                                 SpmvXeonImpl::cilk_spawn};
  for (std::size_t n : sizes) {
    std::vector<std::string> cells = {
        report::Table::integer(static_cast<long long>(n))};
    for (auto impl : impls) {
      SpmvXeonParams p;
      p.laplacian_n = n;
      p.impl = impl;
      p.threads = 56;
      p.grain = 16384;
      const auto r = kernels::run_spmv_xeon(cpu_cfg, p);
      if (!r.verified) {
        std::fprintf(stderr, "FAIL: xeon SpMV verification failed (%s n=%zu)\n",
                     to_string(impl), n);
        return 1;
      }
      cells.push_back(report::Table::num(r.mb_per_sec));
      csv.row({"fig9b", "xeon", to_string(impl),
               report::Table::integer(static_cast<long long>(n)),
               report::Table::integer(static_cast<long long>(5 * n * n)),
               report::Table::num(r.mb_per_sec)});
    }
    t9b.row(cells);
  }
  t9b.print();
  return 0;
}
