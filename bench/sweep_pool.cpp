#include "sweep_pool.hpp"

#include <cassert>
#include <cstdio>
#include <exception>
#include <memory>
#include <stdexcept>

#include "bench_util.hpp"
#include "emu/machine.hpp"
#include "report/observe.hpp"
#include "sim/random.hpp"

namespace emusim::bench {

namespace {

/// Thrown by PointSink::fail to unwind the job; caught by the worker and
/// reported at the merge barrier.  Internal: benches never see it.
struct SweepError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

}  // namespace

void PointSink::table(const std::string& title, int precision) {
  Op op;
  op.kind = Op::Kind::kTable;
  op.name = title;
  op.precision = precision;
  ops_->push_back(std::move(op));
}

void PointSink::add(const std::string& series, double x, double y,
                    std::vector<std::pair<std::string, double>> extra) {
  add_labeled(series, "", x, y, std::move(extra));
}

void PointSink::add_labeled(const std::string& series,
                            const std::string& label, double x, double y,
                            std::vector<std::pair<std::string, double>> extra) {
  // Serial Harness::add absorbs the counter deltas of every machine that
  // finished since the previous add; buffering them just before this add op
  // reproduces that attribution at replay.
  drain_observer();
  Op op;
  op.kind = Op::Kind::kAdd;
  op.name = series;
  op.label = label;
  op.x = x;
  op.y = y;
  op.extra = std::move(extra);
  ops_->push_back(std::move(op));
}

void PointSink::fail(const std::string& msg) { throw SweepError(msg); }

void PointSink::drain_observer() {
  if (obs_ == nullptr || !obs_->counters()) return;
  for (auto& delta : obs_->take_pending_counters()) {
    Op op;
    op.kind = Op::Kind::kPending;
    op.json = std::move(delta);
    ops_->push_back(std::move(op));
  }
}

SweepPool::SweepPool(Harness& h) : h_(h), jobs_(h.jobs()) {
  workers_.reserve(static_cast<std::size_t>(jobs_));
  for (int i = 0; i < jobs_; ++i) {
    workers_.emplace_back([this] { worker(); });
  }
}

SweepPool::~SweepPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    if (!slots_.empty()) {
      // Submitted jobs that were never wait()ed still execute below (the
      // workers drain the queue before joining), but their results are
      // silently discarded — almost certainly a missing pool.wait().
      std::fprintf(stderr,
                   "SweepPool: destroyed with %zu submitted job(s) never "
                   "wait()ed; their results are discarded\n",
                   slots_.size());
      assert(!"SweepPool destroyed without wait()");
    }
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void SweepPool::submit(std::function<void(PointSink&)> job) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    slots_.push_back(Slot{std::move(job), {}, {}, false});
  }
  cv_work_.notify_one();
}

void SweepPool::worker() {
  // Each worker carries the harness's --engine-threads and --engine-shard
  // values in its own thread-locals, so every machine a job constructs here
  // runs its shards with that parallelism and granularity
  // (emu::set_engine_threads / emu::set_engine_shard).
  emu::set_engine_threads(h_.opt().engine_threads);
  emu::set_engine_shard(h_.opt().engine_shard == "nodelet"
                            ? emu::EngineShard::nodelet
                            : emu::EngineShard::node);
  for (;;) {
    Slot* slot = nullptr;
    std::size_t index = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [this] { return stop_ || next_run_ < slots_.size(); });
      if (next_run_ >= slots_.size()) return;  // stop, queue drained
      index = next_run_++;
      slot = &slots_[index];  // deque: stable across later push_backs
    }
    run_one(slot, index);
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++completed_;
    }
    cv_done_.notify_all();
  }
}

void SweepPool::run_one(Slot* slot, std::size_t index) {
  // Per-job observation: the observer installs itself thread-locally on
  // this worker, so it sees exactly the machines this job constructs.  It
  // is configured like the harness observer but never writes the trace
  // itself — the retained trace is handed to the merge via a kTrace op.
  std::unique_ptr<report::BenchObserver> obs;
  const Options& o = h_.opt();
  if (!o.trace_path.empty() || o.counters) {
    report::BenchObserver::Options bo;
    bo.counters = o.counters;
    bo.trace_path = o.trace_path;
    bo.trace_capacity = static_cast<std::size_t>(o.trace_cap);
    obs = std::make_unique<report::BenchObserver>(bo);
  }
  std::uint64_t sm = 0x53EEDF00D0000000ULL + index;
  PointSink sink(&slot->ops, obs.get(), sim::splitmix64(sm));
  try {
    slot->fn(sink);
  } catch (const SweepError& e) {
    slot->failed = true;
    slot->error = e.what();
  } catch (const std::exception& e) {
    slot->failed = true;
    slot->error = std::string("unhandled exception in sweep job: ") + e.what();
  }
  if (obs != nullptr) {
    // Machines finished after the job's last add stay pending into the next
    // replayed add (or finish_observe's "unattributed"), as in serial runs.
    sink.drain_observer();
    PointSink::Op op;
    op.kind = PointSink::Op::Kind::kTrace;
    op.tracer = obs->take_trace();
    op.nodelets = obs->last_num_nodelets();
    op.runs = obs->runs();
    slot->ops.push_back(std::move(op));
  }
  slot->fn = nullptr;  // release captures eagerly
}

void SweepPool::replay(Slot& slot) {
  report::BenchObserver* main_obs = h_.observer();
  for (PointSink::Op& op : slot.ops) {
    switch (op.kind) {
      case PointSink::Op::Kind::kTable:
        h_.table(op.name, op.precision);
        break;
      case PointSink::Op::Kind::kAdd:
        h_.add_labeled(op.name, op.label, op.x, op.y, std::move(op.extra));
        break;
      case PointSink::Op::Kind::kPending:
        if (main_obs != nullptr) main_obs->inject_pending(std::move(op.json));
        break;
      case PointSink::Op::Kind::kTrace:
        if (main_obs != nullptr) {
          main_obs->offer_trace(std::move(op.tracer), op.nodelets, op.runs);
        }
        break;
    }
  }
  slot.ops.clear();
}

bool SweepPool::drain(std::string* err) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [this] { return completed_ == slots_.size(); });
  }
  // All workers are idle now; merge on the calling thread in submission
  // order.  A failed job is reported only after every earlier job's ops
  // have been merged — the harness state matches a serial run that died at
  // the same point.
  bool ok = true;
  for (auto& slot : slots_) {
    if (!ok) break;
    replay(slot);
    if (slot.failed) {
      if (err != nullptr) *err = slot.error;
      ok = false;
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  slots_.clear();
  next_run_ = 0;
  completed_ = 0;
  return ok;
}

void SweepPool::wait() {
  std::string err;
  if (!drain(&err)) h_.fail(err);
}

}  // namespace emusim::bench
