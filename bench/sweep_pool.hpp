// Parallel sweep runner for the bench harness (the --jobs flag).
//
// Every figure in the paper is a sweep over independent simulation points —
// each point constructs its own Machine + Engine and the simulator is
// deterministic — so points are embarrassingly parallel.  SweepPool runs
// submitted point jobs on a fixed-size worker pool while keeping the output
// *byte-identical* to a serial run (modulo wall-clock fields):
//
//   * Jobs never touch the Harness directly.  Each job records its work
//     (table selection, points, observed counter deltas, its busiest trace)
//     into a private per-job op buffer via the PointSink it is handed.
//   * wait() is the merge barrier: after all jobs finish, the buffered ops
//     are replayed through the ordinary serial Harness methods on the
//     calling thread, in submission order — completion order is irrelevant.
//   * Observation (--trace/--counters) attaches per job: the worker
//     installs a thread-local report::BenchObserver around the job, and the
//     merge folds each job's pending counter deltas and busiest trace into
//     the harness observer in submission order, which reproduces the serial
//     fold (including the busiest-run-wins, ties-to-newer trace rule)
//     exactly.  See docs/OBSERVABILITY.md.
//   * A job that fails (PointSink::fail, or any escaped exception) is
//     reported at the merge barrier in submission order, after the ops of
//     every earlier job have been merged — again matching what a serial run
//     would have produced before dying.
//
// Jobs must capture their inputs by value (or reference shared *immutable*
// state such as a pre-built graph); per-point RNG comes from explicit seeds
// or PointSink::rng_seed(), never from a stream shared across jobs.
//
// Usage:
//
//   bench::Harness h("fig0x_...", argc, argv);
//   bench::SweepPool pool(h);                  // h.jobs() workers
//   for (int t : threads) {
//     pool.submit([=](bench::PointSink& s) {
//       s.table("STREAM");                     // table/add mirror Harness
//       auto r = run_kernel(t);
//       s.add("emu", t, r.mb_per_sec, {{"sim_ms", r.sim_ms}});
//     });
//   }
//   pool.wait();                               // merge barrier
//   return h.done();
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "report/json.hpp"
#include "sim/trace.hpp"

namespace emusim::report {
class BenchObserver;
}

namespace emusim::bench {

class Harness;
class SweepPool;

/// Per-job recorder mirroring the Harness point API.  Only the job that was
/// handed it may use it, only for the duration of the job.
class PointSink {
 public:
  /// Start (or re-select) a display table, as Harness::table.
  void table(const std::string& title, int precision = 1);

  /// Record one measurement, as Harness::add / add_labeled.
  void add(const std::string& series, double x, double y,
           std::vector<std::pair<std::string, double>> extra = {});
  void add_labeled(const std::string& series, const std::string& label,
                   double x, double y,
                   std::vector<std::pair<std::string, double>> extra = {});

  /// Abort the sweep: the failure is reported (FAIL: <msg>, exit 1) at the
  /// merge barrier, in submission order, exactly where a serial run would
  /// have stopped.
  [[noreturn]] void fail(const std::string& msg);

  /// A seed unique to this job, derived from the submission index with
  /// splitmix64.  Jobs needing local randomness construct their own
  /// sim::Rng from this — RNG streams are never shared across jobs.
  std::uint64_t rng_seed() const { return seed_; }

 private:
  friend class SweepPool;

  /// One buffered harness interaction, replayed verbatim at the merge
  /// barrier.  kTrace carries a whole job's observation epilogue: its run
  /// count and (when tracing) its busiest retained trace.
  struct Op {
    enum class Kind { kTable, kAdd, kPending, kTrace };
    Kind kind = Kind::kAdd;
    std::string name;   ///< kTable: title; kAdd: series
    std::string label;  ///< kAdd only
    int precision = 1;  ///< kTable only
    double x = 0.0;
    double y = 0.0;
    std::vector<std::pair<std::string, double>> extra;
    report::Json json;   ///< kPending: one counter-delta blob
    sim::Tracer tracer;  ///< kTrace: the job's busiest trace
    int nodelets = 0;    ///< kTrace: 0 = job saw no traced machine
    int runs = 0;        ///< kTrace: machine runs under the job observer
  };

  PointSink(std::vector<Op>* ops, report::BenchObserver* obs,
            std::uint64_t seed)
      : ops_(ops), obs_(obs), seed_(seed) {}
  /// Move counter deltas pending on the per-job observer into the op
  /// buffer, preserving their position relative to add() calls.
  void drain_observer();

  std::vector<Op>* ops_;
  report::BenchObserver* obs_;
  std::uint64_t seed_;
};

/// Fixed-size worker pool executing point jobs with deterministic,
/// submission-ordered merge into a Harness.  Construct after the harness
/// has parsed flags; worker count is Harness::jobs() (the --jobs flag,
/// defaulting to hardware_concurrency).  --jobs 1 still runs jobs on one
/// worker thread, so serial and parallel runs exercise the same code path.
class SweepPool {
 public:
  explicit SweepPool(Harness& h);
  /// Joins workers.  Jobs submitted but never wait()ed are executed and
  /// discarded, not merged — call wait() before done().
  ~SweepPool();
  SweepPool(const SweepPool&) = delete;
  SweepPool& operator=(const SweepPool&) = delete;

  /// Enqueue one point job.  Submission order is merge order.
  void submit(std::function<void(PointSink&)> job);

  /// Merge barrier: block until every submitted job has run, then replay
  /// all op buffers through the harness in submission order.  On the first
  /// failed job (in submission order) reports via Harness::fail after
  /// merging every earlier job — process exits 1, like a serial failure.
  /// May be called multiple times; the pool is reusable afterwards.
  void wait();

  /// As wait(), but on failure returns false with the first failed job's
  /// message in *err instead of exiting — the unit-testable core of wait().
  bool drain(std::string* err);

  int jobs() const { return jobs_; }

 private:
  struct Slot {
    std::function<void(PointSink&)> fn;
    std::vector<PointSink::Op> ops;
    std::string error;
    bool failed = false;
  };

  void worker();
  void run_one(Slot* slot, std::size_t index);
  void replay(Slot& slot);

  Harness& h_;
  int jobs_ = 1;
  std::mutex mu_;
  std::condition_variable cv_work_;  ///< workers: a job or stop is available
  std::condition_variable cv_done_;  ///< wait(): a job completed
  std::deque<Slot> slots_;           ///< deque: stable refs while growing
  std::size_t next_run_ = 0;   ///< next slot index a worker should execute
  std::size_t completed_ = 0;  ///< slots finished (any order)
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace emusim::bench
