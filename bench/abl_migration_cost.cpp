// Ablation: how sensitive are the paper's results to the migration engine?
//
// Sweeps the per-node migration throughput and in-flight latency around the
// measured values (9 M/s, ~1.4 us) and reruns the migration-heavy cases:
// block-1 pointer chasing and 1D-layout SpMV.  Shows where each benchmark
// turns migration-bound — the design-choice discussion of DESIGN.md §4.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "kernels/chase_emu.hpp"
#include "kernels/spmv_emu.hpp"
#include "sweep_pool.hpp"

using namespace emusim;

int main(int argc, char** argv) {
  bench::Harness h("abl_migration_cost", argc, argv);
  bench::record_config(h, emu::SystemConfig::chick_hw());
  h.axes("migrations_per_sec", "mb_per_sec");
  h.table(
      "Ablation: migration engine throughput/latency vs migration-bound "
      "benchmarks (chick_hw otherwise)");

  const std::vector<double> rates =
      h.quick() ? std::vector<double>{9e6, 16e6}
                : std::vector<double>{4.5e6, 9e6, 16e6, 32e6, 64e6};
  const std::vector<double> lat_us = h.quick()
                                         ? std::vector<double>{1.4}
                                         : std::vector<double>{0.7, 1.4, 2.8};

  bench::SweepPool pool(h);
  for (double rate : rates) {
    for (double lu : lat_us) {
      pool.submit([&h, rate, lu](bench::PointSink& sink) {
        auto cfg = emu::SystemConfig::chick_hw();
        cfg.migrations_per_sec = rate;
        cfg.migration_latency = us(lu);
        // The latency dimension becomes a categorical label so the 2D
        // sweep keeps one point per (rate, latency) cell.
        char lbl[48];
        std::snprintf(lbl, sizeof lbl, "%gM/%gus", rate / 1e6, lu);

        kernels::ChaseEmuParams cp;
        cp.n = h.quick() ? (1u << 14) : (1u << 16);
        cp.block = 1;
        cp.threads = h.quick() ? 64 : 512;
        const auto cr = bench::repeated(
            h, [&] { return kernels::run_chase_emu(cfg, cp); });

        kernels::SpmvEmuParams sp;
        sp.laplacian_n = h.quick() ? 50 : 100;
        sp.layout = kernels::SpmvLayout::one_d;
        const auto sr = bench::repeated(
            h, [&] { return kernels::run_spmv_emu(cfg, sp); });

        if (!cr.verified || !sr.verified) sink.fail("verification failed");
        if (h.enabled("chase_block1")) {
          sink.add_labeled("chase_block1", lbl, rate, cr.mb_per_sec,
                           {{"migrations_per_sec", rate},
                            {"latency_us", lu},
                            {"sim_ms", to_seconds(cr.elapsed) * 1e3}});
        }
        if (h.enabled("spmv_1d")) {
          sink.add_labeled("spmv_1d", lbl, rate, sr.mb_per_sec,
                           {{"migrations_per_sec", rate},
                            {"latency_us", lu},
                            {"sim_ms", to_seconds(sr.elapsed) * 1e3}});
        }
      });
    }
  }
  pool.wait();
  return h.done();
}
