// Ablation: how sensitive are the paper's results to the migration engine?
//
// Sweeps the per-node migration throughput and in-flight latency around the
// measured values (9 M/s, ~1.4 us) and reruns the migration-heavy cases:
// block-1 pointer chasing and 1D-layout SpMV.  Shows where each benchmark
// turns migration-bound — the design-choice discussion of DESIGN.md §4.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "kernels/chase_emu.hpp"
#include "kernels/spmv_emu.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace emusim;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  report::CsvWriter csv(opt.csv_path,
                        {"ablation", "migrations_per_sec", "latency_us",
                         "chase_block1_mbps", "spmv_1d_mbps"});

  report::Table t(
      "Ablation: migration engine throughput/latency vs migration-bound "
      "benchmarks (chick_hw otherwise)");
  t.columns({"mig/s (M)", "latency (us)", "chase block=1 MB/s",
             "SpMV 1D MB/s"});

  const std::vector<double> rates =
      opt.quick ? std::vector<double>{9e6, 16e6}
                : std::vector<double>{4.5e6, 9e6, 16e6, 32e6, 64e6};
  const std::vector<double> lat_us = opt.quick
                                         ? std::vector<double>{1.4}
                                         : std::vector<double>{0.7, 1.4, 2.8};

  for (double rate : rates) {
    for (double lu : lat_us) {
      auto cfg = emu::SystemConfig::chick_hw();
      cfg.migrations_per_sec = rate;
      cfg.migration_latency = us(lu);

      kernels::ChaseEmuParams cp;
      cp.n = opt.quick ? (1u << 14) : (1u << 16);
      cp.block = 1;
      cp.threads = opt.quick ? 64 : 512;
      const auto cr = kernels::run_chase_emu(cfg, cp);

      kernels::SpmvEmuParams sp;
      sp.laplacian_n = opt.quick ? 50 : 100;
      sp.layout = kernels::SpmvLayout::one_d;
      const auto sr = kernels::run_spmv_emu(cfg, sp);

      if (!cr.verified || !sr.verified) {
        std::fprintf(stderr, "FAIL: verification failed\n");
        return 1;
      }
      t.row({report::Table::num(rate / 1e6), report::Table::num(lu),
             report::Table::num(cr.mb_per_sec),
             report::Table::num(sr.mb_per_sec)});
      csv.row({"migration_cost", report::Table::num(rate, 0),
               report::Table::num(lu, 2), report::Table::num(cr.mb_per_sec),
               report::Table::num(sr.mb_per_sec)});
    }
  }
  t.print();
  return 0;
}
