// Figure 4: STREAM ADD bandwidth on a single nodelet of the Emu Chick as a
// function of thread count, for serial_spawn vs recursive_spawn.
//
// Paper shape: bandwidth scales up through ~32 threads and then plateaus
// (~150 MB/s, one eighth of the node's 1.2 GB/s); the two spawn styles are
// nearly indistinguishable, showing thread creation is cheap.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "kernels/stream_emu.hpp"
#include "report/csv.hpp"
#include "report/table.hpp"

using namespace emusim;
using kernels::SpawnStrategy;
using kernels::StreamParams;

int main(int argc, char** argv) {
  const auto opt = bench::parse_options(argc, argv);
  const auto cfg = emu::SystemConfig::chick_hw();
  const std::size_t n = opt.quick ? (1u << 16) : (1u << 19);

  report::Table table(
      "Fig 4: STREAM ADD, 1 Emu nodelet (chick_hw), MB/s vs threads");
  table.columns({"threads", "serial_spawn", "recursive_spawn"});
  report::CsvWriter csv(opt.csv_path,
                        {"figure", "strategy", "threads", "mb_per_sec"});

  const std::vector<int> thread_counts = {1, 2, 4, 8, 16, 24, 32, 48, 64};
  for (int t : thread_counts) {
    double mbps[2] = {0, 0};
    const SpawnStrategy strategies[2] = {SpawnStrategy::serial_spawn,
                                         SpawnStrategy::recursive_spawn};
    for (int s = 0; s < 2; ++s) {
      StreamParams p;
      p.n = n;
      p.threads = t;
      p.strategy = strategies[s];
      p.across = 1;  // single nodelet
      const auto r = kernels::run_stream_add(cfg, p);
      if (!r.verified) {
        std::fprintf(stderr, "FAIL: STREAM verification failed\n");
        return 1;
      }
      mbps[s] = r.mb_per_sec;
      csv.row({"fig4", kernels::to_string(strategies[s]),
               report::Table::integer(t), report::Table::num(r.mb_per_sec)});
    }
    table.row({report::Table::integer(t), report::Table::num(mbps[0]),
               report::Table::num(mbps[1])});
  }
  table.print();
  return 0;
}
