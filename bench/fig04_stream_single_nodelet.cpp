// Figure 4: STREAM ADD bandwidth on a single nodelet of the Emu Chick as a
// function of thread count, for serial_spawn vs recursive_spawn.
//
// Paper shape: bandwidth scales up through ~32 threads and then plateaus
// (~150 MB/s, one eighth of the node's 1.2 GB/s); the two spawn styles are
// nearly indistinguishable, showing thread creation is cheap.
#include <vector>

#include "bench_util.hpp"
#include "kernels/stream_emu.hpp"
#include "sweep_pool.hpp"

using namespace emusim;
using kernels::SpawnStrategy;
using kernels::StreamParams;

int main(int argc, char** argv) {
  bench::Harness h("fig04_stream_single_nodelet", argc, argv);
  const auto cfg = emu::SystemConfig::chick_hw();
  const std::size_t n = h.quick() ? (1u << 16) : (1u << 19);
  bench::record_config(h, cfg);
  h.config("n", static_cast<long long>(n));
  h.axes("threads", "mb_per_sec");
  h.table("Fig 4: STREAM ADD, 1 Emu nodelet (chick_hw), MB/s vs threads");

  const SpawnStrategy strategies[2] = {SpawnStrategy::serial_spawn,
                                       SpawnStrategy::recursive_spawn};
  bench::SweepPool pool(h);
  for (int t : {1, 2, 4, 8, 16, 24, 32, 48, 64}) {
    for (auto s : strategies) {
      if (!h.enabled(kernels::to_string(s))) continue;
      pool.submit([&h, &cfg, n, t, s](bench::PointSink& sink) {
        StreamParams p;
        p.n = n;
        p.threads = t;
        p.strategy = s;
        p.across = 1;  // single nodelet
        const auto r = bench::repeated(
            h, [&] { return kernels::run_stream_add(cfg, p); });
        if (!r.verified) sink.fail("STREAM verification failed");
        sink.add(kernels::to_string(s), t, r.mb_per_sec,
                 {{"sim_ms", to_seconds(r.elapsed) * 1e3},
                  {"migrations", static_cast<double>(r.migrations)}});
      });
    }
  }
  pool.wait();
  return h.done();
}
